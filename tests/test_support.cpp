#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace wdm::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double s = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) s += r.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(13);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = r.uniform_int(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    ++counts[static_cast<std::size_t>(v - 2)];
  }
  for (int c : counts) EXPECT_GT(c, 9000);  // ~10000 each, loose bound
}

TEST(Rng, UniformIntSingleton) {
  Rng r(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng r(1);
  EXPECT_THROW(r.uniform_int(3, 2), std::logic_error);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(19);
  double s = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) s += r.exponential(4.0);
  EXPECT_NEAR(s / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), std::logic_error);
}

TEST(Rng, PoissonMeanMatches) {
  Rng r(23);
  long s = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += r.poisson(3.0);
  EXPECT_NEAR(static_cast<double>(s) / n, 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(31);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  r.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng a(41);
  Rng b = a.split();
  // The split stream should not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesConcatenation) {
  Rng r(43);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(0, 10);
    if (i % 3 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
}

TEST(Percentile, DegenerateInputsAreWellDefined) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(percentile(empty, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(empty, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile(empty, 1.0), 0.0);
  std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 1.0), 42.0);
}

TEST(Percentile, StillRejectsBadQuantile) {
  std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(percentile(xs, -0.1), std::logic_error);
  EXPECT_THROW(percentile(xs, 1.1), std::logic_error);
}

TEST(Percentile, SortedOverloadEqualsCopyingVersion) {
  support::Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.uniform(-50.0, 50.0));
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, q), percentile(xs, q)) << q;
  }
  // Degenerate inputs follow the same contract.
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.5), 42.0);
}

TEST(Percentile, BatchMatchesPerQuantileCalls) {
  support::Rng rng(32);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(0.0, 1000.0));
  const std::vector<double> qs{0.5, 0.9, 0.99, 0.0, 1.0};
  const std::vector<double> batch = percentiles(xs, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile(xs, qs[i])) << "q=" << qs[i];
  }
  EXPECT_TRUE(percentiles(xs, {}).empty());
  EXPECT_EQ(percentiles({}, qs), std::vector<double>(qs.size(), 0.0));
}

TEST(RunningStats, MinMaxWellDefinedAtZeroCount) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  // A negative first sample must override the count-0 placeholder.
  s.add(-3.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(Confidence95, GuardsSmallSamples) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(confidence_95(empty), 0.0);
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(confidence_95(one), 0.0);
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(confidence_95(xs), ci95_halfwidth(s));
  EXPECT_GT(confidence_95(xs), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.99);  // bin 3
  h.add(-5.0);  // clamped to bin 0
  h.add(2.0);   // clamped to bin 3
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 0.5);
}

TEST(TextTable, AlignsAndRoundTrips) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 2)});
  t.add_row({"beta", TextTable::integer(42)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("beta,42"), std::string::npos);
}

TEST(TextTable, RejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsBodyExceptionOnCallingThread) {
  // Letting an exception escape an OpenMP region is std::terminate; the
  // helper must capture it inside the region and rethrow it here.
  EXPECT_THROW(
      parallel_for(64,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionSkipsRemainingWorkButKeepsDoneWork) {
  // Iterations already completed when the exception lands stay completed;
  // the loop must not rerun or lose them.
  std::atomic<int> done{0};
  try {
    parallel_for(256, [&](std::size_t i) {
      if (i == 0) throw std::logic_error("first");
      ++done;
    });
    FAIL() << "expected the body exception to propagate";
  } catch (const std::logic_error&) {
  }
  EXPECT_GE(done.load(), 0);
  EXPECT_LE(done.load(), 255);
}

TEST(HardwareThreads, PositiveAndCappedByEnv) {
  EXPECT_GE(hardware_threads(), 1);

  const int uncapped = hardware_threads();
  ::setenv("ROBUSTWDM_THREADS", "1", 1);
  EXPECT_EQ(hardware_threads(), 1);
  ::setenv("ROBUSTWDM_THREADS", "1000000", 1);
  EXPECT_EQ(hardware_threads(), uncapped);  // cap above hardware is inert
  ::setenv("ROBUSTWDM_THREADS", "garbage", 1);
  EXPECT_EQ(hardware_threads(), uncapped);  // malformed values are ignored
  ::setenv("ROBUSTWDM_THREADS", "-3", 1);
  EXPECT_EQ(hardware_threads(), uncapped);  // non-positive values are ignored
  ::unsetenv("ROBUSTWDM_THREADS");
  EXPECT_EQ(hardware_threads(), uncapped);
}

TEST(Stopwatch, MonotoneAndResettable) {
  Stopwatch sw;
  const double t1 = sw.elapsed_seconds();
  const double t2 = sw.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.reset();
  EXPECT_GE(sw.elapsed_ms(), 0.0);
  // Unit consistency: microseconds = 1000 x milliseconds (sampled closely
  // enough that the drift between the two reads is far under the ratio).
  const double ms = sw.elapsed_ms();
  const double us = sw.elapsed_us();
  EXPECT_GE(us, ms * 1000.0 * 0.99);
}

TEST(Ci95, ShrinksWithSamples) {
  Rng r(47);
  RunningStats small, big;
  for (int i = 0; i < 10; ++i) small.add(r.uniform());
  for (int i = 0; i < 1000; ++i) big.add(r.uniform());
  EXPECT_GT(ci95_halfwidth(small), ci95_halfwidth(big));
}

// ---------------------------------------------------------------------------
// telemetry::LatencyHistogram::percentile_ns — the documented estimation
// error contract for power-of-two-ns buckets. The estimator has upper-bound
// semantics: it returns the smallest bucket upper bound covering
// ceil(q * count) samples, clamped to the observed maximum, so
//   true quantile <= percentile_ns(q) <= 2 * true quantile (quantile > 0,
//   equality on the right only when the true quantile is a power of two)
// and percentile_ns(q) <= max_ns() always.

TEST(TelemetryHistogram, PercentileExactOnBucketBoundaries) {
  telemetry::LatencyHistogram h;
  // 100 samples of exactly 1024 ns: every quantile is 1024, and 1024 is a
  // bucket lower bound, so the upper-bound estimate lands on the next power
  // of two... except the max clamp pins it back to the exact value.
  for (int i = 0; i < 100; ++i) h.record_ns(1024);
  EXPECT_EQ(h.percentile_ns(0.5), 1024u);
  EXPECT_EQ(h.percentile_ns(0.99), 1024u);
  EXPECT_EQ(h.percentile_ns(1.0), 1024u);
}

TEST(TelemetryHistogram, PercentileUpperBoundWithinFactorTwo) {
  telemetry::LatencyHistogram h;
  Rng r(13);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 2000; ++i) {
    const auto v = static_cast<std::uint64_t>(r.uniform_int(1, 1000000));
    samples.push_back(v);
    h.record_ns(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const std::uint64_t exact = samples[rank - 1];
    const std::uint64_t est = h.percentile_ns(q);
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est, 2 * exact) << "q=" << q;
    EXPECT_LE(est, h.max_ns()) << "q=" << q;
  }
}

TEST(TelemetryHistogram, PercentileEdgeCases) {
  telemetry::LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(0.5), 0u);  // empty
  h.record_ns(0);
  EXPECT_EQ(h.percentile_ns(0.5), 0u);  // all-zero samples are exact
  h.record_ns(7);
  // q is clamped to [0, 1]; q = 0 still covers >= 1 sample.
  EXPECT_EQ(h.percentile_ns(-1.0), h.percentile_ns(0.0));
  EXPECT_EQ(h.percentile_ns(2.0), h.percentile_ns(1.0));
  // The saturating last bucket reports the exact observed maximum rather
  // than its 2^63 upper bound.
  h.record_ns(~std::uint64_t{0});
  EXPECT_EQ(h.percentile_ns(1.0), ~std::uint64_t{0});
}

}  // namespace
}  // namespace wdm::support
