#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "topology/network_builder.hpp"
#include "topology/topologies.hpp"

namespace wdm::topo {
namespace {

void expect_valid_duplex(const Topology& t) {
  ASSERT_EQ(t.reverse_of.size(), static_cast<std::size_t>(t.g.num_edges()));
  ASSERT_EQ(t.length.size(), static_cast<std::size_t>(t.g.num_edges()));
  for (graph::EdgeId e = 0; e < t.g.num_edges(); ++e) {
    const graph::EdgeId r = t.reverse_of[static_cast<std::size_t>(e)];
    EXPECT_EQ(t.reverse_of[static_cast<std::size_t>(r)], e);
    EXPECT_EQ(t.g.tail(e), t.g.head(r));
    EXPECT_EQ(t.g.head(e), t.g.tail(r));
    EXPECT_DOUBLE_EQ(t.length[static_cast<std::size_t>(e)],
                     t.length[static_cast<std::size_t>(r)]);
  }
}

TEST(Topologies, NsfnetShape) {
  const Topology t = nsfnet();
  EXPECT_EQ(t.num_nodes(), 14);
  EXPECT_EQ(t.num_duplex_links(), 21);
  EXPECT_TRUE(t.g.strongly_connected());
  expect_valid_duplex(t);
}

TEST(Topologies, Arpanet20Shape) {
  const Topology t = arpanet20();
  EXPECT_EQ(t.num_nodes(), 20);
  EXPECT_EQ(t.num_duplex_links(), 31);
  EXPECT_TRUE(t.g.strongly_connected());
  expect_valid_duplex(t);
}

TEST(Topologies, Eon19Shape) {
  const Topology t = eon19();
  EXPECT_EQ(t.num_nodes(), 19);
  EXPECT_EQ(t.num_duplex_links(), 37);
  EXPECT_TRUE(t.g.strongly_connected());
  expect_valid_duplex(t);
}

TEST(Topologies, Usnet24Shape) {
  const Topology t = usnet24();
  EXPECT_EQ(t.num_nodes(), 24);
  EXPECT_EQ(t.num_duplex_links(), 43);
  EXPECT_TRUE(t.g.strongly_connected());
  expect_valid_duplex(t);
}

TEST(Topologies, TorusShape) {
  const Topology t = torus(3, 4);
  EXPECT_EQ(t.num_nodes(), 12);
  EXPECT_EQ(t.num_duplex_links(), 24);  // 2 per node
  EXPECT_EQ(t.g.max_degree(), 4);
  EXPECT_TRUE(t.g.strongly_connected());
  expect_valid_duplex(t);
}

TEST(Topologies, TorusRejectsTooSmall) {
  EXPECT_THROW(torus(2, 4), std::logic_error);
}

TEST(Topologies, RingShape) {
  const Topology t = ring(6);
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.num_duplex_links(), 6);
  EXPECT_TRUE(t.g.strongly_connected());
  expect_valid_duplex(t);
  EXPECT_EQ(t.g.max_degree(), 2);
}

TEST(Topologies, GridShape) {
  const Topology t = grid(3, 4);
  EXPECT_EQ(t.num_nodes(), 12);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(t.num_duplex_links(), 17);
  EXPECT_TRUE(t.g.strongly_connected());
  expect_valid_duplex(t);
}

TEST(Topologies, CompleteShape) {
  const Topology t = complete(5);
  EXPECT_EQ(t.num_duplex_links(), 10);
  EXPECT_EQ(t.g.max_degree(), 4);
  expect_valid_duplex(t);
}

TEST(Topologies, RandomConnectedIsConnectedAndDeterministic) {
  support::Rng rng1(7), rng2(7);
  const Topology a = random_connected(15, 10, rng1);
  const Topology b = random_connected(15, 10, rng2);
  EXPECT_TRUE(a.g.strongly_connected());
  EXPECT_EQ(a.num_duplex_links(), 14 + 10);
  ASSERT_EQ(a.g.num_edges(), b.g.num_edges());
  for (graph::EdgeId e = 0; e < a.g.num_edges(); ++e) {
    EXPECT_EQ(a.g.tail(e), b.g.tail(e));
    EXPECT_EQ(a.g.head(e), b.g.head(e));
  }
  expect_valid_duplex(a);
}

TEST(Topologies, RandomConnectedCapsExtraLinks) {
  support::Rng rng(3);
  const Topology t = random_connected(4, 1000, rng);
  EXPECT_EQ(t.num_duplex_links(), 6);  // complete graph on 4 nodes
}

TEST(Topologies, WaxmanConnectedAndSeeded) {
  support::Rng rng(11);
  const Topology t = waxman(20, 0.6, 0.4, rng);
  EXPECT_EQ(t.num_nodes(), 20);
  EXPECT_TRUE(t.g.strongly_connected());
  expect_valid_duplex(t);
}

TEST(Topologies, WaxmanDeterministicAndConnectedAtScale) {
  // n = 500 exercises the sorted-key overlay dedup on a draw large enough
  // that the old linear scan was the bottleneck; determinism given the RNG
  // is part of the documented contract (topologies.hpp).
  support::Rng rng1(23), rng2(23);
  const Topology a = waxman(500, 0.10, 0.15, rng1);
  const Topology b = waxman(500, 0.10, 0.15, rng2);
  EXPECT_EQ(a.num_nodes(), 500);
  EXPECT_TRUE(a.g.strongly_connected());
  ASSERT_EQ(a.g.num_edges(), b.g.num_edges());
  for (graph::EdgeId e = 0; e < a.g.num_edges(); ++e) {
    ASSERT_EQ(a.g.tail(e), b.g.tail(e));
    ASSERT_EQ(a.g.head(e), b.g.head(e));
  }
  expect_valid_duplex(a);
  // No duplicate duplex pair may survive the chain overlay.
  std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
  for (graph::EdgeId e = 0; e < a.g.num_edges(); ++e) {
    if (a.g.tail(e) < a.g.head(e)) {
      EXPECT_TRUE(seen.emplace(a.g.tail(e), a.g.head(e)).second)
          << "duplicate duplex link " << a.g.tail(e) << "-" << a.g.head(e);
    }
  }
}

TEST(Topologies, GeoGridConnectedByConstruction) {
  // Even at chord_p extremes the backbone grid guarantees connectivity.
  for (const double p : {0.0, 0.35, 1.0}) {
    support::Rng rng(5);
    const Topology t = geo_grid(10, 25, p, rng);
    EXPECT_EQ(t.num_nodes(), 250);
    EXPECT_TRUE(t.g.strongly_connected());
    expect_valid_duplex(t);
    // Backbone size is fixed; chords only add.
    const int backbone = 10 * 24 + 9 * 25;
    EXPECT_GE(t.num_duplex_links(), backbone);
    EXPECT_LE(t.num_duplex_links(), backbone + 9 * 24);
    if (p == 0.0) EXPECT_EQ(t.num_duplex_links(), backbone);
    if (p == 1.0) EXPECT_EQ(t.num_duplex_links(), backbone + 9 * 24);
  }
}

TEST(Topologies, GeoGridDeterministicGivenRng) {
  support::Rng rng1(99), rng2(99);
  const Topology a = geo_grid(8, 8, 0.4, rng1);
  const Topology b = geo_grid(8, 8, 0.4, rng2);
  ASSERT_EQ(a.g.num_edges(), b.g.num_edges());
  for (graph::EdgeId e = 0; e < a.g.num_edges(); ++e) {
    ASSERT_EQ(a.g.tail(e), b.g.tail(e));
    ASSERT_EQ(a.g.head(e), b.g.head(e));
  }
}

TEST(Topologies, InvalidSizesRejected) {
  support::Rng rng(1);
  EXPECT_THROW(ring(2), std::logic_error);
  EXPECT_THROW(grid(1, 5), std::logic_error);
  EXPECT_THROW(random_connected(1, 0, rng), std::logic_error);
}

TEST(NetworkBuilder, FullInstallationUnitCosts) {
  support::Rng rng(1);
  NetworkOptions opt;
  opt.num_wavelengths = 4;
  const net::WdmNetwork n = build_network(nsfnet(), opt, rng);
  EXPECT_EQ(n.num_nodes(), 14);
  EXPECT_EQ(n.num_links(), 42);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    EXPECT_EQ(n.capacity(e), 4);
    EXPECT_DOUBLE_EQ(n.weight(e, 0), 1.0);
  }
  // Full conversion everywhere by default.
  EXPECT_TRUE(n.conversion(0).is_full());
}

TEST(NetworkBuilder, PartialInstallationKeepsOneWavelength) {
  support::Rng rng(2);
  NetworkOptions opt;
  opt.num_wavelengths = 8;
  opt.install_probability = 0.01;  // almost everything dropped
  const net::WdmNetwork n = build_network(ring(5), opt, rng);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    EXPECT_GE(n.capacity(e), 1);
  }
}

TEST(NetworkBuilder, LengthCostsUseFiberLength) {
  support::Rng rng(3);
  NetworkOptions opt;
  opt.num_wavelengths = 2;
  opt.cost_model = CostModel::kLength;
  const Topology topo = ring(4);
  const net::WdmNetwork n = build_network(topo, opt, rng);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    EXPECT_NEAR(n.weight(e, 0), topo.length[static_cast<std::size_t>(e)],
                1e-12);
  }
}

TEST(NetworkBuilder, PerWavelengthCostsDiffer) {
  support::Rng rng(4);
  NetworkOptions opt;
  opt.num_wavelengths = 8;
  opt.cost_model = CostModel::kRandomPerWavelength;
  const net::WdmNetwork n = build_network(ring(4), opt, rng);
  bool any_differ = false;
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    for (net::Wavelength l = 1; l < 8; ++l) {
      if (n.weight(e, l) != n.weight(e, 0)) any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(NetworkBuilder, ConversionModels) {
  support::Rng rng(5);
  NetworkOptions opt;
  opt.num_wavelengths = 6;
  opt.conversion_model = ConversionModel::kNone;
  const net::WdmNetwork none = build_network(ring(3), opt, rng);
  EXPECT_FALSE(none.conversion(0).allowed(0, 1));

  opt.conversion_model = ConversionModel::kLimitedRange;
  opt.conversion_range = 1;
  const net::WdmNetwork lim = build_network(ring(3), opt, rng);
  EXPECT_TRUE(lim.conversion(0).allowed(0, 1));
  EXPECT_FALSE(lim.conversion(0).allowed(0, 2));
}

TEST(NetworkBuilder, Theorem2AssumptionCheck) {
  support::Rng rng(6);
  NetworkOptions opt;
  opt.num_wavelengths = 4;
  opt.conversion_cost = 0.5;  // <= unit link cost
  const net::WdmNetwork ok = build_network(ring(4), opt, rng);
  EXPECT_TRUE(satisfies_theorem2_assumption(ok));

  opt.conversion_cost = 2.0;  // > unit link cost
  const net::WdmNetwork bad = build_network(ring(4), opt, rng);
  EXPECT_FALSE(satisfies_theorem2_assumption(bad));
}

TEST(NetworkBuilder, NsfnetConvenience) {
  const net::WdmNetwork n = nsfnet_network(8, 0.5);
  EXPECT_EQ(n.num_nodes(), 14);
  EXPECT_EQ(n.W(), 8);
  EXPECT_TRUE(satisfies_theorem2_assumption(n));
}

}  // namespace
}  // namespace wdm::topo
