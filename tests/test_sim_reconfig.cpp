// Focused tests of the simulator's reconfiguration machinery and failure
// bookkeeping edge cases.
#include <gtest/gtest.h>

#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "sim/simulator.hpp"
#include "topology/network_builder.hpp"

namespace wdm::sim {
namespace {

TEST(SimReconfig, MinIntervalGatesFrequency) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt;
  opt.traffic.arrival_rate = 40.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 50.0;
  opt.seed = 7;
  opt.reconfig.load_trigger = 0.5;

  opt.reconfig.min_interval = 1.0;
  Simulator fast(topo::nsfnet_network(4, 0.5), router, opt);
  const long fast_count = fast.run().reconfigurations;

  opt.reconfig.min_interval = 10.0;
  Simulator slow(topo::nsfnet_network(4, 0.5), router, opt);
  const long slow_count = slow.run().reconfigurations;

  EXPECT_GT(fast_count, slow_count);
  // Hard cap: at most duration / min_interval events.
  EXPECT_LE(slow_count, static_cast<long>(opt.duration / 10.0) + 1);
  EXPECT_LE(fast_count, static_cast<long>(opt.duration / 1.0) + 1);
}

TEST(SimReconfig, ReservationsBalanceThroughManyReconfigs) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt;
  opt.traffic.arrival_rate = 60.0;  // heavy churn
  opt.traffic.mean_holding = 0.5;
  opt.duration = 40.0;
  opt.seed = 13;
  opt.reconfig.load_trigger = 0.4;  // aggressive
  opt.reconfig.min_interval = 0.5;
  Simulator sim(topo::nsfnet_network(4, 0.5), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.reconfigurations, 10);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);  // nothing leaked
}

TEST(SimReconfig, UnprotectedRouterSurvivesReconfig) {
  // Reconfiguration must also handle backup-less connections.
  rwa::UnprotectedRouter router;
  SimOptions opt;
  opt.traffic.arrival_rate = 50.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 30.0;
  opt.seed = 3;
  opt.restoration = RestorationMode::kNone;
  opt.reconfig.load_trigger = 0.5;
  opt.reconfig.min_interval = 1.0;
  Simulator sim(topo::nsfnet_network(4, 0.5), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.reconfigurations, 0);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(SimFailures, RepairRestoresCapacity) {
  rwa::ApproxDisjointRouter router;
  const topo::Topology t = topo::nsfnet();
  SimOptions opt;
  opt.traffic.arrival_rate = 5.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 200.0;
  opt.seed = 21;
  opt.failures.duplex_failure_rate = 0.01;
  opt.failures.mean_repair = 0.5;  // quick repairs
  opt.reverse_of = t.reverse_of;
  Simulator sim(topo::nsfnet_network(8, 0.5), router, opt);
  const SimMetrics m = sim.run();
  // All fibers must be repaired by drain time (repairs are scheduled
  // unconditionally when a failure fires).
  EXPECT_EQ(sim.network().num_failed_links(), 0);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(SimFailures, BackupLossDowngradesButKeepsService) {
  rwa::ApproxDisjointRouter router;
  const topo::Topology t = topo::nsfnet();
  SimOptions opt;
  opt.traffic.arrival_rate = 10.0;
  opt.traffic.mean_holding = 3.0;
  opt.duration = 150.0;
  opt.seed = 37;
  opt.restoration = RestorationMode::kActive;
  opt.failures.duplex_failure_rate = 0.03;
  opt.reverse_of = t.reverse_of;
  Simulator sim(topo::nsfnet_network(8, 0.5), router, opt);
  const SimMetrics m = sim.run();
  // Backup-only hits occur and do not count as primary failures/drops.
  EXPECT_GT(m.backup_lost, 0);
  EXPECT_EQ(m.recoveries_succeeded,
            m.switchover_recoveries + m.recompute_recoveries);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(SimOptionsValidation, RejectsNonsense) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt;
  opt.duration = 0.0;
  EXPECT_THROW(Simulator(topo::nsfnet_network(4, 0.5), router, opt),
               std::logic_error);
  opt.duration = 10.0;
  opt.traffic.arrival_rate = 0.0;
  EXPECT_THROW(Simulator(topo::nsfnet_network(4, 0.5), router, opt),
               std::logic_error);
}

TEST(SimOptionsValidation, ReverseOfSizeChecked) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt;
  opt.reverse_of = {0, 1, 2};  // wrong length for NSFNET's 42 links
  EXPECT_THROW(Simulator(topo::nsfnet_network(4, 0.5), router, opt),
               std::logic_error);
}

}  // namespace
}  // namespace wdm::sim
