#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"
#include "wdm/io.hpp"

namespace wdm::io {
namespace {

void expect_equal_networks(const net::WdmNetwork& a, const net::WdmNetwork& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_links(), b.num_links());
  ASSERT_EQ(a.W(), b.W());
  for (graph::EdgeId e = 0; e < a.num_links(); ++e) {
    EXPECT_EQ(a.graph().tail(e), b.graph().tail(e));
    EXPECT_EQ(a.graph().head(e), b.graph().head(e));
    EXPECT_EQ(a.installed(e).bits(), b.installed(e).bits());
    EXPECT_EQ(a.link_failed(e), b.link_failed(e));
    a.installed(e).for_each([&](net::Wavelength l) {
      EXPECT_DOUBLE_EQ(a.weight(e, l), b.weight(e, l));
      EXPECT_EQ(a.is_used(e, l), b.is_used(e, l));
    });
  }
  for (net::NodeId v = 0; v < a.num_nodes(); ++v) {
    for (net::Wavelength x = 0; x < a.W(); ++x) {
      for (net::Wavelength y = 0; y < a.W(); ++y) {
        ASSERT_EQ(a.conversion(v).allowed(x, y), b.conversion(v).allowed(x, y));
        if (a.conversion(v).allowed(x, y)) {
          EXPECT_DOUBLE_EQ(a.conversion(v).cost(x, y),
                           b.conversion(v).cost(x, y));
        }
      }
    }
  }
}

TEST(Io, RoundTripSimpleNetwork) {
  const net::WdmNetwork original = topo::nsfnet_network(8, 0.5);
  const net::WdmNetwork loaded = read_network(write_network(original));
  expect_equal_networks(original, loaded);
}

TEST(Io, RoundTripWithUsageAndFailures) {
  net::WdmNetwork n = topo::nsfnet_network(4, 0.5);
  support::Rng rng(3);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(0.3)) n.reserve(e, l);
    });
  }
  n.set_link_failed(5, true);
  n.set_link_failed(17, true);
  const net::WdmNetwork loaded = read_network(write_network(n));
  expect_equal_networks(n, loaded);
  EXPECT_EQ(loaded.num_failed_links(), 2);
  EXPECT_EQ(loaded.total_usage(), n.total_usage());
}

TEST(Io, RoundTripPerWavelengthCostsAndPartialInstall) {
  topo::NetworkOptions opt;
  opt.cost_model = topo::CostModel::kRandomPerWavelength;
  opt.install_probability = 0.6;
  opt.conversion_model = topo::ConversionModel::kLimitedRange;
  opt.conversion_range = 2;
  opt.conversion_cost = 0.3;
  net::WdmNetwork n = test::random_network(6, 5, 5, 77, opt);
  expect_equal_networks(n, read_network(write_network(n)));
}

TEST(Io, RoundTripGeneralConversionTable) {
  net::WdmNetwork n(2, 3);
  net::ConversionTable t(3);
  t.set(0, 2, 1.25);
  t.set(2, 1, 0.5);
  n.set_conversion(0, t);
  n.add_link(0, 1, net::WavelengthSet::all(3), 1.0);
  expect_equal_networks(n, read_network(write_network(n)));
}

TEST(Io, ParsesHandWrittenInput) {
  const net::WdmNetwork n = read_network(
      "# tiny test network\n"
      "network 3 2\n"
      "conversion 1 full 0.5\n"
      "link 0 1 cost 1.5\n"
      "link 1 2 cost 2.5 lambdas 1\n"
      "reserve 0 0\n");
  EXPECT_EQ(n.num_nodes(), 3);
  EXPECT_EQ(n.num_links(), 2);
  EXPECT_DOUBLE_EQ(n.weight(0, 0), 1.5);
  EXPECT_EQ(n.capacity(1), 1);
  EXPECT_TRUE(n.is_used(0, 0));
  EXPECT_TRUE(n.conversion(1).allowed(0, 1));
  EXPECT_FALSE(n.conversion(0).allowed(0, 1));
}

TEST(Io, RoundTripSrlgBlocks) {
  net::WdmNetwork original(4, 3);
  original.add_link(0, 1, net::WavelengthSet::all(3), 1.0);
  original.add_link(1, 2, net::WavelengthSet::all(3), 2.0);
  original.add_link(2, 3, net::WavelengthSet::all(3), 3.0);
  original.add_link(0, 3, net::WavelengthSet::all(3), 4.0);
  original.add_srlg({0, 2}, 0.25);
  original.add_srlg({1, 2, 3}, 0.125);

  const std::string text = write_network(original);
  const net::WdmNetwork loaded = read_network(text);
  expect_equal_networks(original, loaded);
  ASSERT_EQ(loaded.num_srlgs(), 2);
  EXPECT_EQ(loaded.srlg(0).links, (std::vector<graph::EdgeId>{0, 2}));
  EXPECT_EQ(loaded.srlg(1).links, (std::vector<graph::EdgeId>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loaded.srlg(0).failure_probability, 0.25);
  EXPECT_DOUBLE_EQ(loaded.srlg(1).failure_probability, 0.125);
  // Exact text round-trip: save -> load -> save is byte-identical.
  EXPECT_EQ(text, write_network(loaded));
}

TEST(Io, SrlgRejectsMalformedBlocks) {
  const std::string base = "network 3 2\nlink 0 1 cost 1\nlink 1 2 cost 1\n";
  // Duplicate group id.
  EXPECT_THROW(read_network(base + "srlg 0 0.5 0\nsrlg 0 0.5 1\n"), ParseError);
  // Ids must be dense and in order.
  EXPECT_THROW(read_network(base + "srlg 1 0.5 0\n"), ParseError);
  // Out-of-range link reference.
  EXPECT_THROW(read_network(base + "srlg 0 0.5 0,7\n"), ParseError);
  EXPECT_THROW(read_network(base + "srlg 0 0.5 -1\n"), ParseError);
  // Probability outside [0, 1] or non-finite.
  EXPECT_THROW(read_network(base + "srlg 0 1.5 0\n"), ParseError);
  EXPECT_THROW(read_network(base + "srlg 0 -0.1 0\n"), ParseError);
  EXPECT_THROW(read_network(base + "srlg 0 nan 0\n"), ParseError);
  EXPECT_THROW(read_network(base + "srlg 0 inf 0\n"), ParseError);
  // Empty member list / arity errors / srlg before any network header.
  EXPECT_THROW(read_network(base + "srlg 0 0.5\n"), ParseError);
  EXPECT_THROW(read_network(base + "srlg 0 0.5 ,,,\n"), ParseError);
  EXPECT_THROW(read_network("srlg 0 0.5 0\n"), ParseError);
}

TEST(Io, SrlgErrorsCarryLineNumbers) {
  try {
    read_network("network 3 2\nlink 0 1 cost 1\nsrlg 0 2.0 0\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Io, ErrorsCarryLineNumbers) {
  try {
    read_network("network 2 2\nlink 0 5 cost 1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Io, RejectsMalformedInput) {
  EXPECT_THROW(read_network(""), ParseError);                    // no header
  EXPECT_THROW(read_network("link 0 1 cost 1\n"), ParseError);   // header late
  EXPECT_THROW(read_network("network 2 2\nnetwork 2 2\n"), ParseError);
  EXPECT_THROW(read_network("network 2 2\nbogus 1 2\n"), ParseError);
  EXPECT_THROW(read_network("network 2 2\nlink 0 1 cost abc\n"), ParseError);
  EXPECT_THROW(read_network("network 2 2\nlink 0 1 cost 1 lambdas 9\n"),
               ParseError);
  EXPECT_THROW(
      read_network("network 2 2\nlink 0 1 cost 1\nreserve 0 0\nreserve 0 0\n"),
      ParseError);  // double reserve surfaces as a parse error with a line
  EXPECT_THROW(read_network("network 2 2\nreserve 3 0\n"), ParseError);
  EXPECT_THROW(read_network("network 2 2\nlink 0 1 costs 1,2,3\n"),
               ParseError);  // wrong costs arity
}

TEST(Io, RejectsNonFiniteNumbers) {
  EXPECT_THROW(read_network("network 2 2\nlink 0 1 cost nan\n"), ParseError);
  EXPECT_THROW(read_network("network 2 2\nlink 0 1 cost inf\n"), ParseError);
  EXPECT_THROW(read_network("network 2 2\nlink 0 1 cost -inf\n"), ParseError);
  EXPECT_THROW(read_network("network 2 2\nconversion 0 full nan\n"),
               ParseError);
}

TEST(Io, FileErrorsCarryFileNameAndLine) {
  const std::string path = testing::TempDir() + "io_bad_input.wdm";
  {
    std::ofstream out(path);
    out << "network 2 2\nlink 0 1 cost oops\n";
  }
  try {
    read_network_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find(path + ":line 2:"),
              std::string::npos);
    // message() is the bare diagnostic, not doubly prefixed.
    EXPECT_EQ(std::string(e.message()).find("line 2"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Io, MissingFileIsAParseErrorNotACrash) {
  try {
    read_network_file("/nonexistent/robustwdm.wdm");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), "/nonexistent/robustwdm.wdm");
    EXPECT_EQ(e.line(), 0);
  }
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const net::WdmNetwork n = read_network(
      "\n# leading comment\nnetwork 2 1\n\nlink 0 1 cost 1 # trailing\n\n");
  EXPECT_EQ(n.num_links(), 1);
}

TEST(Io, FailedLinkSurvivesEvenWithReservations) {
  net::WdmNetwork n(2, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.reserve(0, 1);
  n.set_link_failed(0, true);
  const net::WdmNetwork loaded = read_network(write_network(n));
  EXPECT_TRUE(loaded.link_failed(0));
  EXPECT_TRUE(loaded.is_used(0, 1));
}

}  // namespace
}  // namespace wdm::io
