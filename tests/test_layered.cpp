#include <gtest/gtest.h>

#include "rwa/layered_graph.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

TEST(LayeredGraph, NodeAndHubLayout) {
  net::WdmNetwork n(3, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  const LayeredGraph lg = LayeredGraph::build(n, 0, 2);
  // 2 copies (in/out) per (node, λ) + two hubs.
  EXPECT_EQ(lg.g.num_nodes(), 2 * 3 * 2 + 2);
  // Arcs: identity conversions 3 nodes * 2 λ = 6, traversal 2 links * 2 λ =
  // 4, hubs 2 * 2 = 4.
  EXPECT_EQ(lg.g.num_edges(), 14);
}

TEST(LayeredGraph, ConversionArcsFollowTable) {
  net::WdmNetwork n(1, 3);
  n.set_conversion(0, net::ConversionTable::full(3, 0.1));
  const LayeredGraph lg = LayeredGraph::build(n, 0, 0);
  // 9 conversion arcs (full 3x3) + 3+3 hub arcs.
  EXPECT_EQ(lg.g.num_edges(), 9 + 6);
}

TEST(OptimalSemilightpath, SingleHopPicksCheapestWavelength) {
  net::WdmNetwork n(2, 3);
  const std::vector<double> costs{5.0, 2.0, 7.0};
  n.add_link(0, 1, net::WavelengthSet::all(3), costs);
  const net::Semilightpath p = optimal_semilightpath(n, 0, 1);
  ASSERT_TRUE(p.found);
  ASSERT_EQ(p.hops.size(), 1u);
  EXPECT_EQ(p.hops[0].lambda, 1);
  EXPECT_DOUBLE_EQ(p.cost(n), 2.0);
}

TEST(OptimalSemilightpath, ConversionUsedWhenWorthIt) {
  // λ0 cheap on link 1, λ1 cheap on link 2; conversion costs 0.1.
  net::WdmNetwork n(3, 2);
  n.set_conversion(1, net::ConversionTable::full(2, 0.1));
  const std::vector<double> c01{1.0, 10.0};
  const std::vector<double> c12{10.0, 1.0};
  n.add_link(0, 1, net::WavelengthSet::all(2), c01);
  n.add_link(1, 2, net::WavelengthSet::all(2), c12);
  const net::Semilightpath p = optimal_semilightpath(n, 0, 2);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.conversions(n), 1);
  EXPECT_DOUBLE_EQ(p.cost(n), 2.1);
}

TEST(OptimalSemilightpath, ConversionAvoidedWhenExpensive) {
  net::WdmNetwork n(3, 2);
  n.set_conversion(1, net::ConversionTable::full(2, 100.0));
  const std::vector<double> c01{1.0, 10.0};
  const std::vector<double> c12{10.0, 1.0};
  n.add_link(0, 1, net::WavelengthSet::all(2), c01);
  n.add_link(1, 2, net::WavelengthSet::all(2), c12);
  const net::Semilightpath p = optimal_semilightpath(n, 0, 2);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.conversions(n), 0);
  EXPECT_DOUBLE_EQ(p.cost(n), 11.0);
}

TEST(OptimalSemilightpath, WavelengthContinuityWithoutConversion) {
  // No conversion anywhere: λ must be continuous; only λ1 is on both links.
  net::WdmNetwork n(3, 2);
  net::WavelengthSet only0, only01;
  only0.insert(0);
  only01.insert(0);
  only01.insert(1);
  net::WavelengthSet only1;
  only1.insert(1);
  n.add_link(0, 1, only01, 1.0);
  n.add_link(1, 2, only1, 1.0);
  const net::Semilightpath p = optimal_semilightpath(n, 0, 2);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 1);
  EXPECT_EQ(p.hops[1].lambda, 1);
}

TEST(OptimalSemilightpath, BlockedByWavelengthMismatch) {
  net::WdmNetwork n(3, 2);  // no conversion
  net::WavelengthSet only0;
  only0.insert(0);
  net::WavelengthSet only1;
  only1.insert(1);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 2, only1, 1.0);
  EXPECT_FALSE(optimal_semilightpath(n, 0, 2).found);
  // Adding conversion at node 1 unblocks it.
  n.set_conversion(1, net::ConversionTable::full(2, 0.2));
  EXPECT_TRUE(optimal_semilightpath(n, 0, 2).found);
}

TEST(OptimalSemilightpath, UsesOnlyAvailableWavelengths) {
  net::WdmNetwork n(2, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.reserve(0, 0);
  const net::Semilightpath p = optimal_semilightpath(n, 0, 1);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 1);
  n.reserve(0, 1);
  EXPECT_FALSE(optimal_semilightpath(n, 0, 1).found);
}

TEST(OptimalSemilightpath, RespectsLinkMask) {
  net::WdmNetwork n(3, 1);
  n.add_link(0, 2, net::WavelengthSet::all(1), 1.0);  // direct
  n.add_link(0, 1, net::WavelengthSet::all(1), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(1), 1.0);
  std::vector<std::uint8_t> mask{0, 1, 1};
  const net::Semilightpath p = optimal_semilightpath(n, 0, 2, mask);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.length(), 2u);
}

TEST(LayeredGraph, MaskedBuildCompactsToActiveNodes) {
  // With a confining mask only nodes incident to enabled links (plus the
  // endpoints) receive wavelength layers; the rest of the topology must not
  // contribute conversion arcs or node copies.
  net::WdmNetwork n(6, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  n.add_link(2, 3, net::WavelengthSet::all(2), 1.0);
  n.add_link(3, 4, net::WavelengthSet::all(2), 1.0);
  n.add_link(4, 5, net::WavelengthSet::all(2), 1.0);
  std::vector<std::uint8_t> mask{1, 1, 0, 0, 0};  // links 0-1, 1-2 only
  const LayeredGraph lg = LayeredGraph::build(n, 0, 2, mask);
  // Active nodes: {0, 2} (endpoints) ∪ {0, 1, 2} = 3 of 6.
  EXPECT_EQ(lg.g.num_nodes(), 2 * 3 * 2 + 2);
  const LayeredGraph dense = LayeredGraph::build(n, 0, 2);
  EXPECT_EQ(dense.g.num_nodes(), 2 * 6 * 2 + 2);
}

TEST(OptimalSemilightpath, CompactionIsBehaviorallyInvisible) {
  // The compacted masked build must find paths of identical cost to the
  // dense unmasked build whenever the mask admits every link (all-ones mask
  // vs empty mask take the compacted and historical code paths
  // respectively).
  support::Rng rng(77);
  for (int inst = 0; inst < 8; ++inst) {
    net::WdmNetwork n(8, 3);
    for (int i = 0; i + 1 < 8; ++i) {
      n.add_link(i, i + 1, net::WavelengthSet::all(3), rng.uniform(1.0, 5.0));
    }
    for (int k = 0; k < 5; ++k) {
      const auto a = static_cast<net::NodeId>(rng.index(8));
      const auto b = static_cast<net::NodeId>(rng.index(8));
      if (a == b || n.graph().find_edge(a, b) != graph::kInvalidEdge) continue;
      n.add_link(a, b, net::WavelengthSet::all(3), rng.uniform(1.0, 5.0));
    }
    n.set_conversion(3, net::ConversionTable::full(3, 0.2));
    const std::vector<std::uint8_t> all_on(
        static_cast<std::size_t>(n.num_links()), 1);
    for (net::NodeId t = 1; t < 8; ++t) {
      const net::Semilightpath dense = optimal_semilightpath(n, 0, t);
      const net::Semilightpath compact = optimal_semilightpath(n, 0, t, all_on);
      ASSERT_EQ(dense.found, compact.found) << "t=" << t;
      if (dense.found) {
        EXPECT_DOUBLE_EQ(dense.cost(n), compact.cost(n)) << "t=" << t;
      }
    }
  }
}

TEST(OptimalSemilightpath, SingleConversionPerNodeEnforced) {
  // Table allows 0->1 and 1->2 but NOT 0->2. If conversion chains inside a
  // node were possible, the path below would exist.
  net::WdmNetwork n(3, 3);
  net::ConversionTable tbl(3);
  tbl.set(0, 1, 0.1);
  tbl.set(1, 2, 0.1);
  n.set_conversion(1, tbl);
  net::WavelengthSet only0, only2;
  only0.insert(0);
  only2.insert(2);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 2, only2, 1.0);
  EXPECT_FALSE(optimal_semilightpath(n, 0, 2).found);
}

class LayeredPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LayeredPropertyTest, MatchesBruteForceOnRandomNetworks) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  topo::NetworkOptions opt;
  opt.cost_model = topo::CostModel::kRandomPerWavelength;
  opt.conversion_model = (seed % 3 == 0) ? topo::ConversionModel::kNone
                         : (seed % 3 == 1)
                             ? topo::ConversionModel::kFullUniform
                             : topo::ConversionModel::kLimitedRange;
  opt.install_probability = 0.8;
  net::WdmNetwork n = test::random_network(5, 4, 3, seed * 131 + 17, opt);

  const net::Semilightpath got = optimal_semilightpath(n, 0, 4);
  const auto want = test::brute_force_semilightpath(n, 0, 4);
  // The brute force ranges over *simple* physical paths; with limited-range
  // conversion the true optimum may revisit a node to chain conversions, so
  // it is an upper bound in general and exact otherwise.
  if (want.has_value()) {
    ASSERT_TRUE(got.found);
    EXPECT_LE(got.cost(n), want->cost(n) + 1e-9);
  }
  if (got.found) {
    EXPECT_TRUE(got.fits_residual(n));
    if (opt.conversion_model != topo::ConversionModel::kLimitedRange) {
      ASSERT_TRUE(want.has_value());
      EXPECT_NEAR(got.cost(n), want->cost(n), 1e-9);
    }
  }
}

TEST_P(LayeredPropertyTest, OptimalNeverBeatenUnderResidualChanges) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  net::WdmNetwork n = test::random_network(6, 6, 3, seed * 997 + 3);
  support::Rng rng(seed);
  // Randomly occupy some wavelengths, then check optimality again.
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(0.3)) n.reserve(e, l);
    });
  }
  const net::Semilightpath got = optimal_semilightpath(n, 0, 5);
  const auto want = test::brute_force_semilightpath(n, 0, 5);
  ASSERT_EQ(got.found, want.has_value());
  if (got.found) {
    EXPECT_NEAR(got.cost(n), want->cost(n), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, LayeredPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace wdm::rwa
