// End-to-end properties across the whole stack: every router, on realistic
// topologies, across many random residual states, must deliver routes that
// are valid, wavelength-feasible, and edge-disjoint — the §2 contract.
#include <gtest/gtest.h>

#include <memory>

#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "rwa/exact_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm {
namespace {

std::vector<rwa::RouterPtr> protected_routers() {
  std::vector<rwa::RouterPtr> rs;
  rs.push_back(std::make_unique<rwa::ApproxDisjointRouter>());
  rs.push_back(std::make_unique<rwa::MinLoadRouter>());
  rs.push_back(std::make_unique<rwa::LoadCostRouter>());
  rs.push_back(std::make_unique<rwa::TwoStepRouter>());
  rs.push_back(std::make_unique<rwa::PhysicalFirstFitRouter>());
  return rs;
}

class RouterContractTest : public ::testing::TestWithParam<int> {};

TEST_P(RouterContractTest, AllRoutersDeliverFeasibleDisjointRoutes) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  support::Rng rng(seed * 613 + 101);
  net::WdmNetwork n = topo::nsfnet_network(6, 0.5);
  // Random residual state.
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(0.35)) n.reserve(e, l);
    });
  }
  const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
  auto t = s;
  while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));

  for (const auto& router : protected_routers()) {
    const rwa::RouteResult r = router->route(n, s, t);
    if (!r.found) continue;
    EXPECT_TRUE(r.route.primary.fits_residual(n)) << router->name();
    EXPECT_TRUE(r.route.backup.fits_residual(n)) << router->name();
    EXPECT_TRUE(net::edge_disjoint(r.route.primary, r.route.backup))
        << router->name();
    EXPECT_EQ(r.route.primary.source(n), s) << router->name();
    EXPECT_EQ(r.route.primary.destination(n), t) << router->name();
    EXPECT_EQ(r.route.backup.source(n), s) << router->name();
    EXPECT_EQ(r.route.backup.destination(n), t) << router->name();
    EXPECT_LE(r.route.primary.cost(n), r.route.backup.cost(n) + 1e-9)
        << router->name();
  }
}

TEST_P(RouterContractTest, RoutersNeverMutateTheNetwork) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  net::WdmNetwork n = test::random_network(10, 10, 4, seed * 17 + 3);
  const auto snapshot = n.usage_snapshot();
  for (const auto& router : protected_routers()) {
    (void)router->route(n, 0, 9);
    EXPECT_EQ(n.usage_snapshot(), snapshot) << router->name();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, RouterContractTest,
                         ::testing::Range(0, 20));

TEST(Integration, ApproxNeverWorseThanTwiceExactOnNsfnet) {
  net::WdmNetwork n = topo::nsfnet_network(4, 0.5);
  support::Rng rng(2024);
  int compared = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
    auto t = s;
    while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
    const rwa::ExactResult exact = rwa::exact_disjoint_pair(n, s, t);
    const rwa::RouteResult approx = rwa::ApproxDisjointRouter().route(n, s, t);
    if (!exact.result.found) continue;
    ASSERT_TRUE(approx.found);
    EXPECT_LE(approx.total_cost(n),
              2.0 * exact.result.total_cost(n) + 1e-9);
    ++compared;
  }
  EXPECT_GT(compared, 5);
}

TEST(Integration, ProvisionTearDownCycleLeavesNetworkClean) {
  net::WdmNetwork n = topo::nsfnet_network(8, 0.5);
  support::Rng rng(5);
  rwa::LoadCostRouter router;
  std::vector<net::ProtectedRoute> held;
  for (int i = 0; i < 50; ++i) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
    auto t = s;
    while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
    const rwa::RouteResult r = router.route(n, s, t);
    if (r.found && r.route.feasible(n)) {
      r.route.reserve_in(n);
      held.push_back(r.route);
    }
  }
  EXPECT_GT(held.size(), 10u);
  EXPECT_GT(n.total_usage(), 0);
  for (const auto& route : held) route.release_in(n);
  EXPECT_EQ(n.total_usage(), 0);
  EXPECT_DOUBLE_EQ(n.network_load(), 0.0);
}

TEST(Integration, LoadAwareRoutingKeepsNetworkLoadLower) {
  // Same arrival sequence; the §4.2 router should end with lower sampled ρ
  // than the cost-only §3.3 router under pressure. The load is heavy but
  // below saturation: past ρ ≈ 0.95 both routers pin the network and the
  // comparison degenerates into tie-breaking noise.
  const auto run = [](const rwa::Router& router) {
    sim::SimOptions opt;
    opt.traffic.arrival_rate = 20.0;
    opt.traffic.mean_holding = 1.0;
    opt.duration = 60.0;
    opt.seed = 11;
    sim::Simulator s(topo::nsfnet_network(8, 0.5), router, opt);
    return s.run();
  };
  rwa::ApproxDisjointRouter cost_only;
  rwa::LoadCostRouter load_aware;
  const sim::SimMetrics mc = run(cost_only);
  const sim::SimMetrics ml = run(load_aware);
  EXPECT_LT(ml.network_load.mean(), mc.network_load.mean());
}

TEST(Integration, MinCogThetaMatchesDeliveredLoadCeiling) {
  // Every link the §4.1 router uses must have load < accepted ϑ.
  net::WdmNetwork n = topo::nsfnet_network(6, 0.5);
  support::Rng rng(77);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(0.5)) n.reserve(e, l);
    });
  }
  const rwa::RouteResult r = rwa::MinLoadRouter().route(n, 0, 13);
  if (r.found) {
    for (const net::Hop& h : r.route.primary.hops) {
      EXPECT_LT(n.link_load(h.edge), r.theta);
    }
    for (const net::Hop& h : r.route.backup.hops) {
      EXPECT_LT(n.link_load(h.edge), r.theta);
    }
  }
}

}  // namespace
}  // namespace wdm
