#include <gtest/gtest.h>

#include "graph/bridges.hpp"
#include "graph/maxflow.hpp"
#include "rwa/protectability.hpp"
#include "support/rng.hpp"
#include "topology/topologies.hpp"

namespace wdm::graph {
namespace {

Digraph duplex_from_pairs(int n, std::initializer_list<std::pair<int, int>> ps) {
  Digraph g(n);
  for (const auto& [a, b] : ps) {
    g.add_edge(a, b);
    g.add_edge(b, a);
  }
  return g;
}

TEST(Bridges, ChainIsAllBridges) {
  const Digraph g = duplex_from_pairs(4, {{0, 1}, {1, 2}, {2, 3}});
  const BridgeAnalysis a = find_bridges(g);
  EXPECT_EQ(a.num_bridges, 3);
  EXPECT_EQ(a.num_components, 4);
  EXPECT_FALSE(a.two_edge_connected(0, 3));
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_TRUE(a.is_bridge[e]);
}

TEST(Bridges, CycleHasNone) {
  const Digraph g = duplex_from_pairs(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const BridgeAnalysis a = find_bridges(g);
  EXPECT_EQ(a.num_bridges, 0);
  EXPECT_EQ(a.num_components, 1);
  EXPECT_TRUE(a.two_edge_connected(0, 2));
}

TEST(Bridges, BarbellHasOneBridge) {
  // Two triangles joined by one duplex link 2-3.
  const Digraph g = duplex_from_pairs(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  const BridgeAnalysis a = find_bridges(g);
  EXPECT_EQ(a.num_bridges, 1);
  EXPECT_EQ(a.num_components, 2);
  EXPECT_TRUE(a.two_edge_connected(0, 2));
  EXPECT_TRUE(a.two_edge_connected(3, 5));
  EXPECT_FALSE(a.two_edge_connected(0, 5));
}

TEST(Bridges, ParallelFibersNeverBridge) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // second duplex fiber on the same pair
  const BridgeAnalysis a = find_bridges(g);
  EXPECT_EQ(a.num_bridges, 0);
  EXPECT_TRUE(a.two_edge_connected(0, 1));
}

TEST(Bridges, SingleDuplexIsABridge) {
  const Digraph g = duplex_from_pairs(2, {{0, 1}});
  const BridgeAnalysis a = find_bridges(g);
  // One undirected bridge; both directed orientations are flagged.
  EXPECT_EQ(a.num_bridges, 1);
  EXPECT_TRUE(a.is_bridge[0]);
  EXPECT_TRUE(a.is_bridge[1]);
  EXPECT_FALSE(a.two_edge_connected(0, 1));
}

TEST(Bridges, DisconnectedGraphComponents) {
  const Digraph g = duplex_from_pairs(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const BridgeAnalysis a = find_bridges(g);
  EXPECT_EQ(a.num_components, 3);  // triangle, node 3, node 4
  EXPECT_FALSE(a.two_edge_connected(0, 3));
}

TEST(Bridges, SelfLoopIgnored) {
  Digraph g(2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const BridgeAnalysis a = find_bridges(g);
  EXPECT_FALSE(a.is_bridge[0]);
  EXPECT_EQ(a.num_bridges, 1);
}

TEST(Bridges, CanonicalTopologiesAreBridgeFree) {
  // Backbone networks are built 2-edge-connected by design.
  for (const auto& topo :
       {topo::nsfnet(), topo::arpanet20(), topo::eon19(), topo::usnet24(),
        topo::ring(8), topo::torus(3, 3)}) {
    const BridgeAnalysis a = find_bridges(topo.g);
    EXPECT_EQ(a.num_bridges, 0) << topo.name;
    EXPECT_EQ(a.num_components, 1) << topo.name;
  }
}

class BridgePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BridgePropertyTest, MatchesUndirectedMaxflowOracle) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 17);
  const int n = 5 + static_cast<int>(rng.uniform_int(0, 10));
  const topo::Topology t =
      topo::random_connected(n, static_cast<int>(rng.uniform_int(0, n)), rng);
  const BridgeAnalysis a = find_bridges(t.g);

  // Oracle: undirected s-t edge connectivity >= 2 via max flow where each
  // duplex fiber is one undirected unit (gadget: fiber node capping the
  // pair at 1 total).
  auto undirected_conn2 = [&](NodeId s, NodeId dst) {
    Dinic dinic(t.num_nodes() + t.num_duplex_links());
    int fiber_node = t.num_nodes();
    for (EdgeId e = 0; e < t.g.num_edges(); e += 2) {
      const NodeId u = t.g.tail(e);
      const NodeId v = t.g.head(e);
      // u <-> fiber <-> v with fiber throughput 1 in either direction:
      // classic undirected-edge gadget using capacity 1 on both node sides.
      dinic.add_arc(u, fiber_node, 1);
      dinic.add_arc(fiber_node, v, 1);
      dinic.add_arc(v, fiber_node, 1);
      dinic.add_arc(fiber_node, u, 1);
      ++fiber_node;
    }
    return dinic.max_flow(s, dst) >= 2;
  };

  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    auto dst = s;
    while (dst == s) dst = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    EXPECT_EQ(a.two_edge_connected(s, dst), undirected_conn2(s, dst))
        << t.name << " s=" << s << " t=" << dst;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, BridgePropertyTest,
                         ::testing::Range(0, 20));

TEST(Protectability, AuditCountsPairs) {
  // Barbell: two triangles of 3; protectable pairs = 2 * 3*2 = 12 of 30.
  const Digraph g = duplex_from_pairs(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  const rwa::ProtectabilityReport r = rwa::audit_protectability(g);
  EXPECT_EQ(r.total_pairs, 30);
  EXPECT_EQ(r.protectable_pairs, 12);
  EXPECT_EQ(r.undirected_bridges, 1);
  EXPECT_NEAR(r.fraction(), 0.4, 1e-12);
}

TEST(Protectability, FullyProtectableBackbone) {
  const rwa::ProtectabilityReport r =
      rwa::audit_protectability(topo::nsfnet().g);
  EXPECT_EQ(r.protectable_pairs, r.total_pairs);
  EXPECT_DOUBLE_EQ(r.fraction(), 1.0);
}

TEST(Protectability, FiberDisjointDetectsAntiparallelSharing) {
  net::Semilightpath a, b;
  a.found = b.found = true;
  a.hops = {{0, 0}};  // edge 0 = u->v
  b.hops = {{1, 0}};  // edge 1 = v->u, same fiber
  std::vector<EdgeId> reverse_of{1, 0};
  EXPECT_TRUE(net::edge_disjoint(a, b));  // the paper's directed notion
  EXPECT_FALSE(rwa::fiber_disjoint(a, b, reverse_of));
  EXPECT_TRUE(rwa::fiber_disjoint(a, b, {}));  // no pairing info
}

}  // namespace
}  // namespace wdm::graph
