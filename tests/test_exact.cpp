#include <gtest/gtest.h>

#include "rwa/approx_router.hpp"
#include "rwa/exact_router.hpp"
#include "rwa/ilp_router.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

TEST(ExactRouter, SquareNetworkOptimum) {
  net::WdmNetwork n(4, 2);
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  const auto all = net::WavelengthSet::all(2);
  n.add_link(0, 1, all, 1.0);
  n.add_link(1, 3, all, 2.0);
  n.add_link(0, 2, all, 3.0);
  n.add_link(2, 3, all, 4.0);
  const ExactResult r = exact_disjoint_pair(n, 0, 3);
  ASSERT_TRUE(r.result.found);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_TRUE(r.result.route.feasible(n));
  EXPECT_DOUBLE_EQ(r.result.total_cost(n), 10.0);
}

TEST(ExactRouter, NoSolutionWhenBridgeExists) {
  net::WdmNetwork n(3, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  const ExactResult r = exact_disjoint_pair(n, 0, 2);
  EXPECT_FALSE(r.result.found);
}

TEST(ExactRouter, Lemma1RegimeTwoLightpaths) {
  // No conversion, 2 wavelengths: the NP-hard core. Wavelength availability
  // forces one path onto λ0 and the other onto λ1.
  net::WdmNetwork n(4, 2);
  net::WavelengthSet only0, only1;
  only0.insert(0);
  only1.insert(1);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 3, only0, 1.0);
  n.add_link(0, 2, only1, 1.0);
  n.add_link(2, 3, only1, 1.0);
  const ExactResult r = exact_disjoint_pair(n, 0, 3);
  ASSERT_TRUE(r.result.found);
  EXPECT_TRUE(r.result.route.primary.is_lightpath());
  EXPECT_TRUE(r.result.route.backup.is_lightpath());
  EXPECT_NE(r.result.route.primary.hops[0].lambda,
            r.result.route.backup.hops[0].lambda);
}

class ExactVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsBruteForceTest, MatchesBruteForceEnumeration) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  topo::NetworkOptions opt;
  opt.cost_model = topo::CostModel::kRandomPerLink;
  opt.conversion_model = topo::ConversionModel::kFullUniform;
  opt.conversion_cost = 0.5;
  opt.cost_lo = 1.0;  // conversion (0.5) <= every link cost: Theorem 2 regime
  opt.install_probability = 0.85;
  net::WdmNetwork n = test::random_network(6, 5, 3, seed * 37 + 5, opt);

  double want_cost = 0.0;
  const auto want = test::brute_force_disjoint_pair(n, 0, 5, &want_cost);
  const ExactResult got = exact_disjoint_pair(n, 0, 5);
  ASSERT_EQ(got.result.found, want.has_value());
  if (got.result.found) {
    EXPECT_TRUE(got.proven_optimal);
    EXPECT_TRUE(got.result.route.feasible(n));
    EXPECT_NEAR(got.result.total_cost(n), want_cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, ExactVsBruteForceTest,
                         ::testing::Range(0, 15));

class IlpAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(IlpAgreementTest, IlpMatchesEnumerationExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  topo::NetworkOptions opt;
  opt.cost_model = topo::CostModel::kRandomPerLink;
  opt.conversion_model = topo::ConversionModel::kFullUniform;
  opt.conversion_cost = 0.25;
  opt.install_probability = 0.8;
  net::WdmNetwork n = test::random_network(5, 3, 2, seed * 811 + 3, opt);

  const ExactResult enum_r = exact_disjoint_pair(n, 0, 4);
  const IlpRouteResult ilp_r = ilp_disjoint_pair(n, 0, 4);
  ASSERT_EQ(enum_r.result.found, ilp_r.result.found)
      << "enumeration and ILP disagree on feasibility";
  if (enum_r.result.found) {
    EXPECT_TRUE(ilp_r.result.route.feasible(n));
    EXPECT_NEAR(enum_r.result.total_cost(n), ilp_r.result.total_cost(n), 1e-6);
    EXPECT_NEAR(ilp_r.objective, ilp_r.result.total_cost(n), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(TinyNetworks, IlpAgreementTest,
                         ::testing::Range(0, 10));

class ApproxRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(ApproxRatioTest, Theorem2RatioAtMostTwo) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  topo::NetworkOptions opt;
  opt.cost_model = topo::CostModel::kRandomPerLink;
  opt.conversion_model = topo::ConversionModel::kFullUniform;
  opt.conversion_cost = 0.5;
  opt.cost_lo = 1.0;  // assumption: conversion cost <= incident link cost
  opt.cost_hi = 8.0;
  net::WdmNetwork n = test::random_network(8, 8, 3, seed * 53 + 29, opt);
  ASSERT_TRUE(topo::satisfies_theorem2_assumption(n));

  const ExactResult exact = exact_disjoint_pair(n, 0, 7);
  const RouteResult approx = ApproxDisjointRouter().route(n, 0, 7);
  // The approximation may block where the exact solver finds a pair only in
  // pathological availability patterns; with full conversion G' is exact on
  // existence, so both must agree here.
  ASSERT_EQ(approx.found, exact.result.found);
  if (approx.found) {
    EXPECT_TRUE(approx.route.feasible(n));
    const double ratio = approx.total_cost(n) / exact.result.total_cost(n);
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(ratio, 2.0 + 1e-9) << "Theorem 2 bound violated";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, ApproxRatioTest,
                         ::testing::Range(0, 25));

TEST(ExactRouter, CandidateCapReportsUnproven) {
  ExactOptions opt;
  opt.max_candidates = 1;
  net::WdmNetwork n = test::random_network(8, 10, 2, 5);
  const ExactResult r = exact_disjoint_pair(n, 0, 7, opt);
  // With a single candidate the bound usually cannot close.
  EXPECT_EQ(r.candidates_examined, 1);
}

}  // namespace
}  // namespace wdm::rwa
