#include <gtest/gtest.h>

#include "rwa/approx_router.hpp"
#include "sim/replicate.hpp"
#include "topology/network_builder.hpp"

namespace wdm::sim {
namespace {

SimOptions fast_options() {
  SimOptions opt;
  opt.traffic.arrival_rate = 20.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 20.0;
  opt.seed = 100;
  return opt;
}

TEST(Replicate, AggregatesAcrossSeeds) {
  rwa::ApproxDisjointRouter router;
  const net::WdmNetwork base = topo::nsfnet_network(4, 0.5);
  const ReplicationSummary s = replicate(base, router, fast_options(), 8);
  EXPECT_EQ(s.replicas, 8);
  EXPECT_GT(s.blocking.mean, 0.0);
  EXPECT_GT(s.blocking.ci95, 0.0);  // seeds differ, so there is variance
  EXPECT_LE(s.blocking.min, s.blocking.mean);
  EXPECT_GE(s.blocking.max, s.blocking.mean);
  EXPECT_GT(s.route_cost.mean, 0.0);
}

TEST(Replicate, SingleReplicaHasNoInterval) {
  rwa::ApproxDisjointRouter router;
  const net::WdmNetwork base = topo::nsfnet_network(4, 0.5);
  const ReplicationSummary s = replicate(base, router, fast_options(), 1);
  EXPECT_EQ(s.replicas, 1);
  EXPECT_DOUBLE_EQ(s.blocking.ci95, 0.0);
}

TEST(Replicate, DeterministicGivenBaseSeed) {
  rwa::ApproxDisjointRouter router;
  const net::WdmNetwork base = topo::nsfnet_network(4, 0.5);
  const ReplicationSummary a = replicate(base, router, fast_options(), 4);
  const ReplicationSummary b = replicate(base, router, fast_options(), 4);
  EXPECT_DOUBLE_EQ(a.blocking.mean, b.blocking.mean);
  EXPECT_DOUBLE_EQ(a.mean_network_load.mean, b.mean_network_load.mean);
}

TEST(Replicate, IntervalShrinksWithMoreReplicas) {
  rwa::ApproxDisjointRouter router;
  const net::WdmNetwork base = topo::nsfnet_network(4, 0.5);
  const ReplicationSummary few = replicate(base, router, fast_options(), 6);
  const ReplicationSummary many = replicate(base, router, fast_options(), 24);
  // Not guaranteed sample-by-sample, but with 4x the replicas the interval
  // should not grow substantially. (The lower count is 6, not 2–3: a
  // 2-dof variance estimate can land freakishly small and make any honest
  // larger sample look "worse".)
  EXPECT_LT(many.blocking.ci95, few.blocking.ci95 * 2.0 + 1e-12);
}

TEST(Replicate, RecoverySummaryWithFailures) {
  rwa::ApproxDisjointRouter router;
  const topo::Topology t = topo::nsfnet();
  const net::WdmNetwork base = topo::nsfnet_network(8, 0.5);
  SimOptions opt = fast_options();
  opt.duration = 80.0;
  opt.failures.duplex_failure_rate = 0.03;
  opt.reverse_of = t.reverse_of;
  const ReplicationSummary s = replicate(base, router, opt, 4);
  EXPECT_GT(s.recovery_success.mean, 0.5);
  EXPECT_LE(s.recovery_success.max, 1.0);
}

TEST(Replicate, RejectsZeroReplicas) {
  rwa::ApproxDisjointRouter router;
  const net::WdmNetwork base = topo::nsfnet_network(4, 0.5);
  EXPECT_THROW(replicate(base, router, fast_options(), 0), std::logic_error);
}

}  // namespace
}  // namespace wdm::sim
