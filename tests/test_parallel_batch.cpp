// ParallelBatchEngine's contract is *bit-for-bit* serial equality: same
// accept/drop decisions, same routes, same reservations, same cost sums as
// provision_batch, for every ordering policy, router, and thread count.
// These tests drive the full matrix on contended, churned, and failure-laden
// networks — the regimes where speculation actually conflicts.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "rwa/footprint.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "rwa/node_disjoint_router.hpp"
#include "rwa/parallel_batch.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

std::vector<BatchRequest> random_batch(int count, net::NodeId n,
                                       std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<BatchRequest> batch;
  for (int i = 0; i < count; ++i) {
    BatchRequest r;
    r.id = i;
    r.s = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    r.t = r.s;
    while (r.t == r.s) {
      r.t = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    }
    batch.push_back(r);
  }
  return batch;
}

/// NSFNET with background churn and a couple of failed fibers — a residual
/// network under contention, where speculative commits actually conflict.
net::WdmNetwork churned_network(int W, std::uint64_t seed) {
  net::WdmNetwork n = topo::nsfnet_network(W, 0.5);
  support::Rng rng(seed);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.uniform() < 0.25) n.reserve(e, l);
    });
  }
  n.set_link_failed(static_cast<graph::EdgeId>(
                        rng.uniform_int(0, n.num_links() - 1)),
                    true);
  return n;
}

void expect_identical(const BatchOutcome& serial, const BatchOutcome& par,
                      const net::WdmNetwork& net_serial,
                      const net::WdmNetwork& net_par, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(serial.accepted, par.accepted);
  EXPECT_EQ(serial.dropped, par.dropped);
  EXPECT_EQ(serial.total_cost, par.total_cost);  // exact: same fp sum order
  EXPECT_EQ(serial.final_network_load, par.final_network_load);
  ASSERT_EQ(serial.routes.size(), par.routes.size());
  for (std::size_t i = 0; i < serial.routes.size(); ++i) {
    ASSERT_EQ(serial.routes[i].has_value(), par.routes[i].has_value())
        << "request " << i;
    if (!serial.routes[i].has_value()) continue;
    EXPECT_TRUE(serial.routes[i]->primary.hops == par.routes[i]->primary.hops)
        << "primary of request " << i;
    EXPECT_TRUE(serial.routes[i]->backup.hops == par.routes[i]->backup.hops)
        << "backup of request " << i;
  }
  // The reservation ledgers — the network states themselves — must agree.
  EXPECT_EQ(net_serial.usage_snapshot(), net_par.usage_snapshot());
}

std::vector<std::pair<const char*, std::unique_ptr<Router>>> all_routers() {
  std::vector<std::pair<const char*, std::unique_ptr<Router>>> v;
  v.emplace_back("approx", std::make_unique<ApproxDisjointRouter>());
  v.emplace_back("approx-norefine",
                 std::make_unique<ApproxDisjointRouter>(false));
  v.emplace_back("node-disjoint", std::make_unique<NodeDisjointRouter>());
  v.emplace_back("two-step", std::make_unique<TwoStepRouter>());
  v.emplace_back("phys-firstfit", std::make_unique<PhysicalFirstFitRouter>());
  v.emplace_back("load+cost", std::make_unique<LoadCostRouter>());
  v.emplace_back("min-load", std::make_unique<MinLoadRouter>());
  return v;
}

constexpr BatchOrder kAllOrders[] = {
    BatchOrder::kArrival, BatchOrder::kShortestFirst,
    BatchOrder::kLongestFirst, BatchOrder::kRandom};

TEST(ParallelBatch, MatchesSerialForEveryRouterAndOrder) {
  const auto batch = random_batch(32, 14, 11);
  for (const auto& [rname, router] : all_routers()) {
    for (BatchOrder order : kAllOrders) {
      net::WdmNetwork net_serial = churned_network(8, 5);
      net::WdmNetwork net_par = churned_network(8, 5);
      support::Rng rng_serial(99), rng_par(99);

      const BatchOutcome serial =
          provision_batch(net_serial, *router, batch, order, &rng_serial);

      ParallelBatchOptions opt;
      opt.threads = 4;
      ParallelBatchEngine engine(opt);
      const BatchOutcome par =
          engine.run(net_par, *router, batch, order, &rng_par);

      const std::string label =
          std::string(rname) + " / " + batch_order_name(order);
      expect_identical(serial, par, net_serial, net_par, label.c_str());
      // Contended batch: the serial baseline must actually drop something,
      // or this matrix isn't exercising conflicts at all.
      EXPECT_GT(serial.accepted, 0) << label;
    }
  }
}

TEST(ParallelBatch, OneThreadEngineIsExactlySerial) {
  const auto batch = random_batch(24, 14, 3);
  net::WdmNetwork net_serial = churned_network(4, 7);
  net::WdmNetwork net_par = churned_network(4, 7);
  ApproxDisjointRouter router;

  const BatchOutcome serial = provision_batch(net_serial, router, batch);
  ParallelBatchOptions opt;
  opt.threads = 1;
  ParallelBatchEngine engine(opt);
  const BatchOutcome par = engine.run(net_par, router, batch);
  expect_identical(serial, par, net_serial, net_par, "1-thread");
  // threads <= 1 short-circuits to the shared serial provision_batch path:
  // no snapshot pool, no workers, no speculation machinery at all.
  EXPECT_EQ(engine.stats().serial_runs, 1);
  EXPECT_EQ(engine.stats().runs, 0);
  EXPECT_EQ(engine.stats().speculations, 0);
  EXPECT_EQ(engine.stats().epochs, 0);
  EXPECT_EQ(engine.stats().snapshot_syncs, 0);
  EXPECT_EQ(engine.stats().snapshot_copies, 0);
  EXPECT_EQ(engine.stats().requests, static_cast<long long>(batch.size()));
}

TEST(ParallelBatch, TinyAndEmptyBatches) {
  ApproxDisjointRouter router;
  ParallelBatchOptions opt;
  opt.threads = 4;
  ParallelBatchEngine engine(opt);

  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  const BatchOutcome empty = engine.run(net, router, {});
  EXPECT_EQ(empty.accepted, 0);
  EXPECT_EQ(empty.dropped, 0);
  EXPECT_TRUE(empty.routes.empty());

  const BatchOutcome one = engine.run(net, router, random_batch(1, 14, 1));
  EXPECT_EQ(one.accepted + one.dropped, 1);
}

/// Wraps a real router with a small sleep so worker threads actually get
/// scheduled while the commit thread is busy — on a loaded (or single-core)
/// machine the commit thread can otherwise self-route an entire fast batch
/// before any worker wakes, which is correct but leaves speculation untested.
class ThrottledRouter final : public Router {
 public:
  explicit ThrottledRouter(const Router& inner) : inner_(inner) {}
  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override {
    return route(net, s, t, nullptr);
  }
  // Forwards the footprint pointer so the wrapper throttles without
  // collapsing the inner router's footprint to opaque.
  RouteResult route(const net::WdmNetwork& net, net::NodeId s, net::NodeId t,
                    RouteFootprint* fp) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    return inner_.route(net, s, t, fp);
  }
  std::string name() const override { return "throttled+" + inner_.name(); }

 private:
  const Router& inner_;
};

/// The three counter identities documented on ParallelBatchStats; must hold
/// after every exception-free batch, for runs where every request took the
/// parallel path (serial-path delegation only bumps requests/serial_runs).
void expect_stats_reconcile(const ParallelBatchStats& st) {
  EXPECT_EQ(st.spec_commits + st.commit_reroutes, st.requests);
  EXPECT_EQ(st.speculations, st.spec_commits + st.conflicts + st.spec_discarded);
  EXPECT_EQ(st.snapshot_syncs + st.snapshot_copies, st.epochs + st.runs);
  // Derived sanity: every retry claim follows a conflict; every serial
  // fallback is a commit-thread reroute; footprint hits are spec commits.
  EXPECT_LE(st.retries, st.conflicts);
  EXPECT_LE(st.serial_fallbacks, st.commit_reroutes);
  EXPECT_LE(st.footprint_hits, st.spec_commits);
}

TEST(ParallelBatch, StatsAccountForEveryRequest) {
  const auto batch = random_batch(40, 14, 17);
  net::WdmNetwork net = churned_network(8, 9);
  ApproxDisjointRouter inner;
  ThrottledRouter router(inner);
  ParallelBatchOptions opt;
  opt.threads = 4;
  ParallelBatchEngine engine(opt);
  engine.run(net, router, batch);

  const ParallelBatchStats& st = engine.stats();
  EXPECT_EQ(st.requests, static_cast<long long>(batch.size()));
  EXPECT_EQ(st.runs, 1);
  EXPECT_GT(st.speculations, 0);
  expect_stats_reconcile(st);
  EXPECT_GE(st.conflict_rate(), 0.0);
  EXPECT_LE(st.conflict_rate(), 1.0);
  EXPECT_GE(st.spec_hit_rate(), 0.0);
  EXPECT_LE(st.spec_hit_rate(), 1.0);
  EXPECT_GE(st.footprint_hit_rate(), 0.0);
  EXPECT_LE(st.footprint_hit_rate(), 1.0);
}

// The reconciliation identities must hold after EVERY batch, not just in
// aggregate at the end — this is the regression test for the pre-footprint
// accounting bugs (snapshot_syncs > epochs; speculations that vanished from
// conflicts + commits when a publish raced finalization).
TEST(ParallelBatch, StatsReconcileAfterEveryBatch) {
  ApproxDisjointRouter approx;
  MinLoadRouter min_load;
  ThrottledRouter slow_approx(approx);
  ThrottledRouter slow_min_load(min_load);
  const Router* routers[] = {&slow_approx, &slow_min_load};
  ParallelBatchOptions opt;
  opt.threads = 4;
  ParallelBatchEngine engine(opt);
  net::WdmNetwork net = churned_network(8, 23);
  for (int round = 0; round < 4; ++round) {
    const BatchOutcome out = engine.run(
        net, *routers[round % 2], random_batch(24, 14, 100 + round),
        BatchOrder::kShortestFirst);
    SCOPED_TRACE(round);
    EXPECT_EQ(out.accepted + out.dropped, 24);
    expect_stats_reconcile(engine.stats());
    EXPECT_EQ(engine.stats().runs, round + 1);
  }
}

TEST(ParallelBatch, EngineIsReusableAcrossRuns) {
  ApproxDisjointRouter router;
  ParallelBatchOptions opt;
  opt.threads = 2;
  ParallelBatchEngine engine(opt);
  const auto batch = random_batch(16, 14, 21);

  net::WdmNetwork net_par = topo::nsfnet_network(4, 0.5);
  net::WdmNetwork net_serial = topo::nsfnet_network(4, 0.5);
  for (int round = 0; round < 3; ++round) {
    const BatchOutcome serial = provision_batch(net_serial, router, batch);
    const BatchOutcome par = engine.run(net_par, router, batch);
    expect_identical(serial, par, net_serial, net_par, "round");
    release_batch(net_serial, serial);
    release_batch(net_par, par);
  }
  // Later rounds reuse pooled snapshots instead of re-copying the network.
  EXPECT_GT(engine.stats().snapshot_syncs, 0);
}

// ---------------------------------------------------------------------------
// Footprint validation differential: for every footprint-recording router and
// every ordering policy, the engine must produce the bit-identical outcome
// under footprint validation (default), epoch validation
// (force_epoch_validation), and the serial loop. Footprints may change only
// how much speculative work survives, never what gets provisioned.
// ---------------------------------------------------------------------------
TEST(ParallelBatch, FootprintVsEpochDifferential) {
  const auto batch = random_batch(28, 14, 13);
  std::vector<std::pair<const char*, std::unique_ptr<Router>>> routers;
  routers.emplace_back("approx", std::make_unique<ApproxDisjointRouter>());
  routers.emplace_back("approx-norefine",
                       std::make_unique<ApproxDisjointRouter>(false));
  routers.emplace_back("node-disjoint", std::make_unique<NodeDisjointRouter>());
  routers.emplace_back("load+cost", std::make_unique<LoadCostRouter>());
  routers.emplace_back("min-load", std::make_unique<MinLoadRouter>());
  {
    // Bisection exercises the probe-ladder stamps; linear-scan must stay
    // correct via the opaque fallback.
    MinCogOptions bisect;
    bisect.search = ThetaSearch::kBisection;
    routers.emplace_back("min-load-bisect",
                         std::make_unique<MinLoadRouter>(bisect));
    MinCogOptions linear;
    linear.search = ThetaSearch::kLinearScan;
    routers.emplace_back("min-load-linear",
                         std::make_unique<MinLoadRouter>(linear));
  }
  for (const auto& [rname, router] : routers) {
    ThrottledRouter throttled(*router);
    for (BatchOrder order : kAllOrders) {
      net::WdmNetwork net_serial = churned_network(8, 31);
      net::WdmNetwork net_fp = churned_network(8, 31);
      net::WdmNetwork net_ep = churned_network(8, 31);
      support::Rng rng_serial(41), rng_fp(41), rng_ep(41);

      const BatchOutcome serial =
          provision_batch(net_serial, throttled, batch, order, &rng_serial);

      ParallelBatchOptions fp_opt;
      fp_opt.threads = 4;
      ParallelBatchEngine fp_engine(fp_opt);
      const BatchOutcome fp =
          fp_engine.run(net_fp, throttled, batch, order, &rng_fp);

      ParallelBatchOptions ep_opt;
      ep_opt.threads = 4;
      ep_opt.force_epoch_validation = true;
      ParallelBatchEngine ep_engine(ep_opt);
      const BatchOutcome ep =
          ep_engine.run(net_ep, throttled, batch, order, &rng_ep);

      const std::string label =
          std::string(rname) + " / " + batch_order_name(order);
      expect_identical(serial, fp, net_serial, net_fp,
                       (label + " [footprint]").c_str());
      expect_identical(serial, ep, net_serial, net_ep,
                       (label + " [epoch]").c_str());
      expect_stats_reconcile(fp_engine.stats());
      expect_stats_reconcile(ep_engine.stats());
      // Epoch mode can never keep a speculation across a commit.
      EXPECT_EQ(ep_engine.stats().footprint_hits, 0) << label;
    }
  }
}

class ThrowingRouter final : public Router {
 public:
  RouteResult route(const net::WdmNetwork&, net::NodeId,
                    net::NodeId) const override {
    throw std::runtime_error("router blew up");
  }
  std::string name() const override { return "throwing"; }
};

TEST(ParallelBatch, WorkerExceptionRethrownOnCallingThread) {
  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  ThrowingRouter bad;
  ParallelBatchOptions opt;
  opt.threads = 4;
  ParallelBatchEngine engine(opt);
  EXPECT_THROW(engine.run(net, bad, random_batch(12, 14, 2)),
               std::runtime_error);
  // The engine must still be usable after a failed run.
  ApproxDisjointRouter good;
  const BatchOutcome out = engine.run(net, good, random_batch(6, 14, 4));
  EXPECT_EQ(out.accepted + out.dropped, 6);
}

TEST(ParallelBatch, SimulatorBatchModeIsThreadCountInvariant) {
  auto run_sim = [](int threads) {
    sim::SimOptions opt;
    opt.duration = 40.0;
    opt.seed = 5;
    opt.traffic.arrival_rate = 4.0;
    opt.traffic.mean_holding = 3.0;
    opt.batching.interval = 1.0;
    opt.batching.threads = threads;
    ApproxDisjointRouter router;
    sim::Simulator s(topo::nsfnet_network(4, 0.5), router, opt);
    return s.run();
  };
  const sim::SimMetrics serial = run_sim(1);
  const sim::SimMetrics par = run_sim(4);
  EXPECT_GT(serial.offered, 0);
  EXPECT_GT(serial.blocked, 0);  // contended enough to be a real test
  EXPECT_EQ(serial.offered, par.offered);
  EXPECT_EQ(serial.accepted, par.accepted);
  EXPECT_EQ(serial.blocked, par.blocked);
  EXPECT_EQ(serial.route_cost.mean(), par.route_cost.mean());
  EXPECT_EQ(serial.network_load.mean(), par.network_load.mean());
}

TEST(ParallelBatch, SimulatorBatchModeBalancesLedger) {
  sim::SimOptions opt;
  opt.duration = 30.0;
  opt.seed = 8;
  opt.traffic.arrival_rate = 5.0;
  opt.traffic.mean_holding = 2.0;
  opt.batching.interval = 0.5;
  opt.batching.threads = 2;
  opt.restoration = sim::RestorationMode::kPassive;  // backups released
  ApproxDisjointRouter router;
  sim::Simulator s(topo::nsfnet_network(8, 0.5), router, opt);
  const sim::SimMetrics m = s.run();
  EXPECT_GT(m.offered, 0);
  EXPECT_EQ(m.offered, m.accepted + m.blocked);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);  // run() checks too
}

// ---------------------------------------------------------------------------
// FootprintValidator unit tests: drive the validator directly with hand-built
// commits and check each validation rule in isolation. (Suite name contains
// "Footprint" so the TSan CI job's ctest regex picks these up too.)
// ---------------------------------------------------------------------------

/// Reserves (e, l) as a committed single-hop route at `epoch`.
void commit_hop(FootprintValidator& v, net::WdmNetwork& net, graph::EdgeId e,
                net::Wavelength l, std::uint64_t epoch) {
  net::ProtectedRoute r;
  r.primary.hops.push_back({e, l});
  r.primary.found = true;
  r.found = true;
  v.capture_pre(net, r);
  net.reserve(e, l);
  v.commit(net, epoch);
}

TEST(Footprint, OpaqueRequiresEpochExact) {
  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  FootprintValidator v;
  v.begin_run(net);
  RouteFootprint fp;  // default-constructed == opaque
  EXPECT_TRUE(fp.opaque);
  EXPECT_TRUE(v.valid(fp, 0));  // nothing committed yet
  commit_hop(v, net, 0, 0, 1);
  EXPECT_FALSE(v.valid(fp, 0));  // one commit since the snapshot
  EXPECT_TRUE(v.valid(fp, 1));   // snapshot already current
}

TEST(Footprint, CostChannelSurvivesUniformReservation) {
  // Unit weights + uniform conversion costs: while every neighboring link is
  // fully available, reserving wavelengths off one link keeps its mean
  // available weight and every transit-pair mean bitwise unchanged (the
  // identity-pair fraction k/(f*t) is preserved whenever the shrinking set is
  // contained in the other), so the G' cost channel is untouched and
  // cost-semantic speculations survive the commit — the hit epoch validation
  // can never keep.
  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  FootprintValidator v;
  v.begin_run(net);
  RouteFootprint fp;
  fp.begin();
  fp.cost_semantics = true;
  commit_hop(v, net, 0, 0, 1);
  EXPECT_TRUE(v.valid(fp, 0));
  commit_hop(v, net, 0, 1, 2);
  EXPECT_TRUE(v.valid(fp, 0));
  // But once availability is asymmetric across a transit pair, reserving on
  // the neighbor (link 3 feeds tail(link 0)) shifts the (3 -> 0) pair mean:
  // the validator must catch the cross-link interaction and invalidate.
  commit_hop(v, net, 3, 1, 3);
  EXPECT_FALSE(v.valid(fp, 2));
  EXPECT_TRUE(v.valid(fp, 3));
}

TEST(Footprint, CostChannelInvalidatedWhenLinkEmpties) {
  net::WdmNetwork net = topo::nsfnet_network(2, 0.5);
  FootprintValidator v;
  v.begin_run(net);
  RouteFootprint fp;
  fp.begin();
  fp.cost_semantics = true;
  commit_hop(v, net, 0, 0, 1);
  EXPECT_TRUE(v.valid(fp, 0));  // one of two wavelengths left
  // The second reservation drains the link: usable-set membership flips and
  // the G' layout moves — every cost-semantic speculation is stale.
  commit_hop(v, net, 0, 1, 2);
  EXPECT_FALSE(v.valid(fp, 0));
  EXPECT_FALSE(v.valid(fp, 1));
  EXPECT_TRUE(v.valid(fp, 2));
}

TEST(Footprint, ExactLinkInvalidatedOnlyByItsWriters) {
  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  FootprintValidator v;
  v.begin_run(net);
  RouteFootprint fp;
  fp.begin();
  fp.add_exact_link(0);
  commit_hop(v, net, 5, 0, 1);  // writes a different link
  EXPECT_TRUE(v.valid(fp, 0));
  commit_hop(v, net, 0, 0, 2);  // writes the read link
  EXPECT_FALSE(v.valid(fp, 0));
  EXPECT_FALSE(v.valid(fp, 1));
  EXPECT_TRUE(v.valid(fp, 2));
}

TEST(Footprint, LoadBandRules) {
  // nsfnet at W=4: link 0 starts at usage 0, so the commit below moves it
  // load 0.00 -> 0.25 and next-load (U+1)/N 0.25 -> 0.50.
  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  FootprintValidator v;
  v.begin_run(net);
  commit_hop(v, net, 0, 0, 1);

  auto load_fp = [] {
    RouteFootprint fp;
    fp.begin();
    fp.load_semantics = true;
    return fp;
  };

  {  // Bands clear of the write: the speculation survives.
    RouteFootprint fp = load_fp();
    fp.theta_min = 0.1;
    fp.theta_max = 0.9;
    EXPECT_TRUE(v.valid(fp, 0));
  }
  {  // Written link was a member of the accepted G_c (load < ϑ_accepted).
    RouteFootprint fp = load_fp();
    fp.theta_accepted = 0.1;
    EXPECT_FALSE(v.valid(fp, 0));
  }
  {  // NaN ϑ_accepted (dropped request): no members to protect.
    RouteFootprint fp = load_fp();
    EXPECT_TRUE(v.valid(fp, 0));
  }
  {  // Write pushed (U+1)/N above the recorded ϑ_max stamp.
    RouteFootprint fp = load_fp();
    fp.theta_max = 0.4;
    EXPECT_FALSE(v.valid(fp, 0));
  }
  {  // Written link sat exactly at the recorded ϑ_min: the minimum may rise.
    RouteFootprint fp = load_fp();
    fp.theta_min = 0.25;
    EXPECT_FALSE(v.valid(fp, 0));
  }
  {  // A probed G_c(ϑ) band flipped across the write...
    RouteFootprint fp = load_fp();
    fp.theta_probes.push_back(0.2);  // 0.00 < 0.2 but 0.25 >= 0.2
    EXPECT_FALSE(v.valid(fp, 0));
  }
  {  // ...but a probe above both load positions sees no flip.
    RouteFootprint fp = load_fp();
    fp.theta_probes.push_back(0.7);
    EXPECT_TRUE(v.valid(fp, 0));
  }
  {  // Snapshot taken after the commit: always valid.
    RouteFootprint fp = load_fp();
    fp.theta_accepted = 0.1;
    fp.theta_min = 0.25;
    EXPECT_TRUE(v.valid(fp, 1));
  }
}

TEST(Footprint, RulesComposeAcrossMultipleCommits) {
  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  FootprintValidator v;
  v.begin_run(net);
  commit_hop(v, net, 2, 0, 1);
  commit_hop(v, net, 2, 1, 2);  // link 2 now at usage 2: load 0.5
  commit_hop(v, net, 7, 0, 3);

  RouteFootprint fp;
  fp.begin();
  fp.load_semantics = true;
  fp.theta_accepted = 0.3;  // members: load < 0.3
  // Epoch-1 commit wrote link 2 at load_before 0.0 < 0.3 — a member — so a
  // base-0 speculation is stale even though the *latest* commits are benign.
  EXPECT_FALSE(v.valid(fp, 0));
  // From base 1 the remaining writes have load_before 0.25 and 0.0... the
  // epoch-3 write of link 7 starts at 0.0 < 0.3, still a member.
  EXPECT_FALSE(v.valid(fp, 2));
  // Raise the membership bound out of the way instead.
  fp.theta_accepted = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(v.valid(fp, 0));
}

}  // namespace
}  // namespace wdm::rwa
