// ParallelBatchEngine's contract is *bit-for-bit* serial equality: same
// accept/drop decisions, same routes, same reservations, same cost sums as
// provision_batch, for every ordering policy, router, and thread count.
// These tests drive the full matrix on contended, churned, and failure-laden
// networks — the regimes where speculation actually conflicts.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "rwa/node_disjoint_router.hpp"
#include "rwa/parallel_batch.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

std::vector<BatchRequest> random_batch(int count, net::NodeId n,
                                       std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<BatchRequest> batch;
  for (int i = 0; i < count; ++i) {
    BatchRequest r;
    r.id = i;
    r.s = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    r.t = r.s;
    while (r.t == r.s) {
      r.t = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    }
    batch.push_back(r);
  }
  return batch;
}

/// NSFNET with background churn and a couple of failed fibers — a residual
/// network under contention, where speculative commits actually conflict.
net::WdmNetwork churned_network(int W, std::uint64_t seed) {
  net::WdmNetwork n = topo::nsfnet_network(W, 0.5);
  support::Rng rng(seed);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.uniform() < 0.25) n.reserve(e, l);
    });
  }
  n.set_link_failed(static_cast<graph::EdgeId>(
                        rng.uniform_int(0, n.num_links() - 1)),
                    true);
  return n;
}

void expect_identical(const BatchOutcome& serial, const BatchOutcome& par,
                      const net::WdmNetwork& net_serial,
                      const net::WdmNetwork& net_par, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(serial.accepted, par.accepted);
  EXPECT_EQ(serial.dropped, par.dropped);
  EXPECT_EQ(serial.total_cost, par.total_cost);  // exact: same fp sum order
  EXPECT_EQ(serial.final_network_load, par.final_network_load);
  ASSERT_EQ(serial.routes.size(), par.routes.size());
  for (std::size_t i = 0; i < serial.routes.size(); ++i) {
    ASSERT_EQ(serial.routes[i].has_value(), par.routes[i].has_value())
        << "request " << i;
    if (!serial.routes[i].has_value()) continue;
    EXPECT_TRUE(serial.routes[i]->primary.hops == par.routes[i]->primary.hops)
        << "primary of request " << i;
    EXPECT_TRUE(serial.routes[i]->backup.hops == par.routes[i]->backup.hops)
        << "backup of request " << i;
  }
  // The reservation ledgers — the network states themselves — must agree.
  EXPECT_EQ(net_serial.usage_snapshot(), net_par.usage_snapshot());
}

std::vector<std::pair<const char*, std::unique_ptr<Router>>> all_routers() {
  std::vector<std::pair<const char*, std::unique_ptr<Router>>> v;
  v.emplace_back("approx", std::make_unique<ApproxDisjointRouter>());
  v.emplace_back("approx-norefine",
                 std::make_unique<ApproxDisjointRouter>(false));
  v.emplace_back("node-disjoint", std::make_unique<NodeDisjointRouter>());
  v.emplace_back("two-step", std::make_unique<TwoStepRouter>());
  v.emplace_back("phys-firstfit", std::make_unique<PhysicalFirstFitRouter>());
  v.emplace_back("load+cost", std::make_unique<LoadCostRouter>());
  v.emplace_back("min-load", std::make_unique<MinLoadRouter>());
  return v;
}

constexpr BatchOrder kAllOrders[] = {
    BatchOrder::kArrival, BatchOrder::kShortestFirst,
    BatchOrder::kLongestFirst, BatchOrder::kRandom};

TEST(ParallelBatch, MatchesSerialForEveryRouterAndOrder) {
  const auto batch = random_batch(32, 14, 11);
  for (const auto& [rname, router] : all_routers()) {
    for (BatchOrder order : kAllOrders) {
      net::WdmNetwork net_serial = churned_network(8, 5);
      net::WdmNetwork net_par = churned_network(8, 5);
      support::Rng rng_serial(99), rng_par(99);

      const BatchOutcome serial =
          provision_batch(net_serial, *router, batch, order, &rng_serial);

      ParallelBatchOptions opt;
      opt.threads = 4;
      ParallelBatchEngine engine(opt);
      const BatchOutcome par =
          engine.run(net_par, *router, batch, order, &rng_par);

      const std::string label =
          std::string(rname) + " / " + batch_order_name(order);
      expect_identical(serial, par, net_serial, net_par, label.c_str());
      // Contended batch: the serial baseline must actually drop something,
      // or this matrix isn't exercising conflicts at all.
      EXPECT_GT(serial.accepted, 0) << label;
    }
  }
}

TEST(ParallelBatch, OneThreadEngineIsExactlySerial) {
  const auto batch = random_batch(24, 14, 3);
  net::WdmNetwork net_serial = churned_network(4, 7);
  net::WdmNetwork net_par = churned_network(4, 7);
  ApproxDisjointRouter router;

  const BatchOutcome serial = provision_batch(net_serial, router, batch);
  ParallelBatchOptions opt;
  opt.threads = 1;
  ParallelBatchEngine engine(opt);
  const BatchOutcome par = engine.run(net_par, router, batch);
  expect_identical(serial, par, net_serial, net_par, "1-thread");
  // The serial path never speculates or snapshots.
  EXPECT_EQ(engine.stats().speculations, 0);
  EXPECT_EQ(engine.stats().snapshot_copies, 0);
  EXPECT_EQ(engine.stats().requests, static_cast<long long>(batch.size()));
}

TEST(ParallelBatch, TinyAndEmptyBatches) {
  ApproxDisjointRouter router;
  ParallelBatchOptions opt;
  opt.threads = 4;
  ParallelBatchEngine engine(opt);

  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  const BatchOutcome empty = engine.run(net, router, {});
  EXPECT_EQ(empty.accepted, 0);
  EXPECT_EQ(empty.dropped, 0);
  EXPECT_TRUE(empty.routes.empty());

  const BatchOutcome one = engine.run(net, router, random_batch(1, 14, 1));
  EXPECT_EQ(one.accepted + one.dropped, 1);
}

/// Wraps a real router with a small sleep so worker threads actually get
/// scheduled while the commit thread is busy — on a loaded (or single-core)
/// machine the commit thread can otherwise self-route an entire fast batch
/// before any worker wakes, which is correct but leaves speculation untested.
class ThrottledRouter final : public Router {
 public:
  explicit ThrottledRouter(const Router& inner) : inner_(inner) {}
  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    return inner_.route(net, s, t);
  }
  std::string name() const override { return "throttled+" + inner_.name(); }

 private:
  const Router& inner_;
};

TEST(ParallelBatch, StatsAccountForEveryRequest) {
  const auto batch = random_batch(40, 14, 17);
  net::WdmNetwork net = churned_network(8, 9);
  ApproxDisjointRouter inner;
  ThrottledRouter router(inner);
  ParallelBatchOptions opt;
  opt.threads = 4;
  ParallelBatchEngine engine(opt);
  engine.run(net, router, batch);

  const ParallelBatchStats& st = engine.stats();
  EXPECT_EQ(st.requests, static_cast<long long>(batch.size()));
  // Every request is finalized exactly once: either straight from a fresh
  // speculative result or re-routed on the commit thread.
  EXPECT_EQ(st.spec_commits + st.commit_reroutes, st.requests);
  EXPECT_GT(st.speculations, 0);
  // Each publish is either an in-place sync or a deep copy; there is one
  // publish per accepted commit plus the initial one.
  EXPECT_EQ(st.snapshot_syncs + st.snapshot_copies, st.epochs + 1);
  EXPECT_GE(st.conflict_rate(), 0.0);
  EXPECT_LE(st.conflict_rate(), 1.0);
  EXPECT_GE(st.spec_hit_rate(), 0.0);
  EXPECT_LE(st.spec_hit_rate(), 1.0);
}

TEST(ParallelBatch, EngineIsReusableAcrossRuns) {
  ApproxDisjointRouter router;
  ParallelBatchOptions opt;
  opt.threads = 2;
  ParallelBatchEngine engine(opt);
  const auto batch = random_batch(16, 14, 21);

  net::WdmNetwork net_par = topo::nsfnet_network(4, 0.5);
  net::WdmNetwork net_serial = topo::nsfnet_network(4, 0.5);
  for (int round = 0; round < 3; ++round) {
    const BatchOutcome serial = provision_batch(net_serial, router, batch);
    const BatchOutcome par = engine.run(net_par, router, batch);
    expect_identical(serial, par, net_serial, net_par, "round");
    release_batch(net_serial, serial);
    release_batch(net_par, par);
  }
  // Later rounds reuse pooled snapshots instead of re-copying the network.
  EXPECT_GT(engine.stats().snapshot_syncs, 0);
}

class ThrowingRouter final : public Router {
 public:
  RouteResult route(const net::WdmNetwork&, net::NodeId,
                    net::NodeId) const override {
    throw std::runtime_error("router blew up");
  }
  std::string name() const override { return "throwing"; }
};

TEST(ParallelBatch, WorkerExceptionRethrownOnCallingThread) {
  net::WdmNetwork net = topo::nsfnet_network(4, 0.5);
  ThrowingRouter bad;
  ParallelBatchOptions opt;
  opt.threads = 4;
  ParallelBatchEngine engine(opt);
  EXPECT_THROW(engine.run(net, bad, random_batch(12, 14, 2)),
               std::runtime_error);
  // The engine must still be usable after a failed run.
  ApproxDisjointRouter good;
  const BatchOutcome out = engine.run(net, good, random_batch(6, 14, 4));
  EXPECT_EQ(out.accepted + out.dropped, 6);
}

TEST(ParallelBatch, SimulatorBatchModeIsThreadCountInvariant) {
  auto run_sim = [](int threads) {
    sim::SimOptions opt;
    opt.duration = 40.0;
    opt.seed = 5;
    opt.traffic.arrival_rate = 4.0;
    opt.traffic.mean_holding = 3.0;
    opt.batching.interval = 1.0;
    opt.batching.threads = threads;
    ApproxDisjointRouter router;
    sim::Simulator s(topo::nsfnet_network(4, 0.5), router, opt);
    return s.run();
  };
  const sim::SimMetrics serial = run_sim(1);
  const sim::SimMetrics par = run_sim(4);
  EXPECT_GT(serial.offered, 0);
  EXPECT_GT(serial.blocked, 0);  // contended enough to be a real test
  EXPECT_EQ(serial.offered, par.offered);
  EXPECT_EQ(serial.accepted, par.accepted);
  EXPECT_EQ(serial.blocked, par.blocked);
  EXPECT_EQ(serial.route_cost.mean(), par.route_cost.mean());
  EXPECT_EQ(serial.network_load.mean(), par.network_load.mean());
}

TEST(ParallelBatch, SimulatorBatchModeBalancesLedger) {
  sim::SimOptions opt;
  opt.duration = 30.0;
  opt.seed = 8;
  opt.traffic.arrival_rate = 5.0;
  opt.traffic.mean_holding = 2.0;
  opt.batching.interval = 0.5;
  opt.batching.threads = 2;
  opt.restoration = sim::RestorationMode::kPassive;  // backups released
  ApproxDisjointRouter router;
  sim::Simulator s(topo::nsfnet_network(8, 0.5), router, opt);
  const sim::SimMetrics m = s.run();
  EXPECT_GT(m.offered, 0);
  EXPECT_EQ(m.offered, m.accepted + m.blocked);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);  // run() checks too
}

}  // namespace
}  // namespace wdm::rwa
