#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "graph/heaps.hpp"
#include "support/rng.hpp"

namespace wdm::graph {
namespace {

// Typed test battery over all heap backends.
template <typename H>
class HeapTest : public ::testing::Test {};

using HeapTypes = ::testing::Types<BinaryHeap, QuadHeap, PairingHeap>;
TYPED_TEST_SUITE(HeapTest, HeapTypes);

TYPED_TEST(HeapTest, EmptyOnConstruction) {
  TypeParam h(10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.contains(3));
}

TYPED_TEST(HeapTest, PushPopSingle) {
  TypeParam h(4);
  h.push(2, 3.5);
  EXPECT_TRUE(h.contains(2));
  EXPECT_DOUBLE_EQ(h.key(2), 3.5);
  const auto [id, k] = h.pop_min();
  EXPECT_EQ(id, 2u);
  EXPECT_DOUBLE_EQ(k, 3.5);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(2));
}

TYPED_TEST(HeapTest, HeapsortProperty) {
  support::Rng rng(1);
  const std::size_t n = 500;
  TypeParam h(n);
  std::vector<double> keys;
  for (std::size_t i = 0; i < n; ++i) {
    const double k = rng.uniform(0, 100);
    keys.push_back(k);
    h.push(i, k);
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < n; ++i) {
    const auto [id, k] = h.pop_min();
    (void)id;
    EXPECT_DOUBLE_EQ(k, keys[i]);
  }
  EXPECT_TRUE(h.empty());
}

TYPED_TEST(HeapTest, DecreaseKeyReordersCorrectly) {
  TypeParam h(4);
  h.push(0, 10.0);
  h.push(1, 20.0);
  h.push(2, 30.0);
  h.decrease_key(2, 5.0);
  EXPECT_DOUBLE_EQ(h.key(2), 5.0);
  EXPECT_EQ(h.pop_min().first, 2u);
  EXPECT_EQ(h.pop_min().first, 0u);
  EXPECT_EQ(h.pop_min().first, 1u);
}

TYPED_TEST(HeapTest, PushOrDecreaseIgnoresLargerKey) {
  TypeParam h(2);
  h.push(0, 5.0);
  h.push_or_decrease(0, 9.0);  // no-op
  EXPECT_DOUBLE_EQ(h.key(0), 5.0);
  h.push_or_decrease(0, 2.0);  // decrease
  EXPECT_DOUBLE_EQ(h.key(0), 2.0);
  h.push_or_decrease(1, 1.0);  // push
  EXPECT_EQ(h.pop_min().first, 1u);
}

TYPED_TEST(HeapTest, RandomizedAgainstReferenceMultimap) {
  support::Rng rng(42);
  const std::size_t universe = 200;
  TypeParam h(universe);
  std::map<std::size_t, double> ref;  // id -> key
  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 2));
    if (op == 0) {
      const std::size_t id = rng.index(universe);
      if (!ref.count(id)) {
        const double k = rng.uniform(0, 1000);
        h.push(id, k);
        ref[id] = k;
      }
    } else if (op == 1 && !ref.empty()) {
      // decrease a random present key
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.index(ref.size())));
      const double nk = it->second * rng.uniform();
      h.decrease_key(it->first, nk);
      it->second = nk;
    } else if (!ref.empty()) {
      const auto [id, k] = h.pop_min();
      double best = std::numeric_limits<double>::infinity();
      for (const auto& [rid, rk] : ref) best = std::min(best, rk);
      EXPECT_DOUBLE_EQ(k, best);
      ASSERT_TRUE(ref.count(id));
      EXPECT_DOUBLE_EQ(ref[id], k);
      ref.erase(id);
    }
    ASSERT_EQ(h.size(), ref.size());
  }
}

// Cross-backend differential: the same operation sequence driven through all
// three backends plus a std::map reference in lockstep. Keys are drawn unique
// (and decrease-key targets stay unique), so min-extraction order is fully
// determined and every backend must produce the IDENTICAL (id, key) pop
// sequence — any divergence pins the faulty backend immediately, which the
// per-backend multimap test above cannot do.
TEST(HeapDifferential, BackendsAgreeInLockstepUnderUniqueKeys) {
  for (const std::uint64_t seed : {7u, 19u, 101u, 4242u}) {
    support::Rng rng(seed);
    const std::size_t universe = 128;
    BinaryHeap bin(universe);
    QuadHeap quad(universe);
    PairingHeap pair(universe);
    std::map<std::size_t, double> ref;  // id -> key
    std::set<double> used_keys;
    auto fresh_key = [&](double hi) {
      double k;
      do {
        k = rng.uniform(0.0, hi);
      } while (!used_keys.insert(k).second);
      return k;
    };
    for (int step = 0; step < 5000; ++step) {
      const int op = static_cast<int>(rng.uniform_int(0, 3));
      if (op <= 1) {  // push (weighted: keep the heaps populated)
        const std::size_t id = rng.index(universe);
        if (ref.count(id)) continue;
        const double k = fresh_key(1000.0);
        bin.push(id, k);
        quad.push(id, k);
        pair.push(id, k);
        ref[id] = k;
      } else if (op == 2 && !ref.empty()) {
        auto it = ref.begin();
        std::advance(it, static_cast<long>(rng.index(ref.size())));
        const double nk = fresh_key(it->second);
        bin.decrease_key(it->first, nk);
        quad.decrease_key(it->first, nk);
        pair.decrease_key(it->first, nk);
        it->second = nk;
      } else if (!ref.empty()) {
        const auto [bid, bk] = bin.pop_min();
        const auto [qid, qk] = quad.pop_min();
        const auto [pid, pk] = pair.pop_min();
        const auto min_it = std::min_element(
            ref.begin(), ref.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
        ASSERT_EQ(bid, min_it->first);
        ASSERT_EQ(qid, min_it->first);
        ASSERT_EQ(pid, min_it->first);
        ASSERT_EQ(bk, min_it->second);
        ASSERT_EQ(qk, min_it->second);
        ASSERT_EQ(pk, min_it->second);
        ref.erase(min_it);
      }
      ASSERT_EQ(bin.size(), ref.size());
      ASSERT_EQ(quad.size(), ref.size());
      ASSERT_EQ(pair.size(), ref.size());
    }
    // Drain: the full residual pop order must agree across backends.
    while (!ref.empty()) {
      const auto [bid, bk] = bin.pop_min();
      const auto [qid, qk] = quad.pop_min();
      const auto [pid, pk] = pair.pop_min();
      ASSERT_EQ(bid, qid);
      ASSERT_EQ(qid, pid);
      ASSERT_EQ(bk, qk);
      ASSERT_EQ(qk, pk);
      ASSERT_EQ(ref.count(bid), 1u);
      ASSERT_EQ(ref[bid], bk);
      ref.erase(bid);
    }
    EXPECT_TRUE(bin.empty());
    EXPECT_TRUE(quad.empty());
    EXPECT_TRUE(pair.empty());
  }
}

TYPED_TEST(HeapTest, ReusableAfterDrain) {
  TypeParam h(3);
  h.push(0, 1.0);
  h.pop_min();
  h.push(0, 2.0);  // same id again after removal
  EXPECT_DOUBLE_EQ(h.key(0), 2.0);
  EXPECT_EQ(h.pop_min().first, 0u);
}

TYPED_TEST(HeapTest, EqualKeysAllPopped) {
  TypeParam h(5);
  for (std::size_t i = 0; i < 5; ++i) h.push(i, 7.0);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 5; ++i) {
    const auto [id, k] = h.pop_min();
    EXPECT_DOUBLE_EQ(k, 7.0);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
  EXPECT_TRUE(h.empty());
}

}  // namespace
}  // namespace wdm::graph
