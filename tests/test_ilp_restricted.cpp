// ILP formulation under restricted conversion tables and loaded residuals —
// the regimes the basic E9 agreement test does not cover.
#include <gtest/gtest.h>

#include "rwa/exact_router.hpp"
#include "rwa/ilp_router.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

TEST(IlpRestricted, ForbiddenConversionCutEnforced) {
  // Node 1 cannot convert: the IP must deliver wavelength-continuous paths.
  net::WdmNetwork n(3, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  n.add_link(0, 1, net::WavelengthSet::all(2), 2.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 2.0);
  const IlpRouteResult r = ilp_disjoint_pair(n, 0, 2);
  ASSERT_TRUE(r.result.found);
  EXPECT_TRUE(r.result.route.primary.is_lightpath());
  EXPECT_TRUE(r.result.route.backup.is_lightpath());
  EXPECT_TRUE(r.result.route.feasible(n));
}

TEST(IlpRestricted, ConversionCostEnteredInObjective) {
  // Force a conversion on the only viable pair of paths and check Eq. (3)
  // includes its cost.
  net::WdmNetwork n(3, 2);
  n.set_conversion(1, net::ConversionTable::full(2, 0.75));
  net::WavelengthSet only0, only1, both = net::WavelengthSet::all(2);
  only0.insert(0);
  only1.insert(1);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 2, only1, 1.0);  // forces a 0 -> 1 conversion at node 1
  n.add_link(0, 2, both, 10.0);  // backup: expensive direct fiber
  const IlpRouteResult r = ilp_disjoint_pair(n, 0, 2);
  ASSERT_TRUE(r.result.found);
  // Costs: 1 + 0.75 + 1 (converted 2-hop) + 10 (direct) = 12.75.
  EXPECT_NEAR(r.objective, 12.75, 1e-6);
  EXPECT_NEAR(r.result.total_cost(n), 12.75, 1e-6);
}

TEST(IlpRestricted, InfeasibleWithoutConversion) {
  net::WdmNetwork n(3, 2);  // no conversion
  net::WavelengthSet only0, only1;
  only0.insert(0);
  only1.insert(1);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 2, only1, 1.0);
  n.add_link(0, 2, only0, 1.0);
  // Only one wavelength-feasible path (the direct one): no disjoint pair.
  const IlpRouteResult r = ilp_disjoint_pair(n, 0, 2);
  EXPECT_FALSE(r.result.found);
  EXPECT_EQ(r.status, ilp::IpStatus::kInfeasible);
}

class IlpLoadedAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(IlpLoadedAgreementTest, AgreesUnderLoadAndLimitedRange) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  topo::NetworkOptions opt;
  opt.num_wavelengths = 2;
  opt.cost_model = topo::CostModel::kRandomPerLink;
  opt.conversion_model =
      (seed % 2 == 0) ? topo::ConversionModel::kLimitedRange
                      : topo::ConversionModel::kNone;
  opt.conversion_range = 1;
  opt.conversion_cost = 0.25;
  net::WdmNetwork n = test::random_network(5, 4, 2, seed * 409 + 11, opt);
  support::Rng rng(seed);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(0.2)) n.reserve(e, l);
    });
  }
  const IlpRouteResult ip = ilp_disjoint_pair(n, 0, 4);
  const ExactResult en = exact_disjoint_pair(n, 0, 4);
  ASSERT_EQ(ip.result.found, en.result.found);
  if (ip.result.found) {
    EXPECT_TRUE(ip.result.route.feasible(n));
    EXPECT_NEAR(ip.result.total_cost(n), en.result.total_cost(n), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(TinyRestrictedNetworks, IlpLoadedAgreementTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace wdm::rwa
