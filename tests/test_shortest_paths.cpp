#include <gtest/gtest.h>

#include "graph/bellman_ford.hpp"
#include "graph/dijkstra.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace wdm::graph {
namespace {

TEST(Dijkstra, SingleEdge) {
  Digraph g(2);
  g.add_edge(0, 1);
  std::vector<double> w{2.5};
  const auto tree = dijkstra(g, w, 0);
  EXPECT_DOUBLE_EQ(tree.distance(1), 2.5);
  const Path p = extract_path(g, tree, 1);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(p.cost, 2.5);
}

TEST(Dijkstra, PrefersCheaperIndirectRoute) {
  Digraph g(3);
  g.add_edge(0, 2);  // direct, cost 10
  g.add_edge(0, 1);  // via 1, cost 2 + 3
  g.add_edge(1, 2);
  std::vector<double> w{10, 2, 3};
  const Path p = shortest_path(g, w, 0, 2);
  ASSERT_TRUE(p.found);
  EXPECT_DOUBLE_EQ(p.cost, 5.0);
  EXPECT_EQ(p.edges.size(), 2u);
}

TEST(Dijkstra, UnreachableTarget) {
  Digraph g(3);
  g.add_edge(0, 1);
  std::vector<double> w{1};
  const Path p = shortest_path(g, w, 0, 2);
  EXPECT_FALSE(p.found);
}

TEST(Dijkstra, SourceToItselfZero) {
  Digraph g(2);
  g.add_edge(0, 1);
  std::vector<double> w{1};
  const auto tree = dijkstra(g, w, 0);
  EXPECT_DOUBLE_EQ(tree.distance(0), 0.0);
  const Path p = extract_path(g, tree, 0);
  ASSERT_TRUE(p.found);
  EXPECT_TRUE(p.edges.empty());
}

TEST(Dijkstra, EdgeMaskExcludesEdges) {
  Digraph g(2);
  const EdgeId cheap = g.add_edge(0, 1);
  g.add_edge(0, 1);
  std::vector<double> w{1, 5};
  std::vector<std::uint8_t> mask{0, 1};
  (void)cheap;
  const Path p = shortest_path(g, w, 0, 1, mask);
  ASSERT_TRUE(p.found);
  EXPECT_DOUBLE_EQ(p.cost, 5.0);
}

TEST(Dijkstra, ZeroWeightsHandled) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<double> w{0, 0};
  const Path p = shortest_path(g, w, 0, 2);
  ASSERT_TRUE(p.found);
  EXPECT_DOUBLE_EQ(p.cost, 0.0);
}

TEST(Dijkstra, ParallelEdgesPickCheapest) {
  Digraph g(2);
  g.add_edge(0, 1);
  const EdgeId cheap = g.add_edge(0, 1);
  std::vector<double> w{7, 3};
  const Path p = shortest_path(g, w, 0, 1);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.edges[0], cheap);
}

TEST(BellmanFord, MatchesDijkstraOnSmallGraph) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  std::vector<double> w{1, 1, 5, 2};
  const auto d = dijkstra(g, w, 0);
  const auto b = bellman_ford(g, w, 0);
  ASSERT_TRUE(b.has_value());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(d.distance(v), b->distance(v));
  }
}

TEST(BellmanFord, HandlesNegativeEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  std::vector<double> w{4, -2, 3};
  const auto b = bellman_ford(g, w, 0);
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(b->distance(2), 2.0);
}

TEST(BellmanFord, DetectsNegativeCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  std::vector<double> w{1, -3};
  EXPECT_FALSE(bellman_ford(g, w, 0).has_value());
}

TEST(BellmanFord, NegativeCycleUnreachableIsFine) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  std::vector<double> w{1, -1, -1};
  const auto b = bellman_ford(g, w, 0);
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(b->distance(1), 1.0);
  EXPECT_FALSE(b->reached(2));
}

// Property: Dijkstra agrees with Bellman-Ford on random nonnegative graphs,
// across heap backends.
class DijkstraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraPropertyTest, AgreesWithBellmanFordAllBackends) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + static_cast<int>(rng.uniform_int(0, 38));
  const int m = static_cast<int>(rng.uniform_int(1, 4 * n));
  const auto [g, w] = test::random_digraph(n, m, rng, 0.0, 10.0);
  const NodeId src = static_cast<NodeId>(rng.uniform_int(0, n - 1));

  const auto ref = bellman_ford(g, w, src);
  ASSERT_TRUE(ref.has_value());
  const auto d2 = dijkstra_with<BinaryHeap>(g, w, src);
  const auto d4 = dijkstra_with<QuadHeap>(g, w, src);
  const auto dp = dijkstra_with<PairingHeap>(g, w, src);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!ref->reached(v)) {
      EXPECT_FALSE(d2.reached(v));
      EXPECT_FALSE(d4.reached(v));
      EXPECT_FALSE(dp.reached(v));
      continue;
    }
    EXPECT_NEAR(d2.distance(v), ref->distance(v), 1e-9);
    EXPECT_NEAR(d4.distance(v), ref->distance(v), 1e-9);
    EXPECT_NEAR(dp.distance(v), ref->distance(v), 1e-9);
  }
}

TEST_P(DijkstraPropertyTest, ExtractedPathCostMatchesDistance) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
  const int n = 2 + static_cast<int>(rng.uniform_int(0, 18));
  const int m = static_cast<int>(rng.uniform_int(1, 3 * n));
  const auto [g, w] = test::random_digraph(n, m, rng);
  const auto tree = dijkstra(g, w, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!tree.reached(v)) continue;
    const Path p = extract_path(g, tree, v);
    ASSERT_TRUE(p.found);
    EXPECT_TRUE(p.contiguous_in(g));
    EXPECT_NEAR(path_weight(p, w), tree.distance(v), 1e-9);
    if (!p.edges.empty()) {
      EXPECT_EQ(g.tail(p.edges.front()), 0);
      EXPECT_EQ(g.head(p.edges.back()), v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DijkstraPropertyTest,
                         ::testing::Range(0, 25));

TEST(Path, EdgeDisjointHelpers) {
  Digraph g(4);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(1, 3);
  const EdgeId c = g.add_edge(0, 2);
  const EdgeId d = g.add_edge(2, 3);
  Path p1;
  p1.found = true;
  p1.edges = {a, b};
  Path p2;
  p2.found = true;
  p2.edges = {c, d};
  EXPECT_TRUE(edge_disjoint(p1, p2));
  EXPECT_TRUE(internally_node_disjoint(p1, p2, g));
  Path p3;
  p3.found = true;
  p3.edges = {a, b};
  EXPECT_FALSE(edge_disjoint(p1, p3));
}

}  // namespace
}  // namespace wdm::graph
