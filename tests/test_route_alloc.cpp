// The zero-allocation guarantee of the routing hot path, enforced by a
// counting global operator new. ISSUE/ROADMAP item 4's acceptance bar:
// after a warmup request has sized the stable arena, the warm Suurballe
// trees, and every pooled scratch buffer, a steady-state
// ApproxDisjointRouter::route_into (kFull policy, refine off) must touch
// the heap ZERO times. The hook counts every global new while armed; any
// regression — a stray std::vector rebuild, a std::function capture, a
// string in a telemetry label — fails loudly with the exact count.
//
// Debug builds run the same scenarios without the zero bar (WDM_DCHECK
// machinery and libstdc++ debug containers allocate freely); the strict
// assertions are NDEBUG-only, as documented in DESIGN.md.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "graph/suurballe_warm.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/aux_graph.hpp"
#include "topology/network_builder.hpp"

namespace {

std::atomic<std::uint64_t> g_armed{0};
std::atomic<std::uint64_t> g_allocations{0};

void count_alloc() {
  if (g_armed.load(std::memory_order_relaxed) != 0) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Counts allocations while alive; read the delta via count().
class AllocationProbe {
 public:
  AllocationProbe() : start_(g_allocations.load()) {
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
  ~AllocationProbe() { g_armed.fetch_sub(1, std::memory_order_relaxed); }
  std::uint64_t count() const { return g_allocations.load() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace

// Counting replacements for the whole binary. Deletes never count — only
// acquisition matters for the steady-state bar.
void* operator new(std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  count_alloc();
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = nullptr;
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wdm {
namespace {

#ifdef NDEBUG
constexpr bool kStrict = true;
#else
constexpr bool kStrict = false;
#endif

TEST(RouteAlloc, HookCountsWhileArmedOnly) {
  // Explicit operator-new calls: a `new int` expression may legally be
  // elided by the optimizer, the direct function call may not.
  const std::uint64_t before = g_allocations.load();
  ::operator delete(::operator new(16));  // unarmed: invisible
  EXPECT_EQ(g_allocations.load(), before);
  AllocationProbe probe;
  ::operator delete(::operator new(16));
  EXPECT_GE(probe.count(), 1u);
}

TEST(RouteAlloc, SteadyStateRouteIntoIsAllocationFree) {
  net::WdmNetwork net = topo::nsfnet_network(/*W=*/8, 0.25);
  const rwa::ApproxDisjointRouter router(/*refine=*/false);
  rwa::RouteResult out;

  // Deterministic query mix; routing never mutates the network, so the
  // armed pass replays the warmup pass exactly.
  const std::pair<net::NodeId, net::NodeId> queries[] = {
      {0, 7}, {3, 12}, {5, 9}, {1, 13}, {0, 7}, {10, 2}};

  // Warmup: size the arena, the warm trees (one per source), the pooled
  // scratch buffers, and `out`'s hop vectors.
  for (const auto& [s, t] : queries) router.route_into(net, s, t, &out, nullptr);

  AllocationProbe probe;
  for (const auto& [s, t] : queries) router.route_into(net, s, t, &out, nullptr);
  if (kStrict) {
    EXPECT_EQ(probe.count(), 0u)
        << "steady-state route_into touched the heap";
  } else {
    GTEST_SKIP() << "zero-allocation bar is NDEBUG-only (ran "
                 << probe.count() << " allocations unasserted)";
  }
}

TEST(RouteAlloc, StableArenaRebuildAndWarmSolveAreAllocationFree) {
  net::WdmNetwork net = topo::nsfnet_network(/*W=*/8, 0.25);
  rwa::AuxGraphBuilder builder;
  graph::SuurballeEngine engine;
  graph::DisjointPair pair;
  rwa::AuxGraphOptions opt;
  opt.stable_arena = true;

  auto one_request = [&](net::NodeId s, net::NodeId t) {
    const rwa::AuxGraph& aux = builder.build(net, s, t, opt);
    engine.solve_into(aux.g, aux.w, aux.s_prime, aux.t_second,
                      static_cast<std::uint64_t>(s), &pair);
  };
  // A state-neutral churn cycle: reserve, route, release, route. Each cycle
  // ends with the network back in its starting state, so every cycle after
  // the first replays identical weight diffs through identically-sized
  // repair scratch buffers.
  auto cycle = [&] {
    const net::Wavelength l0 = net.available(0).lowest();
    net.reserve(0, l0);
    one_request(0, 7);
    const net::Wavelength l1 = net.available(1).lowest();
    net.reserve(1, l1);
    one_request(3, 12);
    net.release(0, l0);
    one_request(0, 7);
    net.release(1, l1);
    one_request(3, 12);
  };
  cycle();  // sizes the arena, trees, and repair scratch
  cycle();  // confirms the steady state is reachable

  AllocationProbe probe;
  cycle();
  if (kStrict) {
    EXPECT_EQ(probe.count(), 0u)
        << "arena rebuild / warm solve touched the heap";
  } else {
    GTEST_SKIP() << "zero-allocation bar is NDEBUG-only";
  }
}

}  // namespace
}  // namespace wdm
