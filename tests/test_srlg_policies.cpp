// Protection-policy differential no-regression suite.
//
// The tentpole guarantee of the SRLG work: on a network with no SRLG
// annotations, ProtectPolicy::full and ProtectPolicy::srlg are *bit-for-bit*
// the pre-SRLG behavior — same routes, same accept/drop decisions, same
// reservation ledgers — for every router and every batch ordering policy.
// ProtectPolicy::full is additionally bit-for-bit unchanged even when the
// network does carry SRLGs (annotations are inert unless opted into).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rwa/approx_router.hpp"
#include "rwa/batch.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "rwa/node_disjoint_router.hpp"
#include "support/rng.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

using RouterSet = std::vector<std::pair<const char*, std::unique_ptr<Router>>>;

RouterSet routers_with(net::ProtectPolicy policy) {
  RouterSet v;
  v.emplace_back("approx", std::make_unique<ApproxDisjointRouter>(true, policy));
  v.emplace_back("node-disjoint",
                 std::make_unique<NodeDisjointRouter>(policy));
  v.emplace_back("load+cost",
                 std::make_unique<LoadCostRouter>(MinCogOptions{}, false,
                                                  policy));
  v.emplace_back("min-load",
                 std::make_unique<MinLoadRouter>(MinCogOptions{}, policy));
  return v;
}

RouterSet default_routers() {
  RouterSet v;
  v.emplace_back("approx", std::make_unique<ApproxDisjointRouter>());
  v.emplace_back("node-disjoint", std::make_unique<NodeDisjointRouter>());
  v.emplace_back("load+cost", std::make_unique<LoadCostRouter>());
  v.emplace_back("min-load", std::make_unique<MinLoadRouter>());
  return v;
}

std::vector<BatchRequest> random_batch(int count, net::NodeId n,
                                       std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<BatchRequest> batch;
  for (int i = 0; i < count; ++i) {
    BatchRequest r;
    r.id = i;
    r.s = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    r.t = r.s;
    while (r.t == r.s) {
      r.t = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    }
    batch.push_back(r);
  }
  return batch;
}

net::WdmNetwork churned_network(int W, std::uint64_t seed, bool with_srlgs) {
  net::WdmNetwork n = topo::nsfnet_network(W, 0.5);
  support::Rng rng(seed);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.uniform() < 0.25) n.reserve(e, l);
    });
  }
  if (with_srlgs) {
    n.add_srlg({0, 1}, 0.3);
    n.add_srlg({2, 3, 4}, 0.1);
  }
  return n;
}

constexpr BatchOrder kAllOrders[] = {
    BatchOrder::kArrival, BatchOrder::kShortestFirst,
    BatchOrder::kLongestFirst, BatchOrder::kRandom};

void expect_identical_outcomes(const BatchOutcome& a, const BatchOutcome& b,
                               const net::WdmNetwork& net_a,
                               const net::WdmNetwork& net_b,
                               const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.total_cost, b.total_cost);  // exact: identical fp sum order
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    ASSERT_EQ(a.routes[i].has_value(), b.routes[i].has_value())
        << "request " << i;
    if (!a.routes[i].has_value()) continue;
    EXPECT_TRUE(a.routes[i]->primary.hops == b.routes[i]->primary.hops)
        << "primary of request " << i;
    EXPECT_TRUE(a.routes[i]->backup.hops == b.routes[i]->backup.hops)
        << "backup of request " << i;
  }
  EXPECT_EQ(net_a.usage_snapshot(), net_b.usage_snapshot());
}

void run_policy_matrix(net::ProtectPolicy policy, bool with_srlgs,
                       const char* tag) {
  const auto batch = random_batch(32, 14, 11);
  const RouterSet base = default_routers();
  const RouterSet variant = routers_with(policy);
  ASSERT_EQ(base.size(), variant.size());
  for (std::size_t r = 0; r < base.size(); ++r) {
    for (BatchOrder order : kAllOrders) {
      net::WdmNetwork net_base = churned_network(8, 5, /*with_srlgs=*/false);
      net::WdmNetwork net_variant = churned_network(8, 5, with_srlgs);
      support::Rng rng_base(99), rng_variant(99);
      const BatchOutcome a = provision_batch(net_base, *base[r].second, batch,
                                             order, &rng_base);
      const BatchOutcome b = provision_batch(net_variant, *variant[r].second,
                                             batch, order, &rng_variant);
      expect_identical_outcomes(
          a, b, net_base, net_variant,
          std::string(tag) + " / " + base[r].first + " / " +
              batch_order_name(order));
    }
  }
}

TEST(ProtectPolicyDifferential, FullPolicyIsDefaultOnSrlgFreeNetworks) {
  run_policy_matrix(net::ProtectPolicy::full(), /*with_srlgs=*/false, "full");
}

TEST(ProtectPolicyDifferential, SrlgPolicyIsDefaultOnSrlgFreeNetworks) {
  run_policy_matrix(net::ProtectPolicy::srlg(), /*with_srlgs=*/false, "srlg");
}

TEST(ProtectPolicyDifferential, FullPolicyIgnoresAnnotations) {
  // kFull on an annotated network must still match the pre-SRLG baseline
  // exactly: annotations are inert until a policy opts in.
  run_policy_matrix(net::ProtectPolicy::full(), /*with_srlgs=*/true,
                    "full+annotations");
}

TEST(ProtectPolicyDifferential, SingleRouteIdentityAcrossPolicies) {
  // Route-level (non-batch) sweep over every ordered pair: the kFull and
  // kSrlg routers agree with the default router on SRLG-free networks.
  const net::WdmNetwork net = churned_network(8, 17, /*with_srlgs=*/false);
  const RouterSet base = default_routers();
  for (const net::ProtectPolicy policy :
       {net::ProtectPolicy::full(), net::ProtectPolicy::srlg()}) {
    const RouterSet variant = routers_with(policy);
    for (std::size_t r = 0; r < base.size(); ++r) {
      for (net::NodeId s = 0; s < net.num_nodes(); ++s) {
        for (net::NodeId t = 0; t < net.num_nodes(); ++t) {
          if (s == t) continue;
          const RouteResult a = base[r].second->route(net, s, t);
          const RouteResult b = variant[r].second->route(net, s, t);
          ASSERT_EQ(a.found, b.found)
              << base[r].first << " (" << s << "," << t << ")";
          if (!a.found) continue;
          EXPECT_TRUE(a.route.primary.hops == b.route.primary.hops)
              << base[r].first << " (" << s << "," << t << ")";
          EXPECT_TRUE(a.route.backup.hops == b.route.backup.hops)
              << base[r].first << " (" << s << "," << t << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace wdm::rwa
