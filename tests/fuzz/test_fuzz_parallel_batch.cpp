// Differential fuzz for the parallel batch engine: on seeded random
// instances (every topology family, background churn, failed fibers), the
// engine at N threads must agree bit-for-bit with the serial loop — accept
// set, per-request routes, reservation ledger, and cost sum — for every
// ordering policy.
//
// Budget knobs: WDM_FUZZ_ITERATIONS (default 120),
// WDM_FUZZ_FOOTPRINT_ITERATIONS (default 64), WDM_FUZZ_SEED.
#include <gtest/gtest.h>

#include <vector>

#include "fuzz/generator.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "rwa/node_disjoint_router.hpp"
#include "rwa/parallel_batch.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace wdm::fuzz {
namespace {

std::vector<rwa::BatchRequest> instance_batch(const FuzzInstance& inst,
                                              std::uint64_t seed) {
  support::Rng rng(seed ^ 0xba7c4);
  const auto n = static_cast<std::int64_t>(inst.network.num_nodes());
  const int count = static_cast<int>(rng.uniform_int(2, 24));
  std::vector<rwa::BatchRequest> batch;
  batch.push_back({inst.s, inst.t, 0});  // the instance's own request
  for (int i = 1; i < count; ++i) {
    rwa::BatchRequest r;
    r.id = i;
    r.s = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    r.t = r.s;
    while (r.t == r.s && n > 1) {
      r.t = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    }
    batch.push_back(r);
  }
  return batch;
}

void expect_outcomes_equal(const rwa::BatchOutcome& serial,
                           const rwa::BatchOutcome& par,
                           const net::WdmNetwork& net_serial,
                           const net::WdmNetwork& net_par,
                           const FuzzInstance& inst, const char* mode) {
  ASSERT_EQ(serial.accepted, par.accepted)
      << "seed " << inst.seed << " family " << inst.family << " " << mode;
  ASSERT_EQ(serial.dropped, par.dropped) << "seed " << inst.seed << " " << mode;
  ASSERT_EQ(serial.total_cost, par.total_cost)
      << "seed " << inst.seed << " " << mode;
  ASSERT_EQ(serial.routes.size(), par.routes.size());
  for (std::size_t i = 0; i < serial.routes.size(); ++i) {
    ASSERT_EQ(serial.routes[i].has_value(), par.routes[i].has_value())
        << "seed " << inst.seed << " request " << i << " " << mode;
    if (!serial.routes[i].has_value()) continue;
    ASSERT_TRUE(serial.routes[i]->primary.hops == par.routes[i]->primary.hops)
        << "seed " << inst.seed << " request " << i << " " << mode;
    ASSERT_TRUE(serial.routes[i]->backup.hops == par.routes[i]->backup.hops)
        << "seed " << inst.seed << " request " << i << " " << mode;
  }
  ASSERT_EQ(net_serial.usage_snapshot(), net_par.usage_snapshot())
      << "reservation ledgers diverged at seed " << inst.seed << " " << mode;
}

void diff_serial_vs_engine(const FuzzInstance& inst,
                           const std::vector<rwa::BatchRequest>& batch,
                           const rwa::Router& router, rwa::BatchOrder order,
                           int threads, bool force_epoch = false) {
  net::WdmNetwork net_serial = inst.network;
  net::WdmNetwork net_par = inst.network;
  support::Rng rng_serial(inst.seed + 1), rng_par(inst.seed + 1);

  const rwa::BatchOutcome serial =
      rwa::provision_batch(net_serial, router, batch, order, &rng_serial);

  rwa::ParallelBatchOptions opt;
  opt.threads = threads;
  // Vary the speculation shape with the seed so retry exhaustion and tiny
  // windows get fuzzed too, not just the defaults.
  opt.window = static_cast<int>(inst.seed % 5);           // 0 = default
  opt.max_speculation_retries = static_cast<int>(inst.seed % 3);
  opt.force_epoch_validation = force_epoch;
  rwa::ParallelBatchEngine engine(opt);
  const rwa::BatchOutcome par =
      engine.run(net_par, router, batch, order, &rng_par);

  expect_outcomes_equal(serial, par, net_serial, net_par, inst,
                        force_epoch ? "[epoch]" : "[footprint]");
}

TEST(FuzzParallelBatch, EngineMatchesSerialOnRandomInstances) {
  const int iterations =
      static_cast<int>(support::env_int("WDM_FUZZ_ITERATIONS", 120));
  const auto base_seed = static_cast<std::uint64_t>(
      support::env_int("WDM_FUZZ_SEED", 0x9a11e7));
  GenOptions gen;
  gen.preload_probability = 0.15;  // contended residuals conflict more
  gen.failure_probability = 0.2;

  const rwa::ApproxDisjointRouter approx;
  const rwa::TwoStepRouter two_step;
  constexpr rwa::BatchOrder kOrders[] = {
      rwa::BatchOrder::kArrival, rwa::BatchOrder::kShortestFirst,
      rwa::BatchOrder::kLongestFirst, rwa::BatchOrder::kRandom};

  for (int i = 0; i < iterations; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const FuzzInstance inst = generate_instance(seed, gen);
    const auto batch = instance_batch(inst, seed);
    // Rotate routers / orders / thread counts across instances to cover the
    // matrix without multiplying the runtime.
    const rwa::Router& router =
        (i % 2 == 0) ? static_cast<const rwa::Router&>(approx)
                     : static_cast<const rwa::Router&>(two_step);
    const rwa::BatchOrder order = kOrders[i % 4];
    const int threads = 2 + i % 3;  // 2..4
    diff_serial_vs_engine(inst, batch, router, order, threads);
  }
}

// Footprint-validation differential: replay each random batch through BOTH
// validation modes (footprint default, force_epoch_validation) and the serial
// loop, rotating the four footprint-recording routers — including the
// MinCog load-band path — across all four ordering policies. Identical
// accept/drop decisions, routes, and final usage required everywhere.
//
// Budget knob: WDM_FUZZ_FOOTPRINT_ITERATIONS (CI pins it per job).
TEST(FuzzParallelBatch, FootprintMatchesEpochValidationOnRandomInstances) {
  const int iterations = static_cast<int>(
      support::env_int("WDM_FUZZ_FOOTPRINT_ITERATIONS", 64));
  const auto base_seed = static_cast<std::uint64_t>(
      support::env_int("WDM_FUZZ_SEED", 0xf007));
  GenOptions gen;
  gen.preload_probability = 0.15;
  gen.failure_probability = 0.2;

  const rwa::ApproxDisjointRouter approx;
  const rwa::NodeDisjointRouter node_disjoint;
  const rwa::LoadCostRouter load_cost;
  const rwa::MinLoadRouter min_load;
  const rwa::Router* routers[] = {&approx, &node_disjoint, &load_cost,
                                  &min_load};
  constexpr rwa::BatchOrder kOrders[] = {
      rwa::BatchOrder::kArrival, rwa::BatchOrder::kShortestFirst,
      rwa::BatchOrder::kLongestFirst, rwa::BatchOrder::kRandom};

  for (int i = 0; i < iterations; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const FuzzInstance inst = generate_instance(seed, gen);
    const auto batch = instance_batch(inst, seed);
    // Router and order rotate at coprime-ish strides so 16 consecutive
    // iterations cover the full 4x4 matrix.
    const rwa::Router& router = *routers[i % 4];
    const rwa::BatchOrder order = kOrders[(i / 4) % 4];
    const int threads = 2 + i % 3;  // 2..4
    diff_serial_vs_engine(inst, batch, router, order, threads,
                          /*force_epoch=*/false);
    diff_serial_vs_engine(inst, batch, router, order, threads,
                          /*force_epoch=*/true);
  }
}

}  // namespace
}  // namespace wdm::fuzz
