// Tests for the greedy instance shrinker, plus the mutation smoke checks
// the ISSUE's acceptance criteria require: deliberately inject a broken
// router (cost under-reporting, shared backup edge, truncated backup),
// assert the harness catches it, shrinks the repro, and serializes it to a
// replayable corpus entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/mutant.hpp"
#include "fuzz/shrinker.hpp"
#include "rwa/approx_router.hpp"

namespace wdm::fuzz {
namespace {

namespace fs = std::filesystem;

/// Hand-built 4-node instance with mixed installed sets, a background
/// reservation, and a failed fiber — enough state to verify the rebuilding
/// edits carry everything over.
FuzzInstance small_instance() {
  FuzzInstance inst;
  inst.network = net::WdmNetwork(4, 3);
  inst.s = 0;
  inst.t = 3;
  net::WdmNetwork& n = inst.network;
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(3, 0.5));
  }
  n.add_link(0, 1, net::WavelengthSet::from_bits(0b011),
             std::vector<double>{1.0, 2.0, 0.0});
  n.add_link(1, 3, net::WavelengthSet::from_bits(0b111),
             std::vector<double>{1.0, 1.5, 2.5});
  n.add_link(0, 2, net::WavelengthSet::from_bits(0b100),
             std::vector<double>{0.0, 0.0, 3.0});
  n.add_link(2, 3, net::WavelengthSet::from_bits(0b110),
             std::vector<double>{0.0, 4.0, 1.0});
  n.reserve(1, 1);            // background traffic on link 1->3, λ1
  n.set_link_failed(2, true); // cut fiber 0->2
  inst.family = "manual";
  return inst;
}

TEST(Shrinker, DropLinkRemovesExactlyOneLink) {
  const FuzzInstance inst = small_instance();
  const FuzzInstance out = drop_link(inst, 0);
  EXPECT_EQ(out.network.num_links(), inst.network.num_links() - 1);
  EXPECT_EQ(out.network.num_nodes(), inst.network.num_nodes());
  EXPECT_LT(out.size(), inst.size());
  // Former link 1 (1->3) is now link 0, reservation intact.
  EXPECT_EQ(out.network.graph().tail(0), 1);
  EXPECT_EQ(out.network.graph().head(0), 3);
  EXPECT_TRUE(out.network.is_used(0, 1));
  EXPECT_DOUBLE_EQ(out.network.weight(0, 2), 2.5);
  // Former link 2 (failed 0->2) is now link 1, failure flag intact.
  EXPECT_TRUE(out.network.link_failed(1));
  EXPECT_EQ(out.family, "manual/shrunk");
}

TEST(Shrinker, DropWavelengthShrinksUniverseAndRemaps) {
  const FuzzInstance inst = small_instance();
  const FuzzInstance out = drop_wavelength(inst, 0);
  EXPECT_EQ(out.network.W(), 2);
  // Link 0->2 installed only λ2; after dropping λ0 it carries λ1 at cost 3.
  // Link ids shift because nothing was dropped here (installed sets stay
  // nonempty: 0b011→{λ0}? no — λ0 dropped, so 0b011 keeps old λ1 -> new λ0).
  EXPECT_EQ(out.network.num_links(), 4);
  EXPECT_EQ(out.network.installed(0).count(), 1);
  EXPECT_DOUBLE_EQ(out.network.weight(0, 0), 2.0);  // old (0->1, λ1)
  EXPECT_TRUE(out.network.is_used(1, 0));           // old (1->3, λ1)
  EXPECT_DOUBLE_EQ(out.network.weight(2, 1), 3.0);  // old (0->2, λ2)
}

TEST(Shrinker, DropWavelengthDropsEmptiedLinks) {
  const FuzzInstance inst = small_instance();
  // λ2 is the only wavelength on link 2 (0->2): dropping λ2 must drop it.
  const FuzzInstance out = drop_wavelength(inst, 2);
  EXPECT_EQ(out.network.W(), 2);
  EXPECT_EQ(out.network.num_links(), 3);
  EXPECT_EQ(out.network.graph().find_edge(0, 2), graph::kInvalidEdge);
}

TEST(Shrinker, DropNodeRemapsEndpointsAndDropsIncidentLinks) {
  const FuzzInstance inst = small_instance();
  const FuzzInstance out = drop_node(inst, 1);  // kills 0->1 and 1->3
  EXPECT_EQ(out.network.num_nodes(), 3);
  EXPECT_EQ(out.network.num_links(), 2);
  EXPECT_EQ(out.s, 0);
  EXPECT_EQ(out.t, 2);  // old node 3 shifts down
  EXPECT_EQ(out.network.graph().tail(0), 0);
  EXPECT_EQ(out.network.graph().head(0), 1);  // old 0->2
  EXPECT_TRUE(out.network.link_failed(0));
  EXPECT_EQ(out.network.graph().tail(1), 1);  // old 2->3
  EXPECT_EQ(out.network.graph().head(1), 2);
}

TEST(Shrinker, GreedyShrinkReachesMinimalWitness) {
  // Predicate: "some non-failed link into t exists". The minimal witness is
  // one link on one wavelength between two nodes.
  FuzzInstance inst = small_instance();
  const FailurePredicate pred = [](const FuzzInstance& c) {
    if (c.network.num_links() == 0) return false;
    for (graph::EdgeId e = 0; e < c.network.num_links(); ++e) {
      if (c.network.graph().head(e) == c.t && !c.network.link_failed(e)) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(pred(inst));
  ShrinkStats stats;
  const FuzzInstance out = shrink(inst, pred, /*budget=*/200, &stats);
  EXPECT_TRUE(pred(out));
  EXPECT_EQ(stats.initial_size, inst.size());
  EXPECT_EQ(stats.final_size, out.size());
  EXPECT_LT(out.size(), inst.size());
  EXPECT_EQ(out.network.num_links(), 1);
  EXPECT_EQ(out.network.W(), 1);
  // s, t, and the witness link's tail survive (no link runs s->t here, and
  // the shrinker never drops the request endpoints).
  EXPECT_EQ(out.network.num_nodes(), 3);
}

TEST(Shrinker, ShrinkRespectsBudget) {
  FuzzInstance inst = small_instance();
  ShrinkStats stats;
  const FailurePredicate always = [](const FuzzInstance&) { return true; };
  shrink(inst, always, /*budget=*/3, &stats);
  EXPECT_LE(stats.edits_tried, 3);
}

/// Runs the mutation smoke check: fuzz with a deliberately broken router in
/// `extra_routers` and require the harness to (a) flag it, (b) shrink the
/// repro, (c) serialize it, (d) have it replay red with the mutant and green
/// without.
void expect_mutation_caught(MutationKind kind,
                            const std::vector<std::string>& expected) {
  const auto is_expected = [&](const std::string& id) {
    return std::find(expected.begin(), expected.end(), id) != expected.end();
  };
  const rwa::ApproxDisjointRouter inner(/*refine=*/true);
  const MutantRouter mutant(inner, kind);

  const fs::path dir =
      fs::path(::testing::TempDir()) /
      (std::string("wdm-fuzz-mutant-") + mutation_name(kind));
  fs::remove_all(dir);

  HarnessOptions opt;
  opt.num_instances = 16;
  opt.base_seed = 0xbadc0de;
  // The aux-bound (Lemma 2) oracle is only armed inside the Theorem 2
  // regime, so drive every mutation through it for a level playing field.
  opt.gen.theorem2_regime_only = true;
  opt.check.run_exact = false;  // route-level invariants are the target here
  opt.ilp_every = 0;
  opt.check.extra_routers = {&mutant};
  opt.corpus_dir = dir.string();
  opt.shrink_budget = 300;

  const HarnessReport report = run_fuzz(opt);
  ASSERT_GT(report.failing_instances, 0)
      << "harness missed planted bug " << mutation_name(kind);
  ASSERT_FALSE(report.failures.empty());

  const FailureRecord& rec = report.failures.front();
  EXPECT_TRUE(is_expected(rec.violation.invariant))
      << rec.violation.to_string();
  EXPECT_LT(rec.shrunk_size, rec.original_size)
      << "shrinker made no progress on " << mutation_name(kind);
  ASSERT_FALSE(rec.corpus_path.empty());
  ASSERT_TRUE(fs::exists(rec.corpus_path));

  // Replay the serialized repro: red with the mutant, green without.
  const auto corpus = load_corpus(dir.string());
  ASSERT_FALSE(corpus.empty());
  CheckOptions with_mutant;
  with_mutant.run_exact = false;
  with_mutant.extra_routers = {&mutant};
  bool still_red = false;
  for (const ReproCase& repro : corpus) {
    for (const Violation& v : replay(repro, with_mutant)) {
      if (is_expected(v.invariant)) still_red = true;
    }
  }
  EXPECT_TRUE(still_red) << "shrunk repro no longer reproduces "
                         << mutation_name(kind);

  CheckOptions clean;
  clean.run_exact = false;
  for (const ReproCase& repro : corpus) {
    for (const Violation& v : replay(repro, clean)) {
      ADD_FAILURE() << "repro fails even without the mutant: "
                    << v.to_string();
    }
  }
  fs::remove_all(dir);
}

TEST(MutationSmoke, UnderreportedAuxCostIsCaughtAndShrunk) {
  // The headline acceptance check: a planted cost-accounting bug must be
  // caught and shrunk to a serialized repro.
  expect_mutation_caught(MutationKind::kUnderreportAuxCost, {"aux-bound"});
}

TEST(MutationSmoke, SharedBackupEdgeIsCaught) {
  expect_mutation_caught(MutationKind::kShareEdge, {"edge-disjoint"});
}

TEST(MutationSmoke, TruncatedBackupIsCaught) {
  // A popped final hop yields a wrong-endpoint backup (multi-hop) or an
  // empty-but-found backup (single-hop); both are structural defects.
  expect_mutation_caught(MutationKind::kDropBackupHop,
                         {"endpoints", "structure"});
}

}  // namespace
}  // namespace wdm::fuzz
