// Adversarial-gadget tests: the deterministic trap and bridge instances the
// fuzz generator draws from, pinned down as named regressions.
//
// The trap is the structure Suurballe exists for: the globally cheapest
// semilightpath uses links every disjoint pair needs, so the greedy
// two-step heuristic routes itself into a dead end while the §3.3 joint
// optimization succeeds. The barbell shows the opposite failure: when an
// undirected bridge separates s from t, NO router may claim a protected
// route — cross-checked against the graph-level bridges oracle.
#include <gtest/gtest.h>

#include "fuzz/generator.hpp"
#include "fuzz/invariants.hpp"
#include "graph/bridges.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "rwa/exact_router.hpp"
#include "rwa/node_disjoint_router.hpp"

namespace wdm::fuzz {
namespace {

constexpr net::NodeId kS = 0, kA = 1, kB = 2, kT = 3;

/// The classic cost trap on four nodes: cheap chain s->a->b->t, dear arms
/// s->b and a->t. All wavelengths installed at a uniform per-link cost, full
/// zero-cost conversion — squarely inside the Theorem 2 regime.
FuzzInstance cost_trap() {
  FuzzInstance inst;
  inst.network = net::WdmNetwork(4, 2);
  inst.s = kS;
  inst.t = kT;
  inst.family = "trap/manual";
  net::WdmNetwork& n = inst.network;
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  const net::WavelengthSet all = net::WavelengthSet::all(2);
  n.add_link(kS, kA, all, 1.0);
  n.add_link(kA, kB, all, 1.0);
  n.add_link(kB, kT, all, 1.0);
  n.add_link(kS, kB, all, 5.0);
  n.add_link(kA, kT, all, 5.0);
  return inst;
}

TEST(TrapTopology, GreedyTwoStepIsBlocked) {
  const FuzzInstance inst = cost_trap();
  const rwa::TwoStepRouter twostep;
  const rwa::RouteResult r = twostep.route(inst.network, inst.s, inst.t);
  // Greedy takes s->a->b->t (cost 3); the survivors s->b and a->t cannot
  // form a second s->t path.
  EXPECT_FALSE(r.found);
}

TEST(TrapTopology, ApproxRouterEscapesTheTrap) {
  const FuzzInstance inst = cost_trap();
  const rwa::ApproxDisjointRouter approx;
  const rwa::RouteResult r = approx.route(inst.network, inst.s, inst.t);
  ASSERT_TRUE(r.found);
  // The only disjoint pair is {s->a->t, s->b->t}, total 2*(1+5) = 12.
  EXPECT_NEAR(r.total_cost(inst.network), 12.0, 1e-9);
  // And it survives the full invariant suite (structure, disjointness,
  // Eq. (1) accounting, Lemma 2 bound, ρ recomputation).
  std::vector<Violation> out;
  check_route_result(inst, r, approx.name(), /*requires_backup=*/true,
                     /*requires_node_disjoint=*/false,
                     /*check_aux_bound=*/true, 1e-6, out);
  for (const Violation& v : out) ADD_FAILURE() << v.to_string();
}

TEST(TrapTopology, ExactAgreesAndRatioHolds) {
  const FuzzInstance inst = cost_trap();
  ASSERT_TRUE(in_theorem2_regime(inst.network));
  const rwa::ExactResult exact =
      rwa::exact_disjoint_pair(inst.network, inst.s, inst.t);
  ASSERT_TRUE(exact.result.found);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_NEAR(exact.result.total_cost(inst.network), 12.0, 1e-9);

  const rwa::ApproxDisjointRouter approx;
  const rwa::RouteResult r = approx.route(inst.network, inst.s, inst.t);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.total_cost(inst.network),
            2.0 * exact.result.total_cost(inst.network) + 1e-9);
}

/// Wavelength-level trap: same shape, but the chain is cheap only because of
/// per-wavelength costs (λ0 cheap, λ1 dear on the chain; mirrored on the
/// arms). The greedy optimal semilightpath rides λ0 down the chain and
/// strands the arms; the joint router must mix wavelengths per path.
FuzzInstance wavelength_trap() {
  FuzzInstance inst;
  inst.network = net::WdmNetwork(4, 2);
  inst.s = kS;
  inst.t = kT;
  inst.family = "trap/wavelength";
  net::WdmNetwork& n = inst.network;
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  const net::WavelengthSet all = net::WavelengthSet::all(2);
  n.add_link(kS, kA, all, std::vector<double>{1.0, 10.0});
  n.add_link(kA, kB, all, std::vector<double>{1.0, 10.0});
  n.add_link(kB, kT, all, std::vector<double>{1.0, 10.0});
  n.add_link(kS, kB, all, std::vector<double>{10.0, 4.0});
  n.add_link(kA, kT, all, std::vector<double>{10.0, 4.0});
  return inst;
}

TEST(TrapTopology, WavelengthCostTrapDefeatsGreedyOnly) {
  const FuzzInstance inst = wavelength_trap();
  const rwa::TwoStepRouter twostep;
  EXPECT_FALSE(twostep.route(inst.network, inst.s, inst.t).found);

  const rwa::ApproxDisjointRouter approx;
  const rwa::RouteResult r = approx.route(inst.network, inst.s, inst.t);
  ASSERT_TRUE(r.found);
  // Best pair mixes wavelengths: s->a(λ0)+a->t(λ1) = 5 and
  // s->b(λ1)+b->t(λ0) = 5; conversions are free.
  EXPECT_NEAR(r.total_cost(inst.network), 10.0, 1e-9);

  const rwa::ExactResult exact =
      rwa::exact_disjoint_pair(inst.network, inst.s, inst.t);
  ASSERT_TRUE(exact.result.found);
  EXPECT_NEAR(exact.result.total_cost(inst.network), 10.0, 1e-9);

  std::vector<Violation> out;
  check_route_result(inst, r, approx.name(), true, false,
                     /*check_aux_bound=*/false, 1e-6, out);
  for (const Violation& v : out) ADD_FAILURE() << v.to_string();
}

/// Availability-level trap: the chain carries only λ0, the arms only λ1, so
/// any escaping pair must convert mid-path. Exercises wavelength continuity
/// across conversions on the trap shape.
FuzzInstance conversion_trap() {
  FuzzInstance inst;
  inst.network = net::WdmNetwork(4, 2);
  inst.s = kS;
  inst.t = kT;
  inst.family = "trap/conversion";
  net::WdmNetwork& n = inst.network;
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.25));
  }
  const net::WavelengthSet l0 = net::WavelengthSet::single(0);
  const net::WavelengthSet l1 = net::WavelengthSet::single(1);
  n.add_link(kS, kA, l0, std::vector<double>{1.0, 0.0});
  n.add_link(kA, kB, l0, std::vector<double>{1.0, 0.0});
  n.add_link(kB, kT, l0, std::vector<double>{1.0, 0.0});
  n.add_link(kS, kB, l1, std::vector<double>{0.0, 5.0});
  n.add_link(kA, kT, l1, std::vector<double>{0.0, 5.0});
  return inst;
}

TEST(TrapTopology, SemilightpathTrapForcesConversions) {
  const FuzzInstance inst = conversion_trap();
  const rwa::TwoStepRouter twostep;
  EXPECT_FALSE(twostep.route(inst.network, inst.s, inst.t).found);

  const rwa::ApproxDisjointRouter approx;
  const rwa::RouteResult r = approx.route(inst.network, inst.s, inst.t);
  ASSERT_TRUE(r.found);
  // {s->a(λ0) conv@a ->t(λ1), s->b(λ1) conv@b ->t(λ0)}:
  // (1 + 0.25 + 5) * 2 = 12.5. Each path must change wavelength mid-route.
  EXPECT_NEAR(r.total_cost(inst.network), 12.5, 1e-9);
  const auto uses_both = [](const net::Semilightpath& p) {
    bool l0 = false, l1 = false;
    for (const net::Hop& h : p.hops) (h.lambda == 0 ? l0 : l1) = true;
    return l0 && l1;
  };
  EXPECT_TRUE(uses_both(r.route.primary));
  EXPECT_TRUE(uses_both(r.route.backup));

  std::vector<Violation> out;
  check_route_result(inst, r, approx.name(), true, false, false, 1e-6, out);
  for (const Violation& v : out) ADD_FAILURE() << v.to_string();
}

/// Barbell: duplex triangles {0,1,2} and {3,4,5} joined by one duplex
/// bridge 2<->3.
FuzzInstance barbell() {
  FuzzInstance inst;
  inst.network = net::WdmNetwork(6, 2);
  inst.s = 0;
  inst.t = 4;
  inst.family = "bridge/manual";
  net::WdmNetwork& n = inst.network;
  for (net::NodeId v = 0; v < 6; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  const net::WavelengthSet all = net::WavelengthSet::all(2);
  const auto duplex = [&](net::NodeId u, net::NodeId v) {
    n.add_link(u, v, all, 1.0);
    n.add_link(v, u, all, 1.0);
  };
  duplex(0, 1);
  duplex(1, 2);
  duplex(2, 0);
  duplex(3, 4);
  duplex(4, 5);
  duplex(5, 3);
  duplex(2, 3);  // the bridge
  return inst;
}

TEST(BridgeTopology, NoProtectedRouteAcrossABridge) {
  const FuzzInstance inst = barbell();
  const graph::BridgeAnalysis bridges = find_bridges(inst.network.graph());
  ASSERT_EQ(bridges.num_bridges, 1);
  ASSERT_FALSE(bridges.two_edge_connected(inst.s, inst.t));

  // Every protected router must agree with the graph oracle: no disjoint
  // pair exists across the cut.
  const rwa::ApproxDisjointRouter approx;
  const rwa::NodeDisjointRouter node_disjoint;
  const rwa::TwoStepRouter twostep;
  EXPECT_FALSE(approx.route(inst.network, inst.s, inst.t).found);
  EXPECT_FALSE(node_disjoint.route(inst.network, inst.s, inst.t).found);
  EXPECT_FALSE(twostep.route(inst.network, inst.s, inst.t).found);
  const rwa::ExactResult exact =
      rwa::exact_disjoint_pair(inst.network, inst.s, inst.t);
  EXPECT_FALSE(exact.result.found);

  // An unprotected primary still crosses the bridge fine.
  const rwa::UnprotectedRouter unprotected;
  EXPECT_TRUE(unprotected.route(inst.network, inst.s, inst.t).found);
}

TEST(BridgeTopology, SameSideRequestsStayProtectable) {
  FuzzInstance inst = barbell();
  inst.t = 2;  // both endpoints inside the first triangle
  const graph::BridgeAnalysis bridges = find_bridges(inst.network.graph());
  ASSERT_TRUE(bridges.two_edge_connected(inst.s, inst.t));
  const rwa::ApproxDisjointRouter approx;
  const rwa::RouteResult r = approx.route(inst.network, inst.s, inst.t);
  ASSERT_TRUE(r.found);
  std::vector<Violation> out;
  check_route_result(inst, r, approx.name(), true, false, true, 1e-6, out);
  for (const Violation& v : out) ADD_FAILURE() << v.to_string();
}

TEST(BridgeTopology, GeneratedBridgeInstancesMatchOracle) {
  // The generator's bridge family must reproduce the same contract on every
  // draw: routability of a protected route == 2-edge-connectivity.
  GenOptions gen;
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 400 && checked < 10; ++seed) {
    const FuzzInstance inst = generate_instance(seed, gen);
    if (inst.family != "bridge") continue;
    ++checked;
    const graph::BridgeAnalysis bridges = find_bridges(inst.network.graph());
    EXPECT_FALSE(bridges.two_edge_connected(inst.s, inst.t)) << seed;
    const rwa::ApproxDisjointRouter approx;
    EXPECT_FALSE(approx.route(inst.network, inst.s, inst.t).found) << seed;
  }
  EXPECT_EQ(checked, 10);
}

}  // namespace
}  // namespace wdm::fuzz
