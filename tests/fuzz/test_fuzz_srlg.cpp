// SRLG-aware protection fuzz battery: shared-risk-group annotations,
// SRLG-disjoint routing, partial protection, and their independent oracles.
//
// The headline sweep replays >= 1000 seeded instances (trap, bridge, and
// srlg-trap gadgets included) through the full invariant suite with SRLG
// generation enabled; a smaller sweep keeps the brute-force completeness
// oracle honest. Deterministic gadget tests pin the conflict-set search's
// behavior on the exact structures it exists for.
//
// Budget knobs:
//   WDM_FUZZ_SRLG_ITERATIONS  headline sweep size (default 1000)
#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/generator.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/invariants.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/srlg.hpp"
#include "support/env.hpp"
#include "wdm/io.hpp"

namespace wdm::fuzz {
namespace {

GenOptions srlg_gen() {
  GenOptions gen;
  gen.srlg_probability = 0.7;
  return gen;
}

/// s=0, a=1, b=2, c=3, t=4: the min-cost disjoint pair rides links 1 and 3,
/// which share a conduit; the only SRLG-disjoint escape detours through c.
net::WdmNetwork shared_conduit_network() {
  net::WdmNetwork n(5, 2);
  for (net::NodeId v = 0; v < 5; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);  // 0: s->a
  n.add_link(1, 4, net::WavelengthSet::all(2), 1.0);  // 1: a->t
  n.add_link(0, 2, net::WavelengthSet::all(2), 1.0);  // 2: s->b
  n.add_link(2, 4, net::WavelengthSet::all(2), 1.0);  // 3: b->t
  n.add_link(0, 3, net::WavelengthSet::all(2), 5.0);  // 4: s->c
  n.add_link(3, 4, net::WavelengthSet::all(2), 5.0);  // 5: c->t
  n.add_srlg({1, 3}, 0.5);
  return n;
}

/// Same trap without the detour: every s->t pair shares the conduit, so no
/// SRLG-disjoint pair exists at all.
net::WdmNetwork shared_conduit_no_escape() {
  net::WdmNetwork n(4, 2);
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);  // 0: s->a
  n.add_link(1, 3, net::WavelengthSet::all(2), 1.0);  // 1: a->t
  n.add_link(0, 2, net::WavelengthSet::all(2), 1.0);  // 2: s->b
  n.add_link(2, 3, net::WavelengthSet::all(2), 1.0);  // 3: b->t
  n.add_srlg({1, 3}, 0.4);
  return n;
}

FuzzInstance as_instance(net::WdmNetwork net, net::NodeId s, net::NodeId t,
                         const char* family) {
  FuzzInstance inst;
  inst.network = std::move(net);
  inst.s = s;
  inst.t = t;
  inst.family = family;
  return inst;
}

TEST(SrlgFuzz, ThousandSeededInstancesSatisfyAllInvariants) {
  HarnessOptions opt;
  opt.num_instances =
      static_cast<int>(support::env_int("WDM_FUZZ_SRLG_ITERATIONS", 1000));
  opt.base_seed = 0x5197c000;
  opt.gen = srlg_gen();
  // The SRLG invariants carry this sweep; the slow edge-disjoint exact and
  // ILP oracles get their budget in the main differential sweep and in
  // CompletenessOracleSweep below.
  opt.check.run_exact = false;
  opt.ilp_every = 0;
  const HarnessReport report = run_fuzz(opt);
  EXPECT_EQ(report.instances_run, opt.num_instances);
  EXPECT_TRUE(report.ok()) << report.summary();
  // The adversarial gadgets must actually show up in the mix.
  for (const char* family : {"srlg-trap", "trap", "bridge"}) {
    const auto it = report.instances_per_family.find(family);
    EXPECT_TRUE(it != report.instances_per_family.end() && it->second > 0)
        << "family " << family << " never generated";
  }
}

TEST(SrlgFuzz, CompletenessOracleSweep) {
  // Full oracle set (including the brute-force SRLG-pair enumeration that
  // cross-examines every exhaustive block) on a denser-but-smaller pass.
  HarnessOptions opt;
  opt.num_instances = std::max(
      50, static_cast<int>(
              support::env_int("WDM_FUZZ_SRLG_ITERATIONS", 1000)) / 5);
  opt.base_seed = 0x5197c777;
  opt.gen = srlg_gen();
  const HarnessReport report = run_fuzz(opt);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SrlgFuzz, GeneratorDeterministicWithSrlgs) {
  for (std::uint64_t seed : {3ull, 77ull, 0xabcdef01ull}) {
    const FuzzInstance a = generate_instance(seed, srlg_gen());
    const FuzzInstance b = generate_instance(seed, srlg_gen());
    EXPECT_EQ(a.s, b.s);
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.family, b.family);
    // Byte-identical including the srlg blocks.
    EXPECT_EQ(io::write_network(a.network), io::write_network(b.network));
  }
}

TEST(SrlgFuzz, DefaultOptionsNeverGenerateSrlgs) {
  // srlg_probability == 0 must leave the RNG stream untouched: no instance
  // carries groups, and pre-SRLG seeds reproduce their instances exactly.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FuzzInstance inst = generate_instance(seed);
    EXPECT_EQ(inst.network.num_srlgs(), 0) << "seed " << seed;
  }
}

TEST(SrlgFuzz, SrlgModeAnnotatesAndCoversTrapFamily) {
  int annotated = 0, traps = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const FuzzInstance inst = generate_instance(seed, srlg_gen());
    if (inst.network.num_srlgs() > 0) ++annotated;
    if (inst.family == "srlg-trap") {
      ++traps;
      EXPECT_GE(inst.network.num_srlgs(), 1);
    }
  }
  // srlg_probability 0.7 plus the always-annotated trap family: well over
  // half the instances must carry groups.
  EXPECT_GT(annotated, 150);
  EXPECT_GT(traps, 10);
}

TEST(SrlgTrap, ConflictSearchEscapesSharedConduit) {
  const net::WdmNetwork net = shared_conduit_network();
  const rwa::ApproxDisjointRouter full(true, net::ProtectPolicy::full());
  const rwa::ApproxDisjointRouter srlg(true, net::ProtectPolicy::srlg());

  const rwa::RouteResult fr = full.route(net, 0, 4);
  ASSERT_TRUE(fr.found);
  EXPECT_DOUBLE_EQ(fr.total_cost(net), 4.0);  // the shared-conduit pair

  const rwa::RouteResult sr = srlg.route(net, 0, 4);
  ASSERT_TRUE(sr.found);
  EXPECT_TRUE(sr.srlg_exhaustive);
  EXPECT_DOUBLE_EQ(sr.total_cost(net), 12.0);  // forced onto the detour

  // The independent oracle agrees: kFull's pair shares SRLG 0, kSrlg's does
  // not.
  const FuzzInstance inst = as_instance(net, 0, 4, "manual");
  std::vector<Violation> v;
  check_srlg_disjoint(inst, fr, "full-on-gadget", v);
  ASSERT_EQ(v.size(), 1u) << "harness failed to flag the shared conduit";
  EXPECT_EQ(v[0].invariant, "srlg-disjoint");
  v.clear();
  check_srlg_disjoint(inst, sr, "srlg-on-gadget", v);
  EXPECT_TRUE(v.empty()) << v[0].to_string();
}

TEST(SrlgTrap, BlocksAndProvesExhaustionWhenNoEscapeExists) {
  const net::WdmNetwork net = shared_conduit_no_escape();
  const rwa::ApproxDisjointRouter full(true, net::ProtectPolicy::full());
  const rwa::ApproxDisjointRouter srlg(true, net::ProtectPolicy::srlg());

  EXPECT_TRUE(full.route(net, 0, 3).found);
  const rwa::RouteResult sr = srlg.route(net, 0, 3);
  EXPECT_FALSE(sr.found);
  EXPECT_TRUE(sr.srlg_exhaustive);

  // The brute-force oracle confirms the block is genuine.
  const auto exists = srlg_pair_exists_bruteforce(net, 0, 3, 8, 24, 4000);
  ASSERT_TRUE(exists.has_value());
  EXPECT_FALSE(*exists);
}

TEST(SrlgTrap, BruteForceFindsTheEscapeWhenItExists) {
  const net::WdmNetwork net = shared_conduit_network();
  const auto exists = srlg_pair_exists_bruteforce(net, 0, 4, 8, 24, 4000);
  ASSERT_TRUE(exists.has_value());
  EXPECT_TRUE(*exists);
}

TEST(SrlgPairSearch, LowLevelResultIsSrlgDisjoint) {
  const net::WdmNetwork net = shared_conduit_network();
  rwa::AuxGraphOptions aopt;
  aopt.weighting = rwa::AuxWeighting::kCost;
  const rwa::AuxGraph aux = rwa::build_aux_graph(net, 0, 4, aopt);
  const rwa::SrlgPairResult sp = rwa::srlg_disjoint_pair(net, aux);
  ASSERT_TRUE(sp.pair.found);
  EXPECT_TRUE(sp.exhaustive);
  // Project both paths and verify no physical link appears twice and links
  // 1 and 3 never co-occur.
  std::vector<graph::EdgeId> a = aux.project(sp.pair.first);
  std::vector<graph::EdgeId> b = aux.project(sp.pair.second);
  for (graph::EdgeId e : a) {
    EXPECT_EQ(std::count(b.begin(), b.end(), e), 0) << "shared link " << e;
  }
  const bool a_conduit =
      std::count(a.begin(), a.end(), 1) || std::count(a.begin(), a.end(), 3);
  const bool b_conduit =
      std::count(b.begin(), b.end(), 1) || std::count(b.begin(), b.end(), 3);
  EXPECT_FALSE(a_conduit && b_conduit);
}

TEST(PartialProtection, CoversOnlyRiskySegments) {
  // s=0 -> 1 -> t=3 is the cheap primary; its second hop (link 1) belongs to
  // a p=0.3 group. Strict threshold: backup must dodge link 1. Permissive
  // threshold: no backup at all.
  net::WdmNetwork net(4, 2);
  for (net::NodeId v = 0; v < 4; ++v) {
    net.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  net.add_link(0, 1, net::WavelengthSet::all(2), 1.0);  // 0
  net.add_link(1, 3, net::WavelengthSet::all(2), 1.0);  // 1 (risky)
  net.add_link(0, 2, net::WavelengthSet::all(2), 2.0);  // 2
  net.add_link(2, 3, net::WavelengthSet::all(2), 2.0);  // 3
  net.add_srlg({1}, 0.3);

  const rwa::ApproxDisjointRouter strict(true, net::ProtectPolicy::partial(0.1));
  const rwa::RouteResult sr = strict.route(net, 0, 3);
  ASSERT_TRUE(sr.found);
  ASSERT_TRUE(sr.route.backup.found);
  for (const net::Hop& h : sr.route.backup.hops) {
    EXPECT_NE(h.edge, 1) << "backup rides the risky link";
  }
  EXPECT_TRUE(sr.route.feasible(net));

  const rwa::ApproxDisjointRouter lax(true, net::ProtectPolicy::partial(0.5));
  const rwa::RouteResult lr = lax.route(net, 0, 3);
  ASSERT_TRUE(lr.found);
  EXPECT_FALSE(lr.route.backup.found);  // nothing risky enough to cover
  EXPECT_TRUE(lr.route.feasible(net));

  const FuzzInstance inst = as_instance(net, 0, 3, "manual");
  std::vector<Violation> v;
  check_partial_coverage(inst, sr, 0.1, "strict", v);
  check_partial_coverage(inst, lr, 0.5, "lax", v);
  EXPECT_TRUE(v.empty()) << v[0].to_string();
}

TEST(PartialProtection, BlocksWhenRiskySegmentHasNoCover) {
  // A 3-node chain: the only path rides the risky link, and there is no
  // alternative — partial protection must refuse, like full protection on a
  // bridge.
  net::WdmNetwork net(3, 2);
  for (net::NodeId v = 0; v < 3; ++v) {
    net.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  net.add_link(0, 1, net::WavelengthSet::all(2), 1.0);  // 0
  net.add_link(1, 2, net::WavelengthSet::all(2), 1.0);  // 1 (risky)
  net.add_srlg({1}, 0.6);

  const rwa::ApproxDisjointRouter strict(true, net::ProtectPolicy::partial(0.1));
  EXPECT_FALSE(strict.route(net, 0, 2).found);
  // Above the threshold the same request sails through unprotected.
  const rwa::ApproxDisjointRouter lax(true, net::ProtectPolicy::partial(0.9));
  const rwa::RouteResult lr = lax.route(net, 0, 2);
  ASSERT_TRUE(lr.found);
  EXPECT_FALSE(lr.route.backup.found);
}

TEST(SrlgFuzz, HarnessFlagsPartialCoverageViolation) {
  // Mutation sensitivity: a route whose "backup" rides the risky link itself
  // must trip the partial-coverage oracle.
  net::WdmNetwork net(3, 2);
  for (net::NodeId v = 0; v < 3; ++v) {
    net.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  net.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  net.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  net.add_srlg({1}, 0.6);

  rwa::RouteResult broken;
  broken.found = true;
  broken.route.found = true;
  broken.route.policy = net::ProtectPolicy::partial(0.1);
  broken.route.primary.found = true;
  broken.route.primary.hops = {{0, 0}, {1, 0}};
  broken.route.backup.found = true;
  broken.route.backup.hops = {{0, 1}, {1, 1}};  // rides risky link 1

  const FuzzInstance inst = as_instance(net, 0, 2, "manual");
  std::vector<Violation> v;
  check_partial_coverage(inst, broken, 0.1, "mutant", v);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "partial-coverage");
}

}  // namespace
}  // namespace wdm::fuzz
