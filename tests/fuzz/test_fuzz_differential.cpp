// The headline differential sweep: hundreds of seeded random instances,
// every router, every invariant, zero tolerated violations.
//
// Budget knobs (CI / sanitizer smoke runs):
//   WDM_FUZZ_ITERATIONS  instance count (default 500)
//   WDM_FUZZ_SEED        base seed (default in-harness)
//   WDM_FUZZ_CORPUS_DIR  where shrunk repros of any failure are written
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "fuzz/harness.hpp"
#include "support/env.hpp"
#include "test_util.hpp"
#include "wdm/io.hpp"

namespace wdm::fuzz {
namespace {

HarnessOptions env_options() {
  HarnessOptions opt;
  opt.num_instances =
      static_cast<int>(support::env_int("WDM_FUZZ_ITERATIONS", 500));
  opt.base_seed = static_cast<std::uint64_t>(
      support::env_int("WDM_FUZZ_SEED",
                       static_cast<std::int64_t>(opt.base_seed)));
  opt.corpus_dir = support::env_or("WDM_FUZZ_CORPUS_DIR", "");
  return opt;
}

TEST(FuzzSweep, SeededInstancesSatisfyAllInvariants) {
  const HarnessOptions opt = env_options();
  const HarnessReport report = run_fuzz(opt);
  EXPECT_EQ(report.instances_run, opt.num_instances);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzSweep, Theorem2RegimeSweep) {
  // A denser pass through the regime where the sharpest contracts are live:
  // Theorem 2's 2x ratio, Lemma 2's aux bound, and two-sided
  // approx-vs-exact existence agreement all check on every instance here.
  HarnessOptions opt = env_options();
  opt.num_instances = std::max(20, opt.num_instances / 4);
  opt.base_seed += 0x517e0000;
  opt.gen.theorem2_regime_only = true;
  const HarnessReport report = run_fuzz(opt);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(FuzzSweep, CoversEveryTopologyFamily) {
  HarnessOptions opt;
  opt.num_instances = 200;
  opt.check.run_exact = false;  // coverage question only; keep it cheap
  opt.ilp_every = 0;
  HarnessReport report;
  for (int i = 0; i < opt.num_instances; ++i) {
    const FuzzInstance inst =
        generate_instance(opt.base_seed + static_cast<std::uint64_t>(i));
    ++report.instances_per_family[inst.family];
  }
  for (const char* family :
       {"random-digraph", "random-connected", "ring", "grid", "backbone",
        "trap", "bridge"}) {
    EXPECT_GT(report.instances_per_family[family], 0)
        << "family " << family << " never generated in 200 draws";
  }
}

TEST(FuzzGenerator, DeterministicGivenSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const FuzzInstance a = generate_instance(seed);
    const FuzzInstance b = generate_instance(seed);
    EXPECT_EQ(a.s, b.s);
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.family, b.family);
    // Bit-identical state via the exact-roundtrip serialization.
    EXPECT_EQ(io::write_network(a.network), io::write_network(b.network));
  }
}

TEST(FuzzGenerator, Theorem2RegimeFlagHolds) {
  GenOptions gen;
  gen.theorem2_regime_only = true;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const FuzzInstance inst = generate_instance(seed, gen);
    EXPECT_TRUE(in_theorem2_regime(inst.network))
        << "seed " << seed << " family " << inst.family;
  }
}

TEST(RandomDigraph, ForbiddenParallelEdgesYieldsSimpleDigraph) {
  support::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const auto rg =
        test::random_digraph(6, 40, rng, 1.0, 10.0, /*allow_parallel=*/false);
    // m clamped to the 6*5 distinct ordered pairs, each at most once.
    EXPECT_EQ(rg.g.num_edges(), 30);
    std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
    for (graph::EdgeId e = 0; e < rg.g.num_edges(); ++e) {
      EXPECT_NE(rg.g.tail(e), rg.g.head(e));
      EXPECT_TRUE(seen.emplace(rg.g.tail(e), rg.g.head(e)).second)
          << "duplicate edge " << rg.g.tail(e) << "->" << rg.g.head(e);
    }
  }
}

TEST(FuzzGenerator, InstancesAreWellFormedRequests) {
  for (std::uint64_t seed = 100; seed < 200; ++seed) {
    const FuzzInstance inst = generate_instance(seed);
    EXPECT_NE(inst.s, inst.t);
    EXPECT_TRUE(inst.network.graph().valid_node(inst.s));
    EXPECT_TRUE(inst.network.graph().valid_node(inst.t));
    EXPECT_GT(inst.network.num_links(), 0);
    EXPECT_GE(inst.network.W(), 2);
  }
}

}  // namespace
}  // namespace wdm::fuzz
