// Corpus round-trip and replay tests.
//
// The load-bearing property is exact serialization: save -> load -> save is
// byte-identical for every instance the generator can emit, so a corpus
// entry pins the precise residual network that triggered a failure. The
// committed seed corpus (tests/fuzz/corpus/) replays through the full
// invariant suite on every CTest run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "wdm/io.hpp"

namespace wdm::fuzz {
namespace {

namespace fs = std::filesystem;

TEST(WdmIo, SaveLoadSaveIsByteIdentical) {
  // Satellite: the io round-trip contract, exercised across every topology
  // family, partial installations, reservations, and failed fibers.
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const FuzzInstance inst = generate_instance(seed);
    const std::string first = io::write_network(inst.network);
    net::WdmNetwork loaded = io::read_network(first);
    const std::string second = io::write_network(loaded);
    ASSERT_EQ(first, second) << "seed " << seed << " family " << inst.family;
    // And the reloaded network is semantically the same instance.
    EXPECT_EQ(loaded.num_nodes(), inst.network.num_nodes());
    EXPECT_EQ(loaded.num_links(), inst.network.num_links());
    EXPECT_EQ(loaded.W(), inst.network.W());
    EXPECT_EQ(loaded.total_usage(), inst.network.total_usage());
    EXPECT_DOUBLE_EQ(loaded.network_load(), inst.network.network_load());
  }
}

TEST(Corpus, ReproTextRoundTripsMetadataAndNetwork) {
  const FuzzInstance inst = generate_instance(7);
  Violation v;
  v.invariant = "aux-bound";
  v.detail = "delivered cost 5 exceeds aux-graph bound 4 (Lemma 2)";
  const std::string text = write_repro_text(inst, v);

  const ReproCase repro = read_repro_text(text);
  EXPECT_EQ(repro.instance.seed, inst.seed);
  EXPECT_EQ(repro.instance.family, inst.family);
  EXPECT_EQ(repro.instance.s, inst.s);
  EXPECT_EQ(repro.instance.t, inst.t);
  EXPECT_EQ(repro.invariant, "aux-bound");
  EXPECT_EQ(repro.detail, v.detail);
  EXPECT_EQ(io::write_network(repro.instance.network),
            io::write_network(inst.network));
}

TEST(Corpus, ReproFilesAreValidPlainNetworkFiles) {
  // The #!fuzz header rides in comment lines, so every corpus entry must
  // also parse as an ordinary .wdm network file.
  const FuzzInstance inst = generate_instance(11);
  Violation v;
  v.invariant = "edge-disjoint";
  v.router = "approx-cost(§3.3)";
  const std::string text = write_repro_text(inst, v);
  net::WdmNetwork plain = io::read_network(text);
  EXPECT_EQ(io::write_network(plain), io::write_network(inst.network));
}

TEST(Corpus, WriteLoadReplayRoundTrip) {
  const fs::path dir = fs::path(::testing::TempDir()) / "wdm-fuzz-corpus-rt";
  fs::remove_all(dir);

  const FuzzInstance a = generate_instance(21);
  const FuzzInstance b = generate_instance(22);
  Violation v;
  v.invariant = "rho-recompute";
  v.detail = "synthetic";
  const std::string pa = write_repro_file(dir.string(), a, v);
  const std::string pb = write_repro_file(dir.string(), b, v);
  EXPECT_TRUE(fs::exists(pa));
  EXPECT_TRUE(fs::exists(pb));
  EXPECT_NE(pa, pb);  // names keyed by seed: no clobbering

  const auto corpus = load_corpus(dir.string());
  ASSERT_EQ(corpus.size(), 2u);
  for (const ReproCase& repro : corpus) {
    EXPECT_EQ(repro.invariant, "rho-recompute");
    EXPECT_FALSE(repro.path.empty());
    // These instances are healthy; replay must be green.
    CheckOptions opt;
    for (const Violation& viol : replay(repro, opt)) {
      ADD_FAILURE() << repro.path << ": " << viol.to_string();
    }
  }
  fs::remove_all(dir);
}

TEST(Corpus, LoadMissingDirectoryYieldsEmptyCorpus) {
  EXPECT_TRUE(load_corpus("/nonexistent/wdm-fuzz-no-such-dir").empty());
}

TEST(Corpus, MalformedEntriesAreRejected) {
  EXPECT_THROW(read_repro_text("#!fuzz seed not-a-number\nnetwork 2 2\n"),
               io::ParseError);
  // Valid network, but the request endpoints are out of range / degenerate.
  EXPECT_THROW(
      read_repro_text("#!fuzz s 5\n#!fuzz t 5\nnetwork 2 2\nlink 0 1 cost 1\n"),
      io::ParseError);
}

TEST(Corpus, CommittedSeedCorpusReplaysClean) {
  // The corpus shipped with the repo — adversarial gadget instances — must
  // stay green against the current invariant suite forever.
  const auto corpus = load_corpus(WDM_FUZZ_SEED_CORPUS_DIR);
  ASSERT_GE(corpus.size(), 2u)
      << "seed corpus missing from " << WDM_FUZZ_SEED_CORPUS_DIR;
  for (const ReproCase& repro : corpus) {
    CheckOptions opt;
    for (const Violation& viol : replay(repro, opt)) {
      ADD_FAILURE() << repro.path << ": " << viol.to_string();
    }
  }
}

}  // namespace
}  // namespace wdm::fuzz
