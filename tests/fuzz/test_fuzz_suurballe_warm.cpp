// Differential proof obligation for the warm-startable SuurballeEngine:
// under randomized residual-state churn over the stable-arena auxiliary
// graph, a long-lived engine (whose round-1 trees survive and get repaired
// across solves) must produce a DisjointPair bit-for-bit identical — edge
// ids, per-path costs, total cost — to a cold engine solving the same graph
// from scratch. This is the warm == cold contract the routers rely on; any
// drift here silently changes routing decisions.
//
// A second check cross-validates found/total_cost against the classic
// graph::suurballe() on the same universe graph. Classic predecessors are
// heap-order-dependent so equal-cost path *sets* may differ; total cost is
// compared with a tight relative tolerance instead of bitwise.
//
// Budget knob: WDM_FUZZ_ITERATIONS scales the instance count (default 500,
// used as instances = max(15, WDM_FUZZ_ITERATIONS / 8)).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "graph/suurballe.hpp"
#include "graph/suurballe_warm.hpp"
#include "rwa/aux_graph.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace wdm::fuzz {
namespace {

using graph::DisjointPair;
using rwa::AuxGraph;
using rwa::AuxGraphBuilder;
using rwa::AuxGraphOptions;
using rwa::AuxWeighting;

void expect_bitwise_equal(const DisjointPair& cold, const DisjointPair& warm,
                          const std::string& context) {
  ASSERT_EQ(cold.found, warm.found) << context;
  if (!cold.found) return;
  ASSERT_EQ(cold.first.edges, warm.first.edges) << context;
  ASSERT_EQ(cold.second.edges, warm.second.edges) << context;
  // Bitwise: same edges traversed in the same order sum identically.
  ASSERT_EQ(cold.first.cost, warm.first.cost) << context;
  ASSERT_EQ(cold.second.cost, warm.second.cost) << context;
}

/// One random residual-state mutation (reserve / release / fail-toggle).
void churn_step(net::WdmNetwork& net, support::Rng& rng) {
  const graph::EdgeId e = static_cast<graph::EdgeId>(
      rng.index(static_cast<std::size_t>(net.num_links())));
  const double dice = rng.uniform();
  if (dice < 0.1) {
    net.set_link_failed(e, !net.link_failed(e));
    return;
  }
  if (dice < 0.55) {
    const std::vector<net::Wavelength> avail = net.available(e).to_vector();
    if (!avail.empty()) net.reserve(e, avail[rng.index(avail.size())]);
    return;
  }
  std::vector<net::Wavelength> used;
  net.installed(e).for_each([&](net::Wavelength l) {
    if (net.is_used(e, l)) used.push_back(l);
  });
  if (!used.empty()) net.release(e, used[rng.index(used.size())]);
}

int instance_budget() {
  const auto iters = support::env_int("WDM_FUZZ_ITERATIONS", 500);
  return std::max<int>(15, static_cast<int>(iters / 8));
}

struct Arm {
  const char* label;
  AuxWeighting weighting;
  bool protect_nodes;
};

constexpr Arm kArms[] = {
    {"G'", AuxWeighting::kCost, false},
    {"G_rc", AuxWeighting::kCostLoadFiltered, false},
    {"G'+protect", AuxWeighting::kCost, true},
};

TEST(SuurballeWarmDifferential, WarmEqualsColdBitForBitUnderChurn) {
  const int instances = instance_budget();
  for (int i = 0; i < instances; ++i) {
    const std::uint64_t seed = 0x5bbe0000ull + static_cast<std::uint64_t>(i);
    FuzzInstance inst = generate_instance(seed);
    support::Rng rng(seed ^ 0x77a3ull);

    for (std::size_t a = 0; a < std::size(kArms); ++a) {
      // One long-lived builder+engine pair survives the churn sequence —
      // exactly a pooled RouteScratch's lifecycle. Trees accumulate across
      // sources and get repaired as weights drift.
      AuxGraphBuilder warm_builder;
      graph::SuurballeEngine warm;
      const int steps = 10;
      for (int step = 0; step < steps; ++step) {
        for (int k = 0; k < 2; ++k) churn_step(inst.network, rng);
        // Rotate the source over a few values so tree slots are shared,
        // repaired, and LRU-recycled rather than rebuilt fresh each solve.
        const net::NodeId s = static_cast<net::NodeId>(
            rng.index(std::min<std::size_t>(
                4, static_cast<std::size_t>(inst.network.num_nodes()))));
        net::NodeId t = inst.t;
        if (t == s) t = (t + 1) % inst.network.num_nodes();

        AuxGraphOptions opt;
        opt.weighting = kArms[a].weighting;
        opt.protect_nodes = kArms[a].protect_nodes;
        opt.stable_arena = true;
        if (opt.weighting != AuxWeighting::kCost) {
          opt.theta = 0.25 + 0.75 * rng.uniform();
        }
        const AuxGraph& aux = warm_builder.build(inst.network, s, t, opt);

        const std::string context =
            std::string("seed ") + std::to_string(seed) + " family " +
            inst.family + " step " + std::to_string(step) + " arm " +
            kArms[a].label;

        // Cold reference: fresh engine, no history, same graph.
        graph::SuurballeEngine cold_engine;
        const DisjointPair cold = cold_engine.solve(
            aux.g, aux.w, aux.s_prime, aux.t_second,
            static_cast<std::uint64_t>(s));
        const DisjointPair warm_pair = warm.solve(
            aux.g, aux.w, aux.s_prime, aux.t_second,
            static_cast<std::uint64_t>(s));
        expect_bitwise_equal(cold, warm_pair, context);
        if (HasFatalFailure()) return;

        // Cross-check against the classic one-shot implementation: path
        // sets may legitimately differ under cost ties, but feasibility and
        // optimal total cost may not.
        const DisjointPair classic =
            graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second);
        ASSERT_EQ(classic.found, warm_pair.found) << context;
        if (classic.found) {
          const double c = classic.total_cost();
          const double wsum = warm_pair.total_cost();
          ASSERT_NEAR(wsum, c, 1e-9 * std::max(1.0, std::abs(c))) << context;
        }
      }
      // The engine must actually have exercised the warm path; otherwise
      // this differential proves nothing.
      const auto& st = warm.stats();
      EXPECT_GT(st.tree_repairs + st.tree_hits, 0u)
          << "arm " << kArms[a].label << " never warm-started (seed " << seed
          << ")";
    }
  }
}

}  // namespace
}  // namespace wdm::fuzz
