// Parser robustness fuzz: the .wdm reader (and the corpus repro reader
// layered on top of it) must never escape with anything but io::ParseError,
// no matter how the input is damaged. The harness takes valid serialized
// networks from the instance generator and feeds the parsers truncated
// prefixes, random single/multi-byte mutations, and pure garbage.
//
// Budget knob: WDM_FUZZ_ITERATIONS scales the mutation count (default 500).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <typeinfo>

#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "wdm/io.hpp"

namespace wdm::fuzz {
namespace {

int mutation_budget() {
  const auto iters = support::env_int("WDM_FUZZ_ITERATIONS", 500);
  return std::max<int>(40, static_cast<int>(iters));
}

/// The property under test: parsing any bytes either succeeds or throws
/// io::ParseError — never std::out_of_range from a raw stoi, never a crash.
template <class Parse>
void expect_clean(const std::string& text, const char* label, Parse parse) {
  try {
    parse(text);
  } catch (const io::ParseError&) {
    // The one sanctioned failure mode.
  } catch (const std::exception& e) {
    FAIL() << label << " escaped with " << typeid(e).name() << ": "
           << e.what() << "\ninput:\n"
           << text.substr(0, 400);
  }
}

void check_both_parsers(const std::string& text) {
  expect_clean(text, "read_network",
               [](const std::string& t) { (void)io::read_network(t); });
  expect_clean(text, "read_repro_text",
               [](const std::string& t) { (void)read_repro_text(t); });
}

TEST(ParserFuzz, TruncatedPrefixesNeverCrash) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const FuzzInstance inst = generate_instance(seed);
    Violation v;
    v.invariant = "parser-fuzz";
    const std::string text = write_repro_text(inst, v);
    // Every prefix, stepping a few bytes at a time to keep the budget sane.
    const std::size_t step = std::max<std::size_t>(1, text.size() / 200);
    for (std::size_t len = 0; len < text.size(); len += step) {
      check_both_parsers(text.substr(0, len));
    }
  }
}

TEST(ParserFuzz, RandomByteMutationsNeverCrash) {
  support::Rng rng(0xFEEDu);
  const int budget = mutation_budget();
  for (int i = 0; i < budget; ++i) {
    const FuzzInstance inst = generate_instance(rng() % 64);
    Violation v;
    v.invariant = "parser-fuzz";
    std::string text = write_repro_text(inst, v);
    // 1-8 random byte edits: overwrite, insert, or delete.
    const int edits = 1 + static_cast<int>(rng() % 8);
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t pos = rng.index(text.size());
      switch (rng() % 3) {
        case 0:
          text[pos] = static_cast<char>(rng() % 256);
          break;
        case 1:
          text.insert(pos, 1, static_cast<char>(rng() % 256));
          break;
        default:
          text.erase(pos, 1);
          break;
      }
    }
    check_both_parsers(text);
  }
}

TEST(ParserFuzz, GarbageTokensNeverCrash) {
  // Hand-picked adversarial lines: overflow, partial tokens, negative ids,
  // non-finite numbers, binary junk, absurd sizes.
  const char* cases[] = {
      "network 99999999999999999999 8\n",
      "network 3 2\nlink 0 1 cost 1e99999\n",
      "network 3 2\nlink 0 1 cost 1x\n",
      "network 3 2\nlink -1 1 cost 1\n",
      "network 3 2\nlink 0 1 cost nan\nlink 0 1 cost inf\n",
      "network 3 2\nconversion 0 full -inf\n",
      "network 3 2\nreserve 0 99999999999999999999\n",
      "#!fuzz seed 18446744073709551616\nnetwork 2 2\nlink 0 1 cost 1\n",
      "#!fuzz seed -1\nnetwork 2 2\nlink 0 1 cost 1\n",
      "#!fuzz s 2x\nnetwork 2 2\nlink 0 1 cost 1\n",
      "#!fuzz t \nnetwork 2 2\nlink 0 1 cost 1\n",
      "network\x00 3 2\n",
      "network 3 2\nlink 0 1 costs ,,,\n",
      "network 3 2\nlink 0 1 cost\n",
      "network 1000000000 1000000000\n",
      "network 3 2\nlink 0 1 cost 1\nsrlg 0 0.5 99999999999999999999\n",
      "network 3 2\nlink 0 1 cost 1\nsrlg 0 nan 0\n",
      "network 3 2\nlink 0 1 cost 1\nsrlg -1 0.5 0\n",
      "network 3 2\nlink 0 1 cost 1\nsrlg 0 0.5 0,0,0,0,0,0,0,0,,\n",
      "srlg 0 0.5 0\n",
  };
  for (const char* c : cases) check_both_parsers(c);
}

TEST(ParserFuzz, SrlgAnnotatedInstancesMutateCleanly) {
  // Same byte-mutation property over instances that serialize srlg blocks,
  // so the new directive's parsing paths face the same abuse.
  GenOptions gen;
  gen.srlg_probability = 1.0;
  support::Rng rng(0x5197u);
  const int budget = mutation_budget() / 2;
  for (int i = 0; i < budget; ++i) {
    const FuzzInstance inst = generate_instance(rng() % 64, gen);
    Violation v;
    v.invariant = "parser-fuzz";
    std::string text = write_repro_text(inst, v);
    const int edits = 1 + static_cast<int>(rng() % 8);
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t pos = rng.index(text.size());
      switch (rng() % 3) {
        case 0:
          text[pos] = static_cast<char>(rng() % 256);
          break;
        case 1:
          text.insert(pos, 1, static_cast<char>(rng() % 256));
          break;
        default:
          text.erase(pos, 1);
          break;
      }
    }
    check_both_parsers(text);
  }
}

}  // namespace
}  // namespace wdm::fuzz
