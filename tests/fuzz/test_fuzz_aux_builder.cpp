// Differential identity check for the reusable AuxGraphBuilder: under
// randomized reserve/release/fiber-cut churn, a long-lived builder must
// produce a graph arc-for-arc identical — topology, node ids, arc order,
// AND bit-exact weights — to a cold build_aux_graph of the same query.
// This is the contract the routers' correctness rests on: if it holds, the
// caching fast path is observationally invisible.
//
// Budget knob: WDM_FUZZ_ITERATIONS scales the instance count (default 500,
// used as instances = max(20, WDM_FUZZ_ITERATIONS / 5)).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/generator.hpp"
#include "rwa/aux_graph.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace wdm::fuzz {
namespace {

using rwa::AuxGraph;
using rwa::AuxGraphBuilder;
using rwa::AuxGraphOptions;
using rwa::AuxWeighting;

/// Exact structural + weight equality. EXPECT_EQ on doubles is deliberate:
/// the builder promises *bit-identical* weights, not approximately equal
/// ones, because routers compare path costs built from them.
void expect_identical(const AuxGraph& cold, const AuxGraph& warm,
                      const std::string& context) {
  ASSERT_EQ(cold.g.num_nodes(), warm.g.num_nodes()) << context;
  ASSERT_EQ(cold.g.num_edges(), warm.g.num_edges()) << context;
  EXPECT_EQ(cold.s_prime, warm.s_prime) << context;
  EXPECT_EQ(cold.t_second, warm.t_second) << context;
  EXPECT_EQ(cold.num_edge_nodes, warm.num_edge_nodes) << context;
  EXPECT_EQ(cold.num_link_arcs, warm.num_link_arcs) << context;
  EXPECT_EQ(cold.num_transit_arcs, warm.num_transit_arcs) << context;
  ASSERT_EQ(cold.w.size(), warm.w.size()) << context;
  ASSERT_EQ(cold.phys_edge_of_arc.size(), warm.phys_edge_of_arc.size())
      << context;
  ASSERT_EQ(cold.phys_edge_of_node.size(), warm.phys_edge_of_node.size())
      << context;
  ASSERT_EQ(cold.is_in_node.size(), warm.is_in_node.size()) << context;
  for (graph::EdgeId a = 0; a < cold.g.num_edges(); ++a) {
    const auto i = static_cast<std::size_t>(a);
    ASSERT_EQ(cold.g.tail(a), warm.g.tail(a)) << context << " arc " << a;
    ASSERT_EQ(cold.g.head(a), warm.g.head(a)) << context << " arc " << a;
    ASSERT_EQ(cold.w[i], warm.w[i]) << context << " arc " << a
                                    << " (weights must be bit-identical)";
    ASSERT_EQ(cold.phys_edge_of_arc[i], warm.phys_edge_of_arc[i])
        << context << " arc " << a;
  }
  for (graph::NodeId v = 0; v < cold.g.num_nodes(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    ASSERT_EQ(cold.phys_edge_of_node[i], warm.phys_edge_of_node[i])
        << context << " node " << v;
    ASSERT_EQ(cold.is_in_node[i], warm.is_in_node[i]) << context << " node "
                                                      << v;
  }
}

/// One random residual-state mutation: reserve an available wavelength,
/// release a used one, or toggle a link's failure state.
void churn_step(net::WdmNetwork& net, support::Rng& rng) {
  const graph::EdgeId e =
      static_cast<graph::EdgeId>(rng.index(static_cast<std::size_t>(
          net.num_links())));
  const double dice = rng.uniform();
  if (dice < 0.1) {
    net.set_link_failed(e, !net.link_failed(e));
    return;
  }
  if (dice < 0.55) {
    const std::vector<net::Wavelength> avail = net.available(e).to_vector();
    if (!avail.empty()) net.reserve(e, avail[rng.index(avail.size())]);
    return;
  }
  std::vector<net::Wavelength> used;
  net.installed(e).for_each([&](net::Wavelength l) {
    if (net.is_used(e, l)) used.push_back(l);
  });
  if (!used.empty()) net.release(e, used[rng.index(used.size())]);
}

int instance_budget() {
  const auto iters = support::env_int("WDM_FUZZ_ITERATIONS", 500);
  return std::max<int>(20, static_cast<int>(iters / 5));
}

struct Arm {
  const char* label;
  AuxWeighting weighting;
  bool protect_nodes;
};

constexpr Arm kArms[] = {
    {"G'", AuxWeighting::kCost, false},
    {"G_c", AuxWeighting::kLoadExponential, false},
    {"G_rc", AuxWeighting::kCostLoadFiltered, false},
    {"G'+protect", AuxWeighting::kCost, true},
};

TEST(AuxBuilderDifferential, WarmEqualsColdUnderChurn) {
  const int instances = instance_budget();
  for (int i = 0; i < instances; ++i) {
    const std::uint64_t seed = 0xab11de50ull + static_cast<std::uint64_t>(i);
    FuzzInstance inst = generate_instance(seed);
    support::Rng rng(seed ^ 0x5eedull);

    // One long-lived builder per arm survives the whole churn sequence;
    // the cold reference is rebuilt from scratch at every step.
    AuxGraphBuilder builders[std::size(kArms)];
    const int steps = 8;
    for (int step = 0; step < steps; ++step) {
      for (int k = 0; k < 3; ++k) churn_step(inst.network, rng);
      // Vary the query too: the arena must cope with changing (s, t).
      const net::NodeId s =
          step % 2 == 0 ? inst.s
                        : static_cast<net::NodeId>(rng.index(
                              static_cast<std::size_t>(
                                  inst.network.num_nodes())));
      net::NodeId t = inst.t;
      if (t == s) t = (t + 1) % inst.network.num_nodes();

      for (std::size_t a = 0; a < std::size(kArms); ++a) {
        AuxGraphOptions opt;
        opt.weighting = kArms[a].weighting;
        opt.protect_nodes = kArms[a].protect_nodes;
        if (opt.weighting != AuxWeighting::kCost) {
          // A mid-range ϑ so the filter actually drops some links.
          opt.theta = 0.25 + 0.75 * rng.uniform();
        }
        const AuxGraph cold = rwa::build_aux_graph(inst.network, s, t, opt);
        const AuxGraph& warm = builders[a].build(inst.network, s, t, opt);
        expect_identical(
            cold, warm,
            std::string("seed ") + std::to_string(seed) + " family " +
                inst.family + " step " + std::to_string(step) + " arm " +
                kArms[a].label);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(AuxBuilderDifferential, CacheActuallyHitsOnUnchangedNetwork) {
  FuzzInstance inst = generate_instance(7);
  AuxGraphBuilder builder;
  AuxGraphOptions opt;  // G': exercises both transit and link caches
  builder.build(inst.network, inst.s, inst.t, opt);
  const auto after_first = builder.stats();
  builder.build(inst.network, inst.s, inst.t, opt);
  const auto after_second = builder.stats();
  EXPECT_EQ(after_second.builds, 2u);
  // Nothing changed between builds: the second is all hits, no misses.
  EXPECT_EQ(after_second.conv_misses, after_first.conv_misses);
  EXPECT_EQ(after_second.link_misses, after_first.link_misses);
  EXPECT_GT(after_second.link_hits, after_first.link_hits);
}

TEST(AuxBuilderDifferential, ReserveInvalidatesOnlyTouchedLink) {
  FuzzInstance inst = generate_instance(11);
  net::WdmNetwork& net = inst.network;
  AuxGraphBuilder builder;
  builder.build(net, inst.s, inst.t, AuxGraphOptions{});

  // Find a link with an available wavelength and reserve it.
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    const net::WavelengthSet avail = net.available(e);
    if (avail.count() == 0) continue;
    net.reserve(e, avail.lowest());
    break;
  }
  const auto before = builder.stats();
  const AuxGraph warm = [&] {
    builder.build(net, inst.s, inst.t, AuxGraphOptions{});
    return builder.take_last();
  }();
  const auto after = builder.stats();
  // The rebuild re-derives only entries touching the mutated link; on any
  // non-trivial instance most link-cost entries are still served from cache.
  EXPECT_GT(after.link_hits, before.link_hits);
  const AuxGraph cold =
      rwa::build_aux_graph(net, inst.s, inst.t, AuxGraphOptions{});
  expect_identical(cold, warm, "post-reserve rebuild");
}

TEST(AuxBuilderDifferential, RebindsOnDifferentNetworkObject) {
  FuzzInstance a = generate_instance(3);
  FuzzInstance b = generate_instance(4);
  AuxGraphBuilder builder;
  builder.build(a.network, a.s, a.t, AuxGraphOptions{});
  builder.build(b.network, b.s, b.t, AuxGraphOptions{});
  EXPECT_EQ(builder.stats().rebinds, 2u);
  // A copy is a distinct object (fresh uid) even though its state is equal.
  const net::WdmNetwork copy = b.network;
  const AuxGraph warm = [&] {
    builder.build(copy, b.s, b.t, AuxGraphOptions{});
    return builder.take_last();
  }();
  EXPECT_EQ(builder.stats().rebinds, 3u);
  const AuxGraph cold = rwa::build_aux_graph(copy, b.s, b.t, AuxGraphOptions{});
  expect_identical(cold, warm, "post-rebind build");
}

TEST(AuxBuilderDifferential, BatchMatchesPerQueryColdBuilds) {
  FuzzInstance inst = generate_instance(19);
  support::Rng rng(19);
  std::vector<std::pair<net::NodeId, net::NodeId>> queries;
  const net::NodeId n = inst.network.num_nodes();
  for (int i = 0; i < 6; ++i) {
    const auto s = static_cast<net::NodeId>(rng.index(
        static_cast<std::size_t>(n)));
    const auto t = static_cast<net::NodeId>((s + 1 + rng.index(
        static_cast<std::size_t>(n - 1))) % n);
    queries.emplace_back(s, t);
  }
  AuxGraphOptions opt;
  AuxGraphBuilder builder;
  std::size_t seen = 0;
  builder.build_batch(inst.network, queries, opt,
                      [&](std::size_t i, const AuxGraph& warm) {
                        ASSERT_EQ(i, seen++);
                        const AuxGraph cold = rwa::build_aux_graph(
                            inst.network, queries[i].first, queries[i].second,
                            opt);
                        expect_identical(cold, warm,
                                         "batch query " + std::to_string(i));
                      });
  EXPECT_EQ(seen, queries.size());
}

TEST(AuxBuilderPool, SingleThreadedCallerGetsWarmBuilderBack) {
  rwa::AuxGraphBuilderPool pool;
  EXPECT_EQ(pool.idle_count(), 0u);
  AuxGraphBuilder* first = nullptr;
  {
    auto lease = pool.lease();
    first = lease.get();
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  {
    auto lease = pool.lease();
    EXPECT_EQ(lease.get(), first) << "LIFO pool must recycle the warm builder";
    auto second = pool.lease();
    EXPECT_NE(second.get(), first);
  }
  EXPECT_EQ(pool.idle_count(), 2u);
}

}  // namespace
}  // namespace wdm::fuzz
