#include <gtest/gtest.h>

#include <limits>

#include "rwa/approx_router.hpp"
#include "rwa/batch.hpp"
#include "support/rng.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

std::vector<BatchRequest> random_batch(int count, int n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<BatchRequest> batch;
  for (int i = 0; i < count; ++i) {
    BatchRequest r;
    r.id = i;
    r.s = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    r.t = r.s;
    while (r.t == r.s) {
      r.t = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    }
    batch.push_back(r);
  }
  return batch;
}

TEST(Batch, AcceptsEverythingOnIdleNetwork) {
  net::WdmNetwork n = topo::nsfnet_network(16, 0.5);
  ApproxDisjointRouter router;
  const auto batch = random_batch(10, 14, 1);
  const BatchOutcome out = provision_batch(n, router, batch);
  EXPECT_EQ(out.accepted, 10);
  EXPECT_EQ(out.dropped, 0);
  EXPECT_GT(out.total_cost, 0.0);
  EXPECT_GT(out.final_network_load, 0.0);
  // Every accepted route is recorded at its original index.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(out.routes[i].has_value());
    EXPECT_EQ(out.routes[i]->primary.source(n), batch[i].s);
    EXPECT_EQ(out.routes[i]->primary.destination(n), batch[i].t);
  }
}

TEST(Batch, ReleaseRestoresIdleNetwork) {
  net::WdmNetwork n = topo::nsfnet_network(8, 0.5);
  ApproxDisjointRouter router;
  const BatchOutcome out = provision_batch(n, router, random_batch(8, 14, 2));
  EXPECT_GT(n.total_usage(), 0);
  release_batch(n, out);
  EXPECT_EQ(n.total_usage(), 0);
}

TEST(Batch, DropsUnderContention) {
  net::WdmNetwork n = topo::nsfnet_network(2, 0.5);  // tiny capacity
  ApproxDisjointRouter router;
  const BatchOutcome out =
      provision_batch(n, router, random_batch(60, 14, 3));
  EXPECT_GT(out.dropped, 0);
  EXPECT_GT(out.accepted, 0);
  EXPECT_EQ(out.accepted + out.dropped, 60);
}

TEST(Batch, OrderingChangesProcessingNotIndexing) {
  net::WdmNetwork n1 = topo::nsfnet_network(4, 0.5);
  net::WdmNetwork n2 = topo::nsfnet_network(4, 0.5);
  ApproxDisjointRouter router;
  const auto batch = random_batch(30, 14, 4);
  support::Rng rng(5);
  const BatchOutcome a = provision_batch(n1, router, batch,
                                         BatchOrder::kArrival);
  const BatchOutcome b = provision_batch(n2, router, batch,
                                         BatchOrder::kRandom, &rng);
  EXPECT_EQ(a.routes.size(), batch.size());
  EXPECT_EQ(b.routes.size(), batch.size());
  EXPECT_EQ(a.accepted + a.dropped, 30);
  EXPECT_EQ(b.accepted + b.dropped, 30);
}

TEST(Batch, RandomOrderNeedsRng) {
  net::WdmNetwork n = topo::nsfnet_network(4, 0.5);
  ApproxDisjointRouter router;
  EXPECT_THROW(
      provision_batch(n, router, random_batch(3, 14, 6), BatchOrder::kRandom),
      std::logic_error);
}

TEST(Batch, ShortestAndLongestAreValidPermutations) {
  for (BatchOrder order :
       {BatchOrder::kShortestFirst, BatchOrder::kLongestFirst}) {
    net::WdmNetwork n = topo::nsfnet_network(8, 0.5);
    ApproxDisjointRouter router;
    const auto batch = random_batch(20, 14, 7);
    const BatchOutcome out = provision_batch(n, router, batch, order);
    EXPECT_EQ(out.accepted + out.dropped, 20);
    // Reservations consistent with the recorded routes.
    long long expected = 0;
    for (const auto& r : out.routes) {
      if (r) {
        expected += static_cast<long long>(r->primary.length() +
                                           r->backup.length());
      }
    }
    EXPECT_EQ(n.total_usage(), expected);
  }
}

TEST(Batch, HopOrderingObservableUnderContention) {
  // W=1 multigraph: two parallel links 0->1 and two parallel 1->2, plus an
  // isolated node 3. The 1-hop request (0,1) and the 2-hop request (0,2)
  // both need BOTH 0->1 links (disjoint pair), so whichever is processed
  // first wins and the other drops; (0,3) is unreachable.
  auto make_net = [] {
    net::WdmNetwork n(4, 1);
    const net::WavelengthSet l0 = net::WavelengthSet::all(1);
    n.add_link(0, 1, l0, 1.0);
    n.add_link(0, 1, l0, 1.0);
    n.add_link(1, 2, l0, 1.0);
    n.add_link(1, 2, l0, 1.0);
    return n;
  };
  const std::vector<BatchRequest> batch = {
      {0, 2, 0},  // 2 hops
      {0, 3, 1},  // unreachable: kUnreachableHops
      {0, 1, 2},  // 1 hop
  };
  ApproxDisjointRouter router;

  net::WdmNetwork ns = make_net();
  const BatchOutcome shortest =
      provision_batch(ns, router, batch, BatchOrder::kShortestFirst);
  EXPECT_TRUE(shortest.routes[2].has_value()) << "1-hop first, must win";
  EXPECT_FALSE(shortest.routes[0].has_value()) << "2-hop starved of 0->1";
  EXPECT_FALSE(shortest.routes[1].has_value()) << "unreachable always drops";

  net::WdmNetwork nl = make_net();
  const BatchOutcome longest =
      provision_batch(nl, router, batch, BatchOrder::kLongestFirst);
  EXPECT_TRUE(longest.routes[0].has_value()) << "2-hop first, must win";
  EXPECT_FALSE(longest.routes[2].has_value()) << "1-hop starved of 0->1";
  EXPECT_FALSE(longest.routes[1].has_value());
}

TEST(Batch, UnreachableSortsLastUnderShortestFirst) {
  // Documented sentinel semantics: kUnreachableHops = INT_MAX, so the
  // stable sort keeps unreachable requests at the back (shortest-first) /
  // front (longest-first) — they can never starve a routable request of
  // capacity under shortest-first.
  EXPECT_EQ(kUnreachableHops, std::numeric_limits<int>::max());
  net::WdmNetwork n(3, 1);
  n.add_link(0, 1, net::WavelengthSet::all(1), 1.0);
  n.add_link(0, 1, net::WavelengthSet::all(1), 1.0);
  // 40 unreachable requests ahead of one routable one in arrival order.
  std::vector<BatchRequest> batch;
  for (int i = 0; i < 40; ++i) batch.push_back({0, 2, i});
  batch.push_back({0, 1, 40});
  ApproxDisjointRouter router;
  const BatchOutcome out =
      provision_batch(n, router, batch, BatchOrder::kShortestFirst);
  EXPECT_EQ(out.accepted, 1);
  EXPECT_TRUE(out.routes[40].has_value());
}

TEST(Batch, OrderNamesDistinct) {
  EXPECT_STRNE(batch_order_name(BatchOrder::kArrival),
               batch_order_name(BatchOrder::kRandom));
  EXPECT_STRNE(batch_order_name(BatchOrder::kShortestFirst),
               batch_order_name(BatchOrder::kLongestFirst));
}

}  // namespace
}  // namespace wdm::rwa
