// Unit battery for graph::SuurballeEngine — the warm-startable Suurballe.
//
// The engine's contract (suurballe_warm.hpp): a warm solve over a graph
// whose weights drifted since the cached round-1 tree was built returns a
// DisjointPair bit-for-bit identical to a cold solve of the same instance.
// These tests pin the contract on hand-built graphs where every interesting
// repair case is reachable deliberately: weight increases on tree arcs
// (subtree invalidation), decreases off-tree (new shortcuts), the identical
// re-solve (pure tree hit), source rotation through the LRU slots, and
// structural invalidation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/suurballe.hpp"
#include "graph/suurballe_warm.hpp"
#include "support/rng.hpp"

namespace wdm::graph {
namespace {

void expect_bitwise(const DisjointPair& a, const DisjointPair& b) {
  ASSERT_EQ(a.found, b.found);
  if (!a.found) return;
  EXPECT_EQ(a.first.edges, b.first.edges);
  EXPECT_EQ(a.second.edges, b.second.edges);
  EXPECT_EQ(a.first.cost, b.first.cost);
  EXPECT_EQ(a.second.cost, b.second.cost);
}

/// The classic two-diamond graph: two edge-disjoint 0 -> 3 paths exist and
/// Suurballe must trade the naive shortest path away to find them.
struct Diamond {
  Digraph g{4};
  std::vector<double> w;
  Diamond() {
    auto add = [&](NodeId a, NodeId b, double weight) {
      g.add_edge(a, b);
      w.push_back(weight);
    };
    add(0, 1, 1.0);  // e0
    add(1, 3, 1.0);  // e1
    add(0, 2, 2.0);  // e2
    add(2, 3, 2.0);  // e3
    add(1, 2, 0.1);  // e4 — tempts the shortest path through both branches
  }
};

TEST(SuurballeEngine, MatchesClassicOnFirstSolve) {
  Diamond d;
  SuurballeEngine eng;
  const DisjointPair warm = eng.solve(d.g, d.w, 0, 3, /*tree_key=*/0);
  const DisjointPair classic = suurballe(d.g, d.w, 0, 3);
  ASSERT_TRUE(warm.found);
  ASSERT_EQ(classic.found, warm.found);
  EXPECT_DOUBLE_EQ(classic.total_cost(), warm.total_cost());
  EXPECT_EQ(eng.stats().tree_builds, 1u);
}

TEST(SuurballeEngine, IdenticalResolveIsATreeHit) {
  Diamond d;
  SuurballeEngine eng;
  const DisjointPair a = eng.solve(d.g, d.w, 0, 3, 0);
  const DisjointPair b = eng.solve(d.g, d.w, 0, 3, 0);
  expect_bitwise(a, b);
  EXPECT_EQ(eng.stats().tree_builds, 1u);
  EXPECT_EQ(eng.stats().tree_hits, 1u);
  EXPECT_EQ(eng.stats().tree_repairs, 0u);
}

TEST(SuurballeEngine, WeightIncreaseOnTreeArcRepairsToColdResult) {
  Diamond d;
  SuurballeEngine eng;
  eng.solve(d.g, d.w, 0, 3, 0);
  // e0 sits on the round-1 shortest path; raising it invalidates the
  // subtree below node 1.
  d.w[0] = 5.0;
  const DisjointPair warm = eng.solve(d.g, d.w, 0, 3, 0);
  SuurballeEngine cold;
  const DisjointPair reference = cold.solve(d.g, d.w, 0, 3, 0);
  expect_bitwise(reference, warm);
  EXPECT_EQ(eng.stats().tree_repairs, 1u);
}

TEST(SuurballeEngine, WeightDecreaseOffTreeRepairsToColdResult) {
  Diamond d;
  SuurballeEngine eng;
  eng.solve(d.g, d.w, 0, 3, 0);
  // e2 is off the round-1 tree path to 3; making it nearly free reroutes.
  d.w[2] = 0.01;
  const DisjointPair warm = eng.solve(d.g, d.w, 0, 3, 0);
  SuurballeEngine cold;
  expect_bitwise(cold.solve(d.g, d.w, 0, 3, 0), warm);
}

TEST(SuurballeEngine, InfeasibleThenFeasibleAgain) {
  Diamond d;
  SuurballeEngine eng;
  ASSERT_TRUE(eng.solve(d.g, d.w, 0, 3, 0).found);
  // Price one branch out entirely: only one finite path remains, so no
  // disjoint pair. (kInf arcs are how the stable arena disables links.)
  const double save2 = d.w[2];
  const double save3 = d.w[3];
  d.w[2] = kInf;
  d.w[3] = kInf;
  EXPECT_FALSE(eng.solve(d.g, d.w, 0, 3, 0).found);
  d.w[2] = save2;
  d.w[3] = save3;
  const DisjointPair back = eng.solve(d.g, d.w, 0, 3, 0);
  SuurballeEngine cold;
  expect_bitwise(cold.solve(d.g, d.w, 0, 3, 0), back);
}

TEST(SuurballeEngine, LruRecyclesBeyondMaxTrees) {
  // A wheel: hub 0 plus a cycle through 1..k, rich enough that every source
  // admits a disjoint pair to its antipode.
  const NodeId n = 12;
  Digraph g(n);
  std::vector<double> w;
  auto add = [&](NodeId a, NodeId b, double weight) {
    g.add_edge(a, b);
    g.add_edge(b, a);
    w.push_back(weight);
    w.push_back(weight);
  };
  for (NodeId v = 1; v < n; ++v) add(0, v, 2.0);
  for (NodeId v = 1; v < n; ++v) add(v, (v % (n - 1)) + 1, 1.0);

  SuurballeEngine eng;
  // More distinct keys than kMaxTrees: slots must recycle without
  // corrupting results.
  for (int round = 0; round < 2; ++round) {
    for (NodeId s = 1; s + 1 < n; ++s) {
      const NodeId t = s + 1;
      const DisjointPair warm =
          eng.solve(g, w, s, t, static_cast<std::uint64_t>(s));
      SuurballeEngine cold;
      expect_bitwise(cold.solve(g, w, s, t, static_cast<std::uint64_t>(s)),
                     warm);
    }
  }
  EXPECT_GT(eng.stats().tree_builds,
            static_cast<std::uint64_t>(SuurballeEngine::kMaxTrees));
}

TEST(SuurballeEngine, InvalidateDropsTrees) {
  Diamond d;
  SuurballeEngine eng;
  eng.solve(d.g, d.w, 0, 3, 0);
  eng.invalidate();
  eng.solve(d.g, d.w, 0, 3, 0);
  EXPECT_EQ(eng.stats().tree_builds, 2u);
  EXPECT_EQ(eng.stats().tree_hits, 0u);
}

TEST(SuurballeEngine, RandomizedDriftMatchesColdBitForBit) {
  // Random layered graphs under random weight drift; every solve compared
  // bitwise against a fresh engine. Complements the aux-graph fuzz arm with
  // plain graphs where the weight diff is dense rather than structured.
  support::Rng rng(2024);
  for (int inst = 0; inst < 10; ++inst) {
    const NodeId n = 16;
    Digraph g(n);
    std::vector<double> w;
    for (NodeId a = 0; a < n; ++a) {
      for (int k = 0; k < 4; ++k) {
        const NodeId b = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(n)));
        if (b == a) continue;
        g.add_edge(a, b);
        w.push_back(rng.uniform(0.5, 10.0));
      }
    }
    SuurballeEngine eng;
    for (int step = 0; step < 12; ++step) {
      // Drift ~20% of the weights, both directions.
      for (std::size_t e = 0; e < w.size(); ++e) {
        if (rng.uniform() < 0.2) w[e] = rng.uniform(0.5, 10.0);
      }
      const NodeId s = 0;
      const NodeId t = n - 1;
      const DisjointPair warm = eng.solve(g, w, s, t, 0);
      SuurballeEngine cold;
      const DisjointPair reference = cold.solve(g, w, s, t, 0);
      expect_bitwise(reference, warm);
      if (HasFatalFailure()) return;
    }
    EXPECT_GT(eng.stats().tree_repairs, 0u);
  }
}

}  // namespace
}  // namespace wdm::graph
