// Gauges and the live JSONL stream publisher (DESIGN.md §8.5): gauge
// set/add/reset semantics and dump output, Prometheus text exposition,
// interval/final frame structure on disk, flush-on-unwind via StreamScope,
// stop_stream idempotence, and thread-count invariance of the sim.* content
// of a streamed batch-mode run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rwa/approx_router.hpp"
#include "sim/simulator.hpp"
#include "support/telemetry.hpp"
#include "tools/json_mini.hpp"
#include "topology/network_builder.hpp"

namespace wdm::support::telemetry {
namespace {

using wdm::tools::json::Json;
using wdm::tools::json::JsonPtr;
using wdm::tools::json::Parser;

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stop_stream();  // never inherit a live publisher from a sibling test
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    stop_stream();
    set_enabled(false);
    reset();
  }
};

std::vector<JsonPtr> read_frames(const std::string& path) {
  std::vector<JsonPtr> frames;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    frames.push_back(Parser(line).parse());
  }
  return frames;
}

const Json* field(const Json& obj, const char* key) {
  const JsonPtr* p = obj.find(key);
  return p != nullptr ? p->get() : nullptr;
}

TEST_F(StreamTest, GaugeSetAddAndReset) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  Gauge& g = gauge("test.gauge");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_EQ(g.value(), 4.0);
  g.add(-5.0);
  EXPECT_EQ(g.value(), -1.0);  // gauges are levels; negatives are legal
  // Same name resolves to the same instance, like counters.
  EXPECT_EQ(&gauge("test.gauge"), &g);

  WDM_TEL_GAUGE_SET("test.gauge", 7);
  EXPECT_EQ(g.value(), 7.0);
  WDM_TEL_GAUGE_ADD("test.gauge", -2);
  EXPECT_EQ(g.value(), 5.0);

  const auto values = gauge_values();
  const auto it = values.find("test.gauge");
  ASSERT_NE(it, values.end());
  EXPECT_EQ(it->second, 5.0);

  reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST_F(StreamTest, GaugeMacrosInertWhenDisabled) {
  set_enabled(false);
  WDM_TEL_GAUGE_SET("test.gauge.off", 9);
  WDM_TEL_GAUGE_ADD("test.gauge.off", 1);
  if (!compiled_in()) return;
  const auto values = gauge_values();
  const auto it = values.find("test.gauge.off");
  if (it != values.end()) {
    EXPECT_EQ(it->second, 0.0);
  }
}

TEST_F(StreamTest, GaugesAppearInJsonDump) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  gauge("test.dump.gauge").set(3.25);
  std::ostringstream out;
  write_json(out);
  const std::string doc = out.str();
  const JsonPtr root = Parser(doc).parse();
  const Json* gauges = field(*root, "gauges");
  ASSERT_NE(gauges, nullptr);
  const Json* g = field(*gauges, "test.dump.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->num, 3.25);
}

TEST_F(StreamTest, PrometheusExposition) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  counter("test.prom.requests").add(42);
  gauge("test.prom.depth").set(6.0);
  histogram("test.prom.latency_ns").record_ns(1500);
  std::ostringstream out;
  write_prometheus(out);
  const std::string text = out.str();
  // Counters get a _total suffix, dots fold to underscores, everything is
  // namespaced under robustwdm_.
  EXPECT_NE(text.find("robustwdm_test_prom_requests_total 42"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE robustwdm_test_prom_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("robustwdm_test_prom_depth 6"), std::string::npos);
  // Histograms expose cumulative le buckets plus _sum/_count and +Inf.
  EXPECT_NE(text.find("robustwdm_test_prom_latency_ns_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("robustwdm_test_prom_latency_ns_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("robustwdm_build_info"), std::string::npos);
}

TEST_F(StreamTest, PublisherEmitsIntervalAndFinalFrames) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const std::string path = ::testing::TempDir() + "stream_frames.jsonl";
  StreamOptions opt;
  opt.path = path;
  opt.interval_s = 0.01;
  ASSERT_TRUE(start_stream(opt));
  EXPECT_TRUE(stream_active());
  // Counter activity spread across several publisher ticks.
  for (int i = 0; i < 10; ++i) {
    counter("test.stream.work").add(5);
    gauge("test.stream.depth").set(i);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop_stream();
  EXPECT_FALSE(stream_active());

  const auto frames = read_frames(path);
  ASSERT_GE(frames.size(), 2u) << "expected interval frames plus a final";
  std::uint64_t delta_sum = 0;
  double prev_seq = 0.0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Json& f = *frames[i];
    const Json* schema = field(f, "schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "robustwdm-telemetry-stream-v1");
    const Json* seq = field(f, "seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_GT(seq->num, prev_seq);
    prev_seq = seq->num;
    const Json* kind = field(f, "kind");
    ASSERT_NE(kind, nullptr);
    if (i + 1 < frames.size()) {
      EXPECT_EQ(kind->str, "interval");
      const Json* counters = field(f, "counters");
      ASSERT_NE(counters, nullptr);
      if (const Json* d = field(*counters, "test.stream.work")) {
        delta_sum += static_cast<std::uint64_t>(d->num);
      }
    } else {
      EXPECT_EQ(kind->str, "final");
    }
  }
  // The final frame is cumulative and dump-shaped.
  const Json& fin = *frames.back();
  const Json* counters = field(fin, "counters");
  ASSERT_NE(counters, nullptr);
  const Json* total = field(*counters, "test.stream.work");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->num, 50.0);
  EXPECT_GE(static_cast<std::uint64_t>(total->num), delta_sum);
  const Json* gauges = field(fin, "gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(field(*gauges, "test.stream.depth"), nullptr);
  ASSERT_NE(field(fin, "meta"), nullptr);
  const Json* nframes = field(fin, "frames");
  ASSERT_NE(nframes, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(nframes->num) + 1, frames.size());
}

TEST_F(StreamTest, StartStreamRejectsBadOptions) {
  StreamOptions none;  // neither path nor fd
  EXPECT_FALSE(start_stream(none));
  StreamOptions bad;
  bad.path = ::testing::TempDir() + "never_written.jsonl";
  bad.interval_s = 0.0;
  EXPECT_FALSE(start_stream(bad));
  if (!compiled_in()) return;
  StreamOptions ok;
  ok.path = ::testing::TempDir() + "double_start.jsonl";
  ok.interval_s = 0.05;
  ASSERT_TRUE(start_stream(ok));
  EXPECT_FALSE(start_stream(ok)) << "second start while active must fail";
  stop_stream();
}

TEST_F(StreamTest, StopStreamIsIdempotent) {
  stop_stream();  // never started: no-op
  stop_stream();
  if (!compiled_in()) return;
  StreamOptions opt;
  opt.path = ::testing::TempDir() + "idempotent.jsonl";
  opt.interval_s = 0.05;
  ASSERT_TRUE(start_stream(opt));
  stop_stream();
  stop_stream();  // second stop after a real run: still a no-op
  const auto frames = read_frames(opt.path);
  std::size_t finals = 0;
  for (const JsonPtr& f : frames) {
    const Json* kind = field(*f, "kind");
    if (kind != nullptr && kind->str == "final") ++finals;
  }
  EXPECT_EQ(finals, 1u) << "double stop must not write a second final frame";
}

TEST_F(StreamTest, StreamScopeFlushesFinalFrameOnUnwind) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const std::string path = ::testing::TempDir() + "unwind.jsonl";
  try {
    StreamOptions opt;
    opt.path = path;
    opt.interval_s = 10.0;  // no interval tick fires during the test
    StreamScope scope(opt);
    counter("test.unwind.work").add(3);
    throw std::runtime_error("bench died mid-run");
  } catch (const std::exception&) {
  }
  // The scope's destructor ran during unwind, so the final frame — with the
  // cumulative counter — must already be on disk.
  const auto frames = read_frames(path);
  ASSERT_EQ(frames.size(), 1u);
  const Json* kind = field(*frames[0], "kind");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(kind->str, "final");
  const Json* counters = field(*frames[0], "counters");
  ASSERT_NE(counters, nullptr);
  const Json* v = field(*counters, "test.unwind.work");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->num, 3.0);
}

/// Streamed sim.* content is a pure function of the seed: cumulative sim.*
/// counters and sim.series.* samples in the final frame must be identical
/// for a 1-thread and a 4-thread batch-mode run. (rwa.* counters, timings,
/// and gauges are scheduling-dependent and deliberately excluded.)
TEST_F(StreamTest, SimStreamContentThreadCountInvariantUnderBatching) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  auto streamed_run = [&](int threads, const std::string& path) {
    reset();
    StreamOptions sopt;
    sopt.path = path;
    sopt.interval_s = 0.01;
    EXPECT_TRUE(start_stream(sopt));
    rwa::ApproxDisjointRouter router;
    sim::SimOptions opt;
    opt.traffic.arrival_rate = 20.0;
    opt.traffic.mean_holding = 1.0;
    opt.duration = 60.0;
    opt.seed = 7;
    opt.batching.interval = 0.5;
    opt.batching.threads = threads;
    opt.series_interval = 5.0;
    sim::Simulator s(topo::nsfnet_network(8, 0.5), router, opt);
    s.run();
    stop_stream();
  };
  const std::string one_path = ::testing::TempDir() + "sim_t1.jsonl";
  const std::string four_path = ::testing::TempDir() + "sim_t4.jsonl";
  streamed_run(1, one_path);
  streamed_run(4, four_path);

  auto final_frame = [&](const std::string& path) -> JsonPtr {
    auto frames = read_frames(path);
    EXPECT_FALSE(frames.empty());
    return std::move(frames.back());
  };
  const JsonPtr f1 = final_frame(one_path);
  const JsonPtr f4 = final_frame(four_path);

  auto sim_counters = [&](const Json& f) {
    std::map<std::string, double> out;
    const Json* counters = field(f, "counters");
    if (counters == nullptr) return out;
    for (const auto& [name, v] : counters->obj) {
      if (name.rfind("sim.", 0) == 0) out.emplace(name, v->num);
    }
    return out;
  };
  const auto c1 = sim_counters(*f1);
  const auto c4 = sim_counters(*f4);
  EXPECT_FALSE(c1.empty());
  EXPECT_EQ(c1, c4);

  auto sim_series = [&](const Json& f) {
    std::map<std::string, std::vector<std::pair<double, double>>> out;
    const Json* series = field(f, "series");
    if (series == nullptr) return out;
    for (const auto& [name, v] : series->obj) {
      if (name.rfind("sim.series.", 0) != 0) continue;
      const Json* points = field(*v, "points");
      if (points == nullptr) continue;
      auto& dst = out[name];
      for (const JsonPtr& p : points->arr) {
        dst.emplace_back(p->arr[0]->num, p->arr[1]->num);
      }
    }
    return out;
  };
  const auto s1 = sim_series(*f1);
  const auto s4 = sim_series(*f4);
  EXPECT_FALSE(s1.empty());
  EXPECT_EQ(s1, s4);
}

}  // namespace
}  // namespace wdm::support::telemetry
