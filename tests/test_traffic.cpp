#include <gtest/gtest.h>

#include "rwa/approx_router.hpp"
#include "sim/simulator.hpp"
#include "topology/network_builder.hpp"

namespace wdm::sim {
namespace {

TEST(TrafficMatrix, HotspotMatrixShape) {
  const auto w = hotspot_matrix(4, {1}, 5.0);
  ASSERT_EQ(w.size(), 16u);
  EXPECT_DOUBLE_EQ(w[0 * 4 + 0], 0.0);  // diagonal zeroed
  EXPECT_DOUBLE_EQ(w[0 * 4 + 1], 5.0);  // into the hotspot
  EXPECT_DOUBLE_EQ(w[1 * 4 + 2], 5.0);  // out of the hotspot
  EXPECT_DOUBLE_EQ(w[0 * 4 + 2], 1.0);  // cold pair
}

TEST(TrafficMatrix, HotspotRejectsBadNodes) {
  EXPECT_THROW(hotspot_matrix(3, {5}, 2.0), std::logic_error);
  EXPECT_THROW(hotspot_matrix(3, {0}, -1.0), std::logic_error);
}

TEST(TrafficMatrix, GravityFavorsNearPairs) {
  const topo::Topology t = topo::nsfnet();
  const auto w = gravity_matrix(t);
  const auto n = static_cast<std::size_t>(t.num_nodes());
  ASSERT_EQ(w.size(), n * n);
  // Adjacent coastal pair (0, 1) should outweigh the cross-country (0, 13).
  EXPECT_GT(w[0 * n + 1], w[0 * n + 13]);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(w[i * n + i], 0.0);
}

TEST(TrafficMatrix, SimulatorValidatesMatrix) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt;
  opt.traffic.arrival_rate = 5.0;
  opt.duration = 5.0;
  opt.traffic.pair_weight = {1.0, 2.0};  // wrong size
  EXPECT_THROW(Simulator(topo::nsfnet_network(4, 0.5), router, opt),
               std::logic_error);
  opt.traffic.pair_weight.assign(14 * 14, 0.0);  // no positive mass
  EXPECT_THROW(Simulator(topo::nsfnet_network(4, 0.5), router, opt),
               std::logic_error);
}

TEST(TrafficMatrix, HotspotTrafficConcentratesLoad) {
  rwa::ApproxDisjointRouter router;
  // All traffic to/from node 5: its incident links should be hotter than
  // the network average.
  SimOptions opt;
  opt.traffic.arrival_rate = 10.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 50.0;
  opt.seed = 5;
  opt.traffic.pair_weight = hotspot_matrix(14, {5}, 50.0);
  Simulator sim(topo::nsfnet_network(16, 0.5), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.accepted, 0);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(TrafficMatrix, DegenerateMatrixOnlyDrawsThatPair) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt;
  opt.traffic.arrival_rate = 10.0;
  opt.traffic.mean_holding = 0.5;
  opt.duration = 20.0;
  opt.seed = 11;
  std::vector<double> w(14 * 14, 0.0);
  w[0 * 14 + 13] = 1.0;  // only 0 -> 13
  opt.traffic.pair_weight = std::move(w);
  Simulator sim(topo::nsfnet_network(32, 0.5), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.offered, 50);
  EXPECT_EQ(m.blocked, 0);  // W=32 easily serves one pair's demand
  // All accepted routes ran 0 -> 13: cost is at least the 3-hop distance
  // plus a >= 4-hop disjoint backup.
  EXPECT_GE(m.route_cost.min(), 7.0);
}

TEST(TrafficMatrix, UniformDefaultUnchanged) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt;
  opt.traffic.arrival_rate = 10.0;
  opt.duration = 10.0;
  opt.seed = 3;
  Simulator a(topo::nsfnet_network(8, 0.5), router, opt);
  const long offered_uniform = a.run().offered;
  // An explicitly uniform matrix consumes the RNG differently, so exact
  // trajectories diverge; the offered-load statistics must stay Poisson
  // with the same rate.
  opt.traffic.pair_weight = hotspot_matrix(14, {}, 1.0);
  Simulator b(topo::nsfnet_network(8, 0.5), router, opt);
  const long offered_weighted = b.run().offered;
  EXPECT_NEAR(static_cast<double>(offered_weighted),
              static_cast<double>(offered_uniform),
              0.5 * static_cast<double>(offered_uniform));
}

}  // namespace
}  // namespace wdm::sim
