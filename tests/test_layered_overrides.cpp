// Tests for the layered-graph override hooks (custom wavelength views) that
// shared-backup provisioning builds on.
#include <gtest/gtest.h>

#include "rwa/layered_graph.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

net::WdmNetwork chain(int W = 2) {
  net::WdmNetwork n(3, W);
  n.set_conversion(1, net::ConversionTable::full(W, 0.1));
  n.add_link(0, 1, net::WavelengthSet::all(W), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(W), 1.0);
  return n;
}

TEST(LayeredOverrides, DefaultMatchesPlainBuild) {
  const net::WdmNetwork n = chain();
  const net::Semilightpath a = optimal_semilightpath(n, 0, 2);
  const net::Semilightpath b =
      optimal_semilightpath_with(n, 0, 2, LayeredGraph::Overrides{});
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_DOUBLE_EQ(a.cost(n), b.cost(n));
}

TEST(LayeredOverrides, AvailabilityOverrideOpensReservedChannels) {
  net::WdmNetwork n = chain(2);
  n.reserve(0, 0);
  n.reserve(0, 1);  // link 0 fully used: normally blocked
  EXPECT_FALSE(optimal_semilightpath(n, 0, 2).found);

  LayeredGraph::Overrides view;
  view.available = [&](graph::EdgeId e) { return n.installed(e); };
  const net::Semilightpath p = optimal_semilightpath_with(n, 0, 2, view);
  ASSERT_TRUE(p.found);  // the override sees through the reservations
  EXPECT_TRUE(p.well_formed(n));
  EXPECT_FALSE(p.fits_residual(n));  // but it is not realizable as-is
}

TEST(LayeredOverrides, AvailabilityOverrideCanRestrict) {
  const net::WdmNetwork n = chain(2);
  LayeredGraph::Overrides view;
  view.available = [&](graph::EdgeId e) {
    net::WavelengthSet s = n.available(e);
    s.erase(0);
    return s;
  };
  const net::Semilightpath p = optimal_semilightpath_with(n, 0, 2, view);
  ASSERT_TRUE(p.found);
  for (const net::Hop& h : p.hops) EXPECT_EQ(h.lambda, 1);
}

TEST(LayeredOverrides, WeightOverrideSteersChoice) {
  const net::WdmNetwork n = chain(2);
  LayeredGraph::Overrides view;
  view.weight = [&](graph::EdgeId e, net::Wavelength l) {
    (void)e;
    return l == 1 ? 0.01 : 10.0;  // make λ1 irresistible
  };
  const net::Semilightpath p = optimal_semilightpath_with(n, 0, 2, view);
  ASSERT_TRUE(p.found);
  for (const net::Hop& h : p.hops) EXPECT_EQ(h.lambda, 1);
  // Eq. (1) cost is still evaluated with the *real* weights.
  EXPECT_DOUBLE_EQ(p.cost(n), 2.0);
}

TEST(LayeredOverrides, ComposesWithLinkMask) {
  net::WdmNetwork n(3, 1);
  n.add_link(0, 2, net::WavelengthSet::all(1), 1.0);  // direct
  n.add_link(0, 1, net::WavelengthSet::all(1), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(1), 1.0);
  std::vector<std::uint8_t> mask{0, 1, 1};  // forbid the direct link
  const net::Semilightpath p =
      optimal_semilightpath_with(n, 0, 2, LayeredGraph::Overrides{}, mask);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.length(), 2u);
}

}  // namespace
}  // namespace wdm::rwa
