// Golden-file test for the Chrome trace-event exporter plus flow-arrow
// structural checks under the parallel batch engine.
//
// The golden signature is *structural*: counts of slice root-paths, instant
// names, and flow phases. Timestamps, span/thread ids, and "M" metadata are
// excluded — they vary run to run — so for a fixed seed in serial mode the
// signature is fully deterministic and any change to what the exporter
// emits (names, nesting, event kinds) shows up as a diff.
//
// Regenerating after an intentional trace-shape change:
//   WDM_REGEN_TRACE_GOLDEN=1 ./build/tests/test_trace
// rewrites tests/testdata/trace_golden_nsfnet.txt in the source tree.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "rwa/approx_router.hpp"
#include "sim/simulator.hpp"
#include "support/telemetry.hpp"
#include "tools/json_mini.hpp"
#include "topology/network_builder.hpp"

namespace wdm::support::telemetry {
namespace {

namespace json = ::wdm::tools::json;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

std::string run_and_export(const sim::SimOptions& opt) {
  rwa::ApproxDisjointRouter router;
  sim::Simulator sim(topo::nsfnet_network(8, 0.5), router, opt);
  (void)sim.run();
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

sim::SimOptions golden_options() {
  sim::SimOptions opt;
  opt.traffic.arrival_rate = 5.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 10.0;
  opt.seed = 3;
  return opt;
}

/// Parses a Chrome trace document into its structural signature, one line
/// per distinct (kind, key): "X <root-path> x <count>", "i <name> x <count>",
/// "flow <ph> x <count>". Lines are sorted (std::map iteration order).
std::string trace_signature(const std::string& chrome_json) {
  json::Parser parser(chrome_json);
  const json::JsonPtr doc = parser.parse();
  const json::JsonPtr* events = doc->find("traceEvents");
  if (events == nullptr || !(*events)->is(json::Json::Type::kArray)) {
    throw std::runtime_error("no traceEvents array");
  }
  struct Slice {
    std::string name;
    std::uint64_t parent = 0;
  };
  std::map<std::uint64_t, Slice> slices;  // span id -> slice
  std::map<std::string, int> instants;
  std::map<std::string, int> flows;
  for (const json::JsonPtr& e : (*events)->arr) {
    const std::string& ph = (*e->find("ph"))->str;
    if (ph == "X") {
      const json::JsonPtr& args = *e->find("args");
      const auto id =
          static_cast<std::uint64_t>((*args->find("span"))->num);
      const auto parent =
          static_cast<std::uint64_t>((*args->find("parent"))->num);
      slices[id] = {(*e->find("name"))->str, parent};
    } else if (ph == "i") {
      ++instants[(*e->find("name"))->str];
    } else if (ph == "s" || ph == "f") {
      ++flows[ph];
    }
  }
  std::map<std::string, int> paths;
  for (const auto& [id, slice] : slices) {
    std::string path = slice.name;
    std::uint64_t up = slice.parent;
    for (int depth = 0; up != 0 && depth < 32; ++depth) {
      const auto it = slices.find(up);
      if (it == slices.end()) {
        path = "<missing-parent>/" + path;
        break;
      }
      path = it->second.name + "/" + path;
      up = it->second.parent;
    }
    ++paths[path];
  }
  std::ostringstream sig;
  for (const auto& [path, n] : paths) sig << "X " << path << " x " << n << "\n";
  for (const auto& [name, n] : instants) {
    sig << "i " << name << " x " << n << "\n";
  }
  for (const auto& [ph, n] : flows) sig << "flow " << ph << " x " << n << "\n";
  return sig.str();
}

TEST_F(TraceTest, GoldenSignatureOnFixedSeedNsfnet) {
  const std::string sig = trace_signature(run_and_export(golden_options()));
  const std::string golden_path =
      std::string(WDM_TEST_DATA_DIR) + "/trace_golden_nsfnet.txt";
  if (std::getenv("WDM_REGEN_TRACE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << sig;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " — run with WDM_REGEN_TRACE_GOLDEN=1 to create it";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(sig, golden.str())
      << "trace structure changed; if intentional, regenerate with "
         "WDM_REGEN_TRACE_GOLDEN=1";
}

TEST_F(TraceTest, SerialTraceHasOneTreePerRequestAndParsesClean) {
  const std::string doc_text = run_and_export(golden_options());
  json::Parser parser(doc_text);
  const json::JsonPtr doc = parser.parse();
  ASSERT_NE(doc->find("displayTimeUnit"), nullptr);
  const std::string sig = trace_signature(doc_text);
  // Every slice path is rooted at sim.request, and the full pipeline chain
  // (aux-build -> Suurballe -> Liang-Shen) appears under the route span.
  EXPECT_NE(sig.find("X sim.request x "), std::string::npos) << sig;
  EXPECT_NE(sig.find("X sim.request/rwa.approx.route/rwa.approx.suurballe"),
            std::string::npos)
      << sig;
  EXPECT_EQ(sig.find("X rwa."), std::string::npos)
      << "router span not rooted under sim.request:\n"
      << sig;
}

TEST_F(TraceTest, BatchModeEmitsBoundFlowArrows) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  sim::SimOptions opt = golden_options();
  opt.traffic.arrival_rate = 12.0;
  opt.duration = 20.0;
  opt.batching.interval = 0.5;
  opt.batching.threads = 3;
  const std::string doc_text = run_and_export(opt);
  json::Parser parser(doc_text);
  const json::JsonPtr doc = parser.parse();
  std::set<double> produced;  // flow ids bound by "s" (speculation end)
  std::set<double> consumed;  // flow ids bound by "f" (commit start)
  for (const json::JsonPtr& e : (*doc->find("traceEvents"))->arr) {
    const std::string& ph = (*e->find("ph"))->str;
    if (ph == "s") produced.insert((*e->find("id"))->num);
    if (ph == "f") {
      consumed.insert((*e->find("id"))->num);
      ASSERT_NE(e->find("bp"), nullptr);
      EXPECT_EQ((*e->find("bp"))->str, "e");
    }
  }
  ASSERT_FALSE(produced.empty()) << "no speculation flow bindings";
  ASSERT_FALSE(consumed.empty()) << "no commit flow bindings";
  // Every consumed flow id must have been produced by a speculation span;
  // the reverse need not hold (validation-failed slots re-route serially).
  for (const double id : consumed) {
    EXPECT_TRUE(produced.count(id)) << "dangling flow consumer id " << id;
  }
}

}  // namespace
}  // namespace wdm::support::telemetry
