#include <gtest/gtest.h>

#include "rwa/approx_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "sim/simulator.hpp"
#include "topology/network_builder.hpp"

namespace wdm::sim {
namespace {

net::WdmNetwork small_net(int W = 8) {
  return topo::nsfnet_network(W, 0.5);
}

SimOptions base_options(double erlang = 10.0, double duration = 50.0) {
  SimOptions opt;
  opt.traffic.arrival_rate = erlang;
  opt.traffic.mean_holding = 1.0;
  opt.duration = duration;
  opt.seed = 7;
  return opt;
}

TEST(Simulator, RunsAndBalancesReservations) {
  rwa::ApproxDisjointRouter router;
  Simulator sim(small_net(), router, base_options());
  const SimMetrics m = sim.run();
  EXPECT_GT(m.offered, 0);
  EXPECT_EQ(m.offered, m.accepted + m.blocked);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(Simulator, DeterministicForSeed) {
  rwa::ApproxDisjointRouter router;
  Simulator a(small_net(), router, base_options());
  Simulator b(small_net(), router, base_options());
  const SimMetrics ma = a.run();
  const SimMetrics mb = b.run();
  EXPECT_EQ(ma.offered, mb.offered);
  EXPECT_EQ(ma.accepted, mb.accepted);
  EXPECT_DOUBLE_EQ(ma.network_load.mean(), mb.network_load.mean());
}

TEST(Simulator, DifferentSeedsDiffer) {
  rwa::ApproxDisjointRouter router;
  SimOptions o1 = base_options();
  SimOptions o2 = base_options();
  o2.seed = 99;
  Simulator a(small_net(), router, o1);
  Simulator b(small_net(), router, o2);
  EXPECT_NE(a.run().offered, b.run().offered);
}

TEST(Simulator, ArrivalCountMatchesPoissonRate) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(/*erlang=*/20.0, /*duration=*/100.0);
  Simulator sim(small_net(16), router, opt);
  const SimMetrics m = sim.run();
  // E[offered] = rate * duration = 2000; Poisson sd ~ 45.
  EXPECT_NEAR(static_cast<double>(m.offered), 2000.0, 200.0);
}

TEST(Simulator, BlockingIncreasesWithLoad) {
  rwa::ApproxDisjointRouter router;
  SimOptions light = base_options(2.0, 100.0);
  SimOptions heavy = base_options(80.0, 100.0);
  Simulator a(small_net(4), router, light);
  Simulator b(small_net(4), router, heavy);
  const double bp_light = a.run().blocking_probability();
  const double bp_heavy = b.run().blocking_probability();
  EXPECT_LT(bp_light, bp_heavy);
  EXPECT_GT(bp_heavy, 0.05);
}

TEST(Simulator, UnloadedNetworkAcceptsEverything) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(0.5, 50.0);
  Simulator sim(small_net(32), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_EQ(m.blocked, 0);
}

TEST(Simulator, ActiveRestorationSurvivesFailures) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 100.0);
  opt.failures.duplex_failure_rate = 0.02;
  opt.failures.mean_repair = 2.0;
  opt.restoration = RestorationMode::kActive;
  const topo::Topology t = topo::nsfnet();
  opt.reverse_of = t.reverse_of;
  Simulator sim(small_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.primary_failures, 0) << "failure process never hit a primary";
  EXPECT_GT(m.recoveries_succeeded, 0);
  // Active restoration with pre-reserved backups succeeds overwhelmingly.
  EXPECT_GT(static_cast<double>(m.recoveries_succeeded) /
                static_cast<double>(m.recoveries_attempted),
            0.9);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(Simulator, PassiveRestorationSlowerThanActive) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 100.0);
  opt.failures.duplex_failure_rate = 0.02;
  const topo::Topology t = topo::nsfnet();
  opt.reverse_of = t.reverse_of;

  opt.restoration = RestorationMode::kActive;
  Simulator a(small_net(), router, opt);
  const SimMetrics ma = a.run();

  opt.restoration = RestorationMode::kPassive;
  Simulator p(small_net(), router, opt);
  const SimMetrics mp = p.run();

  ASSERT_GT(ma.recovery_delay.count(), 0);
  ASSERT_GT(mp.recovery_delay.count(), 0);
  // Raw per-recovery vectors stay empty unless explicitly requested.
  EXPECT_TRUE(ma.recovery_delays.empty());
  EXPECT_TRUE(mp.recovery_delays.empty());
  const double mean_active = ma.recovery_delay.mean();
  const double mean_passive = mp.recovery_delay.mean();
  EXPECT_LT(mean_active * 5, mean_passive);
}

TEST(Simulator, NoneModeDropsOnFailure) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 100.0);
  opt.failures.duplex_failure_rate = 0.05;
  opt.restoration = RestorationMode::kNone;
  const topo::Topology t = topo::nsfnet();
  opt.reverse_of = t.reverse_of;
  Simulator sim(small_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.primary_failures, 0);
  EXPECT_EQ(m.recoveries_attempted, 0);
  EXPECT_EQ(m.dropped_on_failure, m.primary_failures);
}

TEST(Simulator, ReconfigurationTriggersUnderPressure) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(40.0, 50.0);
  opt.reconfig.load_trigger = 0.6;
  opt.reconfig.min_interval = 1.0;
  Simulator sim(small_net(4), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.reconfigurations, 0);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(Simulator, ReconfigurationDisabledByHighTrigger) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(40.0, 50.0);
  opt.reconfig.load_trigger = 2.0;  // ρ can never reach 2
  Simulator sim(small_net(4), router, opt);
  EXPECT_EQ(sim.run().reconfigurations, 0);
}

TEST(Simulator, LoadSeriesRecordedWhenRequested) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(5.0, 20.0);
  opt.record_load_series = true;
  Simulator sim(small_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_EQ(m.load_series.size(), static_cast<std::size_t>(m.offered));
  double prev = -1.0;
  for (const auto& [time, rho] : m.load_series) {
    EXPECT_GE(time, prev);  // nondecreasing timestamps
    prev = time;
    EXPECT_GE(rho, 0.0);
    EXPECT_LE(rho, 1.0);
  }
}

TEST(Simulator, RouteCostStatsPopulated) {
  rwa::ApproxDisjointRouter router;
  Simulator sim(small_net(), router, base_options());
  const SimMetrics m = sim.run();
  EXPECT_EQ(m.route_cost.count(), static_cast<std::size_t>(m.accepted));
  EXPECT_GT(m.route_cost.mean(), 0.0);
}

TEST(Simulator, ThetaIterationsTrackedForLoadAwareRouter) {
  rwa::LoadCostRouter router;
  SimOptions opt = base_options(10.0, 20.0);
  Simulator sim(small_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.theta_iterations.count(), 0u);
  EXPECT_GE(m.theta_iterations.mean(), 1.0);
}

}  // namespace
}  // namespace wdm::sim
