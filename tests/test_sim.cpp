#include <gtest/gtest.h>

#include "rwa/approx_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "sim/simulator.hpp"
#include "topology/network_builder.hpp"

namespace wdm::sim {
namespace {

net::WdmNetwork small_net(int W = 8) {
  return topo::nsfnet_network(W, 0.5);
}

SimOptions base_options(double erlang = 10.0, double duration = 50.0) {
  SimOptions opt;
  opt.traffic.arrival_rate = erlang;
  opt.traffic.mean_holding = 1.0;
  opt.duration = duration;
  opt.seed = 7;
  return opt;
}

TEST(Simulator, RunsAndBalancesReservations) {
  rwa::ApproxDisjointRouter router;
  Simulator sim(small_net(), router, base_options());
  const SimMetrics m = sim.run();
  EXPECT_GT(m.offered, 0);
  EXPECT_EQ(m.offered, m.accepted + m.blocked);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(Simulator, DeterministicForSeed) {
  rwa::ApproxDisjointRouter router;
  Simulator a(small_net(), router, base_options());
  Simulator b(small_net(), router, base_options());
  const SimMetrics ma = a.run();
  const SimMetrics mb = b.run();
  EXPECT_EQ(ma.offered, mb.offered);
  EXPECT_EQ(ma.accepted, mb.accepted);
  EXPECT_DOUBLE_EQ(ma.network_load.mean(), mb.network_load.mean());
}

TEST(Simulator, DifferentSeedsDiffer) {
  rwa::ApproxDisjointRouter router;
  SimOptions o1 = base_options();
  SimOptions o2 = base_options();
  o2.seed = 99;
  Simulator a(small_net(), router, o1);
  Simulator b(small_net(), router, o2);
  EXPECT_NE(a.run().offered, b.run().offered);
}

TEST(Simulator, ArrivalCountMatchesPoissonRate) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(/*erlang=*/20.0, /*duration=*/100.0);
  Simulator sim(small_net(16), router, opt);
  const SimMetrics m = sim.run();
  // E[offered] = rate * duration = 2000; Poisson sd ~ 45.
  EXPECT_NEAR(static_cast<double>(m.offered), 2000.0, 200.0);
}

TEST(Simulator, BlockingIncreasesWithLoad) {
  rwa::ApproxDisjointRouter router;
  SimOptions light = base_options(2.0, 100.0);
  SimOptions heavy = base_options(80.0, 100.0);
  Simulator a(small_net(4), router, light);
  Simulator b(small_net(4), router, heavy);
  const double bp_light = a.run().blocking_probability();
  const double bp_heavy = b.run().blocking_probability();
  EXPECT_LT(bp_light, bp_heavy);
  EXPECT_GT(bp_heavy, 0.05);
}

TEST(Simulator, UnloadedNetworkAcceptsEverything) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(0.5, 50.0);
  Simulator sim(small_net(32), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_EQ(m.blocked, 0);
}

TEST(Simulator, ActiveRestorationSurvivesFailures) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 100.0);
  opt.failures.duplex_failure_rate = 0.02;
  opt.failures.mean_repair = 2.0;
  opt.restoration = RestorationMode::kActive;
  const topo::Topology t = topo::nsfnet();
  opt.reverse_of = t.reverse_of;
  Simulator sim(small_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.primary_failures, 0) << "failure process never hit a primary";
  EXPECT_GT(m.recoveries_succeeded, 0);
  // Active restoration with pre-reserved backups succeeds overwhelmingly.
  EXPECT_GT(static_cast<double>(m.recoveries_succeeded) /
                static_cast<double>(m.recoveries_attempted),
            0.9);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(Simulator, PassiveRestorationSlowerThanActive) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 100.0);
  opt.failures.duplex_failure_rate = 0.02;
  const topo::Topology t = topo::nsfnet();
  opt.reverse_of = t.reverse_of;

  opt.restoration = RestorationMode::kActive;
  Simulator a(small_net(), router, opt);
  const SimMetrics ma = a.run();

  opt.restoration = RestorationMode::kPassive;
  Simulator p(small_net(), router, opt);
  const SimMetrics mp = p.run();

  ASSERT_GT(ma.recovery_delay.count(), 0);
  ASSERT_GT(mp.recovery_delay.count(), 0);
  // Raw per-recovery vectors stay empty unless explicitly requested.
  EXPECT_TRUE(ma.recovery_delays.empty());
  EXPECT_TRUE(mp.recovery_delays.empty());
  const double mean_active = ma.recovery_delay.mean();
  const double mean_passive = mp.recovery_delay.mean();
  EXPECT_LT(mean_active * 5, mean_passive);
}

TEST(Simulator, NoneModeDropsOnFailure) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 100.0);
  opt.failures.duplex_failure_rate = 0.05;
  opt.restoration = RestorationMode::kNone;
  const topo::Topology t = topo::nsfnet();
  opt.reverse_of = t.reverse_of;
  Simulator sim(small_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.primary_failures, 0);
  EXPECT_EQ(m.recoveries_attempted, 0);
  EXPECT_EQ(m.dropped_on_failure, m.primary_failures);
}

TEST(Simulator, ReconfigurationTriggersUnderPressure) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(40.0, 50.0);
  opt.reconfig.load_trigger = 0.6;
  opt.reconfig.min_interval = 1.0;
  Simulator sim(small_net(4), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.reconfigurations, 0);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(Simulator, ReconfigurationDisabledByHighTrigger) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(40.0, 50.0);
  opt.reconfig.load_trigger = 2.0;  // ρ can never reach 2
  Simulator sim(small_net(4), router, opt);
  EXPECT_EQ(sim.run().reconfigurations, 0);
}

TEST(Simulator, LoadSeriesRecordedWhenRequested) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(5.0, 20.0);
  opt.record_load_series = true;
  Simulator sim(small_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_EQ(m.load_series.size(), static_cast<std::size_t>(m.offered));
  double prev = -1.0;
  for (const auto& [time, rho] : m.load_series) {
    EXPECT_GE(time, prev);  // nondecreasing timestamps
    prev = time;
    EXPECT_GE(rho, 0.0);
    EXPECT_LE(rho, 1.0);
  }
}

TEST(Simulator, RouteCostStatsPopulated) {
  rwa::ApproxDisjointRouter router;
  Simulator sim(small_net(), router, base_options());
  const SimMetrics m = sim.run();
  EXPECT_EQ(m.route_cost.count(), static_cast<std::size_t>(m.accepted));
  EXPECT_GT(m.route_cost.mean(), 0.0);
}

TEST(Simulator, ThetaIterationsTrackedForLoadAwareRouter) {
  rwa::LoadCostRouter router;
  SimOptions opt = base_options(10.0, 20.0);
  Simulator sim(small_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.theta_iterations.count(), 0u);
  EXPECT_GE(m.theta_iterations.mean(), 1.0);
}

/// NSFNET with the first `groups` fiber pairs annotated as shared conduits.
net::WdmNetwork srlg_net(int groups = 3) {
  net::WdmNetwork n = small_net();
  for (int g = 0; g < groups; ++g) {
    n.add_srlg({static_cast<graph::EdgeId>(2 * g),
                static_cast<graph::EdgeId>(2 * g + 1)},
               0.5);
  }
  return n;
}

TEST(SimulatorSrlg, CorrelatedFailuresFireAndBalance) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 100.0);
  opt.failures.srlg_failure_rate = 0.3;
  opt.failures.mean_repair = 2.0;
  opt.restoration = RestorationMode::kActive;
  Simulator sim(srlg_net(), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.srlg_failures, 0) << "SRLG failure process never fired";
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
  EXPECT_GE(m.reliability(), 0.0);
  EXPECT_LE(m.reliability(), 1.0);
  EXPECT_GT(m.availability.count(), 0u);
}

TEST(SimulatorSrlg, DeterministicForSeed) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 60.0);
  opt.failures.srlg_failure_rate = 0.2;
  Simulator a(srlg_net(), router, opt);
  Simulator b(srlg_net(), router, opt);
  const SimMetrics ma = a.run();
  const SimMetrics mb = b.run();
  EXPECT_EQ(ma.offered, mb.offered);
  EXPECT_EQ(ma.srlg_failures, mb.srlg_failures);
  EXPECT_DOUBLE_EQ(ma.service_requested, mb.service_requested);
  EXPECT_DOUBLE_EQ(ma.service_delivered, mb.service_delivered);
}

TEST(SimulatorSrlg, DisabledRateLeavesSimulationIdentical) {
  // srlg_failure_rate == 0 must not touch the RNG stream: a run on an
  // annotated network is bit-identical to the same run on the plain one.
  rwa::ApproxDisjointRouter router;
  const SimOptions opt = base_options(10.0, 60.0);
  Simulator plain(small_net(), router, opt);
  Simulator annotated(srlg_net(), router, opt);
  const SimMetrics mp = plain.run();
  const SimMetrics ma = annotated.run();
  EXPECT_EQ(mp.offered, ma.offered);
  EXPECT_EQ(mp.accepted, ma.accepted);
  EXPECT_EQ(mp.blocked, ma.blocked);
  EXPECT_EQ(ma.srlg_failures, 0);
  EXPECT_DOUBLE_EQ(mp.network_load.mean(), ma.network_load.mean());
  EXPECT_DOUBLE_EQ(mp.service_delivered, ma.service_delivered);
}

TEST(SimulatorSrlg, GroupFailureIsAtomic) {
  // Every fiber in one conduit: an SRLG event takes primary AND backup down
  // in the same instant, so the pre-reserved backup must never absorb the
  // switchover. A non-atomic implementation (fail one member, sweep, fail
  // the next) would count switchover recoveries here.
  rwa::ApproxDisjointRouter router;
  net::WdmNetwork n = small_net();
  std::vector<graph::EdgeId> all;
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) all.push_back(e);
  n.add_srlg(std::move(all), 1.0);

  SimOptions opt = base_options(10.0, 100.0);
  opt.failures.srlg_failure_rate = 0.1;
  opt.failures.mean_repair = 1.0;
  opt.restoration = RestorationMode::kActive;
  Simulator sim(std::move(n), router, opt);
  const SimMetrics m = sim.run();
  EXPECT_GT(m.srlg_failures, 0);
  EXPECT_GT(m.primary_failures, 0);
  EXPECT_EQ(m.switchover_recoveries, 0)
      << "backup sharing the primary's SRLG absorbed a switchover";
  EXPECT_EQ(m.recoveries_succeeded, 0);  // nothing survives a total blackout
  EXPECT_EQ(m.dropped_on_failure, m.primary_failures);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

TEST(SimulatorSrlg, AvailabilityThreadCountInvariantUnderBatching) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 60.0);
  opt.failures.srlg_failure_rate = 0.2;
  opt.restoration = RestorationMode::kActive;
  opt.batching.interval = 0.5;

  opt.batching.threads = 1;
  Simulator one(srlg_net(), router, opt);
  const SimMetrics m1 = one.run();

  opt.batching.threads = 4;
  Simulator four(srlg_net(), router, opt);
  const SimMetrics m4 = four.run();

  EXPECT_EQ(m1.offered, m4.offered);
  EXPECT_EQ(m1.accepted, m4.accepted);
  EXPECT_EQ(m1.blocked, m4.blocked);
  EXPECT_EQ(m1.srlg_failures, m4.srlg_failures);
  EXPECT_EQ(m1.availability.count(), m4.availability.count());
  EXPECT_DOUBLE_EQ(m1.service_requested, m4.service_requested);
  EXPECT_DOUBLE_EQ(m1.service_delivered, m4.service_delivered);
  EXPECT_DOUBLE_EQ(m1.reliability(), m4.reliability());
}

TEST(SimulatorSrlg, PerfectNetworkDeliversFullAvailability) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(5.0, 50.0);
  Simulator sim(srlg_net(), router, opt);
  const SimMetrics m = sim.run();
  ASSERT_GT(m.availability.count(), 0u);
  EXPECT_DOUBLE_EQ(m.reliability(), 1.0);
  EXPECT_DOUBLE_EQ(m.availability.mean(), 1.0);
}

TEST(SimulatorSrlg, FailuresDegradeAvailability) {
  rwa::ApproxDisjointRouter router;
  SimOptions opt = base_options(10.0, 100.0);
  opt.restoration = RestorationMode::kNone;  // drops forfeit holding time
  opt.failures.srlg_failure_rate = 0.3;
  opt.failures.mean_repair = 2.0;
  Simulator sim(srlg_net(), router, opt);
  const SimMetrics m = sim.run();
  ASSERT_GT(m.srlg_failures, 0);
  if (m.dropped_on_failure > 0) {
    EXPECT_LT(m.reliability(), 1.0);
  }
  EXPECT_GT(m.reliability(), 0.0);
}

}  // namespace
}  // namespace wdm::sim
