#include <gtest/gtest.h>

#include <set>

#include "rwa/approx_router.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/node_disjoint_router.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

bool internally_node_disjoint(const net::WdmNetwork& n,
                              const net::Semilightpath& a,
                              const net::Semilightpath& b) {
  std::set<net::NodeId> inner;
  for (std::size_t i = 0; i + 1 < a.hops.size(); ++i) {
    inner.insert(n.graph().head(a.hops[i].edge));
  }
  for (std::size_t i = 0; i + 1 < b.hops.size(); ++i) {
    if (inner.count(n.graph().head(b.hops[i].edge))) return false;
  }
  return true;
}

/// Bowtie: every pair of edge-disjoint paths shares node 2.
net::WdmNetwork bowtie() {
  net::WdmNetwork n(5, 2);
  for (net::NodeId v = 0; v < 5; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.1));
  }
  const auto all = net::WavelengthSet::all(2);
  n.add_link(0, 1, all, 1.0);
  n.add_link(0, 2, all, 1.0);
  n.add_link(1, 2, all, 1.0);
  n.add_link(2, 3, all, 1.0);
  n.add_link(2, 4, all, 1.0);
  n.add_link(3, 4, all, 1.0);
  return n;
}

TEST(NodeDisjointRouter, BlocksOnBowtieWhereEdgeDisjointSucceeds) {
  const net::WdmNetwork n = bowtie();
  EXPECT_TRUE(ApproxDisjointRouter().route(n, 0, 4).found);
  EXPECT_FALSE(NodeDisjointRouter().route(n, 0, 4).found);
}

TEST(NodeDisjointRouter, FindsNodeDisjointPairOnSquare) {
  net::WdmNetwork n(4, 2);
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.1));
  }
  const auto all = net::WavelengthSet::all(2);
  n.add_link(0, 1, all, 1.0);
  n.add_link(1, 3, all, 1.0);
  n.add_link(0, 2, all, 1.0);
  n.add_link(2, 3, all, 1.0);
  const RouteResult r = NodeDisjointRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.route.feasible(n));
  EXPECT_TRUE(internally_node_disjoint(n, r.route.primary, r.route.backup));
}

TEST(NodeDisjointRouter, ParallelFibersAreNodeDisjoint) {
  net::WdmNetwork n(2, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(0, 1, net::WavelengthSet::all(2), 2.0);
  const RouteResult r = NodeDisjointRouter().route(n, 0, 1);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(net::edge_disjoint(r.route.primary, r.route.backup));
}

class NodeDisjointPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NodeDisjointPropertyTest, DeliveredPairsAreNodeDisjointAndValid) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  net::WdmNetwork n = test::random_network(10, 12, 3, seed * 271 + 9);
  support::Rng rng(seed);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(0.3)) n.reserve(e, l);
    });
  }
  const RouteResult r = NodeDisjointRouter().route(n, 0, 9);
  if (!r.found) return;
  EXPECT_TRUE(r.route.feasible(n));
  EXPECT_TRUE(internally_node_disjoint(n, r.route.primary, r.route.backup));
  // Node-disjoint is never cheaper than the best edge-disjoint pair.
  const RouteResult edge = ApproxDisjointRouter().route(n, 0, 9);
  ASSERT_TRUE(edge.found);  // node-disjoint existence implies edge-disjoint
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, NodeDisjointPropertyTest,
                         ::testing::Range(0, 20));

TEST(NodeDisjointAux, GadgetCountsOnSquare) {
  net::WdmNetwork n(4, 2);
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.1));
  }
  const auto all = net::WavelengthSet::all(2);
  n.add_link(0, 1, all, 1.0);
  n.add_link(1, 3, all, 1.0);
  n.add_link(0, 2, all, 1.0);
  n.add_link(2, 3, all, 1.0);
  AuxGraphOptions opt;
  opt.protect_nodes = true;
  const AuxGraph aux = build_aux_graph(n, 0, 3, opt);
  // Edge nodes 8 + hubs for nodes 1, 2 (2 each) + s' + t''.
  EXPECT_EQ(aux.g.num_nodes(), 8 + 4 + 2);
  // One capacity hub arc per transited node.
  EXPECT_EQ(aux.num_transit_arcs, 2);
}

}  // namespace
}  // namespace wdm::rwa
