#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "graph/dot.hpp"

namespace wdm::graph {
namespace {

TEST(Digraph, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(Digraph, AddNodesAndEdges) {
  Digraph g(3);
  EXPECT_EQ(g.num_nodes(), 3);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  const EdgeId e2 = g.add_edge(0, 2);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.tail(e0), 0);
  EXPECT_EQ(g.head(e0), 1);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(2), 2);
  EXPECT_EQ(g.out_degree(2), 0);
  (void)e1;
  (void)e2;
}

TEST(Digraph, AddNodeGrows) {
  Digraph g(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 1);
  EXPECT_EQ(g.num_nodes(), 2);
  g.add_edge(0, v);
  EXPECT_EQ(g.in_degree(v), 1);
}

TEST(Digraph, ParallelEdgesAreDistinct) {
  Digraph g(2);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(0, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(Digraph, SelfLoopAllowed) {
  Digraph g(1);
  const EdgeId e = g.add_edge(0, 0);
  EXPECT_EQ(g.tail(e), g.head(e));
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(0), 1);
}

TEST(Digraph, InvalidEndpointThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::logic_error);
  EXPECT_THROW(g.add_edge(-1, 1), std::logic_error);
}

TEST(Digraph, FindEdge) {
  Digraph g(3);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.find_edge(0, 1), e);
  EXPECT_EQ(g.find_edge(1, 0), kInvalidEdge);
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
}

TEST(Digraph, MaxDegree) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 0);
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(Digraph, OutEdgesInInsertionOrder) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(0, 2);
  const auto out = g.out_edges(0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], a);
  EXPECT_EQ(out[1], b);
}

TEST(Digraph, ReachableFrom) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // node 3 isolated
  const auto r = g.reachable_from(0);
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_TRUE(r[2]);
  EXPECT_FALSE(r[3]);
}

TEST(Digraph, ReachableRespectsMask) {
  Digraph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<std::uint8_t> mask(2, 1);
  mask[static_cast<std::size_t>(e01)] = 0;
  const auto r = g.reachable_from(0, mask);
  EXPECT_TRUE(r[0]);
  EXPECT_FALSE(r[1]);
  EXPECT_FALSE(r[2]);
}

TEST(Digraph, ReversedSwapsEndpoints) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Digraph r = g.reversed();
  EXPECT_EQ(r.tail(0), 1);
  EXPECT_EQ(r.head(0), 0);
  EXPECT_EQ(r.tail(1), 2);
  EXPECT_EQ(r.head(1), 1);
}

TEST(Digraph, StronglyConnectedCycleYesChainNo) {
  Digraph cycle(3);
  cycle.add_edge(0, 1);
  cycle.add_edge(1, 2);
  cycle.add_edge(2, 0);
  EXPECT_TRUE(cycle.strongly_connected());

  Digraph chain(3);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  EXPECT_FALSE(chain.strongly_connected());
}

TEST(Dot, ContainsNodesAndEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  DotOptions opt;
  opt.node_label = [](NodeId v) { return "v" + std::to_string(v); };
  opt.edge_label = [](EdgeId) { return std::string("e"); };
  opt.edge_highlight = [](EdgeId) { return true; };
  const std::string dot = to_dot(g, opt);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("label=\"v0\""), std::string::npos);
}

}  // namespace
}  // namespace wdm::graph
