#include <gtest/gtest.h>

#include "wdm/semilightpath.hpp"

namespace wdm::net {
namespace {

/// 0 -> 1 -> 2 with full conversion at node 1 (cost 0.5), per-λ link costs.
WdmNetwork make_chain() {
  WdmNetwork net(3, 2);
  net.set_conversion(1, ConversionTable::full(2, 0.5));
  const std::vector<double> c01{1.0, 2.0};
  const std::vector<double> c12{3.0, 1.5};
  net.add_link(0, 1, WavelengthSet::all(2), c01);
  net.add_link(1, 2, WavelengthSet::all(2), c12);
  return net;
}

TEST(Semilightpath, CostEq1WithoutConversion) {
  const WdmNetwork net = make_chain();
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 0}, {1, 0}};  // λ0 end to end: 1.0 + 3.0
  EXPECT_DOUBLE_EQ(p.cost(net), 4.0);
  EXPECT_EQ(p.conversions(net), 0);
  EXPECT_TRUE(p.is_lightpath());
}

TEST(Semilightpath, CostEq1WithConversion) {
  const WdmNetwork net = make_chain();
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 0}, {1, 1}};  // 1.0 + c_1(0,1)=0.5 + 1.5
  EXPECT_DOUBLE_EQ(p.cost(net), 3.0);
  EXPECT_EQ(p.conversions(net), 1);
  EXPECT_FALSE(p.is_lightpath());
}

TEST(Semilightpath, EndpointsAndLength) {
  const WdmNetwork net = make_chain();
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 0}, {1, 0}};
  EXPECT_EQ(p.source(net), 0);
  EXPECT_EQ(p.destination(net), 2);
  EXPECT_EQ(p.length(), 2u);
}

TEST(Semilightpath, WellFormedRejectsDiscontinuity) {
  WdmNetwork net(4, 2);
  net.add_link(0, 1, WavelengthSet::all(2), 1.0);
  net.add_link(2, 3, WavelengthSet::all(2), 1.0);
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 0}, {1, 0}};  // head(0)=1, tail(1)=2: broken
  EXPECT_FALSE(p.well_formed(net));
}

TEST(Semilightpath, WellFormedRejectsUninstalledWavelength) {
  WdmNetwork net(2, 2);
  WavelengthSet only0;
  only0.insert(0);
  net.add_link(0, 1, only0, 1.0);
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 1}};
  EXPECT_FALSE(p.well_formed(net));
}

TEST(Semilightpath, WellFormedRejectsDisallowedConversion) {
  WdmNetwork net(3, 2);  // node 1 has no conversion
  net.add_link(0, 1, WavelengthSet::all(2), 1.0);
  net.add_link(1, 2, WavelengthSet::all(2), 1.0);
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 0}, {1, 1}};
  EXPECT_FALSE(p.well_formed(net));
  p.hops = {{0, 0}, {1, 0}};
  EXPECT_TRUE(p.well_formed(net));
}

TEST(Semilightpath, NotFoundIsNeverWellFormed) {
  const WdmNetwork net = make_chain();
  EXPECT_FALSE(Semilightpath::not_found().well_formed(net));
}

TEST(Semilightpath, FitsResidualTracksUsage) {
  WdmNetwork net = make_chain();
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 0}, {1, 0}};
  EXPECT_TRUE(p.fits_residual(net));
  net.reserve(1, 0);
  EXPECT_TRUE(p.well_formed(net));
  EXPECT_FALSE(p.fits_residual(net));
}

TEST(Semilightpath, ReserveReleaseRoundTrip) {
  WdmNetwork net = make_chain();
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 1}, {1, 1}};
  p.reserve_in(net);
  EXPECT_EQ(net.total_usage(), 2);
  EXPECT_FALSE(p.fits_residual(net));  // its own λs are now taken
  p.release_in(net);
  EXPECT_EQ(net.total_usage(), 0);
}

TEST(Semilightpath, ReserveRequiresFit) {
  WdmNetwork net = make_chain();
  net.reserve(0, 0);
  Semilightpath p;
  p.found = true;
  p.hops = {{0, 0}, {1, 0}};
  EXPECT_THROW(p.reserve_in(net), std::logic_error);
}

TEST(Semilightpath, EdgeDisjointIgnoresWavelengths) {
  Semilightpath a, b, c;
  a.found = b.found = c.found = true;
  a.hops = {{0, 0}, {1, 0}};
  b.hops = {{2, 0}, {3, 0}};
  c.hops = {{1, 1}};  // same fiber as a's second hop, different λ
  EXPECT_TRUE(edge_disjoint(a, b));
  EXPECT_FALSE(edge_disjoint(a, c));
}

TEST(ProtectedRoute, FeasibleRequiresDisjointPair) {
  WdmNetwork net(2, 2);
  net.add_link(0, 1, WavelengthSet::all(2), 1.0);
  net.add_link(0, 1, WavelengthSet::all(2), 1.0);
  ProtectedRoute r;
  r.found = true;
  r.primary.found = true;
  r.primary.hops = {{0, 0}};
  r.backup.found = true;
  r.backup.hops = {{1, 0}};
  EXPECT_TRUE(r.feasible(net));
  EXPECT_DOUBLE_EQ(r.total_cost(net), 2.0);

  r.backup.hops = {{0, 1}};  // same fiber: not edge-disjoint
  EXPECT_FALSE(r.feasible(net));
}

TEST(ProtectedRoute, ReserveReleaseBothPaths) {
  WdmNetwork net(2, 2);
  net.add_link(0, 1, WavelengthSet::all(2), 1.0);
  net.add_link(0, 1, WavelengthSet::all(2), 1.0);
  ProtectedRoute r;
  r.found = true;
  r.primary.found = true;
  r.primary.hops = {{0, 0}};
  r.backup.found = true;
  r.backup.hops = {{1, 1}};
  r.reserve_in(net);
  EXPECT_EQ(net.total_usage(), 2);
  r.release_in(net);
  EXPECT_EQ(net.total_usage(), 0);
}

}  // namespace
}  // namespace wdm::net
