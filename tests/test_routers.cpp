#include <gtest/gtest.h>

#include <cmath>

#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "rwa/exact_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

net::WdmNetwork square_net(int W = 2, double conv = 0.5) {
  net::WdmNetwork n(4, W);
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(W, conv));
  }
  n.add_link(0, 1, net::WavelengthSet::all(W), 1.0);
  n.add_link(1, 3, net::WavelengthSet::all(W), 1.0);
  n.add_link(0, 2, net::WavelengthSet::all(W), 1.0);
  n.add_link(2, 3, net::WavelengthSet::all(W), 1.0);
  return n;
}

TEST(ApproxRouter, FindsDisjointPairOnSquare) {
  const net::WdmNetwork n = square_net();
  const RouteResult r = ApproxDisjointRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.route.feasible(n));
  EXPECT_TRUE(net::edge_disjoint(r.route.primary, r.route.backup));
  EXPECT_DOUBLE_EQ(r.total_cost(n), 4.0);
}

TEST(ApproxRouter, BlocksWhenNoPairExists) {
  net::WdmNetwork n(3, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  EXPECT_FALSE(ApproxDisjointRouter().route(n, 0, 2).found);
}

TEST(ApproxRouter, UsesResidualAvailability) {
  net::WdmNetwork n = square_net(2);
  // Exhaust one side: pair impossible.
  n.reserve(0, 0);
  n.reserve(0, 1);
  EXPECT_FALSE(ApproxDisjointRouter().route(n, 0, 3).found);
}

TEST(ApproxRouter, PrimaryIsCheaperPath) {
  net::WdmNetwork n(4, 2);
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 3, net::WavelengthSet::all(2), 1.0);
  n.add_link(0, 2, net::WavelengthSet::all(2), 5.0);
  n.add_link(2, 3, net::WavelengthSet::all(2), 5.0);
  const RouteResult r = ApproxDisjointRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.route.primary.cost(n), r.route.backup.cost(n));
  EXPECT_DOUBLE_EQ(r.route.primary.cost(n), 2.0);
}

TEST(ApproxRouter, AuxCostUpperBoundsDeliveredCost) {
  // Lemma 2: C(P'_1) + C(P'_2) <= ω(P_1) + ω(P_2).
  net::WdmNetwork n = test::random_network(8, 8, 3, 7);
  const RouteResult r = ApproxDisjointRouter().route(n, 0, 7);
  if (r.found) {
    EXPECT_LE(r.total_cost(n), r.aux_cost + 1e-9);
  }
}

TEST(MinCog, UnloadedNetworkAcceptsThetaMin) {
  const net::WdmNetwork n = square_net();
  const MinCogResult mc = find_two_paths_mincog(n, 0, 3);
  ASSERT_TRUE(mc.found);
  EXPECT_DOUBLE_EQ(mc.theta, n.theta_min());
  EXPECT_EQ(mc.iterations, 1);
}

TEST(MinCog, RaisesThetaUnderLoad) {
  net::WdmNetwork n = square_net(4);
  // Load the upper route heavily: link 0 gets 3/4 used.
  n.reserve(0, 0);
  n.reserve(0, 1);
  n.reserve(0, 2);
  const MinCogResult mc = find_two_paths_mincog(n, 0, 3);
  ASSERT_TRUE(mc.found);
  // A pair must use link 0 (load .75), so ϑ must exceed .75.
  EXPECT_GT(mc.theta, 0.75);
  EXPECT_GT(mc.iterations, 1);
}

TEST(MinCog, DropsWhenNoPairAtThetaMax) {
  net::WdmNetwork n(3, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  const MinCogResult mc = find_two_paths_mincog(n, 0, 2);
  EXPECT_FALSE(mc.found);
}

TEST(MinCog, ExactThresholdOracleAgreesOnFeasibility) {
  net::WdmNetwork n = square_net(4);
  n.reserve(0, 0);
  double exact = 0.0;
  ASSERT_TRUE(exact_min_threshold(n, 0, 3, &exact));
  const MinCogResult mc = find_two_paths_mincog(n, 0, 3);
  ASSERT_TRUE(mc.found);
  // Strict filter: feasible ϑ are exactly those > L*, so the accepted ϑ
  // strictly dominates the exact minimum bottleneck load.
  EXPECT_GT(mc.theta, exact);
}

TEST(MinCog, ExactOracleIsBottleneckLoad) {
  net::WdmNetwork n = square_net(4);
  // Load both disjoint routes differently: upper 2/4, lower 1/4.
  n.reserve(0, 0);
  n.reserve(0, 1);
  n.reserve(2, 0);
  double exact = 0.0;
  ASSERT_TRUE(exact_min_threshold(n, 0, 3, &exact));
  // Any pair must use links 0 (load .5) and 2 (load .25): L* = 0.5.
  EXPECT_DOUBLE_EQ(exact, 0.5);
}

class MinCogRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(MinCogRatioTest, Theorem3RatioBelow3) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  net::WdmNetwork n = test::random_network(8, 10, 4, seed * 71 + 11);
  support::Rng rng(seed + 1000);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(0.4)) n.reserve(e, l);
    });
  }
  const net::NodeId s = 0, t = 7;
  double exact = 0.0;
  const bool exact_ok = exact_min_threshold(n, s, t, &exact);
  const MinCogResult mc = find_two_paths_mincog(n, s, t);
  ASSERT_EQ(mc.found, exact_ok);
  if (mc.found) {
    // Soundness: the accepted ϑ strictly exceeds the exact bottleneck L*.
    EXPECT_GT(mc.theta, exact);
    if (mc.iterations > 1) {
      ASSERT_FALSE(std::isnan(mc.last_infeasible_theta));
      // An infeasible probe never exceeds the exact bottleneck.
      EXPECT_LE(mc.last_infeasible_theta, exact + 1e-12);
      // Theorem 3's telescoping argument: from the second increment on, the
      // accepted ϑ overshoots the last infeasible probe (itself a lower
      // bound on every feasible ϑ) by < 3x. The very first increment can be
      // coarser — the paper's proof assumes ϑ* clears the penultimate probe.
      if (mc.iterations > 2) {
        EXPECT_LT(mc.theta / mc.last_infeasible_theta, 3.0 + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLoadedNetworks, MinCogRatioTest,
                         ::testing::Range(0, 20));

TEST(MinLoadRouter, DeliversFeasibleDisjointPair) {
  net::WdmNetwork n = square_net(4);
  n.reserve(0, 0);
  const RouteResult r = MinLoadRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.route.feasible(n));
  EXPECT_GT(r.theta_iterations, 0);
}

TEST(LoadCostRouter, DeliversFeasibleDisjointPair) {
  net::WdmNetwork n = square_net(4);
  n.reserve(2, 0);
  const RouteResult r = LoadCostRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.route.feasible(n));
}

TEST(LoadCostRouter, AvoidsLoadedLinksWhenAlternativesExist) {
  // 5-node network: two short routes and one long detour. Load one short
  // route; the load-aware router must route around it, the cost-only router
  // will still use it.
  net::WdmNetwork n(5, 4);
  for (net::NodeId v = 0; v < 5; ++v) {
    n.set_conversion(v, net::ConversionTable::full(4, 0.0));
  }
  const auto all = net::WavelengthSet::all(4);
  n.add_link(0, 1, all, 1.0);   // e0 upper
  n.add_link(1, 4, all, 1.0);   // e1 upper
  n.add_link(0, 2, all, 1.0);   // e2 middle
  n.add_link(2, 4, all, 1.0);   // e3 middle
  n.add_link(0, 3, all, 10.0);  // e4 detour
  n.add_link(3, 4, all, 10.0);  // e5 detour
  // Load the upper route to 3/4.
  for (net::Wavelength l = 0; l < 3; ++l) {
    n.reserve(0, l);
    n.reserve(1, l);
  }
  const RouteResult cost_only = ApproxDisjointRouter().route(n, 0, 4);
  ASSERT_TRUE(cost_only.found);
  // Cost-only: cheapest pair uses the loaded upper route (cost 4 total).
  EXPECT_DOUBLE_EQ(cost_only.total_cost(n), 4.0);

  const RouteResult load_aware = LoadCostRouter().route(n, 0, 4);
  ASSERT_TRUE(load_aware.found);
  // Load-aware: ϑ search settles below 3/4, excluding the hot links.
  EXPECT_LE(load_aware.theta, 0.75);
  for (const net::Hop& h : load_aware.route.primary.hops) {
    EXPECT_NE(h.edge, 0);
    EXPECT_NE(h.edge, 1);
  }
  for (const net::Hop& h : load_aware.route.backup.hops) {
    EXPECT_NE(h.edge, 0);
    EXPECT_NE(h.edge, 1);
  }
}

TEST(UnprotectedRouter, SinglePathNoBackup) {
  const net::WdmNetwork n = square_net();
  const RouteResult r = UnprotectedRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.route.primary.fits_residual(n));
  EXPECT_FALSE(r.route.backup.found);
}

TEST(FirstFitAssign, KeepsWavelengthContinuity) {
  net::WdmNetwork n(3, 3);
  n.set_conversion(1, net::ConversionTable::full(3, 0.5));
  n.add_link(0, 1, net::WavelengthSet::all(3), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(3), 1.0);
  const net::Semilightpath p = first_fit_assign(n, {0, 1});
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 0);
  EXPECT_EQ(p.hops[1].lambda, 0);  // continuity preferred
  EXPECT_EQ(p.conversions(n), 0);
}

TEST(FirstFitAssign, ConvertsWhenForced) {
  net::WdmNetwork n(3, 2);
  n.set_conversion(1, net::ConversionTable::full(2, 0.5));
  net::WavelengthSet only0, only1;
  only0.insert(0);
  only1.insert(1);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 2, only1, 1.0);  // continuity impossible: conversion forced
  const net::Semilightpath p = first_fit_assign(n, {0, 1});
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 0);
  EXPECT_EQ(p.hops[1].lambda, 1);
  EXPECT_EQ(p.conversions(n), 1);
}

TEST(FirstFitAssign, BlocksWithoutConversion) {
  net::WdmNetwork n(3, 2);  // no conversion at node 1
  net::WavelengthSet only0, only1;
  only0.insert(0);
  only1.insert(1);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 2, only1, 1.0);  // empty intersection, no converter: blocked
  const net::Semilightpath p = first_fit_assign(n, {0, 1});
  EXPECT_FALSE(p.found);
}

TEST(PhysicalFirstFitRouter, WorksOnCleanNetwork) {
  const net::WdmNetwork n = square_net();
  const RouteResult r = PhysicalFirstFitRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.route.feasible(n));
}

TEST(TwoStepRouter, WorksOnSquare) {
  const net::WdmNetwork n = square_net();
  const RouteResult r = TwoStepRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.route.feasible(n));
}

TEST(TwoStepRouter, FailsOnTrapWhereApproxSucceeds) {
  // WDM version of the Suurballe trap.
  net::WdmNetwork n(4, 2);
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, 0.0));
  }
  const auto all = net::WavelengthSet::all(2);
  n.add_link(0, 1, all, 1.0);
  n.add_link(1, 2, all, 0.1);
  n.add_link(2, 3, all, 1.0);
  n.add_link(1, 3, all, 3.0);
  n.add_link(0, 2, all, 3.0);
  EXPECT_FALSE(TwoStepRouter().route(n, 0, 3).found);
  const RouteResult r = ApproxDisjointRouter().route(n, 0, 3);
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.total_cost(n), 8.0);
}

TEST(RouterNames, AreDistinct) {
  EXPECT_NE(ApproxDisjointRouter().name(), MinLoadRouter().name());
  EXPECT_NE(MinLoadRouter().name(), LoadCostRouter().name());
  EXPECT_NE(UnprotectedRouter().name(), TwoStepRouter().name());
}

}  // namespace
}  // namespace wdm::rwa
