// Shared helpers for the test suites: random instance generators and
// brute-force reference oracles (deliberately simple and slow).
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/path.hpp"
#include "support/rng.hpp"
#include "topology/network_builder.hpp"
#include "wdm/network.hpp"
#include "wdm/semilightpath.hpp"

namespace wdm::test {

/// Random digraph with n nodes and ~m directed edges (no self loops),
/// uniform random weights in [lo, hi].
struct RandomGraph {
  graph::Digraph g;
  std::vector<double> w;
};

/// With `allow_parallel` (the default, preserving historical behavior) the
/// generator samples endpoint pairs independently and can silently emit
/// parallel duplicate edges — which inflates apparent edge-connectivity and
/// skews disjointness properties (a "disjoint" pair may ride two copies of
/// the same random link). Pass `allow_parallel = false` for tests whose
/// property depends on the simple-digraph structure; then each (u, v) pair
/// appears at most once and m is clamped to the n*(n-1) distinct pairs.
inline RandomGraph random_digraph(int n, int m, support::Rng& rng,
                                  double lo = 1.0, double hi = 10.0,
                                  bool allow_parallel = true) {
  RandomGraph rg;
  rg.g = graph::Digraph(n);
  if (!allow_parallel) m = std::min(m, n * (n - 1));
  for (int i = 0; i < m; ++i) {
    graph::NodeId u, v;
    do {
      u = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
      v = u;
      while (v == u) v = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
    } while (!allow_parallel && rg.g.find_edge(u, v) != graph::kInvalidEdge);
    rg.g.add_edge(u, v);
    rg.w.push_back(rng.uniform(lo, hi));
  }
  return rg;
}

/// All simple physical s->t paths (edge-id sequences), DFS. Exponential —
/// tiny graphs only.
inline void all_simple_paths_rec(const graph::Digraph& g, graph::NodeId v,
                                 graph::NodeId t,
                                 std::vector<graph::EdgeId>& cur,
                                 std::vector<std::uint8_t>& visited,
                                 std::vector<std::vector<graph::EdgeId>>& out) {
  if (v == t) {
    out.push_back(cur);
    return;
  }
  for (graph::EdgeId e : g.out_edges(v)) {
    const graph::NodeId w = g.head(e);
    if (visited[static_cast<std::size_t>(w)]) continue;
    visited[static_cast<std::size_t>(w)] = 1;
    cur.push_back(e);
    all_simple_paths_rec(g, w, t, cur, visited, out);
    cur.pop_back();
    visited[static_cast<std::size_t>(w)] = 0;
  }
}

inline std::vector<std::vector<graph::EdgeId>> all_simple_paths(
    const graph::Digraph& g, graph::NodeId s, graph::NodeId t) {
  std::vector<std::vector<graph::EdgeId>> out;
  std::vector<graph::EdgeId> cur;
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(g.num_nodes()), 0);
  visited[static_cast<std::size_t>(s)] = 1;
  all_simple_paths_rec(g, s, t, cur, visited, out);
  return out;
}

/// Brute-force optimal semilightpath over a physical path: dynamic program
/// over per-hop wavelength choices (exact Eq. (1) minimization on the chain).
inline std::optional<net::Semilightpath> best_assignment_on_path(
    const net::WdmNetwork& net, const std::vector<graph::EdgeId>& links) {
  if (links.empty()) return std::nullopt;
  const int W = net.W();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(W), kInf);
  std::vector<std::vector<net::Wavelength>> choice(
      links.size(), std::vector<net::Wavelength>(static_cast<std::size_t>(W),
                                                 net::kInvalidWavelength));
  net.available(links[0]).for_each([&](net::Wavelength l) {
    dist[static_cast<std::size_t>(l)] = net.weight(links[0], l);
  });
  for (std::size_t i = 1; i < links.size(); ++i) {
    const net::NodeId mid = net.graph().tail(links[i]);
    std::vector<double> next(static_cast<std::size_t>(W), kInf);
    net.available(links[i]).for_each([&](net::Wavelength l2) {
      for (net::Wavelength l1 = 0; l1 < W; ++l1) {
        if (dist[static_cast<std::size_t>(l1)] == kInf) continue;
        if (!net.conversion(mid).allowed(l1, l2)) continue;
        const double c = dist[static_cast<std::size_t>(l1)] +
                         net.conversion(mid).cost(l1, l2) +
                         net.weight(links[i], l2);
        if (c < next[static_cast<std::size_t>(l2)]) {
          next[static_cast<std::size_t>(l2)] = c;
          choice[i][static_cast<std::size_t>(l2)] = l1;
        }
      }
    });
    dist = std::move(next);
  }
  double best = kInf;
  net::Wavelength last = net::kInvalidWavelength;
  for (net::Wavelength l = 0; l < W; ++l) {
    if (dist[static_cast<std::size_t>(l)] < best) {
      best = dist[static_cast<std::size_t>(l)];
      last = l;
    }
  }
  if (last == net::kInvalidWavelength) return std::nullopt;
  // Backtrack.
  std::vector<net::Wavelength> lambdas(links.size());
  net::Wavelength cur = last;
  for (std::size_t i = links.size(); i-- > 0;) {
    lambdas[i] = cur;
    if (i > 0) cur = choice[i][static_cast<std::size_t>(cur)];
  }
  net::Semilightpath slp;
  slp.found = true;
  for (std::size_t i = 0; i < links.size(); ++i) {
    slp.hops.push_back(net::Hop{links[i], lambdas[i]});
  }
  return slp;
}

/// Brute-force optimal semilightpath: best assignment over all simple
/// physical paths.
inline std::optional<net::Semilightpath> brute_force_semilightpath(
    const net::WdmNetwork& net, net::NodeId s, net::NodeId t) {
  std::optional<net::Semilightpath> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& links : all_simple_paths(net.graph(), s, t)) {
    const auto slp = best_assignment_on_path(net, links);
    if (!slp) continue;
    const double c = slp->cost(net);
    if (c < best_cost) {
      best_cost = c;
      best = slp;
    }
  }
  return best;
}

/// Brute-force optimal edge-disjoint pair: all ordered pairs of
/// edge-disjoint simple paths, best assignments on each.
inline std::optional<std::pair<net::Semilightpath, net::Semilightpath>>
brute_force_disjoint_pair(const net::WdmNetwork& net, net::NodeId s,
                          net::NodeId t, double* cost_out = nullptr) {
  const auto paths = all_simple_paths(net.graph(), s, t);
  double best_cost = std::numeric_limits<double>::infinity();
  std::optional<std::pair<net::Semilightpath, net::Semilightpath>> best;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = 0; j < paths.size(); ++j) {
      if (i == j) continue;
      const auto& a = paths[i];
      const auto& b = paths[j];
      const bool disjoint = std::none_of(
          a.begin(), a.end(), [&](graph::EdgeId e) {
            return std::find(b.begin(), b.end(), e) != b.end();
          });
      if (!disjoint) continue;
      const auto pa = best_assignment_on_path(net, a);
      const auto pb = best_assignment_on_path(net, b);
      if (!pa || !pb) continue;
      const double c = pa->cost(net) + pb->cost(net);
      if (c < best_cost) {
        best_cost = c;
        best = std::make_pair(*pa, *pb);
      }
    }
  }
  if (best && cost_out != nullptr) *cost_out = best_cost;
  return best;
}

/// Small random WDM network for property sweeps.
inline net::WdmNetwork random_network(int n, int extra_links, int W,
                                      std::uint64_t seed,
                                      topo::NetworkOptions opt = {}) {
  support::Rng rng(seed);
  opt.num_wavelengths = W;
  const topo::Topology t = topo::random_connected(n, extra_links, rng);
  return topo::build_network(t, opt, rng);
}

}  // namespace wdm::test
