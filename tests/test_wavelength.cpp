#include <gtest/gtest.h>

#include "wdm/conversion.hpp"
#include "wdm/wavelength.hpp"

namespace wdm::net {
namespace {

TEST(WavelengthSet, EmptyByDefault) {
  WavelengthSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.lowest(), kInvalidWavelength);
}

TEST(WavelengthSet, AllCount) {
  EXPECT_EQ(WavelengthSet::all(0).count(), 0);
  EXPECT_EQ(WavelengthSet::all(5).count(), 5);
  EXPECT_EQ(WavelengthSet::all(64).count(), 64);
}

TEST(WavelengthSet, InsertEraseContains) {
  WavelengthSet s;
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.count(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.count(), 1);
}

TEST(WavelengthSet, LowestIsFirstFit) {
  WavelengthSet s;
  s.insert(9);
  s.insert(4);
  s.insert(30);
  EXPECT_EQ(s.lowest(), 4);
}

TEST(WavelengthSet, SetAlgebra) {
  WavelengthSet a = WavelengthSet::all(4);       // {0,1,2,3}
  WavelengthSet b;
  b.insert(2);
  b.insert(3);
  b.insert(5);
  EXPECT_EQ(a.intersect(b).count(), 2);
  EXPECT_EQ(a.unite(b).count(), 5);
  EXPECT_EQ(a.minus(b).count(), 2);
  EXPECT_TRUE(a.minus(a).empty());
}

TEST(WavelengthSet, ForEachVisitsAscending) {
  WavelengthSet s;
  s.insert(10);
  s.insert(2);
  s.insert(33);
  std::vector<Wavelength> seen;
  s.for_each([&](Wavelength l) { seen.push_back(l); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 2);
  EXPECT_EQ(seen[1], 10);
  EXPECT_EQ(seen[2], 33);
  EXPECT_EQ(s.to_vector(), seen);
}

TEST(WavelengthSet, BoundsChecked) {
  WavelengthSet s;
  EXPECT_THROW(s.insert(64), std::logic_error);
  EXPECT_THROW(s.insert(-1), std::logic_error);
}

TEST(WavelengthSet, SingleAndEquality) {
  EXPECT_EQ(WavelengthSet::single(5), WavelengthSet::from_bits(1ull << 5));
  EXPECT_FALSE(WavelengthSet::single(5) == WavelengthSet::single(6));
}

TEST(ConversionTable, IdentityAlwaysAllowedAndFree) {
  ConversionTable t(4);
  for (Wavelength l = 0; l < 4; ++l) {
    EXPECT_TRUE(t.allowed(l, l));
    EXPECT_DOUBLE_EQ(t.cost(l, l), 0.0);
  }
  EXPECT_FALSE(t.allowed(0, 1));
}

TEST(ConversionTable, FullAllowsEverything) {
  const ConversionTable t = ConversionTable::full(3, 0.5);
  EXPECT_TRUE(t.is_full());
  EXPECT_DOUBLE_EQ(t.cost(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(t.cost(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.max_cost(), 0.5);
}

TEST(ConversionTable, NoneIsIdentityOnly) {
  const ConversionTable t = ConversionTable::none(3);
  EXPECT_FALSE(t.is_full());
  EXPECT_DOUBLE_EQ(t.max_cost(), 0.0);
}

TEST(ConversionTable, LimitedRange) {
  const ConversionTable t = ConversionTable::limited_range(8, 2, 0.25);
  EXPECT_TRUE(t.allowed(3, 5));
  EXPECT_FALSE(t.allowed(3, 6));
  EXPECT_DOUBLE_EQ(t.cost(3, 5), 0.5);
  EXPECT_DOUBLE_EQ(t.cost(3, 4), 0.25);
}

TEST(ConversionTable, SetAndForbid) {
  ConversionTable t(3);
  t.set(0, 1, 2.0);
  EXPECT_TRUE(t.allowed(0, 1));
  EXPECT_DOUBLE_EQ(t.cost(0, 1), 2.0);
  EXPECT_FALSE(t.allowed(1, 0));  // asymmetric
  t.forbid(0, 1);
  EXPECT_FALSE(t.allowed(0, 1));
}

TEST(ConversionTable, CostOnDisallowedThrows) {
  const ConversionTable t = ConversionTable::none(2);
  EXPECT_THROW(t.cost(0, 1), std::logic_error);
}

TEST(ConversionTable, IdentityIsProtected) {
  ConversionTable t(2);
  EXPECT_THROW(t.set(0, 0, 1.0), std::logic_error);
  EXPECT_THROW(t.forbid(1, 1), std::logic_error);
}

TEST(ConversionTable, ReachableComposesSetsAndTable) {
  ConversionTable t(4);
  t.set(0, 2, 1.0);
  t.set(1, 3, 1.0);
  WavelengthSet from;
  from.insert(0);
  const WavelengthSet to = WavelengthSet::all(4);
  const WavelengthSet r = t.reachable(from, to);
  EXPECT_TRUE(r.contains(0));   // identity
  EXPECT_TRUE(r.contains(2));   // 0 -> 2
  EXPECT_FALSE(r.contains(1));
  EXPECT_FALSE(r.contains(3));
}

}  // namespace
}  // namespace wdm::net
