#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

/// 4-node residual network with full conversion — the Fig. 1 regime.
net::WdmNetwork make_square(double conv_cost = 0.5) {
  net::WdmNetwork n(4, 2);
  for (net::NodeId v = 0; v < 4; ++v) {
    n.set_conversion(v, net::ConversionTable::full(2, conv_cost));
  }
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 3, net::WavelengthSet::all(2), 1.0);
  n.add_link(0, 2, net::WavelengthSet::all(2), 1.0);
  n.add_link(2, 3, net::WavelengthSet::all(2), 1.0);
  return n;
}

TEST(AuxGraph, EdgeNodeInventory) {
  const net::WdmNetwork n = make_square();
  const AuxGraph aux = build_aux_graph(n, 0, 3);
  // Two edge-nodes per usable link + s' + t''.
  EXPECT_EQ(aux.num_edge_nodes, 2 * 4);
  EXPECT_EQ(aux.g.num_nodes(), 2 * 4 + 2);
  EXPECT_EQ(aux.num_link_arcs, 4);
  // Transit arcs: node 1 (in {0-1}, out {1-3}) -> 1; node 2 -> 1. Nodes 0, 3
  // have no in/out combos with availability.
  EXPECT_EQ(aux.num_transit_arcs, 2);
  // Hub arcs: 2 out of s=0, 2 into t=3.
  EXPECT_EQ(aux.g.num_edges(), 4 + 2 + 4);
}

TEST(AuxGraph, LinkArcWeightIsMeanAvailableCost) {
  net::WdmNetwork n(2, 2);
  const std::vector<double> costs{2.0, 6.0};
  n.add_link(0, 1, net::WavelengthSet::all(2), costs);
  const AuxGraph aux = build_aux_graph(n, 0, 1);
  // Exactly one link arc; weight = mean(2, 6) = 4.
  double link_weight = -1.0;
  for (graph::EdgeId a = 0; a < aux.g.num_edges(); ++a) {
    if (aux.phys_edge_of_arc[static_cast<std::size_t>(a)] != graph::kInvalidEdge) {
      link_weight = aux.w[static_cast<std::size_t>(a)];
    }
  }
  EXPECT_DOUBLE_EQ(link_weight, 4.0);
}

TEST(AuxGraph, LinkArcWeightTracksResidual) {
  net::WdmNetwork n(2, 2);
  const std::vector<double> costs{2.0, 6.0};
  n.add_link(0, 1, net::WavelengthSet::all(2), costs);
  n.reserve(0, 0);  // only λ1 (cost 6) remains
  const AuxGraph aux = build_aux_graph(n, 0, 1);
  double link_weight = -1.0;
  for (graph::EdgeId a = 0; a < aux.g.num_edges(); ++a) {
    if (aux.phys_edge_of_arc[static_cast<std::size_t>(a)] != graph::kInvalidEdge) {
      link_weight = aux.w[static_cast<std::size_t>(a)];
    }
  }
  EXPECT_DOUBLE_EQ(link_weight, 6.0);
}

TEST(AuxGraph, TransitWeightIsMeanConversionCost) {
  // Node 1 with asymmetric conversion costs; Λ_avail = {0,1} on both links.
  net::WdmNetwork n(3, 2);
  net::ConversionTable tbl(2);
  tbl.set(0, 1, 1.0);
  tbl.set(1, 0, 3.0);
  n.set_conversion(1, tbl);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  const AuxGraph aux = build_aux_graph(n, 0, 2);
  // Allowed pairs at node 1: (0,0)=0, (1,1)=0, (0,1)=1, (1,0)=3 -> mean 1.
  double transit = -1.0;
  int transits = 0;
  for (graph::EdgeId a = 0; a < aux.g.num_edges(); ++a) {
    const auto ta = aux.g.tail(a);
    const auto ha = aux.g.head(a);
    if (aux.phys_edge_of_arc[static_cast<std::size_t>(a)] == graph::kInvalidEdge &&
        ta != aux.s_prime && ha != aux.t_second) {
      transit = aux.w[static_cast<std::size_t>(a)];
      ++transits;
    }
  }
  EXPECT_EQ(transits, 1);
  EXPECT_DOUBLE_EQ(transit, 1.0);
}

TEST(AuxGraph, NoTransitArcWhenNoConversionPossible) {
  // Disjoint wavelength sets and no conversion at the joint.
  net::WdmNetwork n(3, 2);
  net::WavelengthSet only0, only1;
  only0.insert(0);
  only1.insert(1);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 2, only1, 1.0);
  const AuxGraph aux = build_aux_graph(n, 0, 2);
  EXPECT_EQ(aux.num_transit_arcs, 0);
  // And Suurballe finds nothing.
  EXPECT_FALSE(
      graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second).found);
}

TEST(AuxGraph, ExhaustedLinkDropsOut) {
  net::WdmNetwork n = make_square();
  n.reserve(0, 0);
  n.reserve(0, 1);  // link 0 fully used
  const AuxGraph aux = build_aux_graph(n, 0, 3);
  EXPECT_EQ(aux.num_edge_nodes, 2 * 3);
  EXPECT_EQ(aux.num_link_arcs, 3);
}

TEST(AuxGraph, ThetaFilterDropsLoadedLinks) {
  net::WdmNetwork n = make_square();
  n.reserve(0, 0);  // load 1/2 on link 0
  AuxGraphOptions opt;
  opt.weighting = AuxWeighting::kLoadExponential;
  opt.theta = 0.5;  // strict <: load 0.5 is excluded
  const AuxGraph aux = build_aux_graph(n, 0, 3, opt);
  EXPECT_EQ(aux.num_link_arcs, 3);
  opt.theta = 0.51;
  const AuxGraph aux2 = build_aux_graph(n, 0, 3, opt);
  EXPECT_EQ(aux2.num_link_arcs, 4);
}

TEST(AuxGraph, LoadExponentialWeights) {
  net::WdmNetwork n = make_square();
  n.reserve(0, 0);  // U=1, N=2 on link 0
  AuxGraphOptions opt;
  opt.weighting = AuxWeighting::kLoadExponential;
  opt.theta = 1.0;
  opt.load_base = 2.0;
  const AuxGraph aux = build_aux_graph(n, 0, 3, opt);
  // Link 0 weight: 2^(2/2) - 2^(1/2); others: 2^(1/2) - 2^0.
  const double loaded = 2.0 - std::sqrt(2.0);
  const double idle = std::sqrt(2.0) - 1.0;
  int found_loaded = 0, found_idle = 0;
  for (graph::EdgeId a = 0; a < aux.g.num_edges(); ++a) {
    const graph::EdgeId phys = aux.phys_edge_of_arc[static_cast<std::size_t>(a)];
    if (phys == graph::kInvalidEdge) {
      EXPECT_DOUBLE_EQ(aux.w[static_cast<std::size_t>(a)], 0.0);
    } else if (phys == 0) {
      EXPECT_NEAR(aux.w[static_cast<std::size_t>(a)], loaded, 1e-12);
      ++found_loaded;
    } else {
      EXPECT_NEAR(aux.w[static_cast<std::size_t>(a)], idle, 1e-12);
      ++found_idle;
    }
  }
  EXPECT_EQ(found_loaded, 1);
  EXPECT_EQ(found_idle, 3);
}

TEST(AuxGraph, CostLoadFilteredWeightsDivideByCapacity) {
  net::WdmNetwork n(2, 2);
  const std::vector<double> costs{2.0, 6.0};
  n.add_link(0, 1, net::WavelengthSet::all(2), costs);
  n.reserve(0, 0);
  AuxGraphOptions opt;
  opt.weighting = AuxWeighting::kCostLoadFiltered;
  opt.theta = 1.0;
  const AuxGraph aux = build_aux_graph(n, 0, 1, opt);
  // Paper's G_rc formula: Σ_{λ∈avail} w / N = 6 / 2 = 3 (not 6/1).
  double link_weight = -1.0;
  for (graph::EdgeId a = 0; a < aux.g.num_edges(); ++a) {
    if (aux.phys_edge_of_arc[static_cast<std::size_t>(a)] != graph::kInvalidEdge) {
      link_weight = aux.w[static_cast<std::size_t>(a)];
    }
  }
  EXPECT_DOUBLE_EQ(link_weight, 3.0);
}

TEST(AuxGraph, ProjectRecoversPhysicalPath) {
  const net::WdmNetwork n = make_square();
  const AuxGraph aux = build_aux_graph(n, 0, 3);
  const graph::DisjointPair pair =
      graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second);
  ASSERT_TRUE(pair.found);
  const auto links1 = aux.project(pair.first);
  const auto links2 = aux.project(pair.second);
  EXPECT_EQ(links1.size(), 2u);
  EXPECT_EQ(links2.size(), 2u);
  // Projections are disjoint link sets covering all four links.
  std::set<graph::EdgeId> all(links1.begin(), links1.end());
  all.insert(links2.begin(), links2.end());
  EXPECT_EQ(all.size(), 4u);
  const auto mask = aux.induced_link_mask(pair.first, n.num_links());
  EXPECT_EQ(std::count(mask.begin(), mask.end(), 1), 2);
}

TEST(AuxGraph, HubArcsOnlyTouchEndpointLinks) {
  const net::WdmNetwork n = make_square();
  const AuxGraph aux = build_aux_graph(n, 0, 3);
  for (graph::EdgeId a : aux.g.out_edges(aux.s_prime)) {
    const graph::NodeId en = aux.g.head(a);
    const graph::EdgeId phys =
        aux.phys_edge_of_node[static_cast<std::size_t>(en)];
    EXPECT_EQ(n.graph().tail(phys), 0);
    EXPECT_FALSE(aux.is_in_node[static_cast<std::size_t>(en)]);
  }
  for (graph::EdgeId a : aux.g.in_edges(aux.t_second)) {
    const graph::NodeId en = aux.g.tail(a);
    const graph::EdgeId phys =
        aux.phys_edge_of_node[static_cast<std::size_t>(en)];
    EXPECT_EQ(n.graph().head(phys), 3);
    EXPECT_TRUE(aux.is_in_node[static_cast<std::size_t>(en)]);
  }
}

TEST(AuxGraph, SizeMatchesTheoremBound) {
  // Theorem 1: G' has 2m edge-nodes and O(m + nd) arcs.
  net::WdmNetwork n = test::random_network(12, 16, 4, 99);
  const AuxGraph aux = build_aux_graph(n, 0, 11);
  const int m = n.num_links();
  EXPECT_EQ(aux.num_edge_nodes, 2 * m);
  EXPECT_EQ(aux.num_link_arcs, m);
  int transit_bound = 0;
  for (graph::NodeId v = 0; v < n.num_nodes(); ++v) {
    transit_bound += n.graph().in_degree(v) * n.graph().out_degree(v);
  }
  EXPECT_LE(aux.num_transit_arcs, transit_bound);
}

}  // namespace
}  // namespace wdm::rwa
