#include <gtest/gtest.h>

#include "rwa/shared_backup.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

TEST(SharedBackup, ProvisionAndReleaseBalance) {
  net::WdmNetwork n = topo::nsfnet_network(8, 0.5);
  SharedBackupPool pool(&n);
  const auto p = pool.provision(0, 13);
  ASSERT_TRUE(p.found);
  EXPECT_TRUE(p.primary.fits_residual(n) == false);  // it is reserved now
  EXPECT_TRUE(net::edge_disjoint(p.primary, p.backup));
  EXPECT_GT(n.total_usage(), 0);
  EXPECT_EQ(pool.num_connections(), 1);
  pool.release(p.id);
  EXPECT_EQ(n.total_usage(), 0);
  EXPECT_EQ(pool.num_connections(), 0);
  EXPECT_EQ(pool.backup_channels(), 0);
}

TEST(SharedBackup, DisjointPrimariesShareChannels) {
  // Single-wavelength corridors force the geometry: connection 1 takes the
  // cheap corridor A as primary and the direct fiber D as backup; D's only
  // channel is then a backup channel, so connection 2's primary must take
  // corridor B — and its backup can *share* D because primaries A and B are
  // edge-disjoint.
  net::WdmNetwork n(4, 1);
  const auto one = net::WavelengthSet::all(1);
  n.add_link(0, 1, one, 1.0);  // corridor A
  n.add_link(1, 3, one, 1.0);
  n.add_link(0, 2, one, 3.0);  // corridor B (total 6)
  n.add_link(2, 3, one, 3.0);
  n.add_link(0, 3, one, 4.0);  // direct fiber D (cheapest backup)
  SharedBackupPool pool(&n);

  const auto p1 = pool.provision(0, 3);
  ASSERT_TRUE(p1.found);
  EXPECT_EQ(p1.primary.length(), 2u);  // corridor A
  EXPECT_EQ(p1.backup.length(), 1u);   // fiber D
  EXPECT_EQ(p1.dedicated_channels, 1);

  const auto p2 = pool.provision(0, 3);
  ASSERT_TRUE(p2.found);
  EXPECT_TRUE(net::edge_disjoint(p1.primary, p2.primary));
  EXPECT_EQ(p2.backup.length(), 1u);   // fiber D again — shared
  EXPECT_EQ(p2.shared_channels, 1);
  EXPECT_EQ(p2.dedicated_channels, 0);
  EXPECT_TRUE(pool.sharers_pairwise_disjoint());
  // One physical channel backs both connections.
  EXPECT_EQ(pool.backup_channels(), 1);
  EXPECT_EQ(pool.dedicated_equivalent_channels(), 2);
}

TEST(SharedBackup, OverlappingPrimariesMayNotShare) {
  // Both connections use the same primary corridor; their backups must NOT
  // share a channel.
  net::WdmNetwork n(2, 4);
  const auto all = net::WavelengthSet::all(4);
  n.add_link(0, 1, all, 1.0);  // primary fiber (shared corridor)
  n.add_link(0, 1, all, 5.0);  // backup fiber
  // Same-fiber primaries are impossible here (wavelengths differ but fibers
  // are what disjointness is about): each provision takes the cheap fiber.
  SharedBackupPool pool(&n);
  const auto p1 = pool.provision(0, 1);
  ASSERT_TRUE(p1.found);
  const auto p2 = pool.provision(0, 1);
  ASSERT_TRUE(p2.found);
  // Primaries share fiber 0 -> backups may not share channels.
  EXPECT_EQ(p2.shared_channels, 0);
  EXPECT_TRUE(pool.sharers_pairwise_disjoint());
}

TEST(SharedBackup, FailureActivatesWithoutContention) {
  net::WdmNetwork n = topo::nsfnet_network(8, 0.5);
  SharedBackupPool pool(&n);
  support::Rng rng(9);
  std::vector<long> ids;
  for (int i = 0; i < 25; ++i) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
    auto t = s;
    while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
    const auto p = pool.provision(s, t);
    if (p.found) ids.push_back(p.id);
  }
  ASSERT_GT(ids.size(), 10u);
  EXPECT_TRUE(pool.sharers_pairwise_disjoint());

  // Cut a link some primary uses; activation must not throw (contention-free
  // by the ledger invariant).
  const auto affected = pool.fail_link(0);
  EXPECT_TRUE(pool.sharers_pairwise_disjoint());
  // Affected connections keep service (their backups became primaries).
  EXPECT_EQ(pool.num_connections(), static_cast<int>(ids.size()));
  (void)affected;
}

TEST(SharedBackup, SavingsOnRealTopology) {
  net::WdmNetwork n = topo::nsfnet_network(16, 0.5);
  SharedBackupPool pool(&n);
  support::Rng rng(4);
  int provisioned = 0;
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
    auto t = s;
    while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
    provisioned += pool.provision(s, t).found;
  }
  ASSERT_GT(provisioned, 20);
  // The whole point: shared channels < dedicated equivalent.
  EXPECT_LT(pool.backup_channels(), pool.dedicated_equivalent_channels());
  EXPECT_TRUE(pool.sharers_pairwise_disjoint());
}

TEST(SharedBackup, ReleaseUnknownThrows) {
  net::WdmNetwork n = topo::nsfnet_network(4, 0.5);
  SharedBackupPool pool(&n);
  EXPECT_THROW(pool.release(42), std::logic_error);
}

TEST(SharedBackup, BlocksWhenNoDisjointBackupExists) {
  net::WdmNetwork n(3, 2);
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  SharedBackupPool pool(&n);
  EXPECT_FALSE(pool.provision(0, 2).found);
  EXPECT_EQ(n.total_usage(), 0);  // nothing leaked on failure
}

}  // namespace
}  // namespace wdm::rwa
