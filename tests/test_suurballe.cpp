#include <gtest/gtest.h>

#include "graph/maxflow.hpp"
#include "graph/mincostflow.hpp"
#include "graph/suurballe.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace wdm::graph {
namespace {

/// The classic trap graph: the shortest path 0-1-2-3 uses the middle edge
/// both disjoint routes need; naive two-step fails, Suurballe recovers.
struct Trap {
  Digraph g{4};
  std::vector<double> w;
  Trap() {
    g.add_edge(0, 1);  // 1
    g.add_edge(1, 2);  // 0.1
    g.add_edge(2, 3);  // 1
    g.add_edge(1, 3);  // 3
    g.add_edge(0, 2);  // 3
    w = {1.0, 0.1, 1.0, 3.0, 3.0};
  }
};

TEST(Suurballe, SolvesTrapGraph) {
  Trap trap;
  const DisjointPair pair = suurballe(trap.g, trap.w, 0, 3);
  ASSERT_TRUE(pair.found);
  EXPECT_TRUE(edge_disjoint(pair.first, pair.second));
  EXPECT_DOUBLE_EQ(pair.total_cost(), 8.0);
}

TEST(Suurballe, NaiveTwoStepFailsTrapGraph) {
  Trap trap;
  const DisjointPair naive = naive_two_step(trap.g, trap.w, 0, 3);
  EXPECT_FALSE(naive.found);  // removing 0-1-2-3 disconnects the rest
}

TEST(Suurballe, SimpleDiamond) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  std::vector<double> w{1, 1, 2, 2};
  const DisjointPair pair = suurballe(g, w, 0, 3);
  ASSERT_TRUE(pair.found);
  EXPECT_DOUBLE_EQ(pair.first.cost, 2.0);   // cheaper path first
  EXPECT_DOUBLE_EQ(pair.second.cost, 4.0);
}

TEST(Suurballe, NotFoundWhenSinglePathOnly) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<double> w{1, 1};
  EXPECT_FALSE(suurballe(g, w, 0, 2).found);
}

TEST(Suurballe, NotFoundWhenUnreachable) {
  Digraph g(3);
  g.add_edge(0, 1);
  std::vector<double> w{1};
  EXPECT_FALSE(suurballe(g, w, 0, 2).found);
}

TEST(Suurballe, RequiresDistinctEndpoints) {
  Digraph g(2);
  g.add_edge(0, 1);
  std::vector<double> w{1};
  EXPECT_THROW(suurballe(g, w, 0, 0), std::logic_error);
}

TEST(Suurballe, ParallelEdgesFormAPair) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  std::vector<double> w{1, 4};
  const DisjointPair pair = suurballe(g, w, 0, 1);
  ASSERT_TRUE(pair.found);
  EXPECT_DOUBLE_EQ(pair.total_cost(), 5.0);
}

TEST(Suurballe, RespectsEdgeMask) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  std::vector<double> w{1, 4, 9};
  std::vector<std::uint8_t> mask{0, 1, 1};
  const DisjointPair pair = suurballe(g, w, 0, 1, mask);
  ASSERT_TRUE(pair.found);
  EXPECT_DOUBLE_EQ(pair.total_cost(), 13.0);
}

TEST(Suurballe, ZeroWeightGraph) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  std::vector<double> w{0, 0, 0, 0};
  const DisjointPair pair = suurballe(g, w, 0, 3);
  ASSERT_TRUE(pair.found);
  EXPECT_DOUBLE_EQ(pair.total_cost(), 0.0);
}

class SuurballePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SuurballePropertyTest, MatchesMinCostFlowOracle) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = 4 + static_cast<int>(rng.uniform_int(0, 26));
  const int m = static_cast<int>(rng.uniform_int(n, 5 * n));
  const auto [g, w] = test::random_digraph(n, m, rng);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(n - 1);

  const DisjointPair pair = suurballe(g, w, s, t);
  const auto oracle = min_cost_disjoint_paths(g, w, s, t, 2);

  ASSERT_EQ(pair.found, oracle.has_value());
  if (pair.found) {
    EXPECT_TRUE(edge_disjoint(pair.first, pair.second));
    EXPECT_TRUE(pair.first.contiguous_in(g));
    EXPECT_TRUE(pair.second.contiguous_in(g));
    const double oracle_cost = (*oracle)[0].cost + (*oracle)[1].cost;
    EXPECT_NEAR(pair.total_cost(), oracle_cost, 1e-6);
  }
}

TEST_P(SuurballePropertyTest, FoundIffEdgeConnectivityAtLeastTwo) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  const int n = 4 + static_cast<int>(rng.uniform_int(0, 16));
  const int m = static_cast<int>(rng.uniform_int(n - 1, 3 * n));
  const auto [g, w] = test::random_digraph(n, m, rng);
  const DisjointPair pair = suurballe(g, w, 0, static_cast<NodeId>(n - 1));
  const int connectivity =
      edge_disjoint_path_count(g, 0, static_cast<NodeId>(n - 1));
  EXPECT_EQ(pair.found, connectivity >= 2);
}

TEST_P(SuurballePropertyTest, NaiveNeverBeatsSuurballe) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 1);
  const int n = 4 + static_cast<int>(rng.uniform_int(0, 16));
  const int m = static_cast<int>(rng.uniform_int(n, 4 * n));
  const auto [g, w] = test::random_digraph(n, m, rng);
  const NodeId t = static_cast<NodeId>(n - 1);
  const DisjointPair sb = suurballe(g, w, 0, t);
  const DisjointPair nv = naive_two_step(g, w, 0, t);
  if (nv.found) {
    ASSERT_TRUE(sb.found);  // naive success implies a pair exists
    EXPECT_LE(sb.total_cost(), nv.total_cost() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SuurballePropertyTest,
                         ::testing::Range(0, 30));

TEST(SuurballeNodeDisjoint, RejectsSharedIntermediateNode) {
  // Two edge-disjoint paths exist but both must pass through node 1.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(1, 3);
  std::vector<double> w{1, 1, 1, 1};
  EXPECT_TRUE(suurballe(g, w, 0, 3).found);
  EXPECT_FALSE(suurballe_node_disjoint(g, w, 0, 3).found);
}

TEST(SuurballeNodeDisjoint, FindsNodeDisjointPair) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  std::vector<double> w{1, 1, 2, 2};
  const DisjointPair pair = suurballe_node_disjoint(g, w, 0, 3);
  ASSERT_TRUE(pair.found);
  EXPECT_TRUE(internally_node_disjoint(pair.first, pair.second, g));
  EXPECT_DOUBLE_EQ(pair.total_cost(), 6.0);
}

TEST(SuurballeNodeDisjoint, ThreadLocalArenaSurvivesSizeAlternation) {
  // suurballe_node_disjoint rebuilds its split graph in a thread-local
  // arena (clear_keep_capacity). Alternating between graphs of different
  // shapes on the same thread must leave no stale state behind: every call
  // has to match a fresh computation.
  Digraph small(4);
  small.add_edge(0, 1);
  small.add_edge(1, 3);
  small.add_edge(0, 2);
  small.add_edge(2, 3);
  const std::vector<double> ws{1, 1, 2, 2};

  Digraph big(6);
  big.add_edge(0, 1);
  big.add_edge(1, 5);
  big.add_edge(0, 2);
  big.add_edge(2, 5);
  big.add_edge(0, 3);
  big.add_edge(3, 4);
  big.add_edge(4, 5);
  const std::vector<double> wb{1, 2, 3, 4, 5, 6, 7};

  Digraph sparse(4);  // only one path — must stay infeasible every round
  sparse.add_edge(0, 1);
  sparse.add_edge(1, 3);
  const std::vector<double> wsp{1, 1};

  for (int round = 0; round < 5; ++round) {
    const DisjointPair a = suurballe_node_disjoint(small, ws, 0, 3);
    ASSERT_TRUE(a.found);
    EXPECT_DOUBLE_EQ(a.total_cost(), 6.0);
    EXPECT_TRUE(internally_node_disjoint(a.first, a.second, small));
    const DisjointPair b = suurballe_node_disjoint(big, wb, 0, 5);
    ASSERT_TRUE(b.found);
    EXPECT_DOUBLE_EQ(b.total_cost(), 10.0);  // 1+2 and 3+4
    EXPECT_FALSE(suurballe_node_disjoint(sparse, wsp, 0, 3).found);
  }
}

TEST(SuurballeNodeDisjoint, CostsMappedBackToOriginalWeights) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 4);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  std::vector<double> w{1, 2, 3, 4, 5, 6};
  const DisjointPair pair = suurballe_node_disjoint(g, w, 0, 4);
  ASSERT_TRUE(pair.found);
  EXPECT_DOUBLE_EQ(pair.total_cost(), 10.0);  // 1+2 and 3+4
}

}  // namespace
}  // namespace wdm::graph
