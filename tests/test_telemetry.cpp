#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rwa/approx_router.hpp"
#include "sim/simulator.hpp"
#include "support/telemetry.hpp"
#include "topology/network_builder.hpp"

namespace wdm::support::telemetry {
namespace {

/// Every test starts from a clean slate and leaves telemetry disabled.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(TelemetryTest, CounterAddsAndMacroCaches) {
  Counter& c = counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instance.
  EXPECT_EQ(&counter("test.counter"), &c);
  WDM_TEL_COUNT("test.counter");
  WDM_TEL_COUNT_N("test.counter", 7);
  // With telemetry compiled out the macros are no-ops by design.
  EXPECT_EQ(c.value(), compiled_in() ? 50u : 42u);
}

TEST_F(TelemetryTest, MacrosAreInertWhenDisabled) {
  set_enabled(false);
  WDM_TEL_COUNT("test.disabled");
  WDM_TEL_COUNT_N("test.disabled", 100);
  if (compiled_in()) {
    // The counter may not even be registered; if it is, it must be zero.
    const auto values = counter_values();
    const auto it = values.find("test.disabled");
    if (it != values.end()) {
      EXPECT_EQ(it->second, 0u);
    }
  }
}

TEST_F(TelemetryTest, HistogramBucketBoundaries) {
  LatencyHistogram h;
  h.record_ns(0);  // bucket 0: {0}
  h.record_ns(1);  // bucket 1: [1, 2)
  h.record_ns(2);  // bucket 2: [2, 4)
  h.record_ns(3);  // bucket 2
  h.record_ns(4);  // bucket 3: [4, 8)
  h.record_ns(1023);  // bucket 10: [512, 1024)
  h.record_ns(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum_ns(), 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 1024u);
  // Bucket bounds are contiguous: hi(b) == lo(b + 1).
  for (int b = 0; b + 1 < LatencyHistogram::kBuckets - 1; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_hi(b), LatencyHistogram::bucket_lo(b + 1))
        << "bucket " << b;
  }
  // The last bucket absorbs everything, including saturating values.
  h.record_ns(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
}

TEST_F(TelemetryTest, HistogramEmptyIsWellDefined) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ns(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
}

TEST_F(TelemetryTest, HistogramMergeIsElementwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record_ns(3);
  a.record_ns(100);
  b.record_ns(5);
  b.record_ns(2000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum_ns(), 3u + 100 + 5 + 2000);
  EXPECT_EQ(a.min_ns(), 3u);
  EXPECT_EQ(a.max_ns(), 2000u);
}

TEST_F(TelemetryTest, HistogramIsThreadSafe) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&h] {
      for (int k = 0; k < kPerThread; ++k) {
        h.record_ns(static_cast<std::uint64_t>(k));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), static_cast<std::uint64_t>(kPerThread - 1));
}

TEST_F(TelemetryTest, ResetZeroesEverythingButKeepsHandles) {
  Counter& c = counter("test.reset");
  LatencyHistogram& h = histogram("test.reset_hist");
  c.add(5);
  h.record_ns(10);
  reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  // The handle survives the reset.
  c.add(1);
  EXPECT_EQ(&counter("test.reset"), &c);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(TelemetryTest, JsonOutputContainsRegisteredData) {
  counter("test.json_counter").add(3);
  histogram("test.json_hist").record_ns(1000);
  series("test.json_series").add(1.0, 0.5);
  WDM_TEL_EVENT("test.json_event", 1.5);
  std::ostringstream out;
  write_json(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"schema\": \"robustwdm-telemetry-v2\""),
            std::string::npos);
  EXPECT_NE(s.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(s.find("test.json_hist"), std::string::npos);
  EXPECT_NE(s.find("test.json_series"), std::string::npos);
  // v2 sections: run metadata and drop accounting are always present.
  EXPECT_NE(s.find("\"meta\""), std::string::npos);
  EXPECT_NE(s.find("\"dropped\""), std::string::npos);
  if (compiled_in()) {
    EXPECT_NE(s.find("test.json_event"), std::string::npos);
  }
}

TEST_F(TelemetryTest, SeriesCollectsPointsInOrder) {
  Series& s = series("test.series");
  s.add(0.5, 1.0);
  s.add(1.5, 2.0);
  s.add(2.5, 4.0);
  const auto pts = s.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[1], (std::pair<double, double>{1.5, 2.0}));
  EXPECT_EQ(s.dropped(), 0u);
  EXPECT_EQ(&series("test.series"), &s);
  const auto all = series_values();
  ASSERT_TRUE(all.count("test.series"));
  EXPECT_EQ(all.at("test.series").size(), 3u);
}

TEST_F(TelemetryTest, MetaCarriesBuildInfoAndRunKeys) {
  const auto meta = meta_values();
  // Build identity is auto-populated (values may be "unknown" outside a git
  // checkout, but the keys must exist so teldiff can gate on them).
  for (const char* key : {"git", "compiler", "build_type", "cxx_flags",
                          "telemetry_compiled", "hardware_threads"}) {
    EXPECT_TRUE(meta.count(key)) << "missing meta key " << key;
  }
  EXPECT_EQ(meta.at("telemetry_compiled"), compiled_in() ? "1" : "0");
  set_meta("seed", "42");
  EXPECT_EQ(meta_values().at("seed"), "42");
  std::ostringstream out;
  write_json(out);
  EXPECT_NE(out.str().find("\"seed\": \"42\""), std::string::npos);
}

TEST_F(TelemetryTest, SpanOverflowDropsOldestAndCounts) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const std::uint32_t name = intern("test.overflow_span");
  constexpr std::size_t kOver = 16;
  for (std::size_t i = 0; i < kMaxSpansPerThread + kOver; ++i) {
    SpanRecord s;
    s.name = name;
    s.span_id = detail::new_span_id();
    s.start_ns = i;
    s.dur_ns = 1;
    record_span(s);
  }
  // The ring retains the newest kMaxSpans records; the overflow is counted
  // both per-thread (dump header) and in the tel.dropped_spans counter.
  EXPECT_EQ(span_snapshot().size(), kMaxSpansPerThread);
  EXPECT_EQ(counter_values().at("tel.dropped_spans"), kOver);
  std::ostringstream out;
  write_json(out);
  EXPECT_NE(out.str().find("\"spans\": 16"), std::string::npos);
}

TEST_F(TelemetryTest, FlightRecorderRetainsOnlyRequestedTraces) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const std::uint32_t name = intern("test.retained_span");
  // Retention must be armed before roots are recorded: trace roots are noted
  // at record time, not retroactively.
  set_trace_retention(/*last_k=*/2, /*worst_k=*/0);
  // Ten single-span traces with increasing durations, plus one untraced span.
  for (std::uint64_t t = 1; t <= 10; ++t) {
    SpanRecord s;
    s.name = name;
    s.trace = t;
    s.span_id = detail::new_span_id();
    s.start_ns = t * 100;
    s.dur_ns = t * 10;
    record_span(s);
  }
  record_span(name, 5, 7);  // untraced: always kept
  const auto spans = span_snapshot();
  std::size_t traced = 0;
  for (const auto& s : spans) {
    if (s.span.trace != 0) {
      ++traced;
      EXPECT_GE(s.span.trace, 9u) << "older trace leaked past retention";
    }
  }
  EXPECT_EQ(traced, 2u);
  EXPECT_EQ(spans.size(), 3u);
}

// ---------------------------------------------------------------------------
// Determinism contract (DESIGN.md §8): sim.* counters are a pure function of
// (topology, router, seed) — identical across runs and across engine thread
// counts. rwa.parallel_batch.* and all timing data are scheduling-dependent
// and carry no such guarantee.

sim::SimOptions batch_options(int threads) {
  sim::SimOptions opt;
  opt.traffic.arrival_rate = 12.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 30.0;
  opt.seed = 11;
  opt.batching.interval = 0.5;
  opt.batching.threads = threads;
  opt.series_interval = 2.0;
  return opt;
}

std::map<std::string, std::uint64_t> run_and_snapshot(int threads) {
  reset();
  rwa::ApproxDisjointRouter router;
  sim::Simulator sim(topo::nsfnet_network(8, 0.5), router,
                     batch_options(threads));
  (void)sim.run();
  return counter_values();
}

std::map<std::string, std::uint64_t> sim_subset(
    const std::map<std::string, std::uint64_t>& all) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [k, v] : all) {
    if (k.rfind("sim.", 0) == 0) out.emplace(k, v);
  }
  return out;
}

TEST_F(TelemetryTest, CountersDeterministicAcrossRuns) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const auto a = run_and_snapshot(/*threads=*/1);
  const auto b = run_and_snapshot(/*threads=*/1);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.at("sim.offered"), 0u);
}

TEST_F(TelemetryTest, SimCountersDeterministicAcrossThreadCounts) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const auto serial = run_and_snapshot(/*threads=*/1);
  const auto parallel = run_and_snapshot(/*threads=*/4);
  EXPECT_EQ(sim_subset(serial), sim_subset(parallel));
}

std::map<std::string, std::vector<std::pair<double, double>>> sim_series(
    int threads) {
  reset();
  rwa::ApproxDisjointRouter router;
  sim::Simulator sim(topo::nsfnet_network(8, 0.5), router,
                     batch_options(threads));
  (void)sim.run();
  std::map<std::string, std::vector<std::pair<double, double>>> out;
  for (auto& [k, v] : series_values()) {
    // sim.series.* samples state at simulation-time boundaries, so it shares
    // the determinism contract of sim.* counters. rwa.series.* (cache hit
    // rate, commit latency) depends on scheduling and is excluded.
    if (k.rfind("sim.series.", 0) == 0) out.emplace(k, std::move(v));
  }
  return out;
}

TEST_F(TelemetryTest, SimSeriesInvariantAcrossThreadCounts) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const auto serial = sim_series(/*threads=*/1);
  const auto parallel = sim_series(/*threads=*/4);
  ASSERT_FALSE(serial.empty());
  ASSERT_TRUE(serial.count("sim.series.load_rho"));
  EXPECT_GT(serial.at("sim.series.load_rho").size(), 5u);
  EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// Request-lifecycle tracing: every offered request yields a causally linked
// span tree (sim.request -> router route span -> pipeline stage spans).

TEST_F(TelemetryTest, RequestSpanTreeIsCausallyLinked) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  rwa::ApproxDisjointRouter router;
  sim::SimOptions opt;
  opt.traffic.arrival_rate = 5.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 10.0;
  opt.seed = 7;
  sim::Simulator sim(topo::nsfnet_network(8, 0.5), router, opt);
  (void)sim.run();

  const std::uint32_t n_request = intern("sim.request");
  const std::uint32_t n_route = intern("rwa.approx.route");
  const std::uint32_t n_aux = intern("rwa.approx.aux_build");
  const std::uint32_t n_suurballe = intern("rwa.approx.suurballe");
  const std::uint32_t n_liang_shen = intern("rwa.approx.liang_shen");

  const auto spans = span_snapshot();
  std::map<TraceId, std::uint64_t> root_of;    // trace -> sim.request span id
  std::map<TraceId, std::uint64_t> route_of;   // trace -> route span id
  for (const auto& s : spans) {
    if (s.span.name == n_request) {
      EXPECT_EQ(s.span.parent_id, 0u) << "sim.request must be a trace root";
      EXPECT_NE(s.span.trace, 0u);
      root_of[s.span.trace] = s.span.span_id;
    } else if (s.span.name == n_route) {
      route_of[s.span.trace] = s.span.span_id;
    }
  }
  ASSERT_GT(root_of.size(), 10u) << "expected one trace per offered request";
  // Trace ids are the offered-request ordinals: 1..offered, no gaps.
  EXPECT_TRUE(root_of.count(1));
  EXPECT_TRUE(root_of.count(root_of.size()));
  for (const auto& s : spans) {
    if (s.span.name == n_route) {
      ASSERT_TRUE(root_of.count(s.span.trace));
      EXPECT_EQ(s.span.parent_id, root_of.at(s.span.trace))
          << "route span must attach under its request's root";
    } else if (s.span.name == n_aux || s.span.name == n_suurballe ||
               s.span.name == n_liang_shen) {
      ASSERT_TRUE(route_of.count(s.span.trace));
      EXPECT_EQ(s.span.parent_id, route_of.at(s.span.trace))
          << "stage span must attach under its request's route span";
    }
  }
}

}  // namespace
}  // namespace wdm::support::telemetry
