#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rwa/approx_router.hpp"
#include "sim/simulator.hpp"
#include "support/telemetry.hpp"
#include "topology/network_builder.hpp"

namespace wdm::support::telemetry {
namespace {

/// Every test starts from a clean slate and leaves telemetry disabled.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(TelemetryTest, CounterAddsAndMacroCaches) {
  Counter& c = counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instance.
  EXPECT_EQ(&counter("test.counter"), &c);
  WDM_TEL_COUNT("test.counter");
  WDM_TEL_COUNT_N("test.counter", 7);
  // With telemetry compiled out the macros are no-ops by design.
  EXPECT_EQ(c.value(), compiled_in() ? 50u : 42u);
}

TEST_F(TelemetryTest, MacrosAreInertWhenDisabled) {
  set_enabled(false);
  WDM_TEL_COUNT("test.disabled");
  WDM_TEL_COUNT_N("test.disabled", 100);
  if (compiled_in()) {
    // The counter may not even be registered; if it is, it must be zero.
    const auto values = counter_values();
    const auto it = values.find("test.disabled");
    if (it != values.end()) EXPECT_EQ(it->second, 0u);
  }
}

TEST_F(TelemetryTest, HistogramBucketBoundaries) {
  LatencyHistogram h;
  h.record_ns(0);  // bucket 0: {0}
  h.record_ns(1);  // bucket 1: [1, 2)
  h.record_ns(2);  // bucket 2: [2, 4)
  h.record_ns(3);  // bucket 2
  h.record_ns(4);  // bucket 3: [4, 8)
  h.record_ns(1023);  // bucket 10: [512, 1024)
  h.record_ns(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum_ns(), 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 1024u);
  // Bucket bounds are contiguous: hi(b) == lo(b + 1).
  for (int b = 0; b + 1 < LatencyHistogram::kBuckets - 1; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_hi(b), LatencyHistogram::bucket_lo(b + 1))
        << "bucket " << b;
  }
  // The last bucket absorbs everything, including saturating values.
  h.record_ns(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
}

TEST_F(TelemetryTest, HistogramEmptyIsWellDefined) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ns(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
}

TEST_F(TelemetryTest, HistogramMergeIsElementwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record_ns(3);
  a.record_ns(100);
  b.record_ns(5);
  b.record_ns(2000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum_ns(), 3u + 100 + 5 + 2000);
  EXPECT_EQ(a.min_ns(), 3u);
  EXPECT_EQ(a.max_ns(), 2000u);
}

TEST_F(TelemetryTest, HistogramIsThreadSafe) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&h] {
      for (int k = 0; k < kPerThread; ++k) {
        h.record_ns(static_cast<std::uint64_t>(k));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), static_cast<std::uint64_t>(kPerThread - 1));
}

TEST_F(TelemetryTest, ResetZeroesEverythingButKeepsHandles) {
  Counter& c = counter("test.reset");
  LatencyHistogram& h = histogram("test.reset_hist");
  c.add(5);
  h.record_ns(10);
  reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  // The handle survives the reset.
  c.add(1);
  EXPECT_EQ(&counter("test.reset"), &c);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(TelemetryTest, JsonOutputContainsRegisteredData) {
  counter("test.json_counter").add(3);
  histogram("test.json_hist").record_ns(1000);
  WDM_TEL_EVENT("test.json_event", 1.5);
  std::ostringstream out;
  write_json(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"schema\": \"robustwdm-telemetry-v1\""),
            std::string::npos);
  EXPECT_NE(s.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(s.find("test.json_hist"), std::string::npos);
  if (compiled_in()) {
    EXPECT_NE(s.find("test.json_event"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Determinism contract (DESIGN.md §8): sim.* counters are a pure function of
// (topology, router, seed) — identical across runs and across engine thread
// counts. rwa.parallel_batch.* and all timing data are scheduling-dependent
// and carry no such guarantee.

sim::SimOptions batch_options(int threads) {
  sim::SimOptions opt;
  opt.traffic.arrival_rate = 12.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = 30.0;
  opt.seed = 11;
  opt.batching.interval = 0.5;
  opt.batching.threads = threads;
  return opt;
}

std::map<std::string, std::uint64_t> run_and_snapshot(int threads) {
  reset();
  rwa::ApproxDisjointRouter router;
  sim::Simulator sim(topo::nsfnet_network(8, 0.5), router,
                     batch_options(threads));
  (void)sim.run();
  return counter_values();
}

std::map<std::string, std::uint64_t> sim_subset(
    const std::map<std::string, std::uint64_t>& all) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [k, v] : all) {
    if (k.rfind("sim.", 0) == 0) out.emplace(k, v);
  }
  return out;
}

TEST_F(TelemetryTest, CountersDeterministicAcrossRuns) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const auto a = run_and_snapshot(/*threads=*/1);
  const auto b = run_and_snapshot(/*threads=*/1);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.at("sim.offered"), 0u);
}

TEST_F(TelemetryTest, SimCountersDeterministicAcrossThreadCounts) {
  if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const auto serial = run_and_snapshot(/*threads=*/1);
  const auto parallel = run_and_snapshot(/*threads=*/4);
  EXPECT_EQ(sim_subset(serial), sim_subset(parallel));
}

}  // namespace
}  // namespace wdm::support::telemetry
