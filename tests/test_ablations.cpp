// Tests for the ablation knobs: ϑ search strategies, the G_rc weight
// normalization switch, the refinement toggle, and the simulator's backup
// reprovisioning.
#include <gtest/gtest.h>

#include "rwa/approx_router.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

net::WdmNetwork loaded_net(std::uint64_t seed, double occupancy = 0.5) {
  net::WdmNetwork n = topo::nsfnet_network(8, 0.5);
  support::Rng rng(seed);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(occupancy)) n.reserve(e, l);
    });
  }
  return n;
}

class ThetaSearchTest : public ::testing::TestWithParam<int> {};

TEST_P(ThetaSearchTest, AllStrategiesAgreeOnFeasibility) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  net::WdmNetwork n = loaded_net(seed * 31 + 7, 0.6);
  support::Rng rng(seed);
  const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
  auto t = s;
  while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));

  MinCogOptions doubling, linear, bisect;
  linear.search = ThetaSearch::kLinearScan;
  bisect.search = ThetaSearch::kBisection;
  const MinCogResult rd = find_two_paths_mincog(n, s, t, doubling);
  const MinCogResult rl = find_two_paths_mincog(n, s, t, linear);
  const MinCogResult rb = find_two_paths_mincog(n, s, t, bisect);
  EXPECT_EQ(rd.found, rl.found);
  EXPECT_EQ(rd.found, rb.found);
  if (rd.found) {
    // The linear scan is the exact grid optimum: no strategy beats it.
    EXPECT_GE(rd.theta, rl.theta - 1e-12);
    EXPECT_GE(rb.theta, rl.theta - 1e-9);
    // Bisection honors its tolerance relative to the exact optimum.
    EXPECT_LE(rb.theta, rl.theta + 2e-3);
    // Exact oracle agrees with the linear scan's accepted threshold side.
    double lstar = 0.0;
    ASSERT_TRUE(exact_min_threshold(n, s, t, &lstar));
    EXPECT_GT(rl.theta, lstar);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, ThetaSearchTest,
                         ::testing::Range(0, 15));

TEST(ThetaSearch, LinearScanUsesBoundedProbes) {
  net::WdmNetwork n = loaded_net(3, 0.6);
  MinCogOptions opt;
  opt.search = ThetaSearch::kLinearScan;
  const MinCogResult r = find_two_paths_mincog(n, 0, 13, opt);
  ASSERT_TRUE(r.found);
  // Probes bounded by distinct load values + 2 endpoints.
  EXPECT_LE(r.iterations, n.num_links() + 2);
}

TEST(GrcNormalization, VariantsBothDeliverFeasibleRoutes) {
  net::WdmNetwork n = loaded_net(11, 0.4);
  LoadCostRouter paper({}, false);
  LoadCostRouter mean_avail({}, true);
  const RouteResult a = paper.route(n, 0, 13);
  const RouteResult b = mean_avail.route(n, 0, 13);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_TRUE(a.route.feasible(n));
  EXPECT_TRUE(b.route.feasible(n));
  EXPECT_NE(paper.name(), mean_avail.name());
}

TEST(GrcNormalization, WeightsDifferOnPartiallyLoadedLink) {
  net::WdmNetwork n(2, 4);
  n.add_link(0, 1, net::WavelengthSet::all(4), 2.0);
  n.reserve(0, 0);
  n.reserve(0, 1);  // 2 of 4 used; Σw over avail = 4
  AuxGraphOptions paper, mean;
  paper.weighting = mean.weighting = AuxWeighting::kCostLoadFiltered;
  paper.theta = mean.theta = 1.0;
  mean.grc_mean_over_available = true;
  auto link_weight = [&](const AuxGraphOptions& o) {
    const AuxGraph aux = build_aux_graph(n, 0, 1, o);
    for (graph::EdgeId a = 0; a < aux.g.num_edges(); ++a) {
      if (aux.phys_edge_of_arc[static_cast<std::size_t>(a)] !=
          graph::kInvalidEdge) {
        return aux.w[static_cast<std::size_t>(a)];
      }
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(link_weight(paper), 1.0);  // 4 / N = 4/4
  EXPECT_DOUBLE_EQ(link_weight(mean), 2.0);   // 4 / |avail| = 4/2
}

TEST(RefinementToggle, UnrefinedNeverCheaper) {
  int compared = 0;
  for (int i = 0; i < 10; ++i) {
    net::WdmNetwork n = loaded_net(100 + i, 0.3);
    const RouteResult a = ApproxDisjointRouter(true).route(n, 0, 13);
    const RouteResult b = ApproxDisjointRouter(false).route(n, 0, 13);
    if (!a.found || !b.found) continue;
    ++compared;
    EXPECT_TRUE(b.route.feasible(n));
    EXPECT_LE(a.total_cost(n), b.total_cost(n) + 1e-9);
  }
  EXPECT_GT(compared, 5);
}

TEST(RefinementToggle, NamesDiffer) {
  EXPECT_NE(ApproxDisjointRouter(true).name(),
            ApproxDisjointRouter(false).name());
}

TEST(Reprovision, ActiveModeRestoresProtectionAfterFailure) {
  const topo::Topology t = topo::nsfnet();
  support::Rng rng(5);
  topo::NetworkOptions nopt;
  nopt.num_wavelengths = 8;
  net::WdmNetwork network = topo::build_network(t, nopt, rng);

  sim::SimOptions opt;
  opt.traffic.arrival_rate = 10.0;
  opt.traffic.mean_holding = 2.0;
  opt.duration = 150.0;
  opt.seed = 23;
  opt.restoration = sim::RestorationMode::kActive;
  opt.failures.duplex_failure_rate = 0.02;
  opt.failures.mean_repair = 3.0;
  opt.failures.reprovision_backup = true;
  opt.reverse_of = t.reverse_of;
  rwa::ApproxDisjointRouter router;
  sim::Simulator sim(std::move(network), router, opt);
  const sim::SimMetrics m = sim.run();
  EXPECT_GT(m.primary_failures, 0);
  EXPECT_GT(m.backups_reprovisioned, 0);
  EXPECT_EQ(m.recoveries_succeeded,
            m.switchover_recoveries + m.recompute_recoveries);
  EXPECT_EQ(m.final_reserved_wavelength_links, 0);
}

}  // namespace
}  // namespace wdm::rwa
