#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "rwa/baselines.hpp"
#include "rwa/wavelength_assignment.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "topology/network_builder.hpp"

namespace wdm::rwa {
namespace {

net::WdmNetwork chain3(int W = 4) {
  net::WdmNetwork n(3, W);
  n.set_conversion(1, net::ConversionTable::full(W, 0.1));
  n.add_link(0, 1, net::WavelengthSet::all(W), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(W), 1.0);
  return n;
}

TEST(WaPolicies, FirstFitPicksLowest) {
  net::WdmNetwork n = chain3();
  n.reserve(0, 0);
  const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kFirstFit);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 1);
}

TEST(WaPolicies, LastFitPicksHighest) {
  net::WdmNetwork n = chain3();
  const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kLastFit);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 3);
  EXPECT_EQ(p.hops[1].lambda, 3);  // continuity
}

TEST(WaPolicies, RandomNeedsRngAndStaysInAvailableSet) {
  net::WdmNetwork n = chain3();
  EXPECT_THROW(assign_wavelengths(n, {0}, WaPolicy::kRandom), std::logic_error);
  support::Rng rng(5);
  bool seen_nonzero = false;
  for (int i = 0; i < 50; ++i) {
    const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kRandom, &rng);
    ASSERT_TRUE(p.found);
    EXPECT_TRUE(p.fits_residual(n));
    if (p.hops[0].lambda != 0) seen_nonzero = true;
  }
  EXPECT_TRUE(seen_nonzero);  // actually randomizes
}

TEST(WaPolicies, MostUsedPacksOntoBusyWavelength) {
  net::WdmNetwork n = chain3(4);
  // Make λ2 the network-wide busiest via another link.
  const graph::EdgeId extra =
      n.add_link(2, 0, net::WavelengthSet::all(4), 1.0);
  n.reserve(extra, 2);
  const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kMostUsed);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 2);
}

TEST(WaPolicies, LeastUsedAvoidsBusyWavelength) {
  net::WdmNetwork n = chain3(2);
  const graph::EdgeId extra =
      n.add_link(2, 0, net::WavelengthSet::all(2), 1.0);
  n.reserve(extra, 0);
  const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kLeastUsed);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 1);
}

TEST(WaPolicies, SegmentExtendsAcrossSharedWavelengths) {
  // λ3 is taken downstream, so the maximal-run intersection over both links
  // is {0, 1, 2}; last-fit picks λ2 end-to-end — no conversion needed.
  net::WdmNetwork n = chain3(4);
  n.reserve(1, 3);
  const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kLastFit);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 2);
  EXPECT_EQ(p.hops[1].lambda, 2);
  EXPECT_EQ(p.conversions(n), 0);
}

TEST(WaPolicies, ConversionOnlyWhenRunBreaks) {
  // First link offers only λ3; downstream λ3 is gone: a conversion at node 1
  // is forced, and the policy picks among convertible targets.
  net::WdmNetwork n = chain3(4);
  n.reserve(0, 0);
  n.reserve(0, 1);
  n.reserve(0, 2);
  n.reserve(1, 3);
  const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kFirstFit);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 3);
  EXPECT_EQ(p.hops[1].lambda, 0);
  EXPECT_EQ(p.conversions(n), 1);
}

TEST(WaPolicies, NoConversionPicksFromWholePathIntersection) {
  // Without conversion, assignment succeeds iff ∩ Λ_avail ≠ ∅ — the
  // segment-aware walk must find λ1 even though λ0 is first-fit's favorite
  // on the first link.
  net::WdmNetwork n(3, 2);  // no conversion at node 1
  n.add_link(0, 1, net::WavelengthSet::all(2), 1.0);
  n.add_link(1, 2, net::WavelengthSet::all(2), 1.0);
  n.reserve(1, 0);
  const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kFirstFit);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.hops[0].lambda, 1);
  EXPECT_EQ(p.hops[1].lambda, 1);
}

TEST(WaPolicies, BlocksWhenIntersectionEmptyWithoutConversion) {
  net::WdmNetwork n(3, 2);  // no conversion at node 1
  net::WavelengthSet only0, only1;
  only0.insert(0);
  only1.insert(1);
  n.add_link(0, 1, only0, 1.0);
  n.add_link(1, 2, only1, 1.0);
  const auto p = assign_wavelengths(n, {0, 1}, WaPolicy::kFirstFit);
  EXPECT_FALSE(p.found);
}

TEST(WaPolicies, EveryPolicyProducesValidPathsOnRandomNetworks) {
  for (int trial = 0; trial < 10; ++trial) {
    net::WdmNetwork n =
        test::random_network(8, 8, 4, 900 + static_cast<std::uint64_t>(trial));
    support::Rng rng(trial);
    // Random physical path via router baseline machinery: use a shortest
    // path on the graph.
    const auto tree = graph::dijkstra(
        n.graph(),
        std::vector<double>(static_cast<std::size_t>(n.num_links()), 1.0), 0);
    for (net::NodeId t = 1; t < n.num_nodes(); ++t) {
      const graph::Path path = graph::extract_path(n.graph(), tree, t);
      if (!path.found || path.edges.empty()) continue;
      for (WaPolicy policy :
           {WaPolicy::kFirstFit, WaPolicy::kLastFit, WaPolicy::kRandom,
            WaPolicy::kMostUsed, WaPolicy::kLeastUsed}) {
        const auto p = assign_wavelengths(n, path.edges, policy, &rng);
        if (p.found) {
          EXPECT_TRUE(p.fits_residual(n)) << wa_policy_name(policy);
        }
      }
    }
  }
}

TEST(WaPolicies, NamesAreDistinct) {
  EXPECT_STRNE(wa_policy_name(WaPolicy::kFirstFit),
               wa_policy_name(WaPolicy::kLastFit));
  EXPECT_STRNE(wa_policy_name(WaPolicy::kMostUsed),
               wa_policy_name(WaPolicy::kLeastUsed));
}

TEST(PhysicalRouter, PolicyVariantsRouteAndName) {
  net::WdmNetwork n = topo::nsfnet_network(8, 0.5);
  for (WaPolicy policy :
       {WaPolicy::kFirstFit, WaPolicy::kRandom, WaPolicy::kMostUsed}) {
    PhysicalFirstFitRouter router(policy);
    const RouteResult r = router.route(n, 0, 13);
    ASSERT_TRUE(r.found) << router.name();
    EXPECT_TRUE(r.route.feasible(n)) << router.name();
    EXPECT_NE(router.name().find(wa_policy_name(policy)), std::string::npos);
  }
}

}  // namespace
}  // namespace wdm::rwa
