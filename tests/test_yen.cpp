#include <gtest/gtest.h>

#include <set>

#include "graph/dijkstra.hpp"
#include "graph/yen.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace wdm::graph {
namespace {

TEST(Yen, FirstPathIsShortest) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  std::vector<double> w{1, 1, 2, 2};
  const auto paths = yen_k_shortest(g, w, 0, 3, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].cost, 2.0);
}

TEST(Yen, EnumeratesAllSimplePathsOnDiamond) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 2);
  std::vector<double> w{1, 1, 2, 2, 1};
  const auto paths = yen_k_shortest(g, w, 0, 3, 10);
  // Simple 0->3 paths: 0-1-3 (2), 0-1-2-3 (4), 0-2-3 (4).
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].cost, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].cost, 4.0);
  EXPECT_DOUBLE_EQ(paths[2].cost, 4.0);
}

TEST(Yen, ExhaustsAndReturnsNullopt) {
  Digraph g(2);
  g.add_edge(0, 1);
  std::vector<double> w{1};
  KShortestPathEnumerator en(g, w, 0, 1);
  EXPECT_TRUE(en.next().has_value());
  EXPECT_FALSE(en.next().has_value());
  EXPECT_FALSE(en.next().has_value());  // stays exhausted
}

TEST(Yen, NoPathAtAll) {
  Digraph g(2);
  std::vector<double> w;
  KShortestPathEnumerator en(g, w, 0, 1);
  EXPECT_FALSE(en.next().has_value());
}

TEST(Yen, RespectsEdgeMask) {
  Digraph g(3);
  const EdgeId direct = g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<double> w{1, 1, 1};
  std::vector<std::uint8_t> mask{0, 1, 1};
  (void)direct;
  const auto paths = yen_k_shortest(g, w, 0, 2, 5, mask);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].edges.size(), 2u);
}

TEST(Yen, HandlesParallelEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  std::vector<double> w{1, 2};
  const auto paths = yen_k_shortest(g, w, 0, 1, 5);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].cost, 1.0);
  EXPECT_DOUBLE_EQ(paths[1].cost, 2.0);
}

class YenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(YenPropertyTest, SortedLooplessDistinctAndComplete) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const int n = 4 + static_cast<int>(rng.uniform_int(0, 3));
  const int m = static_cast<int>(rng.uniform_int(n, 3 * n));
  const auto [g, w] = test::random_digraph(n, m, rng);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(n - 1);

  const auto expected = test::all_simple_paths(g, s, t);
  const auto paths =
      yen_k_shortest(g, w, s, t, static_cast<int>(expected.size()) + 5);

  // Completeness: Yen finds exactly the simple paths.
  EXPECT_EQ(paths.size(), expected.size());

  std::set<std::vector<EdgeId>> seen;
  double prev = -1.0;
  for (const Path& p : paths) {
    ASSERT_TRUE(p.found);
    EXPECT_TRUE(p.contiguous_in(g));
    EXPECT_GE(p.cost, prev - 1e-9);  // nondecreasing
    prev = p.cost;
    EXPECT_NEAR(p.cost, path_weight(p, w), 1e-9);
    EXPECT_TRUE(seen.insert(p.edges).second) << "duplicate path emitted";
    // Loopless: node repetition check.
    const auto ns = p.nodes(g);
    std::set<NodeId> uniq(ns.begin(), ns.end());
    EXPECT_EQ(uniq.size(), ns.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, YenPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace wdm::graph
