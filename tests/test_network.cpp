#include <gtest/gtest.h>

#include "wdm/network.hpp"

namespace wdm::net {
namespace {

WdmNetwork make_triangle(int W = 4) {
  WdmNetwork net(3, W);
  net.add_link(0, 1, WavelengthSet::all(W), 1.0);
  net.add_link(1, 2, WavelengthSet::all(W), 1.0);
  net.add_link(0, 2, WavelengthSet::all(W), 1.0);
  return net;
}

TEST(WdmNetwork, BasicShape) {
  const WdmNetwork net = make_triangle();
  EXPECT_EQ(net.num_nodes(), 3);
  EXPECT_EQ(net.num_links(), 3);
  EXPECT_EQ(net.W(), 4);
  EXPECT_EQ(net.capacity(0), 4);
  EXPECT_EQ(net.usage(0), 0);
}

TEST(WdmNetwork, AddDuplexAddsBothDirections) {
  WdmNetwork net(2, 2);
  const auto [fwd, bwd] = net.add_duplex(0, 1, WavelengthSet::all(2), 3.0);
  EXPECT_EQ(net.graph().tail(fwd), 0);
  EXPECT_EQ(net.graph().tail(bwd), 1);
  EXPECT_DOUBLE_EQ(net.weight(fwd, 0), 3.0);
  EXPECT_DOUBLE_EQ(net.weight(bwd, 1), 3.0);
}

TEST(WdmNetwork, PartialInstallation) {
  WdmNetwork net(2, 4);
  WavelengthSet some;
  some.insert(1);
  some.insert(3);
  const graph::EdgeId e = net.add_link(0, 1, some, 1.0);
  EXPECT_EQ(net.capacity(e), 2);
  EXPECT_TRUE(net.available(e).contains(1));
  EXPECT_FALSE(net.available(e).contains(0));
  EXPECT_THROW(net.weight(e, 0), std::logic_error);  // λ ∉ Λ(e)
}

TEST(WdmNetwork, EmptyInstallationRejected) {
  WdmNetwork net(2, 4);
  EXPECT_THROW(net.add_link(0, 1, WavelengthSet{}, 1.0), std::logic_error);
}

TEST(WdmNetwork, OutOfUniverseInstallationRejected) {
  WdmNetwork net(2, 2);
  WavelengthSet bad;
  bad.insert(3);
  EXPECT_THROW(net.add_link(0, 1, bad, 1.0), std::logic_error);
}

TEST(WdmNetwork, ReserveReleaseLifecycle) {
  WdmNetwork net = make_triangle(2);
  net.reserve(0, 1);
  EXPECT_TRUE(net.is_used(0, 1));
  EXPECT_FALSE(net.available(0).contains(1));
  EXPECT_EQ(net.usage(0), 1);
  EXPECT_EQ(net.total_usage(), 1);
  net.release(0, 1);
  EXPECT_EQ(net.usage(0), 0);
  EXPECT_EQ(net.total_usage(), 0);
}

TEST(WdmNetwork, DoubleReserveThrows) {
  WdmNetwork net = make_triangle(2);
  net.reserve(0, 0);
  EXPECT_THROW(net.reserve(0, 0), std::logic_error);
}

TEST(WdmNetwork, ReleaseUnreservedThrows) {
  WdmNetwork net = make_triangle(2);
  EXPECT_THROW(net.release(0, 0), std::logic_error);
}

TEST(WdmNetwork, LinkLoadIsEq2) {
  WdmNetwork net = make_triangle(4);
  net.reserve(0, 0);
  net.reserve(0, 1);
  EXPECT_DOUBLE_EQ(net.link_load(0), 0.5);  // U/N = 2/4
  EXPECT_DOUBLE_EQ(net.link_load(1), 0.0);
  EXPECT_DOUBLE_EQ(net.network_load(), 0.5);  // max over links
  EXPECT_NEAR(net.mean_load(), 0.5 / 3.0, 1e-12);
}

TEST(WdmNetwork, ThetaMinMax) {
  WdmNetwork net = make_triangle(4);
  net.reserve(0, 0);
  net.reserve(0, 1);
  // (U+1)/N per link: 3/4, 1/4, 1/4.
  EXPECT_DOUBLE_EQ(net.theta_min(), 0.25);
  EXPECT_DOUBLE_EQ(net.theta_max(), 0.75);
}

TEST(WdmNetwork, FailureEmptiesAvailability) {
  WdmNetwork net = make_triangle(2);
  net.reserve(0, 0);
  net.set_link_failed(0, true);
  EXPECT_TRUE(net.available(0).empty());
  EXPECT_TRUE(net.link_failed(0));
  EXPECT_EQ(net.num_failed_links(), 1);
  // Usage persists through failure; release still works.
  EXPECT_EQ(net.usage(0), 1);
  net.release(0, 0);
  net.set_link_failed(0, false);
  EXPECT_EQ(net.available(0).count(), 2);
}

TEST(WdmNetwork, ReserveOnFailedLinkThrows) {
  WdmNetwork net = make_triangle(2);
  net.set_link_failed(0, true);
  EXPECT_THROW(net.reserve(0, 0), std::logic_error);
}

TEST(WdmNetwork, SnapshotRestoreRoundTrip) {
  WdmNetwork net = make_triangle(4);
  net.reserve(0, 2);
  net.reserve(2, 0);
  const auto snap = net.usage_snapshot();
  net.release(0, 2);
  net.reserve(1, 1);
  net.restore_usage(snap);
  EXPECT_TRUE(net.is_used(0, 2));
  EXPECT_TRUE(net.is_used(2, 0));
  EXPECT_FALSE(net.is_used(1, 1));
  EXPECT_EQ(net.total_usage(), 2);
}

TEST(WdmNetwork, SyncResidualCopiesUsageAndFailure) {
  WdmNetwork src = make_triangle(4);
  WdmNetwork dst = src;  // same structure, diverging residual state
  src.reserve(0, 1);
  src.reserve(1, 3);
  src.set_link_failed(2, true);
  dst.reserve(2, 0);

  dst.sync_residual_from(src);
  EXPECT_TRUE(dst.is_used(0, 1));
  EXPECT_TRUE(dst.is_used(1, 3));
  EXPECT_FALSE(dst.is_used(2, 0));
  EXPECT_TRUE(dst.link_failed(2));
  EXPECT_EQ(dst.usage_snapshot(), src.usage_snapshot());
}

TEST(WdmNetwork, SyncResidualBumpsOnlyChangedLinkRevisions) {
  WdmNetwork src = make_triangle(4);
  WdmNetwork dst = src;
  src.reserve(1, 2);  // only link 1 diverges

  const auto rev0 = dst.link_revision(0);
  const auto rev1 = dst.link_revision(1);
  const auto rev2 = dst.link_revision(2);
  const auto global = dst.revision();
  dst.sync_residual_from(src);
  EXPECT_EQ(dst.link_revision(0), rev0);  // untouched: caches stay valid
  EXPECT_EQ(dst.link_revision(1), rev1 + 1);
  EXPECT_EQ(dst.link_revision(2), rev2);
  EXPECT_GT(dst.revision(), global);

  // Already in sync: a no-op must not invalidate anything.
  const auto global2 = dst.revision();
  dst.sync_residual_from(src);
  EXPECT_EQ(dst.revision(), global2);
  EXPECT_EQ(dst.link_revision(1), rev1 + 1);
}

TEST(WdmNetwork, SyncResidualRejectsDifferentStructure) {
  WdmNetwork a = make_triangle(4);
  WdmNetwork b(3, 4);  // no links
  EXPECT_ANY_THROW(b.sync_residual_from(a));
}

TEST(WdmNetwork, PerWavelengthWeights) {
  WdmNetwork net(2, 3);
  const std::vector<double> costs{1.0, 2.0, 4.0};
  const graph::EdgeId e = net.add_link(0, 1, WavelengthSet::all(3), costs);
  EXPECT_DOUBLE_EQ(net.weight(e, 0), 1.0);
  EXPECT_DOUBLE_EQ(net.weight(e, 2), 4.0);
  EXPECT_DOUBLE_EQ(net.min_weight(e), 1.0);
  EXPECT_DOUBLE_EQ(net.mean_available_weight(e), 7.0 / 3.0);
  net.reserve(e, 0);
  EXPECT_DOUBLE_EQ(net.mean_available_weight(e), 3.0);  // mean over {2,4}
}

TEST(WdmNetwork, ConversionTablePerNode) {
  WdmNetwork net(2, 2);
  net.set_conversion(0, ConversionTable::full(2, 0.7));
  EXPECT_TRUE(net.conversion(0).allowed(0, 1));
  EXPECT_FALSE(net.conversion(1).allowed(0, 1));  // default: none
  EXPECT_THROW(net.set_conversion(0, ConversionTable::full(3, 0.1)),
               std::logic_error);  // wrong W
}

}  // namespace
}  // namespace wdm::net
