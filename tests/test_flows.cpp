#include <gtest/gtest.h>

#include "graph/maxflow.hpp"
#include "graph/mincostflow.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace wdm::graph {
namespace {

TEST(Dinic, SingleArc) {
  Dinic d(2);
  d.add_arc(0, 1, 5);
  EXPECT_EQ(d.max_flow(0, 1), 5);
}

TEST(Dinic, BottleneckLimits) {
  Dinic d(3);
  d.add_arc(0, 1, 10);
  d.add_arc(1, 2, 3);
  EXPECT_EQ(d.max_flow(0, 2), 3);
}

TEST(Dinic, ParallelPathsAdd) {
  Dinic d(4);
  d.add_arc(0, 1, 2);
  d.add_arc(1, 3, 2);
  d.add_arc(0, 2, 3);
  d.add_arc(2, 3, 3);
  EXPECT_EQ(d.max_flow(0, 3), 5);
}

TEST(Dinic, ClassicExample) {
  // CLRS-style example with a known max flow of 23.
  Dinic d(6);
  d.add_arc(0, 1, 16);
  d.add_arc(0, 2, 13);
  d.add_arc(1, 2, 10);
  d.add_arc(2, 1, 4);
  d.add_arc(1, 3, 12);
  d.add_arc(3, 2, 9);
  d.add_arc(2, 4, 14);
  d.add_arc(4, 3, 7);
  d.add_arc(3, 5, 20);
  d.add_arc(4, 5, 4);
  EXPECT_EQ(d.max_flow(0, 5), 23);
}

TEST(Dinic, FlowOnArcsConserves) {
  Dinic d(4);
  const int a = d.add_arc(0, 1, 2);
  const int b = d.add_arc(1, 3, 2);
  const int c = d.add_arc(0, 2, 3);
  const int e = d.add_arc(2, 3, 3);
  EXPECT_EQ(d.max_flow(0, 3), 5);
  EXPECT_EQ(d.flow_on(a), 2);
  EXPECT_EQ(d.flow_on(b), 2);
  EXPECT_EQ(d.flow_on(c), 3);
  EXPECT_EQ(d.flow_on(e), 3);
}

TEST(EdgeDisjointCount, TrapGraphHasTwo) {
  // The classic "trap": greedy shortest path blocks both disjoint routes,
  // but two disjoint paths exist.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 2);
  EXPECT_EQ(edge_disjoint_path_count(g, 0, 3), 2);
}

TEST(EdgeDisjointCount, RespectsMask) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  std::vector<std::uint8_t> mask{1, 0};
  EXPECT_EQ(edge_disjoint_path_count(g, 0, 1), 2);
  EXPECT_EQ(edge_disjoint_path_count(g, 0, 1, mask), 1);
}

TEST(MinCostFlow, PicksCheaperPathFirst) {
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1, 1.0);
  mcf.add_arc(1, 3, 1, 1.0);
  mcf.add_arc(0, 2, 1, 5.0);
  mcf.add_arc(2, 3, 1, 5.0);
  const auto r1 = mcf.min_cost_flow(0, 3, 1);
  EXPECT_EQ(r1.flow, 1);
  EXPECT_DOUBLE_EQ(r1.cost, 2.0);
}

TEST(MinCostFlow, TwoUnitsTotalCost) {
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1, 1.0);
  mcf.add_arc(1, 3, 1, 1.0);
  mcf.add_arc(0, 2, 1, 5.0);
  mcf.add_arc(2, 3, 1, 5.0);
  const auto r = mcf.min_cost_flow(0, 3, 2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
}

TEST(MinCostFlow, ReroutesViaResidual) {
  // Trap graph: the 2-unit min-cost flow must avoid the greedy middle edge.
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1, 1.0);
  mcf.add_arc(1, 2, 1, 0.1);
  mcf.add_arc(2, 3, 1, 1.0);
  mcf.add_arc(1, 3, 1, 3.0);
  mcf.add_arc(0, 2, 1, 3.0);
  const auto r = mcf.min_cost_flow(0, 3, 2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 8.0);  // 0-1-3 (4) + 0-2-3 (4)
}

TEST(MinCostFlow, ReportsPartialFlow) {
  MinCostFlow mcf(2);
  mcf.add_arc(0, 1, 1, 1.0);
  const auto r = mcf.min_cost_flow(0, 1, 3);
  EXPECT_EQ(r.flow, 1);
}

TEST(MinCostFlow, RejectsNegativeCosts) {
  MinCostFlow mcf(2);
  EXPECT_THROW(mcf.add_arc(0, 1, 1, -1.0), std::logic_error);
}

TEST(MinCostDisjointPaths, FindsPairOnTrap) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  std::vector<double> w{1.0, 0.1, 1.0, 3.0, 3.0};
  const auto paths = min_cost_disjoint_paths(g, w, 0, 3, 2);
  ASSERT_TRUE(paths.has_value());
  ASSERT_EQ(paths->size(), 2u);
  EXPECT_TRUE(edge_disjoint((*paths)[0], (*paths)[1]));
  EXPECT_DOUBLE_EQ((*paths)[0].cost + (*paths)[1].cost, 8.0);
}

TEST(MinCostDisjointPaths, NulloptWhenOnlyOnePath) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<double> w{1, 1};
  EXPECT_FALSE(min_cost_disjoint_paths(g, w, 0, 2, 2).has_value());
}

}  // namespace
}  // namespace wdm::graph
