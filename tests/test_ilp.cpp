#include <gtest/gtest.h>

#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace wdm::ilp {
namespace {

TEST(Model, ObjectiveAndViolation) {
  Model m;
  const int x = m.add_continuous(0, 10, 3.0);
  const int y = m.add_continuous(0, 10, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0);
  EXPECT_DOUBLE_EQ(m.objective_value({2.0, 1.0}), 7.0);
  EXPECT_DOUBLE_EQ(m.max_violation({2.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({3.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(m.max_violation({-1.0, 0.0}), 1.0);  // lb violation
}

TEST(Model, MergesDuplicateTerms) {
  Model m;
  const int x = m.add_continuous(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {x, 2.0}}, Sense::kEq, 6.0);
  // Satisfied iff 3x = 6.
  EXPECT_DOUBLE_EQ(m.max_violation({2.0}), 0.0);
  EXPECT_GT(m.max_violation({1.0}), 0.0);
}

TEST(Simplex, SimpleMinimization) {
  // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  (max x + 2y)
  Model m;
  const int x = m.add_continuous(0, 3, -1.0);
  const int y = m.add_continuous(0, 2, -2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-8);  // x = 2, y = 2
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + y = 5, x - y = 1 -> x = 3, y = 2.
  Model m;
  const int x = m.add_continuous(0, kInfinity, 1.0);
  const int y = m.add_continuous(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 5.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kEq, 1.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 3.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0, 1e-8);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> (x, y) = (4, 0).
  Model m;
  const int x = m.add_continuous(0, kInfinity, 2.0);
  const int y = m.add_continuous(0, kInfinity, 3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0);
  m.add_constraint({{x, 1.0}}, Sense::kGe, 1.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_continuous(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kLe, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGe, 2.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_continuous(0, kInfinity, -1.0);
  m.add_constraint({{x, -1.0}}, Sense::kLe, 0.0);  // non-binding
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, RespectsBoundOverrides) {
  Model m;
  const int x = m.add_continuous(0, 10, -1.0);  // min -x
  m.add_constraint({{x, 1.0}}, Sense::kLe, 100.0);
  const std::vector<double> lo{0.0};
  const std::vector<double> hi{4.0};
  const LpSolution s = solve_lp(m, lo, hi);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 4.0, 1e-8);
}

TEST(Simplex, HonorsNonzeroLowerBounds) {
  Model m;
  const int x = m.add_continuous(2.0, 10.0, 1.0);  // min x, x >= 2
  m.add_constraint({{x, 1.0}}, Sense::kLe, 8.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
}

TEST(Simplex, CrossedBoundOverridesInfeasible) {
  Model m;
  (void)m.add_continuous(0, 10, 1.0);
  const std::vector<double> lo{5.0};
  const std::vector<double> hi{4.0};
  EXPECT_EQ(solve_lp(m, lo, hi).status, LpStatus::kInfeasible);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const int x = m.add_continuous(0, kInfinity, -1.0);
  const int y = m.add_continuous(0, kInfinity, -1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, Sense::kLe, 2.0);
  m.add_constraint({{x, 1.0}}, Sense::kLe, 1.0);
  m.add_constraint({{y, 1.0}}, Sense::kLe, 1.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-8);
}

TEST(BranchAndBound, SolvesKnapsack) {
  // max 10a + 13b + 7c, weights 3a + 4b + 2c <= 6, binary -> a + c = 17.
  Model m;
  const int a = m.add_binary(-10.0);
  const int b = m.add_binary(-13.0);
  const int c = m.add_binary(-7.0);
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::kLe, 6.0);
  const IpSolution s = solve_ip(m);
  ASSERT_EQ(s.status, IpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-6);  // b + c = 13 + 7
  EXPECT_NEAR(s.x[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(c)], 1.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(a)], 0.0, 1e-6);
}

TEST(BranchAndBound, IntegralityChangesAnswer) {
  // LP relaxation of the knapsack is fractional and strictly better.
  Model m;
  const int a = m.add_binary(-10.0);
  const int b = m.add_binary(-13.0);
  m.add_constraint({{a, 3.0}, {b, 4.0}}, Sense::kLe, 5.0);
  const LpSolution lp = solve_lp(m);
  const IpSolution ip = solve_ip(m);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  ASSERT_EQ(ip.status, IpStatus::kOptimal);
  EXPECT_LT(lp.objective, ip.objective - 1e-6);  // relaxation is a lower bound
  EXPECT_NEAR(ip.objective, -13.0, 1e-6);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // min -x - 10y, x continuous in [0, 1.5], y binary, x + y <= 2.
  Model m;
  const int x = m.add_continuous(0, 1.5, -1.0);
  const int y = m.add_binary(-10.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0);
  const IpSolution s = solve_ip(m);
  ASSERT_EQ(s.status, IpStatus::kOptimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 1.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 1.0, 1e-6);
  EXPECT_NEAR(s.objective, -11.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIp) {
  Model m;
  const int a = m.add_binary(1.0);
  const int b = m.add_binary(1.0);
  // a + b = 1 and a + b = 2 cannot both hold... use 2a + 2b = 3: no binary
  // solution though the LP relaxation is feasible.
  m.add_constraint({{a, 2.0}, {b, 2.0}}, Sense::kEq, 3.0);
  EXPECT_EQ(solve_ip(m).status, IpStatus::kInfeasible);
}

TEST(BranchAndBound, EqualityAssignmentProblem) {
  // 2x2 assignment: rows/cols each exactly one; costs favor the diagonal.
  Model m;
  const int v00 = m.add_binary(1.0);
  const int v01 = m.add_binary(5.0);
  const int v10 = m.add_binary(6.0);
  const int v11 = m.add_binary(2.0);
  m.add_constraint({{v00, 1.0}, {v01, 1.0}}, Sense::kEq, 1.0);
  m.add_constraint({{v10, 1.0}, {v11, 1.0}}, Sense::kEq, 1.0);
  m.add_constraint({{v00, 1.0}, {v10, 1.0}}, Sense::kEq, 1.0);
  m.add_constraint({{v01, 1.0}, {v11, 1.0}}, Sense::kEq, 1.0);
  const IpSolution s = solve_ip(m);
  ASSERT_EQ(s.status, IpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
}

TEST(BranchAndBound, SolutionSatisfiesModel) {
  Model m;
  const int a = m.add_binary(-3.0);
  const int b = m.add_binary(-5.0);
  const int c = m.add_binary(-4.0);
  m.add_constraint({{a, 2.0}, {b, 3.0}, {c, 1.0}}, Sense::kLe, 4.0);
  m.add_constraint({{a, 1.0}, {c, 1.0}}, Sense::kLe, 1.0);
  const IpSolution s = solve_ip(m);
  ASSERT_EQ(s.status, IpStatus::kOptimal);
  EXPECT_LT(m.max_violation(s.x), 1e-6);
}

TEST(BranchAndBound, NodeLimitReported) {
  IpOptions opt;
  opt.max_nodes = 1;
  Model m;
  const int a = m.add_binary(-1.0);
  const int b = m.add_binary(-1.0);
  m.add_constraint({{a, 2.0}, {b, 2.0}}, Sense::kLe, 3.0);
  const IpSolution s = solve_ip(m, opt);
  // One node is not enough to finish branching here.
  EXPECT_NE(s.status, IpStatus::kOptimal);
}

}  // namespace
}  // namespace wdm::ilp
