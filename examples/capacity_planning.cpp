// Capacity planning: how many wavelengths per fiber does a target blocking
// probability need? Sweeps W on NSFNET under fixed offered load for the
// §4.2 router — the "what do I buy" question a network operator asks of
// this library.
//
//   $ ./capacity_planning [erlang] [target_blocking]    (default 30 0.01)
#include <cstdio>
#include <cstdlib>

#include "rwa/loadcost_router.hpp"
#include "sim/simulator.hpp"
#include "topology/network_builder.hpp"

using namespace wdm;

int main(int argc, char** argv) {
  const double erlang = argc > 1 ? std::atof(argv[1]) : 30.0;
  const double target = argc > 2 ? std::atof(argv[2]) : 0.01;

  std::printf("NSFNET-14, offered load %.1f Erlang, target blocking %.2f%%\n",
              erlang, 100.0 * target);
  std::printf("%4s %10s %10s %10s\n", "W", "blocking", "mean rho", "verdict");

  rwa::LoadCostRouter router;
  int recommended = -1;
  for (int W : {2, 4, 6, 8, 12, 16, 24, 32}) {
    support::Rng rng(1);
    topo::NetworkOptions nopt;
    nopt.num_wavelengths = W;
    net::WdmNetwork network = topo::build_network(topo::nsfnet(), nopt, rng);

    sim::SimOptions opt;
    opt.traffic.arrival_rate = erlang;
    opt.traffic.mean_holding = 1.0;
    opt.duration = 120.0;
    opt.seed = 31;
    sim::Simulator sim(std::move(network), router, opt);
    const sim::SimMetrics m = sim.run();
    const bool ok = m.blocking_probability() <= target;
    if (ok && recommended < 0) recommended = W;
    std::printf("%4d %9.3f%% %10.3f %10s\n", W,
                100.0 * m.blocking_probability(), m.network_load.mean(),
                ok ? "meets" : "misses");
  }
  if (recommended > 0) {
    std::printf("\n=> smallest W meeting the target: %d wavelengths/fiber "
                "(with full protection: primary + reserved backup)\n",
                recommended);
  } else {
    std::printf("\n=> no W in the sweep meets the target at this load\n");
  }
  return 0;
}
