// Dynamic traffic: drive the event simulator with Poisson arrivals on the
// EON topology and compare the paper's three routers on one run each —
// the §2 operating model end to end.
//
//   $ ./dynamic_traffic [erlang]        (default 25)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "rwa/approx_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "sim/simulator.hpp"
#include "topology/network_builder.hpp"

using namespace wdm;

int main(int argc, char** argv) {
  const double erlang = argc > 1 ? std::atof(argv[1]) : 25.0;

  std::vector<rwa::RouterPtr> routers;
  routers.push_back(std::make_unique<rwa::ApproxDisjointRouter>());
  routers.push_back(std::make_unique<rwa::MinLoadRouter>());
  routers.push_back(std::make_unique<rwa::LoadCostRouter>());

  std::printf("EON-19, W = 12, offered load %.1f Erlang, horizon 100\n\n",
              erlang);
  for (const auto& router : routers) {
    support::Rng rng(1);
    topo::NetworkOptions nopt;
    nopt.num_wavelengths = 12;
    nopt.cost_model = topo::CostModel::kLength;
    nopt.length_cost_scale = 0.2;
    net::WdmNetwork network =
        topo::build_network(topo::eon19(), nopt, rng);

    sim::SimOptions opt;
    opt.traffic.arrival_rate = erlang;
    opt.traffic.mean_holding = 1.0;
    opt.duration = 100.0;
    opt.seed = 2024;  // same arrivals for every router
    opt.reconfig.load_trigger = 0.8;
    sim::Simulator sim(std::move(network), *router, opt);
    const sim::SimMetrics m = sim.run();

    std::printf("%-20s offered %5ld  blocked %4ld (%.2f%%)  mean ρ %.3f  "
                "reconfigs %ld  mean cost %.2f\n",
                router->name().c_str(), m.offered, m.blocked,
                100.0 * m.blocking_probability(), m.network_load.mean(),
                m.reconfigurations, m.route_cost.mean());
  }
  std::printf(
      "\nReading: the §4 routers trade a little route cost for lower "
      "congestion ρ and fewer global reconfigurations.\n");
  return 0;
}
