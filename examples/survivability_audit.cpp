// Survivability audit: which (s, t) pairs of a fiber plant can be protected
// at all? One O(n + m) bridge pass answers it for every pair at once — the
// fast-fail gate in front of the routing pipeline — and shows what a single
// extra fiber buys.
//
//   $ ./survivability_audit
#include <cstdio>

#include "graph/bridges.hpp"
#include "rwa/protectability.hpp"
#include "support/rng.hpp"
#include "topology/topologies.hpp"

using namespace wdm;

namespace {

void audit(const char* label, const graph::Digraph& g) {
  const rwa::ProtectabilityReport r = rwa::audit_protectability(g);
  std::printf("%-28s bridges %2d  2ec-components %2d  protectable pairs "
              "%lld/%lld (%.1f%%)\n",
              label, r.undirected_bridges, r.two_edge_components,
              r.protectable_pairs, r.total_pairs, 100.0 * r.fraction());
}

}  // namespace

int main() {
  std::printf("How much of each topology admits a fiber-disjoint backup?\n\n");
  audit("nsfnet14", topo::nsfnet().g);
  audit("arpanet20", topo::arpanet20().g);
  audit("eon19", topo::eon19().g);
  audit("ring8", topo::ring(8).g);

  // A tree is the worst case: every fiber is a bridge.
  support::Rng rng(3);
  const topo::Topology tree = topo::random_connected(12, 0, rng);
  audit("random tree (n=12)", tree.g);

  // Each added fiber merges 2-edge-connected components.
  std::printf("\nadding random fibers to the tree:\n");
  topo::Topology grown = tree;
  for (int added = 1; added <= 6; ++added) {
    support::Rng pick(static_cast<std::uint64_t>(added) * 17);
    graph::NodeId a = 0, b = 0;
    while (a == b || grown.g.find_edge(a, b) != graph::kInvalidEdge) {
      a = static_cast<graph::NodeId>(pick.uniform_int(0, 11));
      b = static_cast<graph::NodeId>(pick.uniform_int(0, 11));
    }
    grown.g.add_edge(a, b);
    grown.g.add_edge(b, a);
    char label[64];
    std::snprintf(label, sizeof label, "tree + %d fiber(s)", added);
    audit(label, grown.g);
  }

  std::printf(
      "\nPer-request use: rwa::protectable(analysis, s, t) is O(1) after "
      "graph::find_bridges — drop unprotectable requests before invoking "
      "the routing pipeline.\n");
  return 0;
}
