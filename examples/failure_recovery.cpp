// Failure recovery walkthrough: provision a protected connection, cut a
// fiber on its primary path, and show the activate-mode switchover — then
// contrast with what a passive scheme would have to do at failure time.
//
//   $ ./failure_recovery
#include <cstdio>

#include "rwa/approx_router.hpp"
#include "rwa/layered_graph.hpp"
#include "topology/network_builder.hpp"

using namespace wdm;

namespace {

void show_links(const net::WdmNetwork& network, const char* label,
                const net::Semilightpath& p) {
  std::printf("%s:", label);
  for (const net::Hop& h : p.hops) {
    std::printf(" %d->%d(λ%d)", network.graph().tail(h.edge),
                network.graph().head(h.edge), h.lambda);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  net::WdmNetwork network = topo::nsfnet_network(8, 0.5);
  const net::NodeId s = 1, t = 11;

  // 1. Provision with a pre-reserved backup (the paper's activate approach).
  const rwa::RouteResult r = rwa::ApproxDisjointRouter().route(network, s, t);
  if (!r.found) {
    std::printf("no protected route available\n");
    return 1;
  }
  r.route.reserve_in(network);
  std::printf("provisioned protected connection %d -> %d\n", s, t);
  show_links(network, "  primary", r.route.primary);
  show_links(network, "  backup ", r.route.backup);

  // 2. Cut a fiber on the primary path (both directions of the duplex).
  const graph::EdgeId cut = r.route.primary.hops[0].edge;
  std::printf("\n*** fiber cut on link %d->%d ***\n",
              network.graph().tail(cut), network.graph().head(cut));
  network.set_link_failed(cut, true);

  // 3. Activate recovery: the backup is already reserved and lit — traffic
  //    switches over immediately; no routing, no signaling.
  std::printf("activate recovery: switch to backup (pre-reserved) — "
              "service restored in ~switchover time\n");
  show_links(network, "  now serving on", r.route.backup);

  // 4. What passive recovery would have had to do *after* the failure:
  //    recompute a route against whatever is left right now.
  net::Semilightpath passive = rwa::optimal_semilightpath(network, s, t);
  if (passive.found) {
    std::printf("\npassive alternative (computed after the cut, cost %.2f):\n",
                passive.cost(network));
    show_links(network, "  recomputed", passive);
    std::printf("  -> pays signaling + per-hop setup at failure time, and "
                "only succeeds if spare capacity happens to exist.\n");
  } else {
    std::printf("\npassive alternative: NO route available post-failure — "
                "the connection would have been lost.\n");
  }

  // 5. Repair and clean up.
  network.set_link_failed(cut, false);
  r.route.release_in(network);
  std::printf("\nfiber repaired, connection torn down, ρ = %.3f\n",
              network.network_load());
  return 0;
}
