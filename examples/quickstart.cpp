// Quickstart: build a small WDM network, provision a protected connection
// with the paper's §3.3 algorithm, inspect the routes (links, wavelengths,
// converter settings), and reserve them.
//
//   $ ./quickstart
#include <cstdio>

#include "rwa/approx_router.hpp"
#include "topology/network_builder.hpp"

using namespace wdm;

namespace {

void print_semilightpath(const net::WdmNetwork& network, const char* label,
                         const net::Semilightpath& path) {
  std::printf("%s (cost %.3f, %d conversion(s)):\n", label,
              path.cost(network), path.conversions(network));
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const net::Hop& hop = path.hops[i];
    std::printf("  link %d->%d on λ%d  (w = %.2f)\n",
                network.graph().tail(hop.edge), network.graph().head(hop.edge),
                hop.lambda, network.weight(hop.edge, hop.lambda));
    if (i + 1 < path.hops.size() &&
        hop.lambda != path.hops[i + 1].lambda) {
      const net::NodeId mid = network.graph().head(hop.edge);
      std::printf("  [converter at node %d: λ%d -> λ%d, cost %.2f]\n", mid,
                  hop.lambda, path.hops[i + 1].lambda,
                  network.conversion(mid).cost(hop.lambda,
                                               path.hops[i + 1].lambda));
    }
  }
}

}  // namespace

int main() {
  // NSFNET backbone, 8 wavelengths per fiber, unit traversal costs, full
  // wavelength conversion at every node for 0.5.
  net::WdmNetwork network = topo::nsfnet_network(/*num_wavelengths=*/8,
                                                 /*conversion_cost=*/0.5);
  std::printf("Network: %d nodes, %d directed fibers, W = %d\n",
              network.num_nodes(), network.num_links(), network.W());

  // A protected connection request Seattle (0) -> DC (13).
  const net::NodeId s = 0, t = 13;
  rwa::ApproxDisjointRouter router;
  const rwa::RouteResult result = router.route(network, s, t);
  if (!result.found) {
    std::printf("request (%d -> %d) blocked: no edge-disjoint pair\n", s, t);
    return 1;
  }

  std::printf("\nProtected route for request %d -> %d:\n", s, t);
  print_semilightpath(network, "primary", result.route.primary);
  print_semilightpath(network, "backup ", result.route.backup);
  std::printf("total cost: %.3f (auxiliary-graph bound was %.3f)\n",
              result.total_cost(network), result.aux_cost);

  // Reserve both paths: the backup is pre-provisioned ("activate" recovery),
  // so a fiber cut on the primary switches over with no re-signaling.
  result.route.reserve_in(network);
  std::printf("\nafter reservation: network load ρ = %.3f, %lld "
              "wavelength-links in use\n",
              network.network_load(), network.total_usage());

  // Tear down.
  result.route.release_in(network);
  std::printf("after release: ρ = %.3f\n", network.network_load());
  return 0;
}
