#!/bin/sh
# check_stream_overhead.sh — asserts the live-streaming overhead bar (E23).
#
#   sh tools/check_stream_overhead.sh <bench> [bar_pct] [runs] [interval_s]
#
# Times the same binary streaming (--stream) against the dump path
# (--telemetry to /dev/null). Telemetry is runtime-enabled in both arms and
# both serialize the full registry exactly once — the stream's final frame
# is the dump's twin — so the difference isolates the SnapshotPublisher
# itself: the background thread, its once-per-interval registry walk, and
# the interval-frame writes. (The cost of enabling telemetry at all is
# E18/E19's bar, not this one.) Interleaves the arms A/B and takes
# minimum-of-N per round,
# accumulating minima across rounds like check_overhead.sh: scheduler noise
# only ever adds time, so a noise-driven excess collapses while a real
# overhead persists. Default bar: 5%, runs: 5, stream interval: 0.25 s.
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <bench> [bar_pct] [runs] [interval_s]" >&2
  exit 2
fi

BENCH="$1"
BAR_PCT="${2:-5}"
RUNS="${3:-5}"
INTERVAL="${4:-0.25}"
STREAM_OUT="${TMPDIR:-/tmp}/check_stream_overhead.$$.jsonl"
trap 'rm -f "$STREAM_OUT"' EXIT

if [ ! -x "$BENCH" ]; then
  echo "check_stream_overhead: $BENCH is not executable" >&2
  exit 2
fi

now_ms() {
  if date +%s%N >/dev/null 2>&1 && [ "$(date +%N)" != "N" ]; then
    echo $(( $(date +%s%N) / 1000000 ))
  else
    awk 'BEGIN { srand(); printf "%d\n", srand() * 1000 }'
  fi
}

time_stream() {
  start=$(now_ms)
  "$BENCH" --quick \
      --stream "$STREAM_OUT" --stream-interval "$INTERVAL" >/dev/null 2>&1
  end=$(now_ms)
  echo $((end - start))
}

time_plain() {
  start=$(now_ms)
  "$BENCH" --quick --telemetry /dev/null >/dev/null 2>&1
  end=$(now_ms)
  echo $((end - start))
}

MAX_ROUNDS=4
with_ms=""
without_ms=""
round=0
overhead_pct=""
while [ "$round" -lt "$MAX_ROUNDS" ]; do
  round=$((round + 1))
  i=0
  while [ "$i" -lt "$RUNS" ]; do
    t=$(time_stream)
    if [ -z "$with_ms" ] || [ "$t" -lt "$with_ms" ]; then with_ms="$t"; fi
    t=$(time_plain)
    if [ -z "$without_ms" ] || [ "$t" -lt "$without_ms" ]; then without_ms="$t"; fi
    i=$((i + 1))
  done
  if [ "$without_ms" -le 0 ]; then
    echo "check_stream_overhead: baseline too fast to time; passing vacuously" >&2
    exit 0
  fi
  overhead_pct=$(awk -v w="$with_ms" -v o="$without_ms" \
    'BEGIN { printf "%.2f", 100.0 * (w - o) / o }')
  echo "check_stream_overhead: round ${round}: min-stream ${with_ms} ms," \
       "min-plain ${without_ms} ms, overhead ${overhead_pct}%"
  if awk -v p="$overhead_pct" -v bar="$BAR_PCT" 'BEGIN { exit !(p <= bar) }'; then
    echo "check_stream_overhead: OK — streaming overhead ${overhead_pct}%" \
         "within ${BAR_PCT}% bar"
    exit 0
  fi
done

echo "check_stream_overhead: FAIL — streaming overhead ${overhead_pct}%" \
     "exceeds ${BAR_PCT}% after ${MAX_ROUNDS} rounds" >&2
exit 1
