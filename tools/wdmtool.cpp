// wdmtool — command-line front end for the robustwdm library.
//
//   wdmtool topologies
//   wdmtool route <topology> <s> <t> [-W n] [-r router] [--occupy p] [--seed k]
//   wdmtool simulate <topology> [-W n] [-r router] [--erlang x]
//            [--duration t] [--failures rate] [--srlg-failures rate]
//            [--replicas k] [--seed k] [--protect full|srlg|partial:<p>]
//   wdmtool audit <topology>
//   wdmtool dot <topology>
//
// Routers: approx (§3.3, default), minload (§4.1), loadcost (§4.2),
//          node-disjoint, two-step, physical, unprotected, exact.
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "graph/dot.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "rwa/exact_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "rwa/node_disjoint_router.hpp"
#include "rwa/protectability.hpp"
#include "sim/replicate.hpp"
#include "support/telemetry.hpp"
#include "topology/network_builder.hpp"
#include "wdm/io.hpp"

#include <fstream>

namespace {

using namespace wdm;

/// Full-token integer parse; rejects "", "7x", "1e3", overflow. std::atoi
/// silently returns 0 for all of those, which turns garbage argv into node 0.
bool parse_cli_int(const char* s, int* out) {
  const char* last = s + std::strlen(s);
  const auto [ptr, ec] = std::from_chars(s, last, *out);
  return ec == std::errc{} && ptr == last && last != s;
}

/// Full-token finite double parse (rejects "", trailing junk, nan/inf).
bool parse_cli_double(const char* s, double* out) {
  if (*s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end != s + std::strlen(s) || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool flag_error(const char* flag, const char* value) {
  std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  wdmtool topologies\n"
      "  wdmtool route <topology> <s> <t> [-W n] [-r router] [--occupy p] "
      "[--seed k]\n"
      "           [--protect full|srlg|partial:<p>]\n"
      "  wdmtool simulate <topology> [-W n] [-r router] [--erlang x] "
      "[--duration t]\n"
      "           [--failures rate] [--srlg-failures rate] [--replicas k] "
      "[--seed k]\n"
      "           [--protect full|srlg|partial:<p>]\n"
      "  wdmtool audit <topology>\n"
      "  wdmtool dot <topology>\n"
      "  wdmtool save <topology> [-W n] [--occupy p] > file.wdm\n"
      "  (route/simulate accept --net file.wdm to load a saved state,\n"
      "   --telemetry out.json to dump structured counters/timings,\n"
      "   --trace out.trace.json for a Chrome/Perfetto trace,\n"
      "   --stream out.jsonl to publish live delta frames while running\n"
      "   (tail with wdmtop; --stream-interval s sets the frame stride),\n"
      "   --prom out.prom for Prometheus text exposition at exit,\n"
      "   --series-interval dt to set the sim-time sampling stride\n"
      "   (0 = auto, negative = off), and --flight-recorder k to retain\n"
      "   only the last k + worst-k-latency request traces)\n"
      "topologies: nsfnet | arpanet | eon | usnet | ring<n> | grid<r>x<c> | torus<r>x<c>\n"
      "            geo<r>x<c>[@seed] | waxman<n>[@seed]  (random; seeded "
      "draws, default @1)\n"
      "routers: approx minload loadcost node-disjoint two-step physical "
      "unprotected exact\n");
  return 2;
}

bool parse_topology(const std::string& name, topo::Topology* out) {
  // Random families take an optional "@<seed>" suffix (default seed 1) so a
  // drawn instance is reproducible from its name alone, independent of the
  // --seed flag (which keeps governing occupancy and traffic).
  std::string base = name;
  std::uint64_t topo_seed = 1;
  if (const auto at = base.find('@'); at != std::string::npos) {
    int sv = 0;
    if (!parse_cli_int(base.c_str() + at + 1, &sv) || sv < 0) return false;
    topo_seed = static_cast<std::uint64_t>(sv);
    base.resize(at);
  }
  if (base.rfind("waxman", 0) == 0) {
    int n = 0;
    if (!parse_cli_int(base.c_str() + 6, &n) || n < 3) return false;
    support::Rng rng(topo_seed);
    // E22 parameters: continental sparsity (mean degree ~8 at n=250).
    *out = topo::waxman(n, /*alpha=*/0.08, /*beta=*/0.12, rng);
    return true;
  }
  if (base.rfind("geo", 0) == 0) {
    int r = 0, c = 0, used = 0;
    if (std::sscanf(base.c_str() + 3, "%dx%d%n", &r, &c, &used) != 2 ||
        base[3 + static_cast<std::size_t>(used)] != '\0' || r < 2 || c < 2) {
      return false;
    }
    support::Rng rng(topo_seed);
    *out = topo::geo_grid(r, c, /*chord_p=*/0.3, rng);
    return true;
  }
  if (name == "nsfnet") {
    *out = topo::nsfnet();
  } else if (name == "arpanet") {
    *out = topo::arpanet20();
  } else if (name == "eon") {
    *out = topo::eon19();
  } else if (name == "usnet") {
    *out = topo::usnet24();
  } else if (name.rfind("torus", 0) == 0) {
    int r = 0, c = 0, used = 0;
    if (std::sscanf(name.c_str() + 5, "%dx%d%n", &r, &c, &used) != 2 ||
        name[5 + static_cast<std::size_t>(used)] != '\0' || r < 3 || c < 3) {
      return false;
    }
    *out = topo::torus(r, c);
  } else if (name.rfind("ring", 0) == 0) {
    int n = 0;
    if (!parse_cli_int(name.c_str() + 4, &n) || n < 3) return false;
    *out = topo::ring(n);
  } else if (name.rfind("grid", 0) == 0) {
    int r = 0, c = 0, used = 0;
    if (std::sscanf(name.c_str() + 4, "%dx%d%n", &r, &c, &used) != 2 ||
        name[4 + static_cast<std::size_t>(used)] != '\0' || r < 2 || c < 2) {
      return false;
    }
    *out = topo::grid(r, c);
  } else {
    return false;
  }
  return true;
}

rwa::RouterPtr make_router(const std::string& name,
                           net::ProtectPolicy policy) {
  if (name == "approx") {
    return std::make_unique<rwa::ApproxDisjointRouter>(true, policy);
  }
  if (name == "minload") {
    return std::make_unique<rwa::MinLoadRouter>(rwa::MinCogOptions{}, policy);
  }
  if (name == "loadcost") {
    return std::make_unique<rwa::LoadCostRouter>(rwa::MinCogOptions{}, false,
                                                 policy);
  }
  if (name == "node-disjoint") {
    return std::make_unique<rwa::NodeDisjointRouter>(policy);
  }
  // The remaining routers predate protection policies; only the default
  // (full edge-disjoint) request is meaningful for them.
  if (policy.kind != net::ProtectKind::kFull) {
    std::fprintf(stderr, "router '%s' does not support --protect\n",
                 name.c_str());
    return nullptr;
  }
  if (name == "two-step") return std::make_unique<rwa::TwoStepRouter>();
  if (name == "physical") {
    return std::make_unique<rwa::PhysicalFirstFitRouter>();
  }
  if (name == "unprotected") return std::make_unique<rwa::UnprotectedRouter>();
  if (name == "exact") return std::make_unique<rwa::ExactRouter>();
  return nullptr;
}

/// --protect value: "full" | "srlg" | "partial:<p>" with p in [0, 1].
bool parse_protect(const std::string& value, net::ProtectPolicy* out) {
  if (value == "full") {
    *out = net::ProtectPolicy::full();
    return true;
  }
  if (value == "srlg") {
    *out = net::ProtectPolicy::srlg();
    return true;
  }
  if (value.rfind("partial:", 0) == 0) {
    double p = 0.0;
    if (parse_cli_double(value.c_str() + 8, &p) && p >= 0.0 && p <= 1.0) {
      *out = net::ProtectPolicy::partial(p);
      return true;
    }
  }
  return false;
}

struct Flags {
  int W = 8;
  std::string router = "approx";
  net::ProtectPolicy protect = net::ProtectPolicy::full();  // --protect
  std::string net_file;  // --net: load the network state instead of building
  std::string telemetry_file;  // --telemetry: JSON dump path
  std::string trace_file;      // --trace: Chrome trace-event export path
  std::string stream_file;     // --stream: live JSONL frames (wdmtop tails it)
  std::string prom_file;       // --prom: Prometheus text exposition at exit
  double stream_interval = 1.0;  // --stream-interval: seconds between frames
  double series_interval = 0.0;  // --series-interval (0 auto, <0 off)
  int flight_recorder = 0;       // --flight-recorder: last/worst-k retention
  double occupy = 0.0;
  double erlang = 20.0;
  double duration = 100.0;
  double failures = 0.0;
  double srlg_failures = 0.0;  // --srlg-failures: correlated group events
  int replicas = 1;
  std::uint64_t seed = 1;
};

bool parse_flags(int argc, char** argv, int first, Flags* f) {
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_str = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    auto next_double = [&](double* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        return false;
      }
      ++i;
      return parse_cli_double(argv[i], out) || flag_error(a.c_str(), argv[i]);
    };
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        return false;
      }
      ++i;
      return parse_cli_int(argv[i], out) || flag_error(a.c_str(), argv[i]);
    };
    int iv = 0;
    if (a == "-W") {
      if (!next_int(&iv) || iv < 1) return flag_error("-W", argv[i]);
      f->W = iv;
    } else if (a == "-r") {
      if (!next_str(&f->router)) return false;
    } else if (a == "--protect") {
      std::string v;
      if (!next_str(&v)) return false;
      if (!parse_protect(v, &f->protect)) {
        return flag_error("--protect", v.c_str());
      }
    } else if (a == "--net") {
      if (!next_str(&f->net_file)) return false;
    } else if (a == "--telemetry") {
      if (!next_str(&f->telemetry_file)) return false;
    } else if (a == "--trace") {
      if (!next_str(&f->trace_file)) return false;
    } else if (a == "--stream") {
      if (!next_str(&f->stream_file)) return false;
    } else if (a == "--stream-interval") {
      if (!next_double(&f->stream_interval) || f->stream_interval <= 0.0) {
        return flag_error("--stream-interval", argv[i]);
      }
    } else if (a == "--prom") {
      if (!next_str(&f->prom_file)) return false;
    } else if (a == "--series-interval") {
      if (!next_double(&f->series_interval)) return false;
    } else if (a == "--flight-recorder") {
      if (!next_int(&iv) || iv < 1) {
        return flag_error("--flight-recorder", argv[i]);
      }
      f->flight_recorder = iv;
    } else if (a == "--occupy") {
      if (!next_double(&f->occupy)) return false;
      if (f->occupy < 0.0 || f->occupy > 1.0) {
        return flag_error("--occupy", argv[i]);
      }
    } else if (a == "--erlang") {
      if (!next_double(&f->erlang) || f->erlang < 0.0) return false;
    } else if (a == "--duration") {
      if (!next_double(&f->duration) || f->duration < 0.0) return false;
    } else if (a == "--failures") {
      if (!next_double(&f->failures) || f->failures < 0.0) return false;
    } else if (a == "--srlg-failures") {
      if (!next_double(&f->srlg_failures) || f->srlg_failures < 0.0) {
        return false;
      }
    } else if (a == "--replicas") {
      if (!next_int(&iv) || iv < 1) return flag_error("--replicas", argv[i]);
      f->replicas = iv;
    } else if (a == "--seed") {
      if (!next_int(&iv) || iv < 0) return flag_error("--seed", argv[i]);
      f->seed = static_cast<std::uint64_t>(iv);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  if (!f->telemetry_file.empty() || !f->trace_file.empty() ||
      !f->stream_file.empty() || !f->prom_file.empty()) {
    wdm::support::telemetry::set_enabled(true);
    // Run metadata for the dump: teldiff gates on "seed"; "command" makes a
    // dump self-describing when it is a CI artifact.
    wdm::support::telemetry::set_meta("seed", std::to_string(f->seed));
    std::string cmd;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) cmd += ' ';
      cmd += argv[i];
    }
    wdm::support::telemetry::set_meta("command", cmd);
  }
  if (f->flight_recorder > 0) {
    wdm::support::telemetry::set_trace_retention(
        static_cast<std::size_t>(f->flight_recorder),
        static_cast<std::size_t>(f->flight_recorder));
  }
  // Start streaming after the meta is in place: the final frame snapshots it.
  if (!f->stream_file.empty()) {
    wdm::support::telemetry::StreamOptions sopt;
    sopt.path = f->stream_file;
    sopt.interval_s = f->stream_interval;
    if (!wdm::support::telemetry::start_stream(sopt)) {
      std::fprintf(stderr, "cannot start telemetry stream to %s\n",
                   f->stream_file.c_str());
      return false;
    }
  }
  return true;
}

/// Writes the telemetry / trace outputs if requested; pass-through of rc.
int finish(const Flags& f, int rc) {
  // Stop the stream before the dumps so the final frame lands first and the
  // JSON outputs see quiesced counters. No-op when no stream was started.
  support::telemetry::stop_stream();
  if (!f.prom_file.empty()) {
    if (!support::telemetry::write_prometheus_file(f.prom_file)) {
      std::fprintf(stderr, "cannot write prometheus metrics to %s\n",
                   f.prom_file.c_str());
      return rc == 0 ? 2 : rc;
    }
  }
  if (!f.telemetry_file.empty()) {
    if (!support::telemetry::write_file(f.telemetry_file)) {
      std::fprintf(stderr, "cannot write telemetry to %s\n",
                   f.telemetry_file.c_str());
      return rc == 0 ? 2 : rc;
    }
  }
  if (!f.trace_file.empty()) {
    if (!support::telemetry::write_chrome_trace_file(f.trace_file)) {
      std::fprintf(stderr, "cannot write trace to %s\n", f.trace_file.c_str());
      return rc == 0 ? 2 : rc;
    }
  }
  return rc;
}

net::WdmNetwork make_network(const topo::Topology& t, const Flags& f) {
  if (!f.net_file.empty()) {
    // Throws io::ParseError with "file:line N: ..." context; main() turns
    // that into a clean diagnostic + nonzero exit.
    return io::read_network_file(f.net_file);
  }
  support::Rng rng(f.seed);
  topo::NetworkOptions opt;
  opt.num_wavelengths = f.W;
  net::WdmNetwork n = topo::build_network(t, opt, rng);
  if (f.occupy > 0.0) {
    for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
      n.available(e).for_each([&](net::Wavelength l) {
        if (rng.bernoulli(f.occupy)) n.reserve(e, l);
      });
    }
  }
  return n;
}

void print_path(const net::WdmNetwork& n, const char* label,
                const net::Semilightpath& p) {
  if (!p.found) {
    std::printf("%s: (none)\n", label);
    return;
  }
  std::printf("%s (cost %.3f):", label, p.cost(n));
  for (const net::Hop& h : p.hops) {
    std::printf(" %d->%d:λ%d", n.graph().tail(h.edge), n.graph().head(h.edge),
                h.lambda);
  }
  std::printf("\n");
}

int cmd_route(int argc, char** argv) {
  if (argc < 5) return usage();
  topo::Topology t;
  if (!parse_topology(argv[2], &t)) return usage();
  int s_raw = 0;
  int dst_raw = 0;
  if (!parse_cli_int(argv[3], &s_raw) || !parse_cli_int(argv[4], &dst_raw)) {
    std::fprintf(stderr, "bad node id '%s' or '%s' (expected integers)\n",
                 argv[3], argv[4]);
    return usage();
  }
  const auto s = static_cast<net::NodeId>(s_raw);
  const auto dst = static_cast<net::NodeId>(dst_raw);
  Flags f;
  if (!parse_flags(argc, argv, 5, &f)) return usage();
  const rwa::RouterPtr router = make_router(f.router, f.protect);
  if (!router) return usage();
  const net::WdmNetwork n = make_network(t, f);
  if (!n.graph().valid_node(s) || !n.graph().valid_node(dst) || s == dst) {
    std::fprintf(stderr,
                 "bad endpoints (%d, %d) for %s: need distinct nodes in "
                 "[0, %d)\n",
                 s, dst, t.name.c_str(), n.num_nodes());
    return 2;
  }
  const rwa::RouteResult r = router->route(n, s, dst);
  std::printf("%s on %s (W=%d, occupancy %.0f%%): %s\n",
              router->name().c_str(), t.name.c_str(), f.W, 100 * f.occupy,
              r.found ? "FOUND" : "BLOCKED");
  if (!r.found) return finish(f, 1);
  print_path(n, "  primary", r.route.primary);
  print_path(n, "  backup ", r.route.backup);
  if (r.route.backup.found) {
    std::printf("  total cost %.3f, current network load ρ=%.3f\n",
                r.total_cost(n), n.network_load());
  }
  return finish(f, 0);
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 3) return usage();
  topo::Topology t;
  if (!parse_topology(argv[2], &t)) return usage();
  Flags f;
  if (!parse_flags(argc, argv, 3, &f)) return usage();
  const rwa::RouterPtr router = make_router(f.router, f.protect);
  if (!router) return usage();
  const net::WdmNetwork base = make_network(t, f);

  sim::SimOptions opt;
  opt.traffic.arrival_rate = f.erlang;
  opt.traffic.mean_holding = 1.0;
  opt.duration = f.duration;
  opt.seed = f.seed;
  opt.series_interval = f.series_interval;
  if (f.failures > 0.0) {
    opt.failures.duplex_failure_rate = f.failures;
    opt.reverse_of = t.reverse_of;
  }
  if (f.srlg_failures > 0.0) {
    if (base.num_srlgs() == 0) {
      std::fprintf(stderr,
                   "--srlg-failures needs a network with srlg blocks "
                   "(load one via --net)\n");
      return 2;
    }
    opt.failures.srlg_failure_rate = f.srlg_failures;
  }
  const sim::ReplicationSummary s =
      sim::replicate(base, *router, opt, f.replicas);
  std::printf("%s on %s: W=%d, %.1f Erlang, horizon %.0f, %d replica(s)\n",
              router->name().c_str(), t.name.c_str(), f.W, f.erlang,
              f.duration, f.replicas);
  std::printf("  blocking      %.4f ± %.4f\n", s.blocking.mean,
              s.blocking.ci95);
  std::printf("  mean load ρ   %.4f ± %.4f\n", s.mean_network_load.mean,
              s.mean_network_load.ci95);
  std::printf("  peak load     %.4f\n", s.peak_load.max);
  std::printf("  route cost    %.3f ± %.3f\n", s.route_cost.mean,
              s.route_cost.ci95);
  if (f.failures > 0.0 || f.srlg_failures > 0.0) {
    std::printf("  recovery      %.4f ± %.4f\n", s.recovery_success.mean,
                s.recovery_success.ci95);
    std::printf("  availability  %.4f ± %.4f\n", s.availability.mean,
                s.availability.ci95);
  }
  return finish(f, 0);
}

int cmd_audit(int argc, char** argv) {
  if (argc < 3) return usage();
  topo::Topology t;
  if (!parse_topology(argv[2], &t)) return usage();
  const rwa::ProtectabilityReport r = rwa::audit_protectability(t.g);
  std::printf("%s: %d nodes, %d duplex fibers\n", t.name.c_str(),
              t.num_nodes(), t.num_duplex_links());
  std::printf("  undirected bridges      %d\n", r.undirected_bridges);
  std::printf("  2-edge components       %d\n", r.two_edge_components);
  std::printf("  protectable (s,t) pairs %lld / %lld  (%.1f%%)\n",
              r.protectable_pairs, r.total_pairs, 100.0 * r.fraction());
  return 0;
}

int cmd_dot(int argc, char** argv) {
  if (argc < 3) return usage();
  topo::Topology t;
  if (!parse_topology(argv[2], &t)) return usage();
  graph::DotOptions opt;
  opt.graph_name = t.name;
  std::fputs(graph::to_dot(t.g, opt).c_str(), stdout);
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "topologies") {
    std::printf("nsfnet    14 nodes, 21 duplex fibers (NSFNET T1)\n");
    std::printf("arpanet   20 nodes, 31 duplex fibers\n");
    std::printf("eon       19 nodes, 37 duplex fibers (European Optical)\n");
    std::printf("ring<n>   bidirectional ring\n");
    std::printf("grid<r>x<c> mesh\n");
    std::printf("geo<r>x<c>[@seed]  grid + diagonal chords (E22 family)\n");
    std::printf("waxman<n>[@seed]   geometric random WAN (E22 family)\n");
    return 0;
  }
  if (cmd == "route") return cmd_route(argc, argv);
  if (cmd == "simulate") return cmd_simulate(argc, argv);
  if (cmd == "audit") return cmd_audit(argc, argv);
  if (cmd == "dot") return cmd_dot(argc, argv);
  if (cmd == "save") {
    // wdmtool save <topology> [-W n] [--occupy p] [--seed k]  > file.wdm
    if (argc < 3) return usage();
    topo::Topology t;
    if (!parse_topology(argv[2], &t)) return usage();
    Flags f;
    if (!parse_flags(argc, argv, 3, &f)) return usage();
    std::fputs(io::write_network(make_network(t, f)).c_str(), stdout);
    return finish(f, 0);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const io::ParseError& err) {
    // A started stream still gets its final frame on the error paths, so a
    // crashed long run leaves a well-formed capture behind (no-op otherwise).
    wdm::support::telemetry::stop_stream();
    std::fprintf(stderr, "wdmtool: %s\n", err.what());
    return 2;
  } catch (const std::exception& err) {
    wdm::support::telemetry::stop_stream();
    std::fprintf(stderr, "wdmtool: %s\n", err.what());
    return 2;
  }
}
