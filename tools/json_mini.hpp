// Minimal dependency-free JSON value + recursive-descent parser, shared by
// the telemetry tooling (telemetry_check, teldiff) and the trace golden-file
// tests. Parses the actual bytes — objects, arrays, strings, numbers, bools,
// null — and throws std::runtime_error with a byte offset on malformed
// input. Not a general-purpose JSON library: \u escapes are consumed but
// decoded as '?' (the telemetry schema only ever emits ASCII control
// escapes), and numbers are doubles (53-bit integer precision, plenty for
// the counters the tools compare).
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace wdm::tools::json {

struct Json;
using JsonPtr = std::shared_ptr<Json>;

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonPtr> arr;
  std::map<std::string, JsonPtr> obj;

  bool is(Type t) const { return type == t; }
  const JsonPtr* find(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}
  // The parser keeps a reference to the document for its whole lifetime;
  // binding a temporary would dangle before parse() runs.
  explicit Parser(std::string&&) = delete;

  JsonPtr parse() {
    JsonPtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonPtr value() {
    skip_ws();
    const char c = peek();
    auto v = std::make_shared<Json>();
    if (c == '{') {
      v->type = Json::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = string_token();
        skip_ws();
        expect(':');
        v->obj.emplace(std::move(key), value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v->type = Json::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v->arr.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v->type = Json::Type::kString;
      v->str = string_token();
      return v;
    }
    if (consume_literal("true")) {
      v->type = Json::Type::kBool;
      v->b = true;
      return v;
    }
    if (consume_literal("false")) {
      v->type = Json::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      std::size_t used = 0;
      v->num = std::stod(s_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) fail("bad number");
    } catch (const std::exception&) {
      fail("bad number");
    }
    v->type = Json::Type::kNumber;
    return v;
  }

  std::string string_token() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            // Decoded only far enough for validation; the schema emits
            // ASCII control escapes exclusively.
            out.push_back('?');
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace wdm::tools::json
