// telemetry_check — validates a telemetry dump against the documented
// schemas (DESIGN.md §8): "robustwdm-telemetry-v1" (PR 4) and
// "robustwdm-telemetry-v2" (tracing + series + metadata).
//
//   telemetry_check out.json        # exit 0 iff the file conforms
//
// Uses the shared ~150-line recursive-descent parser (json_mini.hpp) so the
// check has no dependencies and is honest: it parses the actual bytes, not a
// mental model of them. Validated beyond well-formedness:
//   * top-level keys: schema/compiled/enabled/counters/histograms/spans/
//     events/dropped (+ meta/series in v2), with the right types;
//   * counters: object of non-negative integers;
//   * histograms: unit == "ns", count == sum of bucket counts, min <= max
//     when count > 0, buckets have lo < hi and non-negative counts; v2 adds
//     p50 <= p90 <= p99 <= max;
//   * spans: name (string) + thread/start_ns/dur_ns (non-negative numbers);
//     v2 adds trace/span/parent/flow ids, span != 0, and parent links that
//     resolve within the dump (or 0 for roots);
//   * events: name (string) + thread (number) + t (number);
//   * series (v2): objects of {dropped, points: [[t, v], ...]} with
//     non-decreasing t per series;
//   * meta (v2): object of strings, required build-provenance keys present;
//   * dropped: spans/events counts (v2 adds points).
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "json_mini.hpp"

namespace {

using wdm::tools::json::Json;
using wdm::tools::json::JsonPtr;
using wdm::tools::json::Parser;

int g_errors = 0;

void problem(const std::string& what) {
  std::fprintf(stderr, "telemetry_check: %s\n", what.c_str());
  ++g_errors;
}

bool is_nonneg_int(const Json& v) {
  return v.is(Json::Type::kNumber) && v.num >= 0.0 &&
         v.num == static_cast<double>(static_cast<std::uint64_t>(v.num));
}

const Json* need(const Json& obj, const char* key, Json::Type type,
                 const char* where) {
  const JsonPtr* p = obj.find(key);
  if (p == nullptr) {
    problem(std::string(where) + ": missing key \"" + key + "\"");
    return nullptr;
  }
  if (!(*p)->is(type)) {
    problem(std::string(where) + ": key \"" + key + "\" has the wrong type");
    return nullptr;
  }
  return p->get();
}

void check_histogram(const std::string& name, const Json& h, bool v2) {
  const std::string where = "histogram \"" + name + "\"";
  const Json* unit = need(h, "unit", Json::Type::kString, where.c_str());
  if (unit != nullptr && unit->str != "ns") problem(where + ": unit != ns");
  const Json* count = need(h, "count", Json::Type::kNumber, where.c_str());
  const Json* sum = need(h, "sum", Json::Type::kNumber, where.c_str());
  const Json* min = need(h, "min", Json::Type::kNumber, where.c_str());
  const Json* max = need(h, "max", Json::Type::kNumber, where.c_str());
  const Json* buckets = need(h, "buckets", Json::Type::kArray, where.c_str());
  for (const Json* v : {count, sum, min, max}) {
    if (v != nullptr && !is_nonneg_int(*v)) {
      problem(where + ": negative or non-integer stat");
    }
  }
  if (count != nullptr && min != nullptr && max != nullptr && count->num > 0 &&
      min->num > max->num) {
    problem(where + ": min > max on a non-empty histogram");
  }
  if (v2) {
    // Quantiles are upper-bound estimates (power-of-two buckets), clamped to
    // the observed max; they must be monotone in q and bounded by max.
    const Json* p50 = need(h, "p50", Json::Type::kNumber, where.c_str());
    const Json* p90 = need(h, "p90", Json::Type::kNumber, where.c_str());
    const Json* p99 = need(h, "p99", Json::Type::kNumber, where.c_str());
    if (p50 != nullptr && p90 != nullptr && p99 != nullptr && max != nullptr &&
        count != nullptr && count->num > 0) {
      if (!(p50->num <= p90->num && p90->num <= p99->num)) {
        problem(where + ": quantiles are not monotone");
      }
      if (p99->num > max->num) problem(where + ": p99 > max");
    }
  }
  if (buckets == nullptr) return;
  double bucket_total = 0.0;
  for (const JsonPtr& bp : buckets->arr) {
    if (!bp->is(Json::Type::kObject)) {
      problem(where + ": bucket is not an object");
      continue;
    }
    const Json* lo = need(*bp, "lo", Json::Type::kNumber, where.c_str());
    const Json* hi = need(*bp, "hi", Json::Type::kNumber, where.c_str());
    const Json* n = need(*bp, "count", Json::Type::kNumber, where.c_str());
    if (lo != nullptr && hi != nullptr && lo->num >= hi->num) {
      problem(where + ": bucket with lo >= hi");
    }
    if (n != nullptr) {
      if (!is_nonneg_int(*n)) problem(where + ": bad bucket count");
      bucket_total += n->num;
    }
  }
  if (count != nullptr && bucket_total != count->num) {
    problem(where + ": bucket counts do not sum to count");
  }
}

void check_series(const std::string& name, const Json& s) {
  const std::string where = "series \"" + name + "\"";
  const Json* dropped = need(s, "dropped", Json::Type::kNumber, where.c_str());
  if (dropped != nullptr && !is_nonneg_int(*dropped)) {
    problem(where + ": dropped is not a count");
  }
  const Json* points = need(s, "points", Json::Type::kArray, where.c_str());
  if (points == nullptr) return;
  double prev_t = -1e300;
  for (const JsonPtr& pp : points->arr) {
    if (!pp->is(Json::Type::kArray) || pp->arr.size() != 2 ||
        !pp->arr[0]->is(Json::Type::kNumber) ||
        !pp->arr[1]->is(Json::Type::kNumber)) {
      problem(where + ": point is not a [t, v] number pair");
      continue;
    }
    const double t = pp->arr[0]->num;
    if (t < prev_t) problem(where + ": sample times go backwards");
    prev_t = t;
  }
}

int check(const Json& root) {
  if (!root.is(Json::Type::kObject)) {
    problem("top level is not an object");
    return g_errors;
  }
  const Json* schema = need(root, "schema", Json::Type::kString, "top level");
  bool v2 = false;
  if (schema != nullptr) {
    if (schema->str == "robustwdm-telemetry-v2") {
      v2 = true;
    } else if (schema->str != "robustwdm-telemetry-v1") {
      problem("schema is \"" + schema->str +
              "\", expected robustwdm-telemetry-v1 or -v2");
    }
  }
  need(root, "compiled", Json::Type::kBool, "top level");
  need(root, "enabled", Json::Type::kBool, "top level");

  const Json* counters =
      need(root, "counters", Json::Type::kObject, "top level");
  if (counters != nullptr) {
    for (const auto& [name, v] : counters->obj) {
      if (!is_nonneg_int(*v)) {
        problem("counter \"" + name + "\" is not a non-negative integer");
      }
    }
  }

  const Json* hists =
      need(root, "histograms", Json::Type::kObject, "top level");
  if (hists != nullptr) {
    for (const auto& [name, v] : hists->obj) {
      if (!v->is(Json::Type::kObject)) {
        problem("histogram \"" + name + "\" is not an object");
        continue;
      }
      check_histogram(name, *v, v2);
    }
  }

  const Json* spans = need(root, "spans", Json::Type::kArray, "top level");
  if (spans != nullptr) {
    // v2: collect span ids first so parent links can be resolved.
    std::set<std::uint64_t> ids;
    if (v2) {
      for (const JsonPtr& sp : spans->arr) {
        if (!sp->is(Json::Type::kObject)) continue;
        const JsonPtr* id = sp->find("span");
        if (id != nullptr && is_nonneg_int(**id)) {
          ids.insert(static_cast<std::uint64_t>((*id)->num));
        }
      }
    }
    for (const JsonPtr& sp : spans->arr) {
      if (!sp->is(Json::Type::kObject)) {
        problem("span is not an object");
        continue;
      }
      need(*sp, "name", Json::Type::kString, "span");
      for (const char* k : {"thread", "start_ns", "dur_ns"}) {
        const Json* v = need(*sp, k, Json::Type::kNumber, "span");
        if (v != nullptr && !is_nonneg_int(*v)) {
          problem(std::string("span ") + k + " is negative or fractional");
        }
      }
      if (!v2) continue;
      for (const char* k : {"trace", "span", "parent", "flow_in", "flow_out"}) {
        const Json* v = need(*sp, k, Json::Type::kNumber, "span");
        if (v != nullptr && !is_nonneg_int(*v)) {
          problem(std::string("span ") + k + " is negative or fractional");
        }
      }
      const JsonPtr* id = sp->find("span");
      if (id != nullptr && (*id)->num == 0.0) problem("span id is 0");
      const JsonPtr* parent = sp->find("parent");
      if (parent != nullptr && (*parent)->is(Json::Type::kNumber) &&
          (*parent)->num != 0.0 &&
          ids.count(static_cast<std::uint64_t>((*parent)->num)) == 0) {
        // A parent may legitimately be missing when the ring buffer wrapped
        // or retention filtered; only flag when nothing at all was dropped.
        const JsonPtr* dr = root.find("dropped");
        const bool lossy =
            dr != nullptr && (*dr)->is(Json::Type::kObject) &&
            [&] {
              const JsonPtr* ds = (*dr)->find("spans");
              return ds != nullptr && (*ds)->num > 0.0;
            }();
        if (!lossy) problem("span parent id does not resolve in the dump");
      }
    }
  }

  const Json* events = need(root, "events", Json::Type::kArray, "top level");
  if (events != nullptr) {
    for (const JsonPtr& ep : events->arr) {
      if (!ep->is(Json::Type::kObject)) {
        problem("event is not an object");
        continue;
      }
      need(*ep, "name", Json::Type::kString, "event");
      need(*ep, "thread", Json::Type::kNumber, "event");
      need(*ep, "t", Json::Type::kNumber, "event");
    }
  }

  if (v2) {
    const Json* meta = need(root, "meta", Json::Type::kObject, "top level");
    if (meta != nullptr) {
      for (const auto& [key, v] : meta->obj) {
        if (!v->is(Json::Type::kString)) {
          problem("meta \"" + key + "\" is not a string");
        }
      }
      for (const char* k :
           {"git", "compiler", "build_type", "telemetry_compiled",
            "hardware_threads"}) {
        need(*meta, k, Json::Type::kString, "meta");
      }
    }
    const Json* series =
        need(root, "series", Json::Type::kObject, "top level");
    if (series != nullptr) {
      for (const auto& [name, v] : series->obj) {
        if (!v->is(Json::Type::kObject)) {
          problem("series \"" + name + "\" is not an object");
          continue;
        }
        check_series(name, *v);
      }
    }
  }

  const Json* dropped =
      need(root, "dropped", Json::Type::kObject, "top level");
  if (dropped != nullptr) {
    for (const char* k : {"spans", "events"}) {
      const Json* v = need(*dropped, k, Json::Type::kNumber, "dropped");
      if (v != nullptr && !is_nonneg_int(*v)) {
        problem(std::string("dropped.") + k + " is not a count");
      }
    }
    if (v2) {
      const Json* v = need(*dropped, "points", Json::Type::kNumber, "dropped");
      if (v != nullptr && !is_nonneg_int(*v)) {
        problem("dropped.points is not a count");
      }
    }
  }
  return g_errors;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: telemetry_check <telemetry.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "telemetry_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string doc = text.str();
  JsonPtr root;
  try {
    root = Parser(doc).parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry_check: %s: %s\n", argv[1], e.what());
    return 1;
  }
  const int errors = check(*root);
  if (errors != 0) {
    std::fprintf(stderr, "telemetry_check: %s: %d schema violation(s)\n",
                 argv[1], errors);
    return 1;
  }
  const JsonPtr* schema = root->find("schema");
  std::printf("telemetry_check: %s conforms to %s\n", argv[1],
              schema != nullptr ? (*schema)->str.c_str() : "?");
  return 0;
}
