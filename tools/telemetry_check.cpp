// telemetry_check — validates a telemetry dump against the documented
// schemas (DESIGN.md §8): "robustwdm-telemetry-v1" (PR 4),
// "robustwdm-telemetry-v2" (tracing + series + metadata), and the
// "robustwdm-telemetry-stream-v1" JSONL stream (§8.5, auto-detected from
// the first line).
//
//   telemetry_check out.json        # exit 0 iff the file conforms
//   telemetry_check run.jsonl       # same, for a --stream capture
//
// Uses the shared ~150-line recursive-descent parser (json_mini.hpp) so the
// check has no dependencies and is honest: it parses the actual bytes, not a
// mental model of them. Validated beyond well-formedness:
//   * top-level keys: schema/compiled/enabled/counters/histograms/spans/
//     events/dropped (+ meta/series in v2), with the right types;
//   * counters: object of non-negative integers;
//   * gauges (v2, optional): object of numbers;
//   * histograms: unit == "ns", count == sum of bucket counts, min <= max
//     when count > 0, buckets have lo < hi and non-negative counts; v2 adds
//     p50 <= p90 <= p99 <= max;
//   * spans: name (string) + thread/start_ns/dur_ns (non-negative numbers);
//     v2 adds trace/span/parent/flow ids, span != 0, and parent links that
//     resolve within the dump (or 0 for roots);
//   * events: name (string) + thread (number) + t (number);
//   * series (v2): objects of {dropped, points: [[t, v], ...]} with
//     non-decreasing t per series;
//   * meta (v2): object of strings, required build-provenance keys present;
//   * dropped: spans/events counts (v2 adds points).
// Stream mode additionally enforces: one JSON object per line; seq strictly
// increasing and t_ns non-decreasing; interval counter deltas non-negative
// integers (a negative delta is a monotonicity violation at the source);
// per-series sample times non-decreasing within and across interval frames;
// exactly one "final" frame, on the last line, whose cumulative counters are
// >= the sum of the streamed deltas.
#include <cstdio>
#include <cstdint>
#include <map>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "json_mini.hpp"

namespace {

using wdm::tools::json::Json;
using wdm::tools::json::JsonPtr;
using wdm::tools::json::Parser;

int g_errors = 0;

void problem(const std::string& what) {
  std::fprintf(stderr, "telemetry_check: %s\n", what.c_str());
  ++g_errors;
}

bool is_nonneg_int(const Json& v) {
  return v.is(Json::Type::kNumber) && v.num >= 0.0 &&
         v.num == static_cast<double>(static_cast<std::uint64_t>(v.num));
}

const Json* need(const Json& obj, const char* key, Json::Type type,
                 const char* where) {
  const JsonPtr* p = obj.find(key);
  if (p == nullptr) {
    problem(std::string(where) + ": missing key \"" + key + "\"");
    return nullptr;
  }
  if (!(*p)->is(type)) {
    problem(std::string(where) + ": key \"" + key + "\" has the wrong type");
    return nullptr;
  }
  return p->get();
}

void check_histogram(const std::string& name, const Json& h, bool v2) {
  const std::string where = "histogram \"" + name + "\"";
  const Json* unit = need(h, "unit", Json::Type::kString, where.c_str());
  if (unit != nullptr && unit->str != "ns") problem(where + ": unit != ns");
  const Json* count = need(h, "count", Json::Type::kNumber, where.c_str());
  const Json* sum = need(h, "sum", Json::Type::kNumber, where.c_str());
  const Json* min = need(h, "min", Json::Type::kNumber, where.c_str());
  const Json* max = need(h, "max", Json::Type::kNumber, where.c_str());
  const Json* buckets = need(h, "buckets", Json::Type::kArray, where.c_str());
  for (const Json* v : {count, sum, min, max}) {
    if (v != nullptr && !is_nonneg_int(*v)) {
      problem(where + ": negative or non-integer stat");
    }
  }
  if (count != nullptr && min != nullptr && max != nullptr && count->num > 0 &&
      min->num > max->num) {
    problem(where + ": min > max on a non-empty histogram");
  }
  if (v2) {
    // Quantiles are upper-bound estimates (power-of-two buckets), clamped to
    // the observed max; they must be monotone in q and bounded by max.
    const Json* p50 = need(h, "p50", Json::Type::kNumber, where.c_str());
    const Json* p90 = need(h, "p90", Json::Type::kNumber, where.c_str());
    const Json* p99 = need(h, "p99", Json::Type::kNumber, where.c_str());
    if (p50 != nullptr && p90 != nullptr && p99 != nullptr && max != nullptr &&
        count != nullptr && count->num > 0) {
      if (!(p50->num <= p90->num && p90->num <= p99->num)) {
        problem(where + ": quantiles are not monotone");
      }
      if (p99->num > max->num) problem(where + ": p99 > max");
    }
  }
  if (buckets == nullptr) return;
  double bucket_total = 0.0;
  for (const JsonPtr& bp : buckets->arr) {
    if (!bp->is(Json::Type::kObject)) {
      problem(where + ": bucket is not an object");
      continue;
    }
    const Json* lo = need(*bp, "lo", Json::Type::kNumber, where.c_str());
    const Json* hi = need(*bp, "hi", Json::Type::kNumber, where.c_str());
    const Json* n = need(*bp, "count", Json::Type::kNumber, where.c_str());
    if (lo != nullptr && hi != nullptr && lo->num >= hi->num) {
      problem(where + ": bucket with lo >= hi");
    }
    if (n != nullptr) {
      if (!is_nonneg_int(*n)) problem(where + ": bad bucket count");
      bucket_total += n->num;
    }
  }
  if (count != nullptr && bucket_total != count->num) {
    problem(where + ": bucket counts do not sum to count");
  }
}

void check_series(const std::string& name, const Json& s) {
  const std::string where = "series \"" + name + "\"";
  const Json* dropped = need(s, "dropped", Json::Type::kNumber, where.c_str());
  if (dropped != nullptr && !is_nonneg_int(*dropped)) {
    problem(where + ": dropped is not a count");
  }
  const Json* points = need(s, "points", Json::Type::kArray, where.c_str());
  if (points == nullptr) return;
  double prev_t = -1e300;
  for (const JsonPtr& pp : points->arr) {
    if (!pp->is(Json::Type::kArray) || pp->arr.size() != 2 ||
        !pp->arr[0]->is(Json::Type::kNumber) ||
        !pp->arr[1]->is(Json::Type::kNumber)) {
      problem(where + ": point is not a [t, v] number pair");
      continue;
    }
    const double t = pp->arr[0]->num;
    if (t < prev_t) problem(where + ": sample times go backwards");
    prev_t = t;
  }
}

int check(const Json& root) {
  if (!root.is(Json::Type::kObject)) {
    problem("top level is not an object");
    return g_errors;
  }
  const Json* schema = need(root, "schema", Json::Type::kString, "top level");
  bool v2 = false;
  if (schema != nullptr) {
    if (schema->str == "robustwdm-telemetry-v2") {
      v2 = true;
    } else if (schema->str != "robustwdm-telemetry-v1") {
      problem("schema is \"" + schema->str +
              "\", expected robustwdm-telemetry-v1 or -v2");
    }
  }
  need(root, "compiled", Json::Type::kBool, "top level");
  need(root, "enabled", Json::Type::kBool, "top level");

  const Json* counters =
      need(root, "counters", Json::Type::kObject, "top level");
  if (counters != nullptr) {
    for (const auto& [name, v] : counters->obj) {
      if (!is_nonneg_int(*v)) {
        problem("counter \"" + name + "\" is not a non-negative integer");
      }
    }
  }

  // Gauges arrived mid-v2 (PR 10) and are optional so older dumps conform;
  // when present the section must be an object of plain numbers.
  const JsonPtr* gauges = root.find("gauges");
  if (gauges != nullptr) {
    if (!(*gauges)->is(Json::Type::kObject)) {
      problem("gauges is not an object");
    } else {
      for (const auto& [name, v] : (*gauges)->obj) {
        if (!v->is(Json::Type::kNumber)) {
          problem("gauge \"" + name + "\" is not a number");
        }
      }
    }
  }

  const Json* hists =
      need(root, "histograms", Json::Type::kObject, "top level");
  if (hists != nullptr) {
    for (const auto& [name, v] : hists->obj) {
      if (!v->is(Json::Type::kObject)) {
        problem("histogram \"" + name + "\" is not an object");
        continue;
      }
      check_histogram(name, *v, v2);
    }
  }

  const Json* spans = need(root, "spans", Json::Type::kArray, "top level");
  if (spans != nullptr) {
    // v2: collect span ids first so parent links can be resolved.
    std::set<std::uint64_t> ids;
    if (v2) {
      for (const JsonPtr& sp : spans->arr) {
        if (!sp->is(Json::Type::kObject)) continue;
        const JsonPtr* id = sp->find("span");
        if (id != nullptr && is_nonneg_int(**id)) {
          ids.insert(static_cast<std::uint64_t>((*id)->num));
        }
      }
    }
    for (const JsonPtr& sp : spans->arr) {
      if (!sp->is(Json::Type::kObject)) {
        problem("span is not an object");
        continue;
      }
      need(*sp, "name", Json::Type::kString, "span");
      for (const char* k : {"thread", "start_ns", "dur_ns"}) {
        const Json* v = need(*sp, k, Json::Type::kNumber, "span");
        if (v != nullptr && !is_nonneg_int(*v)) {
          problem(std::string("span ") + k + " is negative or fractional");
        }
      }
      if (!v2) continue;
      for (const char* k : {"trace", "span", "parent", "flow_in", "flow_out"}) {
        const Json* v = need(*sp, k, Json::Type::kNumber, "span");
        if (v != nullptr && !is_nonneg_int(*v)) {
          problem(std::string("span ") + k + " is negative or fractional");
        }
      }
      const JsonPtr* id = sp->find("span");
      if (id != nullptr && (*id)->num == 0.0) problem("span id is 0");
      const JsonPtr* parent = sp->find("parent");
      if (parent != nullptr && (*parent)->is(Json::Type::kNumber) &&
          (*parent)->num != 0.0 &&
          ids.count(static_cast<std::uint64_t>((*parent)->num)) == 0) {
        // A parent may legitimately be missing when the ring buffer wrapped
        // or retention filtered; only flag when nothing at all was dropped.
        const JsonPtr* dr = root.find("dropped");
        const bool lossy =
            dr != nullptr && (*dr)->is(Json::Type::kObject) &&
            [&] {
              const JsonPtr* ds = (*dr)->find("spans");
              return ds != nullptr && (*ds)->num > 0.0;
            }();
        if (!lossy) problem("span parent id does not resolve in the dump");
      }
    }
  }

  const Json* events = need(root, "events", Json::Type::kArray, "top level");
  if (events != nullptr) {
    for (const JsonPtr& ep : events->arr) {
      if (!ep->is(Json::Type::kObject)) {
        problem("event is not an object");
        continue;
      }
      need(*ep, "name", Json::Type::kString, "event");
      need(*ep, "thread", Json::Type::kNumber, "event");
      need(*ep, "t", Json::Type::kNumber, "event");
    }
  }

  if (v2) {
    const Json* meta = need(root, "meta", Json::Type::kObject, "top level");
    if (meta != nullptr) {
      for (const auto& [key, v] : meta->obj) {
        if (!v->is(Json::Type::kString)) {
          problem("meta \"" + key + "\" is not a string");
        }
      }
      for (const char* k :
           {"git", "compiler", "build_type", "telemetry_compiled",
            "hardware_threads"}) {
        need(*meta, k, Json::Type::kString, "meta");
      }
    }
    const Json* series =
        need(root, "series", Json::Type::kObject, "top level");
    if (series != nullptr) {
      for (const auto& [name, v] : series->obj) {
        if (!v->is(Json::Type::kObject)) {
          problem("series \"" + name + "\" is not an object");
          continue;
        }
        check_series(name, *v);
      }
    }
  }

  const Json* dropped =
      need(root, "dropped", Json::Type::kObject, "top level");
  if (dropped != nullptr) {
    for (const char* k : {"spans", "events"}) {
      const Json* v = need(*dropped, k, Json::Type::kNumber, "dropped");
      if (v != nullptr && !is_nonneg_int(*v)) {
        problem(std::string("dropped.") + k + " is not a count");
      }
    }
    if (v2) {
      const Json* v = need(*dropped, "points", Json::Type::kNumber, "dropped");
      if (v != nullptr && !is_nonneg_int(*v)) {
        problem("dropped.points is not a count");
      }
    }
  }
  return g_errors;
}

constexpr const char* kStreamSchema = "robustwdm-telemetry-stream-v1";

/// Per-frame histogram blocks carry quantiles only (interval) or the full v2
/// stat set minus buckets (final).
void check_stream_histogram(const std::string& name, const Json& h,
                            bool final_frame) {
  const std::string where = "stream histogram \"" + name + "\"";
  const Json* count = need(h, "count", Json::Type::kNumber, where.c_str());
  const Json* p50 = need(h, "p50", Json::Type::kNumber, where.c_str());
  const Json* p90 = need(h, "p90", Json::Type::kNumber, where.c_str());
  const Json* p99 = need(h, "p99", Json::Type::kNumber, where.c_str());
  if (count != nullptr && !is_nonneg_int(*count)) {
    problem(where + ": count is not a non-negative integer");
  }
  if (p50 != nullptr && p90 != nullptr && p99 != nullptr &&
      !(p50->num <= p90->num && p90->num <= p99->num)) {
    problem(where + ": quantiles are not monotone");
  }
  if (!final_frame) return;
  const Json* unit = need(h, "unit", Json::Type::kString, where.c_str());
  if (unit != nullptr && unit->str != "ns") problem(where + ": unit != ns");
  const Json* min = need(h, "min", Json::Type::kNumber, where.c_str());
  const Json* max = need(h, "max", Json::Type::kNumber, where.c_str());
  need(h, "sum", Json::Type::kNumber, where.c_str());
  if (min != nullptr && max != nullptr && count != nullptr && count->num > 0 &&
      min->num > max->num) {
    problem(where + ": min > max on a non-empty histogram");
  }
  if (p99 != nullptr && max != nullptr && p99->num > max->num) {
    problem(where + ": p99 > max");
  }
}

int check_stream(const std::vector<std::string>& lines) {
  double prev_seq = 0.0;
  double prev_t_ns = -1.0;
  bool saw_final = false;
  std::map<std::string, double> delta_sums;  // counter -> sum of deltas
  std::map<std::string, double> last_t;      // series -> last sample time

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string where = "line " + std::to_string(li + 1);
    JsonPtr fp;
    try {
      fp = Parser(lines[li]).parse();
    } catch (const std::exception& e) {
      problem(where + ": " + e.what());
      continue;
    }
    const Json& f = *fp;
    if (!f.is(Json::Type::kObject)) {
      problem(where + ": frame is not an object");
      continue;
    }
    if (saw_final) problem(where + ": frame after the final frame");

    const Json* schema = need(f, "schema", Json::Type::kString, where.c_str());
    if (schema != nullptr && schema->str != kStreamSchema) {
      problem(where + ": schema is \"" + schema->str + "\", expected " +
              kStreamSchema);
    }
    const Json* kind = need(f, "kind", Json::Type::kString, where.c_str());
    const bool final_frame = kind != nullptr && kind->str == "final";
    if (kind != nullptr && kind->str != "interval" && kind->str != "final") {
      problem(where + ": kind is \"" + kind->str + "\"");
    }
    if (final_frame) saw_final = true;

    const Json* seq = need(f, "seq", Json::Type::kNumber, where.c_str());
    if (seq != nullptr) {
      if (!is_nonneg_int(*seq) || seq->num <= prev_seq) {
        problem(where + ": seq is not strictly increasing");
      }
      prev_seq = seq->num;
    }
    const Json* t_ns = need(f, "t_ns", Json::Type::kNumber, where.c_str());
    if (t_ns != nullptr) {
      if (!is_nonneg_int(*t_ns) || t_ns->num < prev_t_ns) {
        problem(where + ": t_ns goes backwards");
      }
      prev_t_ns = t_ns->num;
    }

    const Json* counters =
        need(f, "counters", Json::Type::kObject, where.c_str());
    if (counters != nullptr) {
      for (const auto& [name, v] : counters->obj) {
        if (!is_nonneg_int(*v)) {
          problem(where + ": counter \"" + name + "\" " +
                  (final_frame ? "is not a non-negative integer"
                               : "has a negative or non-integer delta "
                                 "(monotonicity violation)"));
          continue;
        }
        if (!final_frame) {
          delta_sums[name] += v->num;
        } else if (const auto it = delta_sums.find(name);
                   it != delta_sums.end() && v->num < it->second) {
          problem(where + ": final counter \"" + name +
                  "\" is below the sum of its streamed deltas");
        }
      }
    }

    const Json* gauges = need(f, "gauges", Json::Type::kObject, where.c_str());
    if (gauges != nullptr) {
      for (const auto& [name, v] : gauges->obj) {
        if (!v->is(Json::Type::kNumber)) {
          problem(where + ": gauge \"" + name + "\" is not a number");
        }
      }
    }

    const Json* hists =
        need(f, "histograms", Json::Type::kObject, where.c_str());
    if (hists != nullptr) {
      for (const auto& [name, v] : hists->obj) {
        if (!v->is(Json::Type::kObject)) {
          problem(where + ": histogram \"" + name + "\" is not an object");
          continue;
        }
        check_stream_histogram(name, *v, final_frame);
      }
    }

    const Json* series = need(f, "series", Json::Type::kObject, where.c_str());
    if (series != nullptr) {
      for (const auto& [name, v] : series->obj) {
        if (final_frame) {
          // Final frames re-emit every series from t = 0 in the v2 dump
          // shape; the cross-frame cursor does not apply.
          if (!v->is(Json::Type::kObject)) {
            problem(where + ": final series \"" + name + "\" is not an object");
            continue;
          }
          check_series(name, *v);
          continue;
        }
        if (!v->is(Json::Type::kArray)) {
          problem(where + ": series \"" + name + "\" is not an array");
          continue;
        }
        auto [it, inserted] = last_t.try_emplace(name, -1e300);
        for (const JsonPtr& pp : v->arr) {
          if (!pp->is(Json::Type::kArray) || pp->arr.size() != 2 ||
              !pp->arr[0]->is(Json::Type::kNumber) ||
              !pp->arr[1]->is(Json::Type::kNumber)) {
            problem(where + ": series \"" + name +
                    "\" point is not a [t, v] number pair");
            continue;
          }
          const double t = pp->arr[0]->num;
          if (t < it->second) {
            problem(where + ": series \"" + name +
                    "\" sample times go backwards across frames");
          }
          it->second = t;
        }
      }
    }

    if (final_frame) {
      for (const char* k : {"frames", "dropped_frames"}) {
        const Json* v = need(f, k, Json::Type::kNumber, where.c_str());
        if (v != nullptr && !is_nonneg_int(*v)) {
          problem(where + ": " + k + " is not a count");
        }
      }
      const Json* dropped =
          need(f, "dropped", Json::Type::kObject, where.c_str());
      if (dropped != nullptr) {
        for (const char* k : {"spans", "events", "points"}) {
          const Json* v = need(*dropped, k, Json::Type::kNumber, "dropped");
          if (v != nullptr && !is_nonneg_int(*v)) {
            problem(std::string("dropped.") + k + " is not a count");
          }
        }
      }
      const Json* meta = need(f, "meta", Json::Type::kObject, where.c_str());
      if (meta != nullptr) {
        for (const char* k :
             {"git", "compiler", "build_type", "telemetry_compiled",
              "hardware_threads"}) {
          need(*meta, k, Json::Type::kString, "final meta");
        }
      }
    }
  }
  if (!saw_final) problem("stream has no final frame");
  return g_errors;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: telemetry_check <telemetry.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "telemetry_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string doc = text.str();

  // Stream autodetection: a JSONL capture has a complete object on its first
  // line carrying the stream schema. A pretty-printed dump's first line ("{")
  // fails to parse alone and falls through to whole-document mode.
  {
    const std::size_t eol = doc.find('\n');
    const std::string first =
        eol == std::string::npos ? doc : doc.substr(0, eol);
    bool is_stream = false;
    try {
      const JsonPtr head = Parser(first).parse();
      const JsonPtr* schema = head->find("schema");
      is_stream = schema != nullptr && (*schema)->is(Json::Type::kString) &&
                  (*schema)->str == kStreamSchema;
    } catch (const std::exception&) {
    }
    if (is_stream) {
      std::vector<std::string> lines;
      std::istringstream ls(doc);
      std::string line;
      while (std::getline(ls, line)) {
        if (!line.empty()) lines.push_back(line);
      }
      const int errors = check_stream(lines);
      if (errors != 0) {
        std::fprintf(stderr, "telemetry_check: %s: %d schema violation(s)\n",
                     argv[1], errors);
        return 1;
      }
      std::printf("telemetry_check: %s conforms to %s (%zu frames)\n",
                  argv[1], kStreamSchema, lines.size());
      return 0;
    }
  }

  JsonPtr root;
  try {
    root = Parser(doc).parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry_check: %s: %s\n", argv[1], e.what());
    return 1;
  }
  const int errors = check(*root);
  if (errors != 0) {
    std::fprintf(stderr, "telemetry_check: %s: %d schema violation(s)\n",
                 argv[1], errors);
    return 1;
  }
  const JsonPtr* schema = root->find("schema");
  std::printf("telemetry_check: %s conforms to %s\n", argv[1],
              schema != nullptr ? (*schema)->str.c_str() : "?");
  return 0;
}
