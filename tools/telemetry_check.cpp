// telemetry_check — validates a telemetry dump against the documented
// "robustwdm-telemetry-v1" schema (DESIGN.md §8).
//
//   telemetry_check out.json        # exit 0 iff the file conforms
//
// Ships its own ~150-line recursive-descent JSON parser so the check has no
// dependencies and is honest: it parses the actual bytes, not a mental model
// of them. Validated beyond well-formedness:
//   * top-level keys: schema/compiled/enabled/counters/histograms/spans/
//     events/dropped, with the right types;
//   * counters: object of non-negative integers;
//   * histograms: unit == "ns", count == sum of bucket counts, min <= max
//     when count > 0, buckets have lo < hi and non-negative counts;
//   * spans: name (string) + thread/start_ns/dur_ns (non-negative numbers);
//   * events: name (string) + thread (number) + t (number);
//   * dropped: spans/events counts.
#include <cctype>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (objects, arrays, strings, numbers, bools,
// null). Throws std::runtime_error with an offset on malformed input.

struct Json;
using JsonPtr = std::shared_ptr<Json>;

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonPtr> arr;
  std::map<std::string, JsonPtr> obj;

  bool is(Type t) const { return type == t; }
  const JsonPtr* find(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonPtr parse() {
    JsonPtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonPtr value() {
    skip_ws();
    const char c = peek();
    auto v = std::make_shared<Json>();
    if (c == '{') {
      v->type = Json::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = string_token();
        skip_ws();
        expect(':');
        v->obj.emplace(std::move(key), value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v->type = Json::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v->arr.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v->type = Json::Type::kString;
      v->str = string_token();
      return v;
    }
    if (consume_literal("true")) {
      v->type = Json::Type::kBool;
      v->b = true;
      return v;
    }
    if (consume_literal("false")) {
      v->type = Json::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      std::size_t used = 0;
      v->num = std::stod(s_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) fail("bad number");
    } catch (const std::exception&) {
      fail("bad number");
    }
    v->type = Json::Type::kNumber;
    return v;
  }

  std::string string_token() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            // Decoded only far enough for validation; the schema emits
            // ASCII control escapes exclusively.
            out.push_back('?');
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema validation.

int g_errors = 0;

void problem(const std::string& what) {
  std::fprintf(stderr, "telemetry_check: %s\n", what.c_str());
  ++g_errors;
}

bool is_nonneg_int(const Json& v) {
  return v.is(Json::Type::kNumber) && v.num >= 0.0 &&
         v.num == static_cast<double>(static_cast<std::uint64_t>(v.num));
}

const Json* need(const Json& obj, const char* key, Json::Type type,
                 const char* where) {
  const JsonPtr* p = obj.find(key);
  if (p == nullptr) {
    problem(std::string(where) + ": missing key \"" + key + "\"");
    return nullptr;
  }
  if (!(*p)->is(type)) {
    problem(std::string(where) + ": key \"" + key + "\" has the wrong type");
    return nullptr;
  }
  return p->get();
}

void check_histogram(const std::string& name, const Json& h) {
  const std::string where = "histogram \"" + name + "\"";
  const Json* unit = need(h, "unit", Json::Type::kString, where.c_str());
  if (unit != nullptr && unit->str != "ns") problem(where + ": unit != ns");
  const Json* count = need(h, "count", Json::Type::kNumber, where.c_str());
  const Json* sum = need(h, "sum", Json::Type::kNumber, where.c_str());
  const Json* min = need(h, "min", Json::Type::kNumber, where.c_str());
  const Json* max = need(h, "max", Json::Type::kNumber, where.c_str());
  const Json* buckets = need(h, "buckets", Json::Type::kArray, where.c_str());
  for (const Json* v : {count, sum, min, max}) {
    if (v != nullptr && !is_nonneg_int(*v)) {
      problem(where + ": negative or non-integer stat");
    }
  }
  if (count != nullptr && min != nullptr && max != nullptr && count->num > 0 &&
      min->num > max->num) {
    problem(where + ": min > max on a non-empty histogram");
  }
  if (buckets == nullptr) return;
  double bucket_total = 0.0;
  for (const JsonPtr& bp : buckets->arr) {
    if (!bp->is(Json::Type::kObject)) {
      problem(where + ": bucket is not an object");
      continue;
    }
    const Json* lo = need(*bp, "lo", Json::Type::kNumber, where.c_str());
    const Json* hi = need(*bp, "hi", Json::Type::kNumber, where.c_str());
    const Json* n = need(*bp, "count", Json::Type::kNumber, where.c_str());
    if (lo != nullptr && hi != nullptr && lo->num >= hi->num) {
      problem(where + ": bucket with lo >= hi");
    }
    if (n != nullptr) {
      if (!is_nonneg_int(*n)) problem(where + ": bad bucket count");
      bucket_total += n->num;
    }
  }
  if (count != nullptr && bucket_total != count->num) {
    problem(where + ": bucket counts do not sum to count");
  }
}

int check(const Json& root) {
  if (!root.is(Json::Type::kObject)) {
    problem("top level is not an object");
    return g_errors;
  }
  const Json* schema = need(root, "schema", Json::Type::kString, "top level");
  if (schema != nullptr && schema->str != "robustwdm-telemetry-v1") {
    problem("schema is \"" + schema->str +
            "\", expected \"robustwdm-telemetry-v1\"");
  }
  need(root, "compiled", Json::Type::kBool, "top level");
  need(root, "enabled", Json::Type::kBool, "top level");

  const Json* counters =
      need(root, "counters", Json::Type::kObject, "top level");
  if (counters != nullptr) {
    for (const auto& [name, v] : counters->obj) {
      if (!is_nonneg_int(*v)) {
        problem("counter \"" + name + "\" is not a non-negative integer");
      }
    }
  }

  const Json* hists =
      need(root, "histograms", Json::Type::kObject, "top level");
  if (hists != nullptr) {
    for (const auto& [name, v] : hists->obj) {
      if (!v->is(Json::Type::kObject)) {
        problem("histogram \"" + name + "\" is not an object");
        continue;
      }
      check_histogram(name, *v);
    }
  }

  const Json* spans = need(root, "spans", Json::Type::kArray, "top level");
  if (spans != nullptr) {
    for (const JsonPtr& sp : spans->arr) {
      if (!sp->is(Json::Type::kObject)) {
        problem("span is not an object");
        continue;
      }
      need(*sp, "name", Json::Type::kString, "span");
      for (const char* k : {"thread", "start_ns", "dur_ns"}) {
        const Json* v = need(*sp, k, Json::Type::kNumber, "span");
        if (v != nullptr && !is_nonneg_int(*v)) {
          problem(std::string("span ") + k + " is negative or fractional");
        }
      }
    }
  }

  const Json* events = need(root, "events", Json::Type::kArray, "top level");
  if (events != nullptr) {
    for (const JsonPtr& ep : events->arr) {
      if (!ep->is(Json::Type::kObject)) {
        problem("event is not an object");
        continue;
      }
      need(*ep, "name", Json::Type::kString, "event");
      need(*ep, "thread", Json::Type::kNumber, "event");
      need(*ep, "t", Json::Type::kNumber, "event");
    }
  }

  const Json* dropped =
      need(root, "dropped", Json::Type::kObject, "top level");
  if (dropped != nullptr) {
    for (const char* k : {"spans", "events"}) {
      const Json* v = need(*dropped, k, Json::Type::kNumber, "dropped");
      if (v != nullptr && !is_nonneg_int(*v)) {
        problem(std::string("dropped.") + k + " is not a count");
      }
    }
  }
  return g_errors;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: telemetry_check <telemetry.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "telemetry_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  JsonPtr root;
  try {
    root = Parser(text.str()).parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry_check: %s: %s\n", argv[1], e.what());
    return 1;
  }
  const int errors = check(*root);
  if (errors != 0) {
    std::fprintf(stderr, "telemetry_check: %s: %d schema violation(s)\n",
                 argv[1], errors);
    return 1;
  }
  std::printf("telemetry_check: %s conforms to robustwdm-telemetry-v1\n",
              argv[1]);
  return 0;
}
