// wdmtop — live terminal monitor for a robustwdm telemetry stream
// (DESIGN.md §8.5). Point it at the JSONL file a running `wdmtool --stream`
// or bench process is appending to; it tails the file, folds each interval
// frame into its state, and redraws rate / gauge / percentile panels:
//
//   wdmtool simulate nsfnet --erlang 60 --duration 2000 --stream run.jsonl &
//   wdmtop run.jsonl
//
// Options:
//   --once          render the latest state once and exit (scripts, ctest)
//   --interval MS   poll period in follow mode (default 200)
//   --counters N    rows in the counter panel (default 10)
//
// Follow mode exits when the stream's final frame arrives (the producer shut
// down) or on EOF in --once mode. Output is a full-screen ANSI redraw on a
// TTY and a plain sequential dump otherwise, so piping to a file stays
// readable. Reads are line-atomic: a partially-written last line (no '\n'
// yet) is left in the file until the producer finishes it, which is why the
// publisher writes each frame with a single fwrite.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json_mini.hpp"

namespace {

using wdm::tools::json::Json;
using wdm::tools::json::JsonPtr;
using wdm::tools::json::Parser;

constexpr const char* kStreamSchema = "robustwdm-telemetry-stream-v1";

struct HistStats {
  double count = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Folded view of every frame seen so far.
struct Monitor {
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;
  std::uint64_t frames = 0;
  double last_dt_s = 0.0;  // wall-clock span of the latest interval frame
  bool finished = false;   // final frame observed
  double dropped_frames = 0.0;
  std::map<std::string, double> totals;      // counter -> cumulative sum
  std::map<std::string, double> last_delta;  // counter -> latest frame delta
  std::map<std::string, double> gauges;
  std::map<std::string, HistStats> hists;
  std::map<std::string, std::pair<double, double>> series_latest;  // (t, v)
};

double num_or(const Json& obj, const char* key, double fallback) {
  const JsonPtr* p = obj.find(key);
  return p != nullptr && (*p)->is(Json::Type::kNumber) ? (*p)->num : fallback;
}

void fold_frame(Monitor& m, const Json& f) {
  const JsonPtr* kind = f.find("kind");
  const bool final_frame = kind != nullptr &&
                           (*kind)->is(Json::Type::kString) &&
                           (*kind)->str == "final";
  const auto t_ns = static_cast<std::uint64_t>(num_or(f, "t_ns", 0.0));
  if (!final_frame) {
    m.last_dt_s = m.t_ns > 0 && t_ns > m.t_ns
                      ? static_cast<double>(t_ns - m.t_ns) / 1e9
                      : 0.0;
    ++m.frames;
  }
  m.seq = static_cast<std::uint64_t>(num_or(f, "seq", 0.0));
  m.t_ns = t_ns;

  const JsonPtr* counters = f.find("counters");
  if (counters != nullptr && (*counters)->is(Json::Type::kObject)) {
    if (!final_frame) m.last_delta.clear();
    for (const auto& [name, v] : (*counters)->obj) {
      if (!v->is(Json::Type::kNumber)) continue;
      if (final_frame) {
        m.totals[name] = v->num;  // cumulative truth supersedes the sum
      } else {
        m.totals[name] += v->num;
        m.last_delta[name] = v->num;
      }
    }
  }
  const JsonPtr* gauges = f.find("gauges");
  if (gauges != nullptr && (*gauges)->is(Json::Type::kObject)) {
    for (const auto& [name, v] : (*gauges)->obj) {
      if (v->is(Json::Type::kNumber)) m.gauges[name] = v->num;
    }
  }
  const JsonPtr* hists = f.find("histograms");
  if (hists != nullptr && (*hists)->is(Json::Type::kObject)) {
    for (const auto& [name, v] : (*hists)->obj) {
      if (!v->is(Json::Type::kObject)) continue;
      HistStats& h = m.hists[name];
      h.count = num_or(*v, "count", 0.0);
      h.p50 = num_or(*v, "p50", 0.0);
      h.p90 = num_or(*v, "p90", 0.0);
      h.p99 = num_or(*v, "p99", 0.0);
    }
  }
  const JsonPtr* series = f.find("series");
  if (series != nullptr && (*series)->is(Json::Type::kObject)) {
    for (const auto& [name, v] : (*series)->obj) {
      // Interval frames carry a bare point array; the final frame carries
      // the v2 {dropped, points} object shape.
      const Json* pts = nullptr;
      if (v->is(Json::Type::kArray)) {
        pts = v.get();
      } else if (v->is(Json::Type::kObject)) {
        const JsonPtr* pp = v->find("points");
        if (pp != nullptr && (*pp)->is(Json::Type::kArray)) pts = pp->get();
      }
      if (pts == nullptr || pts->arr.empty()) continue;
      const Json& last = *pts->arr.back();
      if (last.is(Json::Type::kArray) && last.arr.size() == 2 &&
          last.arr[0]->is(Json::Type::kNumber) &&
          last.arr[1]->is(Json::Type::kNumber)) {
        m.series_latest[name] = {last.arr[0]->num, last.arr[1]->num};
      }
    }
  }
  if (final_frame) {
    m.finished = true;
    m.dropped_frames = num_or(f, "dropped_frames", 0.0);
  }
}

/// 1234567 ns -> "1.23ms": engineers read durations, not digit strings.
std::string human_ns(double ns) {
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  }
  return buf;
}

std::string human_count(double v) {
  char buf[32];
  if (v < 1e4) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (v < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  }
  return buf;
}

void render(const Monitor& m, bool tty, int counter_rows) {
  if (tty) std::fputs("\x1b[H\x1b[J", stdout);  // home + clear
  std::printf("wdmtop — robustwdm telemetry stream   seq %llu   t %s   "
              "frames %llu   dropped %.0f%s\n",
              static_cast<unsigned long long>(m.seq),
              human_ns(static_cast<double>(m.t_ns)).c_str(),
              static_cast<unsigned long long>(m.frames), m.dropped_frames,
              m.finished ? "   [run finished]" : "");

  if (!m.gauges.empty()) {
    std::printf("\n  gauges\n");
    for (const auto& [name, v] : m.gauges) {
      std::printf("    %-48s %14.4g\n", name.c_str(), v);
    }
  }

  // Counter panel: the busiest counters this interval (by delta/s), total
  // alongside so stalls (rate 0, total high) are visible at a glance.
  if (!m.totals.empty()) {
    std::vector<std::pair<double, std::string>> by_rate;
    for (const auto& [name, d] : m.last_delta) {
      by_rate.emplace_back(m.last_dt_s > 0.0 ? d / m.last_dt_s : d, name);
    }
    std::sort(by_rate.rbegin(), by_rate.rend());
    std::printf("\n  counters (top by rate)                       "
                "      rate/s          total\n");
    int rows = 0;
    for (const auto& [rate, name] : by_rate) {
      if (rows++ >= counter_rows) break;
      const auto it = m.totals.find(name);
      std::printf("    %-48s %10s %14s\n", name.c_str(),
                  human_count(rate).c_str(),
                  human_count(it != m.totals.end() ? it->second : 0.0).c_str());
    }
    if (by_rate.empty()) std::printf("    (idle interval)\n");
  }

  if (!m.hists.empty()) {
    std::printf("\n  latency percentiles                          "
                "     p50        p90        p99      count\n");
    for (const auto& [name, h] : m.hists) {
      std::printf("    %-44s %9s  %9s  %9s %10s\n", name.c_str(),
                  human_ns(h.p50).c_str(), human_ns(h.p90).c_str(),
                  human_ns(h.p99).c_str(), human_count(h.count).c_str());
    }
  }

  if (!m.series_latest.empty()) {
    std::printf("\n  series (latest sample)                       "
                "       sim-t          value\n");
    for (const auto& [name, tv] : m.series_latest) {
      std::printf("    %-48s %10.4g %14.6g\n", name.c_str(), tv.first,
                  tv.second);
    }
  }
  std::fflush(stdout);
}

/// Consumes complete new lines past `offset`; returns false on read error.
bool drain(std::ifstream& in, std::streampos& offset, std::string& partial,
           Monitor& m, bool* folded_any) {
  in.clear();  // past-EOF flag from the previous poll
  in.seekg(offset);
  std::string chunk;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    chunk.append(buf, static_cast<std::size_t>(in.gcount()));
  }
  offset += static_cast<std::streamoff>(chunk.size());
  partial += chunk;
  std::size_t start = 0;
  for (;;) {
    const std::size_t eol = partial.find('\n', start);
    if (eol == std::string::npos) break;
    const std::string line = partial.substr(start, eol - start);
    start = eol + 1;
    if (line.empty()) continue;
    try {
      const JsonPtr frame = Parser(line).parse();
      if (frame->is(Json::Type::kObject)) {
        fold_frame(m, *frame);
        if (folded_any != nullptr) *folded_any = true;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wdmtop: skipping malformed line: %s\n", e.what());
    }
  }
  partial.erase(0, start);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  int interval_ms = 200;
  int counter_rows = 10;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wdmtop: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--once") {
      once = true;
    } else if (a == "--interval") {
      interval_ms = std::atoi(next());
    } else if (a == "--counters") {
      counter_rows = std::atoi(next());
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "wdmtop: unknown option %s\n", a.c_str());
      return 2;
    } else if (path.empty()) {
      path = a;
    } else {
      std::fprintf(stderr, "wdmtop: one stream file at a time\n");
      return 2;
    }
  }
  if (path.empty() || interval_ms <= 0 || counter_rows <= 0) {
    std::fprintf(stderr,
                 "usage: wdmtop [--once] [--interval MS] [--counters N] "
                 "<stream.jsonl>\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "wdmtop: cannot open %s\n", path.c_str());
    return 2;
  }

  const bool tty = ::isatty(::fileno(stdout)) != 0;
  Monitor m;
  std::streampos offset = 0;
  std::string partial;

  bool folded = false;
  drain(in, offset, partial, m, &folded);
  if (folded && m.seq == 0 && m.totals.empty() && m.gauges.empty()) {
    // Parsed lines but nothing stream-shaped landed: wrong file.
    std::fprintf(stderr, "wdmtop: %s does not look like a %s capture\n",
                 path.c_str(), kStreamSchema);
  }
  render(m, tty, counter_rows);
  if (once) return 0;

  while (!m.finished) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    folded = false;
    drain(in, offset, partial, m, &folded);
    if (folded) render(m, tty, counter_rows);
  }
  return 0;
}
