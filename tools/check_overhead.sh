#!/bin/sh
# check_overhead.sh — asserts the telemetry disabled-mode overhead bar (E18).
#
#   sh tools/check_overhead.sh <bench_with_telemetry> <bench_without> [bar_pct] [runs]
#
# Times both binaries (expected: the same bench built with telemetry compiled
# in but runtime-disabled, and built with -DROBUSTWDM_TELEMETRY=OFF) over
# `runs` repetitions, takes the minimum wall time of each (min-of-N is robust
# to scheduler noise), and fails if the compiled-in binary is more than
# bar_pct percent slower. Default bar: 2%, default runs: 5.
set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <bench_with_telemetry> <bench_without> [bar_pct] [runs]" >&2
  exit 2
fi

WITH="$1"
WITHOUT="$2"
BAR_PCT="${3:-2}"
RUNS="${4:-5}"

for bin in "$WITH" "$WITHOUT"; do
  if [ ! -x "$bin" ]; then
    echo "check_overhead: $bin is not executable" >&2
    exit 2
  fi
done

# Milliseconds-resolution monotonic-ish wall clock via date +%s%N (GNU) with
# a portable fallback through awk.
now_ms() {
  if date +%s%N >/dev/null 2>&1 && [ "$(date +%N)" != "N" ]; then
    echo $(( $(date +%s%N) / 1000000 ))
  else
    awk 'BEGIN { srand(); printf "%d\n", srand() * 1000 }'
  fi
}

time_one() {
  start=$(now_ms)
  "$1" --quick >/dev/null 2>&1
  end=$(now_ms)
  echo $((end - start))
}

# Interleave the two binaries (A B A B ...) rather than timing all runs of
# one then all of the other: machine-load drift then hits both arms equally
# instead of masquerading as overhead. Minimum-of-N converges to the true
# runtime as N grows (scheduler noise only ever *adds* time), so when a
# round's estimate exceeds the bar we keep accumulating minima across up to
# MAX_ROUNDS rounds before declaring failure: noise-driven excess collapses,
# a real overhead persists. An A/A control (the same binary in both arms) on
# a busy 1-core host shows ~4% single-round jitter, so a single round cannot
# resolve a 2% bar.
MAX_ROUNDS=4
with_ms=""
without_ms=""
round=0
overhead_pct=""
while [ "$round" -lt "$MAX_ROUNDS" ]; do
  round=$((round + 1))
  i=0
  while [ "$i" -lt "$RUNS" ]; do
    t=$(time_one "$WITH")
    if [ -z "$with_ms" ] || [ "$t" -lt "$with_ms" ]; then with_ms="$t"; fi
    t=$(time_one "$WITHOUT")
    if [ -z "$without_ms" ] || [ "$t" -lt "$without_ms" ]; then without_ms="$t"; fi
    i=$((i + 1))
  done
  if [ "$without_ms" -le 0 ]; then
    echo "check_overhead: baseline too fast to time; passing vacuously" >&2
    exit 0
  fi
  overhead_pct=$(awk -v w="$with_ms" -v o="$without_ms" \
    'BEGIN { printf "%.2f", 100.0 * (w - o) / o }')
  echo "check_overhead: round ${round}: min-with ${with_ms} ms," \
       "min-without ${without_ms} ms, overhead ${overhead_pct}%"
  if awk -v p="$overhead_pct" -v bar="$BAR_PCT" 'BEGIN { exit !(p <= bar) }'; then
    echo "check_overhead: OK — overhead ${overhead_pct}% within ${BAR_PCT}% bar"
    exit 0
  fi
done

echo "check_overhead: FAIL — disabled-mode overhead ${overhead_pct}%" \
     "exceeds ${BAR_PCT}% after ${MAX_ROUNDS} rounds" >&2
exit 1
