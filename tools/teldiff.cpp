// teldiff — compares two telemetry dumps and exits nonzero on regression,
// the perf gate CI runs against committed baseline dumps (DESIGN.md §8).
//
//   teldiff [options] <baseline.json> <candidate.json>
//
// Either side may also be a "robustwdm-telemetry-stream-v1" JSONL capture
// (from --stream): the comparison then gates on the stream's *final*
// cumulative frame, which carries the same counter/histogram/meta content as
// a v2 dump — so existing committed baselines gate streamed runs unchanged.
//
// Options:
//   --rel R           relative threshold for counter deltas (default 0.05)
//   --quantile-rel R  relative threshold for histogram p50/p90/p99
//                     *increases* (default 1.0 — one power-of-two bucket;
//                     shifts within a single bucket are quantization noise)
//   --gauge-abs T     also compare the "gauges" sections, firing when
//                     |candidate - baseline| > T (off unless given: gauges
//                     are instantaneous values and usually not gate-worthy)
//   --only PREFIX     compare only names starting with PREFIX (repeatable;
//                     applies to counters, gauges, and histograms)
//   --ignore PREFIX   skip names starting with PREFIX (repeatable)
//   --ignore-meta     skip the metadata compatibility check (needed when
//                     diffing dumps from different machines, e.g. CI vs. a
//                     committed baseline)
//   -v                also print every compared value, not just violations
//
// Comparison model:
//   * counters fire on relative change in EITHER direction — the counters
//     worth gating on are deterministic work measures (requests routed,
//     cache hits), where any drift means the behavior changed;
//   * histogram quantiles fire only on increases (getting faster is fine),
//     with a default threshold of one bucket because the power-of-two
//     buckets quantize to 2x steps;
//   * gauges (only with --gauge-abs) fire on absolute deviation in either
//     direction — they are end-of-run snapshots, so relative thresholds
//     against near-zero values would be meaningless;
//   * metadata must be apples-to-apples: dumps disagreeing on compiler,
//     build type, flags, telemetry compile mode, thread environment, or
//     seed are refused (exit 4) unless --ignore-meta. `git` is exempt —
//     comparing across commits is the whole point.
//
// Exit codes: 0 = within thresholds, 1 = regression, 2 = usage or I/O
// error, 3 = schema error, 4 = metadata mismatch.
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "json_mini.hpp"

namespace {

using wdm::tools::json::Json;
using wdm::tools::json::JsonPtr;
using wdm::tools::json::Parser;

struct Options {
  double rel = 0.05;
  double quantile_rel = 1.0;
  double gauge_abs = -1.0;  // < 0: gauges are not compared
  std::vector<std::string> only;
  std::vector<std::string> ignore;
  bool ignore_meta = false;
  bool verbose = false;
  std::string baseline;
  std::string candidate;
};

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool name_selected(const Options& opt, const std::string& name) {
  for (const std::string& p : opt.ignore) {
    if (starts_with(name, p)) return false;
  }
  if (opt.only.empty()) return true;
  for (const std::string& p : opt.only) {
    if (starts_with(name, p)) return true;
  }
  return false;
}

constexpr const char* kStreamSchema = "robustwdm-telemetry-stream-v1";

/// The comparison root of a JSONL stream capture is its last "final" frame
/// (cumulative counters, full histogram stats, meta — v2-dump-shaped).
JsonPtr load_stream_final(const std::string& path, const std::string& doc,
                          int* exit_code) {
  std::istringstream ls(doc);
  std::string line;
  JsonPtr final_frame;
  while (std::getline(ls, line)) {
    if (line.empty()) continue;
    JsonPtr frame;
    try {
      frame = Parser(line).parse();
    } catch (const std::exception&) {
      continue;  // telemetry_check rejects malformed lines; we just gate
    }
    if (!frame->is(Json::Type::kObject)) continue;
    const JsonPtr* kind = frame->find("kind");
    if (kind != nullptr && (*kind)->is(Json::Type::kString) &&
        (*kind)->str == "final") {
      final_frame = std::move(frame);
    }
  }
  if (final_frame == nullptr) {
    std::fprintf(stderr, "teldiff: %s: stream has no final frame\n",
                 path.c_str());
    *exit_code = 3;
  }
  return final_frame;
}

JsonPtr load(const std::string& path, int* exit_code) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "teldiff: cannot open %s\n", path.c_str());
    *exit_code = 2;
    return nullptr;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string doc = text.str();
  try {
    // Stream autodetection, same rule as telemetry_check: a complete object
    // on the first line carrying the stream schema.
    {
      const std::size_t eol = doc.find('\n');
      const std::string first =
          eol == std::string::npos ? doc : doc.substr(0, eol);
      bool is_stream = false;
      try {
        const JsonPtr head = Parser(first).parse();
        const JsonPtr* schema = head->find("schema");
        is_stream = schema != nullptr && (*schema)->is(Json::Type::kString) &&
                    (*schema)->str == kStreamSchema;
      } catch (const std::exception&) {
      }
      if (is_stream) return load_stream_final(path, doc, exit_code);
    }
    JsonPtr root = Parser(doc).parse();
    if (!root->is(Json::Type::kObject)) throw std::runtime_error("not an object");
    const JsonPtr* schema = root->find("schema");
    if (schema == nullptr || !(*schema)->is(Json::Type::kString) ||
        ((*schema)->str != "robustwdm-telemetry-v1" &&
         (*schema)->str != "robustwdm-telemetry-v2")) {
      std::fprintf(stderr, "teldiff: %s: not a robustwdm telemetry dump\n",
                   path.c_str());
      *exit_code = 3;
      return nullptr;
    }
    return root;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "teldiff: %s: %s\n", path.c_str(), e.what());
    *exit_code = 3;
    return nullptr;
  }
}

std::map<std::string, double> numbers_of(const Json& root, const char* section) {
  std::map<std::string, double> out;
  const JsonPtr* sec = root.find(section);
  if (sec == nullptr || !(*sec)->is(Json::Type::kObject)) return out;
  for (const auto& [name, v] : (*sec)->obj) {
    if (v->is(Json::Type::kNumber)) out.emplace(name, v->num);
  }
  return out;
}

/// name -> (p50, p90, p99) for every histogram in a v2 dump. v1 dumps have
/// no quantile fields; the map is simply empty then.
std::map<std::string, std::array<double, 3>> quantiles_of(const Json& root) {
  std::map<std::string, std::array<double, 3>> out;
  const JsonPtr* sec = root.find("histograms");
  if (sec == nullptr || !(*sec)->is(Json::Type::kObject)) return out;
  for (const auto& [name, v] : (*sec)->obj) {
    if (!v->is(Json::Type::kObject)) continue;
    const JsonPtr* p50 = v->find("p50");
    const JsonPtr* p90 = v->find("p90");
    const JsonPtr* p99 = v->find("p99");
    if (p50 == nullptr || p90 == nullptr || p99 == nullptr) continue;
    const JsonPtr* count = v->find("count");
    if (count != nullptr && (*count)->num == 0.0) continue;  // empty: skip
    out.emplace(name,
                std::array<double, 3>{(*p50)->num, (*p90)->num, (*p99)->num});
  }
  return out;
}

/// Meta keys that must agree for a comparison to be meaningful. `git` is
/// deliberately absent: diffing across commits is the tool's purpose.
constexpr const char* kMetaGate[] = {
    "compiler", "build_type",  "cxx_flags", "telemetry_compiled",
    "seed",     "threads_env", "hardware_threads",
};

int check_meta(const Json& base, const Json& cand) {
  const JsonPtr* bm = base.find("meta");
  const JsonPtr* cm = cand.find("meta");
  // v1 dumps carry no metadata; nothing to refuse on.
  if (bm == nullptr || cm == nullptr || !(*bm)->is(Json::Type::kObject) ||
      !(*cm)->is(Json::Type::kObject)) {
    return 0;
  }
  int mismatches = 0;
  for (const char* key : kMetaGate) {
    const JsonPtr* bv = (*bm)->find(key);
    const JsonPtr* cv = (*cm)->find(key);
    if (bv == nullptr || cv == nullptr) continue;  // absent on a side: pass
    if (!(*bv)->is(Json::Type::kString) || !(*cv)->is(Json::Type::kString)) {
      continue;
    }
    if ((*bv)->str != (*cv)->str) {
      std::fprintf(stderr,
                   "teldiff: meta mismatch on \"%s\": baseline \"%s\" vs "
                   "candidate \"%s\"\n",
                   key, (*bv)->str.c_str(), (*cv)->str.c_str());
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "teldiff: refusing apples-to-oranges comparison (%d meta "
                 "mismatch(es)); pass --ignore-meta to override\n",
                 mismatches);
    return 4;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "teldiff: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--rel") {
      opt.rel = std::stod(next());
    } else if (a == "--quantile-rel") {
      opt.quantile_rel = std::stod(next());
    } else if (a == "--gauge-abs") {
      opt.gauge_abs = std::stod(next());
    } else if (a == "--only") {
      opt.only.emplace_back(next());
    } else if (a == "--ignore") {
      opt.ignore.emplace_back(next());
    } else if (a == "--ignore-meta") {
      opt.ignore_meta = true;
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "teldiff: unknown option %s\n", a.c_str());
      return 2;
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2 || opt.rel < 0.0 || opt.quantile_rel < 0.0) {
    std::fprintf(stderr,
                 "usage: teldiff [--rel R] [--quantile-rel R] [--gauge-abs T]"
                 " [--only PREFIX] [--ignore PREFIX] [--ignore-meta] [-v]"
                 " <baseline.json|.jsonl> <candidate.json|.jsonl>\n");
    return 2;
  }
  opt.baseline = positional[0];
  opt.candidate = positional[1];

  int exit_code = 0;
  const JsonPtr base = load(opt.baseline, &exit_code);
  if (base == nullptr) return exit_code;
  const JsonPtr cand = load(opt.candidate, &exit_code);
  if (cand == nullptr) return exit_code;

  if (!opt.ignore_meta) {
    const int rc = check_meta(*base, *cand);
    if (rc != 0) return rc;
  }

  int regressions = 0;
  int compared = 0;

  // Counters: relative change in either direction.
  const auto bc = numbers_of(*base, "counters");
  const auto cc = numbers_of(*cand, "counters");
  for (const auto& [name, bv] : bc) {
    if (!name_selected(opt, name)) continue;
    const auto it = cc.find(name);
    const double cv = it != cc.end() ? it->second : 0.0;
    if (it == cc.end() && bv == 0.0) continue;
    ++compared;
    const double rel = std::fabs(cv - bv) / std::max(bv, 1.0);
    const bool bad = rel > opt.rel;
    if (bad || opt.verbose) {
      std::printf("%s counter %-44s %14.0f -> %14.0f (%+.2f%%)\n",
                  bad ? "FAIL" : "  ok", name.c_str(), bv, cv, 100.0 * rel);
    }
    if (bad) ++regressions;
  }
  if (opt.verbose) {
    for (const auto& [name, cv] : cc) {
      if (name_selected(opt, name) && bc.find(name) == bc.end()) {
        std::printf(" new counter %-44s %30.0f\n", name.c_str(), cv);
      }
    }
  }

  // Gauges: absolute deviation, either direction, only when asked for.
  if (opt.gauge_abs >= 0.0) {
    const auto bg = numbers_of(*base, "gauges");
    const auto cg = numbers_of(*cand, "gauges");
    for (const auto& [name, bv] : bg) {
      if (!name_selected(opt, name)) continue;
      const auto it = cg.find(name);
      const double cv = it != cg.end() ? it->second : 0.0;
      ++compared;
      const double dev = std::fabs(cv - bv);
      const bool bad = dev > opt.gauge_abs;
      if (bad || opt.verbose) {
        std::printf("%s gauge   %-44s %14.4g -> %14.4g (|d|=%.4g)\n",
                    bad ? "FAIL" : "  ok", name.c_str(), bv, cv, dev);
      }
      if (bad) ++regressions;
    }
  }

  // Histogram quantiles: increases only.
  const auto bq = quantiles_of(*base);
  const auto cq = quantiles_of(*cand);
  static constexpr const char* kQNames[3] = {"p50", "p90", "p99"};
  for (const auto& [name, bvals] : bq) {
    if (!name_selected(opt, name)) continue;
    const auto it = cq.find(name);
    if (it == cq.end()) continue;  // absent or empty in the candidate
    for (int q = 0; q < 3; ++q) {
      const double bv = bvals[q];
      const double cv = it->second[q];
      ++compared;
      const double rel = (cv - bv) / std::max(bv, 1.0);  // signed: slower > 0
      const bool bad = rel > opt.quantile_rel;
      if (bad || opt.verbose) {
        std::printf("%s %s %-40s %14.0f -> %14.0f ns (%+.2f%%)\n",
                    bad ? "FAIL" : "  ok", kQNames[q], name.c_str(), bv, cv,
                    100.0 * rel);
      }
      if (bad) ++regressions;
    }
  }

  std::printf(
      "teldiff: %d value(s) compared, %d regression(s) (--rel %.3g, "
      "--quantile-rel %.3g)\n",
      compared, regressions, opt.rel, opt.quantile_rel);
  return regressions > 0 ? 1 : 0;
}
