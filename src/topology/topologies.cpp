#include "topology/topologies.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace wdm::topo {

namespace {

double dist(const std::pair<double, double>& a,
            const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

/// Assembles a Topology from an undirected edge list, adding both
/// orientations and wiring reverse_of.
Topology assemble(std::string name,
                  std::vector<std::pair<double, double>> coords,
                  const std::vector<std::pair<int, int>>& duplex) {
  Topology t;
  t.name = std::move(name);
  t.coords = std::move(coords);
  t.g = graph::Digraph(static_cast<graph::NodeId>(t.coords.size()));
  for (const auto& [u, v] : duplex) {
    WDM_CHECK(u != v);
    const double len = dist(t.coords[static_cast<std::size_t>(u)],
                            t.coords[static_cast<std::size_t>(v)]);
    const graph::EdgeId e1 = t.g.add_edge(u, v);
    const graph::EdgeId e2 = t.g.add_edge(v, u);
    t.length.push_back(len);
    t.length.push_back(len);
    t.reverse_of.push_back(e2);
    t.reverse_of.push_back(e1);
  }
  return t;
}

}  // namespace

Topology nsfnet() {
  // Node order: WA, CA1, CA2, UT, CO, TX, NE, IL, PA, GA, MI, NY, NJ, MD.
  // Coordinates are rough longitude/latitude projections (arbitrary units).
  std::vector<std::pair<double, double>> coords = {
      {0.5, 8.5},  {0.0, 5.0},  {1.0, 3.0},  {3.0, 6.5},  {5.0, 6.0},
      {6.0, 2.0},  {7.0, 6.5},  {9.0, 6.8},  {11.5, 6.2}, {10.5, 2.5},
      {10.0, 7.5}, {13.0, 7.0}, {12.5, 6.0}, {12.0, 5.2},
  };
  // The 21-link NSFNET T1 backbone as used throughout the RWA literature.
  const std::vector<std::pair<int, int>> links = {
      {0, 1}, {0, 2},  {0, 7},  {1, 2},  {1, 3},   {2, 5},   {3, 4},
      {3, 10}, {4, 5},  {4, 6},  {5, 9},  {5, 13},  {6, 7},   {7, 8},
      {8, 9}, {8, 11}, {8, 12}, {10, 11}, {10, 12}, {11, 13}, {12, 13},
  };
  return assemble("nsfnet14", std::move(coords), links);
}

Topology arpanet20() {
  // A 20-node, 31-duplex-link continental mesh in the shape used by
  // survivability studies of the period (average degree ~3.1).
  std::vector<std::pair<double, double>> coords;
  coords.reserve(20);
  for (int i = 0; i < 20; ++i) {
    const double ang = 2.0 * 3.14159265358979 * i / 20.0;
    const double r = (i % 2 == 0) ? 1.0 : 0.72;
    coords.emplace_back(r * std::cos(ang), r * std::sin(ang));
  }
  const std::vector<std::pair<int, int>> links = {
      {0, 1},  {1, 2},   {2, 3},   {3, 4},   {4, 5},   {5, 6},   {6, 7},
      {7, 8},  {8, 9},   {9, 10},  {10, 11}, {11, 12}, {12, 13}, {13, 14},
      {14, 15}, {15, 16}, {16, 17}, {17, 18}, {18, 19}, {19, 0},  {0, 10},
      {1, 8},  {2, 12},  {3, 15},  {4, 13},  {5, 17},  {6, 16},  {7, 19},
      {9, 18}, {11, 19}, {14, 2},
  };
  return assemble("arpanet20", std::move(coords), links);
}

Topology eon19() {
  // European Optical Network core: 19 cities, 37 duplex links (the EON
  // reference mesh used in pan-European WDM studies).
  std::vector<std::pair<double, double>> coords = {
      {-9.1, 38.7},  // 0 Lisbon
      {-3.7, 40.4},  // 1 Madrid
      {2.2, 41.4},   // 2 Barcelona (stand-in for the Iberian ring)
      {-0.1, 51.5},  // 3 London
      {2.3, 48.9},   // 4 Paris
      {4.4, 50.8},   // 5 Brussels
      {4.9, 52.4},   // 6 Amsterdam
      {8.7, 50.1},   // 7 Frankfurt
      {7.4, 46.9},   // 8 Bern
      {9.2, 45.5},   // 9 Milan
      {12.5, 41.9},  // 10 Rome
      {16.4, 48.2},  // 11 Vienna
      {14.4, 50.1},  // 12 Prague
      {13.4, 52.5},  // 13 Berlin
      {12.6, 55.7},  // 14 Copenhagen
      {18.1, 59.3},  // 15 Stockholm
      {24.9, 60.2},  // 16 Helsinki
      {21.0, 52.2},  // 17 Warsaw
      {19.1, 47.5},  // 18 Budapest
  };
  const std::vector<std::pair<int, int>> links = {
      {0, 1},  {0, 3},   {1, 2},   {1, 4},   {2, 9},   {2, 4},   {3, 4},
      {3, 6},  {3, 14},  {4, 5},   {4, 8},   {5, 6},   {5, 7},   {6, 7},
      {6, 13}, {7, 8},   {7, 12},  {7, 13},  {8, 9},   {9, 10},  {9, 11},
      {10, 11}, {10, 18}, {11, 12}, {11, 18}, {12, 13}, {12, 17}, {13, 14},
      {13, 17}, {14, 15}, {15, 16}, {15, 17}, {16, 17}, {17, 18}, {14, 16},
      {1, 3},  {8, 10},
  };
  return assemble("eon19", std::move(coords), links);
}

Topology usnet24() {
  // 24-node US nationwide mesh (USNET), 43 duplex links — the larger US
  // reference topology of survivable-WDM studies.
  std::vector<std::pair<double, double>> coords = {
      {0.5, 7.0},   {1.0, 4.5},  {1.5, 2.0},  {3.0, 7.5},  {3.5, 5.0},
      {4.0, 2.5},   {5.5, 8.0},  {6.0, 5.5},  {6.5, 3.0},  {7.0, 1.0},
      {8.0, 7.0},   {8.5, 4.5},  {9.0, 2.0},  {10.0, 8.0}, {10.5, 5.5},
      {11.0, 3.0},  {11.5, 1.0}, {12.5, 7.5}, {13.0, 5.0}, {13.5, 2.5},
      {14.5, 8.0},  {15.0, 6.0}, {15.5, 4.0}, {16.0, 2.0},
  };
  const std::vector<std::pair<int, int>> links = {
      {0, 1},   {0, 3},   {1, 2},   {1, 4},   {2, 5},   {3, 4},   {3, 6},
      {4, 5},   {4, 7},   {5, 8},   {5, 9},   {6, 7},   {6, 10},  {7, 8},
      {7, 11},  {8, 9},   {8, 12},  {9, 12},  {10, 11}, {10, 13}, {11, 12},
      {11, 14}, {12, 15}, {13, 14}, {13, 17}, {14, 15}, {14, 18}, {15, 16},
      {15, 19}, {16, 19}, {17, 18}, {17, 20}, {18, 19}, {18, 21}, {19, 22},
      {20, 21}, {21, 22}, {22, 23}, {19, 23}, {2, 9},   {16, 23}, {6, 13},
      {20, 17},
  };
  return assemble("usnet24", std::move(coords), links);
}

Topology torus(int rows, int cols) {
  WDM_CHECK(rows >= 3 && cols >= 3);
  std::vector<std::pair<double, double>> coords;
  std::vector<std::pair<int, int>> links;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      coords.emplace_back(static_cast<double>(c), static_cast<double>(r));
      const int id = r * cols + c;
      links.emplace_back(id, r * cols + (c + 1) % cols);
      links.emplace_back(id, ((r + 1) % rows) * cols + c);
    }
  }
  return assemble("torus" + std::to_string(rows) + "x" + std::to_string(cols),
                  std::move(coords), links);
}

Topology ring(int n) {
  WDM_CHECK(n >= 3);
  std::vector<std::pair<double, double>> coords;
  coords.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * 3.14159265358979 * i / n;
    coords.emplace_back(std::cos(ang), std::sin(ang));
  }
  std::vector<std::pair<int, int>> links;
  for (int i = 0; i < n; ++i) links.emplace_back(i, (i + 1) % n);
  return assemble("ring" + std::to_string(n), std::move(coords), links);
}

Topology grid(int rows, int cols) {
  WDM_CHECK(rows >= 2 && cols >= 2);
  std::vector<std::pair<double, double>> coords;
  std::vector<std::pair<int, int>> links;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      coords.emplace_back(static_cast<double>(c), static_cast<double>(r));
      const int id = r * cols + c;
      if (c + 1 < cols) links.emplace_back(id, id + 1);
      if (r + 1 < rows) links.emplace_back(id, id + cols);
    }
  }
  return assemble("grid" + std::to_string(rows) + "x" + std::to_string(cols),
                  std::move(coords), links);
}

Topology complete(int n) {
  WDM_CHECK(n >= 2);
  std::vector<std::pair<double, double>> coords;
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * 3.14159265358979 * i / n;
    coords.emplace_back(std::cos(ang), std::sin(ang));
  }
  std::vector<std::pair<int, int>> links;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) links.emplace_back(i, j);
  }
  return assemble("k" + std::to_string(n), std::move(coords), links);
}

Topology random_connected(int n, int extra_links, support::Rng& rng) {
  WDM_CHECK(n >= 2);
  WDM_CHECK(extra_links >= 0);
  std::vector<std::pair<double, double>> coords;
  for (int i = 0; i < n; ++i) {
    coords.emplace_back(rng.uniform(), rng.uniform());
  }
  // Random spanning tree: attach each node to a random earlier node under a
  // random permutation.
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(std::span<int>(perm));
  std::vector<std::pair<int, int>> links;
  auto key = [n](int a, int b) {
    return static_cast<long long>(std::min(a, b)) * n + std::max(a, b);
  };
  std::vector<long long> used;
  for (int i = 1; i < n; ++i) {
    const int a = perm[static_cast<std::size_t>(i)];
    const int b =
        perm[static_cast<std::size_t>(rng.uniform_int(0, i - 1))];
    links.emplace_back(a, b);
    used.push_back(key(a, b));
  }
  std::sort(used.begin(), used.end());
  const long long max_extra =
      static_cast<long long>(n) * (n - 1) / 2 - static_cast<long long>(links.size());
  int to_add = static_cast<int>(std::min<long long>(extra_links, max_extra));
  while (to_add > 0) {
    const int a = static_cast<int>(rng.uniform_int(0, n - 1));
    const int b = static_cast<int>(rng.uniform_int(0, n - 1));
    if (a == b) continue;
    const long long k = key(a, b);
    if (std::binary_search(used.begin(), used.end(), k)) continue;
    used.insert(std::lower_bound(used.begin(), used.end(), k), k);
    links.emplace_back(a, b);
    --to_add;
  }
  return assemble("rand" + std::to_string(n), std::move(coords), links);
}

Topology waxman(int n, double alpha, double beta, support::Rng& rng) {
  WDM_CHECK(n >= 2);
  WDM_CHECK(alpha > 0.0 && beta > 0.0);
  std::vector<std::pair<double, double>> coords;
  for (int i = 0; i < n; ++i) {
    coords.emplace_back(rng.uniform(), rng.uniform());
  }
  const double d_max = std::sqrt(2.0);
  std::vector<std::pair<int, int>> links;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = dist(coords[static_cast<std::size_t>(i)],
                            coords[static_cast<std::size_t>(j)]);
      if (rng.bernoulli(alpha * std::exp(-d / (beta * d_max)))) {
        links.emplace_back(i, j);
      }
    }
  }
  // Overlay a spanning chain through a random permutation so the graph is
  // always connected regardless of the draw. Dedup against the drawn links
  // through a sorted key vector (as random_connected does) — the linear scan
  // this replaces made the overlay O(n·m), dominating generation at n >= 500.
  auto key = [n](int a, int b) {
    return static_cast<long long>(std::min(a, b)) * n + std::max(a, b);
  };
  std::vector<long long> used;
  used.reserve(links.size());
  for (const auto& [a, b] : links) used.push_back(key(a, b));
  std::sort(used.begin(), used.end());
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(std::span<int>(perm));
  for (int i = 0; i + 1 < n; ++i) {
    const int a = perm[static_cast<std::size_t>(i)];
    const int b = perm[static_cast<std::size_t>(i + 1)];
    if (!std::binary_search(used.begin(), used.end(), key(a, b))) {
      links.emplace_back(a, b);
    }
  }
  return assemble("waxman" + std::to_string(n), std::move(coords), links);
}

Topology geo_grid(int rows, int cols, double chord_p, support::Rng& rng) {
  WDM_CHECK(rows >= 2 && cols >= 2);
  WDM_CHECK(chord_p >= 0.0 && chord_p <= 1.0);
  std::vector<std::pair<double, double>> coords;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      coords.emplace_back(static_cast<double>(c), static_cast<double>(r));
    }
  }
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<std::pair<int, int>> links;
  // Backbone grid — present unconditionally, so the result is connected for
  // every draw.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) links.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  // Probabilistic diagonal chords: each unit cell gains one of its two
  // diagonals with probability chord_p (direction chosen by a fair coin),
  // modelling the express links real continental backbones overlay on a
  // regional mesh.
  for (int r = 0; r + 1 < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c) {
      if (!rng.bernoulli(chord_p)) continue;
      if (rng.bernoulli(0.5)) {
        links.emplace_back(id(r, c), id(r + 1, c + 1));
      } else {
        links.emplace_back(id(r, c + 1), id(r + 1, c));
      }
    }
  }
  return assemble(
      "geo" + std::to_string(rows) + "x" + std::to_string(cols),
      std::move(coords), links);
}

}  // namespace wdm::topo
