// Physical wide-area topologies: the canonical research networks the WDM
// routing literature of the paper's period evaluates on (NSFNET T1, an
// ARPANET-class mesh, the European Optical Network), plus synthetic families
// (rings, grids, random, Waxman geometric) for scaling sweeps.
//
// A Topology is undirected fiber plant described as a directed graph with
// both orientations of every duplex fiber; `reverse_of[e]` links the two
// orientations (a fiber cut fails both).
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace wdm::topo {

struct Topology {
  std::string name;
  graph::Digraph g;
  /// Euclidean node coordinates (arbitrary units); synthetic families place
  /// nodes on a unit square or circle.
  std::vector<std::pair<double, double>> coords;
  /// Per-directed-edge fiber length (symmetric across orientations).
  std::vector<double> length;
  /// The opposite orientation of each directed edge.
  std::vector<graph::EdgeId> reverse_of;

  int num_nodes() const { return g.num_nodes(); }
  int num_duplex_links() const { return g.num_edges() / 2; }
};

/// NSFNET T1 backbone: 14 nodes, 21 duplex links — the workhorse topology of
/// 1990s/2000s WDM evaluations.
Topology nsfnet();

/// ARPANET-class continental mesh: 20 nodes, 31 duplex links.
Topology arpanet20();

/// European Optical Network (EON) core: 19 nodes, 37 duplex links.
Topology eon19();

/// US nationwide mesh (USNET-class): 24 nodes, 43 duplex links.
Topology usnet24();

/// rows × cols torus (grid with wraparound) — the regular high-girth
/// family for scaling sweeps; every node has degree 4.
Topology torus(int rows, int cols);

/// Bidirectional ring of n nodes (n duplex links).
Topology ring(int n);

/// rows × cols grid mesh.
Topology grid(int rows, int cols);

/// Complete graph on n nodes.
Topology complete(int n);

/// Random connected graph: a random spanning tree plus `extra_links`
/// additional distinct random duplex links. Deterministic given the RNG.
Topology random_connected(int n, int extra_links, support::Rng& rng);

/// Waxman geometric random graph on the unit square: P(u,v) =
/// alpha * exp(-d(u,v) / (beta * d_max)). The probabilistic draw happens
/// exactly once (never re-drawn); connectivity is guaranteed by overlaying
/// a spanning chain through a random node permutation, skipping chain hops
/// the draw already produced. Deterministic given the RNG.
Topology waxman(int n, double alpha, double beta, support::Rng& rng);

/// Geographic grid mesh: a rows × cols backbone grid plus probabilistic
/// diagonal chords (each unit cell independently gains one of its two
/// diagonals with probability `chord_p`). Connected by construction
/// (the grid backbone is always present); deterministic given the RNG.
/// The regular-with-shortcuts family for continental-scale sweeps (E22).
Topology geo_grid(int rows, int cols, double chord_p, support::Rng& rng);

}  // namespace wdm::topo
