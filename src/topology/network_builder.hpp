// Turns a physical Topology into a WdmNetwork: wavelength inventory,
// per-(link, λ) traversal costs, and per-node conversion capability — the
// knobs §2's model exposes, each with the variants the benches sweep.
#pragma once

#include "support/rng.hpp"
#include "topology/topologies.hpp"
#include "wdm/network.hpp"

namespace wdm::topo {

enum class CostModel {
  /// w(e, λ) = 1 for all λ — hop counting; satisfies §3.3 assumption (ii).
  kUnit,
  /// w(e, λ) = fiber length (same for all λ); satisfies assumption (ii).
  kLength,
  /// w(e, λ) drawn uniformly from [cost_lo, cost_hi] per link, identical
  /// across λ; satisfies assumption (ii).
  kRandomPerLink,
  /// Independent draw per (link, λ) — deliberately violates assumption (ii)
  /// for the E2 "outside the assumptions" arm.
  kRandomPerWavelength,
};

enum class ConversionModel {
  /// Full conversion, uniform cost (assumption (i)).
  kFullUniform,
  /// No conversion anywhere (the Lemma 1 / lightpath regime).
  kNone,
  /// Limited-range conversion (range and per-step cost below).
  kLimitedRange,
  /// Full conversion with per-node uniform cost drawn from
  /// [conv_cost_lo, conv_cost_hi].
  kFullRandomPerNode,
};

struct NetworkOptions {
  int num_wavelengths = 8;
  /// Probability each wavelength is installed per link (1.0 = all). Links
  /// always keep at least one wavelength.
  double install_probability = 1.0;

  CostModel cost_model = CostModel::kUnit;
  double cost_lo = 1.0;
  double cost_hi = 10.0;

  ConversionModel conversion_model = ConversionModel::kFullUniform;
  /// Uniform conversion cost (kFullUniform) / per-step cost (kLimitedRange).
  double conversion_cost = 0.5;
  int conversion_range = 2;
  double conv_cost_lo = 0.0;
  double conv_cost_hi = 1.0;

  /// Scales kLength fiber lengths into costs.
  double length_cost_scale = 1.0;
};

/// Builds the WDM network. Deterministic given the RNG state.
net::WdmNetwork build_network(const Topology& topo, const NetworkOptions& opt,
                              support::Rng& rng);

/// Convenience for tests: NSFNET with all wavelengths installed, unit costs,
/// full conversion at `conversion_cost`.
net::WdmNetwork nsfnet_network(int num_wavelengths, double conversion_cost);

/// Checks the Theorem 2 assumption: every node's max conversion cost is no
/// greater than the min traversal cost of any link incident to it.
bool satisfies_theorem2_assumption(const net::WdmNetwork& net);

}  // namespace wdm::topo
