#include "topology/network_builder.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace wdm::topo {

namespace {

net::ConversionTable make_conversion(const NetworkOptions& opt,
                                     support::Rng& rng) {
  switch (opt.conversion_model) {
    case ConversionModel::kFullUniform:
      return net::ConversionTable::full(opt.num_wavelengths,
                                        opt.conversion_cost);
    case ConversionModel::kNone:
      return net::ConversionTable::none(opt.num_wavelengths);
    case ConversionModel::kLimitedRange:
      return net::ConversionTable::limited_range(
          opt.num_wavelengths, opt.conversion_range, opt.conversion_cost);
    case ConversionModel::kFullRandomPerNode:
      return net::ConversionTable::full(
          opt.num_wavelengths, rng.uniform(opt.conv_cost_lo, opt.conv_cost_hi));
  }
  WDM_CHECK(false);
}

}  // namespace

net::WdmNetwork build_network(const Topology& topo, const NetworkOptions& opt,
                              support::Rng& rng) {
  WDM_CHECK(opt.num_wavelengths >= 1);
  WDM_CHECK(opt.install_probability > 0.0 && opt.install_probability <= 1.0);
  net::WdmNetwork network(0, opt.num_wavelengths);
  for (graph::NodeId v = 0; v < topo.g.num_nodes(); ++v) {
    network.add_node(make_conversion(opt, rng));
  }

  const int W = opt.num_wavelengths;
  std::vector<double> costs(static_cast<std::size_t>(W), 1.0);
  for (graph::EdgeId e = 0; e < topo.g.num_edges(); ++e) {
    // Wavelength inventory; keep at least one channel.
    net::WavelengthSet installed;
    if (opt.install_probability >= 1.0) {
      installed = net::WavelengthSet::all(W);
    } else {
      for (net::Wavelength l = 0; l < W; ++l) {
        if (rng.bernoulli(opt.install_probability)) installed.insert(l);
      }
      if (installed.empty()) {
        installed.insert(
            static_cast<net::Wavelength>(rng.uniform_int(0, W - 1)));
      }
    }

    switch (opt.cost_model) {
      case CostModel::kUnit:
        std::fill(costs.begin(), costs.end(), 1.0);
        break;
      case CostModel::kLength:
        std::fill(costs.begin(), costs.end(),
                  std::max(1e-9, topo.length[static_cast<std::size_t>(e)] *
                                     opt.length_cost_scale));
        break;
      case CostModel::kRandomPerLink: {
        // Symmetric across the duplex pair would require coordination; per
        // directed edge is fine for routing studies.
        const double c = rng.uniform(opt.cost_lo, opt.cost_hi);
        std::fill(costs.begin(), costs.end(), c);
        break;
      }
      case CostModel::kRandomPerWavelength:
        for (double& c : costs) c = rng.uniform(opt.cost_lo, opt.cost_hi);
        break;
    }
    network.add_link(topo.g.tail(e), topo.g.head(e), installed, costs);
  }
  return network;
}

net::WdmNetwork nsfnet_network(int num_wavelengths, double conversion_cost) {
  support::Rng rng(42);
  NetworkOptions opt;
  opt.num_wavelengths = num_wavelengths;
  opt.cost_model = CostModel::kUnit;
  opt.conversion_model = ConversionModel::kFullUniform;
  opt.conversion_cost = conversion_cost;
  return build_network(nsfnet(), opt, rng);
}

bool satisfies_theorem2_assumption(const net::WdmNetwork& net) {
  const auto& g = net.graph();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double conv = net.conversion(v).max_cost();
    auto check_edge = [&](graph::EdgeId e) {
      net::WavelengthSet inst = net.installed(e);
      bool ok = true;
      inst.for_each([&](net::Wavelength l) {
        if (net.weight(e, l) < conv) ok = false;
      });
      return ok;
    };
    for (graph::EdgeId e : g.in_edges(v)) {
      if (!check_edge(e)) return false;
    }
    for (graph::EdgeId e : g.out_edges(v)) {
      if (!check_edge(e)) return false;
    }
  }
  return true;
}

}  // namespace wdm::topo
