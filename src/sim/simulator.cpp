#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "rwa/layered_graph.hpp"
#include "rwa/parallel_batch.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::sim {

std::vector<double> hotspot_matrix(net::NodeId num_nodes,
                                   const std::vector<net::NodeId>& hotspots,
                                   double hot_factor) {
  WDM_CHECK(hot_factor >= 0.0);
  const auto n = static_cast<std::size_t>(num_nodes);
  std::vector<std::uint8_t> hot(n, 0);
  for (net::NodeId h : hotspots) {
    WDM_CHECK(h >= 0 && h < num_nodes);
    hot[static_cast<std::size_t>(h)] = 1;
  }
  std::vector<double> w(n * n, 1.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      if (s == t) {
        w[s * n + t] = 0.0;
      } else if (hot[s] || hot[t]) {
        w[s * n + t] = hot_factor;
      }
    }
  }
  return w;
}

std::vector<double> gravity_matrix(const topo::Topology& topology) {
  const auto n = static_cast<std::size_t>(topology.num_nodes());
  std::vector<double> w(n * n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      if (s == t) continue;
      const double dx = topology.coords[s].first - topology.coords[t].first;
      const double dy = topology.coords[s].second - topology.coords[t].second;
      w[s * n + t] = 1.0 / (1.0 + dx * dx + dy * dy);
    }
  }
  return w;
}

Simulator::Simulator(net::WdmNetwork network, const rwa::Router& router,
                     SimOptions options)
    : net_(std::move(network)), router_(router), opt_(std::move(options)),
      rng_(opt_.seed) {
  WDM_CHECK(opt_.duration > 0.0);
  WDM_CHECK(opt_.traffic.arrival_rate > 0.0);
  WDM_CHECK(opt_.traffic.mean_holding > 0.0);
  WDM_CHECK(net_.num_nodes() >= 2);
  WDM_CHECK(opt_.reverse_of.empty() ||
            opt_.reverse_of.size() == static_cast<std::size_t>(net_.num_links()));

  // Nonuniform traffic: precompute the pair CDF once.
  if (!opt_.traffic.pair_weight.empty()) {
    const auto n = static_cast<std::size_t>(net_.num_nodes());
    WDM_CHECK_MSG(opt_.traffic.pair_weight.size() == n * n,
                  "pair_weight must be an n x n matrix");
    double total = 0.0;
    pair_cdf_.reserve(n * n);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t t = 0; t < n; ++t) {
        const double w = (s == t) ? 0.0 : opt_.traffic.pair_weight[s * n + t];
        WDM_CHECK_MSG(w >= 0.0, "pair weights must be nonnegative");
        total += w;
        pair_cdf_.push_back(total);
      }
    }
    WDM_CHECK_MSG(total > 0.0, "pair_weight has no positive off-diagonal");
    for (double& c : pair_cdf_) c /= total;
  }

  if (opt_.batching.interval > 0.0) {
    rwa::ParallelBatchOptions bo;
    bo.threads = opt_.batching.threads;
    bo.window = opt_.batching.window;
    bo.max_speculation_retries = opt_.batching.max_speculation_retries;
    batch_engine_ = std::make_unique<rwa::ParallelBatchEngine>(bo);
  }

  // Duplex inventory for the failure process. Without reverse pairing each
  // directed edge is its own failure unit.
  if (opt_.reverse_of.empty()) {
    for (graph::EdgeId e = 0; e < net_.num_links(); ++e) {
      duplex_.emplace_back(e, e);
    }
  } else {
    for (graph::EdgeId e = 0; e < net_.num_links(); ++e) {
      const graph::EdgeId r = opt_.reverse_of[static_cast<std::size_t>(e)];
      if (e < r) duplex_.emplace_back(e, r);
    }
  }
  fail_depth_.assign(static_cast<std::size_t>(net_.num_links()), 0);
}

Simulator::~Simulator() = default;

void Simulator::schedule_arrival(double now) {
  const double t = now + rng_.exponential(opt_.traffic.arrival_rate);
  if (t <= opt_.duration) {
    queue_.push(Event{t, EventType::kArrival, 0});
  }
}

bool Simulator::path_uses(const net::Semilightpath& p,
                          std::span<const graph::EdgeId> cut) const {
  return p.found &&
         std::any_of(p.hops.begin(), p.hops.end(), [&](const net::Hop& h) {
           return std::find(cut.begin(), cut.end(), h.edge) != cut.end();
         });
}

void Simulator::fail_link(graph::EdgeId e) {
  if (++fail_depth_[static_cast<std::size_t>(e)] == 1) {
    net_.set_link_failed(e, true);
  }
}

void Simulator::repair_link(graph::EdgeId e) {
  WDM_CHECK_MSG(fail_depth_[static_cast<std::size_t>(e)] > 0,
                "repair of a link that is not failed");
  if (--fail_depth_[static_cast<std::size_t>(e)] == 0) {
    net_.set_link_failed(e, false);
  }
}

void Simulator::finish_connection(const Connection& c, double now,
                                  bool completed) {
  const double requested = c.holding;
  if (requested <= 0.0) return;  // no service was requested (defensive)
  double delivered =
      completed ? requested - c.downtime : (now - c.arrival) - c.downtime;
  delivered = std::clamp(delivered, 0.0, requested);
  metrics_.availability.add(delivered / requested);
  metrics_.service_requested += requested;
  metrics_.service_delivered += delivered;
}

void Simulator::release_connection(Connection& c) {
  c.primary.release_in(net_);
  if (c.has_backup) c.backup.release_in(net_);
  c.has_backup = false;
}

std::pair<net::NodeId, net::NodeId> Simulator::draw_pair() {
  const auto n = static_cast<std::int64_t>(net_.num_nodes());
  if (pair_cdf_.empty()) {
    const auto s = static_cast<net::NodeId>(rng_.uniform_int(0, n - 1));
    net::NodeId t = s;
    while (t == s) t = static_cast<net::NodeId>(rng_.uniform_int(0, n - 1));
    return {s, t};
  }
  while (true) {
    const double u = rng_.uniform();
    auto it = std::lower_bound(pair_cdf_.begin(), pair_cdf_.end(), u);
    if (it == pair_cdf_.end()) --it;  // u at the numeric top edge
    const auto idx =
        static_cast<std::size_t>(std::distance(pair_cdf_.begin(), it));
    const auto s = static_cast<net::NodeId>(idx / static_cast<std::size_t>(n));
    const auto t = static_cast<net::NodeId>(idx % static_cast<std::size_t>(n));
    // u == 0 can land on a zero-mass slot (e.g. the diagonal); redraw.
    if (s != t) return {s, t};
  }
}

void Simulator::sample_load(double now) {
  const double rho = net_.network_load();
  metrics_.network_load.add(rho);
  metrics_.mean_link_load.add(net_.mean_load());
  metrics_.peak_load = std::max(metrics_.peak_load, rho);
  if (opt_.record_load_series) metrics_.load_series.emplace_back(now, rho);
  update_gauges(now);
}

/// Live-state gauges for the streaming publisher: how many lightpaths are up
/// right now and the realized offered rate (requests per sim-time unit) so
/// far. Updated on every provisioning/teardown event — unlike the
/// `sim.series.*` samples these track wall-clock "now", which is the point
/// of a gauge.
void Simulator::update_gauges(double now) {
  WDM_TEL_GAUGE_SET("sim.gauge.live_connections", live_.size());
  if (now > 0.0) {
    WDM_TEL_GAUGE_SET("sim.gauge.offered_rate",
                      static_cast<double>(metrics_.offered) / now);
  }
}

void Simulator::advance_series(double t) {
  if (series_dt_ <= 0.0) return;
  // Departures can pop after the horizon; the series covers (0, duration]
  // only — exactly duration/series_dt_ samples, the last at end-of-run.
  t = std::min(t, opt_.duration);
  while (next_sample_ <= t) {
    sample_series(next_sample_);
    next_sample_ += series_dt_;
  }
}

void Simulator::sample_series(double t) {
  namespace tel = support::telemetry;
  if (!tel::enabled()) return;
  // `sim.series.*` gauges read only committed simulator state at a sim-time
  // boundary, so for a fixed seed they are identical for every batch-engine
  // thread count (tested in test_telemetry.cpp). Direct series() calls (not
  // macros) — the handles are cached in statics below.
  static tel::Series& rho = tel::series("sim.series.load_rho");
  static tel::Series& offered = tel::series("sim.series.offered");
  static tel::Series& accepted = tel::series("sim.series.accepted");
  static tel::Series& blocked = tel::series("sim.series.blocked");
  static tel::Series& blocking = tel::series("sim.series.blocking_probability");
  static tel::Series& live = tel::series("sim.series.live_connections");
  static tel::Series& avail = tel::series("sim.series.availability");
  static tel::Series& srlg_fails = tel::series("sim.series.srlg_failures");
  rho.add(t, net_.network_load());
  avail.add(t, metrics_.reliability());
  srlg_fails.add(t, static_cast<double>(metrics_.srlg_failures));
  offered.add(t, static_cast<double>(metrics_.offered));
  accepted.add(t, static_cast<double>(metrics_.accepted));
  blocked.add(t, static_cast<double>(metrics_.blocked));
  blocking.add(t, metrics_.blocking_probability());
  live.add(t, static_cast<double>(live_.size()));
  // `rwa.series.*` gauges read cross-cutting RWA-layer state (warm-cache
  // effectiveness, commit-path latency). Under the parallel batch engine the
  // underlying counters include speculative work, so these depend on thread
  // count and scheduling — diagnostics, not replay-stable measurements.
  static tel::Counter& conv_hits = tel::counter("rwa.aux_builder.conv_hits");
  static tel::Counter& conv_misses =
      tel::counter("rwa.aux_builder.conv_misses");
  static tel::Series& hit_rate = tel::series("rwa.series.conv_cache_hit_rate");
  const double hits = static_cast<double>(conv_hits.value());
  const double lookups = hits + static_cast<double>(conv_misses.value());
  if (lookups > 0.0) hit_rate.add(t, hits / lookups);
  static tel::LatencyHistogram& commit_h =
      tel::histogram("rwa.parallel_batch.commit_slot_ns");
  static tel::Series& commit_p90 = tel::series("rwa.series.commit_p90_ns");
  if (commit_h.count() > 0) {
    commit_p90.add(t, static_cast<double>(commit_h.percentile_ns(0.90)));
  }
}

void Simulator::handle_arrival(double now) {
  ++metrics_.offered;
  WDM_TEL_COUNT("sim.offered");
  schedule_arrival(now);

  const auto [s, t] = draw_pair();
  // Trace id = offered-request ordinal: deterministic for a fixed seed, so
  // traces are addressable across runs ("show me request 1234").
  const auto trace = static_cast<std::uint64_t>(metrics_.offered);

  if (batch_engine_) {
    // Batch mode: park the request until the next provisioning tick. The
    // holding time is drawn now so the RNG stream is independent of the
    // commit outcome (and of the engine's thread count).
    pending_.push_back(
        {s, t, rng_.exponential(1.0 / opt_.traffic.mean_holding), trace});
    return;
  }

  // Route-on-arrival: the request's root span; the router's pipeline spans
  // (aux build -> Suurballe -> Liang-Shen) nest under it.
  support::telemetry::TraceScope trace_scope({trace, 0});
  WDM_TEL_SPAN(req_span, "sim.request");
  const rwa::RouteResult rr = router_.route(net_, s, t);
  bool ok = rr.found && rr.route.primary.fits_residual(net_);
  const bool protect = opt_.restoration == RestorationMode::kActive;
  bool with_backup = false;
  if (ok && protect && rr.route.backup.found) {
    with_backup = rr.route.feasible(net_);
    ok = with_backup;  // a protected policy must deliver a usable pair
  }
  if (!ok) {
    ++metrics_.blocked;
    WDM_TEL_COUNT("sim.blocked");
    WDM_TEL_EVENT("sim.drop", now);
  } else {
    Connection c;
    c.id = next_conn_id_++;
    c.s = s;
    c.t = t;
    c.primary = rr.route.primary;
    c.primary.reserve_in(net_);
    if (with_backup) {
      c.backup = rr.route.backup;
      c.backup.reserve_in(net_);
      c.has_backup = true;
    }
    double cost = c.primary.cost(net_);
    if (c.has_backup) cost += c.backup.cost(net_);
    metrics_.route_cost.add(cost);
    if (rr.theta_iterations > 0) {
      metrics_.theta_iterations.add(rr.theta_iterations);
    }
    const double hold = rng_.exponential(1.0 / opt_.traffic.mean_holding);
    c.arrival = now;
    c.holding = hold;
    queue_.push(Event{now + hold, EventType::kDeparture, c.id});
    ++metrics_.accepted;
    WDM_TEL_COUNT("sim.accepted");
    WDM_TEL_EVENT("sim.accept", now);
    live_.emplace(c.id, std::move(c));
  }

  sample_load(now);
  maybe_reconfigure(now);
}

void Simulator::handle_batch_provision(double now) {
  // Chain the next tick first so a throwing router cannot stall the clock.
  if (now < opt_.duration) {
    queue_.push(Event{std::min(now + opt_.batching.interval, opt_.duration),
                      EventType::kBatchProvision, 0});
  }
  if (pending_.empty()) return;

  std::vector<rwa::BatchRequest> batch;
  batch.reserve(pending_.size());
  for (const PendingRequest& p : pending_) {
    batch.push_back({p.s, p.t, static_cast<long>(batch.size()), p.trace});
  }
  const rwa::BatchOutcome outcome = batch_engine_->run(
      net_, router_, batch, opt_.batching.order, &rng_);

  const bool protect = opt_.restoration == RestorationMode::kActive;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (!outcome.routes[i].has_value()) {
      ++metrics_.blocked;
      WDM_TEL_COUNT("sim.blocked");
      WDM_TEL_EVENT("sim.drop", now);
      continue;
    }
    const net::ProtectedRoute& r = *outcome.routes[i];
    Connection c;
    c.id = next_conn_id_++;
    c.s = pending_[i].s;
    c.t = pending_[i].t;
    c.primary = r.primary;
    if (protect) {
      c.backup = r.backup;
      c.has_backup = true;
      metrics_.route_cost.add(c.primary.cost(net_) + c.backup.cost(net_));
    } else {
      // The engine reserved the full protected pair (the batch accept
      // criterion); without active restoration the backup is not kept.
      r.backup.release_in(net_);
      metrics_.route_cost.add(c.primary.cost(net_));
    }
    c.arrival = now;
    c.holding = pending_[i].holding;
    queue_.push(Event{now + pending_[i].holding, EventType::kDeparture, c.id});
    ++metrics_.accepted;
    WDM_TEL_COUNT("sim.accepted");
    WDM_TEL_EVENT("sim.accept", now);
    live_.emplace(c.id, std::move(c));
  }
  pending_.clear();

  sample_load(now);
  maybe_reconfigure(now);
}

void Simulator::handle_departure(double now, long conn_id) {
  const auto it = live_.find(conn_id);
  if (it == live_.end()) return;  // dropped earlier (failure / reconfig)
  finish_connection(it->second, now, /*completed=*/true);
  release_connection(it->second);
  live_.erase(it);
  update_gauges(now);
}

void Simulator::handle_link_fail(double now, long duplex_index) {
  const auto [e1, e2] = duplex_[static_cast<std::size_t>(duplex_index)];
  WDM_TEL_COUNT("sim.link_failures");
  WDM_TEL_EVENT("sim.link_fail", now);
  fail_link(e1);
  if (e2 != e1) fail_link(e2);

  // Schedule the repair.
  queue_.push(Event{now + rng_.exponential(1.0 / opt_.failures.mean_repair),
                    EventType::kLinkRepair, duplex_index});

  const graph::EdgeId cut[] = {e1, e2};
  sweep_after_failure(
      now, std::span<const graph::EdgeId>(cut, e2 != e1 ? 2u : 1u));
}

void Simulator::handle_srlg_fail(double now, long group) {
  const net::Srlg& grp = net_.srlg(static_cast<int>(group));
  ++metrics_.srlg_failures;
  WDM_TEL_COUNT("sim.srlg_failures");
  WDM_TEL_EVENT("sim.srlg_fail", now);
  // Atomic correlated failure: every member link is down *before* any
  // connection is inspected, so a backup sharing the group with its primary
  // is already dead by sweep time and can never absorb the switchover.
  for (graph::EdgeId e : grp.links) fail_link(e);

  queue_.push(Event{now + rng_.exponential(1.0 / opt_.failures.mean_repair),
                    EventType::kSrlgRepair, group});

  sweep_after_failure(now, grp.links);
}

void Simulator::handle_srlg_repair(double now, long group) {
  const net::Srlg& grp = net_.srlg(static_cast<int>(group));
  for (graph::EdgeId e : grp.links) repair_link(e);
  const double rate =
      opt_.failures.srlg_failure_rate * grp.failure_probability;
  if (rate > 0.0) {
    const double t = now + rng_.exponential(rate);
    if (t <= opt_.duration) {
      queue_.push(Event{t, EventType::kSrlgFail, group});
    }
  }
}

void Simulator::sweep_after_failure(double now,
                                    std::span<const graph::EdgeId> cut) {
  // Sweep live connections. Collect ids first: recovery mutates live_.
  std::vector<long> ids;
  ids.reserve(live_.size());
  for (const auto& [id, c] : live_) ids.push_back(id);

  for (long id : ids) {
    auto it = live_.find(id);
    if (it == live_.end()) continue;
    Connection& c = it->second;

    const bool primary_hit = path_uses(c.primary, cut);
    const bool backup_hit = c.has_backup && path_uses(c.backup, cut);

    if (!primary_hit && backup_hit) {
      // Protection lost but service unaffected.
      ++metrics_.backup_lost;
      c.backup.release_in(net_);
      c.has_backup = false;
      if (opt_.failures.reprovision_backup) {
        std::vector<std::uint8_t> mask(
            static_cast<std::size_t>(net_.num_links()), 1);
        for (const net::Hop& h : c.primary.hops) {
          mask[static_cast<std::size_t>(h.edge)] = 0;
        }
        net::Semilightpath nb = rwa::optimal_semilightpath(net_, c.s, c.t, mask);
        if (nb.found) {
          nb.reserve_in(net_);
          c.backup = std::move(nb);
          c.has_backup = true;
          ++metrics_.backups_reprovisioned;
        }
      }
      continue;
    }
    if (!primary_hit) continue;

    ++metrics_.primary_failures;
    if (opt_.restoration == RestorationMode::kNone) {
      finish_connection(c, now, /*completed=*/false);
      release_connection(c);
      live_.erase(it);
      ++metrics_.dropped_on_failure;
      WDM_TEL_COUNT("sim.dropped_on_failure");
      WDM_TEL_EVENT("sim.connection_lost", now);
      continue;
    }

    ++metrics_.recoveries_attempted;
    WDM_TEL_COUNT("sim.recovery.attempted");
    if (opt_.restoration == RestorationMode::kActive && c.has_backup &&
        !backup_hit) {
      // Activate approach: instant switchover to the pre-reserved backup.
      c.primary.release_in(net_);
      c.primary = std::move(c.backup);
      c.backup = net::Semilightpath::not_found();
      c.has_backup = false;
      ++metrics_.recoveries_succeeded;
      ++metrics_.switchover_recoveries;
      WDM_TEL_COUNT("sim.recovery.switchover");
      WDM_TEL_EVENT("sim.recovery", now);
      metrics_.recovery_delay.add(opt_.failures.active_switchover_delay);
      c.downtime += opt_.failures.active_switchover_delay;
      if (opt_.record_recovery_delays) {
        metrics_.recovery_delays.push_back(
            opt_.failures.active_switchover_delay);
      }
      if (opt_.failures.reprovision_backup) {
        std::vector<std::uint8_t> mask(
            static_cast<std::size_t>(net_.num_links()), 1);
        for (const net::Hop& h : c.primary.hops) {
          mask[static_cast<std::size_t>(h.edge)] = 0;
        }
        net::Semilightpath nb =
            rwa::optimal_semilightpath(net_, c.s, c.t, mask);
        if (nb.found) {
          nb.reserve_in(net_);
          c.backup = std::move(nb);
          c.has_backup = true;
          ++metrics_.backups_reprovisioned;
        }
      }
      continue;
    }

    // Passive approach (or active with the backup also gone): release, then
    // try to re-establish over whatever the residual network offers.
    release_connection(c);
    net::Semilightpath np = rwa::optimal_semilightpath(net_, c.s, c.t);
    if (np.found) {
      np.reserve_in(net_);
      c.primary = std::move(np);
      ++metrics_.recoveries_succeeded;
      ++metrics_.recompute_recoveries;
      WDM_TEL_COUNT("sim.recovery.recompute");
      WDM_TEL_EVENT("sim.recovery", now);
      const double delay =
          opt_.failures.passive_base_delay +
          opt_.failures.passive_per_hop_delay *
              static_cast<double>(c.primary.length());
      metrics_.recovery_delay.add(delay);
      c.downtime += delay;
      if (opt_.record_recovery_delays) {
        metrics_.recovery_delays.push_back(delay);
      }
    } else {
      finish_connection(c, now, /*completed=*/false);
      live_.erase(it);
      ++metrics_.dropped_on_failure;
      WDM_TEL_COUNT("sim.dropped_on_failure");
      WDM_TEL_EVENT("sim.connection_lost", now);
    }
  }
}

void Simulator::handle_link_repair(double now, long duplex_index) {
  const auto [e1, e2] = duplex_[static_cast<std::size_t>(duplex_index)];
  repair_link(e1);
  if (e2 != e1) repair_link(e2);
  // Next cut on this fiber.
  if (opt_.failures.duplex_failure_rate > 0.0) {
    const double t =
        now + rng_.exponential(opt_.failures.duplex_failure_rate);
    if (t <= opt_.duration) {
      queue_.push(Event{t, EventType::kLinkFail, duplex_index});
    }
  }
}

void Simulator::maybe_reconfigure(double now) {
  if (net_.network_load() < opt_.reconfig.load_trigger) return;
  if (now - last_reconfig_ < opt_.reconfig.min_interval) return;
  if (live_.empty()) return;
  last_reconfig_ = now;
  ++metrics_.reconfigurations;
  WDM_TEL_COUNT("sim.reconfigurations");
  WDM_TEL_EVENT("sim.reconfigure", now);

  // Freeze-and-reroute: tear everything down, then re-route in id order.
  for (auto& [id, c] : live_) release_connection(c);
  std::vector<long> drops;
  for (auto& [id, c] : live_) {
    const rwa::RouteResult rr = router_.route(net_, c.s, c.t);
    const bool protect = opt_.restoration == RestorationMode::kActive;
    bool placed = false;
    if (rr.found && rr.route.primary.fits_residual(net_)) {
      const bool with_backup =
          protect && rr.route.backup.found && rr.route.feasible(net_);
      if (!protect || with_backup || !rr.route.backup.found) {
        net::Semilightpath np = rr.route.primary;
        np.reserve_in(net_);
        const bool moved = !(np.hops == c.primary.hops);
        c.primary = std::move(np);
        if (with_backup) {
          c.backup = rr.route.backup;
          c.backup.reserve_in(net_);
          c.has_backup = true;
        }
        if (moved) ++metrics_.reconfig_reroutes;
        placed = true;
      }
    }
    if (!placed) {
      // Fall back to the old route if it still fits; otherwise drop.
      if (c.primary.fits_residual(net_)) {
        c.primary.reserve_in(net_);
        placed = true;
        // Old backup is not restored: protection downgraded.
      } else {
        drops.push_back(id);
      }
    }
  }
  for (long id : drops) {
    finish_connection(live_.at(id), now, /*completed=*/false);
    live_.erase(id);
    ++metrics_.reconfig_drops;
  }
}

SimMetrics Simulator::run() {
  // Resolve series sampling here (not the constructor): "auto" depends on
  // whether telemetry is enabled at run time. The first sample lands at
  // series_dt_ (not 0): t=0 is all zeros for every configuration.
  if (opt_.series_interval > 0.0) {
    series_dt_ = opt_.series_interval;
  } else if (opt_.series_interval == 0.0 && support::telemetry::enabled()) {
    series_dt_ = opt_.duration / 128.0;
  }
  next_sample_ = series_dt_;

  schedule_arrival(0.0);
  if (batch_engine_) {
    queue_.push(Event{std::min(opt_.batching.interval, opt_.duration),
                      EventType::kBatchProvision, 0});
  }
  if (opt_.failures.duplex_failure_rate > 0.0) {
    for (std::size_t d = 0; d < duplex_.size(); ++d) {
      const double t = rng_.exponential(opt_.failures.duplex_failure_rate);
      if (t <= opt_.duration) {
        queue_.push(Event{t, EventType::kLinkFail, static_cast<long>(d)});
      }
    }
  }
  // Correlated SRLG failures: one Poisson process per declared group,
  // rate-scaled by the group's failure probability. Disabled (or a network
  // without SRLGs) draws nothing, keeping pre-SRLG runs replayable.
  if (opt_.failures.srlg_failure_rate > 0.0) {
    for (int g = 0; g < net_.num_srlgs(); ++g) {
      const double rate =
          opt_.failures.srlg_failure_rate * net_.srlg(g).failure_probability;
      if (rate <= 0.0) continue;
      const double t = rng_.exponential(rate);
      if (t <= opt_.duration) {
        queue_.push(Event{t, EventType::kSrlgFail, static_cast<long>(g)});
      }
    }
  }

  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    // Sample boundaries strictly between events: the state a sample reads is
    // the committed state before any event at `ev.time` executes.
    advance_series(ev.time);
    switch (ev.type) {
      case EventType::kArrival: handle_arrival(ev.time); break;
      case EventType::kDeparture: handle_departure(ev.time, ev.id); break;
      case EventType::kLinkFail: handle_link_fail(ev.time, ev.id); break;
      case EventType::kLinkRepair: handle_link_repair(ev.time, ev.id); break;
      case EventType::kSrlgFail: handle_srlg_fail(ev.time, ev.id); break;
      case EventType::kSrlgRepair: handle_srlg_repair(ev.time, ev.id); break;
      case EventType::kBatchProvision:
        handle_batch_provision(ev.time);
        break;
    }
  }

  // Batch mode: an arrival landing exactly at the horizon can pop after the
  // final tick; give stragglers one last provisioning pass.
  if (batch_engine_ && !pending_.empty()) {
    handle_batch_provision(opt_.duration);
  }

  // Emit any remaining series points (including the t = duration boundary)
  // before the final drain, so the last sample reflects end-of-run state.
  advance_series(opt_.duration);

  // Drain remaining connections and verify the reservation ledger balances.
  metrics_.live_connections_at_end = static_cast<long>(live_.size());
  for (auto& [id, c] : live_) release_connection(c);
  live_.clear();
  metrics_.final_reserved_wavelength_links = net_.total_usage();
  WDM_CHECK_MSG(metrics_.final_reserved_wavelength_links == 0,
                "wavelength reservation leak at end of simulation");
  return metrics_;
}

}  // namespace wdm::sim
