#include "sim/replicate.hpp"

#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"

namespace wdm::sim {

namespace {

MetricSummary summarize(const support::RunningStats& s) {
  MetricSummary m;
  m.mean = s.mean();
  m.ci95 = support::ci95_halfwidth(s);
  m.min = s.min();
  m.max = s.max();
  return m;
}

}  // namespace

ReplicationSummary replicate(const net::WdmNetwork& base_network,
                             const rwa::Router& router, SimOptions options,
                             int replicas) {
  WDM_CHECK(replicas >= 1);
  std::vector<SimMetrics> results(static_cast<std::size_t>(replicas));
  support::parallel_for(static_cast<std::size_t>(replicas), [&](std::size_t i) {
    SimOptions opt = options;
    opt.seed = options.seed + i;
    Simulator sim(base_network, router, std::move(opt));
    results[i] = sim.run();
  });

  support::RunningStats blocking, load, peak, reconf, cost, recovery, avail;
  for (const SimMetrics& m : results) {
    blocking.add(m.blocking_probability());
    avail.add(m.reliability());
    load.add(m.network_load.mean());
    peak.add(m.peak_load);
    reconf.add(static_cast<double>(m.reconfigurations));
    cost.add(m.route_cost.mean());
    if (m.recoveries_attempted > 0) {
      recovery.add(static_cast<double>(m.recoveries_succeeded) /
                   static_cast<double>(m.recoveries_attempted));
    }
  }
  ReplicationSummary out;
  out.replicas = replicas;
  out.blocking = summarize(blocking);
  out.mean_network_load = summarize(load);
  out.peak_load = summarize(peak);
  out.reconfigurations = summarize(reconf);
  out.route_cost = summarize(cost);
  out.recovery_success = summarize(recovery);
  out.availability = summarize(avail);
  return out;
}

}  // namespace wdm::sim
