// Event-driven dynamic-traffic simulator for §2's operating model: user
// connection requests arrive to and depart from the network at random;
// each is routed immediately against the residual network or dropped.
//
// The simulator reproduces the paper's motivating scenario end to end:
//   * Poisson arrivals with exponential holding times between uniformly
//     random (s, t) pairs — offered load in Erlangs = arrival_rate ×
//     mean_holding;
//   * a pluggable rwa::Router decides routes + wavelengths + switch settings;
//   * *active* restoration (the paper's approach) reserves the backup at
//     setup and switches over instantly on a primary-link failure; *passive*
//     restoration recomputes a route only after the failure (§1's taxonomy);
//   * fiber cuts arrive per duplex link as a Poisson process and take both
//     orientations out until repaired;
//   * a reconfiguration model: when the network load ρ crosses a trigger,
//     the network "freezes" and globally re-routes all live connections —
//     the costly event §4's load-aware routing exists to avoid. The count of
//     these events is bench E6's headline metric.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "rwa/batch.hpp"
#include "rwa/router.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "topology/topologies.hpp"

namespace wdm::rwa {
class ParallelBatchEngine;
}

namespace wdm::sim {

enum class RestorationMode {
  kActive,   // backup reserved at setup; instant switchover on failure
  kPassive,  // recompute a route only when the failure hits
  kNone,     // no recovery: failed connections drop
};

struct TrafficOptions {
  double arrival_rate = 5.0;  // requests per unit time
  double mean_holding = 1.0;  // mean connection lifetime
  /// Optional nonuniform demand: row-major n×n weight per (s, t) pair
  /// (diagonal ignored). Empty = uniform over ordered pairs.
  std::vector<double> pair_weight;
};

/// Hotspot demand matrix: pairs touching a hotspot node get `hot_factor`×
/// the base weight — models the metro/exchange concentration of real WANs.
std::vector<double> hotspot_matrix(net::NodeId num_nodes,
                                   const std::vector<net::NodeId>& hotspots,
                                   double hot_factor);

/// Gravity demand: weight(s, t) ∝ 1 / (1 + dist(s, t)²) over the topology
/// coordinates — nearer pairs talk more.
std::vector<double> gravity_matrix(const topo::Topology& topology);

struct FailureOptions {
  double duplex_failure_rate = 0.0;  // fiber cuts per unit time per duplex
  double mean_repair = 1.0;
  /// Restoration latency model: active switchover is a constant (the backup
  /// is lit and reserved); passive restoration pays signaling plus per-hop
  /// setup on the recomputed path.
  double active_switchover_delay = 0.001;
  double passive_base_delay = 0.050;
  double passive_per_hop_delay = 0.010;
  /// Active mode: when the backup itself is lost to a failure, try to
  /// provision a fresh backup immediately.
  bool reprovision_backup = false;
  /// Correlated multi-failure events: SRLG g fires as a Poisson process with
  /// rate srlg_failure_rate × failure_probability(g), taking every member
  /// link down *atomically* (all members are failed before any connection is
  /// swept, so no partial-failure interleaving is observable; in particular
  /// a backup sharing a group with its primary can never absorb the
  /// switchover). Repairs draw from the same mean_repair as fiber cuts.
  /// 0 disables and leaves the RNG stream untouched.
  double srlg_failure_rate = 0.0;
};

struct ReconfigOptions {
  /// Reconfigure when ρ >= trigger (values > 1 disable).
  double load_trigger = 2.0;
  double min_interval = 1.0;
};

/// Opt-in §2 batch operating model: arrivals accumulate and are provisioned
/// together every `interval` time units through rwa::ParallelBatchEngine.
/// The default (interval == 0) keeps the classic route-on-arrival behavior
/// and touches no engine code. Batch mode applies the batch accept criterion
/// uniformly — a request is accepted iff its full protected pair is feasible
/// (rwa::detail::commit_route) — so acceptance is identical for every thread
/// count, including 1; non-active restoration modes release the backup
/// immediately after commit. The traffic RNG stream is consumed identically
/// regardless of `threads` (pairs and holding times are drawn at arrival
/// time), keeping whole simulations replayable across thread counts.
struct BatchProvisioningOptions {
  double interval = 0.0;  // <= 0 disables batching
  rwa::BatchOrder order = rwa::BatchOrder::kArrival;
  int threads = 1;  // engine worker threads; <= 0 = hardware_threads()
  int window = 0;   // speculation window; <= 0 = engine default
  int max_speculation_retries = 3;
};

struct SimOptions {
  TrafficOptions traffic;
  FailureOptions failures;
  ReconfigOptions reconfig;
  BatchProvisioningOptions batching;
  RestorationMode restoration = RestorationMode::kActive;
  double duration = 1000.0;
  std::uint64_t seed = 1;
  /// Duplex pairing (topo::Topology::reverse_of); empty = failures cut a
  /// single directed edge.
  std::vector<graph::EdgeId> reverse_of;
  /// Record (time, ρ) samples at every arrival.
  bool record_load_series = false;
  /// Record every individual recovery delay in SimMetrics::recovery_delays
  /// (needed for percentiles). Off by default: the aggregate
  /// SimMetrics::recovery_delay stats are always maintained and keep memory
  /// O(1) over arbitrarily long failure-heavy runs.
  bool record_recovery_delays = false;
  /// Telemetry time-series sampling stride, in *simulation* time: every
  /// `series_interval` units the simulator snapshots blocking/load/cache
  /// gauges into telemetry series (dump `series` section). 0 = auto
  /// (duration / 128 when telemetry is enabled), negative = off. Samples are
  /// taken at sim-time boundaries between events, so the `sim.series.*`
  /// values are a pure function of the seed regardless of the batch engine's
  /// thread count; `rwa.series.*` gauges are scheduling-dependent.
  double series_interval = 0.0;
};

struct SimMetrics {
  long offered = 0;
  long accepted = 0;
  long blocked = 0;
  double blocking_probability() const {
    return offered ? static_cast<double>(blocked) / static_cast<double>(offered)
                   : 0.0;
  }

  long primary_failures = 0;       // live primaries hit by a fiber cut
  long recoveries_attempted = 0;
  long recoveries_succeeded = 0;
  long switchover_recoveries = 0;  // served by the pre-reserved backup
  long recompute_recoveries = 0;   // served by a path found after the cut
  long backups_reprovisioned = 0;
  long backup_lost = 0;            // reserved backups hit by a fiber cut
  long dropped_on_failure = 0;
  /// Aggregate delay of every successful recovery (always maintained).
  support::RunningStats recovery_delay;
  /// Raw per-recovery delays; populated only when
  /// SimOptions::record_recovery_delays is set.
  std::vector<double> recovery_delays;

  long srlg_failures = 0;          // correlated SRLG failure events

  /// Reliability: per-connection availability = delivered service time /
  /// requested service time, recorded when the connection ends (normal
  /// departure, drop on failure, or reconfiguration drop). Recovery delays
  /// count as downtime; a dropped connection forfeits its remaining holding
  /// time. The aggregates are thread-count-invariant under batching.
  support::RunningStats availability;
  double service_requested = 0.0;
  double service_delivered = 0.0;
  /// Aggregate delivered/requested ratio (1.0 before any connection ends).
  double reliability() const {
    return service_requested > 0.0 ? service_delivered / service_requested
                                   : 1.0;
  }

  long reconfigurations = 0;
  long reconfig_reroutes = 0;  // connections moved by reconfiguration
  long reconfig_drops = 0;     // connections lost during reconfiguration

  support::RunningStats network_load;   // ρ sampled at arrivals
  support::RunningStats mean_link_load;
  support::RunningStats route_cost;     // accepted primary+backup cost
  support::RunningStats theta_iterations;
  double peak_load = 0.0;

  std::vector<std::pair<double, double>> load_series;

  /// End-of-run invariant: live reservations must balance (checked by the
  /// simulator; exposed for tests).
  long long final_reserved_wavelength_links = 0;
  long live_connections_at_end = 0;
};

class Simulator {
 public:
  /// The simulator owns a copy of the network (it mutates usage and failure
  /// state); the router is borrowed and must outlive run().
  Simulator(net::WdmNetwork network, const rwa::Router& router,
            SimOptions options);
  ~Simulator();

  /// Runs the full horizon and returns the metrics. Call once.
  SimMetrics run();

  /// The (mutated) network — for post-run inspection in tests.
  const net::WdmNetwork& network() const { return net_; }

 private:
  struct Connection {
    long id = 0;
    net::NodeId s = 0, t = 0;
    net::Semilightpath primary;
    net::Semilightpath backup;  // reserved iff has_backup
    bool has_backup = false;
    double arrival = 0.0;   // service start (provisioning time)
    double holding = 0.0;   // requested service time
    double downtime = 0.0;  // accrued recovery delays
  };

  enum class EventType {
    kArrival,
    kDeparture,
    kLinkFail,
    kLinkRepair,
    kSrlgFail,
    kSrlgRepair,
    kBatchProvision,
  };
  struct Event {
    double time;
    EventType type;
    long id;  // connection id, duplex link index, or SRLG id
    bool operator<(const Event& o) const { return time > o.time; }
  };

  /// An arrival waiting for the next provisioning tick. The holding time is
  /// drawn at arrival (not at commit) so the RNG stream does not depend on
  /// which requests the batch accepts or on the engine's thread count.
  struct PendingRequest {
    net::NodeId s = 0, t = 0;
    double holding = 0.0;
    std::uint64_t trace = 0;  // telemetry trace id (offered ordinal)
  };

  void schedule_arrival(double now);
  std::pair<net::NodeId, net::NodeId> draw_pair();
  void handle_arrival(double now);
  void handle_batch_provision(double now);
  void sample_load(double now);
  /// Publishes sim.gauge.* live-state gauges (active connections, realized
  /// offered rate) for the telemetry stream.
  void update_gauges(double now);
  /// Emits telemetry series points for every sampling boundary <= t.
  void advance_series(double t);
  void sample_series(double t);
  void handle_departure(double now, long conn_id);
  void handle_link_fail(double now, long duplex_index);
  void handle_link_repair(double now, long duplex_index);
  void handle_srlg_fail(double now, long group);
  void handle_srlg_repair(double now, long group);
  void maybe_reconfigure(double now);
  void release_connection(Connection& c);
  /// Reference-counted failure state: a link stays failed until *every*
  /// overlapping failure event (duplex cut, SRLG firings of every group it
  /// belongs to) has been repaired.
  void fail_link(graph::EdgeId e);
  void repair_link(graph::EdgeId e);
  /// Sweeps live connections after `cut` went down atomically (switchover /
  /// recompute / drop per the restoration mode).
  void sweep_after_failure(double now, std::span<const graph::EdgeId> cut);
  /// Records the ended connection's availability sample.
  void finish_connection(const Connection& c, double now, bool completed);
  bool path_uses(const net::Semilightpath& p,
                 std::span<const graph::EdgeId> cut) const;

  net::WdmNetwork net_;
  const rwa::Router& router_;
  SimOptions opt_;
  support::Rng rng_;
  std::priority_queue<Event> queue_;
  /// Batch mode only: arrivals awaiting the next tick, and the engine that
  /// provisions them (kept across ticks so its snapshot pool stays warm).
  std::vector<PendingRequest> pending_;
  std::unique_ptr<rwa::ParallelBatchEngine> batch_engine_;
  std::map<long, Connection> live_;
  long next_conn_id_ = 0;
  double last_reconfig_ = -1e18;
  /// Telemetry series sampling state (resolved in run()).
  double series_dt_ = 0.0;
  double next_sample_ = 0.0;
  SimMetrics metrics_;
  /// Duplex index -> the two directed edges.
  std::vector<std::pair<graph::EdgeId, graph::EdgeId>> duplex_;
  /// Per-link failure depth (see fail_link/repair_link).
  std::vector<int> fail_depth_;
  /// Cumulative distribution over ordered pairs (empty = uniform).
  std::vector<double> pair_cdf_;
};

}  // namespace wdm::sim
