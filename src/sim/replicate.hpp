// Replicated simulation runs with confidence intervals.
//
// A single simulation run is one sample; credible comparisons need
// replicas with independent seeds. Replicas are embarrassingly parallel
// and run through support::parallel_for (OpenMP when available).
#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace wdm::sim {

struct MetricSummary {
  double mean = 0.0;
  double ci95 = 0.0;  // normal-approximation half width
  double min = 0.0;
  double max = 0.0;
};

struct ReplicationSummary {
  int replicas = 0;
  MetricSummary blocking;
  MetricSummary mean_network_load;
  MetricSummary peak_load;
  MetricSummary reconfigurations;
  MetricSummary route_cost;
  MetricSummary recovery_success;  // 0 when no failures were injected
  MetricSummary availability;      // per-run reliability() aggregate
};

/// Runs `replicas` independent simulations (seeds opts.seed, opts.seed+1,
/// ...) against copies of `base_network` and aggregates the headline
/// metrics. The router must be safe for concurrent route() calls (all
/// in-tree routers are: the aux-graph routers lease per-call builders from
/// a thread-safe AuxGraphBuilderPool; the rest hold no mutable state).
ReplicationSummary replicate(const net::WdmNetwork& base_network,
                             const rwa::Router& router, SimOptions options,
                             int replicas);

}  // namespace wdm::sim
