#include "wdm/io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <vector>

#include "support/check.hpp"

namespace wdm::io {

namespace {

/// Detects a table expressible as `conversion ... full <cost>`.
std::optional<double> as_full_uniform(const net::ConversionTable& t) {
  const int W = t.num_wavelengths();
  std::optional<double> cost;
  for (net::Wavelength a = 0; a < W; ++a) {
    for (net::Wavelength b = 0; b < W; ++b) {
      if (a == b) continue;
      if (!t.allowed(a, b)) return std::nullopt;
      const double c = t.cost(a, b);
      if (!cost) {
        cost = c;
      } else if (*cost != c) {
        return std::nullopt;
      }
    }
  }
  return cost ? cost : std::optional<double>(0.0);
}

bool is_identity_only(const net::ConversionTable& t) {
  const int W = t.num_wavelengths();
  for (net::Wavelength a = 0; a < W; ++a) {
    for (net::Wavelength b = 0; b < W; ++b) {
      if (a != b && t.allowed(a, b)) return false;
    }
  }
  return true;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

int parse_int(const std::string& tok, int line, const char* what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw ParseError(line, std::string("expected integer for ") + what +
                               ", got '" + tok + "'");
  }
}

double parse_double(const std::string& tok, int line, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    // nan/inf parse fine through stod but poison every cost comparison
    // downstream — reject them at the boundary.
    if (!std::isfinite(v)) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw ParseError(line, std::string("expected finite number for ") + what +
                               ", got '" + tok + "'");
  }
}

/// Parses "a,b,c" integer lists.
std::vector<int> parse_int_list(const std::string& tok, int line,
                                const char* what) {
  std::vector<int> out;
  std::istringstream ss(tok);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(parse_int(item, line, what));
  }
  if (out.empty()) throw ParseError(line, std::string("empty list for ") + what);
  return out;
}

std::vector<double> parse_double_list(const std::string& tok, int line,
                                      const char* what) {
  std::vector<double> out;
  std::istringstream ss(tok);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(parse_double(item, line, what));
  }
  return out;
}

}  // namespace

std::string write_network(const net::WdmNetwork& network) {
  std::ostringstream out;
  // max_digits10: doubles round-trip bit-exactly through the text form.
  out.precision(std::numeric_limits<double>::max_digits10);
  const int W = network.W();
  out << "# robustwdm network\n";
  out << "network " << network.num_nodes() << ' ' << W << '\n';

  for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
    const net::ConversionTable& t = network.conversion(v);
    if (is_identity_only(t)) continue;  // the default
    if (const auto cost = as_full_uniform(t)) {
      out << "conversion " << v << " full " << *cost << '\n';
      continue;
    }
    for (net::Wavelength a = 0; a < W; ++a) {
      for (net::Wavelength b = 0; b < W; ++b) {
        if (a != b && t.allowed(a, b)) {
          out << "conv " << v << ' ' << a << ' ' << b << ' ' << t.cost(a, b)
              << '\n';
        }
      }
    }
  }

  for (graph::EdgeId e = 0; e < network.num_links(); ++e) {
    const net::WavelengthSet inst = network.installed(e);
    // Uniform cost across installed wavelengths?
    bool uniform = true;
    double c0 = 0.0;
    bool first = true;
    inst.for_each([&](net::Wavelength l) {
      if (first) {
        c0 = network.weight(e, l);
        first = false;
      } else if (network.weight(e, l) != c0) {
        uniform = false;
      }
    });
    out << "link " << network.graph().tail(e) << ' ' << network.graph().head(e);
    if (uniform) {
      out << " cost " << c0;
    } else {
      out << " costs ";
      for (net::Wavelength l = 0; l < W; ++l) {
        if (l) out << ',';
        out << (inst.contains(l) ? network.weight(e, l) : 0.0);
      }
    }
    if (!(inst == net::WavelengthSet::all(W))) {
      out << " lambdas ";
      bool sep = false;
      inst.for_each([&](net::Wavelength l) {
        if (sep) out << ',';
        out << l;
        sep = true;
      });
    }
    out << '\n';
  }

  for (int g = 0; g < network.num_srlgs(); ++g) {
    const net::Srlg& grp = network.srlg(g);
    out << "srlg " << g << ' ' << grp.failure_probability << ' ';
    for (std::size_t i = 0; i < grp.links.size(); ++i) {
      if (i) out << ',';
      out << grp.links[i];
    }
    out << '\n';
  }

  for (graph::EdgeId e = 0; e < network.num_links(); ++e) {
    network.installed(e).for_each([&](net::Wavelength l) {
      if (network.is_used(e, l)) {
        out << "reserve " << e << ' ' << l << '\n';
      }
    });
    if (network.link_failed(e)) out << "failed " << e << '\n';
  }
  return out.str();
}

net::WdmNetwork read_network(std::istream& in) {
  std::optional<net::WdmNetwork> network;
  std::string line;
  int line_no = 0;
  int W = 0;
  // Failures applied at the end (reserve on a failed link must still load).
  std::vector<graph::EdgeId> failed;

  auto require_network = [&](int ln) -> net::WdmNetwork& {
    if (!network) throw ParseError(ln, "'network' header must come first");
    return *network;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];
    auto want = [&](std::size_t count) {
      if (toks.size() != count) {
        throw ParseError(line_no, "'" + cmd + "' expects " +
                                      std::to_string(count - 1) + " argument(s)");
      }
    };
    try {
      if (cmd == "network") {
        want(3);
        if (network) throw ParseError(line_no, "duplicate 'network' header");
        const int n = parse_int(toks[1], line_no, "node count");
        W = parse_int(toks[2], line_no, "wavelength count");
        // Bound the header before allocating: a corrupted count must fail
        // with a diagnostic, not a multi-gigabyte allocation.
        constexpr int kMaxNodes = 1 << 16;
        if (n < 1 || n > kMaxNodes) {
          throw ParseError(line_no, "node count out of range [1, " +
                                        std::to_string(kMaxNodes) + "]");
        }
        network.emplace(n, W);
      } else if (cmd == "conversion") {
        auto& net_ = require_network(line_no);
        if (toks.size() == 4 && toks[2] == "full") {
          net_.set_conversion(
              parse_int(toks[1], line_no, "node"),
              net::ConversionTable::full(
                  W, parse_double(toks[3], line_no, "cost")));
        } else if (toks.size() == 5 && toks[2] == "limited") {
          net_.set_conversion(
              parse_int(toks[1], line_no, "node"),
              net::ConversionTable::limited_range(
                  W, parse_int(toks[3], line_no, "range"),
                  parse_double(toks[4], line_no, "cost")));
        } else {
          throw ParseError(line_no, "conversion wants 'full <c>' or "
                                    "'limited <range> <c>'");
        }
      } else if (cmd == "conv") {
        want(5);
        auto& net_ = require_network(line_no);
        const int v = parse_int(toks[1], line_no, "node");
        net::ConversionTable t = net_.conversion(v);
        t.set(parse_int(toks[2], line_no, "from"),
              parse_int(toks[3], line_no, "to"),
              parse_double(toks[4], line_no, "cost"));
        net_.set_conversion(v, std::move(t));
      } else if (cmd == "link") {
        auto& net_ = require_network(line_no);
        if (toks.size() < 5) throw ParseError(line_no, "link is too short");
        const int u = parse_int(toks[1], line_no, "tail");
        const int v = parse_int(toks[2], line_no, "head");
        net::WavelengthSet lambdas = net::WavelengthSet::all(W);
        // Optional trailing "lambdas <list>".
        std::size_t cost_end = toks.size();
        if (toks.size() >= 2 && toks[toks.size() - 2] == "lambdas") {
          lambdas = net::WavelengthSet{};
          for (int l : parse_int_list(toks.back(), line_no, "lambda")) {
            if (l < 0 || l >= W) {
              throw ParseError(line_no, "lambda out of range");
            }
            lambdas.insert(l);
          }
          cost_end = toks.size() - 2;
        }
        if (toks[3] == "cost" && cost_end == 5) {
          net_.add_link(u, v, lambdas,
                        parse_double(toks[4], line_no, "cost"));
        } else if (toks[3] == "costs" && cost_end == 5) {
          const auto costs = parse_double_list(toks[4], line_no, "costs");
          if (costs.size() != static_cast<std::size_t>(W)) {
            throw ParseError(line_no, "costs list must have W entries");
          }
          net_.add_link(u, v, lambdas, costs);
        } else {
          throw ParseError(line_no, "link wants 'cost <c>' or 'costs <list>'");
        }
      } else if (cmd == "srlg") {
        want(4);
        auto& net_ = require_network(line_no);
        const int id = parse_int(toks[1], line_no, "srlg id");
        if (id < net_.num_srlgs()) {
          throw ParseError(line_no, "duplicate srlg id " + std::to_string(id));
        }
        if (id != net_.num_srlgs()) {
          throw ParseError(line_no,
                           "srlg ids must be dense and in order; expected " +
                               std::to_string(net_.num_srlgs()));
        }
        const double p = parse_double(toks[2], line_no, "failure probability");
        if (p < 0.0 || p > 1.0) {
          throw ParseError(line_no, "srlg failure probability outside [0, 1]");
        }
        std::vector<graph::EdgeId> members;
        for (int e : parse_int_list(toks[3], line_no, "srlg link")) {
          if (e < 0 || e >= net_.num_links()) {
            throw ParseError(line_no, "srlg link index out of range");
          }
          members.push_back(e);
        }
        net_.add_srlg(std::move(members), p);
      } else if (cmd == "reserve") {
        want(3);
        auto& net_ = require_network(line_no);
        const int e = parse_int(toks[1], line_no, "link index");
        if (e < 0 || e >= net_.num_links()) {
          throw ParseError(line_no, "link index out of range");
        }
        net_.reserve(e, parse_int(toks[2], line_no, "lambda"));
      } else if (cmd == "failed") {
        want(2);
        auto& net_ = require_network(line_no);
        const int e = parse_int(toks[1], line_no, "link index");
        if (e < 0 || e >= net_.num_links()) {
          throw ParseError(line_no, "link index out of range");
        }
        failed.push_back(e);
      } else {
        throw ParseError(line_no, "unknown directive '" + cmd + "'");
      }
    } catch (const ParseError&) {
      throw;
    } catch (const std::logic_error& err) {
      // Model-level rejection (bad endpoints, double reserve, ...).
      throw ParseError(line_no, err.what());
    }
  }
  if (!network) throw ParseError(line_no, "missing 'network' header");
  for (graph::EdgeId e : failed) network->set_link_failed(e, true);
  return std::move(*network);
}

net::WdmNetwork read_network(const std::string& text) {
  std::istringstream in(text);
  return read_network(in);
}

net::WdmNetwork read_network_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError(path, 0, "cannot open file");
  try {
    return read_network(in);
  } catch (const ParseError& err) {
    throw ParseError(path, err.line(), err.message());
  }
}

}  // namespace wdm::io
