#include "wdm/network.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "graph/path.hpp"
#include "support/check.hpp"

namespace wdm::net {

namespace {

std::uint64_t next_network_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

WdmNetwork::WdmNetwork(NodeId num_nodes, int num_wavelengths)
    : g_(num_nodes), w_(num_wavelengths), uid_(next_network_uid()) {
  WDM_CHECK(num_wavelengths > 0 &&
            num_wavelengths <= WavelengthSet::kMaxWavelengths);
  conv_.assign(static_cast<std::size_t>(num_nodes),
               ConversionTable::none(w_));
  conv_rev_.assign(static_cast<std::size_t>(num_nodes), 0);
}

WdmNetwork::WdmNetwork(const WdmNetwork& other)
    : g_(other.g_), w_(other.w_), conv_(other.conv_),
      installed_(other.installed_), used_(other.used_),
      failed_(other.failed_), weight_(other.weight_),
      srlgs_(other.srlgs_), srlg_of_link_(other.srlg_of_link_),
      revision_(other.revision_), link_rev_(other.link_rev_),
      conv_rev_(other.conv_rev_), uid_(next_network_uid()) {}

WdmNetwork& WdmNetwork::operator=(const WdmNetwork& other) {
  if (this == &other) return *this;
  g_ = other.g_;
  w_ = other.w_;
  conv_ = other.conv_;
  installed_ = other.installed_;
  used_ = other.used_;
  failed_ = other.failed_;
  weight_ = other.weight_;
  srlgs_ = other.srlgs_;
  srlg_of_link_ = other.srlg_of_link_;
  revision_ = other.revision_;
  link_rev_ = other.link_rev_;
  conv_rev_ = other.conv_rev_;
  uid_ = next_network_uid();
  return *this;
}

WdmNetwork::WdmNetwork(WdmNetwork&& other) noexcept
    : g_(std::move(other.g_)), w_(other.w_), conv_(std::move(other.conv_)),
      installed_(std::move(other.installed_)), used_(std::move(other.used_)),
      failed_(std::move(other.failed_)), weight_(std::move(other.weight_)),
      srlgs_(std::move(other.srlgs_)),
      srlg_of_link_(std::move(other.srlg_of_link_)),
      revision_(other.revision_), link_rev_(std::move(other.link_rev_)),
      conv_rev_(std::move(other.conv_rev_)), uid_(next_network_uid()) {}

WdmNetwork& WdmNetwork::operator=(WdmNetwork&& other) noexcept {
  if (this == &other) return *this;
  g_ = std::move(other.g_);
  w_ = other.w_;
  conv_ = std::move(other.conv_);
  installed_ = std::move(other.installed_);
  used_ = std::move(other.used_);
  failed_ = std::move(other.failed_);
  weight_ = std::move(other.weight_);
  srlgs_ = std::move(other.srlgs_);
  srlg_of_link_ = std::move(other.srlg_of_link_);
  revision_ = other.revision_;
  link_rev_ = std::move(other.link_rev_);
  conv_rev_ = std::move(other.conv_rev_);
  uid_ = next_network_uid();
  return *this;
}

NodeId WdmNetwork::add_node(ConversionTable conversion) {
  WDM_CHECK(conversion.num_wavelengths() == w_);
  conv_.push_back(std::move(conversion));
  conv_rev_.push_back(0);
  ++revision_;
  return g_.add_node();
}

EdgeId WdmNetwork::add_link(NodeId u, NodeId v, WavelengthSet installed,
                            double uniform_cost) {
  WDM_CHECK(uniform_cost >= 0.0);
  std::vector<double> costs(static_cast<std::size_t>(w_), uniform_cost);
  return add_link(u, v, installed, costs);
}

EdgeId WdmNetwork::add_link(NodeId u, NodeId v, WavelengthSet installed,
                            std::span<const double> cost_per_lambda) {
  WDM_CHECK_MSG(!installed.empty(), "a fiber must carry >= 1 wavelength");
  WDM_CHECK_MSG(installed.minus(WavelengthSet::all(w_)).empty(),
                "installed set contains wavelengths outside the universe");
  WDM_CHECK(cost_per_lambda.size() == static_cast<std::size_t>(w_));
  const EdgeId e = g_.add_edge(u, v);
  installed_.push_back(installed);
  used_.push_back(WavelengthSet{});
  failed_.push_back(0);
  link_rev_.push_back(0);
  ++revision_;
  for (int l = 0; l < w_; ++l) {
    const double c = cost_per_lambda[static_cast<std::size_t>(l)];
    WDM_CHECK(!installed.contains(l) || c >= 0.0);
    weight_.push_back(c);
  }
  return e;
}

std::pair<EdgeId, EdgeId> WdmNetwork::add_duplex(NodeId u, NodeId v,
                                                 WavelengthSet installed,
                                                 double uniform_cost) {
  return {add_link(u, v, installed, uniform_cost),
          add_link(v, u, installed, uniform_cost)};
}

void WdmNetwork::set_conversion(NodeId v, ConversionTable table) {
  WDM_CHECK(g_.valid_node(v));
  WDM_CHECK(table.num_wavelengths() == w_);
  conv_[static_cast<std::size_t>(v)] = std::move(table);
  ++conv_rev_[static_cast<std::size_t>(v)];
  ++revision_;
}

const ConversionTable& WdmNetwork::conversion(NodeId v) const {
  WDM_CHECK(g_.valid_node(v));
  return conv_[static_cast<std::size_t>(v)];
}

WavelengthSet WdmNetwork::installed(EdgeId e) const {
  WDM_CHECK(g_.valid_edge(e));
  return installed_[static_cast<std::size_t>(e)];
}

WavelengthSet WdmNetwork::available(EdgeId e) const {
  WDM_CHECK(g_.valid_edge(e));
  if (failed_[static_cast<std::size_t>(e)]) return WavelengthSet{};
  return installed_[static_cast<std::size_t>(e)].minus(
      used_[static_cast<std::size_t>(e)]);
}

void WdmNetwork::set_link_failed(EdgeId e, bool failed) {
  WDM_CHECK(g_.valid_edge(e));
  const std::uint8_t next = failed ? 1 : 0;
  if (failed_[static_cast<std::size_t>(e)] == next) return;  // no state change
  failed_[static_cast<std::size_t>(e)] = next;
  ++link_rev_[static_cast<std::size_t>(e)];
  ++revision_;
}

bool WdmNetwork::link_failed(EdgeId e) const {
  WDM_CHECK(g_.valid_edge(e));
  return failed_[static_cast<std::size_t>(e)] != 0;
}

int WdmNetwork::num_failed_links() const {
  int k = 0;
  for (std::uint8_t f : failed_) k += (f != 0);
  return k;
}

int WdmNetwork::usage(EdgeId e) const {
  WDM_CHECK(g_.valid_edge(e));
  return used_[static_cast<std::size_t>(e)].count();
}

double WdmNetwork::link_load(EdgeId e) const {
  return static_cast<double>(usage(e)) / static_cast<double>(capacity(e));
}

double WdmNetwork::network_load() const {
  double rho = 0.0;
  for (EdgeId e = 0; e < num_links(); ++e) {
    rho = std::max(rho, link_load(e));
  }
  return rho;
}

double WdmNetwork::mean_load() const {
  if (num_links() == 0) return 0.0;
  double s = 0.0;
  for (EdgeId e = 0; e < num_links(); ++e) s += link_load(e);
  return s / static_cast<double>(num_links());
}

double WdmNetwork::weight(EdgeId e, Wavelength l) const {
  WDM_CHECK(g_.valid_edge(e));
  WDM_CHECK_MSG(installed(e).contains(l), "w(e,λ) undefined: λ ∉ Λ(e)");
  return weight_[static_cast<std::size_t>(e) * static_cast<std::size_t>(w_) +
                 static_cast<std::size_t>(l)];
}

double WdmNetwork::min_weight(EdgeId e) const {
  double m = graph::kInf;
  installed(e).for_each([&](Wavelength l) { m = std::min(m, weight(e, l)); });
  return m;
}

double WdmNetwork::mean_available_weight(EdgeId e) const {
  const WavelengthSet avail = available(e);
  WDM_CHECK_MSG(!avail.empty(), "mean over empty Λ_avail(e)");
  double s = 0.0;
  avail.for_each([&](Wavelength l) { s += weight(e, l); });
  return s / avail.count();
}

bool WdmNetwork::is_used(EdgeId e, Wavelength l) const {
  WDM_CHECK(g_.valid_edge(e));
  return used_[static_cast<std::size_t>(e)].contains(l);
}

void WdmNetwork::reserve(EdgeId e, Wavelength l) {
  WDM_CHECK_MSG(available(e).contains(l),
                "reserve: wavelength not available on link");
  used_[static_cast<std::size_t>(e)].insert(l);
  ++link_rev_[static_cast<std::size_t>(e)];
  ++revision_;
}

void WdmNetwork::release(EdgeId e, Wavelength l) {
  WDM_CHECK_MSG(is_used(e, l), "release: wavelength not in use on link");
  used_[static_cast<std::size_t>(e)].erase(l);
  ++link_rev_[static_cast<std::size_t>(e)];
  ++revision_;
}

long long WdmNetwork::total_usage() const {
  long long s = 0;
  for (const WavelengthSet& u : used_) s += u.count();
  return s;
}

std::vector<std::uint64_t> WdmNetwork::usage_snapshot() const {
  std::vector<std::uint64_t> snap;
  snap.reserve(used_.size());
  for (const WavelengthSet& u : used_) snap.push_back(u.bits());
  return snap;
}

void WdmNetwork::restore_usage(std::span<const std::uint64_t> snapshot) {
  WDM_CHECK(snapshot.size() == used_.size());
  for (std::size_t i = 0; i < used_.size(); ++i) {
    if (used_[i].bits() == snapshot[i]) continue;  // keep caches warm
    used_[i] = WavelengthSet::from_bits(snapshot[i]);
    ++link_rev_[i];
  }
  ++revision_;
}

void WdmNetwork::sync_residual_from(const WdmNetwork& src) {
  WDM_CHECK_MSG(src.g_.num_nodes() == g_.num_nodes() &&
                    src.g_.num_edges() == g_.num_edges() && src.w_ == w_,
                "sync_residual_from: networks differ in immutable structure");
  bool changed = false;
  for (std::size_t e = 0; e < used_.size(); ++e) {
    WDM_DCHECK(installed_[e].bits() == src.installed_[e].bits());
    if (used_[e].bits() == src.used_[e].bits() &&
        failed_[e] == src.failed_[e]) {
      continue;  // untouched link: keep external caches warm
    }
    used_[e] = src.used_[e];
    failed_[e] = src.failed_[e];
    ++link_rev_[e];
    changed = true;
  }
  if (changed) ++revision_;
}

std::uint64_t WdmNetwork::link_revision(EdgeId e) const {
  WDM_CHECK(g_.valid_edge(e));
  return link_rev_[static_cast<std::size_t>(e)];
}

std::uint64_t WdmNetwork::conversion_revision(NodeId v) const {
  WDM_CHECK(g_.valid_node(v));
  return conv_rev_[static_cast<std::size_t>(v)];
}

int WdmNetwork::add_srlg(std::vector<EdgeId> links, double failure_probability) {
  WDM_CHECK_MSG(failure_probability >= 0.0 && failure_probability <= 1.0,
                "srlg failure probability outside [0, 1]");
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  WDM_CHECK_MSG(!links.empty(), "srlg must name >= 1 link");
  for (EdgeId e : links) {
    WDM_CHECK_MSG(g_.valid_edge(e), "srlg member is not a link");
  }
  const int id = static_cast<int>(srlgs_.size());
  if (srlg_of_link_.size() < static_cast<std::size_t>(num_links())) {
    srlg_of_link_.resize(static_cast<std::size_t>(num_links()));
  }
  for (EdgeId e : links) {
    srlg_of_link_[static_cast<std::size_t>(e)].push_back(id);
  }
  srlgs_.push_back(Srlg{std::move(links), failure_probability});
  // Annotation only: available(e) is untouched, so no per-link counter moves
  // and AuxGraphBuilder caches stay warm.
  ++revision_;
  return id;
}

const Srlg& WdmNetwork::srlg(int g) const {
  WDM_CHECK(g >= 0 && g < num_srlgs());
  return srlgs_[static_cast<std::size_t>(g)];
}

std::span<const int> WdmNetwork::srlgs_of_link(EdgeId e) const {
  WDM_CHECK(g_.valid_edge(e));
  if (static_cast<std::size_t>(e) >= srlg_of_link_.size()) return {};
  return srlg_of_link_[static_cast<std::size_t>(e)];
}

bool WdmNetwork::links_share_srlg(EdgeId a, EdgeId b) const {
  const std::span<const int> ga = srlgs_of_link(a);
  if (ga.empty()) return false;
  const std::span<const int> gb = srlgs_of_link(b);
  for (int x : ga) {
    for (int y : gb) {
      if (x == y) return true;
    }
  }
  return false;
}

double WdmNetwork::link_failure_probability(EdgeId e) const {
  double survive = 1.0;
  for (int g : srlgs_of_link(e)) {
    survive *= 1.0 - srlgs_[static_cast<std::size_t>(g)].failure_probability;
  }
  return 1.0 - survive;
}

double WdmNetwork::theta_min() const {
  double t = graph::kInf;
  for (EdgeId e = 0; e < num_links(); ++e) {
    t = std::min(t, static_cast<double>(usage(e) + 1) /
                        static_cast<double>(capacity(e)));
  }
  return t;
}

double WdmNetwork::theta_max() const {
  double t = 0.0;
  for (EdgeId e = 0; e < num_links(); ++e) {
    t = std::max(t, static_cast<double>(usage(e) + 1) /
                        static_cast<double>(capacity(e)));
  }
  return t;
}

}  // namespace wdm::net
