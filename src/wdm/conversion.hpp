// Per-node wavelength-conversion capability and cost — the paper's switch
// converter with cost factors c_v(λp, λq). The table accommodates the general
// case where conversion capability and cost depend on the node and on both
// wavelengths; c_v(λ, λ) is identically 0 and always allowed (no switching).
#pragma once

#include <vector>

#include "wdm/wavelength.hpp"

namespace wdm::net {

class ConversionTable {
 public:
  /// Identity-only table: no conversion capability (λ -> λ only).
  explicit ConversionTable(int num_wavelengths);

  /// Full conversion: any λp -> λq allowed at `uniform_cost` (0 on identity).
  /// This is the paper's assumption (i) in §3.3.
  static ConversionTable full(int num_wavelengths, double uniform_cost);

  /// No conversion at all (alias of the identity-only constructor, for
  /// readability at call sites modeling the Lemma 1 special case).
  static ConversionTable none(int num_wavelengths);

  /// Limited-range conversion: λp -> λq allowed iff |p - q| <= range, cost
  /// `cost_per_step * |p - q|` — models shared-per-node converter pools with
  /// bounded tuning range.
  static ConversionTable limited_range(int num_wavelengths, int range,
                                       double cost_per_step);

  int num_wavelengths() const { return w_; }

  /// Allows a conversion and sets its cost. Identity entries are fixed
  /// (allowed, cost 0) and must not be overridden with a nonzero cost.
  void set(Wavelength from, Wavelength to, double cost);

  void forbid(Wavelength from, Wavelength to);

  bool allowed(Wavelength from, Wavelength to) const {
    return from == to || allowed_[index(from, to)] != 0;
  }

  /// Requires allowed(from, to).
  double cost(Wavelength from, Wavelength to) const;

  /// True when every pair is allowed.
  bool is_full() const;

  /// Maximum conversion cost over allowed non-identity pairs (0 if none) —
  /// used to check the Theorem 2 assumption.
  double max_cost() const;

  /// Wavelengths in `to_set` reachable from some wavelength in `from_set`.
  WavelengthSet reachable(WavelengthSet from_set, WavelengthSet to_set) const;

 private:
  std::size_t index(Wavelength a, Wavelength b) const {
    WDM_DCHECK(a >= 0 && a < w_ && b >= 0 && b < w_);
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(w_) +
           static_cast<std::size_t>(b);
  }

  int w_;
  std::vector<double> cost_;
  std::vector<std::uint8_t> allowed_;
};

}  // namespace wdm::net
