// The WDM network model G = (V, E, Λ) of §2.
//
// Structure lives in a graph::Digraph; per-link wavelength inventory Λ(e),
// in-use set, and per-(link, wavelength) traversal costs w(e, λ), plus
// per-node conversion tables c_v(·,·), live here. The *residual network*
// G(V, E, Λ_avail) of §3.3.1 is implicit: available(e) = installed minus
// used, so routing always sees the current residual state without copying.
//
// Usage mutation (reserve/release) is how the dynamic-traffic simulator
// models connections holding wavelengths; network_load() is Eq. (2).
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "wdm/conversion.hpp"
#include "wdm/wavelength.hpp"

namespace wdm::net {

using graph::EdgeId;
using graph::NodeId;

/// A shared-risk link group: a set of fibers that fail together (same
/// conduit, same amplifier hut, ...) with a declared probability of the
/// group failing during a unit of exposure. SRLG-disjoint protection
/// requires primary and backup to share no group.
struct Srlg {
  std::vector<EdgeId> links;          // sorted, unique member fibers
  double failure_probability = 0.0;   // in [0, 1]
};

class WdmNetwork {
 public:
  /// A network over `num_wavelengths` channels with `num_nodes` nodes, each
  /// initially with identity-only (no) conversion capability.
  WdmNetwork(NodeId num_nodes, int num_wavelengths);

  /// Copies and moves produce a *distinct* object: the target gets a fresh
  /// uid() so external caches keyed on the source never match it.
  WdmNetwork(const WdmNetwork& other);
  WdmNetwork& operator=(const WdmNetwork& other);
  WdmNetwork(WdmNetwork&& other) noexcept;
  WdmNetwork& operator=(WdmNetwork&& other) noexcept;
  ~WdmNetwork() = default;

  const graph::Digraph& graph() const { return g_; }
  int W() const { return w_; }
  NodeId num_nodes() const { return g_.num_nodes(); }
  EdgeId num_links() const { return g_.num_edges(); }

  NodeId add_node() { return add_node(ConversionTable::none(w_)); }
  NodeId add_node(ConversionTable conversion);

  /// Adds a unidirectional fiber u -> v carrying `installed` wavelengths,
  /// each at traversal cost `uniform_cost` (the paper's assumption (ii)).
  EdgeId add_link(NodeId u, NodeId v, WavelengthSet installed,
                  double uniform_cost);

  /// Adds a fiber with per-wavelength traversal costs; `cost_per_lambda` is
  /// indexed by wavelength (size W); entries outside `installed` are ignored.
  EdgeId add_link(NodeId u, NodeId v, WavelengthSet installed,
                  std::span<const double> cost_per_lambda);

  /// Adds u -> v and v -> u with identical inventory and cost.
  std::pair<EdgeId, EdgeId> add_duplex(NodeId u, NodeId v,
                                       WavelengthSet installed,
                                       double uniform_cost);

  void set_conversion(NodeId v, ConversionTable table);
  const ConversionTable& conversion(NodeId v) const;

  /// Λ(e): wavelengths installed on the fiber.
  WavelengthSet installed(EdgeId e) const;
  /// Λ_avail(e): installed and not currently in use (the residual network).
  /// Empty while the link is failed — a fiber cut takes out every channel.
  WavelengthSet available(EdgeId e) const;

  /// Failure state (fiber cut). Routing sees a failed link as having no
  /// available wavelengths; existing reservations on it persist until their
  /// connections are torn down or restored.
  void set_link_failed(EdgeId e, bool failed);
  bool link_failed(EdgeId e) const;
  int num_failed_links() const;
  /// N(e) = |Λ(e)|.
  int capacity(EdgeId e) const { return installed(e).count(); }
  /// U(e): wavelengths in use by existing routes.
  int usage(EdgeId e) const;

  /// ρ(e) = U(e) / N(e) — Eq. (2).
  double link_load(EdgeId e) const;
  /// ρ = max_e ρ(e) — the network load.
  double network_load() const;
  /// Mean link load — reported alongside ρ in the benches.
  double mean_load() const;

  /// w(e, λ). Requires λ ∈ Λ(e).
  double weight(EdgeId e, Wavelength l) const;

  /// Cheapest installed wavelength cost on e (lower bound used by the exact
  /// solver and the physical-graph baselines).
  double min_weight(EdgeId e) const;
  /// Mean of w(e, λ) over Λ_avail(e) — the auxiliary-graph link weight of
  /// §3.3.1. Requires a nonempty available set.
  double mean_available_weight(EdgeId e) const;

  bool is_used(EdgeId e, Wavelength l) const;

  /// Marks λ in use on e. Requires λ available.
  void reserve(EdgeId e, Wavelength l);
  /// Frees λ on e. Requires λ in use.
  void release(EdgeId e, Wavelength l);

  /// Total reserved wavelength-links (for leak detection in tests).
  long long total_usage() const;

  /// Usage snapshot/restore — the simulator's reconfiguration step re-routes
  /// all live connections against an empty network and rolls back on failure.
  std::vector<std::uint64_t> usage_snapshot() const;
  void restore_usage(std::span<const std::uint64_t> snapshot);

  /// Cheap snapshot resync: makes this network's residual state (per-link
  /// usage and failure flags) bit-identical to `src`'s without reallocating
  /// anything. Requires both objects to share immutable structure — same
  /// node/link counts and wavelength universe (they should be copies of one
  /// base network; topology, Λ(e), w(e,λ) and conversion tables are assumed
  /// equal and are not touched). Only links whose state actually differs are
  /// written, and only those get a link_revision bump, so external caches
  /// (AuxGraphBuilder) keyed on this object's uid stay warm everywhere else.
  /// This is the overlay primitive the parallel batch engine republishes
  /// speculation snapshots with: O(diff) instead of a deep copy per commit.
  void sync_residual_from(const WdmNetwork& src);

  // --- Shared-risk link groups -------------------------------------------
  //
  // SRLGs are *annotations*: they never change Λ_avail(e), so declaring one
  // bumps revision() only — per-link counters stay put and AuxGraphBuilder
  // caches remain warm (see the cache-invalidation contract below).

  /// Declares a group of `links` that fail together with probability
  /// `failure_probability` ∈ [0, 1]. Members are deduplicated and sorted;
  /// the group must end up with >= 1 member and every member must be a
  /// valid link. Returns the new group id (dense, 0-based).
  int add_srlg(std::vector<EdgeId> links, double failure_probability);

  int num_srlgs() const { return static_cast<int>(srlgs_.size()); }
  const Srlg& srlg(int g) const;
  /// Ids of every group containing e (possibly empty).
  std::span<const int> srlgs_of_link(EdgeId e) const;
  /// True iff a and b belong to at least one common group.
  bool links_share_srlg(EdgeId a, EdgeId b) const;
  /// P[e fails] = 1 - Π_{g ∋ e} (1 - p_g); 0 for links in no group. A
  /// link's standalone failure probability is modeled as a singleton group.
  double link_failure_probability(EdgeId e) const;

  /// ϑ_min / ϑ_max of §4.1: min / max over links of (U(e)+1)/N(e).
  double theta_min() const;
  double theta_max() const;

  // --- Cache-invalidation contract (rwa::AuxGraphBuilder and friends) -----
  //
  // External caches over the residual network key their entries on these
  // monotone counters; a cached value derived from available(e) (resp.
  // conversion(v)) is valid exactly while link_revision(e) (resp.
  // conversion_revision(v)) is unchanged and uid() still matches.
  //
  // What bumps them:
  //   * reserve / release          -> link_revision(e), revision()
  //   * set_link_failed (on a real
  //     state change only)         -> link_revision(e), revision()
  //   * restore_usage              -> link_revision of every link whose
  //                                   usage actually changed, revision()
  //   * set_conversion             -> conversion_revision(v), revision()
  //   * add_node / add_link        -> revision() (topology growth)
  //   * add_srlg                   -> revision() only: SRLG membership never
  //                                   affects available(e), so per-link
  //                                   counters stay put and builder caches
  //                                   stay valid
  // What must NOT bump them: any const query, and mutations that provably
  // leave the residual state untouched (set_link_failed to the current
  // state). Λ(e) and w(e, λ) are immutable after add_link and carry no
  // counter of their own.

  /// Monotone counter over *all* mutations (topology, usage, failure,
  /// conversion). Equal revisions on the same uid() imply an identical
  /// network state.
  std::uint64_t revision() const { return revision_; }
  /// Monotone per-link counter covering everything available(e) depends on.
  std::uint64_t link_revision(EdgeId e) const;
  /// Monotone per-node counter over conversion-table replacement.
  std::uint64_t conversion_revision(NodeId v) const;
  /// Process-unique object identity; fresh for every constructed, copied, or
  /// moved-into instance (never recycled, unlike addresses).
  std::uint64_t uid() const { return uid_; }

 private:
  graph::Digraph g_;
  int w_;
  std::vector<ConversionTable> conv_;
  std::vector<WavelengthSet> installed_;
  std::vector<WavelengthSet> used_;
  std::vector<std::uint8_t> failed_;
  std::vector<double> weight_;  // m * W, row per edge

  std::vector<Srlg> srlgs_;
  std::vector<std::vector<int>> srlg_of_link_;  // lazily sized to num_links

  std::uint64_t revision_ = 0;
  std::vector<std::uint64_t> link_rev_;
  std::vector<std::uint64_t> conv_rev_;
  std::uint64_t uid_;
};

}  // namespace wdm::net
