// Semilightpaths (§2): a link sequence with a specific wavelength per link,
// implying a conversion at every intermediate node where the wavelength
// changes. cost() is exactly Eq. (1).
//
// A *lightpath* is the conversion-free special case (single wavelength end
// to end) — `is_lightpath()` detects it.
#pragma once

#include <vector>

#include "wdm/network.hpp"

namespace wdm::net {

struct Hop {
  EdgeId edge = graph::kInvalidEdge;
  Wavelength lambda = kInvalidWavelength;

  friend bool operator==(const Hop&, const Hop&) = default;
};

struct Semilightpath {
  std::vector<Hop> hops;
  bool found = false;

  static Semilightpath not_found() { return {}; }

  NodeId source(const WdmNetwork& net) const;
  NodeId destination(const WdmNetwork& net) const;

  std::size_t length() const { return hops.size(); }

  /// Eq. (1): Σ w(e_i, λ_i) + Σ c_{head(e_i)}(λ_i, λ_{i+1}).
  double cost(const WdmNetwork& net) const;

  /// Number of intermediate nodes whose converter switch is actually set
  /// (wavelength changes across the node).
  int conversions(const WdmNetwork& net) const;

  /// Structural validity: link contiguity, every λ_i installed on e_i, and
  /// every implied conversion allowed by the node's table.
  bool well_formed(const WdmNetwork& net) const;

  /// well_formed AND every (e_i, λ_i) currently available — i.e. the path is
  /// realizable in the residual network right now.
  bool fits_residual(const WdmNetwork& net) const;

  std::vector<EdgeId> physical_edges() const;

  /// True when all hops use one wavelength (no conversion needed).
  bool is_lightpath() const;

  /// Reserves / releases every (e_i, λ_i) in the network. reserve_in is
  /// all-or-nothing: requires fits_residual beforehand.
  void reserve_in(WdmNetwork& net) const;
  void release_in(WdmNetwork& net) const;
};

/// §2: two semilightpaths are edge-disjoint iff they share no physical link
/// (wavelengths are irrelevant — a fiber cut takes out every λ on the fiber).
bool edge_disjoint(const Semilightpath& a, const Semilightpath& b);

/// SRLG-disjoint: edge-disjoint AND no link of `a` shares a shared-risk
/// group with a link of `b`. Strictly stronger than edge_disjoint; on a
/// network with no SRLGs declared the two predicates coincide.
bool srlg_disjoint(const WdmNetwork& net, const Semilightpath& a,
                   const Semilightpath& b);

/// What "protected" means for a route — the §2 edge-disjoint predicate, its
/// SRLG-disjoint strengthening, or partial protection in the spirit of LP
/// relaxations for partial path protection: only primary links whose
/// declared failure probability exceeds a threshold need backup coverage.
enum class ProtectKind { kFull, kSrlg, kPartial };

struct ProtectPolicy {
  ProtectKind kind = ProtectKind::kFull;
  /// kPartial only: links with link_failure_probability > threshold are
  /// "risky" and must be avoided by the backup.
  double threshold = 0.0;

  static ProtectPolicy full() { return {ProtectKind::kFull, 0.0}; }
  static ProtectPolicy srlg() { return {ProtectKind::kSrlg, 0.0}; }
  static ProtectPolicy partial(double p) { return {ProtectKind::kPartial, p}; }

  friend bool operator==(const ProtectPolicy&, const ProtectPolicy&) = default;
};

const char* protect_kind_name(ProtectKind kind);

/// A provisioned robust route: primary + backup, disjoint per `policy`.
///
/// Under kPartial the backup is optional (absent when no primary link is
/// risky) and may share *safe* links with the primary — never a (link, λ)
/// pair, and never a link in `avoid` (the risky links plus their SRLG
/// co-members, recorded by the router that built the route).
struct ProtectedRoute {
  Semilightpath primary;
  Semilightpath backup;
  bool found = false;
  ProtectPolicy policy{};          // defaults to kFull: pre-SRLG semantics
  std::vector<EdgeId> avoid;       // kPartial: links backup must not touch

  double total_cost(const WdmNetwork& net) const {
    return primary.cost(net) + (backup.found ? backup.cost(net) : 0.0);
  }

  /// The policy's feasibility predicate against the current residual.
  /// kFull keeps the exact pre-SRLG behavior: found AND both paths fit AND
  /// edge-disjoint. kSrlg strengthens disjointness to srlg_disjoint.
  /// kPartial: primary fits; if a backup exists it fits, avoids `avoid`,
  /// and shares no (link, λ) hop with the primary; a missing backup is
  /// feasible only when nothing was risky (avoid empty).
  bool feasible(const WdmNetwork& net) const;

  void reserve_in(WdmNetwork& net) const;
  void release_in(WdmNetwork& net) const;
};

}  // namespace wdm::net
