// Semilightpaths (§2): a link sequence with a specific wavelength per link,
// implying a conversion at every intermediate node where the wavelength
// changes. cost() is exactly Eq. (1).
//
// A *lightpath* is the conversion-free special case (single wavelength end
// to end) — `is_lightpath()` detects it.
#pragma once

#include <vector>

#include "wdm/network.hpp"

namespace wdm::net {

struct Hop {
  EdgeId edge = graph::kInvalidEdge;
  Wavelength lambda = kInvalidWavelength;

  friend bool operator==(const Hop&, const Hop&) = default;
};

struct Semilightpath {
  std::vector<Hop> hops;
  bool found = false;

  static Semilightpath not_found() { return {}; }

  NodeId source(const WdmNetwork& net) const;
  NodeId destination(const WdmNetwork& net) const;

  std::size_t length() const { return hops.size(); }

  /// Eq. (1): Σ w(e_i, λ_i) + Σ c_{head(e_i)}(λ_i, λ_{i+1}).
  double cost(const WdmNetwork& net) const;

  /// Number of intermediate nodes whose converter switch is actually set
  /// (wavelength changes across the node).
  int conversions(const WdmNetwork& net) const;

  /// Structural validity: link contiguity, every λ_i installed on e_i, and
  /// every implied conversion allowed by the node's table.
  bool well_formed(const WdmNetwork& net) const;

  /// well_formed AND every (e_i, λ_i) currently available — i.e. the path is
  /// realizable in the residual network right now.
  bool fits_residual(const WdmNetwork& net) const;

  std::vector<EdgeId> physical_edges() const;

  /// True when all hops use one wavelength (no conversion needed).
  bool is_lightpath() const;

  /// Reserves / releases every (e_i, λ_i) in the network. reserve_in is
  /// all-or-nothing: requires fits_residual beforehand.
  void reserve_in(WdmNetwork& net) const;
  void release_in(WdmNetwork& net) const;
};

/// §2: two semilightpaths are edge-disjoint iff they share no physical link
/// (wavelengths are irrelevant — a fiber cut takes out every λ on the fiber).
bool edge_disjoint(const Semilightpath& a, const Semilightpath& b);

/// A provisioned robust route: primary + backup, edge-disjoint.
struct ProtectedRoute {
  Semilightpath primary;
  Semilightpath backup;
  bool found = false;

  double total_cost(const WdmNetwork& net) const {
    return primary.cost(net) + backup.cost(net);
  }

  /// found AND both paths fit the residual network AND they are
  /// edge-disjoint — the full §2 feasibility predicate.
  bool feasible(const WdmNetwork& net) const;

  void reserve_in(WdmNetwork& net) const;
  void release_in(WdmNetwork& net) const;
};

}  // namespace wdm::net
