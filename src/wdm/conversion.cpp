#include "wdm/conversion.hpp"

#include <algorithm>
#include <cmath>

namespace wdm::net {

ConversionTable::ConversionTable(int num_wavelengths)
    : w_(num_wavelengths),
      cost_(static_cast<std::size_t>(num_wavelengths) *
                static_cast<std::size_t>(num_wavelengths),
            0.0),
      allowed_(cost_.size(), 0) {
  WDM_CHECK(num_wavelengths > 0 &&
            num_wavelengths <= WavelengthSet::kMaxWavelengths);
}

ConversionTable ConversionTable::full(int num_wavelengths,
                                      double uniform_cost) {
  WDM_CHECK(uniform_cost >= 0.0);
  ConversionTable t(num_wavelengths);
  for (Wavelength a = 0; a < num_wavelengths; ++a) {
    for (Wavelength b = 0; b < num_wavelengths; ++b) {
      if (a != b) t.set(a, b, uniform_cost);
    }
  }
  return t;
}

ConversionTable ConversionTable::none(int num_wavelengths) {
  return ConversionTable(num_wavelengths);
}

ConversionTable ConversionTable::limited_range(int num_wavelengths, int range,
                                               double cost_per_step) {
  WDM_CHECK(range >= 0);
  WDM_CHECK(cost_per_step >= 0.0);
  ConversionTable t(num_wavelengths);
  for (Wavelength a = 0; a < num_wavelengths; ++a) {
    for (Wavelength b = 0; b < num_wavelengths; ++b) {
      if (a != b && std::abs(a - b) <= range) {
        t.set(a, b, cost_per_step * std::abs(a - b));
      }
    }
  }
  return t;
}

void ConversionTable::set(Wavelength from, Wavelength to, double cost) {
  WDM_CHECK(from >= 0 && from < w_ && to >= 0 && to < w_);
  WDM_CHECK(cost >= 0.0);
  WDM_CHECK_MSG(from != to || cost == 0.0,
                "identity conversion cost is fixed at 0 (paper: c_v(λ,λ)=0)");
  if (from == to) return;
  allowed_[index(from, to)] = 1;
  cost_[index(from, to)] = cost;
}

void ConversionTable::forbid(Wavelength from, Wavelength to) {
  WDM_CHECK(from >= 0 && from < w_ && to >= 0 && to < w_);
  WDM_CHECK_MSG(from != to, "identity conversion cannot be forbidden");
  allowed_[index(from, to)] = 0;
}

double ConversionTable::cost(Wavelength from, Wavelength to) const {
  if (from == to) return 0.0;
  WDM_CHECK_MSG(allowed(from, to), "conversion not allowed at this node");
  return cost_[index(from, to)];
}

bool ConversionTable::is_full() const {
  for (Wavelength a = 0; a < w_; ++a) {
    for (Wavelength b = 0; b < w_; ++b) {
      if (!allowed(a, b)) return false;
    }
  }
  return true;
}

double ConversionTable::max_cost() const {
  double m = 0.0;
  for (Wavelength a = 0; a < w_; ++a) {
    for (Wavelength b = 0; b < w_; ++b) {
      if (a != b && allowed(a, b)) m = std::max(m, cost_[index(a, b)]);
    }
  }
  return m;
}

WavelengthSet ConversionTable::reachable(WavelengthSet from_set,
                                         WavelengthSet to_set) const {
  WavelengthSet out;
  to_set.for_each([&](Wavelength b) {
    bool ok = false;
    from_set.for_each([&](Wavelength a) {
      if (!ok && allowed(a, b)) ok = true;
    });
    if (ok) out.insert(b);
  });
  return out;
}

}  // namespace wdm::net
