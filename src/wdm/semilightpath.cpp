#include "wdm/semilightpath.hpp"

#include <unordered_set>

#include "support/check.hpp"

namespace wdm::net {

NodeId Semilightpath::source(const WdmNetwork& net) const {
  WDM_CHECK(found && !hops.empty());
  return net.graph().tail(hops.front().edge);
}

NodeId Semilightpath::destination(const WdmNetwork& net) const {
  WDM_CHECK(found && !hops.empty());
  return net.graph().head(hops.back().edge);
}

double Semilightpath::cost(const WdmNetwork& net) const {
  WDM_CHECK(found);
  double c = 0.0;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    c += net.weight(hops[i].edge, hops[i].lambda);
    if (i + 1 < hops.size()) {
      const NodeId mid = net.graph().head(hops[i].edge);
      c += net.conversion(mid).cost(hops[i].lambda, hops[i + 1].lambda);
    }
  }
  return c;
}

int Semilightpath::conversions(const WdmNetwork& net) const {
  (void)net;
  int k = 0;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hops[i].lambda != hops[i + 1].lambda) ++k;
  }
  return k;
}

bool Semilightpath::well_formed(const WdmNetwork& net) const {
  if (!found || hops.empty()) return false;
  const auto& g = net.graph();
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const Hop& h = hops[i];
    if (!g.valid_edge(h.edge)) return false;
    if (!net.installed(h.edge).contains(h.lambda)) return false;
    if (i + 1 < hops.size()) {
      if (g.head(h.edge) != g.tail(hops[i + 1].edge)) return false;
      const NodeId mid = g.head(h.edge);
      if (!net.conversion(mid).allowed(h.lambda, hops[i + 1].lambda)) {
        return false;
      }
    }
  }
  return true;
}

bool Semilightpath::fits_residual(const WdmNetwork& net) const {
  if (!well_formed(net)) return false;
  for (const Hop& h : hops) {
    if (!net.available(h.edge).contains(h.lambda)) return false;
  }
  return true;
}

std::vector<EdgeId> Semilightpath::physical_edges() const {
  std::vector<EdgeId> es;
  es.reserve(hops.size());
  for (const Hop& h : hops) es.push_back(h.edge);
  return es;
}

bool Semilightpath::is_lightpath() const {
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hops[i].lambda != hops[i + 1].lambda) return false;
  }
  return true;
}

void Semilightpath::reserve_in(WdmNetwork& net) const {
  WDM_CHECK_MSG(fits_residual(net),
                "reserve_in requires a path realizable in the residual");
  for (const Hop& h : hops) net.reserve(h.edge, h.lambda);
}

void Semilightpath::release_in(WdmNetwork& net) const {
  for (const Hop& h : hops) net.release(h.edge, h.lambda);
}

bool edge_disjoint(const Semilightpath& a, const Semilightpath& b) {
  std::unordered_set<EdgeId> ea;
  for (const Hop& h : a.hops) ea.insert(h.edge);
  for (const Hop& h : b.hops) {
    if (ea.count(h.edge)) return false;
  }
  return true;
}

bool srlg_disjoint(const WdmNetwork& net, const Semilightpath& a,
                   const Semilightpath& b) {
  if (!edge_disjoint(a, b)) return false;
  for (const Hop& ha : a.hops) {
    for (const Hop& hb : b.hops) {
      if (net.links_share_srlg(ha.edge, hb.edge)) return false;
    }
  }
  return true;
}

const char* protect_kind_name(ProtectKind kind) {
  switch (kind) {
    case ProtectKind::kFull: return "full";
    case ProtectKind::kSrlg: return "srlg";
    case ProtectKind::kPartial: return "partial";
  }
  return "?";
}

bool ProtectedRoute::feasible(const WdmNetwork& net) const {
  switch (policy.kind) {
    case ProtectKind::kFull:
      return found && primary.fits_residual(net) && backup.fits_residual(net) &&
             edge_disjoint(primary, backup);
    case ProtectKind::kSrlg:
      return found && primary.fits_residual(net) && backup.fits_residual(net) &&
             srlg_disjoint(net, primary, backup);
    case ProtectKind::kPartial: {
      if (!found || !primary.fits_residual(net)) return false;
      if (!backup.found) return avoid.empty();  // nothing risky to cover
      if (!backup.fits_residual(net)) return false;
      for (const Hop& h : backup.hops) {
        for (EdgeId e : avoid) {
          if (h.edge == e) return false;
        }
      }
      // Shared safe links are fine, but never the same (link, λ) channel.
      for (const Hop& hb : backup.hops) {
        for (const Hop& hp : primary.hops) {
          if (hb == hp) return false;
        }
      }
      return true;
    }
  }
  return false;
}

void ProtectedRoute::reserve_in(WdmNetwork& net) const {
  WDM_CHECK(feasible(net));
  primary.reserve_in(net);
  if (backup.found) backup.reserve_in(net);
}

void ProtectedRoute::release_in(WdmNetwork& net) const {
  primary.release_in(net);
  if (backup.found) backup.release_in(net);
}

}  // namespace wdm::net
