// Text serialization for WDM networks — a line-based format for sharing
// instances between runs/tools and for regression fixtures:
//
//   network <num_nodes> <num_wavelengths>
//   conversion <node> full <cost>            # full table, uniform cost
//   conversion <node> limited <range> <cost> # limited-range table
//   conv <node> <from> <to> <cost>           # single allowed entry (general)
//   link <u> <v> cost <c>                    # all wavelengths, uniform cost
//   link <u> <v> cost <c> lambdas <a,b,...>  # partial installation
//   link <u> <v> costs <c0,c1,...>           # per-wavelength costs
//   srlg <id> <p> <e0,e1,...>                # shared-risk group over links
//   reserve <link_index> <lambda>            # residual state
//   failed <link_index>
//
// srlg ids must be dense and in order (0, 1, 2, ...); <p> is the group
// failure probability in [0, 1]; member links are file-order indices and
// must already be declared.
//
// Nodes default to identity-only (no) conversion. Link indices follow file
// order. '#' starts a comment; blank lines are ignored. The reader reports
// the offending line number on error.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "wdm/network.hpp"

namespace wdm::io {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : ParseError("", line, message) {}

  /// `file` may be empty (parsing from a string/stream with no name).
  ParseError(const std::string& file, int line, const std::string& message)
      : std::runtime_error((file.empty() ? "" : file + ":") + "line " +
                           std::to_string(line) + ": " + message),
        file_(file),
        message_(message),
        line_(line) {}

  const std::string& file() const { return file_; }
  /// The diagnostic without the file:line prefix (what() includes it).
  const std::string& message() const { return message_; }
  int line() const { return line_; }

 private:
  std::string file_;
  std::string message_;
  int line_;
};

/// Serializes the network including conversion tables, per-wavelength
/// costs, usage, and failure state. read(write(n)) reconstructs n exactly.
std::string write_network(const net::WdmNetwork& network);

/// Parses the format above. Throws ParseError on malformed input.
net::WdmNetwork read_network(std::istream& in);
net::WdmNetwork read_network(const std::string& text);

/// Opens and parses `path`. Every ParseError (including "cannot open",
/// reported as line 0) carries the file name, so diagnostics read
/// "file.wdm:line 12: ...".
net::WdmNetwork read_network_file(const std::string& path);

}  // namespace wdm::io
