// Text serialization for WDM networks — a line-based format for sharing
// instances between runs/tools and for regression fixtures:
//
//   network <num_nodes> <num_wavelengths>
//   conversion <node> full <cost>            # full table, uniform cost
//   conversion <node> limited <range> <cost> # limited-range table
//   conv <node> <from> <to> <cost>           # single allowed entry (general)
//   link <u> <v> cost <c>                    # all wavelengths, uniform cost
//   link <u> <v> cost <c> lambdas <a,b,...>  # partial installation
//   link <u> <v> costs <c0,c1,...>           # per-wavelength costs
//   reserve <link_index> <lambda>            # residual state
//   failed <link_index>
//
// Nodes default to identity-only (no) conversion. Link indices follow file
// order. '#' starts a comment; blank lines are ignored. The reader reports
// the offending line number on error.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "wdm/network.hpp"

namespace wdm::io {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_;
};

/// Serializes the network including conversion tables, per-wavelength
/// costs, usage, and failure state. read(write(n)) reconstructs n exactly.
std::string write_network(const net::WdmNetwork& network);

/// Parses the format above. Throws ParseError on malformed input.
net::WdmNetwork read_network(std::istream& in);
net::WdmNetwork read_network(const std::string& text);

}  // namespace wdm::io
