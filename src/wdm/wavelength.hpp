// Wavelength identifiers and sets.
//
// A wavelength is an index into the network's wavelength universe
// Λ = {λ_0, ..., λ_{W-1}}. A WavelengthSet is a 64-bit mask — wide-area WDM
// systems of the paper's era carried 4–32 channels per fiber, and every
// per-link set operation in the routing algorithms (Λ(e), Λ_avail(e),
// intersections for conversion-free hops) becomes one or two word ops.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace wdm::net {

using Wavelength = int;
inline constexpr Wavelength kInvalidWavelength = -1;

class WavelengthSet {
 public:
  static constexpr int kMaxWavelengths = 64;

  constexpr WavelengthSet() = default;

  /// {λ_0, ..., λ_{count-1}}.
  static WavelengthSet all(int count) {
    WDM_CHECK(count >= 0 && count <= kMaxWavelengths);
    WavelengthSet s;
    s.bits_ = (count == 64) ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << count) - 1);
    return s;
  }

  static WavelengthSet single(Wavelength l) {
    WavelengthSet s;
    s.insert(l);
    return s;
  }

  static WavelengthSet from_bits(std::uint64_t bits) {
    WavelengthSet s;
    s.bits_ = bits;
    return s;
  }

  bool contains(Wavelength l) const {
    WDM_DCHECK(valid(l));
    return (bits_ >> l) & 1u;
  }

  void insert(Wavelength l) {
    WDM_CHECK(valid(l));
    bits_ |= std::uint64_t{1} << l;
  }

  void erase(Wavelength l) {
    WDM_CHECK(valid(l));
    bits_ &= ~(std::uint64_t{1} << l);
  }

  int count() const { return __builtin_popcountll(bits_); }
  bool empty() const { return bits_ == 0; }
  std::uint64_t bits() const { return bits_; }

  /// Smallest wavelength in the set, or kInvalidWavelength when empty —
  /// the "first fit" rule of classic wavelength-assignment heuristics.
  Wavelength lowest() const {
    return empty() ? kInvalidWavelength : __builtin_ctzll(bits_);
  }

  WavelengthSet intersect(WavelengthSet o) const {
    return from_bits(bits_ & o.bits_);
  }
  WavelengthSet unite(WavelengthSet o) const {
    return from_bits(bits_ | o.bits_);
  }
  WavelengthSet minus(WavelengthSet o) const {
    return from_bits(bits_ & ~o.bits_);
  }

  template <typename F>
  void for_each(F&& f) const {
    std::uint64_t b = bits_;
    while (b) {
      const Wavelength l = __builtin_ctzll(b);
      f(l);
      b &= b - 1;
    }
  }

  std::vector<Wavelength> to_vector() const {
    std::vector<Wavelength> v;
    v.reserve(static_cast<std::size_t>(count()));
    for_each([&](Wavelength l) { v.push_back(l); });
    return v;
  }

  friend bool operator==(WavelengthSet a, WavelengthSet b) {
    return a.bits_ == b.bits_;
  }

 private:
  static bool valid(Wavelength l) { return l >= 0 && l < kMaxWavelengths; }

  std::uint64_t bits_ = 0;
};

}  // namespace wdm::net
