#include "support/rng.hpp"

#include <cmath>

#include "support/check.hpp"

namespace wdm::support {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  WDM_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  WDM_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t floor = (0 - range) % range;
    while (l < floor) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double rate) {
  WDM_CHECK(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

int Rng::poisson(double mean) {
  WDM_CHECK(mean >= 0.0);
  const double limit = std::exp(-mean);
  int k = 0;
  double prod = uniform();
  while (prod > limit) {
    ++k;
    prod *= uniform();
  }
  return k;
}

double Rng::normal() {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::size_t Rng::index(std::size_t n) {
  WDM_CHECK(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace wdm::support
