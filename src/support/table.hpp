// Aligned text tables for bench output (the "rows the paper reports").
#pragma once

#include <string>
#include <vector>

namespace wdm::support {

/// Column-aligned table printer. Numeric cells are right-aligned, text cells
/// left-aligned. Also emits CSV for machine consumption.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);
  static std::string integer(long long v);

  /// Render with box-drawing separators.
  std::string to_string() const;
  /// Render as CSV (comma-separated, no quoting of commas — cells must not
  /// contain commas).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wdm::support
