// Deterministic random number generation for simulations and benchmarks.
//
// xoshiro256** (Blackman & Vigna): fast, high-quality, and — unlike
// std::mt19937 + std::*_distribution — bit-for-bit reproducible across
// standard libraries, which matters for recorded experiment outputs.
#pragma once

#include <cstdint>
#include <span>

namespace wdm::support {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Poisson variate with the given mean (Knuth's method; fine for mean < 50).
  int poisson(double mean);

  /// Standard normal variate (Box–Muller, non-cached).
  double normal();

  /// Picks a uniformly random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(xs[i - 1], xs[j]);
    }
  }

  /// Derives an independent stream (for per-thread / per-replica RNGs).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// splitmix64 step — used for seeding and hashing.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace wdm::support
