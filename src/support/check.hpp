// Invariant checking macros.
//
// WDM_CHECK is active in all build types: library invariants whose violation
// means a caller bug (bad arguments, inconsistent state). Throws
// std::invalid_argument / std::logic_error so tests can assert on misuse.
//
// WDM_DCHECK compiles away in NDEBUG builds: internal sanity checks on hot
// paths.
#pragma once

#include <stdexcept>
#include <string>

namespace wdm::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw std::logic_error(std::string("WDM_CHECK failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace wdm::support

#define WDM_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::wdm::support::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define WDM_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::wdm::support::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define WDM_DCHECK(expr) ((void)0)
#else
#define WDM_DCHECK(expr) WDM_CHECK(expr)
#endif
