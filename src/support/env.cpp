#include "support/env.hpp"

#include <cstdlib>

namespace wdm::support {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(*v, &pos);
    if (pos != v->size()) return fallback;
    return parsed;
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string env_or(const char* name, const std::string& fallback) {
  return env_string(name).value_or(fallback);
}

}  // namespace wdm::support
