// Environment-variable knobs, used by the fuzz harness (and available to
// benches) so CI can scale work without rebuilding:
//
//   WDM_FUZZ_ITERATIONS  instance count of the differential fuzz sweep
//   WDM_FUZZ_SEED        base seed (failures reproduce by seed alone)
//   WDM_FUZZ_CORPUS_DIR  where shrunk repros are written
//
// Malformed values fall back to the default (a bad CI variable should not
// silently disable a test run by throwing at startup).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace wdm::support {

/// The variable's value, or nullopt when unset or empty.
std::optional<std::string> env_string(const char* name);

/// Integer-valued variable; unset/empty/malformed -> `fallback`.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// String-valued variable with default.
std::string env_or(const char* name, const std::string& fallback);

}  // namespace wdm::support
