#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace wdm::support {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

double percentile_sorted(std::span<const double> sorted, double q) {
  WDM_CHECK(q >= 0.0 && q <= 1.0);
  WDM_DCHECK(std::is_sorted(sorted.begin(), sorted.end()));
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> xs, double q) {
  WDM_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return percentile_sorted(v, q);
}

std::vector<double> percentiles(std::span<const double> xs,
                                std::span<const double> qs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(percentile_sorted(v, q));
  return out;
}

double mean_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double ci95_halfwidth(const RunningStats& s) {
  if (s.count() < 2) return 0.0;
  return 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

double confidence_95(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  RunningStats s;
  for (double x : xs) s.add(x);
  return ci95_halfwidth(s);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  WDM_CHECK(hi > lo);
  WDM_CHECK(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

double Histogram::bin_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const { return bin_lo(b + 1); }

}  // namespace wdm::support
