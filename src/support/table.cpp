#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace wdm::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  WDM_CHECK(!header_.empty());
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  WDM_CHECK_MSG(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::integer(long long v) { return std::to_string(v); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i])) && s[i] != '.' &&
        s[i] != 'e' && s[i] != 'E' && s[i] != '-' && s[i] != '+') {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      out << ' ';
      if (looks_numeric(cell)) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
      out << " |";
    }
    out << '\n';
  };
  auto emit_sep = [&] {
    out << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << std::string(width[c] + 2, '-') << '+';
    }
    out << '\n';
  };
  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace wdm::support
