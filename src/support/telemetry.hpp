// Structured telemetry: named monotonic counters, log-spaced latency
// histograms, request-lifecycle span tracing, point events, and sampled time
// series, flushed to a single JSON file per run (schema
// "robustwdm-telemetry-v2", documented in DESIGN.md §8 and validated by
// tools/telemetry_check; v1 dumps remain readable by the checker). Span data
// can additionally be exported in Chrome trace-event format
// (write_chrome_trace), loadable by Perfetto / chrome://tracing, with
// per-thread tracks and flow arrows across cross-thread handoffs.
//
// Cost contract (enforced by E18/E19 / CI):
//   * compiled out (-DROBUSTWDM_TELEMETRY=OFF): every macro below expands to
//     nothing and `enabled()` is a constant false, so guarded blocks are
//     dead code — zero instructions on the hot paths;
//   * compiled in but disabled (the default at runtime): one relaxed atomic
//     load + branch per instrumentation site, <2% on bench_policies;
//   * enabled: counters are relaxed atomic adds on interned handles (no
//     lookups on the hot path — handles are cached in function-local
//     statics), histograms one clock read + one atomic add, spans/events go
//     to bounded thread-local ring buffers and are only serialized at flush
//     time.
//
// Determinism: counter values are a pure function of the work performed.
// Counters under `sim.*` (and time series under `sim.series.*`) count
// committed simulator outcomes and are identical for identical seeds
// *regardless of thread count* (the parallel batch engine's
// serial-equivalence guarantee). Counters under `rwa.parallel_batch.*`,
// series under `rwa.series.*`, and all histogram/span timings depend on
// scheduling and are not replay-stable; tests/test_telemetry.cpp pins down
// the split.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef ROBUSTWDM_TELEMETRY
#define ROBUSTWDM_TELEMETRY 1
#endif

namespace wdm::support::telemetry {

#if ROBUSTWDM_TELEMETRY
namespace detail {
extern std::atomic<bool> g_enabled;
}
/// Runtime gate, read on every instrumentation site. Relaxed: flipping it
/// mid-run may lose a few in-flight samples, never corrupt state.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
constexpr bool compiled_in() { return true; }
#else
constexpr bool enabled() { return false; }
constexpr bool compiled_in() { return false; }
#endif

/// Enables/disables collection. Counters and histograms registered while
/// disabled still appear (as zeros) in the JSON output.
void set_enabled(bool on);

/// Zeroes every counter/histogram/series and drops all spans/events.
/// Registered names (and cached handles) stay valid. For tests and
/// multi-run tools.
void reset();

/// Named monotonic counter. Obtain through counter() once (cache the
/// reference); add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend void reset();
  std::atomic<std::uint64_t> v_{0};
};

/// Latency histogram with fixed log-spaced (powers-of-two nanosecond)
/// buckets: bucket b counts samples in [2^(b-1), 2^b) ns, bucket 0 counts
/// {0}. Buckets are independent relaxed atomics, so one instance is safely
/// shared across threads and merging is an elementwise add.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record_ns(std::uint64_t ns);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum_ns() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min_ns() const;  // 0 when empty
  std::uint64_t max_ns() const;  // 0 when empty
  std::uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Lower/upper bound of bucket b in ns ([lo, hi)).
  static std::uint64_t bucket_lo(int b);
  static std::uint64_t bucket_hi(int b);

  /// Quantile estimate with *upper-bound* semantics: returns the smallest
  /// bucket upper bound `u` such that at least ceil(q * count) samples are
  /// < u, clamped to max_ns(). Because bucket b spans [2^(b-1), 2^b), the
  /// estimate over-reports the true quantile by at most a factor of 2
  /// (equality only when the quantile is exactly a power of two; exact for
  /// 0, and the clamp keeps p99 <= max with the saturating last bucket
  /// reporting the exact observed maximum). 0 when empty; `q` is clamped
  /// to [0, 1]. Documented + tested in tests/test_support.cpp.
  std::uint64_t percentile_ns(double q) const;

 private:
  friend void reset();
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Named gauge: a *current-value* metric (queue depth, cache occupancy,
/// live-connection count, a rate) with set/add semantics — unlike Counter it
/// is not monotone and may go down or negative. The value is a double stored
/// as its bit pattern in one relaxed atomic, so set() is a single store and
/// concurrent readers (the SnapshotPublisher, write_json) never see a torn
/// value. Obtain through gauge() once and cache the reference (the
/// WDM_TEL_GAUGE_* macros below do this with function-local statics).
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  void add(double delta) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + delta),
        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  friend void reset();
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Sampled time series: (t, value) points, where `t` is caller time (the
/// simulator samples at *simulation*-time boundaries, which keeps `sim.*`
/// series deterministic across thread counts). Bounded: past kMaxPoints new
/// points are dropped and counted (tel.dropped_points + the dump header).
class Series {
 public:
  static constexpr std::size_t kMaxPoints = std::size_t{1} << 16;

  void add(double t, double v);
  std::vector<std::pair<double, double>> points() const;
  /// Appends points [from, size) to `out` and returns the current size —
  /// the SnapshotPublisher's cursored tail read, which avoids copying the
  /// whole (possibly 2^16-point) vector once per frame.
  std::size_t tail_into(std::size_t from,
                        std::vector<std::pair<double, double>>& out) const;
  std::uint64_t dropped() const;

 private:
  friend void reset();
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> pts_;
  std::uint64_t dropped_ = 0;
};

/// Registry lookup-or-create. Takes a mutex — call once per site and cache
/// the reference (the macros below do this with function-local statics).
/// Returned references stay valid for the process lifetime.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
LatencyHistogram& histogram(std::string_view name);
Series& series(std::string_view name);

/// Interns an event/span name; the id is what the hot-path record calls
/// take. Same caching advice as counter().
std::uint32_t intern(std::string_view name);

/// Snapshot of every registered counter (name -> value). For tests and
/// report generation, not hot paths.
std::map<std::string, std::uint64_t> counter_values();

/// Snapshot of every registered gauge (name -> value). Tests/reports only.
std::map<std::string, double> gauge_values();

/// Snapshot of every registered series (name -> points). Tests/reports only.
std::map<std::string, std::vector<std::pair<double, double>>> series_values();

/// Run metadata attached to every dump (schema v2 `meta` section): build
/// info (git describe, compiler, flags) is populated automatically; apps add
/// run-scoped keys ("seed", "command", ...). tools/teldiff refuses
/// apples-to-oranges comparisons based on these keys.
void set_meta(std::string_view key, std::string_view value);
std::map<std::string, std::string> meta_values();

/// Names the calling thread for the Chrome trace export's per-thread tracks
/// ("batch-worker-3", "commit"). Unnamed threads show as "thread-<id>".
void set_thread_name(std::string_view name);

/// Monotonic nanoseconds since the registry epoch (first telemetry call).
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Request-lifecycle tracing.

/// Identifies one request's causally-linked span tree across threads and
/// pipeline stages. 0 = untraced. The simulator assigns ids deterministically
/// (the offered-request ordinal), so a given seed always yields the same
/// trace ids.
using TraceId = std::uint64_t;

/// The ambient trace context: which request the current thread is working
/// for, and the span that any new span should attach to as a child.
struct RequestCtx {
  TraceId trace = 0;
  std::uint64_t parent_span = 0;
};

namespace detail {
/// This thread's active context (mutated by TraceScope / ScopedSpan).
RequestCtx& tls_ctx();
/// Process-unique span id (relaxed atomic increment; never 0).
std::uint64_t new_span_id();
/// Debug backstop for the static-handle macros (WDM_TEL_COUNTER/HIST/GAUGE
/// and everything built on them): the name is evaluated once and cached in a
/// function-local static, so a *runtime-built* name silently folds every
/// subsequent call into the first-seen metric. In debug builds the macros
/// re-evaluate the name expression and call this; on mismatch it prints both
/// names and aborts, pointing at WDM_TEL_COUNT_DYN. Compiled away in NDEBUG.
void check_static_name(const std::string& cached, std::string_view now);
}  // namespace detail

/// Reads the calling thread's active request context.
RequestCtx current_ctx();

/// A completed span. `span_id` is process-unique; `parent_id` is 0 for trace
/// roots; `flow_in`/`flow_out` carry Chrome trace flow-arrow bindings across
/// threads (0 = none) — the parallel batch engine uses the speculation
/// span's own id as the flow id for the speculate -> commit handoff.
struct SpanRecord {
  std::uint32_t name = 0;
  TraceId trace = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t flow_in = 0;
  std::uint64_t flow_out = 0;
};

/// Per-thread ring-buffer capacity for spans and for events. Past this,
/// recording overwrites the oldest entry (flight-recorder semantics) and the
/// overflow is counted per thread and in the tel.dropped_* counters.
inline constexpr std::size_t kMaxSpansPerThread = std::size_t{1} << 18;
inline constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 18;

/// Records a completed span into this thread's ring buffer. Overflow
/// overwrites the oldest span (flight-recorder semantics) and increments
/// both the per-thread drop count and the `tel.dropped_spans` counter
/// surfaced in the dump header.
void record_span(const SpanRecord& s);

/// Convenience: span [start_ns, start_ns + dur_ns) attached under the
/// calling thread's current context (fresh span id, no flows).
void record_span(std::uint32_t name_id, std::uint64_t start_ns,
                 std::uint64_t dur_ns);

/// Records a timestamped point event. `t` is caller-defined time (the
/// simulator passes *simulation* time, which keeps event streams
/// deterministic for a fixed seed).
void record_event(std::uint32_t name_id, double t);

/// Flight-recorder trace retention: when either bound is nonzero, JSON and
/// Chrome exports keep only spans belonging to the last `last_k` started
/// traces, the `worst_k` highest-root-latency traces, and untraced spans.
/// Record-time buffers are rings regardless, so long runs stay bounded.
void set_trace_retention(std::size_t last_k, std::size_t worst_k);

/// All buffered spans (flushed across threads, retention-filtered), with the
/// owning thread id. For tests and exporters, not hot paths.
struct SpanSnapshot {
  SpanRecord span;
  std::uint32_t thread = 0;
};
std::vector<SpanSnapshot> span_snapshot();

/// Writes the full JSON document (schema "robustwdm-telemetry-v2"); flushes
/// all thread buffers. Call after worker threads have joined.
void write_json(std::ostream& out);
/// write_json to `path`; returns false (and keeps the data) on I/O failure.
bool write_file(const std::string& path);

/// Writes the span/event data as a Chrome trace-event JSON document
/// (Perfetto-loadable): spans as "X" slices on per-thread tracks (pid 1),
/// flow arrows ("s"/"f") across the speculate -> commit handoff, and
/// sim-time point events as instants under a separate clock (pid 2).
void write_chrome_trace(std::ostream& out);
bool write_chrome_trace_file(const std::string& path);

/// Writes every counter, gauge, and histogram in Prometheus text exposition
/// format (metric names are prefixed "robustwdm_" with non-identifier
/// characters folded to '_'; histograms export cumulative power-of-two
/// buckets plus _sum/_count). A future `wdmd` daemon serves this verbatim
/// from a /metrics handler; `wdmtool --prom out.prom` and the benches dump
/// it at exit for scrape-file ingestion.
void write_prometheus(std::ostream& out);
bool write_prometheus_file(const std::string& path);

// ---------------------------------------------------------------------------
// Live streaming (SnapshotPublisher).

/// Configuration for the background snapshot publisher: where the JSONL
/// stream goes and how often a frame is captured. Exactly one of `path`
/// (truncated on start) or `fd` (an already-open descriptor, e.g. a pipe to
/// a collector; never closed by the publisher) selects the sink.
struct StreamOptions {
  std::string path;
  int fd = -1;
  double interval_s = 1.0;  // wall-clock capture stride, > 0
};

/// Starts the background SnapshotPublisher: a thread that, every
/// `interval_s` of wall time, captures a coherent *delta* frame — counter
/// increments since the previous frame, current gauge values, histogram
/// quantiles, and the tail of every time series — and appends it to the
/// sink as one JSONL record (schema "robustwdm-telemetry-stream-v1",
/// DESIGN.md §8.5). Frames that fail to write are dropped and counted
/// (tel.stream.dropped_frames + the final frame), never blocked on.
/// Enables collection (set_enabled(true)) as a side effect — a stream of
/// zeros helps nobody. Returns false (and starts nothing) when a stream is
/// already active, the sink cannot be opened, interval_s <= 0, or telemetry
/// is compiled out.
bool start_stream(const StreamOptions& opt);

/// Stops the publisher: joins the thread, then appends one *final* frame
/// ("kind": "final") carrying cumulative counters, gauges, full histogram
/// stats, run metadata, and drop totals — the frame tools/teldiff gates on.
/// Idempotent; no-op when no stream is active.
void stop_stream();

/// True while a publisher thread is running.
bool stream_active();

/// RAII wrapper: entry points hold one so the final frame is flushed on
/// every exit path, including exception unwind (tested in
/// tests/test_stream.cpp). The default constructor is inert.
class StreamScope {
 public:
  StreamScope() = default;
  explicit StreamScope(const StreamOptions& opt) { start_stream(opt); }
  StreamScope(const StreamScope&) = delete;
  StreamScope& operator=(const StreamScope&) = delete;
  ~StreamScope() { stop_stream(); }
};

// ---------------------------------------------------------------------------
// RAII helpers (compiled-in versions; no-op twins live in the #else branch).

#if ROBUSTWDM_TELEMETRY

/// RAII: makes `ctx` the calling thread's request context (restores the
/// previous one on destruction). The batch engine activates the request's
/// ctx around speculative route() calls on worker threads so the resulting
/// spans join the request's tree even across threads.
class TraceScope {
 public:
  explicit TraceScope(RequestCtx ctx) {
    if (enabled()) {
      RequestCtx& cur = detail::tls_ctx();
      saved_ = cur;
      cur = ctx;
      active_ = true;
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (active_) detail::tls_ctx() = saved_;
  }

 private:
  bool active_ = false;
  RequestCtx saved_;
};

/// RAII span: records [ctor, dtor) into the thread buffer when enabled, as a
/// child of the ambient context; nested spans chain automatically.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::uint32_t name_id) : on_(enabled()), name_(name_id) {
    if (on_) {
      t0_ = now_ns();
      id_ = detail::new_span_id();
      RequestCtx& ctx = detail::tls_ctx();
      trace_ = ctx.trace;
      parent_ = ctx.parent_span;
      ctx.parent_span = id_;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (on_) {
      detail::tls_ctx().parent_span = parent_;
      record_span({name_, trace_, id_, parent_, t0_, now_ns() - t0_, flow_in_,
                   flow_out_});
    }
  }

  /// 0 when telemetry is disabled — flow_*(0) means "no arrow".
  std::uint64_t span_id() const { return id_; }
  void flow_in(std::uint64_t id) { flow_in_ = id; }
  void flow_out(std::uint64_t id) { flow_out_ = id; }

 private:
  bool on_;
  std::uint32_t name_;
  TraceId trace_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t t0_ = 0;
  std::uint64_t flow_in_ = 0;
  std::uint64_t flow_out_ = 0;
};

#else  // !ROBUSTWDM_TELEMETRY — inert twins so call sites compile unchanged.

class TraceScope {
 public:
  explicit TraceScope(RequestCtx) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::uint32_t) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  std::uint64_t span_id() const { return 0; }
  void flow_in(std::uint64_t) {}
  void flow_out(std::uint64_t) {}
};

#endif  // ROBUSTWDM_TELEMETRY

/// Stage stopwatch for split timings (aux build vs. Suurballe vs. Liang–
/// Shen): one clock read per split, all of it skipped when disabled. The
/// sink parameter is a template so call sites compile unchanged when
/// telemetry is compiled out (WDM_TEL_HIST then yields a null sink). Passing
/// an interned `span_name` (WDM_TEL_NAME) additionally records the stage as
/// a span under the ambient request context.
class SplitTimer {
 public:
  SplitTimer() : on_(enabled()) {
    if (on_) first_ = last_ = now_ns();
  }
  bool on() const { return on_; }
  /// Records time since construction or the previous split.
  template <class Sink>
  void split(Sink& h, std::uint32_t span_name = 0) {
    if (on_) {
      const std::uint64_t t = now_ns();
      h.record_ns(t - last_);
      if (span_name != 0) record_span(span_name, last_, t - last_);
      last_ = t;
    }
  }
  /// Records time since construction (independent of splits).
  template <class Sink>
  void total(Sink& h, std::uint32_t span_name = 0) const {
    if (on_) {
      const std::uint64_t t = now_ns();
      h.record_ns(t - first_);
      if (span_name != 0) record_span(span_name, first_, t - first_);
    }
  }

 private:
  bool on_;
  std::uint64_t first_ = 0;
  std::uint64_t last_ = 0;
};

}  // namespace wdm::support::telemetry

// Instrumentation macros. All of them cache registry handles in
// function-local statics, so the steady-state cost is the enabled() branch.
// That cache makes the name expression a one-shot: runtime-built names fold
// into the first-seen metric. The lambdas are deliberately *captureless* so
// names referencing locals fail to compile, and debug builds additionally
// verify (WDM_TEL_DEBUG_STATIC_NAME) that the name expression is stable —
// use WDM_TEL_COUNT_DYN for genuinely dynamic names.
#if ROBUSTWDM_TELEMETRY

#ifdef NDEBUG
#define WDM_TEL_DEBUG_STATIC_NAME(name) \
  do {                                  \
  } while (0)
#else
#define WDM_TEL_DEBUG_STATIC_NAME(name)                   \
  do {                                                    \
    static const std::string wdm_tel_name0(name);         \
    ::wdm::support::telemetry::detail::check_static_name( \
        wdm_tel_name0, (name));                           \
  } while (0)
#endif

/// Expression yielding the (static, interned) counter for `name`.
#define WDM_TEL_COUNTER(name)                                       \
  ([]() -> ::wdm::support::telemetry::Counter& {                    \
    static auto& wdm_tel_c = ::wdm::support::telemetry::counter(name); \
    WDM_TEL_DEBUG_STATIC_NAME(name);                                \
    return wdm_tel_c;                                               \
  }())

/// Expression yielding the (static, interned) histogram for `name`.
#define WDM_TEL_HIST(name)                                          \
  ([]() -> ::wdm::support::telemetry::LatencyHistogram& {           \
    static auto& wdm_tel_h = ::wdm::support::telemetry::histogram(name); \
    WDM_TEL_DEBUG_STATIC_NAME(name);                                \
    return wdm_tel_h;                                               \
  }())

/// Expression yielding the (static, interned) gauge for `name`.
#define WDM_TEL_GAUGE(name)                                         \
  ([]() -> ::wdm::support::telemetry::Gauge& {                      \
    static auto& wdm_tel_g = ::wdm::support::telemetry::gauge(name); \
    WDM_TEL_DEBUG_STATIC_NAME(name);                                \
    return wdm_tel_g;                                               \
  }())

#define WDM_TEL_GAUGE_SET(name, v)                                  \
  do {                                                              \
    if (::wdm::support::telemetry::enabled()) {                     \
      WDM_TEL_GAUGE(name).set(static_cast<double>(v));              \
    }                                                               \
  } while (0)

#define WDM_TEL_GAUGE_ADD(name, d)                                  \
  do {                                                              \
    if (::wdm::support::telemetry::enabled()) {                     \
      WDM_TEL_GAUGE(name).add(static_cast<double>(d));              \
    }                                                               \
  } while (0)

/// Expression yielding the (static) interned id for a span/event `name`.
#define WDM_TEL_NAME(name)                                          \
  ([]() -> std::uint32_t {                                          \
    static const std::uint32_t wdm_tel_n =                          \
        ::wdm::support::telemetry::intern(name);                    \
    return wdm_tel_n;                                               \
  }())

#define WDM_TEL_COUNT_N(name, n)                                    \
  do {                                                              \
    if (::wdm::support::telemetry::enabled()) {                     \
      WDM_TEL_COUNTER(name).add(                                    \
          static_cast<std::uint64_t>(n));                           \
    }                                                               \
  } while (0)
#define WDM_TEL_COUNT(name) WDM_TEL_COUNT_N(name, 1)

/// Dynamic-name counter increment: resolves the registry entry on *every*
/// call (a mutex + map lookup), so each runtime-built name gets its own
/// counter. ~100x the cost of WDM_TEL_COUNT_N — use only off the hot path
/// (per-arm bench summaries, per-worker totals), and keep literal names on
/// the cached macros.
#define WDM_TEL_COUNT_DYN(name, n)                                  \
  do {                                                              \
    if (::wdm::support::telemetry::enabled()) {                     \
      ::wdm::support::telemetry::counter(name).add(                 \
          static_cast<std::uint64_t>(n));                           \
    }                                                               \
  } while (0)

/// Point event with caller-defined timestamp (e.g. simulation time).
#define WDM_TEL_EVENT(name, t)                                      \
  do {                                                              \
    if (::wdm::support::telemetry::enabled()) {                     \
      static const std::uint32_t wdm_tel_e =                        \
          ::wdm::support::telemetry::intern(name);                  \
      ::wdm::support::telemetry::record_event(wdm_tel_e, (t));      \
    }                                                               \
  } while (0)

/// RAII wall-clock span named `name` for the rest of the scope. `var` is a
/// ScopedSpan: call var.flow_in/flow_out/span_id for flow arrows.
#define WDM_TEL_SPAN(var, name)                                     \
  static const std::uint32_t wdm_tel_span_id_##var =                \
      ::wdm::support::telemetry::intern(name);                      \
  ::wdm::support::telemetry::ScopedSpan var(wdm_tel_span_id_##var)

#else  // !ROBUSTWDM_TELEMETRY — everything compiles away.

namespace wdm::support::telemetry::detail {
struct NullSink {
  void add(std::uint64_t = 1) {}
  void record_ns(std::uint64_t) {}
  void set(double) {}
};
inline NullSink g_null_sink;
}  // namespace wdm::support::telemetry::detail

#define WDM_TEL_DEBUG_STATIC_NAME(name) \
  do {                                  \
  } while (0)
#define WDM_TEL_COUNTER(name) (::wdm::support::telemetry::detail::g_null_sink)
#define WDM_TEL_HIST(name) (::wdm::support::telemetry::detail::g_null_sink)
#define WDM_TEL_GAUGE(name) (::wdm::support::telemetry::detail::g_null_sink)
#define WDM_TEL_NAME(name) (std::uint32_t{0})
#define WDM_TEL_COUNT_N(name, n) \
  do {                           \
  } while (0)
#define WDM_TEL_COUNT(name) \
  do {                      \
  } while (0)
#define WDM_TEL_COUNT_DYN(name, n) \
  do {                             \
  } while (0)
#define WDM_TEL_GAUGE_SET(name, v) \
  do {                             \
  } while (0)
#define WDM_TEL_GAUGE_ADD(name, d) \
  do {                             \
  } while (0)
#define WDM_TEL_EVENT(name, t) \
  do {                         \
  } while (0)
#define WDM_TEL_SPAN(var, name) \
  [[maybe_unused]] ::wdm::support::telemetry::ScopedSpan var(0u)

#endif  // ROBUSTWDM_TELEMETRY
