// Structured telemetry: named monotonic counters, log-spaced latency
// histograms, and lightweight span/event tracing, flushed to a single JSON
// file per run (schema "robustwdm-telemetry-v1", documented in DESIGN.md §8
// and validated by tools/telemetry_check).
//
// Cost contract (enforced by E18 / CI):
//   * compiled out (-DROBUSTWDM_TELEMETRY=OFF): every macro below expands to
//     nothing and `enabled()` is a constant false, so guarded blocks are
//     dead code — zero instructions on the hot paths;
//   * compiled in but disabled (the default at runtime): one relaxed atomic
//     load + branch per instrumentation site, <2% on bench_policies;
//   * enabled: counters are relaxed atomic adds on interned handles (no
//     lookups on the hot path — handles are cached in function-local
//     statics), histograms one clock read + one atomic add, spans/events go
//     to thread-local buffers and are only serialized at flush time.
//
// Determinism: counter values are a pure function of the work performed.
// Counters under `sim.*` count committed simulator outcomes and are
// identical for identical seeds *regardless of thread count* (the parallel
// batch engine's serial-equivalence guarantee). Counters under
// `rwa.parallel_batch.*` and all histogram/span timings depend on
// scheduling and are not replay-stable; tests/test_telemetry.cpp pins down
// the split.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#ifndef ROBUSTWDM_TELEMETRY
#define ROBUSTWDM_TELEMETRY 1
#endif

namespace wdm::support::telemetry {

#if ROBUSTWDM_TELEMETRY
namespace detail {
extern std::atomic<bool> g_enabled;
}
/// Runtime gate, read on every instrumentation site. Relaxed: flipping it
/// mid-run may lose a few in-flight samples, never corrupt state.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
constexpr bool compiled_in() { return true; }
#else
constexpr bool enabled() { return false; }
constexpr bool compiled_in() { return false; }
#endif

/// Enables/disables collection. Counters and histograms registered while
/// disabled still appear (as zeros) in the JSON output.
void set_enabled(bool on);

/// Zeroes every counter/histogram and drops all spans/events. Registered
/// names (and cached handles) stay valid. For tests and multi-run tools.
void reset();

/// Named monotonic counter. Obtain through counter() once (cache the
/// reference); add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend void reset();
  std::atomic<std::uint64_t> v_{0};
};

/// Latency histogram with fixed log-spaced (powers-of-two nanosecond)
/// buckets: bucket b counts samples in [2^(b-1), 2^b) ns, bucket 0 counts
/// {0}. Buckets are independent relaxed atomics, so one instance is safely
/// shared across threads and merging is an elementwise add.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record_ns(std::uint64_t ns);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum_ns() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min_ns() const;  // 0 when empty
  std::uint64_t max_ns() const;  // 0 when empty
  std::uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Lower/upper bound of bucket b in ns ([lo, hi)).
  static std::uint64_t bucket_lo(int b);
  static std::uint64_t bucket_hi(int b);

 private:
  friend void reset();
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Registry lookup-or-create. Takes a mutex — call once per site and cache
/// the reference (the macros below do this with function-local statics).
/// Returned references stay valid for the process lifetime.
Counter& counter(std::string_view name);
LatencyHistogram& histogram(std::string_view name);

/// Interns an event/span name; the id is what the hot-path record calls
/// take. Same caching advice as counter().
std::uint32_t intern(std::string_view name);

/// Snapshot of every registered counter (name -> value). For tests and
/// report generation, not hot paths.
std::map<std::string, std::uint64_t> counter_values();

/// Monotonic nanoseconds since the registry epoch (first telemetry call).
std::uint64_t now_ns();

/// Records a completed span [start_ns, start_ns + dur_ns) into this
/// thread's buffer. Buffers are bounded; overflow increments a drop counter
/// reported in the JSON.
void record_span(std::uint32_t name_id, std::uint64_t start_ns,
                 std::uint64_t dur_ns);

/// Records a timestamped point event. `t` is caller-defined time (the
/// simulator passes *simulation* time, which keeps event streams
/// deterministic for a fixed seed).
void record_event(std::uint32_t name_id, double t);

/// Writes the full JSON document (schema "robustwdm-telemetry-v1"); flushes
/// all thread buffers. Call after worker threads have joined.
void write_json(std::ostream& out);
/// write_json to `path`; returns false (and keeps the data) on I/O failure.
bool write_file(const std::string& path);

/// Stage stopwatch for split timings (aux build vs. Suurballe vs. Liang–
/// Shen): one clock read per split, all of it skipped when disabled. The
/// sink parameter is a template so call sites compile unchanged when
/// telemetry is compiled out (WDM_TEL_HIST then yields a null sink).
class SplitTimer {
 public:
  SplitTimer() : on_(enabled()) {
    if (on_) first_ = last_ = now_ns();
  }
  bool on() const { return on_; }
  /// Records time since construction or the previous split.
  template <class Sink>
  void split(Sink& h) {
    if (on_) {
      const std::uint64_t t = now_ns();
      h.record_ns(t - last_);
      last_ = t;
    }
  }
  /// Records time since construction (independent of splits).
  template <class Sink>
  void total(Sink& h) const {
    if (on_) h.record_ns(now_ns() - first_);
  }

 private:
  bool on_;
  std::uint64_t first_ = 0;
  std::uint64_t last_ = 0;
};

/// RAII span: records [ctor, dtor) into the thread buffer when enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::uint32_t name_id) : on_(enabled()), name_(name_id) {
    if (on_) t0_ = now_ns();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (on_) record_span(name_, t0_, now_ns() - t0_);
  }

 private:
  bool on_;
  std::uint32_t name_;
  std::uint64_t t0_ = 0;
};

}  // namespace wdm::support::telemetry

// Instrumentation macros. All of them cache registry handles in
// function-local statics, so the steady-state cost is the enabled() branch.
#if ROBUSTWDM_TELEMETRY

/// Expression yielding the (static, interned) counter for `name`.
#define WDM_TEL_COUNTER(name)                                       \
  ([]() -> ::wdm::support::telemetry::Counter& {                    \
    static auto& wdm_tel_c = ::wdm::support::telemetry::counter(name); \
    return wdm_tel_c;                                               \
  }())

/// Expression yielding the (static, interned) histogram for `name`.
#define WDM_TEL_HIST(name)                                          \
  ([]() -> ::wdm::support::telemetry::LatencyHistogram& {           \
    static auto& wdm_tel_h = ::wdm::support::telemetry::histogram(name); \
    return wdm_tel_h;                                               \
  }())

#define WDM_TEL_COUNT_N(name, n)                                    \
  do {                                                              \
    if (::wdm::support::telemetry::enabled()) {                     \
      WDM_TEL_COUNTER(name).add(                                    \
          static_cast<std::uint64_t>(n));                           \
    }                                                               \
  } while (0)
#define WDM_TEL_COUNT(name) WDM_TEL_COUNT_N(name, 1)

/// Point event with caller-defined timestamp (e.g. simulation time).
#define WDM_TEL_EVENT(name, t)                                      \
  do {                                                              \
    if (::wdm::support::telemetry::enabled()) {                     \
      static const std::uint32_t wdm_tel_e =                        \
          ::wdm::support::telemetry::intern(name);                  \
      ::wdm::support::telemetry::record_event(wdm_tel_e, (t));      \
    }                                                               \
  } while (0)

/// RAII wall-clock span named `name` for the rest of the scope.
#define WDM_TEL_SPAN(var, name)                                     \
  static const std::uint32_t wdm_tel_span_id_##var =                \
      ::wdm::support::telemetry::intern(name);                      \
  ::wdm::support::telemetry::ScopedSpan var(wdm_tel_span_id_##var)

#else  // !ROBUSTWDM_TELEMETRY — everything compiles away.

namespace wdm::support::telemetry::detail {
struct NullSink {
  void add(std::uint64_t = 1) {}
  void record_ns(std::uint64_t) {}
};
inline NullSink g_null_sink;
}  // namespace wdm::support::telemetry::detail

#define WDM_TEL_COUNTER(name) (::wdm::support::telemetry::detail::g_null_sink)
#define WDM_TEL_HIST(name) (::wdm::support::telemetry::detail::g_null_sink)
#define WDM_TEL_COUNT_N(name, n) \
  do {                           \
  } while (0)
#define WDM_TEL_COUNT(name) \
  do {                      \
  } while (0)
#define WDM_TEL_EVENT(name, t) \
  do {                         \
  } while (0)
#define WDM_TEL_SPAN(var, name) \
  do {                          \
  } while (0)

#endif  // ROBUSTWDM_TELEMETRY
