// Shared-memory parallel loop helper for Monte-Carlo sweeps.
//
// Uses OpenMP when the build found it (ROBUSTWDM_HAVE_OPENMP), otherwise runs
// serially. Library algorithms themselves are single-threaded and
// thread-compatible; parallelism lives at the replication level (independent
// simulation replicas / instances), which is the right grain for this
// workload.
#pragma once

#include <cstddef>

#ifdef ROBUSTWDM_HAVE_OPENMP
#include <omp.h>
#endif

namespace wdm::support {

/// Runs body(i) for i in [0, n), possibly in parallel. `body` must be safe to
/// invoke concurrently for distinct i (no shared mutable state without
/// synchronization).
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
#ifdef ROBUSTWDM_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

inline int hardware_threads() {
#ifdef ROBUSTWDM_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace wdm::support
