// Shared-memory parallel loop helper for Monte-Carlo sweeps.
//
// Uses OpenMP when the build found it (ROBUSTWDM_HAVE_OPENMP), otherwise runs
// serially. Library algorithms themselves are single-threaded and
// thread-compatible; parallelism lives at the replication level (independent
// simulation replicas / instances) or in the batch-provisioning engine
// (rwa::ParallelBatchEngine, which manages its own std::thread pool at the
// request grain).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>

#ifdef ROBUSTWDM_HAVE_OPENMP
#include <omp.h>
#endif

#include "support/env.hpp"

namespace wdm::support {

/// Runs body(i) for i in [0, n), possibly in parallel. `body` must be safe to
/// invoke concurrently for distinct i (no shared mutable state without
/// synchronization).
///
/// Exception contract: if any invocation throws, the first exception (in
/// completion order) is captured and rethrown on the calling thread after the
/// loop finishes; iterations not yet started when the exception lands are
/// skipped. Letting an exception escape an OpenMP region is immediate
/// std::terminate, so the capture is mandatory, not a convenience.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
#ifdef ROBUSTWDM_HAVE_OPENMP
  std::exception_ptr first_exception;
  std::atomic<bool> failed{false};
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    if (failed.load(std::memory_order_relaxed)) continue;
    try {
      body(static_cast<std::size_t>(i));
    } catch (...) {
      bool expected = false;
      if (failed.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
        first_exception = std::current_exception();
      }
    }
  }
  // The implicit barrier at the end of the parallel region orders the
  // winner's store of first_exception before this read.
  if (first_exception) std::rethrow_exception(first_exception);
#else
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

/// Usable hardware parallelism: OpenMP's view when built with it, otherwise
/// std::thread::hardware_concurrency() (so a non-OpenMP build on a 64-core
/// box does not pretend to be serial). Never less than 1. The ROBUSTWDM_THREADS
/// environment variable (parsed via support/env; malformed or non-positive
/// values ignored) caps the result — the CI / container knob for bounding
/// every parallel component at once.
inline int hardware_threads() {
  int n = 0;
#ifdef ROBUSTWDM_HAVE_OPENMP
  n = omp_get_max_threads();
#endif
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  const std::int64_t cap = env_int("ROBUSTWDM_THREADS", 0);
  if (cap > 0 && cap < static_cast<std::int64_t>(n)) n = static_cast<int>(cap);
  return n;
}

}  // namespace wdm::support
