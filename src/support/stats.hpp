// Small statistics helpers used by tests, benches, and the simulator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wdm::support {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Smallest/largest sample; both are 0.0 at count() == 0 (check count()
  /// before treating them as observed values).
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); `q` in [0, 1].
/// Degenerate inputs are well-defined: 0.0 for an empty sample, the sample
/// itself for a single point. Copies and sorts; intended for end-of-run
/// reporting, not hot paths.
double percentile(std::span<const double> xs, double q);

/// percentile() over a span the caller has already sorted ascending —
/// no copy, no allocation. Same interpolation and degenerate-input
/// contract; the precondition is checked in debug builds only.
double percentile_sorted(std::span<const double> sorted, double q);

/// Batch evaluation: sorts the sample once and returns one percentile per
/// entry of `qs` (each in [0, 1], any order). Equivalent to calling
/// percentile() per q but with a single sort, which is what the scale
/// benches want when reporting p50/p90/p99 ladders over large latency sets.
std::vector<double> percentiles(std::span<const double> xs,
                                std::span<const double> qs);

double mean_of(std::span<const double> xs);
double stddev_of(std::span<const double> xs);

/// Half-width of the 95% normal-approximation confidence interval.
/// 0 when fewer than two samples (no spread estimate exists).
double ci95_halfwidth(const RunningStats& s);

/// Span convenience wrapper around ci95_halfwidth; 0 for fewer than two
/// samples.
double confidence_95(std::span<const double> xs);

/// Simple fixed-width histogram for load distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t b) const { return counts_.at(b); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t b) const;
  double bin_hi(std::size_t b) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace wdm::support
