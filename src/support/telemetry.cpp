#include "support/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace wdm::support::telemetry {

#if ROBUSTWDM_TELEMETRY
namespace detail {
std::atomic<bool> g_enabled{false};
}
#endif

namespace {

/// Per-thread span/event buffer. Appends lock the buffer's own mutex
/// (uncontended except against a concurrent flush); the registry keeps the
/// buffer alive after the owning thread exits so nothing is lost.
struct ThreadBuffer {
  // Bounds keep a long enabled run from exhausting memory; overflow is
  // counted and reported in the JSON "dropped" section.
  static constexpr std::size_t kMaxSpans = 1u << 18;
  static constexpr std::size_t kMaxEvents = 1u << 18;

  struct Span {
    std::uint32_t name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
  };
  struct Event {
    std::uint32_t name;
    double t;
  };

  std::mutex mu;
  std::uint32_t thread_id = 0;
  std::vector<Span> spans;
  std::vector<Event> events;
  std::uint64_t spans_dropped = 0;
  std::uint64_t events_dropped = 0;
};

struct Registry {
  std::mutex mu;
  // Stable addresses: handles cached at instrumentation sites must survive
  // rehashing, so values live in deques behind name maps.
  std::map<std::string, Counter*, std::less<>> counters;
  std::deque<Counter> counter_pool;
  std::map<std::string, LatencyHistogram*, std::less<>> histograms;
  std::deque<LatencyHistogram> histogram_pool;
  std::map<std::string, std::uint32_t, std::less<>> name_ids;
  std::vector<std::string> names;  // id -> name
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_thread_id = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: handles outlive main()
    return *r;
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* tb = [] {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    r.buffers.push_back(std::make_unique<ThreadBuffer>());
    r.buffers.back()->thread_id = r.next_thread_id++;
    return r.buffers.back().get();
  }();
  return *tb;
}

void json_escape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void set_enabled(bool on) {
#if ROBUSTWDM_TELEMETRY
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  const int b =
      ns == 0 ? 0 : std::min(static_cast<int>(std::bit_width(ns)), kBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b].fetch_add(other.bucket_count(b), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_ns(), std::memory_order_relaxed);
  if (other.count() > 0) {
    std::uint64_t v = other.min_.load(std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    v = other.max_.load(std::memory_order_relaxed);
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
}

std::uint64_t LatencyHistogram::min_ns() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::max_ns() const {
  return max_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::bucket_lo(int b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t LatencyHistogram::bucket_hi(int b) {
  return b == 0 ? 1
                : (b >= kBuckets - 1 ? ~std::uint64_t{0}
                                     : std::uint64_t{1} << b);
}

Counter& counter(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.counters.find(name);
  if (it != r.counters.end()) return *it->second;
  r.counter_pool.emplace_back();
  Counter* c = &r.counter_pool.back();
  r.counters.emplace(std::string(name), c);
  return *c;
}

LatencyHistogram& histogram(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.histograms.find(name);
  if (it != r.histograms.end()) return *it->second;
  r.histogram_pool.emplace_back();
  LatencyHistogram* h = &r.histogram_pool.back();
  r.histograms.emplace(std::string(name), h);
  return *h;
}

std::uint32_t intern(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.name_ids.find(name);
  if (it != r.name_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(r.names.size());
  r.names.emplace_back(name);
  r.name_ids.emplace(r.names.back(), id);
  return id;
}

std::map<std::string, std::uint64_t> counter_values() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : r.counters) out.emplace(name, c->value());
  return out;
}

std::uint64_t now_ns() {
  const auto d = std::chrono::steady_clock::now() - Registry::instance().epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

void record_span(std::uint32_t name_id, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  ThreadBuffer& tb = thread_buffer();
  std::lock_guard<std::mutex> lk(tb.mu);
  if (tb.spans.size() >= ThreadBuffer::kMaxSpans) {
    ++tb.spans_dropped;
    return;
  }
  tb.spans.push_back({name_id, start_ns, dur_ns});
}

void record_event(std::uint32_t name_id, double t) {
  ThreadBuffer& tb = thread_buffer();
  std::lock_guard<std::mutex> lk(tb.mu);
  if (tb.events.size() >= ThreadBuffer::kMaxEvents) {
    ++tb.events_dropped;
    return;
  }
  tb.events.push_back({name_id, t});
}

void reset() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  for (Counter& c : r.counter_pool) {
    c.v_.store(0, std::memory_order_relaxed);
  }
  for (LatencyHistogram& h : r.histogram_pool) {
    for (auto& b : h.buckets_) b.store(0, std::memory_order_relaxed);
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0, std::memory_order_relaxed);
    h.min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    h.max_.store(0, std::memory_order_relaxed);
  }
  for (auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    tb->spans.clear();
    tb->events.clear();
    tb->spans_dropped = 0;
    tb->events_dropped = 0;
  }
}

void write_json(std::ostream& out) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\n";
  out << "  \"schema\": \"robustwdm-telemetry-v1\",\n";
  out << "  \"compiled\": " << (compiled_in() ? "true" : "false") << ",\n";
  out << "  \"enabled\": " << (enabled() ? "true" : "false") << ",\n";

  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": { \"unit\": \"ns\", \"count\": " << h->count()
        << ", \"sum\": " << h->sum_ns() << ", \"min\": " << h->min_ns()
        << ", \"max\": " << h->max_ns() << ", \"buckets\": [";
    bool bf = true;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      if (!bf) out << ", ";
      out << "{ \"lo\": " << LatencyHistogram::bucket_lo(b)
          << ", \"hi\": " << LatencyHistogram::bucket_hi(b)
          << ", \"count\": " << n << " }";
      bf = false;
    }
    out << "] }";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  std::uint64_t spans_dropped = 0;
  std::uint64_t events_dropped = 0;
  out << "  \"spans\": [";
  first = true;
  for (const auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    spans_dropped += tb->spans_dropped;
    events_dropped += tb->events_dropped;
    for (const auto& s : tb->spans) {
      out << (first ? "\n" : ",\n") << "    { \"name\": \"";
      json_escape(out, r.names[s.name]);
      out << "\", \"thread\": " << tb->thread_id
          << ", \"start_ns\": " << s.start_ns << ", \"dur_ns\": " << s.dur_ns
          << " }";
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "],\n";

  out << "  \"events\": [";
  first = true;
  for (const auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    for (const auto& e : tb->events) {
      out << (first ? "\n" : ",\n") << "    { \"name\": \"";
      json_escape(out, r.names[e.name]);
      out << "\", \"thread\": " << tb->thread_id << ", \"t\": " << e.t << " }";
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "],\n";

  out << "  \"dropped\": { \"spans\": " << spans_dropped
      << ", \"events\": " << events_dropped << " }\n";
  out << "}\n";
}

bool write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

}  // namespace wdm::support::telemetry
