#include "support/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>  // dup() for the fd-sink variant of start_stream

#if __has_include("robustwdm_buildinfo.hpp")
#include "robustwdm_buildinfo.hpp"
#else  // out-of-CMake compile (tooling, IDE): degrade gracefully.
#define ROBUSTWDM_GIT_DESCRIBE "unknown"
#define ROBUSTWDM_COMPILER "unknown"
#define ROBUSTWDM_BUILD_TYPE "unknown"
#define ROBUSTWDM_CXX_FLAGS ""
#endif

namespace wdm::support::telemetry {

#if ROBUSTWDM_TELEMETRY
namespace detail {
std::atomic<bool> g_enabled{false};
}
#endif

namespace {

/// Per-thread span/event ring buffer. Appends lock the buffer's own mutex
/// (uncontended except against a concurrent flush); the registry keeps the
/// buffer alive after the owning thread exits so nothing is lost. Overflow
/// overwrites the oldest record (flight-recorder semantics) and is counted —
/// per buffer and in the tel.dropped_* counters surfaced in the dump header.
struct ThreadBuffer {
  static constexpr std::size_t kMaxSpans = kMaxSpansPerThread;
  static constexpr std::size_t kMaxEvents = kMaxEventsPerThread;

  struct Event {
    std::uint32_t name;
    double t;
  };

  std::mutex mu;
  std::uint32_t thread_id = 0;
  std::string name;
  std::vector<SpanRecord> spans;
  std::size_t span_head = 0;  // ring cursor, meaningful once full
  std::vector<Event> events;
  std::size_t event_head = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t events_dropped = 0;
};

/// Flight-recorder retention state: which request traces to keep at export
/// time. Updated only when a trace *root* span completes (per request, not
/// per span), under its own mutex — never nested with registry or buffer
/// locks.
struct Retention {
  std::mutex mu;
  std::size_t last_k = 0;
  std::size_t worst_k = 0;
  std::deque<TraceId> recent;  // trace ids by root completion order
  /// Min-heap on root duration so the smallest of the worst-K pops first.
  std::vector<std::pair<std::uint64_t, TraceId>> worst;

  static Retention& instance() {
    static Retention* r = new Retention;
    return *r;
  }
};

std::atomic<bool> g_retention_active{false};

struct Registry {
  std::mutex mu;
  // Stable addresses: handles cached at instrumentation sites must survive
  // rehashing, so values live in deques behind name maps.
  std::map<std::string, Counter*, std::less<>> counters;
  std::deque<Counter> counter_pool;
  std::map<std::string, LatencyHistogram*, std::less<>> histograms;
  std::deque<LatencyHistogram> histogram_pool;
  std::map<std::string, Gauge*, std::less<>> gauges;
  std::deque<Gauge> gauge_pool;
  std::map<std::string, Series*, std::less<>> series;
  std::deque<Series> series_pool;
  std::map<std::string, std::string> meta;
  std::map<std::string, std::uint32_t, std::less<>> name_ids;
  std::vector<std::string> names;  // id -> name
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_thread_id = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  Registry() {
    // Build/run metadata baked into every dump (schema v2 `meta`), so
    // tools/teldiff can refuse apples-to-oranges comparisons. App-level keys
    // ("seed", "command") are added by the entry points via set_meta().
    meta["git"] = ROBUSTWDM_GIT_DESCRIBE;
    meta["compiler"] = ROBUSTWDM_COMPILER;
    meta["build_type"] = ROBUSTWDM_BUILD_TYPE;
    meta["cxx_flags"] = ROBUSTWDM_CXX_FLAGS;
    meta["telemetry_compiled"] = std::string(compiled_in() ? "1" : "0");
    meta["hardware_threads"] =
        std::to_string(std::thread::hardware_concurrency());
    const char* env = std::getenv("ROBUSTWDM_THREADS");
    meta["threads_env"] = std::string(env != nullptr ? env : "");
  }

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: handles outlive main()
    return *r;
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* tb = [] {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    r.buffers.push_back(std::make_unique<ThreadBuffer>());
    r.buffers.back()->thread_id = r.next_thread_id++;
    return r.buffers.back().get();
  }();
  return *tb;
}

void json_escape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

/// A trace root finished: remember it for last-K / worst-K retention.
/// Deduplicates the common multi-root case (speculation + commit spans of
/// the same request both have parent 0) against the most recent entry.
void note_trace_root(TraceId trace, std::uint64_t dur_ns) {
  if (!g_retention_active.load(std::memory_order_relaxed)) return;
  Retention& rt = Retention::instance();
  std::lock_guard<std::mutex> lk(rt.mu);
  if (rt.last_k > 0) {
    if (rt.recent.empty() || rt.recent.back() != trace) {
      rt.recent.push_back(trace);
      while (rt.recent.size() > rt.last_k) rt.recent.pop_front();
    }
  }
  if (rt.worst_k > 0) {
    const auto greater_dur = [](const std::pair<std::uint64_t, TraceId>& a,
                                const std::pair<std::uint64_t, TraceId>& b) {
      return a.first > b.first;
    };
    rt.worst.emplace_back(dur_ns, trace);
    std::push_heap(rt.worst.begin(), rt.worst.end(), greater_dur);
    while (rt.worst.size() > rt.worst_k) {
      std::pop_heap(rt.worst.begin(), rt.worst.end(), greater_dur);
      rt.worst.pop_back();
    }
  }
}

/// The trace ids an export keeps, or empty + false when retention is off.
std::pair<std::set<TraceId>, bool> retained_traces() {
  if (!g_retention_active.load(std::memory_order_relaxed)) return {{}, false};
  Retention& rt = Retention::instance();
  std::lock_guard<std::mutex> lk(rt.mu);
  std::set<TraceId> keep;
  keep.insert(rt.recent.begin(), rt.recent.end());
  for (const auto& [dur, id] : rt.worst) keep.insert(id);
  return {std::move(keep), true};
}

bool span_retained(const SpanRecord& s, const std::set<TraceId>& keep,
                   bool filter) {
  return !filter || s.trace == 0 || keep.count(s.trace) != 0;
}

/// Visits every buffered span in record order (oldest first, ring-aware).
template <class Fn>
void for_each_span(const ThreadBuffer& tb, Fn&& fn) {
  const std::size_t n = tb.spans.size();
  const bool wrapped = n == ThreadBuffer::kMaxSpans && tb.spans_dropped > 0;
  const std::size_t head = wrapped ? tb.span_head : 0;
  for (std::size_t i = 0; i < n; ++i) fn(tb.spans[(head + i) % n]);
}

template <class Fn>
void for_each_event(const ThreadBuffer& tb, Fn&& fn) {
  const std::size_t n = tb.events.size();
  const bool wrapped = n == ThreadBuffer::kMaxEvents && tb.events_dropped > 0;
  const std::size_t head = wrapped ? tb.event_head : 0;
  for (std::size_t i = 0; i < n; ++i) fn(tb.events[(head + i) % n]);
}

}  // namespace

void set_enabled(bool on) {
#if ROBUSTWDM_TELEMETRY
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  const int b =
      ns == 0 ? 0 : std::min(static_cast<int>(std::bit_width(ns)), kBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b].fetch_add(other.bucket_count(b), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_ns(), std::memory_order_relaxed);
  if (other.count() > 0) {
    std::uint64_t v = other.min_.load(std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    v = other.max_.load(std::memory_order_relaxed);
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
}

std::uint64_t LatencyHistogram::min_ns() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::max_ns() const {
  return max_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::bucket_lo(int b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t LatencyHistogram::bucket_hi(int b) {
  return b == 0 ? 1
                : (b >= kBuckets - 1 ? ~std::uint64_t{0}
                                     : std::uint64_t{1} << b);
}

std::uint64_t LatencyHistogram::percentile_ns(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += bucket_count(b);
    if (cum >= target) {
      // Upper-bound estimate, clamped to the exact observed maximum: the true
      // quantile never exceeds max_ns(), and the topmost sample's bucket_hi
      // (as well as the saturating last bucket) would otherwise over-report.
      return b == kBuckets - 1 ? max_ns() : std::min(bucket_hi(b), max_ns());
    }
  }
  return max_ns();
}

void Series::add(double t, double v) {
  // Resolve the drop counter before taking mu_ (counter() locks the
  // registry; never nest registry and series locks).
  static Counter& dropped_points = counter("tel.dropped_points");
  std::lock_guard<std::mutex> lk(mu_);
  if (pts_.size() >= kMaxPoints) {
    ++dropped_;
    dropped_points.add();
    return;
  }
  pts_.emplace_back(t, v);
}

std::vector<std::pair<double, double>> Series::points() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pts_;
}

std::size_t Series::tail_into(std::size_t from,
                              std::vector<std::pair<double, double>>& out) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (from > pts_.size()) from = 0;  // series was reset() since the cursor
  out.insert(out.end(), pts_.begin() + static_cast<std::ptrdiff_t>(from),
             pts_.end());
  return pts_.size();
}

std::uint64_t Series::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

Counter& counter(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.counters.find(name);
  if (it != r.counters.end()) return *it->second;
  r.counter_pool.emplace_back();
  Counter* c = &r.counter_pool.back();
  r.counters.emplace(std::string(name), c);
  return *c;
}

LatencyHistogram& histogram(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.histograms.find(name);
  if (it != r.histograms.end()) return *it->second;
  r.histogram_pool.emplace_back();
  LatencyHistogram* h = &r.histogram_pool.back();
  r.histograms.emplace(std::string(name), h);
  return *h;
}

Gauge& gauge(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.gauges.find(name);
  if (it != r.gauges.end()) return *it->second;
  r.gauge_pool.emplace_back();
  Gauge* g = &r.gauge_pool.back();
  r.gauges.emplace(std::string(name), g);
  return *g;
}

Series& series(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.series.find(name);
  if (it != r.series.end()) return *it->second;
  r.series_pool.emplace_back();
  Series* s = &r.series_pool.back();
  r.series.emplace(std::string(name), s);
  return *s;
}

std::uint32_t intern(std::string_view name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.name_ids.find(name);
  if (it != r.name_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(r.names.size());
  r.names.emplace_back(name);
  r.name_ids.emplace(r.names.back(), id);
  return id;
}

std::map<std::string, std::uint64_t> counter_values() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : r.counters) out.emplace(name, c->value());
  return out;
}

std::map<std::string, double> gauge_values() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  std::map<std::string, double> out;
  for (const auto& [name, g] : r.gauges) out.emplace(name, g->value());
  return out;
}

std::map<std::string, std::vector<std::pair<double, double>>> series_values() {
  // Collect the handles under the registry lock, read each series under its
  // own lock (points() copies).
  std::vector<std::pair<std::string, Series*>> handles;
  {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [name, s] : r.series) handles.emplace_back(name, s);
  }
  std::map<std::string, std::vector<std::pair<double, double>>> out;
  for (auto& [name, s] : handles) out.emplace(name, s->points());
  return out;
}

void set_meta(std::string_view key, std::string_view value) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  r.meta[std::string(key)] = std::string(value);
}

std::map<std::string, std::string> meta_values() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.meta;
}

void set_thread_name(std::string_view name) {
  ThreadBuffer& tb = thread_buffer();
  std::lock_guard<std::mutex> lk(tb.mu);
  tb.name = std::string(name);
}

std::uint64_t now_ns() {
  const auto d = std::chrono::steady_clock::now() - Registry::instance().epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

namespace detail {

RequestCtx& tls_ctx() {
  thread_local RequestCtx ctx;
  return ctx;
}

std::uint64_t new_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void check_static_name(const std::string& cached, std::string_view now) {
  if (cached == now) return;
  std::fprintf(
      stderr,
      "telemetry: a WDM_TEL_* static-handle macro was invoked with a "
      "runtime-varying name (first \"%s\", now \"%.*s\"); every call at this "
      "site folds into the first-seen metric. Use WDM_TEL_COUNT_DYN or the "
      "counter()/gauge()/histogram() functions for dynamic names.\n",
      cached.c_str(), static_cast<int>(now.size()), now.data());
  std::abort();
}

}  // namespace detail

RequestCtx current_ctx() { return detail::tls_ctx(); }

void set_trace_retention(std::size_t last_k, std::size_t worst_k) {
  Retention& rt = Retention::instance();
  std::lock_guard<std::mutex> lk(rt.mu);
  rt.last_k = last_k;
  rt.worst_k = worst_k;
  if (last_k == 0) rt.recent.clear();
  if (worst_k == 0) rt.worst.clear();
  g_retention_active.store(last_k > 0 || worst_k > 0,
                           std::memory_order_relaxed);
}

void record_span(const SpanRecord& s) {
  // Resolve the drop counter before taking tb.mu (counter() locks the
  // registry; flush locks registry-then-buffer, so never nest the other way).
  static Counter& dropped_spans = counter("tel.dropped_spans");
  if (s.trace != 0 && s.parent_id == 0) note_trace_root(s.trace, s.dur_ns);
  ThreadBuffer& tb = thread_buffer();
  std::lock_guard<std::mutex> lk(tb.mu);
  if (tb.spans.size() >= ThreadBuffer::kMaxSpans) {
    // Ring overwrite: keep the most recent spans, count the loss.
    tb.spans[tb.span_head] = s;
    tb.span_head = (tb.span_head + 1) % ThreadBuffer::kMaxSpans;
    ++tb.spans_dropped;
    dropped_spans.add();
    return;
  }
  tb.spans.push_back(s);
}

void record_span(std::uint32_t name_id, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  const RequestCtx ctx = detail::tls_ctx();
  record_span({name_id, ctx.trace, detail::new_span_id(), ctx.parent_span,
               start_ns, dur_ns, 0, 0});
}

void record_event(std::uint32_t name_id, double t) {
  static Counter& dropped_events = counter("tel.dropped_events");
  ThreadBuffer& tb = thread_buffer();
  std::lock_guard<std::mutex> lk(tb.mu);
  if (tb.events.size() >= ThreadBuffer::kMaxEvents) {
    tb.events[tb.event_head] = {name_id, t};
    tb.event_head = (tb.event_head + 1) % ThreadBuffer::kMaxEvents;
    ++tb.events_dropped;
    dropped_events.add();
    return;
  }
  tb.events.push_back({name_id, t});
}

void reset() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  for (Counter& c : r.counter_pool) {
    c.v_.store(0, std::memory_order_relaxed);
  }
  for (LatencyHistogram& h : r.histogram_pool) {
    for (auto& b : h.buckets_) b.store(0, std::memory_order_relaxed);
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0, std::memory_order_relaxed);
    h.min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    h.max_.store(0, std::memory_order_relaxed);
  }
  for (Gauge& g : r.gauge_pool) {
    g.bits_.store(std::bit_cast<std::uint64_t>(0.0),
                  std::memory_order_relaxed);
  }
  for (Series& s : r.series_pool) {
    std::lock_guard<std::mutex> slk(s.mu_);
    s.pts_.clear();
    s.dropped_ = 0;
  }
  for (auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    tb->spans.clear();
    tb->span_head = 0;
    tb->events.clear();
    tb->event_head = 0;
    tb->spans_dropped = 0;
    tb->events_dropped = 0;
  }
  {
    Retention& rt = Retention::instance();
    std::lock_guard<std::mutex> rlk(rt.mu);
    rt.recent.clear();
    rt.worst.clear();
    rt.last_k = 0;
    rt.worst_k = 0;
    g_retention_active.store(false, std::memory_order_relaxed);
  }
}

std::vector<SpanSnapshot> span_snapshot() {
  const auto [keep, filter] = retained_traces();
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<SpanSnapshot> out;
  for (const auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    for_each_span(*tb, [&](const SpanRecord& s) {
      if (span_retained(s, keep, filter)) out.push_back({s, tb->thread_id});
    });
  }
  return out;
}

void write_json(std::ostream& out) {
  const auto [keep, filter] = retained_traces();
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  out.precision(std::numeric_limits<double>::max_digits10);

  // Gather drop totals first: the dump header surfaces them so truncated
  // data is visible without scrolling to the bottom.
  std::uint64_t spans_dropped = 0;
  std::uint64_t events_dropped = 0;
  for (const auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    spans_dropped += tb->spans_dropped;
    events_dropped += tb->events_dropped;
  }
  std::uint64_t points_dropped = 0;
  for (const Series& s : r.series_pool) points_dropped += s.dropped();

  out << "{\n";
  out << "  \"schema\": \"robustwdm-telemetry-v2\",\n";
  out << "  \"compiled\": " << (compiled_in() ? "true" : "false") << ",\n";
  out << "  \"enabled\": " << (enabled() ? "true" : "false") << ",\n";
  out << "  \"dropped\": { \"spans\": " << spans_dropped
      << ", \"events\": " << events_dropped
      << ", \"points\": " << points_dropped << " },\n";

  out << "  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : r.meta) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, key);
    out << "\": \"";
    json_escape(out, value);
    out << "\"";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"counters\": {";
  first = true;
  for (const auto& [name, c] : r.counters) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  // Non-finite gauge values (never produced by the in-tree instrumentation,
  // but set() takes any double) would not be valid JSON — skip them.
  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    const double v = g->value();
    if (!std::isfinite(v)) continue;
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": " << v;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": { \"unit\": \"ns\", \"count\": " << h->count()
        << ", \"sum\": " << h->sum_ns() << ", \"min\": " << h->min_ns()
        << ", \"max\": " << h->max_ns()
        << ", \"p50\": " << h->percentile_ns(0.50)
        << ", \"p90\": " << h->percentile_ns(0.90)
        << ", \"p99\": " << h->percentile_ns(0.99) << ", \"buckets\": [";
    bool bf = true;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      if (!bf) out << ", ";
      out << "{ \"lo\": " << LatencyHistogram::bucket_lo(b)
          << ", \"hi\": " << LatencyHistogram::bucket_hi(b)
          << ", \"count\": " << n << " }";
      bf = false;
    }
    out << "] }";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"series\": {";
  first = true;
  for (const auto& [name, s] : r.series) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << "\": { \"dropped\": " << s->dropped() << ", \"points\": [";
    bool pf = true;
    for (const auto& [t, v] : s->points()) {
      if (!pf) out << ", ";
      out << "[" << t << ", " << v << "]";
      pf = false;
    }
    out << "] }";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"spans\": [";
  first = true;
  for (const auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    for_each_span(*tb, [&](const SpanRecord& s) {
      if (!span_retained(s, keep, filter)) return;
      out << (first ? "\n" : ",\n") << "    { \"name\": \"";
      json_escape(out, r.names[s.name]);
      out << "\", \"thread\": " << tb->thread_id << ", \"trace\": " << s.trace
          << ", \"span\": " << s.span_id << ", \"parent\": " << s.parent_id
          << ", \"flow_in\": " << s.flow_in << ", \"flow_out\": " << s.flow_out
          << ", \"start_ns\": " << s.start_ns << ", \"dur_ns\": " << s.dur_ns
          << " }";
      first = false;
    });
  }
  out << (first ? "" : "\n  ") << "],\n";

  out << "  \"events\": [";
  first = true;
  for (const auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    for_each_event(*tb, [&](const ThreadBuffer::Event& e) {
      out << (first ? "\n" : ",\n") << "    { \"name\": \"";
      json_escape(out, r.names[e.name]);
      out << "\", \"thread\": " << tb->thread_id << ", \"t\": " << e.t << " }";
      first = false;
    });
  }
  out << (first ? "" : "\n  ") << "]\n";
  out << "}\n";
}

bool write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

namespace {

/// Microsecond timestamp for Chrome trace events (fractional ns preserved).
double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

void write_chrome_trace(std::ostream& out) {
  const auto [keep, filter] = retained_traces();
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  out.precision(std::numeric_limits<double>::max_digits10);

  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  // Process + thread metadata: pid 1 is the wall-clock span timeline, pid 2
  // carries sim-time point events (a different clock; kept on a separate
  // "process" so Perfetto does not conflate the time bases).
  sep();
  out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"robustwdm\"}}";
  sep();
  out << "{\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"robustwdm sim-time\"}}";
  for (const auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    sep();
    out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tb->thread_id
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
    if (tb->name.empty()) {
      out << "thread-" << tb->thread_id;
    } else {
      json_escape(out, tb->name);
    }
    out << "\"}}";
  }

  for (const auto& tb : r.buffers) {
    std::lock_guard<std::mutex> blk(tb->mu);
    for_each_span(*tb, [&](const SpanRecord& s) {
      if (!span_retained(s, keep, filter)) return;
      sep();
      out << "{\"name\": \"";
      json_escape(out, r.names[s.name]);
      out << "\", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
          << tb->thread_id << ", \"ts\": " << to_us(s.start_ns)
          << ", \"dur\": " << to_us(s.dur_ns)
          << ", \"args\": {\"trace\": " << s.trace << ", \"span\": "
          << s.span_id << ", \"parent\": " << s.parent_id << "}}";
      // Flow arrows: the producer's "s" binds at this span's end, the
      // consumer's "f" (binding point "enclosing") at its start — drawn by
      // Perfetto as an arrow across the speculate -> commit handoff.
      if (s.flow_out != 0) {
        sep();
        out << "{\"name\": \"handoff\", \"cat\": \"flow\", \"ph\": \"s\", "
               "\"id\": "
            << s.flow_out << ", \"pid\": 1, \"tid\": " << tb->thread_id
            << ", \"ts\": " << to_us(s.start_ns + s.dur_ns) << "}";
      }
      if (s.flow_in != 0) {
        sep();
        out << "{\"name\": \"handoff\", \"cat\": \"flow\", \"ph\": \"f\", "
               "\"bp\": \"e\", \"id\": "
            << s.flow_in << ", \"pid\": 1, \"tid\": " << tb->thread_id
            << ", \"ts\": " << to_us(s.start_ns) << "}";
      }
    });
    for_each_event(*tb, [&](const ThreadBuffer::Event& e) {
      sep();
      // Sim time is unitless; export 1 sim-time unit == 1s (1e6 us) so the
      // series reads naturally at Perfetto's default zoom.
      out << "{\"name\": \"";
      json_escape(out, r.names[e.name]);
      out << "\", \"cat\": \"sim\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 2, "
             "\"tid\": "
          << tb->thread_id << ", \"ts\": " << e.t * 1e6 << "}";
    });
  }
  out << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return out.good();
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

namespace {

/// "rwa.parallel_batch.retry_queue_depth" -> "robustwdm_rwa_parallel_batch_
/// retry_queue_depth": the exposition grammar allows [a-zA-Z_:][a-zA-Z0-9_:]*
/// so every other byte folds to '_'.
std::string prom_name(std::string_view name) {
  std::string out = "robustwdm_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void prom_label_escape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\\': out << "\\\\"; break;
      case '"': out << "\\\""; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
}

}  // namespace

void write_prometheus(std::ostream& out) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);
  out.precision(std::numeric_limits<double>::max_digits10);

  // Build metadata as the conventional info-style constant gauge.
  out << "# TYPE robustwdm_build_info gauge\nrobustwdm_build_info{";
  bool first = true;
  for (const auto& [key, value] : r.meta) {
    if (!first) out << ",";
    out << prom_name(key).substr(sizeof("robustwdm_") - 1) << "=\"";
    prom_label_escape(out, value);
    out << "\"";
    first = false;
  }
  out << "} 1\n";

  for (const auto& [name, c] : r.counters) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << "_total counter\n"
        << p << "_total " << c->value() << "\n";
  }
  for (const auto& [name, g] : r.gauges) {
    const double v = g->value();
    if (!std::isfinite(v)) continue;
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << v << "\n";
  }
  // Histograms keep their native nanosecond unit (suffix _ns, not doubled
  // when the registry name already carries it): buckets are cumulative
  // counts with `le` at the power-of-two upper bounds, plus the mandatory
  // +Inf bucket, _sum, and _count.
  for (const auto& [name, h] : r.histograms) {
    std::string p = prom_name(name);
    if (!p.ends_with("_ns")) p += "_ns";
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cum = 0;
    for (int b = 0; b < LatencyHistogram::kBuckets - 1; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      cum += n;
      out << p << "_bucket{le=\"" << LatencyHistogram::bucket_hi(b) << "\"} "
          << cum << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << h->count() << "\n"
        << p << "_sum " << h->sum_ns() << "\n"
        << p << "_count " << h->count() << "\n";
  }
}

bool write_prometheus_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_prometheus(out);
  return out.good();
}

// ---------------------------------------------------------------------------
// SnapshotPublisher: the background streaming thread (DESIGN.md §8.5).

namespace {

/// Singleton state for the one allowed stream. `mu` serializes
/// start_stream/stop_stream; the capture thread itself never takes it (it
/// only takes the registry and cv locks), so stop can join under `mu`.
struct Publisher {
  std::mutex mu;
  std::thread th;
  std::FILE* sink = nullptr;
  bool active = false;

  std::mutex cv_mu;
  std::condition_variable cv;
  bool stop_requested = false;

  double interval_s = 1.0;
  std::uint64_t seq = 0;
  std::uint64_t frames_written = 0;
  std::uint64_t frames_dropped = 0;
  // Delta baseline: counter values at the previous frame (seeded at
  // start_stream, so frame 1 covers the first interval, not process
  // history), and per-series cursors into the points vector.
  std::map<std::string, std::uint64_t> prev_counters;
  std::map<std::string, std::size_t> series_cursor;
  // Resolved before the thread launches; add() is lock-free.
  Counter* c_frames = nullptr;
  Counter* c_dropped = nullptr;

  static Publisher& instance() {
    static Publisher* p = new Publisher;
    return *p;
  }
};

/// Serializes one JSONL frame. Interval frames carry counter *deltas*
/// (nonzero only, clamped at 0 so a mid-stream reset() never yields a
/// negative delta), every finite gauge, quantiles of nonempty histograms,
/// and the tail of each series past its cursor. The final frame is shaped so
/// its object is a valid teldiff root: cumulative counters, full histogram
/// stats, meta, and complete series.
std::string build_frame(Publisher& p, bool final_frame) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lk(r.mu);

  ++p.seq;
  os << "{\"schema\": \"robustwdm-telemetry-stream-v1\", \"kind\": \""
     << (final_frame ? "final" : "interval") << "\", \"seq\": " << p.seq
     << ", \"t_ns\": " << now_ns();

  if (final_frame) {
    std::uint64_t spans_dropped = 0;
    std::uint64_t events_dropped = 0;
    for (const auto& tb : r.buffers) {
      std::lock_guard<std::mutex> blk(tb->mu);
      spans_dropped += tb->spans_dropped;
      events_dropped += tb->events_dropped;
    }
    std::uint64_t points_dropped = 0;
    for (const Series& s : r.series_pool) points_dropped += s.dropped();
    os << ", \"frames\": " << p.frames_written
       << ", \"dropped_frames\": " << p.frames_dropped
       << ", \"dropped\": {\"spans\": " << spans_dropped
       << ", \"events\": " << events_dropped
       << ", \"points\": " << points_dropped << "}";
    os << ", \"meta\": {";
    bool first = true;
    for (const auto& [key, value] : r.meta) {
      if (!first) os << ", ";
      os << "\"";
      json_escape(os, key);
      os << "\": \"";
      json_escape(os, value);
      os << "\"";
      first = false;
    }
    os << "}";
  }

  os << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    const std::uint64_t cur = c->value();
    std::uint64_t emit = cur;
    if (!final_frame) {
      auto [it, inserted] = p.prev_counters.try_emplace(name, 0);
      const std::uint64_t prev = it->second;
      emit = cur >= prev ? cur - prev : 0;  // clamp across a reset()
      it->second = cur;
      if (emit == 0) continue;
    }
    if (!first) os << ", ";
    os << "\"";
    json_escape(os, name);
    os << "\": " << emit;
    first = false;
  }
  os << "}";

  os << ", \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    const double v = g->value();
    if (!std::isfinite(v)) continue;
    if (!first) os << ", ";
    os << "\"";
    json_escape(os, name);
    os << "\": " << v;
    first = false;
  }
  os << "}";

  os << ", \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    if (h->count() == 0) continue;
    if (!first) os << ", ";
    os << "\"";
    json_escape(os, name);
    os << "\": {";
    if (final_frame) {
      os << "\"unit\": \"ns\", ";
    }
    os << "\"count\": " << h->count();
    if (final_frame) {
      os << ", \"sum\": " << h->sum_ns() << ", \"min\": " << h->min_ns()
         << ", \"max\": " << h->max_ns();
    }
    os << ", \"p50\": " << h->percentile_ns(0.50)
       << ", \"p90\": " << h->percentile_ns(0.90)
       << ", \"p99\": " << h->percentile_ns(0.99) << "}";
    first = false;
  }
  os << "}";

  // Series tails (registry -> series lock order, same as write_json). An
  // interval frame carries at most kMaxTailPoints per series: a bench that
  // samples tens of thousands of points per interval would otherwise make
  // every frame hundreds of KB and the serialization cost alone would blow
  // the E23 overhead bar. Skipped points are not lost — the cursor jumps
  // over them and the final frame re-emits every series in full; live
  // tailers (wdmtop) only render the newest samples anyway.
  constexpr std::size_t kMaxTailPoints = 64;
  std::vector<std::pair<double, double>> tail;
  os << ", \"series\": {";
  first = true;
  for (const auto& [name, s] : r.series) {
    std::size_t& cursor = p.series_cursor[name];
    tail.clear();
    // tail_into treats a cursor past the end (series reset() mid-stream) as
    // 0, matching the reset handling the cursor map needs anyway.
    cursor = s->tail_into(final_frame ? 0 : cursor, tail);
    if (!final_frame && tail.size() > kMaxTailPoints) {
      tail.erase(tail.begin(),
                 tail.end() - static_cast<std::ptrdiff_t>(kMaxTailPoints));
    }
    if (!final_frame && tail.empty()) continue;
    if (!first) os << ", ";
    os << "\"";
    json_escape(os, name);
    os << "\": ";
    if (final_frame) os << "{\"dropped\": " << s->dropped() << ", \"points\": ";
    os << "[";
    for (std::size_t i = 0; i < tail.size(); ++i) {
      if (i != 0) os << ", ";
      os << "[" << tail[i].first << ", " << tail[i].second << "]";
    }
    os << "]";
    if (final_frame) os << "}";
    first = false;
  }
  os << "}}\n";
  return os.str();
}

/// Builds + appends one frame; a failed or short write is a dropped frame
/// (counted, never blocked on or retried).
void publish_frame(Publisher& p, bool final_frame) {
  const std::string line = build_frame(p, final_frame);
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), p.sink) == line.size() &&
      std::fflush(p.sink) == 0;
  if (ok) {
    ++p.frames_written;
    if (p.c_frames != nullptr) p.c_frames->add();
  } else {
    ++p.frames_dropped;
    if (p.c_dropped != nullptr) p.c_dropped->add();
  }
}

void publisher_loop(Publisher* p) {
  set_thread_name("telemetry-stream");
  std::unique_lock<std::mutex> lk(p->cv_mu);
  while (!p->stop_requested) {
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::duration<double>(p->interval_s));
    p->cv.wait_until(lk, wake, [&] { return p->stop_requested; });
    if (p->stop_requested) break;
    lk.unlock();
    publish_frame(*p, /*final_frame=*/false);
    lk.lock();
  }
}

}  // namespace

bool start_stream(const StreamOptions& opt) {
  if (!compiled_in()) return false;
  if (opt.interval_s <= 0.0) return false;
  if (opt.path.empty() && opt.fd < 0) return false;
  Publisher& p = Publisher::instance();
  std::lock_guard<std::mutex> lk(p.mu);
  if (p.active) return false;

  std::FILE* sink = nullptr;
  if (opt.fd >= 0) {
    // dup() so fclose() at stop never closes the caller's descriptor.
    const int fd = ::dup(opt.fd);
    if (fd >= 0) sink = ::fdopen(fd, "w");
  } else {
    sink = std::fopen(opt.path.c_str(), "w");
  }
  if (sink == nullptr) return false;

  set_enabled(true);  // a stream of zeros helps nobody
  p.sink = sink;
  p.interval_s = opt.interval_s;
  p.seq = 0;
  p.frames_written = 0;
  p.frames_dropped = 0;
  p.c_frames = &counter("tel.stream.frames");
  p.c_dropped = &counter("tel.stream.dropped_frames");
  // Seed the delta baseline so frame 1 covers [start, start+interval), not
  // process history (the final frame is cumulative regardless).
  p.prev_counters = counter_values();
  p.series_cursor.clear();
  for (const auto& [name, pts] : series_values()) {
    p.series_cursor[name] = pts.size();
  }
  p.stop_requested = false;
  p.active = true;
  p.th = std::thread(publisher_loop, &p);
  return true;
}

void stop_stream() {
  Publisher& p = Publisher::instance();
  std::lock_guard<std::mutex> lk(p.mu);
  if (!p.active) return;
  {
    std::lock_guard<std::mutex> clk(p.cv_mu);
    p.stop_requested = true;
  }
  p.cv.notify_all();
  p.th.join();
  publish_frame(p, /*final_frame=*/true);
  std::fclose(p.sink);
  p.sink = nullptr;
  p.prev_counters.clear();
  p.series_cursor.clear();
  p.active = false;
}

bool stream_active() {
  Publisher& p = Publisher::instance();
  std::lock_guard<std::mutex> lk(p.mu);
  return p.active;
}

}  // namespace wdm::support::telemetry
