#include "ilp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/check.hpp"

namespace wdm::ilp {

int Model::add_variable(double lower, double upper, double objective,
                        bool integer, std::string name) {
  WDM_CHECK_MSG(lower <= upper, "variable bounds crossed");
  vars_.push_back(Variable{lower, upper, objective, integer, std::move(name)});
  return static_cast<int>(vars_.size()) - 1;
}

void Model::add_constraint(std::vector<LinearTerm> terms, Sense sense,
                           double rhs) {
  // Merge duplicate variables so the simplex sees clean rows.
  std::map<int, double> merged;
  for (const LinearTerm& t : terms) {
    WDM_CHECK(t.var >= 0 && t.var < num_variables());
    merged[t.var] += t.coeff;
  }
  Constraint c;
  c.sense = sense;
  c.rhs = rhs;
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) c.terms.push_back(LinearTerm{var, coeff});
  }
  cons_.push_back(std::move(c));
}

double Model::objective_value(const std::vector<double>& x) const {
  WDM_CHECK(x.size() == vars_.size());
  double z = 0.0;
  for (std::size_t i = 0; i < vars_.size(); ++i) z += vars_[i].objective * x[i];
  return z;
}

double Model::max_violation(const std::vector<double>& x) const {
  WDM_CHECK(x.size() == vars_.size());
  double v = 0.0;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    v = std::max(v, vars_[i].lower - x[i]);
    if (vars_[i].upper < kInfinity) v = std::max(v, x[i] - vars_[i].upper);
  }
  for (const Constraint& c : cons_) {
    double lhs = 0.0;
    for (const LinearTerm& t : c.terms) {
      lhs += t.coeff * x[static_cast<std::size_t>(t.var)];
    }
    switch (c.sense) {
      case Sense::kLe: v = std::max(v, lhs - c.rhs); break;
      case Sense::kGe: v = std::max(v, c.rhs - lhs); break;
      case Sense::kEq: v = std::max(v, std::abs(lhs - c.rhs)); break;
    }
  }
  return v;
}

}  // namespace wdm::ilp
