// Mixed 0/1 linear-program model builder.
//
// Built for the paper's §3.1 integer program (Eqs. 3–21): a few hundred
// binary x/y flow variables and continuous z/t conversion-cost variables on
// the bench-scale instances. The model is solver-agnostic data; see
// simplex.hpp (LP relaxation) and branch_and_bound.hpp (integer solve).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace wdm::ilp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kLe, kGe, kEq };

struct LinearTerm {
  int var;
  double coeff;
};

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool integer = false;
  std::string name;
};

struct Constraint {
  std::vector<LinearTerm> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

class Model {
 public:
  /// Adds a variable; returns its index.
  int add_variable(double lower, double upper, double objective, bool integer,
                   std::string name = {});

  int add_binary(double objective, std::string name = {}) {
    return add_variable(0.0, 1.0, objective, /*integer=*/true, std::move(name));
  }

  int add_continuous(double lower, double upper, double objective,
                     std::string name = {}) {
    return add_variable(lower, upper, objective, /*integer=*/false,
                        std::move(name));
  }

  /// Adds `Σ terms sense rhs`. Terms with duplicate variables are summed.
  void add_constraint(std::vector<LinearTerm> terms, Sense sense, double rhs);

  int num_variables() const { return static_cast<int>(vars_.size()); }
  int num_constraints() const { return static_cast<int>(cons_.size()); }
  const Variable& variable(int i) const {
    return vars_[static_cast<std::size_t>(i)];
  }
  const Constraint& constraint(int i) const {
    return cons_[static_cast<std::size_t>(i)];
  }

  /// Objective value of an assignment.
  double objective_value(const std::vector<double>& x) const;

  /// Max violation of any constraint or bound (for test assertions).
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> cons_;
};

}  // namespace wdm::ilp
