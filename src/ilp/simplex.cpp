#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace wdm::ilp {

namespace {

constexpr double kTol = 1e-9;

/// Dense tableau: rows = constraints, columns = structural + slack +
/// artificial variables, plus the rhs column. Basis tracked per row.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows * cols, 0.0), b_(rows, 0.0),
        basis_(rows, -1) {}

  double& at(std::size_t r, std::size_t c) { return a_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return a_[r * cols_ + c]; }
  double& rhs(std::size_t r) { return b_[r]; }
  double rhs(std::size_t r) const { return b_[r]; }
  int& basis(std::size_t r) { return basis_[r]; }
  int basis(std::size_t r) const { return basis_[r]; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double piv = at(pr, pc);
    WDM_DCHECK(std::abs(piv) > kTol);
    const double inv = 1.0 / piv;
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) *= inv;
    b_[pr] *= inv;
    at(pr, pc) = 1.0;  // kill rounding noise
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (std::abs(f) < kTol) {
        at(r, pc) = 0.0;
        continue;
      }
      for (std::size_t c = 0; c < cols_; ++c) at(r, c) -= f * at(pr, c);
      b_[r] -= f * b_[pr];
      at(r, pc) = 0.0;
    }
    basis_[pr] = static_cast<int>(pc);
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<int> basis_;
};

/// Minimizes the objective `obj` (size = tableau cols) over the current
/// basic feasible tableau, restricted to columns < `active_cols`.
/// Returns false on unboundedness. `obj_row` is maintained as reduced costs.
bool run_simplex(Tableau& t, std::vector<double>& obj_row, double& obj_value,
                 std::size_t active_cols) {
  while (true) {
    // Bland: entering = smallest column with reduced cost < -tol.
    std::size_t enter = active_cols;
    for (std::size_t c = 0; c < active_cols; ++c) {
      if (obj_row[c] < -kTol) {
        enter = c;
        break;
      }
    }
    if (enter == active_cols) return true;  // optimal

    // Ratio test; Bland tie-break on smallest basis variable.
    std::size_t leave = t.rows();
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < t.rows(); ++r) {
      const double a = t.at(r, enter);
      if (a > kTol) {
        const double ratio = t.rhs(r) / a;
        if (leave == t.rows() || ratio < best_ratio - kTol ||
            (ratio < best_ratio + kTol && t.basis(r) < t.basis(leave))) {
          leave = r;
          best_ratio = ratio;
        }
      }
    }
    if (leave == t.rows()) return false;  // unbounded

    t.pivot(leave, enter);
    // Update the objective row.
    const double f = obj_row[enter];
    for (std::size_t c = 0; c < t.cols(); ++c) obj_row[c] -= f * t.at(leave, c);
    obj_value -= f * t.rhs(leave);
    obj_row[enter] = 0.0;
  }
}

}  // namespace

LpSolution solve_lp(const Model& model, std::span<const double> lower,
                    std::span<const double> upper) {
  const auto n = static_cast<std::size_t>(model.num_variables());
  WDM_CHECK(lower.empty() || lower.size() == n);
  WDM_CHECK(upper.empty() || upper.size() == n);
  auto lb_of = [&](std::size_t i) {
    return lower.empty() ? model.variable(static_cast<int>(i)).lower
                         : lower[i];
  };
  auto ub_of = [&](std::size_t i) {
    return upper.empty() ? model.variable(static_cast<int>(i)).upper
                         : upper[i];
  };

  LpSolution sol;
  for (std::size_t i = 0; i < n; ++i) {
    if (lb_of(i) > ub_of(i) + kTol) return sol;  // trivially infeasible
  }

  // Shift x = y + lb so y >= 0; finite upper bounds become rows y <= ub - lb.
  std::vector<std::size_t> ub_rows;
  for (std::size_t i = 0; i < n; ++i) {
    if (ub_of(i) < kInfinity) ub_rows.push_back(i);
  }
  const std::size_t m =
      static_cast<std::size_t>(model.num_constraints()) + ub_rows.size();

  // Column layout: [0, n) structural y, [n, n+m) slack/surplus (one per row,
  // unused slots for equality rows), [n+m, n+2m) artificials (lazily used).
  const std::size_t slack0 = n;
  const std::size_t art0 = n + m;
  const std::size_t cols = n + 2 * m;
  Tableau t(m, cols);

  std::vector<double> row_shift(m, 0.0);  // rhs adjustment from lb shift
  std::vector<Sense> sense(m, Sense::kLe);

  for (std::size_t r = 0; r < static_cast<std::size_t>(model.num_constraints());
       ++r) {
    const Constraint& c = model.constraint(static_cast<int>(r));
    sense[r] = c.sense;
    double rhs = c.rhs;
    for (const LinearTerm& term : c.terms) {
      const auto v = static_cast<std::size_t>(term.var);
      t.at(r, v) += term.coeff;
      rhs -= term.coeff * lb_of(v);
    }
    t.rhs(r) = rhs;
  }
  for (std::size_t k = 0; k < ub_rows.size(); ++k) {
    const std::size_t r = static_cast<std::size_t>(model.num_constraints()) + k;
    const std::size_t v = ub_rows[k];
    sense[r] = Sense::kLe;
    t.at(r, v) = 1.0;
    t.rhs(r) = ub_of(v) - lb_of(v);
  }
  (void)row_shift;

  // Normalize rows to rhs >= 0, attach slack/surplus, then artificials where
  // no natural basis column exists.
  std::vector<std::uint8_t> is_artificial(cols, 0);
  std::size_t num_art = 0;
  for (std::size_t r = 0; r < m; ++r) {
    if (t.rhs(r) < 0.0) {
      for (std::size_t c = 0; c < cols; ++c) t.at(r, c) = -t.at(r, c);
      t.rhs(r) = -t.rhs(r);
      if (sense[r] == Sense::kLe) {
        sense[r] = Sense::kGe;
      } else if (sense[r] == Sense::kGe) {
        sense[r] = Sense::kLe;
      }
    }
    const std::size_t slack = slack0 + r;
    if (sense[r] == Sense::kLe) {
      t.at(r, slack) = 1.0;
      t.basis(r) = static_cast<int>(slack);
    } else {
      if (sense[r] == Sense::kGe) t.at(r, slack) = -1.0;  // surplus
      const std::size_t art = art0 + r;
      t.at(r, art) = 1.0;
      t.basis(r) = static_cast<int>(art);
      is_artificial[art] = 1;
      ++num_art;
    }
  }

  // Phase 1: minimize the sum of artificials.
  if (num_art > 0) {
    std::vector<double> obj(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c) {
      if (is_artificial[c]) obj[c] = 1.0;
    }
    // Reduce against the starting basis (artificials are basic).
    double value = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      const auto bc = static_cast<std::size_t>(t.basis(r));
      if (is_artificial[bc]) {
        for (std::size_t c = 0; c < cols; ++c) obj[c] -= t.at(r, c);
        value -= t.rhs(r);
      }
    }
    if (!run_simplex(t, obj, value, cols)) {
      // Phase-1 objective is bounded below by 0; unbounded cannot happen.
      WDM_CHECK_MSG(false, "phase-1 simplex reported unbounded");
    }
    if (-value > 1e-7) return sol;  // infeasible (value tracks -objective)

    // Drive any artificial still in the basis out (degenerate zero rows).
    for (std::size_t r = 0; r < m; ++r) {
      const auto bc = static_cast<std::size_t>(t.basis(r));
      if (!is_artificial[bc]) continue;
      std::size_t pivot_col = cols;
      for (std::size_t c = 0; c < art0; ++c) {
        if (std::abs(t.at(r, c)) > kTol) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col < cols) t.pivot(r, pivot_col);
      // else: the row is all-zero over real columns — redundant; the basic
      // artificial stays at value 0 and is harmless in phase 2 because its
      // column is excluded from pricing.
    }
  }

  // Phase 2: minimize the true objective over non-artificial columns.
  std::vector<double> obj(cols, 0.0);
  double value = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    obj[i] = model.variable(static_cast<int>(i)).objective;
    value += obj[i] * lb_of(i);  // constant from the lb shift
  }
  // Reduce against the current basis.
  for (std::size_t r = 0; r < m; ++r) {
    const auto bc = static_cast<std::size_t>(t.basis(r));
    const double f = obj[bc];
    if (f != 0.0) {
      for (std::size_t c = 0; c < cols; ++c) obj[c] -= f * t.at(r, c);
      value -= f * t.rhs(r);
      obj[bc] = 0.0;
    }
  }
  // `value` accumulates -(objective shift); track actual objective directly:
  // after reduction, objective = value0 - Σ f*rhs where value started at the
  // lb-shift constant. run_simplex keeps subtracting consistently.
  if (!run_simplex(t, obj, value, art0)) {
    sol.status = LpStatus::kUnbounded;
    return sol;
  }

  // Read out the solution.
  std::vector<double> y(cols, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    y[static_cast<std::size_t>(t.basis(r))] = t.rhs(r);
  }
  sol.x.resize(n);
  for (std::size_t i = 0; i < n; ++i) sol.x[i] = y[i] + lb_of(i);
  sol.objective = model.objective_value(sol.x);
  sol.status = LpStatus::kOptimal;
  return sol;
}

}  // namespace wdm::ilp
