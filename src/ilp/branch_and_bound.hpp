// Branch & bound for mixed 0/1 programs over the simplex LP relaxation.
//
// Best-bound node selection, most-fractional branching, bound tightening via
// per-node lower/upper vectors (the model itself is shared, never copied).
// Scope matches the paper's §3.1 IP: binary flow variables, continuous
// linearized conversion costs, minimization.
#pragma once

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace wdm::ilp {

enum class IpStatus { kOptimal, kInfeasible, kNodeLimit };

struct IpOptions {
  long max_nodes = 100000;
  double integrality_tol = 1e-6;
  /// Prune nodes whose bound is within this of the incumbent.
  double absolute_gap = 1e-9;
};

struct IpSolution {
  IpStatus status = IpStatus::kInfeasible;
  std::vector<double> x;
  double objective = 0.0;
  long nodes_explored = 0;
};

IpSolution solve_ip(const Model& model, const IpOptions& opt = {});

}  // namespace wdm::ilp
