#include "ilp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/check.hpp"

namespace wdm::ilp {

namespace {

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound;  // parent LP relaxation value

  bool operator<(const Node& o) const {
    return bound > o.bound;  // min-heap on bound (best-bound first)
  }
};

/// Index of the most fractional integer variable, or -1 if integral.
int pick_branch_variable(const Model& model, const std::vector<double>& x,
                         double tol) {
  int best = -1;
  double best_frac = tol;
  for (int i = 0; i < model.num_variables(); ++i) {
    if (!model.variable(i).integer) continue;
    const double v = x[static_cast<std::size_t>(i)];
    const double frac = std::abs(v - std::round(v));
    // Distance from the nearest half-integer point, inverted: prefer the
    // variable closest to 0.5 fractionality.
    if (frac > best_frac) {
      best_frac = frac;
      best = i;
    }
  }
  return best;
}

}  // namespace

IpSolution solve_ip(const Model& model, const IpOptions& opt) {
  IpSolution sol;
  const auto n = static_cast<std::size_t>(model.num_variables());

  Node root;
  root.lower.resize(n);
  root.upper.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    root.lower[i] = model.variable(static_cast<int>(i)).lower;
    root.upper[i] = model.variable(static_cast<int>(i)).upper;
  }
  root.bound = -kInfinity;

  std::priority_queue<Node> open;
  open.push(std::move(root));

  double incumbent = kInfinity;
  std::vector<double> incumbent_x;

  while (!open.empty()) {
    if (sol.nodes_explored >= opt.max_nodes) {
      sol.status = incumbent < kInfinity ? IpStatus::kNodeLimit
                                         : IpStatus::kInfeasible;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent - opt.absolute_gap) continue;  // pruned
    ++sol.nodes_explored;

    const LpSolution lp = solve_lp(model, node.lower, node.upper);
    if (lp.status == LpStatus::kInfeasible) continue;
    WDM_CHECK_MSG(lp.status != LpStatus::kUnbounded,
                  "IP relaxation unbounded — add explicit variable bounds");
    if (lp.objective >= incumbent - opt.absolute_gap) continue;

    const int branch_var =
        pick_branch_variable(model, lp.x, opt.integrality_tol);
    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent = lp.objective;
      incumbent_x = lp.x;
      // Snap integer variables exactly.
      for (int i = 0; i < model.num_variables(); ++i) {
        if (model.variable(i).integer) {
          incumbent_x[static_cast<std::size_t>(i)] =
              std::round(incumbent_x[static_cast<std::size_t>(i)]);
        }
      }
      continue;
    }

    const double v = lp.x[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.upper[static_cast<std::size_t>(branch_var)] = std::floor(v);
    down.bound = lp.objective;
    Node up = std::move(node);
    up.lower[static_cast<std::size_t>(branch_var)] = std::ceil(v);
    up.bound = lp.objective;
    if (down.lower[static_cast<std::size_t>(branch_var)] <=
        down.upper[static_cast<std::size_t>(branch_var)]) {
      open.push(std::move(down));
    }
    if (up.lower[static_cast<std::size_t>(branch_var)] <=
        up.upper[static_cast<std::size_t>(branch_var)]) {
      open.push(std::move(up));
    }
  }

  if (incumbent < kInfinity) {
    if (sol.status != IpStatus::kNodeLimit) sol.status = IpStatus::kOptimal;
    sol.x = std::move(incumbent_x);
    sol.objective = incumbent;
  }
  return sol;
}

}  // namespace wdm::ilp
