// Dense two-phase primal simplex for the LP relaxations inside branch &
// bound. Bland's rule throughout (no cycling); dense tableau — the §3.1 IP
// instances the benches solve have at most a few hundred rows/columns, where
// a dense tableau is both simplest and fast enough.
#pragma once

#include <span>
#include <vector>

#include "ilp/model.hpp"

namespace wdm::ilp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;  // per model variable (original space)
  double objective = 0.0;
};

/// Solves the LP relaxation of `model` (integrality dropped). Optional bound
/// overrides (same length as the variable count) replace the model's bounds
/// — branch & bound tightens bounds per node without copying the model.
LpSolution solve_lp(const Model& model, std::span<const double> lower = {},
                    std::span<const double> upper = {});

}  // namespace wdm::ilp
