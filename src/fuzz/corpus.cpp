#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "support/check.hpp"
#include "wdm/io.hpp"

namespace wdm::fuzz {

namespace {

constexpr const char* kMagic = "#!fuzz";

/// Full-token checked parse: rejects partial tokens ("7x"), sign/range
/// violations ("-1" for a seed), and empty values — std::sto* accepts the
/// first two silently.
template <class T>
T parse_value(const std::string& tok, int line, const char* what) {
  T v{};
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || tok.empty()) {
    throw io::ParseError(line, std::string("bad #!fuzz ") + what +
                                   " value: '" + tok + "'");
  }
  return v;
}

/// File-name-safe slug of an invariant id.
std::string slug(const std::string& s) {
  std::string out;
  for (char c : s) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '-');
  }
  return out.empty() ? std::string("unknown") : out;
}

}  // namespace

std::string write_repro_text(const FuzzInstance& inst,
                             const Violation& violation) {
  std::ostringstream out;
  out << kMagic << " v1\n";
  out << kMagic << " seed " << inst.seed << '\n';
  out << kMagic << " family " << inst.family << '\n';
  out << kMagic << " s " << inst.s << '\n';
  out << kMagic << " t " << inst.t << '\n';
  out << kMagic << " invariant " << violation.invariant
      << (violation.router.empty() ? "" : " [" + violation.router + "]")
      << '\n';
  if (!violation.detail.empty()) {
    out << kMagic << " detail " << violation.detail << '\n';
  }
  out << io::write_network(inst.network);
  return out.str();
}

ReproCase read_repro_text(const std::string& text) {
  ReproCase repro;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind(kMagic, 0) != 0) continue;
    std::istringstream ls(line.substr(std::string(kMagic).size()));
    std::string key;
    ls >> key;
    std::string rest;
    std::getline(ls, rest);
    const auto strip = [](std::string v) {
      const auto b = v.find_first_not_of(' ');
      return b == std::string::npos ? std::string() : v.substr(b);
    };
    rest = strip(rest);
    if (key == "seed") {
      repro.instance.seed = parse_value<std::uint64_t>(rest, line_no, "seed");
    } else if (key == "family") {
      repro.instance.family = rest;
    } else if (key == "s") {
      repro.instance.s = parse_value<int>(rest, line_no, "s");
    } else if (key == "t") {
      repro.instance.t = parse_value<int>(rest, line_no, "t");
    } else if (key == "invariant") {
      repro.invariant = rest;
    } else if (key == "detail") {
      repro.detail = rest;
    }
    // "v1" and unknown keys: ignored for forward compatibility.
  }
  repro.instance.network = io::read_network(text);
  const auto& g = repro.instance.network.graph();
  if (!g.valid_node(repro.instance.s) || !g.valid_node(repro.instance.t) ||
      repro.instance.s == repro.instance.t) {
    throw io::ParseError(0, "corpus entry has invalid request endpoints");
  }
  return repro;
}

std::string write_repro_file(const std::string& dir, const FuzzInstance& inst,
                             const Violation& violation) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  std::ostringstream name;
  name << slug(violation.invariant) << "-seed" << inst.seed << ".wdm";
  const fs::path path = fs::path(dir) / name.str();
  std::ofstream out(path);
  WDM_CHECK_MSG(out.good(), "cannot open corpus file for writing");
  out << write_repro_text(inst, violation);
  return path.string();
}

std::vector<ReproCase> load_corpus(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<ReproCase> corpus;
  if (!fs::is_directory(dir)) return corpus;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".wdm") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& f : files) {
    std::ifstream in(f);
    std::ostringstream text;
    text << in.rdbuf();
    ReproCase repro;
    try {
      repro = read_repro_text(text.str());
    } catch (const io::ParseError& err) {
      // Corpus files are hand-editable; point at the broken one.
      throw io::ParseError(f.string(), err.line(), err.message());
    }
    repro.path = f.string();
    corpus.push_back(std::move(repro));
  }
  return corpus;
}

std::vector<Violation> replay(const ReproCase& repro, const CheckOptions& opt) {
  return check_instance(repro.instance, opt);
}

}  // namespace wdm::fuzz
