#include "fuzz/mutant.hpp"

namespace wdm::fuzz {

const char* mutation_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kUnderreportAuxCost: return "underreport-aux-cost";
    case MutationKind::kShareEdge: return "share-edge";
    case MutationKind::kDropBackupHop: return "drop-backup-hop";
  }
  return "unknown";
}

rwa::RouteResult MutantRouter::route(const net::WdmNetwork& net, net::NodeId s,
                                     net::NodeId t) const {
  rwa::RouteResult r = inner_.route(net, s, t);
  if (!r.found) return r;
  switch (kind_) {
    case MutationKind::kUnderreportAuxCost:
      // Claim a tighter bound than was delivered — the kind of bug a wrong
      // averaging term in the G' weights would produce.
      r.aux_cost = 0.5 * r.total_cost(net);
      break;
    case MutationKind::kShareEdge:
      r.route.backup = r.route.primary;
      break;
    case MutationKind::kDropBackupHop:
      if (!r.route.backup.hops.empty()) r.route.backup.hops.pop_back();
      break;
  }
  return r;
}

}  // namespace wdm::fuzz
