// Random WDM instance generator for the differential fuzz harness.
//
// Every instance is a deterministic function of a single 64-bit seed: the
// seed picks a topology family, sizes, the wavelength universe, per-link
// installed sets Λ(e), per-(link, λ) costs w(e, λ), per-node conversion
// tables c_v, background reservations (so the residual network is
// non-trivial), and occasionally failed links. Re-running with the same seed
// reproduces the instance bit-for-bit — the replay contract the corpus and
// shrinker rely on.
#pragma once

#include "fuzz/instance.hpp"
#include "support/rng.hpp"

namespace wdm::fuzz {

struct GenOptions {
  /// Node-count range for the sized families (random digraph / connected /
  /// ring / grid). Fixed-shape families (backbone, trap, bridge) ignore it.
  int min_nodes = 4;
  int max_nodes = 10;
  /// Wavelength-universe range.
  int min_wavelengths = 2;
  int max_wavelengths = 5;
  /// Probability each non-request wavelength-link is pre-reserved (background
  /// traffic shaping the residual network).
  double preload_probability = 0.08;
  /// Probability an instance carries one failed (cut) fiber.
  double failure_probability = 0.1;
  /// When true, only generate instances satisfying the Theorem 2 regime:
  /// full per-node uniform conversion with cost ≤ every incident link cost,
  /// wavelength-independent link costs.
  bool theorem2_regime_only = false;

  /// SRLG annotation knobs. The default 0 disables SRLG generation entirely
  /// and draws nothing from the RNG, so every pre-SRLG seed reproduces its
  /// instance byte-for-byte. When > 0 it is the probability an instance
  /// carries shared-risk groups (drawn after everything else so the physical
  /// instance for a seed is the same with or without annotations), and the
  /// adversarial srlg-trap family joins the topology mix.
  double srlg_probability = 0.0;
  int max_srlg_groups = 3;
  int max_srlg_size = 3;
};

/// Generates the instance for `seed`. Deterministic; never returns a network
/// without at least one link, and s != t always holds.
FuzzInstance generate_instance(std::uint64_t seed, const GenOptions& opt = {});

/// True when the network is inside the §3.3 / Theorem 2 assumptions: every
/// node has full conversion at one uniform cost, every link's cost is
/// wavelength-independent, and each node's conversion cost is bounded by the
/// traversal cost of its incident links. Invariants that encode Theorem 2 or
/// Lemma 2 are gated on this predicate.
bool in_theorem2_regime(const net::WdmNetwork& net);

/// True when every node has a full (all pairs allowed) conversion table —
/// the regime where the auxiliary graph G' is exact on *existence* of a
/// disjoint pair, enabling the two-sided approx-vs-exact agreement check.
bool all_nodes_full_conversion(const net::WdmNetwork& net);

}  // namespace wdm::fuzz
