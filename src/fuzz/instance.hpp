// A fuzz instance: one randomly generated WDM network plus a request (s, t)
// and the provenance needed to regenerate or replay it. The network carries
// the full §2 state the routers see — topology, Λ(e), w(e,λ), conversion
// tables, background reservations, and failed links — so an instance is
// exactly one residual-network snapshot.
#pragma once

#include <cstdint>
#include <string>

#include "wdm/network.hpp"

namespace wdm::fuzz {

/// Topology families the generator draws from. Adversarial families (trap,
/// bridge) exist because uniform random graphs almost never produce the
/// structures that break greedy disjoint-path heuristics.
enum class TopoFamily {
  kRandomDigraph,    // non-duplex Erdős–Rényi-style directed multigraph
  kRandomConnected,  // random spanning tree + extra duplex links
  kRing,             // bidirectional ring
  kGrid,             // grid mesh
  kBackbone,         // NSFNET-14 (the canonical research topology)
  kTrap,             // greedy two-step trap gadget + random decoys
  kBridge,           // barbell joined by a single bridge fiber
  kSrlgTrap,         // min-cost disjoint pair shares a conduit (SRLG mode only)
};

const char* topo_family_name(TopoFamily f);

struct FuzzInstance {
  net::WdmNetwork network{1, 1};
  net::NodeId s = 0;
  net::NodeId t = 0;

  /// Seed that produced the instance (0 for hand-built / shrunk instances,
  /// which are no longer regenerable from a seed).
  std::uint64_t seed = 0;
  std::string family = "manual";

  /// Instance size, the quantity the shrinker minimizes: nodes + links +
  /// total installed wavelength count.
  long size() const {
    long s_ = network.num_nodes() + network.num_links();
    for (graph::EdgeId e = 0; e < network.num_links(); ++e) {
      s_ += network.installed(e).count();
    }
    return s_;
  }
};

}  // namespace wdm::fuzz
