// Greedy instance minimization: given a failing instance and a predicate
// "does the failure persist?", repeatedly try structure-removing edits —
// drop a link, drop a wavelength from the universe, drop a node — keeping
// each edit only when the failure survives. The result is a (locally)
// minimal repro whose serialized form goes into the corpus.
//
// Edits rebuild the network from scratch (WdmNetwork has no removal API by
// design), carrying over conversion tables, installed sets, per-λ costs,
// reservations, and failure flags of everything kept.
#pragma once

#include <functional>

#include "fuzz/instance.hpp"

namespace wdm::fuzz {

/// Returns true when the instance still exhibits the failure being chased.
using FailurePredicate = std::function<bool(const FuzzInstance&)>;

/// Rebuilding edits (exposed for tests; each returns a fresh instance).
/// drop_link requires a valid link id; drop_wavelength requires W > 1 and
/// drops links whose installed set becomes empty; drop_node requires
/// v != s, t and drops all incident links.
FuzzInstance drop_link(const FuzzInstance& inst, graph::EdgeId e);
FuzzInstance drop_wavelength(const FuzzInstance& inst, net::Wavelength l);
FuzzInstance drop_node(const FuzzInstance& inst, net::NodeId v);

struct ShrinkStats {
  long initial_size = 0;
  long final_size = 0;
  int edits_tried = 0;
  int edits_kept = 0;
};

/// Greedy fixpoint shrink. `budget` caps predicate evaluations (each is a
/// full re-check, typically the expensive part). The input instance must
/// satisfy the predicate.
FuzzInstance shrink(FuzzInstance inst, const FailurePredicate& still_fails,
                    int budget = 800, ShrinkStats* stats = nullptr);

}  // namespace wdm::fuzz
