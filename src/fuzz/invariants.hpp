// The invariant library of the differential fuzz harness.
//
// Each check re-derives a property from first principles — deliberately NOT
// by calling the library method under test — and reports a Violation when
// the routers' output (or the library's own accounting) disagrees. The
// properties encode the paper's contracts:
//
//   * structural: primary/backup run s -> t, every hop realizable in the
//     residual network, wavelength continuity between conversions,
//     edge-disjointness (§2), internal node-disjointness for the
//     node-disjoint extension;
//   * cost: independent Eq. (1) re-accounting of every returned path;
//     the Lemma 2 upper bound (delivered cost <= auxiliary-graph weight) and
//     the Theorem 2 ratio (approx <= 2 x exact) inside the §3.3 assumptions;
//   * load: every link of a Version 2 route respects the accepted threshold
//     ϑ (the G_c filter), and ρ after reservation matches an independent
//     recomputation of Eq. (2);
//   * differential: approx-vs-exact existence agreement, enumeration-exact
//     vs ILP-exact cost agreement, Suurballe vs min-cost-flow agreement on
//     the auxiliary graph.
#pragma once

#include <string>
#include <vector>

#include "fuzz/instance.hpp"
#include "rwa/router.hpp"

namespace wdm::fuzz {

struct Violation {
  std::string invariant;  // short machine-readable id, e.g. "edge-disjoint"
  std::string router;     // offending router name ("" for instance-level)
  std::string detail;     // human-readable explanation

  std::string to_string() const {
    return invariant + (router.empty() ? "" : " [" + router + "]") + ": " +
           detail;
  }
};

struct CheckOptions {
  /// Oracle gates: the exact enumeration runs on instances up to these
  /// sizes; the ILP (much slower) only when `run_ilp` is set by the caller
  /// (the harness samples it).
  bool run_exact = true;
  int exact_max_nodes = 9;
  int exact_max_links = 48;
  long exact_max_candidates = 20000;

  bool run_ilp = false;
  int ilp_max_nodes = 5;
  int ilp_max_wavelengths = 3;

  /// Additional routers checked against the route-level invariants — the
  /// mutation-testing entry point (inject a deliberately broken router and
  /// assert the harness flags it).
  std::vector<const rwa::Router*> extra_routers;

  double eps = 1e-6;
};

/// Independent Eq. (1) re-accounting: Σ w(e_i, λ_i) + Σ c_v(λ_i, λ_{i+1}).
/// Walks raw network tables; never calls Semilightpath::cost.
double recompute_cost_eq1(const net::WdmNetwork& net,
                          const net::Semilightpath& p);

/// Route-level invariants for one router result on one instance.
/// `requires_backup` = false for the unprotected baseline;
/// `requires_node_disjoint` adds the internal-node-disjointness check;
/// `check_aux_bound` adds the Lemma 2 delivered <= aux_cost check (only
/// sound for the G'-weighted router inside the Theorem 2 regime).
void check_route_result(const FuzzInstance& inst, const rwa::RouteResult& r,
                        const std::string& router, bool requires_backup,
                        bool requires_node_disjoint, bool check_aux_bound,
                        double eps, std::vector<Violation>& out);

/// Runs the full router suite + oracles on the instance and returns every
/// violation found (empty = instance passes).
std::vector<Violation> check_instance(const FuzzInstance& inst,
                                      const CheckOptions& opt = {});

}  // namespace wdm::fuzz
