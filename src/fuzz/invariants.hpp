// The invariant library of the differential fuzz harness.
//
// Each check re-derives a property from first principles — deliberately NOT
// by calling the library method under test — and reports a Violation when
// the routers' output (or the library's own accounting) disagrees. The
// properties encode the paper's contracts:
//
//   * structural: primary/backup run s -> t, every hop realizable in the
//     residual network, wavelength continuity between conversions,
//     edge-disjointness (§2), internal node-disjointness for the
//     node-disjoint extension;
//   * cost: independent Eq. (1) re-accounting of every returned path;
//     the Lemma 2 upper bound (delivered cost <= auxiliary-graph weight) and
//     the Theorem 2 ratio (approx <= 2 x exact) inside the §3.3 assumptions;
//   * load: every link of a Version 2 route respects the accepted threshold
//     ϑ (the G_c filter), and ρ after reservation matches an independent
//     recomputation of Eq. (2);
//   * differential: approx-vs-exact existence agreement, enumeration-exact
//     vs ILP-exact cost agreement, Suurballe vs min-cost-flow agreement on
//     the auxiliary graph.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fuzz/instance.hpp"
#include "rwa/router.hpp"

namespace wdm::fuzz {

struct Violation {
  std::string invariant;  // short machine-readable id, e.g. "edge-disjoint"
  std::string router;     // offending router name ("" for instance-level)
  std::string detail;     // human-readable explanation

  std::string to_string() const {
    return invariant + (router.empty() ? "" : " [" + router + "]") + ": " +
           detail;
  }
};

struct CheckOptions {
  /// Oracle gates: the exact enumeration runs on instances up to these
  /// sizes; the ILP (much slower) only when `run_ilp` is set by the caller
  /// (the harness samples it).
  bool run_exact = true;
  int exact_max_nodes = 9;
  int exact_max_links = 48;
  long exact_max_candidates = 20000;

  bool run_ilp = false;
  int ilp_max_nodes = 5;
  int ilp_max_wavelengths = 3;

  /// Gates for the brute-force SRLG-disjoint-pair oracle (simple-path pair
  /// enumeration on the physical graph; sound under full conversion only).
  int srlg_exact_max_nodes = 8;
  int srlg_exact_max_links = 24;
  long srlg_exact_max_paths = 4000;

  /// Additional routers checked against the route-level invariants — the
  /// mutation-testing entry point (inject a deliberately broken router and
  /// assert the harness flags it).
  std::vector<const rwa::Router*> extra_routers;

  double eps = 1e-6;
};

/// Independent Eq. (1) re-accounting: Σ w(e_i, λ_i) + Σ c_v(λ_i, λ_{i+1}).
/// Walks raw network tables; never calls Semilightpath::cost.
double recompute_cost_eq1(const net::WdmNetwork& net,
                          const net::Semilightpath& p);

/// Route-level invariants for one router result on one instance.
/// `requires_backup` = false for the unprotected baseline;
/// `requires_node_disjoint` adds the internal-node-disjointness check;
/// `check_aux_bound` adds the Lemma 2 delivered <= aux_cost check (only
/// sound for the G'-weighted router inside the Theorem 2 regime).
void check_route_result(const FuzzInstance& inst, const rwa::RouteResult& r,
                        const std::string& router, bool requires_backup,
                        bool requires_node_disjoint, bool check_aux_bound,
                        double eps, std::vector<Violation>& out);

/// SRLG-disjointness oracle, independent of the library predicate: scans
/// every group's raw member list (never srlgs_of_link / links_share_srlg /
/// srlg_disjoint) and flags any group touched by both primary and backup.
void check_srlg_disjoint(const FuzzInstance& inst, const rwa::RouteResult& r,
                         const std::string& router,
                         std::vector<Violation>& out);

/// Partial-protection coverage oracle for ProtectPolicy::partial(threshold)
/// output. Recomputes per-link failure probability 1 - Π(1 - p_g) from raw
/// group storage, re-derives the risky set on the primary, and asserts:
/// no backup only when nothing is risky; otherwise the backup dodges every
/// risky link, everything sharing a group with one, and every primary
/// (link, λ) channel.
void check_partial_coverage(const FuzzInstance& inst, const rwa::RouteResult& r,
                            double threshold, const std::string& router,
                            std::vector<Violation>& out);

/// Brute-force SRLG-disjoint-pair existence: enumerate simple physical
/// paths over links with free capacity and test all pairs for edge- and
/// group-disjointness. Exact on *existence* when every node has full
/// conversion (each link on a path then picks its wavelength freely).
/// Returns nullopt when the instance is outside the size/conversion gate or
/// the path count overflows `max_paths`.
std::optional<bool> srlg_pair_exists_bruteforce(const net::WdmNetwork& net,
                                                net::NodeId s, net::NodeId t,
                                                int max_nodes, int max_links,
                                                long max_paths);

/// Runs the full router suite + oracles on the instance and returns every
/// violation found (empty = instance passes).
std::vector<Violation> check_instance(const FuzzInstance& inst,
                                      const CheckOptions& opt = {});

}  // namespace wdm::fuzz
