// Mutation testing for the fuzz harness itself: wrap a correct router and
// corrupt its output in a controlled way, then assert the invariant suite
// flags it. A harness that cannot catch a planted bug cannot be trusted to
// catch a real one.
#pragma once

#include "rwa/router.hpp"

namespace wdm::fuzz {

enum class MutationKind {
  /// Cost-accounting bug: report an auxiliary-graph bound below the
  /// delivered cost (violates the Lemma 2 `aux-bound` invariant).
  kUnderreportAuxCost,
  /// Protection bug: return the primary path as its own backup (violates
  /// `edge-disjoint`).
  kShareEdge,
  /// Truncation bug: drop the backup's last hop (violates `endpoints` /
  /// `structure`).
  kDropBackupHop,
};

const char* mutation_name(MutationKind kind);

/// Forwards to `inner` and applies the mutation to successful results.
class MutantRouter final : public rwa::Router {
 public:
  MutantRouter(const rwa::Router& inner, MutationKind kind)
      : inner_(inner), kind_(kind) {}

  rwa::RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                         net::NodeId t) const override;

  std::string name() const override {
    return std::string("mutant(") + mutation_name(kind_) + ")/" +
           inner_.name();
  }

 private:
  const rwa::Router& inner_;
  MutationKind kind_;
};

}  // namespace wdm::fuzz
