#include "fuzz/shrinker.hpp"

#include <vector>

#include "support/check.hpp"

namespace wdm::fuzz {

namespace {

/// Copies `src` into a fresh network, skipping one node / link / wavelength
/// (any of which may be "none"). Node ids above a skipped node and
/// wavelengths above a skipped wavelength shift down by one; links incident
/// to a skipped node, equal to the skipped link, or left with an empty
/// installed set are dropped.
net::WdmNetwork rebuild(const net::WdmNetwork& src, net::NodeId skip_node,
                        graph::EdgeId skip_link, net::Wavelength skip_lambda) {
  const int W = src.W() - (skip_lambda >= 0 ? 1 : 0);
  WDM_CHECK(W >= 1);
  const net::NodeId n = src.num_nodes() - (skip_node >= 0 ? 1 : 0);

  auto map_node = [&](net::NodeId v) -> net::NodeId {
    return (skip_node >= 0 && v > skip_node) ? v - 1 : v;
  };
  auto map_lambda = [&](net::Wavelength l) -> net::Wavelength {
    return (skip_lambda >= 0 && l > skip_lambda) ? l - 1 : l;
  };

  net::WdmNetwork out(n, W);
  for (net::NodeId v = 0; v < src.num_nodes(); ++v) {
    if (v == skip_node) continue;
    const net::ConversionTable& t = src.conversion(v);
    net::ConversionTable nt = net::ConversionTable::none(W);
    for (net::Wavelength a = 0; a < src.W(); ++a) {
      if (a == skip_lambda) continue;
      for (net::Wavelength b = 0; b < src.W(); ++b) {
        if (b == skip_lambda || a == b) continue;
        if (t.allowed(a, b)) nt.set(map_lambda(a), map_lambda(b), t.cost(a, b));
      }
    }
    out.set_conversion(map_node(v), std::move(nt));
  }

  for (graph::EdgeId e = 0; e < src.num_links(); ++e) {
    if (e == skip_link) continue;
    const net::NodeId u = src.graph().tail(e);
    const net::NodeId v = src.graph().head(e);
    if (u == skip_node || v == skip_node) continue;
    net::WavelengthSet inst;
    net::WavelengthSet used;
    std::vector<double> costs(static_cast<std::size_t>(W), 0.0);
    src.installed(e).for_each([&](net::Wavelength l) {
      if (l == skip_lambda) return;
      inst.insert(map_lambda(l));
      costs[static_cast<std::size_t>(map_lambda(l))] = src.weight(e, l);
      if (src.is_used(e, l)) used.insert(map_lambda(l));
    });
    if (inst.empty()) continue;  // a fiber must carry >= 1 wavelength
    const graph::EdgeId ne =
        out.add_link(map_node(u), map_node(v), inst, costs);
    used.for_each([&](net::Wavelength l) { out.reserve(ne, l); });
    if (src.link_failed(e)) out.set_link_failed(ne, true);
  }
  return out;
}

FuzzInstance rebuilt(const FuzzInstance& inst, net::NodeId skip_node,
                     graph::EdgeId skip_link, net::Wavelength skip_lambda) {
  FuzzInstance out;
  out.network = rebuild(inst.network, skip_node, skip_link, skip_lambda);
  auto map_node = [&](net::NodeId v) -> net::NodeId {
    return (skip_node >= 0 && v > skip_node) ? v - 1 : v;
  };
  out.s = map_node(inst.s);
  out.t = map_node(inst.t);
  out.seed = inst.seed;
  out.family = inst.family + "/shrunk";
  return out;
}

}  // namespace

FuzzInstance drop_link(const FuzzInstance& inst, graph::EdgeId e) {
  WDM_CHECK(inst.network.graph().valid_edge(e));
  return rebuilt(inst, graph::kInvalidNode, e, net::kInvalidWavelength);
}

FuzzInstance drop_wavelength(const FuzzInstance& inst, net::Wavelength l) {
  WDM_CHECK(inst.network.W() > 1 && l >= 0 && l < inst.network.W());
  return rebuilt(inst, graph::kInvalidNode, graph::kInvalidEdge, l);
}

FuzzInstance drop_node(const FuzzInstance& inst, net::NodeId v) {
  WDM_CHECK(inst.network.graph().valid_node(v) && v != inst.s && v != inst.t);
  return rebuilt(inst, v, graph::kInvalidEdge, net::kInvalidWavelength);
}

FuzzInstance shrink(FuzzInstance inst, const FailurePredicate& still_fails,
                    int budget, ShrinkStats* stats) {
  ShrinkStats st;
  st.initial_size = inst.size();

  auto attempt = [&](const FuzzInstance& candidate) -> bool {
    if (budget <= 0) return false;
    --budget;
    ++st.edits_tried;
    // A candidate that lost s->t routability entirely can still "fail" for
    // vacuous reasons; the predicate owns that decision.
    if (!still_fails(candidate)) return false;
    ++st.edits_kept;
    return true;
  };

  bool progress = true;
  while (progress && budget > 0) {
    progress = false;

    // Pass 1: drop links. On success stay at the same index (it now names
    // the next link).
    for (graph::EdgeId e = 0; e < inst.network.num_links() && budget > 0;) {
      FuzzInstance cand = drop_link(inst, e);
      if (attempt(cand)) {
        inst = std::move(cand);
        progress = true;
      } else {
        ++e;
      }
    }

    // Pass 2: drop whole wavelengths from the universe.
    for (net::Wavelength l = 0; inst.network.W() > 1 &&
                                l < inst.network.W() && budget > 0;) {
      FuzzInstance cand = drop_wavelength(inst, l);
      if (attempt(cand)) {
        inst = std::move(cand);
        progress = true;
      } else {
        ++l;
      }
    }

    // Pass 3: drop nodes (with their incident links).
    for (net::NodeId v = 0; v < inst.network.num_nodes() && budget > 0;) {
      if (v == inst.s || v == inst.t) {
        ++v;
        continue;
      }
      FuzzInstance cand = drop_node(inst, v);
      if (attempt(cand)) {
        inst = std::move(cand);
        progress = true;
      } else {
        ++v;
      }
    }
  }

  st.final_size = inst.size();
  if (stats != nullptr) *stats = st;
  return inst;
}

}  // namespace wdm::fuzz
