#include "fuzz/generator.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"
#include "topology/network_builder.hpp"
#include "topology/topologies.hpp"

namespace wdm::fuzz {

namespace {

net::WavelengthSet random_installed(int W, support::Rng& rng) {
  net::WavelengthSet s;
  for (net::Wavelength l = 0; l < W; ++l) {
    if (rng.bernoulli(0.75)) s.insert(l);
  }
  if (s.empty()) s.insert(static_cast<net::Wavelength>(rng.uniform_int(0, W - 1)));
  return s;
}

/// Random per-node conversion capability. In the Theorem 2 regime only full
/// uniform tables with cost <= `max_conv_cost` are drawn.
void assign_conversions(net::WdmNetwork& n, support::Rng& rng,
                        bool theorem2_only, double max_conv_cost) {
  const int W = n.W();
  for (net::NodeId v = 0; v < n.num_nodes(); ++v) {
    if (theorem2_only) {
      n.set_conversion(
          v, net::ConversionTable::full(W, rng.uniform(0.0, max_conv_cost)));
      continue;
    }
    switch (rng.uniform_int(0, 3)) {
      case 0:
        n.set_conversion(
            v, net::ConversionTable::full(W, rng.uniform(0.0, max_conv_cost)));
        break;
      case 1:
        n.set_conversion(v, net::ConversionTable::none(W));
        break;
      case 2:
        n.set_conversion(
            v, net::ConversionTable::limited_range(
                   W, static_cast<int>(rng.uniform_int(1, std::max(1, W - 1))),
                   rng.uniform(0.0, max_conv_cost)));
        break;
      default: {
        // Sparse general table: a random subset of pairs allowed.
        net::ConversionTable t = net::ConversionTable::none(W);
        for (net::Wavelength a = 0; a < W; ++a) {
          for (net::Wavelength b = 0; b < W; ++b) {
            if (a != b && rng.bernoulli(0.4)) {
              t.set(a, b, rng.uniform(0.0, max_conv_cost));
            }
          }
        }
        n.set_conversion(v, std::move(t));
        break;
      }
    }
  }
}

/// Adds a link with either uniform or per-wavelength random costs.
void add_random_link(net::WdmNetwork& n, net::NodeId u, net::NodeId v, int W,
                     support::Rng& rng, bool uniform_costs, double lo,
                     double hi) {
  const net::WavelengthSet inst = random_installed(W, rng);
  if (uniform_costs) {
    n.add_link(u, v, inst, rng.uniform(lo, hi));
  } else {
    std::vector<double> costs(static_cast<std::size_t>(W), 0.0);
    for (auto& c : costs) c = rng.uniform(lo, hi);
    n.add_link(u, v, inst, costs);
  }
}

/// Background reservations + occasional fiber cut: the residual network the
/// routers actually face is rarely pristine.
void apply_residual_state(net::WdmNetwork& n, support::Rng& rng,
                          const GenOptions& opt) {
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.installed(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(opt.preload_probability)) n.reserve(e, l);
    });
  }
  if (n.num_links() > 2 && rng.bernoulli(opt.failure_probability)) {
    n.set_link_failed(
        static_cast<graph::EdgeId>(rng.uniform_int(0, n.num_links() - 1)),
        true);
  }
}

/// The classic greedy trap: the cheapest s->t path s->a->b->t uses links both
/// disjoint paths need; removing it disconnects the second search while the
/// optimal pair {s->a->t, s->b->t} survives. Decoy nodes hang off the core so
/// the shrinker has something to remove.
net::WdmNetwork trap_network(int W, support::Rng& rng, bool uniform_costs,
                             int decoys) {
  net::WdmNetwork n(4 + decoys, W);
  // cheap stays >= 1 so conversion costs (drawn below 1) never exceed an
  // incident link cost — the Theorem 2 regime must survive this family.
  const double cheap = rng.uniform(1.0, 2.0);
  const double dear = rng.uniform(4.0, 8.0);
  const net::NodeId s = 0, a = 1, b = 2, t = 3;
  auto link = [&](net::NodeId u, net::NodeId v, double c) {
    if (uniform_costs) {
      n.add_link(u, v, random_installed(W, rng), c);
    } else {
      std::vector<double> costs(static_cast<std::size_t>(W), 0.0);
      for (auto& x : costs) x = c * rng.uniform(0.8, 1.2);
      n.add_link(u, v, random_installed(W, rng), costs);
    }
  };
  link(s, a, cheap);
  link(a, b, cheap);
  link(b, t, cheap);
  link(s, b, dear);
  link(a, t, dear);
  for (int d = 0; d < decoys; ++d) {
    const net::NodeId v = static_cast<net::NodeId>(4 + d);
    link(static_cast<net::NodeId>(rng.uniform_int(0, 3)), v, dear);
    link(v, static_cast<net::NodeId>(rng.uniform_int(0, 3)), dear);
  }
  return n;
}

/// Barbell: two triangles joined by a single duplex fiber — s and t on
/// opposite sides are not 2-edge-connected, so no protected route exists.
net::WdmNetwork bridge_network(int W, support::Rng& rng, bool uniform_costs) {
  net::WdmNetwork n(6, W);
  auto duplex = [&](net::NodeId u, net::NodeId v) {
    add_random_link(n, u, v, W, rng, uniform_costs, 1.0, 10.0);
    add_random_link(n, v, u, W, rng, uniform_costs, 1.0, 10.0);
  };
  duplex(0, 1);
  duplex(1, 2);
  duplex(2, 0);
  duplex(3, 4);
  duplex(4, 5);
  duplex(5, 3);
  duplex(2, 3);  // the bridge
  return n;
}

/// SRLG trap: the min-cost edge-disjoint pair {s->a->t, s->b->t} rides a
/// shared conduit (a->t and b->t are one SRLG), so the SRLG-aware search
/// must refuse Suurballe's answer and fall through to the conflict-set stage
/// to find the dearer detour via c. Nodes: s=0, a=1, b=2, c=3, t=4.
net::WdmNetwork srlg_trap_network(int W, support::Rng& rng,
                                  bool uniform_costs) {
  net::WdmNetwork n(5, W);
  const double cheap = rng.uniform(1.0, 2.0);
  const double dear = rng.uniform(4.0, 8.0);
  auto link = [&](net::NodeId u, net::NodeId v, double c) {
    add_random_link(n, u, v, W, rng, uniform_costs, c, c);
  };
  link(0, 1, cheap);  // edge 0: s->a
  link(1, 4, cheap);  // edge 1: a->t   } one conduit
  link(0, 2, cheap);  // edge 2: s->b
  link(2, 4, cheap);  // edge 3: b->t   } one conduit
  link(0, 3, dear);   // edge 4: s->c
  link(3, 4, dear);   // edge 5: c->t
  n.add_srlg({1, 3}, rng.uniform(0.1, 0.9));
  return n;
}

/// Random shared-risk groups over the finished instance. Member sets may
/// overlap and may straddle the request's natural paths — the point is to
/// exercise the conflict-set search, not to guarantee routability.
void annotate_srlgs(net::WdmNetwork& n, support::Rng& rng,
                    const GenOptions& opt) {
  if (n.num_links() < 2) return;
  const int groups = static_cast<int>(
      rng.uniform_int(1, std::max(1, opt.max_srlg_groups)));
  for (int g = 0; g < groups; ++g) {
    const int want =
        static_cast<int>(rng.uniform_int(2, std::max(2, opt.max_srlg_size)));
    std::vector<graph::EdgeId> members;
    for (int k = 0; k < want; ++k) {
      members.push_back(
          static_cast<graph::EdgeId>(rng.uniform_int(0, n.num_links() - 1)));
    }
    n.add_srlg(std::move(members), rng.uniform(0.05, 0.6));
  }
}

}  // namespace

const char* topo_family_name(TopoFamily f) {
  switch (f) {
    case TopoFamily::kRandomDigraph: return "random-digraph";
    case TopoFamily::kRandomConnected: return "random-connected";
    case TopoFamily::kRing: return "ring";
    case TopoFamily::kGrid: return "grid";
    case TopoFamily::kBackbone: return "backbone";
    case TopoFamily::kTrap: return "trap";
    case TopoFamily::kBridge: return "bridge";
    case TopoFamily::kSrlgTrap: return "srlg-trap";
  }
  return "unknown";
}

FuzzInstance generate_instance(std::uint64_t seed, const GenOptions& opt) {
  support::Rng rng(seed ^ 0xfa5c1b03u);
  FuzzInstance inst;
  inst.seed = seed;

  const int W =
      static_cast<int>(rng.uniform_int(opt.min_wavelengths, opt.max_wavelengths));
  const bool uniform_costs = opt.theorem2_regime_only || rng.bernoulli(0.6);
  // Link costs start at 1; conversion costs stay below 1 so the Theorem 2
  // assumption (conversion <= incident traversal) holds whenever requested.
  const double max_conv = opt.theorem2_regime_only ? 1.0 : 2.0;

  // Family mix: half structured/duplex, the rest directed-random and
  // adversarial shapes. Every SRLG-related draw is gated on srlg_mode so a
  // pre-SRLG seed consumes the identical RNG stream.
  const bool srlg_mode = opt.srlg_probability > 0.0;
  const int roll = static_cast<int>(rng.uniform_int(0, 99));
  TopoFamily family;
  if (srlg_mode && rng.bernoulli(0.15)) family = TopoFamily::kSrlgTrap;
  else if (roll < 25) family = TopoFamily::kRandomDigraph;
  else if (roll < 50) family = TopoFamily::kRandomConnected;
  else if (roll < 60) family = TopoFamily::kRing;
  else if (roll < 70) family = TopoFamily::kGrid;
  else if (roll < 75) family = TopoFamily::kBackbone;
  else if (roll < 90) family = TopoFamily::kTrap;
  else family = TopoFamily::kBridge;
  inst.family = topo_family_name(family);

  switch (family) {
    case TopoFamily::kRandomDigraph: {
      const int n = static_cast<int>(rng.uniform_int(opt.min_nodes, opt.max_nodes));
      const int m = static_cast<int>(rng.uniform_int(n, 3 * n));
      net::WdmNetwork net(n, W);
      for (int i = 0; i < m; ++i) {
        const auto u = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
        auto v = u;
        while (v == u) v = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
        add_random_link(net, u, v, W, rng, uniform_costs, 1.0, 10.0);
      }
      inst.network = std::move(net);
      break;
    }
    case TopoFamily::kRandomConnected:
    case TopoFamily::kRing:
    case TopoFamily::kGrid:
    case TopoFamily::kBackbone: {
      topo::Topology t;
      if (family == TopoFamily::kRandomConnected) {
        const int n = static_cast<int>(rng.uniform_int(opt.min_nodes, opt.max_nodes));
        t = topo::random_connected(n, static_cast<int>(rng.uniform_int(0, n)), rng);
      } else if (family == TopoFamily::kRing) {
        const int lo = std::max(3, opt.min_nodes);
        t = topo::ring(static_cast<int>(
            rng.uniform_int(lo, std::max(lo, opt.max_nodes))));
      } else if (family == TopoFamily::kGrid) {
        t = topo::grid(2, static_cast<int>(rng.uniform_int(
                              2, std::max(2, opt.max_nodes / 2))));
      } else {
        t = topo::nsfnet();
      }
      topo::NetworkOptions nopt;
      nopt.num_wavelengths = W;
      nopt.install_probability = rng.uniform(0.6, 1.0);
      nopt.cost_model = uniform_costs ? topo::CostModel::kRandomPerLink
                                      : topo::CostModel::kRandomPerWavelength;
      nopt.cost_lo = 1.0;
      nopt.cost_hi = 10.0;
      nopt.conversion_model = topo::ConversionModel::kFullUniform;
      nopt.conversion_cost = rng.uniform(0.0, max_conv);
      inst.network = topo::build_network(t, nopt, rng);
      break;
    }
    case TopoFamily::kTrap:
      inst.network = trap_network(W, rng, uniform_costs,
                                  static_cast<int>(rng.uniform_int(0, 3)));
      break;
    case TopoFamily::kBridge:
      inst.network = bridge_network(W, rng, uniform_costs);
      break;
    case TopoFamily::kSrlgTrap:
      inst.network = srlg_trap_network(W, rng, uniform_costs);
      break;
  }

  // build_network already set full-uniform conversion for the duplex
  // families; re-draw per-node tables for variety unless Theorem 2 pins them.
  if (family == TopoFamily::kRandomDigraph || family == TopoFamily::kTrap ||
      family == TopoFamily::kBridge || family == TopoFamily::kSrlgTrap ||
      !opt.theorem2_regime_only) {
    assign_conversions(inst.network, rng, opt.theorem2_regime_only, max_conv);
  }

  apply_residual_state(inst.network, rng, opt);

  const net::NodeId n = inst.network.num_nodes();
  if (inst.family == std::string("trap")) {
    inst.s = 0;
    inst.t = 3;
  } else if (inst.family == std::string("srlg-trap")) {
    inst.s = 0;
    inst.t = 4;
  } else if (inst.family == std::string("bridge")) {
    inst.s = static_cast<net::NodeId>(rng.uniform_int(0, 2));
    inst.t = static_cast<net::NodeId>(rng.uniform_int(3, 5));
  } else {
    inst.s = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    inst.t = inst.s;
    while (inst.t == inst.s) {
      inst.t = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    }
  }
  // Random SRLG annotations last: the physical instance for a seed is
  // identical with or without them, so SRLG-mode failures can be compared
  // against the annotation-free run of the same seed.
  if (srlg_mode && family != TopoFamily::kSrlgTrap &&
      rng.bernoulli(opt.srlg_probability)) {
    annotate_srlgs(inst.network, rng, opt);
  }

  WDM_CHECK(inst.s != inst.t);
  return inst;
}

bool in_theorem2_regime(const net::WdmNetwork& net) {
  if (!topo::satisfies_theorem2_assumption(net)) return false;
  const int W = net.W();
  for (net::NodeId v = 0; v < net.num_nodes(); ++v) {
    const net::ConversionTable& t = net.conversion(v);
    if (!t.is_full()) return false;
    // Uniform cost across non-identity pairs.
    double c0 = -1.0;
    for (net::Wavelength a = 0; a < W; ++a) {
      for (net::Wavelength b = 0; b < W; ++b) {
        if (a == b) continue;
        if (c0 < 0.0) c0 = t.cost(a, b);
        else if (t.cost(a, b) != c0) return false;
      }
    }
  }
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    // Wavelength-independent link costs (assumption (ii)).
    double w0 = -1.0;
    bool uniform = true;
    net.installed(e).for_each([&](net::Wavelength l) {
      if (w0 < 0.0) w0 = net.weight(e, l);
      else if (net.weight(e, l) != w0) uniform = false;
    });
    if (!uniform) return false;
  }
  return true;
}

bool all_nodes_full_conversion(const net::WdmNetwork& net) {
  for (net::NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.conversion(v).is_full()) return false;
  }
  return true;
}

}  // namespace wdm::fuzz
