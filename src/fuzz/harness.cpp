#include "fuzz/harness.hpp"

#include <sstream>

#include "fuzz/corpus.hpp"
#include "fuzz/shrinker.hpp"

namespace wdm::fuzz {

std::string HarnessReport::summary() const {
  std::ostringstream out;
  out << instances_run << " instances, " << failing_instances << " failing";
  for (const FailureRecord& f : failures) {
    out << "\n  seed " << f.seed << " [" << f.family
        << "]: " << f.violation.to_string() << " (size " << f.original_size
        << " -> " << f.shrunk_size << ")";
    if (!f.corpus_path.empty()) out << " repro: " << f.corpus_path;
  }
  return out.str();
}

HarnessReport run_fuzz(const HarnessOptions& opt) {
  HarnessReport report;
  for (int i = 0; i < opt.num_instances; ++i) {
    const std::uint64_t seed = opt.base_seed + static_cast<std::uint64_t>(i);
    const FuzzInstance inst = generate_instance(seed, opt.gen);
    ++report.instances_run;
    ++report.instances_per_family[inst.family];

    CheckOptions copt = opt.check;
    copt.run_ilp = copt.run_ilp || (opt.ilp_every > 0 && i % opt.ilp_every == 0);
    const std::vector<Violation> violations = check_instance(inst, copt);
    if (violations.empty()) continue;

    ++report.failing_instances;
    if (static_cast<int>(report.failures.size()) >= opt.max_recorded_failures) {
      continue;
    }

    FailureRecord rec;
    rec.seed = seed;
    rec.family = inst.family;
    rec.violation = violations.front();
    rec.original_size = inst.size();
    rec.shrunk = inst;

    if (opt.shrink_failures) {
      // The failure being chased is the *invariant id*: any router may
      // trip it on the smaller instance, as long as the same contract
      // breaks. Chasing the exact (router, detail) pair over-constrains the
      // shrink and leaves larger repros.
      const std::string target = rec.violation.invariant;
      const auto still_fails = [&](const FuzzInstance& cand) {
        for (const Violation& v : check_instance(cand, copt)) {
          if (v.invariant == target) return true;
        }
        return false;
      };
      rec.shrunk = shrink(std::move(rec.shrunk), still_fails,
                          opt.shrink_budget);
      // Re-derive the violation on the minimized instance so the corpus
      // entry's recorded detail matches its own contents.
      for (const Violation& v : check_instance(rec.shrunk, copt)) {
        if (v.invariant == target) {
          rec.violation = v;
          break;
        }
      }
    }
    rec.shrunk_size = rec.shrunk.size();

    if (!opt.corpus_dir.empty()) {
      rec.corpus_path =
          write_repro_file(opt.corpus_dir, rec.shrunk, rec.violation);
    }
    report.failures.push_back(std::move(rec));
  }
  return report;
}

}  // namespace wdm::fuzz
