// The fuzz driver: generate N seeded instances, run the router suite and
// oracle set on each, and on any invariant violation greedily shrink the
// instance and serialize the minimized repro into the corpus directory.
//
// Everything is deterministic given (base_seed, num_instances): failures
// reported by CI reproduce locally by seed alone, and the corpus entry
// carries the seed for provenance even after shrinking.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/invariants.hpp"

namespace wdm::fuzz {

struct HarnessOptions {
  int num_instances = 500;
  std::uint64_t base_seed = 20260807;
  GenOptions gen;
  CheckOptions check;
  /// The ILP oracle is orders of magnitude slower than everything else; it
  /// runs on every `ilp_every`-th instance that fits its size gate.
  int ilp_every = 8;
  /// When nonempty, each failure is shrunk and serialized here.
  std::string corpus_dir;
  bool shrink_failures = true;
  int shrink_budget = 600;
  /// Cap on recorded failure details (the run continues counting past it).
  int max_recorded_failures = 8;
};

struct FailureRecord {
  std::uint64_t seed = 0;
  std::string family;
  Violation violation;       // first violation on the original instance
  FuzzInstance shrunk;       // minimized repro (== original when not shrunk)
  long original_size = 0;
  long shrunk_size = 0;
  std::string corpus_path;   // "" when no corpus_dir configured
};

struct HarnessReport {
  int instances_run = 0;
  int failing_instances = 0;
  std::map<std::string, int> instances_per_family;
  std::vector<FailureRecord> failures;

  bool ok() const { return failing_instances == 0; }
  /// One-line-per-failure human summary for gtest messages.
  std::string summary() const;
};

HarnessReport run_fuzz(const HarnessOptions& opt = {});

}  // namespace wdm::fuzz
