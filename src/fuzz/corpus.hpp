// Repro corpus: shrunk failing instances serialized through wdm/io's .wdm
// text format, prefixed with `#!fuzz` metadata comment lines (which the
// plain network reader skips, so every corpus file is also a valid network
// file for wdmtool and friends).
//
//   #!fuzz v1
//   #!fuzz seed <u64>          # generator seed of the original instance
//   #!fuzz family <name>
//   #!fuzz s <node>
//   #!fuzz t <node>
//   #!fuzz invariant <id>      # which invariant failed when recorded
//   #!fuzz detail <free text>
//   network ...                # wdm::io::write_network output
//
// Replay re-runs the invariant suite on every corpus entry; a fixed bug's
// repro stays green forever as a regression test.
#pragma once

#include <string>
#include <vector>

#include "fuzz/instance.hpp"
#include "fuzz/invariants.hpp"

namespace wdm::fuzz {

struct ReproCase {
  FuzzInstance instance;
  std::string invariant;  // invariant recorded at capture time
  std::string detail;
  std::string path;  // file it was loaded from ("" when in-memory)
};

/// Serializes instance + metadata to the corpus text format.
std::string write_repro_text(const FuzzInstance& inst,
                             const Violation& violation);

/// Parses a corpus entry. Throws io::ParseError on malformed input.
ReproCase read_repro_text(const std::string& text);

/// Writes the repro into `dir` (created if missing) under a deterministic
/// name derived from invariant + seed; returns the full path.
std::string write_repro_file(const std::string& dir, const FuzzInstance& inst,
                             const Violation& violation);

/// Loads every *.wdm file in `dir`, sorted by filename. Missing directory ->
/// empty corpus.
std::vector<ReproCase> load_corpus(const std::string& dir);

/// Re-checks one corpus entry against the current invariant suite.
std::vector<Violation> replay(const ReproCase& repro,
                              const CheckOptions& opt = {});

}  // namespace wdm::fuzz
