#include "fuzz/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "fuzz/generator.hpp"
#include "graph/mincostflow.hpp"
#include "graph/suurballe.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/baselines.hpp"
#include "rwa/exact_router.hpp"
#include "rwa/ilp_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "rwa/node_disjoint_router.hpp"

namespace wdm::fuzz {

namespace {

void add(std::vector<Violation>& out, std::string invariant, std::string router,
         std::string detail) {
  out.push_back(Violation{std::move(invariant), std::move(router),
                          std::move(detail)});
}

/// Structural re-check of one semilightpath from raw tables: contiguity,
/// endpoints, installation, residual availability, conversion legality.
/// Returns false (with a violation) on the first defect.
bool check_path_structure(const net::WdmNetwork& net,
                          const net::Semilightpath& p, net::NodeId s,
                          net::NodeId t, const std::string& router,
                          const char* which, std::vector<Violation>& out) {
  const auto& g = net.graph();
  if (!p.found || p.hops.empty()) {
    add(out, "structure", router, std::string(which) + " path marked found but empty");
    return false;
  }
  for (std::size_t i = 0; i < p.hops.size(); ++i) {
    const net::Hop& h = p.hops[i];
    std::ostringstream where;
    where << which << " hop " << i << " (edge " << h.edge << ", λ" << h.lambda
          << ")";
    if (!g.valid_edge(h.edge) || h.lambda < 0 || h.lambda >= net.W()) {
      add(out, "structure", router, where.str() + ": invalid edge/wavelength");
      return false;
    }
    if (!net.installed(h.edge).contains(h.lambda)) {
      add(out, "structure", router, where.str() + ": λ not installed on link");
      return false;
    }
    if (net.link_failed(h.edge)) {
      add(out, "structure", router, where.str() + ": link is failed");
      return false;
    }
    if (net.is_used(h.edge, h.lambda)) {
      add(out, "structure", router,
          where.str() + ": wavelength already reserved (not in residual)");
      return false;
    }
    if (i + 1 < p.hops.size()) {
      const net::Hop& nx = p.hops[i + 1];
      if (g.head(h.edge) != g.tail(nx.edge)) {
        add(out, "structure", router, where.str() + ": hops not contiguous");
        return false;
      }
      // Wavelength continuity: a change across the intermediate node is a
      // conversion and must be allowed by that node's table.
      const net::NodeId mid = g.head(h.edge);
      if (h.lambda != nx.lambda &&
          !net.conversion(mid).allowed(h.lambda, nx.lambda)) {
        add(out, "continuity", router,
            where.str() + ": conversion λ" + std::to_string(h.lambda) + "->λ" +
                std::to_string(nx.lambda) + " not allowed at node " +
                std::to_string(mid));
        return false;
      }
    }
  }
  if (g.tail(p.hops.front().edge) != s || g.head(p.hops.back().edge) != t) {
    add(out, "endpoints", router,
        std::string(which) + " path does not run s->t");
    return false;
  }
  return true;
}

std::set<graph::NodeId> internal_nodes(const net::WdmNetwork& net,
                                       const net::Semilightpath& p) {
  std::set<graph::NodeId> ns;
  for (std::size_t i = 0; i + 1 < p.hops.size(); ++i) {
    ns.insert(net.graph().head(p.hops[i].edge));
  }
  return ns;
}

bool same_semilightpath(const net::Semilightpath& a,
                        const net::Semilightpath& b) {
  if (a.found != b.found || a.hops.size() != b.hops.size()) return false;
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    if (a.hops[i].edge != b.hops[i].edge ||
        a.hops[i].lambda != b.hops[i].lambda) {
      return false;
    }
  }
  return true;
}

bool same_route(const rwa::RouteResult& a, const rwa::RouteResult& b) {
  return a.found == b.found &&
         same_semilightpath(a.route.primary, b.route.primary) &&
         same_semilightpath(a.route.backup, b.route.backup);
}

bool path_touches_group(const net::Semilightpath& p,
                        const std::vector<graph::EdgeId>& members) {
  for (const net::Hop& h : p.hops) {
    if (std::find(members.begin(), members.end(), h.edge) != members.end()) {
      return true;
    }
  }
  return false;
}

/// 1 - Π(1 - p_g) over raw group membership: deliberately never calls
/// WdmNetwork::link_failure_probability / srlgs_of_link.
double independent_failure_probability(const net::WdmNetwork& net,
                                       graph::EdgeId e) {
  double survive = 1.0;
  for (int g = 0; g < net.num_srlgs(); ++g) {
    const net::Srlg& grp = net.srlg(g);
    if (std::find(grp.links.begin(), grp.links.end(), e) != grp.links.end()) {
      survive *= 1.0 - grp.failure_probability;
    }
  }
  return 1.0 - survive;
}

}  // namespace

double recompute_cost_eq1(const net::WdmNetwork& net,
                          const net::Semilightpath& p) {
  double c = 0.0;
  for (std::size_t i = 0; i < p.hops.size(); ++i) {
    c += net.weight(p.hops[i].edge, p.hops[i].lambda);
    if (i + 1 < p.hops.size()) {
      c += net.conversion(net.graph().head(p.hops[i].edge))
               .cost(p.hops[i].lambda, p.hops[i + 1].lambda);
    }
  }
  return c;
}

void check_route_result(const FuzzInstance& inst, const rwa::RouteResult& r,
                        const std::string& router, bool requires_backup,
                        bool requires_node_disjoint, bool check_aux_bound,
                        double eps, std::vector<Violation>& out) {
  if (!r.found) return;
  const net::WdmNetwork& net = inst.network;

  bool ok = check_path_structure(net, r.route.primary, inst.s, inst.t, router,
                                 "primary", out);
  if (requires_backup) {
    ok = check_path_structure(net, r.route.backup, inst.s, inst.t, router,
                              "backup", out) &&
         ok;
  }
  if (!ok) return;

  // Edge-disjointness (§2): share no directed physical link.
  if (requires_backup) {
    std::set<graph::EdgeId> pe;
    for (const net::Hop& h : r.route.primary.hops) pe.insert(h.edge);
    for (const net::Hop& h : r.route.backup.hops) {
      if (pe.count(h.edge)) {
        add(out, "edge-disjoint", router,
            "primary and backup share link " + std::to_string(h.edge));
        return;
      }
    }
    // Differential: the library's own feasibility predicate must agree with
    // the independent re-derivation above.
    if (!r.route.feasible(net)) {
      add(out, "feasible-predicate", router,
          "ProtectedRoute::feasible disagrees with independent checks");
      return;
    }
  }

  if (requires_node_disjoint) {
    const auto a = internal_nodes(net, r.route.primary);
    const auto b = internal_nodes(net, r.route.backup);
    for (graph::NodeId v : a) {
      if (b.count(v)) {
        add(out, "node-disjoint", router,
            "paths share intermediate node " + std::to_string(v));
      }
    }
  }

  // Independent Eq. (1) re-accounting of each path and of the total.
  double total = 0.0;
  const net::Semilightpath* paths[2] = {&r.route.primary, &r.route.backup};
  const char* names[2] = {"primary", "backup"};
  for (int i = 0; i < (requires_backup ? 2 : 1); ++i) {
    const double independent = recompute_cost_eq1(net, *paths[i]);
    const double library = paths[i]->cost(net);
    if (std::abs(independent - library) > eps) {
      std::ostringstream d;
      d << names[i] << " Eq.(1) mismatch: independent " << independent
        << " vs Semilightpath::cost " << library;
      add(out, "cost-accounting", router, d.str());
    }
    total += independent;
  }
  if (requires_backup && std::abs(total - r.total_cost(net)) > eps) {
    std::ostringstream d;
    d << "total_cost " << r.total_cost(net) << " != independent sum " << total;
    add(out, "cost-accounting", router, d.str());
  }

  // Lemma 2: delivered cost bounded by the auxiliary-graph pair weight.
  if (check_aux_bound && !std::isnan(r.aux_cost) && requires_backup) {
    if (total > r.aux_cost + eps) {
      std::ostringstream d;
      d << "delivered cost " << total << " exceeds aux-graph bound "
        << r.aux_cost << " (Lemma 2)";
      add(out, "aux-bound", router, d.str());
    }
  }

  // Version 2 threshold: every link the route uses had load < ϑ when the
  // G_c / G_rc filter admitted it.
  if (!std::isnan(r.theta) && requires_backup) {
    for (int i = 0; i < 2; ++i) {
      for (const net::Hop& h : paths[i]->hops) {
        if (net.link_load(h.edge) >= r.theta) {
          std::ostringstream d;
          d << names[i] << " uses link " << h.edge << " with load "
            << net.link_load(h.edge) << " >= accepted ϑ " << r.theta;
          add(out, "theta-filter", router, d.str());
        }
      }
    }
  }

  // Reservation accounting: reserve the route in a copy, recompute per-link
  // usage and ρ (Eq. 2) independently, release, and verify no leak.
  net::WdmNetwork copy = net;  // value semantics: full state copy
  const long long usage_before = copy.total_usage();
  std::vector<int> extra(static_cast<std::size_t>(copy.num_links()), 0);
  for (int i = 0; i < (requires_backup ? 2 : 1); ++i) {
    paths[i]->reserve_in(copy);
    for (const net::Hop& h : paths[i]->hops) {
      ++extra[static_cast<std::size_t>(h.edge)];
    }
  }
  double rho = 0.0;
  for (graph::EdgeId e = 0; e < copy.num_links(); ++e) {
    // Recount in-use wavelengths bit by bit rather than trusting usage().
    int used = 0;
    for (net::Wavelength l = 0; l < copy.W(); ++l) {
      if (copy.installed(e).contains(l) && copy.is_used(e, l)) ++used;
    }
    const int expect = net.usage(e) + extra[static_cast<std::size_t>(e)];
    if (used != expect) {
      std::ostringstream d;
      d << "link " << e << " usage after reserve is " << used << ", expected "
        << expect;
      add(out, "rho-recompute", router, d.str());
    }
    rho = std::max(rho, static_cast<double>(used) /
                            static_cast<double>(copy.capacity(e)));
  }
  if (std::abs(rho - copy.network_load()) > eps) {
    std::ostringstream d;
    d << "network_load() " << copy.network_load()
      << " != independently recomputed ρ " << rho;
    add(out, "rho-recompute", router, d.str());
  }
  for (int i = 0; i < (requires_backup ? 2 : 1); ++i) {
    paths[i]->release_in(copy);
  }
  if (copy.total_usage() != usage_before) {
    add(out, "rho-recompute", router, "reserve/release leaked usage");
  }
}

void check_srlg_disjoint(const FuzzInstance& inst, const rwa::RouteResult& r,
                         const std::string& router,
                         std::vector<Violation>& out) {
  if (!r.found) return;
  const net::WdmNetwork& net = inst.network;
  for (int g = 0; g < net.num_srlgs(); ++g) {
    const net::Srlg& grp = net.srlg(g);
    if (path_touches_group(r.route.primary, grp.links) &&
        path_touches_group(r.route.backup, grp.links)) {
      add(out, "srlg-disjoint", router,
          "primary and backup both traverse SRLG " + std::to_string(g));
    }
  }
}

void check_partial_coverage(const FuzzInstance& inst, const rwa::RouteResult& r,
                            double threshold, const std::string& router,
                            std::vector<Violation>& out) {
  if (!r.found) return;
  const net::WdmNetwork& net = inst.network;

  std::vector<graph::EdgeId> risky;
  for (const net::Hop& h : r.route.primary.hops) {
    if (independent_failure_probability(net, h.edge) > threshold) {
      risky.push_back(h.edge);
    }
  }

  if (!r.route.backup.found) {
    if (!risky.empty()) {
      add(out, "partial-coverage", router,
          "primary carries " + std::to_string(risky.size()) +
              " risky link(s) above threshold " + std::to_string(threshold) +
              " but no backup was provisioned");
    }
    return;
  }

  // Conflict closure of the risky set, re-derived from raw group storage:
  // the risky links plus everything sharing a group with one of them.
  std::vector<std::uint8_t> forbidden(
      static_cast<std::size_t>(net.num_links()), 0);
  for (graph::EdgeId e : risky) forbidden[static_cast<std::size_t>(e)] = 1;
  for (int g = 0; g < net.num_srlgs(); ++g) {
    const net::Srlg& grp = net.srlg(g);
    const bool hit = std::find_first_of(grp.links.begin(), grp.links.end(),
                                        risky.begin(), risky.end()) !=
                     grp.links.end();
    if (!hit) continue;
    for (graph::EdgeId e : grp.links) {
      forbidden[static_cast<std::size_t>(e)] = 1;
    }
  }

  for (const net::Hop& h : r.route.backup.hops) {
    if (forbidden[static_cast<std::size_t>(h.edge)]) {
      add(out, "partial-coverage", router,
          "backup traverses link " + std::to_string(h.edge) +
              " which is risky (or shares a group with a risky primary link)");
    }
    for (const net::Hop& ph : r.route.primary.hops) {
      if (ph.edge == h.edge && ph.lambda == h.lambda) {
        add(out, "partial-coverage", router,
            "backup shares channel (link " + std::to_string(h.edge) + ", λ" +
                std::to_string(h.lambda) + ") with the primary");
      }
    }
  }

  if (!r.route.feasible(net)) {
    add(out, "feasible-predicate", router,
        "partial route fails ProtectedRoute::feasible");
  }
}

std::optional<bool> srlg_pair_exists_bruteforce(const net::WdmNetwork& net,
                                                net::NodeId s, net::NodeId t,
                                                int max_nodes, int max_links,
                                                long max_paths) {
  if (net.num_nodes() > max_nodes || net.num_links() > max_links) {
    return std::nullopt;
  }
  if (!all_nodes_full_conversion(net)) return std::nullopt;

  // Usable = carries at least one free wavelength (empty when failed). Under
  // full conversion any simple path over usable links is realizable, and an
  // edge-disjoint pair never competes for the same link's wavelengths.
  std::vector<std::vector<std::pair<graph::EdgeId, net::NodeId>>> adj(
      static_cast<std::size_t>(net.num_nodes()));
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    if (net.available(e).count() > 0) {
      adj[static_cast<std::size_t>(net.graph().tail(e))].emplace_back(
          e, net.graph().head(e));
    }
  }

  std::vector<std::vector<graph::EdgeId>> paths;
  std::vector<graph::EdgeId> stack;
  std::vector<char> visited(static_cast<std::size_t>(net.num_nodes()), 0);
  bool overflow = false;
  auto dfs = [&](auto&& self, net::NodeId v) -> void {
    if (overflow) return;
    if (v == t) {
      if (static_cast<long>(paths.size()) >= max_paths) {
        overflow = true;
      } else {
        paths.push_back(stack);
      }
      return;
    }
    visited[static_cast<std::size_t>(v)] = 1;
    for (const auto& [e, w] : adj[static_cast<std::size_t>(v)]) {
      if (visited[static_cast<std::size_t>(w)]) continue;
      stack.push_back(e);
      self(self, w);
      stack.pop_back();
    }
    visited[static_cast<std::size_t>(v)] = 0;
  };
  dfs(dfs, s);
  if (overflow) return std::nullopt;

  // Group signature per path, from raw member lists.
  std::vector<std::vector<int>> groups(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (int g = 0; g < net.num_srlgs(); ++g) {
      const net::Srlg& grp = net.srlg(g);
      if (std::find_first_of(grp.links.begin(), grp.links.end(),
                             paths[i].begin(),
                             paths[i].end()) != grp.links.end()) {
        groups[i].push_back(g);
      }
    }
  }

  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      const bool edge_overlap =
          std::find_first_of(paths[i].begin(), paths[i].end(),
                             paths[j].begin(),
                             paths[j].end()) != paths[i].end();
      if (edge_overlap) continue;
      const bool group_overlap =
          std::find_first_of(groups[i].begin(), groups[i].end(),
                             groups[j].begin(),
                             groups[j].end()) != groups[i].end();
      if (!group_overlap) return true;
    }
  }
  return false;
}

std::vector<Violation> check_instance(const FuzzInstance& inst,
                                      const CheckOptions& opt) {
  std::vector<Violation> out;
  const net::WdmNetwork& net = inst.network;
  const bool full_conv = all_nodes_full_conversion(net);
  const bool thm2 = in_theorem2_regime(net);

  // --- Route-level invariants over the whole router suite. ---
  const rwa::ApproxDisjointRouter approx;
  const rwa::ApproxDisjointRouter approx_norefine(false);
  const rwa::NodeDisjointRouter node_disjoint;
  const rwa::MinLoadRouter minload;
  const rwa::LoadCostRouter loadcost;
  const rwa::UnprotectedRouter unprotected;
  const rwa::PhysicalFirstFitRouter physff;
  const rwa::TwoStepRouter twostep;

  const rwa::RouteResult approx_r = approx.route(net, inst.s, inst.t);
  check_route_result(inst, approx_r, approx.name(), true, false,
                     /*check_aux_bound=*/thm2, opt.eps, out);
  check_route_result(inst, approx_norefine.route(net, inst.s, inst.t),
                     approx_norefine.name(), true, false, false, opt.eps, out);
  check_route_result(inst, node_disjoint.route(net, inst.s, inst.t),
                     node_disjoint.name(), true, true, false, opt.eps, out);
  check_route_result(inst, minload.route(net, inst.s, inst.t), minload.name(),
                     true, false, false, opt.eps, out);
  check_route_result(inst, loadcost.route(net, inst.s, inst.t),
                     loadcost.name(), true, false, false, opt.eps, out);
  check_route_result(inst, unprotected.route(net, inst.s, inst.t),
                     unprotected.name(), false, false, false, opt.eps, out);
  check_route_result(inst, physff.route(net, inst.s, inst.t), physff.name(),
                     true, false, false, opt.eps, out);
  check_route_result(inst, twostep.route(net, inst.s, inst.t), twostep.name(),
                     true, false, false, opt.eps, out);
  for (const rwa::Router* extra : opt.extra_routers) {
    check_route_result(inst, extra->route(net, inst.s, inst.t), extra->name(),
                       true, false, /*check_aux_bound=*/thm2, opt.eps, out);
  }

  // --- SRLG-aware protection policies. ---
  {
    const rwa::ApproxDisjointRouter approx_srlg(true,
                                                net::ProtectPolicy::srlg());
    const rwa::RouteResult srlg_r = approx_srlg.route(net, inst.s, inst.t);
    check_route_result(inst, srlg_r, "approx[srlg]", true, false, false,
                       opt.eps, out);
    check_srlg_disjoint(inst, srlg_r, "approx[srlg]", out);

    // Differential: on an SRLG-free network the kSrlg policy must be
    // bit-for-bit the default (kFull) router's output.
    if (net.num_srlgs() == 0 && !same_route(approx_r, srlg_r)) {
      add(out, "srlg-free-identity", "approx[srlg]",
          "kSrlg output differs from kFull on a network with no SRLGs");
    }

    const rwa::NodeDisjointRouter nd_srlg(net::ProtectPolicy::srlg());
    const rwa::RouteResult nd_r = nd_srlg.route(net, inst.s, inst.t);
    check_route_result(inst, nd_r, "node-disjoint[srlg]", true, true, false,
                       opt.eps, out);
    check_srlg_disjoint(inst, nd_r, "node-disjoint[srlg]", out);

    const rwa::MinLoadRouter ml_srlg({}, net::ProtectPolicy::srlg());
    const rwa::RouteResult ml_r = ml_srlg.route(net, inst.s, inst.t);
    check_route_result(inst, ml_r, "minload[srlg]", true, false, false,
                       opt.eps, out);
    check_srlg_disjoint(inst, ml_r, "minload[srlg]", out);

    const rwa::LoadCostRouter lc_srlg({}, false, net::ProtectPolicy::srlg());
    const rwa::RouteResult lc_r = lc_srlg.route(net, inst.s, inst.t);
    check_route_result(inst, lc_r, "load+cost[srlg]", true, false, false,
                       opt.eps, out);
    check_srlg_disjoint(inst, lc_r, "load+cost[srlg]", out);

    // Completeness: a blocked result claiming an exhausted search must agree
    // with the brute-force pair enumeration. Only the cost-optimal approx
    // router makes that claim soundly (the load-aware routers restrict
    // themselves to G_rc(ϑ) and may block routable requests by design).
    if (net.num_srlgs() > 0 && !srlg_r.found && srlg_r.srlg_exhaustive &&
        full_conv && opt.run_exact) {
      const std::optional<bool> exists = srlg_pair_exists_bruteforce(
          net, inst.s, inst.t, opt.srlg_exact_max_nodes,
          opt.srlg_exact_max_links, opt.srlg_exact_max_paths);
      if (exists && *exists) {
        add(out, "srlg-completeness", "approx[srlg]",
            "router reported an exhaustive block but an SRLG-disjoint "
            "realizable pair exists");
      }
    }

    // Partial protection at a strict and a permissive threshold.
    for (const double th : {0.0, 0.25}) {
      const rwa::ApproxDisjointRouter part(true,
                                           net::ProtectPolicy::partial(th));
      const rwa::RouteResult pr = part.route(net, inst.s, inst.t);
      check_route_result(inst, pr, "approx[partial]", /*requires_backup=*/false,
                         false, false, opt.eps, out);
      check_partial_coverage(inst, pr, th, "approx[partial]", out);
    }
  }

  // --- Exact oracles (gated by instance size). ---
  const bool exact_ok = opt.run_exact &&
                        net.num_nodes() <= opt.exact_max_nodes &&
                        net.num_links() <= opt.exact_max_links;
  rwa::ExactResult exact;
  if (exact_ok) {
    rwa::ExactOptions eopt;
    eopt.max_candidates = opt.exact_max_candidates;
    exact = rwa::exact_disjoint_pair(net, inst.s, inst.t, eopt);
  }

  // Existence + optimality agreement is sound when every node has full
  // conversion: then G' is exact on existence, every walk shortcuts to a
  // simple path, and the enumeration optimum is the global optimum.
  if (exact_ok && exact.proven_optimal && full_conv) {
    if (approx_r.found != exact.result.found) {
      add(out, "approx-vs-exact-existence", "",
          std::string("approx ") + (approx_r.found ? "found" : "blocked") +
              " but exact " + (exact.result.found ? "found" : "blocked") +
              " under full conversion");
    }
    // The cost comparisons additionally need the Theorem 2 assumptions:
    // they guarantee any walk shortcuts to a simple path at no extra cost,
    // making the simple-pair enumeration optimum a true global optimum.
    if (approx_r.found && exact.result.found && thm2) {
      const double a = approx_r.total_cost(net);
      const double x = exact.result.total_cost(net);
      if (a < x - opt.eps) {
        std::ostringstream d;
        d << "approx cost " << a << " beats proven optimum " << x;
        add(out, "exact-lower-bound", "", d.str());
      }
      if (a > 2.0 * x + opt.eps) {
        std::ostringstream d;
        d << "approx cost " << a << " > 2 x optimum " << x
          << " inside the Theorem 2 assumptions";
        add(out, "theorem2-ratio", "", d.str());
      }
    }
  }

  // ILP vs enumeration (both are simple-pair-exact; must agree).
  if (exact_ok && exact.proven_optimal && opt.run_ilp &&
      net.num_nodes() <= opt.ilp_max_nodes &&
      net.W() <= opt.ilp_max_wavelengths) {
    const rwa::IlpRouteResult ilp = rwa::ilp_disjoint_pair(net, inst.s, inst.t);
    if (ilp.result.found != exact.result.found) {
      add(out, "ilp-vs-exact", "",
          std::string("ILP ") + (ilp.result.found ? "found" : "blocked") +
              " but enumeration " +
              (exact.result.found ? "found" : "blocked"));
    } else if (ilp.result.found &&
               std::abs(ilp.result.total_cost(net) -
                        exact.result.total_cost(net)) > 1e-4) {
      std::ostringstream d;
      d << "ILP optimum " << ilp.result.total_cost(net)
        << " != enumeration optimum " << exact.result.total_cost(net);
      add(out, "ilp-vs-exact", "", d.str());
    }
  }

  // Suurballe vs min-cost-flow (k=2) on the auxiliary graph G': independent
  // algorithms, identical optimum.
  {
    rwa::AuxGraphOptions aopt;
    aopt.weighting = rwa::AuxWeighting::kCost;
    const rwa::AuxGraph aux =
        rwa::build_aux_graph(net, inst.s, inst.t, aopt);
    const graph::DisjointPair sb =
        graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second);
    const auto mcf = graph::min_cost_disjoint_paths(aux.g, aux.w, aux.s_prime,
                                                    aux.t_second, 2);
    if (sb.found != mcf.has_value()) {
      add(out, "suurballe-vs-mcf", "",
          std::string("Suurballe ") + (sb.found ? "found" : "blocked") +
              " but min-cost flow " + (mcf ? "found" : "blocked"));
    } else if (sb.found) {
      const double mcf_cost = (*mcf)[0].cost + (*mcf)[1].cost;
      if (std::abs(sb.total_cost() - mcf_cost) > 1e-6) {
        std::ostringstream d;
        d << "Suurballe pair weight " << sb.total_cost()
          << " != min-cost-flow weight " << mcf_cost;
        add(out, "suurballe-vs-mcf", "", d.str());
      }
    }
  }

  return out;
}

}  // namespace wdm::fuzz
