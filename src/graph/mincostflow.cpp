#include "graph/mincostflow.hpp"

#include <algorithm>

#include "graph/heaps.hpp"
#include "support/check.hpp"

namespace wdm::graph {

MinCostFlow::MinCostFlow(int num_nodes)
    : adj_(static_cast<std::size_t>(num_nodes)) {
  WDM_CHECK(num_nodes >= 0);
}

int MinCostFlow::add_arc(int u, int v, std::int64_t capacity, double cost) {
  WDM_CHECK(u >= 0 && static_cast<std::size_t>(u) < adj_.size());
  WDM_CHECK(v >= 0 && static_cast<std::size_t>(v) < adj_.size());
  WDM_CHECK(capacity >= 0);
  WDM_CHECK_MSG(cost >= 0.0, "min-cost flow requires nonnegative arc costs");
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto& av = adj_[static_cast<std::size_t>(v)];
  au.push_back(Arc{v, capacity, cost, static_cast<int>(av.size())});
  av.push_back(Arc{u, 0, -cost, static_cast<int>(au.size()) - 1});
  arc_pos_.emplace_back(u, static_cast<int>(au.size()) - 1);
  return static_cast<int>(arc_pos_.size()) - 1;
}

MinCostFlow::Result MinCostFlow::min_cost_flow(int s, int t,
                                               std::int64_t target) {
  WDM_CHECK(s != t);
  const std::size_t n = adj_.size();
  std::vector<double> potential(n, 0.0);  // costs nonnegative: zero init valid
  Result result;

  while (result.flow < target) {
    // Dijkstra over reduced costs.
    std::vector<double> dist(n, kInf);
    std::vector<std::pair<int, int>> pred(n, {-1, -1});  // (node, arc slot)
    QuadHeap heap(n);
    dist[static_cast<std::size_t>(s)] = 0.0;
    heap.push(static_cast<std::size_t>(s), 0.0);
    while (!heap.empty()) {
      const auto [uid, du] = heap.pop_min();
      const int u = static_cast<int>(uid);
      auto& arcs = adj_[uid];
      for (std::size_t slot = 0; slot < arcs.size(); ++slot) {
        const Arc& a = arcs[slot];
        if (a.cap <= 0) continue;
        const double rc = a.cost + potential[uid] -
                          potential[static_cast<std::size_t>(a.to)];
        const double dv = du + (rc < 0.0 ? 0.0 : rc);
        if (dv < dist[static_cast<std::size_t>(a.to)]) {
          dist[static_cast<std::size_t>(a.to)] = dv;
          pred[static_cast<std::size_t>(a.to)] = {u, static_cast<int>(slot)};
          heap.push_or_decrease(static_cast<std::size_t>(a.to), dv);
        }
      }
    }
    if (dist[static_cast<std::size_t>(t)] == kInf) break;  // no more paths
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }
    // Find bottleneck along the augmenting path, then push.
    std::int64_t push = target - result.flow;
    for (int v = t; v != s;) {
      const auto [u, slot] = pred[static_cast<std::size_t>(v)];
      push = std::min(push, adj_[static_cast<std::size_t>(u)]
                                [static_cast<std::size_t>(slot)].cap);
      v = u;
    }
    for (int v = t; v != s;) {
      const auto [u, slot] = pred[static_cast<std::size_t>(v)];
      Arc& a = adj_[static_cast<std::size_t>(u)][static_cast<std::size_t>(slot)];
      a.cap -= push;
      adj_[static_cast<std::size_t>(v)][static_cast<std::size_t>(a.rev)].cap +=
          push;
      result.cost += a.cost * static_cast<double>(push);
      v = u;
    }
    result.flow += push;
  }
  return result;
}

std::int64_t MinCostFlow::flow_on(int id) const {
  const auto [node, slot] = arc_pos_.at(static_cast<std::size_t>(id));
  const Arc& a =
      adj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(slot)];
  return adj_[static_cast<std::size_t>(a.to)][static_cast<std::size_t>(a.rev)]
      .cap;
}

std::optional<std::vector<Path>> min_cost_disjoint_paths(
    const Digraph& g, std::span<const double> w, NodeId s, NodeId t, int k,
    std::span<const std::uint8_t> edge_enabled) {
  WDM_CHECK(g.valid_node(s) && g.valid_node(t) && s != t);
  WDM_CHECK(k >= 1);
  WDM_CHECK(w.size() == static_cast<std::size_t>(g.num_edges()));
  MinCostFlow mcf(g.num_nodes());
  std::vector<int> arc_of_edge(static_cast<std::size_t>(g.num_edges()), -1);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_enabled.empty() && !edge_enabled[static_cast<std::size_t>(e)]) {
      continue;
    }
    arc_of_edge[static_cast<std::size_t>(e)] =
        mcf.add_arc(g.tail(e), g.head(e), 1, w[static_cast<std::size_t>(e)]);
  }
  const auto res = mcf.min_cost_flow(s, t, k);
  if (res.flow < k) return std::nullopt;

  // Decompose the k-unit flow into paths.
  std::vector<std::vector<EdgeId>> out(static_cast<std::size_t>(g.num_nodes()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const int arc = arc_of_edge[static_cast<std::size_t>(e)];
    if (arc >= 0 && mcf.flow_on(arc) > 0) {
      out[static_cast<std::size_t>(g.tail(e))].push_back(e);
    }
  }
  std::vector<Path> paths;
  for (int i = 0; i < k; ++i) {
    Path p;
    NodeId v = s;
    while (v != t) {
      auto& choices = out[static_cast<std::size_t>(v)];
      WDM_CHECK_MSG(!choices.empty(), "flow decomposition stuck");
      const EdgeId e = choices.back();
      choices.pop_back();
      p.edges.push_back(e);
      v = g.head(e);
    }
    p.found = true;
    p.cost = path_weight(p, w);
    paths.push_back(std::move(p));
  }
  std::sort(paths.begin(), paths.end(),
            [](const Path& a, const Path& b) { return a.cost < b.cost; });
  return paths;
}

}  // namespace wdm::graph
