#include "graph/yen.hpp"

#include <algorithm>

#include "graph/dijkstra.hpp"
#include "support/check.hpp"

namespace wdm::graph {

KShortestPathEnumerator::KShortestPathEnumerator(
    const Digraph& g, std::span<const double> w, NodeId s, NodeId t,
    std::span<const std::uint8_t> edge_enabled)
    : g_(g), w_(w), s_(s), t_(t) {
  WDM_CHECK(g.valid_node(s) && g.valid_node(t));
  WDM_CHECK(s != t);
  WDM_CHECK(w.size() == static_cast<std::size_t>(g.num_edges()));
  if (edge_enabled.empty()) {
    base_mask_.assign(static_cast<std::size_t>(g.num_edges()), 1);
  } else {
    WDM_CHECK(edge_enabled.size() == static_cast<std::size_t>(g.num_edges()));
    base_mask_.assign(edge_enabled.begin(), edge_enabled.end());
  }
}

std::optional<Path> KShortestPathEnumerator::next() {
  if (exhausted_) return std::nullopt;
  if (!primed_) {
    primed_ = true;
    Path first = shortest_path(g_, w_, s_, t_, base_mask_);
    if (!first.found) {
      exhausted_ = true;
      return std::nullopt;
    }
    output_.push_back(first);
    return first;
  }
  seed_candidates_from(output_.back());
  if (candidates_.empty()) {
    exhausted_ = true;
    return std::nullopt;
  }
  auto it = candidates_.begin();
  Path p;
  p.found = true;
  p.cost = it->first;
  p.edges = it->second;
  candidates_.erase(it);
  output_.push_back(p);
  return p;
}

void KShortestPathEnumerator::seed_candidates_from(const Path& last) {
  const auto last_nodes = last.nodes(g_);
  std::vector<std::uint8_t> mask(base_mask_);

  // Deviate at each position along the last output path.
  for (std::size_t i = 0; i < last.edges.size(); ++i) {
    const NodeId spur = last_nodes[i];
    std::vector<EdgeId> root(last.edges.begin(),
                             last.edges.begin() + static_cast<std::ptrdiff_t>(i));
    double root_cost = 0.0;
    for (EdgeId e : root) root_cost += w_[static_cast<std::size_t>(e)];

    // Ban the continuation edge of every previously output path sharing this
    // root prefix.
    std::vector<EdgeId> banned_edges;
    for (const Path& prev : output_) {
      if (prev.edges.size() <= i) continue;
      if (!std::equal(root.begin(), root.end(), prev.edges.begin())) continue;
      const EdgeId cont = prev.edges[i];
      if (mask[static_cast<std::size_t>(cont)]) {
        mask[static_cast<std::size_t>(cont)] = 0;
        banned_edges.push_back(cont);
      }
    }
    // Ban root nodes (except the spur) to keep paths loopless: disable all
    // their incident edges.
    std::vector<EdgeId> banned_node_edges;
    for (std::size_t k = 0; k < i; ++k) {
      const NodeId v = last_nodes[k];
      for (EdgeId e : g_.out_edges(v)) {
        if (mask[static_cast<std::size_t>(e)]) {
          mask[static_cast<std::size_t>(e)] = 0;
          banned_node_edges.push_back(e);
        }
      }
      for (EdgeId e : g_.in_edges(v)) {
        if (mask[static_cast<std::size_t>(e)]) {
          mask[static_cast<std::size_t>(e)] = 0;
          banned_node_edges.push_back(e);
        }
      }
    }

    Path spur_path = shortest_path(g_, w_, spur, t_, mask);
    if (spur_path.found) {
      std::vector<EdgeId> full = root;
      full.insert(full.end(), spur_path.edges.begin(), spur_path.edges.end());
      if (seen_.insert(full).second) {
        candidates_.emplace(root_cost + spur_path.cost, std::move(full));
      }
    }

    // Restore the mask for the next deviation index.
    for (EdgeId e : banned_edges) mask[static_cast<std::size_t>(e)] = 1;
    for (EdgeId e : banned_node_edges) mask[static_cast<std::size_t>(e)] = 1;
  }
}

std::vector<Path> yen_k_shortest(const Digraph& g, std::span<const double> w,
                                 NodeId s, NodeId t, int k,
                                 std::span<const std::uint8_t> edge_enabled) {
  WDM_CHECK(k >= 0);
  KShortestPathEnumerator en(g, w, s, t, edge_enabled);
  std::vector<Path> out;
  for (int i = 0; i < k; ++i) {
    auto p = en.next();
    if (!p) break;
    out.push_back(std::move(*p));
  }
  return out;
}

}  // namespace wdm::graph
