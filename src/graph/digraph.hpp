// Directed multigraph with stable integer node/edge ids.
//
// The workhorse structure for the whole library: the physical WDM topology,
// the wavelength-layered graph, and the paper's auxiliary graphs G', G_c and
// G_rc are all Digraphs. Edge attributes (weights, wavelength sets, loads)
// live in parallel arrays indexed by EdgeId, owned by the layer that needs
// them — the graph itself stores pure structure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wdm::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

class Digraph {
 public:
  Digraph() = default;

  /// Creates a graph with `n` isolated nodes.
  explicit Digraph(NodeId n);

  /// Adds an isolated node; returns its id (dense, starting at 0).
  NodeId add_node();

  /// Adds a directed edge tail -> head; returns its id (dense, in insertion
  /// order). Parallel edges and self-loops are permitted — WDM fibers between
  /// the same node pair are distinct edges.
  EdgeId add_edge(NodeId tail, NodeId head);

  NodeId num_nodes() const {
    if (csr_) return static_cast<NodeId>(csr_out_start_.size() - 1);
    return static_cast<NodeId>(out_.size());
  }
  EdgeId num_edges() const { return static_cast<EdgeId>(tail_.size()); }

  NodeId tail(EdgeId e) const { return tail_[static_cast<std::size_t>(e)]; }
  NodeId head(EdgeId e) const { return head_[static_cast<std::size_t>(e)]; }

  /// Edge ids leaving / entering `v`, in insertion order.
  std::span<const EdgeId> out_edges(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    if (csr_) {
      return {csr_out_.data() + csr_out_start_[i],
              csr_out_start_[i + 1] - csr_out_start_[i]};
    }
    return out_[i];
  }
  std::span<const EdgeId> in_edges(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    if (csr_) {
      return {csr_in_.data() + csr_in_start_[i],
              csr_in_start_[i + 1] - csr_in_start_[i]};
    }
    return in_[i];
  }

  int out_degree(NodeId v) const {
    return static_cast<int>(out_edges(v).size());
  }
  int in_degree(NodeId v) const {
    return static_cast<int>(in_edges(v).size());
  }

  /// Compacts the adjacency into flat CSR arrays (one contiguous edge-id
  /// block per node, insertion order preserved) and frees the per-node
  /// buffers. Queries are unchanged observationally but touch two flat
  /// arrays instead of n separate heap blocks — the memory-layout step of
  /// the continental-scale arena (ROADMAP item 4). Any later structural
  /// mutation (add_node / add_edge / clear_keep_capacity) transparently
  /// drops back to the dynamic representation.
  void finalize_csr();
  bool csr_finalized() const { return csr_; }

  /// max over nodes of max(in_degree, out_degree) — the paper's `d`.
  int max_degree() const;

  bool valid_node(NodeId v) const { return v >= 0 && v < num_nodes(); }
  bool valid_edge(EdgeId e) const { return e >= 0 && e < num_edges(); }

  /// First edge tail -> head, or kInvalidEdge. O(out_degree(tail)).
  EdgeId find_edge(NodeId tail, NodeId head) const;

  void reserve(NodeId nodes, EdgeId edges);

  /// Removes every node and edge but retains allocated capacity, including
  /// the per-node adjacency buffers (recycled through an internal pool that
  /// add_node drains). Lets arena-style builders (rwa::AuxGraphBuilder)
  /// rebuild a same-shaped graph with zero heap allocations in steady state.
  void clear_keep_capacity();

  /// Nodes reachable from `src` (by out-edges); `enabled` optionally masks
  /// edges (empty span = all enabled; otherwise enabled[e] != 0 keeps e).
  std::vector<std::uint8_t> reachable_from(
      NodeId src, std::span<const std::uint8_t> enabled = {}) const;

  /// True if every node is reachable from node 0 AND node 0 is reachable from
  /// every node (strong connectivity via two BFS passes).
  bool strongly_connected() const;

  /// The reverse graph (every edge flipped; edge ids preserved).
  Digraph reversed() const;

 private:
  /// Rebuilds the dynamic per-node adjacency from tail_/head_ and drops the
  /// CSR arrays; called by mutating operations on a finalized graph.
  void definalize();

  std::vector<NodeId> tail_;
  std::vector<NodeId> head_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  /// Cleared adjacency buffers recycled by clear_keep_capacity -> add_node.
  std::vector<std::vector<EdgeId>> spare_;

  bool csr_ = false;
  std::vector<EdgeId> csr_out_;          // edge ids grouped by tail node
  std::vector<EdgeId> csr_in_;           // edge ids grouped by head node
  std::vector<std::size_t> csr_out_start_;  // n+1 offsets into csr_out_
  std::vector<std::size_t> csr_in_start_;   // n+1 offsets into csr_in_
};

}  // namespace wdm::graph
