#include "graph/bellman_ford.hpp"

#include "support/check.hpp"

namespace wdm::graph {

std::optional<ShortestPathTree> bellman_ford(
    const Digraph& g, std::span<const double> w, NodeId src,
    std::span<const std::uint8_t> edge_enabled) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  WDM_CHECK(g.valid_node(src));
  WDM_CHECK(w.size() == static_cast<std::size_t>(g.num_edges()));
  WDM_CHECK(edge_enabled.empty() ||
            edge_enabled.size() == static_cast<std::size_t>(g.num_edges()));

  ShortestPathTree tree;
  tree.dist.assign(n, kInf);
  tree.pred_edge.assign(n, kInvalidEdge);
  tree.dist[static_cast<std::size_t>(src)] = 0.0;

  auto relax_round = [&]() {
    bool changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!edge_enabled.empty() && !edge_enabled[static_cast<std::size_t>(e)]) {
        continue;
      }
      const auto u = static_cast<std::size_t>(g.tail(e));
      if (tree.dist[u] == kInf) continue;
      const auto v = static_cast<std::size_t>(g.head(e));
      const double dv = tree.dist[u] + w[static_cast<std::size_t>(e)];
      if (dv < tree.dist[v]) {
        tree.dist[v] = dv;
        tree.pred_edge[v] = e;
        changed = true;
      }
    }
    return changed;
  };

  bool changed = true;
  for (NodeId round = 0; changed && round + 1 < g.num_nodes(); ++round) {
    changed = relax_round();
  }
  if (changed && relax_round()) {
    return std::nullopt;  // still improving after n-1 rounds: negative cycle
  }
  return tree;
}

}  // namespace wdm::graph
