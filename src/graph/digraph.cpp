#include "graph/digraph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace wdm::graph {

Digraph::Digraph(NodeId n) {
  WDM_CHECK(n >= 0);
  out_.resize(static_cast<std::size_t>(n));
  in_.resize(static_cast<std::size_t>(n));
}

void Digraph::finalize_csr() {
  if (csr_) return;
  const auto n = static_cast<std::size_t>(num_nodes());
  const auto m = tail_.size();
  csr_out_start_.assign(n + 1, 0);
  csr_in_start_.assign(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++csr_out_start_[static_cast<std::size_t>(tail_[e]) + 1];
    ++csr_in_start_[static_cast<std::size_t>(head_[e]) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    csr_out_start_[v + 1] += csr_out_start_[v];
    csr_in_start_[v + 1] += csr_in_start_[v];
  }
  csr_out_.resize(m);
  csr_in_.resize(m);
  // Fill in ascending edge-id order: within each node's block that matches
  // the insertion order the dynamic representation reports.
  std::vector<std::size_t> next_out(csr_out_start_.begin(),
                                    csr_out_start_.end() - 1);
  std::vector<std::size_t> next_in(csr_in_start_.begin(),
                                   csr_in_start_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    csr_out_[next_out[static_cast<std::size_t>(tail_[e])]++] =
        static_cast<EdgeId>(e);
    csr_in_[next_in[static_cast<std::size_t>(head_[e])]++] =
        static_cast<EdgeId>(e);
  }
  // Recycle the per-node buffers; num_nodes() reads the CSR offsets now.
  spare_.reserve(spare_.size() + out_.size() + in_.size());
  for (auto& adj : out_) {
    adj.clear();
    spare_.push_back(std::move(adj));
  }
  for (auto& adj : in_) {
    adj.clear();
    spare_.push_back(std::move(adj));
  }
  out_.clear();
  in_.clear();
  csr_ = true;
}

void Digraph::definalize() {
  if (!csr_) return;
  const auto n = static_cast<std::size_t>(csr_out_start_.size() - 1);
  csr_ = false;
  out_.clear();
  in_.clear();
  while (out_.size() < n) {
    if (!spare_.empty()) {
      out_.push_back(std::move(spare_.back()));
      spare_.pop_back();
    } else {
      out_.emplace_back();
    }
  }
  while (in_.size() < n) {
    if (!spare_.empty()) {
      in_.push_back(std::move(spare_.back()));
      spare_.pop_back();
    } else {
      in_.emplace_back();
    }
  }
  for (std::size_t e = 0; e < tail_.size(); ++e) {
    out_[static_cast<std::size_t>(tail_[e])].push_back(static_cast<EdgeId>(e));
    in_[static_cast<std::size_t>(head_[e])].push_back(static_cast<EdgeId>(e));
  }
  csr_out_.clear();
  csr_in_.clear();
  csr_out_start_.clear();
  csr_in_start_.clear();
}

NodeId Digraph::add_node() {
  definalize();
  if (!spare_.empty()) {
    out_.push_back(std::move(spare_.back()));
    spare_.pop_back();
  } else {
    out_.emplace_back();
  }
  if (!spare_.empty()) {
    in_.push_back(std::move(spare_.back()));
    spare_.pop_back();
  } else {
    in_.emplace_back();
  }
  return static_cast<NodeId>(out_.size() - 1);
}

EdgeId Digraph::add_edge(NodeId tail, NodeId head) {
  WDM_CHECK_MSG(valid_node(tail) && valid_node(head),
                "add_edge endpoints must be existing nodes");
  definalize();
  const auto e = static_cast<EdgeId>(tail_.size());
  tail_.push_back(tail);
  head_.push_back(head);
  out_[static_cast<std::size_t>(tail)].push_back(e);
  in_[static_cast<std::size_t>(head)].push_back(e);
  return e;
}

int Digraph::max_degree() const {
  int d = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    d = std::max({d, out_degree(v), in_degree(v)});
  }
  return d;
}

EdgeId Digraph::find_edge(NodeId tail, NodeId head) const {
  WDM_CHECK(valid_node(tail) && valid_node(head));
  for (EdgeId e : out_edges(tail)) {
    if (this->head(e) == head) return e;
  }
  return kInvalidEdge;
}

void Digraph::reserve(NodeId nodes, EdgeId edges) {
  out_.reserve(static_cast<std::size_t>(nodes));
  in_.reserve(static_cast<std::size_t>(nodes));
  tail_.reserve(static_cast<std::size_t>(edges));
  head_.reserve(static_cast<std::size_t>(edges));
}

void Digraph::clear_keep_capacity() {
  if (csr_) {
    // The CSR arrays keep their capacity for the next finalize; the per-node
    // buffers were already recycled into spare_ at finalize time.
    csr_ = false;
    csr_out_.clear();
    csr_in_.clear();
    csr_out_start_.clear();
    csr_in_start_.clear();
    tail_.clear();
    head_.clear();
    return;
  }
  tail_.clear();
  head_.clear();
  spare_.reserve(spare_.size() + out_.size() + in_.size());
  for (auto& adj : out_) {
    adj.clear();
    spare_.push_back(std::move(adj));
  }
  for (auto& adj : in_) {
    adj.clear();
    spare_.push_back(std::move(adj));
  }
  out_.clear();
  in_.clear();
}

std::vector<std::uint8_t> Digraph::reachable_from(
    NodeId src, std::span<const std::uint8_t> enabled) const {
  WDM_CHECK(valid_node(src));
  WDM_CHECK(enabled.empty() ||
            enabled.size() == static_cast<std::size_t>(num_edges()));
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(num_nodes()), 0);
  std::vector<NodeId> stack{src};
  seen[static_cast<std::size_t>(src)] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (EdgeId e : out_edges(v)) {
      if (!enabled.empty() && !enabled[static_cast<std::size_t>(e)]) continue;
      const NodeId w = head(e);
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

bool Digraph::strongly_connected() const {
  if (num_nodes() == 0) return true;
  const auto fwd = reachable_from(0);
  if (std::find(fwd.begin(), fwd.end(), 0) != fwd.end()) return false;
  const auto bwd = reversed().reachable_from(0);
  return std::find(bwd.begin(), bwd.end(), 0) == bwd.end();
}

Digraph Digraph::reversed() const {
  Digraph r(num_nodes());
  r.reserve(num_nodes(), num_edges());
  for (EdgeId e = 0; e < num_edges(); ++e) {
    r.add_edge(head(e), tail(e));
  }
  return r;
}

}  // namespace wdm::graph
