// Successive-shortest-path min-cost flow with Johnson potentials.
//
// With unit capacities and target flow k this computes the min-total-weight
// set of k edge-disjoint s->t paths — for k = 2 it must agree with Suurballe,
// which the property tests exploit as an independent oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/path.hpp"

namespace wdm::graph {

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  /// Adds a directed arc u -> v. Costs must be nonnegative.
  int add_arc(int u, int v, std::int64_t capacity, double cost);

  struct Result {
    std::int64_t flow = 0;
    double cost = 0.0;
  };

  /// Sends up to `target` units s -> t along successively cheapest paths.
  /// May be called once per instance.
  Result min_cost_flow(int s, int t, std::int64_t target);

  std::int64_t flow_on(int id) const;

 private:
  struct Arc {
    int to;
    std::int64_t cap;
    double cost;
    int rev;
  };

  std::vector<std::vector<Arc>> adj_;
  std::vector<std::pair<int, int>> arc_pos_;
};

/// Min-total-weight k edge-disjoint s->t paths, or nullopt when fewer than k
/// disjoint paths exist. Paths are returned cheapest-first.
std::optional<std::vector<Path>> min_cost_disjoint_paths(
    const Digraph& g, std::span<const double> w, NodeId s, NodeId t, int k,
    std::span<const std::uint8_t> edge_enabled = {});

}  // namespace wdm::graph
