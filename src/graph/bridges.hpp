// Bridge (cut-edge) detection and 2-edge-connected components on the
// underlying undirected structure of a digraph.
//
// Survivability use: a request (s, t) can carry an edge-disjoint backup iff
// no undirected bridge separates s from t — checking the 2-edge-connected
// component labels is O(1) per request after an O(n + m) preprocessing
// pass, versus a max-flow per request. rwa::ProtectabilityReport builds on
// this for whole-topology audits.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace wdm::graph {

struct BridgeAnalysis {
  /// Per directed edge: 1 when the corresponding undirected edge is a
  /// bridge. Antiparallel directed edges u->v / v->u count as ONE undirected
  /// edge (a duplex fiber), so they never bridge each other.
  std::vector<std::uint8_t> is_bridge;
  /// 2-edge-connected component id per node (nodes in the same component
  /// are connected by two edge-disjoint undirected paths).
  std::vector<int> component;
  int num_components = 0;
  int num_bridges = 0;  // undirected bridge count

  /// Two edge-disjoint undirected paths exist between u and v.
  bool two_edge_connected(NodeId u, NodeId v) const {
    return component[static_cast<std::size_t>(u)] ==
           component[static_cast<std::size_t>(v)];
  }
};

/// Runs Tarjan's bridge-finding DFS over the undirected view of `g`
/// (parallel undirected edges between the same pair are honored: a pair
/// joined by two distinct fibers is never separated by one cut).
BridgeAnalysis find_bridges(const Digraph& g);

}  // namespace wdm::graph
