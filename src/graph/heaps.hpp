// Addressable priority queues for label-setting shortest-path algorithms.
//
// The paper's complexity bounds assume Fibonacci heaps [Fredman–Tarjan 87].
// In practice d-ary heaps win at these sizes; we provide an indexed d-ary
// heap (default backend) and an addressable pairing heap with O(1) amortized
// decrease-key as the Fibonacci stand-in — the micro-bench (E11) compares
// them. All heaps key a dense id universe [0, n) by double.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace wdm::graph {

/// Indexed min-heap with arity D and decrease-key via a position index.
template <int D>
class DAryHeap {
  static_assert(D >= 2);

 public:
  explicit DAryHeap(std::size_t universe)
      : key_(universe, 0.0), pos_(universe, kAbsent) {}

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool contains(std::size_t id) const { return pos_[id] != kAbsent; }
  double key(std::size_t id) const {
    WDM_DCHECK(contains(id));
    return key_[id];
  }

  void push(std::size_t id, double key) {
    WDM_DCHECK(!contains(id));
    key_[id] = key;
    pos_[id] = heap_.size();
    heap_.push_back(id);
    sift_up(heap_.size() - 1);
  }

  void decrease_key(std::size_t id, double key) {
    WDM_DCHECK(contains(id));
    WDM_DCHECK(key <= key_[id]);
    key_[id] = key;
    sift_up(pos_[id]);
  }

  /// Pushes if absent, otherwise decreases the key (no-op if not smaller).
  void push_or_decrease(std::size_t id, double key) {
    if (!contains(id)) {
      push(id, key);
    } else if (key < key_[id]) {
      decrease_key(id, key);
    }
  }

  std::pair<std::size_t, double> pop_min() {
    WDM_DCHECK(!empty());
    const std::size_t id = heap_[0];
    const double k = key_[id];
    pos_[id] = kAbsent;
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      pos_[heap_[0]] = 0;
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return {id, k};
  }

 private:
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  void sift_up(std::size_t i) {
    const std::size_t id = heap_[i];
    const double k = key_[id];
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (key_[heap_[parent]] <= k) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = id;
    pos_[id] = i;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const std::size_t id = heap_[i];
    const double k = key_[id];
    while (true) {
      const std::size_t first = i * D + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + D, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (key_[heap_[c]] < key_[heap_[best]]) best = c;
      }
      if (key_[heap_[best]] >= k) break;
      heap_[i] = heap_[best];
      pos_[heap_[i]] = i;
      i = best;
    }
    heap_[i] = id;
    pos_[id] = i;
  }

  std::vector<double> key_;
  std::vector<std::size_t> pos_;
  std::vector<std::size_t> heap_;
};

using BinaryHeap = DAryHeap<2>;
using QuadHeap = DAryHeap<4>;

/// Addressable two-pass pairing heap: O(1) insert/meld/decrease-key
/// (amortized), O(log n) amortized pop-min. Nodes are pooled per heap
/// instance; ids must come from the dense universe [0, n).
class PairingHeap {
 public:
  explicit PairingHeap(std::size_t universe)
      : node_(universe), present_(universe, 0) {}

  bool empty() const { return root_ == kNull; }
  std::size_t size() const { return count_; }
  bool contains(std::size_t id) const { return present_[id] != 0; }
  double key(std::size_t id) const {
    WDM_DCHECK(contains(id));
    return node_[id].key;
  }

  void push(std::size_t id, double key) {
    WDM_DCHECK(!contains(id));
    Node& nd = node_[id];
    nd = Node{};
    nd.key = key;
    present_[id] = 1;
    ++count_;
    root_ = (root_ == kNull) ? static_cast<Idx>(id)
                             : meld(root_, static_cast<Idx>(id));
  }

  void decrease_key(std::size_t id, double key) {
    WDM_DCHECK(contains(id));
    WDM_DCHECK(key <= node_[id].key);
    node_[id].key = key;
    const Idx x = static_cast<Idx>(id);
    if (x == root_) return;
    cut(x);
    root_ = meld(root_, x);
  }

  void push_or_decrease(std::size_t id, double key) {
    if (!contains(id)) {
      push(id, key);
    } else if (key < node_[id].key) {
      decrease_key(id, key);
    }
  }

  std::pair<std::size_t, double> pop_min() {
    WDM_DCHECK(!empty());
    const Idx old = root_;
    const double k = node_[old].key;
    present_[static_cast<std::size_t>(old)] = 0;
    --count_;
    root_ = two_pass_merge(node_[old].child);
    if (root_ != kNull) {
      node_[root_].parent = kNull;
      node_[root_].sibling = kNull;
    }
    return {static_cast<std::size_t>(old), k};
  }

 private:
  using Idx = std::int64_t;
  static constexpr Idx kNull = -1;

  struct Node {
    double key = 0.0;
    Idx child = kNull;
    Idx sibling = kNull;
    Idx parent = kNull;  // actual parent only for first child; else left sibling
  };

  Idx meld(Idx a, Idx b) {
    if (a == kNull) return b;
    if (b == kNull) return a;
    if (node_[b].key < node_[a].key) std::swap(a, b);
    // b becomes first child of a.
    node_[b].sibling = node_[a].child;
    if (node_[a].child != kNull) node_[node_[a].child].parent = b;
    node_[b].parent = a;
    node_[a].child = b;
    return a;
  }

  /// Detaches subtree x from its parent / sibling list.
  void cut(Idx x) {
    const Idx p = node_[x].parent;
    WDM_DCHECK(p != kNull);
    if (node_[p].child == x) {
      node_[p].child = node_[x].sibling;
      if (node_[x].sibling != kNull) node_[node_[x].sibling].parent = p;
    } else {
      // p is the left sibling.
      node_[p].sibling = node_[x].sibling;
      if (node_[x].sibling != kNull) node_[node_[x].sibling].parent = p;
    }
    node_[x].parent = kNull;
    node_[x].sibling = kNull;
  }

  Idx two_pass_merge(Idx first) {
    if (first == kNull || node_[first].sibling == kNull) return first;
    // Pass 1: meld pairs left-to-right.
    scratch_.clear();
    Idx cur = first;
    while (cur != kNull) {
      const Idx a = cur;
      const Idx b = node_[a].sibling;
      Idx next = kNull;
      if (b != kNull) next = node_[b].sibling;
      node_[a].sibling = kNull;
      node_[a].parent = kNull;
      if (b != kNull) {
        node_[b].sibling = kNull;
        node_[b].parent = kNull;
      }
      scratch_.push_back(meld(a, b));
      cur = next;
    }
    // Pass 2: meld right-to-left.
    Idx root = scratch_.back();
    for (std::size_t i = scratch_.size() - 1; i-- > 0;) {
      root = meld(root, scratch_[i]);
    }
    return root;
  }

  std::vector<Node> node_;
  std::vector<std::uint8_t> present_;
  std::vector<Idx> scratch_;
  Idx root_ = kNull;
  std::size_t count_ = 0;
};

}  // namespace wdm::graph
