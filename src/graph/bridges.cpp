#include "graph/bridges.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"

namespace wdm::graph {

namespace {

/// Undirected view: group directed edges by unordered endpoint pair; each
/// group is one or more undirected edges. For bridge purposes a pair with
/// >= 2 directed edges in *distinct unordered slots*... — we count
/// multiplicity as the number of distinct undirected edges, where an
/// antiparallel duplex (u->v plus v->u) forms ONE undirected edge and any
/// additional directed edge on the same pair forms more.
struct UndirectedEdge {
  NodeId u, v;
  std::vector<EdgeId> directed;  // all directed edges mapped onto this edge
};

}  // namespace

BridgeAnalysis find_bridges(const Digraph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());

  // Build undirected multigraph: pair -> list of directed edge ids. The
  // number of undirected parallel edges between (u, v) is
  // max(#(u->v), #(v->u)): each forward/backward pair shares a fiber.
  std::map<std::pair<NodeId, NodeId>, std::pair<std::vector<EdgeId>,
                                                std::vector<EdgeId>>>
      by_pair;  // (fwd edges, bwd edges) keyed by (min, max)
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    NodeId a = g.tail(e);
    NodeId b = g.head(e);
    if (a == b) continue;  // self loops are never bridges
    const bool swapped = a > b;
    if (swapped) std::swap(a, b);
    auto& slot = by_pair[{a, b}];
    (swapped ? slot.second : slot.first).push_back(e);
  }

  std::vector<UndirectedEdge> edges;
  for (const auto& [pair, slot] : by_pair) {
    const std::size_t count = std::max(slot.first.size(), slot.second.size());
    for (std::size_t k = 0; k < count; ++k) {
      UndirectedEdge ue;
      ue.u = pair.first;
      ue.v = pair.second;
      if (k < slot.first.size()) ue.directed.push_back(slot.first[k]);
      if (k < slot.second.size()) ue.directed.push_back(slot.second[k]);
      edges.push_back(std::move(ue));
    }
  }

  // Adjacency over undirected edges.
  std::vector<std::vector<std::pair<NodeId, int>>> adj(n);  // (other, ue idx)
  for (std::size_t i = 0; i < edges.size(); ++i) {
    adj[static_cast<std::size_t>(edges[i].u)].emplace_back(
        edges[i].v, static_cast<int>(i));
    adj[static_cast<std::size_t>(edges[i].v)].emplace_back(
        edges[i].u, static_cast<int>(i));
  }

  // Iterative Tarjan bridge DFS.
  std::vector<int> disc(n, -1), low(n, 0);
  std::vector<std::uint8_t> ue_bridge(edges.size(), 0);
  int timer = 0;
  struct Frame {
    NodeId v;
    int parent_edge;  // undirected edge index used to enter v
    std::size_t next_child = 0;
  };
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (disc[static_cast<std::size_t>(root)] != -1) continue;
    std::vector<Frame> stack{{root, -1}};
    disc[static_cast<std::size_t>(root)] =
        low[static_cast<std::size_t>(root)] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto vi = static_cast<std::size_t>(f.v);
      if (f.next_child < adj[vi].size()) {
        const auto [w, ue] = adj[vi][f.next_child++];
        if (ue == f.parent_edge) continue;  // don't reuse the entry edge
        const auto wi = static_cast<std::size_t>(w);
        if (disc[wi] == -1) {
          disc[wi] = low[wi] = timer++;
          stack.push_back(Frame{w, ue});
        } else {
          low[vi] = std::min(low[vi], disc[wi]);
        }
      } else {
        // Post-visit: propagate low to parent, decide bridge.
        const int pe = f.parent_edge;
        stack.pop_back();
        if (pe >= 0) {
          const auto& edge = edges[static_cast<std::size_t>(pe)];
          const NodeId parent =
              stack.back().v;  // the node we entered f.v from
          const auto pi = static_cast<std::size_t>(parent);
          low[pi] = std::min(low[pi], low[vi]);
          if (low[vi] > disc[pi]) {
            ue_bridge[static_cast<std::size_t>(pe)] = 1;
          }
          (void)edge;
        }
      }
    }
  }

  BridgeAnalysis out;
  out.is_bridge.assign(static_cast<std::size_t>(g.num_edges()), 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!ue_bridge[i]) continue;
    ++out.num_bridges;
    for (EdgeId e : edges[i].directed) {
      out.is_bridge[static_cast<std::size_t>(e)] = 1;
    }
  }

  // 2-edge-connected components: flood fill over non-bridge undirected
  // edges.
  out.component.assign(n, -1);
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (out.component[static_cast<std::size_t>(root)] != -1) continue;
    const int comp = out.num_components++;
    std::vector<NodeId> stack{root};
    out.component[static_cast<std::size_t>(root)] = comp;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const auto& [w, ue] : adj[static_cast<std::size_t>(v)]) {
        if (ue_bridge[static_cast<std::size_t>(ue)]) continue;
        if (out.component[static_cast<std::size_t>(w)] == -1) {
          out.component[static_cast<std::size_t>(w)] = comp;
          stack.push_back(w);
        }
      }
    }
  }
  return out;
}

}  // namespace wdm::graph
