// Path and shortest-path-tree value types shared by all graph algorithms.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace wdm::graph {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// A directed path as an edge-id sequence. An empty edge list is a valid
/// (zero-cost) path only when source == target; `found == false` marks "no
/// path exists" results.
struct Path {
  std::vector<EdgeId> edges;
  double cost = 0.0;
  bool found = false;

  /// Node sequence tail(e0), head(e0), head(e1), ... Requires found and a
  /// non-empty edge list.
  std::vector<NodeId> nodes(const Digraph& g) const;

  /// Checks edge-to-edge contiguity against `g` (head of each edge equals
  /// tail of the next).
  bool contiguous_in(const Digraph& g) const;

  bool contains_edge(EdgeId e) const;

  std::size_t length() const { return edges.size(); }
};

/// True when the two paths share no edge id.
bool edge_disjoint(const Path& a, const Path& b);

/// True when the two paths share no intermediate node (endpoints excluded).
bool internally_node_disjoint(const Path& a, const Path& b, const Digraph& g);

/// Single-source shortest path tree: per-node distance and predecessor edge.
struct ShortestPathTree {
  std::vector<double> dist;
  std::vector<EdgeId> pred_edge;

  bool reached(NodeId v) const {
    return dist[static_cast<std::size_t>(v)] < kInf;
  }
  double distance(NodeId v) const { return dist[static_cast<std::size_t>(v)]; }
};

/// Walks predecessor edges from `target` back to the tree root.
Path extract_path(const Digraph& g, const ShortestPathTree& tree,
                  NodeId target);

/// Sum of w[e] over the path's edges.
double path_weight(const Path& p, std::span<const double> w);

}  // namespace wdm::graph
