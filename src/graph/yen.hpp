// Yen's algorithm for loopless k-shortest paths, exposed as an incremental
// enumerator. The exact robust-routing solver (rwa/exact_router) pulls
// candidate primary paths from this enumerator in nondecreasing lower-bound
// cost until its admissible pruning bound closes the search.
#pragma once

#include <optional>
#include <set>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/path.hpp"

namespace wdm::graph {

class KShortestPathEnumerator {
 public:
  /// The graph / weight spans must outlive the enumerator. Weights must be
  /// nonnegative. Requires s != t.
  KShortestPathEnumerator(const Digraph& g, std::span<const double> w,
                          NodeId s, NodeId t,
                          std::span<const std::uint8_t> edge_enabled = {});

  /// Next loopless path in nondecreasing cost, or nullopt when exhausted.
  std::optional<Path> next();

  /// Paths emitted so far.
  std::size_t emitted() const { return output_.size(); }

 private:
  void seed_candidates_from(const Path& last);

  const Digraph& g_;
  std::span<const double> w_;
  NodeId s_, t_;
  std::vector<std::uint8_t> base_mask_;

  std::vector<Path> output_;
  // Candidates ordered by (cost, edge sequence); the edge-sequence set
  // prevents duplicate insertion.
  std::set<std::pair<double, std::vector<EdgeId>>> candidates_;
  std::set<std::vector<EdgeId>> seen_;
  bool primed_ = false;
  bool exhausted_ = false;
};

/// Convenience wrapper: up to k shortest loopless paths.
std::vector<Path> yen_k_shortest(const Digraph& g, std::span<const double> w,
                                 NodeId s, NodeId t, int k,
                                 std::span<const std::uint8_t> edge_enabled = {});

}  // namespace wdm::graph
