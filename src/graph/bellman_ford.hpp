// Bellman–Ford shortest paths: the reference oracle for Dijkstra in property
// tests, and the general-weight backend for reduced-cost initialization when
// a caller supplies potentials of unknown sign.
#pragma once

#include <optional>
#include <span>

#include "graph/digraph.hpp"
#include "graph/path.hpp"

namespace wdm::graph {

/// Runs Bellman–Ford from `src`. Returns std::nullopt when a negative cycle
/// is reachable from `src`.
std::optional<ShortestPathTree> bellman_ford(
    const Digraph& g, std::span<const double> w, NodeId src,
    std::span<const std::uint8_t> edge_enabled = {});

}  // namespace wdm::graph
