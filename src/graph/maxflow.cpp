#include "graph/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/check.hpp"

namespace wdm::graph {

Dinic::Dinic(int num_nodes) : adj_(static_cast<std::size_t>(num_nodes)) {
  WDM_CHECK(num_nodes >= 0);
}

int Dinic::add_arc(int u, int v, std::int64_t capacity) {
  WDM_CHECK(u >= 0 && static_cast<std::size_t>(u) < adj_.size());
  WDM_CHECK(v >= 0 && static_cast<std::size_t>(v) < adj_.size());
  WDM_CHECK(capacity >= 0);
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto& av = adj_[static_cast<std::size_t>(v)];
  au.push_back(Arc{v, capacity, static_cast<int>(av.size())});
  av.push_back(Arc{u, 0, static_cast<int>(au.size()) - 1});
  arc_pos_.emplace_back(u, static_cast<int>(au.size()) - 1);
  return static_cast<int>(arc_pos_.size()) - 1;
}

bool Dinic::bfs(int s, int t) {
  level_.assign(adj_.size(), -1);
  std::queue<int> q;
  level_[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (const Arc& a : adj_[static_cast<std::size_t>(v)]) {
      if (a.cap > 0 && level_[static_cast<std::size_t>(a.to)] < 0) {
        level_[static_cast<std::size_t>(a.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

std::int64_t Dinic::dfs(int v, int t, std::int64_t pushed) {
  if (v == t) return pushed;
  auto& it = iter_[static_cast<std::size_t>(v)];
  auto& arcs = adj_[static_cast<std::size_t>(v)];
  for (; it < arcs.size(); ++it) {
    Arc& a = arcs[it];
    if (a.cap <= 0 || level_[static_cast<std::size_t>(a.to)] !=
                          level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const std::int64_t got = dfs(a.to, t, std::min(pushed, a.cap));
    if (got > 0) {
      a.cap -= got;
      adj_[static_cast<std::size_t>(a.to)][static_cast<std::size_t>(a.rev)]
          .cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t Dinic::max_flow(int s, int t) {
  WDM_CHECK(s != t);
  std::int64_t total = 0;
  while (bfs(s, t)) {
    iter_.assign(adj_.size(), 0);
    while (true) {
      const std::int64_t got =
          dfs(s, t, std::numeric_limits<std::int64_t>::max());
      if (got == 0) break;
      total += got;
    }
  }
  return total;
}

std::int64_t Dinic::flow_on(int id) const {
  const auto [node, slot] = arc_pos_.at(static_cast<std::size_t>(id));
  const Arc& a =
      adj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(slot)];
  // Flow equals the reverse arc's acquired capacity.
  return adj_[static_cast<std::size_t>(a.to)][static_cast<std::size_t>(a.rev)]
      .cap;
}

int edge_disjoint_path_count(const Digraph& g, NodeId s, NodeId t,
                             std::span<const std::uint8_t> edge_enabled) {
  WDM_CHECK(g.valid_node(s) && g.valid_node(t) && s != t);
  Dinic dinic(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_enabled.empty() && !edge_enabled[static_cast<std::size_t>(e)]) {
      continue;
    }
    dinic.add_arc(g.tail(e), g.head(e), 1);
  }
  return static_cast<int>(dinic.max_flow(s, t));
}

}  // namespace wdm::graph
