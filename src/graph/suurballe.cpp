#include "graph/suurballe.hpp"

#include <algorithm>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/heaps.hpp"
#include "support/check.hpp"

namespace wdm::graph {

namespace {

bool edge_on(std::span<const std::uint8_t> mask, EdgeId e) {
  return mask.empty() || mask[static_cast<std::size_t>(e)] != 0;
}

/// Decomposes the 2-unit flow given by `in_flow` (edge ids carrying one unit
/// each) into two s->t paths by walking unused flow edges. Costs are filled
/// from `w`.
DisjointPair decompose_two_paths(const Digraph& g, std::span<const double> w,
                                 NodeId s, NodeId t,
                                 const std::vector<EdgeId>& flow_edges) {
  std::vector<std::vector<EdgeId>> out(static_cast<std::size_t>(g.num_nodes()));
  for (EdgeId e : flow_edges) {
    out[static_cast<std::size_t>(g.tail(e))].push_back(e);
  }
  DisjointPair pair;
  Path* paths[2] = {&pair.first, &pair.second};
  for (Path* p : paths) {
    NodeId v = s;
    while (v != t) {
      auto& choices = out[static_cast<std::size_t>(v)];
      WDM_CHECK_MSG(!choices.empty(), "flow decomposition stuck — not a 2-flow");
      const EdgeId e = choices.back();
      choices.pop_back();
      p->edges.push_back(e);
      v = g.head(e);
      WDM_CHECK_MSG(p->edges.size() <= flow_edges.size(),
                    "flow decomposition cycled");
    }
    p->found = true;
    p->cost = path_weight(*p, w);
  }
  pair.found = true;
  // Canonical order: cheaper path first (primary).
  if (pair.second.cost < pair.first.cost) std::swap(pair.first, pair.second);
  return pair;
}

}  // namespace

DisjointPair suurballe(const Digraph& g, std::span<const double> w, NodeId s,
                       NodeId t, std::span<const std::uint8_t> edge_enabled) {
  WDM_CHECK(g.valid_node(s) && g.valid_node(t));
  WDM_CHECK_MSG(s != t, "suurballe requires distinct endpoints");
  const auto m = static_cast<std::size_t>(g.num_edges());
  WDM_CHECK(w.size() == m);

  DisjointPair result;

  // Round 1: full shortest-path tree from s (the paper's first iteration of
  // Find_Two_Paths on G'^1 = G').
  DijkstraOptions opt;
  opt.edge_enabled = edge_enabled;
  const ShortestPathTree tree1 = dijkstra(g, w, s, opt);
  if (!tree1.reached(t)) return result;
  const Path p1 = extract_path(g, tree1, t);

  std::vector<std::uint8_t> on_p1(m, 0);
  for (EdgeId e : p1.edges) on_p1[static_cast<std::size_t>(e)] = 1;

  // Round 2: Dijkstra over reduced costs w'(e) = w(e) + d(tail) - d(head),
  // with p1's edges usable only backwards at cost 0 (the paper's E_reserve).
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> dist(n, kInf);
  // Predecessor arc: edge id, plus whether it was traversed in reverse.
  std::vector<EdgeId> pred(n, kInvalidEdge);
  std::vector<std::uint8_t> pred_rev(n, 0);

  QuadHeap heap(n);
  dist[static_cast<std::size_t>(s)] = 0.0;
  heap.push(static_cast<std::size_t>(s), 0.0);
  auto reduced = [&](EdgeId e) {
    const double r = w[static_cast<std::size_t>(e)] +
                     tree1.distance(g.tail(e)) - tree1.distance(g.head(e));
    // Clamp tiny negatives from floating-point cancellation.
    return r < 0.0 ? 0.0 : r;
  };
  while (!heap.empty()) {
    const auto [uid, du] = heap.pop_min();
    const auto u = static_cast<NodeId>(uid);
    if (u == t) break;
    for (EdgeId e : g.out_edges(u)) {
      if (!edge_on(edge_enabled, e) || on_p1[static_cast<std::size_t>(e)]) {
        continue;
      }
      if (!tree1.reached(g.head(e))) continue;  // reduced cost undefined
      const auto v = static_cast<std::size_t>(g.head(e));
      const double dv = du + reduced(e);
      if (dv < dist[v]) {
        dist[v] = dv;
        pred[v] = e;
        pred_rev[v] = 0;
        heap.push_or_decrease(v, dv);
      }
    }
    for (EdgeId e : g.in_edges(u)) {
      if (!on_p1[static_cast<std::size_t>(e)]) continue;
      // Traverse backwards: head -> tail, reduced cost 0.
      const auto v = static_cast<std::size_t>(g.tail(e));
      const double dv = du;
      if (dv < dist[v]) {
        dist[v] = dv;
        pred[v] = e;
        pred_rev[v] = 1;
        heap.push_or_decrease(v, dv);
      }
    }
  }
  if (dist[static_cast<std::size_t>(t)] == kInf) return result;  // no pair

  // Cancel interlacing edges (the paper's E_intersect): an edge of p1 used in
  // reverse by round 2 drops out of the union.
  std::vector<std::uint8_t> in_flow(m, 0);
  for (EdgeId e : p1.edges) in_flow[static_cast<std::size_t>(e)] = 1;
  for (NodeId v = t; v != s;) {
    const EdgeId e = pred[static_cast<std::size_t>(v)];
    WDM_CHECK(e != kInvalidEdge);
    if (pred_rev[static_cast<std::size_t>(v)]) {
      in_flow[static_cast<std::size_t>(e)] = 0;
      v = g.head(e);
    } else {
      in_flow[static_cast<std::size_t>(e)] = 1;
      v = g.tail(e);
    }
  }

  std::vector<EdgeId> flow_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_flow[static_cast<std::size_t>(e)]) flow_edges.push_back(e);
  }
  return decompose_two_paths(g, w, s, t, flow_edges);
}

DisjointPair suurballe_node_disjoint(
    const Digraph& g, std::span<const double> w, NodeId s, NodeId t,
    std::span<const std::uint8_t> edge_enabled) {
  WDM_CHECK(g.valid_node(s) && g.valid_node(t));
  WDM_CHECK(s != t);
  // Split every node v into v_in (id v) and v_out (id v + n); internal arc
  // v_in -> v_out carries zero weight; original edges run u_out -> v_in.
  // The split graph lives in a thread-local arena recycled across calls via
  // clear_keep_capacity(): repeated node-disjoint queries over same-sized
  // graphs (the simulator's steady state) rebuild it allocation-free.
  const NodeId n = g.num_nodes();
  struct SplitArena {
    Digraph split;
    std::vector<double> sw;
    std::vector<EdgeId> orig;  // original edge id per split edge, -1 = internal
  };
  thread_local SplitArena arena;
  Digraph& split = arena.split;
  std::vector<double>& sw = arena.sw;
  std::vector<EdgeId>& orig = arena.orig;
  split.clear_keep_capacity();
  sw.clear();
  orig.clear();
  for (NodeId v = 0; v < 2 * n; ++v) split.add_node();
  for (NodeId v = 0; v < n; ++v) {
    split.add_edge(v, v + n);
    sw.push_back(0.0);
    orig.push_back(kInvalidEdge);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_on(edge_enabled, e)) continue;
    split.add_edge(g.tail(e) + n, g.head(e));
    sw.push_back(w[static_cast<std::size_t>(e)]);
    orig.push_back(e);
  }
  DisjointPair sp = suurballe(split, sw, s + n, t);
  if (!sp.found) return sp;
  auto project = [&](const Path& p) {
    Path out;
    out.found = true;
    for (EdgeId e : p.edges) {
      const EdgeId oe = orig[static_cast<std::size_t>(e)];
      if (oe != kInvalidEdge) out.edges.push_back(oe);
    }
    out.cost = path_weight(out, w);
    return out;
  };
  DisjointPair result;
  result.found = true;
  result.first = project(sp.first);
  result.second = project(sp.second);
  if (result.second.cost < result.first.cost) {
    std::swap(result.first, result.second);
  }
  return result;
}

DisjointPair naive_two_step(const Digraph& g, std::span<const double> w,
                            NodeId s, NodeId t,
                            std::span<const std::uint8_t> edge_enabled) {
  WDM_CHECK(g.valid_node(s) && g.valid_node(t));
  WDM_CHECK(s != t);
  DisjointPair result;
  const Path p1 = shortest_path(g, w, s, t, edge_enabled);
  if (!p1.found) return result;
  std::vector<std::uint8_t> mask;
  if (edge_enabled.empty()) {
    mask.assign(static_cast<std::size_t>(g.num_edges()), 1);
  } else {
    mask.assign(edge_enabled.begin(), edge_enabled.end());
  }
  for (EdgeId e : p1.edges) mask[static_cast<std::size_t>(e)] = 0;
  const Path p2 = shortest_path(g, w, s, t, mask);
  if (!p2.found) return result;
  result.found = true;
  result.first = p1;
  result.second = p2;
  if (result.second.cost < result.first.cost) {
    std::swap(result.first, result.second);
  }
  return result;
}

}  // namespace wdm::graph
