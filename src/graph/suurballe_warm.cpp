#include "graph/suurballe_warm.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::graph {

void SuurballeEngine::bind(const Digraph& g) {
  const NodeId n = g.num_nodes();
  const EdgeId m = g.num_edges();
  if (n == n_ && m == m_) return;
  n_ = n;
  m_ = m;
  for (Tree& tr : trees_) tr.valid = false;
  heap_.emplace(static_cast<std::size_t>(n));
  const auto ns = static_cast<std::size_t>(n);
  const auto ms = static_cast<std::size_t>(m);
  suspect_.assign(ns, 0);
  child_start_.assign(ns + 1, 0);
  child_.assign(ns, kInvalidNode);
  child_cursor_.assign(ns, 0);
  r2_dist_.assign(ns, kInf);
  r2_pred_.assign(ns, kInvalidEdge);
  r2_pred_rev_.assign(ns, 0);
  r2_touched_.clear();
  r2_touched_.reserve(ns);
  on_p1_.assign(ms, 0);
  in_flow_.assign(ms, 0);
  flow_cand_.clear();
  flow_cand_.reserve(2 * ns + 2);
  decomp_slot_.assign(2 * ns, kInvalidEdge);
  decomp_cnt_.assign(ns, 0);
}

void SuurballeEngine::invalidate() {
  for (Tree& tr : trees_) tr.valid = false;
}

SuurballeEngine::Tree& SuurballeEngine::acquire_tree(std::uint64_t key,
                                                     NodeId s) {
  ++use_clock_;
  Tree* lru = nullptr;
  for (Tree& tr : trees_) {
    if (tr.valid && tr.key == key) {
      // The contract ties a key to one source; a different s means the
      // caller recycled the key, so start the slot over.
      if (tr.source != s) tr.valid = false;
      tr.last_use = use_clock_;
      tr.key = key;
      tr.source = s;
      return tr;
    }
    if (lru == nullptr || tr.last_use < lru->last_use) lru = &tr;
  }
  if (static_cast<int>(trees_.size()) < kMaxTrees) {
    trees_.emplace_back();
    lru = &trees_.back();
  }
  // Recycle the least-recently-used slot in place — its vectors keep their
  // capacity, so steady-state key rotation allocates nothing.
  lru->valid = false;
  lru->key = key;
  lru->source = s;
  lru->last_use = use_clock_;
  return *lru;
}

namespace {

/// Pops until empty, relaxing out-arcs with strict improvement. Arcs with
/// +inf weight never relax (inf is not < anything), which is what makes the
/// stable-arena universe graphs safe to search without an enabled mask.
/// Returns the number of pops.
std::uint64_t drain_dijkstra(const Digraph& g, std::span<const double> w,
                             QuadHeap& heap, std::vector<double>& dist,
                             std::vector<EdgeId>& pred) {
  std::uint64_t pops = 0;
  while (!heap.empty()) {
    const auto [uid, du] = heap.pop_min();
    ++pops;
    const auto u = static_cast<NodeId>(uid);
    for (EdgeId e : g.out_edges(u)) {
      const auto v = static_cast<std::size_t>(g.head(e));
      const double dv = du + w[static_cast<std::size_t>(e)];
      if (dv < dist[v]) {
        dist[v] = dv;
        pred[v] = e;
        heap.push_or_decrease(v, dv);
      }
    }
  }
  return pops;
}

}  // namespace

void SuurballeEngine::build_tree(const Digraph& g, std::span<const double> w,
                                 Tree& tr) {
  ++stats_.tree_builds;
  const auto ns = static_cast<std::size_t>(n_);
  tr.dist.assign(ns, kInf);
  tr.pred.assign(ns, kInvalidEdge);
  tr.dist[static_cast<std::size_t>(tr.source)] = 0.0;
  heap_->push(static_cast<std::size_t>(tr.source), 0.0);
  drain_dijkstra(g, w, *heap_, tr.dist, tr.pred);
  tr.w_snap.assign(w.begin(), w.end());
  tr.valid = true;
}

bool SuurballeEngine::repair_tree(const Digraph& g, std::span<const double> w,
                                  Tree& tr, const WeightPatchFeed* feed) {
  // Collect the arcs whose weight moved since the snapshot. With a trusted
  // feed cursor only the spans appended since the tree's last sync are
  // scanned; otherwise every arc. Duplicate candidates may enter
  // changed_arcs_ more than once — every consumer below is idempotent.
  changed_arcs_.clear();
  const bool hinted = feed != nullptr && tr.feed_synced &&
                      tr.feed_epoch == feed->epoch &&
                      tr.feed_offset <= feed->spans.size();
  if (hinted) {
    ++stats_.hinted_diffs;
    for (std::size_t si = tr.feed_offset; si < feed->spans.size(); ++si) {
      const WeightPatchSpan& sp = feed->spans[si];
      for (EdgeId a = sp.begin; a < sp.begin + sp.count; ++a) {
        if (w[static_cast<std::size_t>(a)] !=
            tr.w_snap[static_cast<std::size_t>(a)]) {
          changed_arcs_.push_back(a);
        }
      }
    }
  } else {
    ++stats_.full_diffs;
    const auto ms = static_cast<std::size_t>(m_);
    for (std::size_t a = 0; a < ms; ++a) {
      if (w[a] != tr.w_snap[a]) changed_arcs_.push_back(static_cast<EdgeId>(a));
    }
  }
  if (changed_arcs_.empty()) {
    ++stats_.tree_hits;
    return false;
  }
  ++stats_.tree_repairs;

  // Suspects: every node whose tree path crosses an arc that got *more*
  // expensive. Their labels may be stale-low in a way no relaxation from
  // intact labels would fix, so they restart from +inf. Every other label
  // is the fp cost of a real path whose arcs did not increase — a valid
  // upper bound the seeded Dijkstra below can only tighten. Pure decreases
  // orphan nothing, so the child index is only built when some increased
  // arc is a tree arc.
  auto& suspects = suspect_stack_;
  suspects.clear();
  bool need_subtrees = false;
  for (const EdgeId a : changed_arcs_) {
    const auto ai = static_cast<std::size_t>(a);
    if (w[ai] > tr.w_snap[ai] &&
        tr.pred[static_cast<std::size_t>(g.head(a))] == a) {
      need_subtrees = true;
      break;
    }
  }
  if (need_subtrees) {
    // Children of the support forest, CSR form, for subtree invalidation.
    const auto ns = static_cast<std::size_t>(n_);
    std::fill(child_start_.begin(), child_start_.end(), 0);
    for (std::size_t v = 0; v < ns; ++v) {
      const EdgeId pe = tr.pred[v];
      if (pe == kInvalidEdge) continue;
      ++child_start_[static_cast<std::size_t>(g.tail(pe)) + 1];
    }
    for (std::size_t v = 0; v < ns; ++v) {
      child_start_[v + 1] += child_start_[v];
    }
    std::fill(child_cursor_.begin(), child_cursor_.end(), 0);
    for (std::size_t v = 0; v < ns; ++v) {
      const EdgeId pe = tr.pred[v];
      if (pe == kInvalidEdge) continue;
      const auto p = static_cast<std::size_t>(g.tail(pe));
      child_[child_start_[p] + child_cursor_[p]++] = static_cast<NodeId>(v);
    }

    auto mark_subtree = [&](NodeId root) {
      if (suspect_[static_cast<std::size_t>(root)]) return;
      suspect_[static_cast<std::size_t>(root)] = 1;
      suspects.push_back(root);
      for (std::size_t qi = suspects.size() - 1; qi < suspects.size(); ++qi) {
        const auto v = static_cast<std::size_t>(suspects[qi]);
        for (std::size_t c = child_start_[v]; c < child_start_[v + 1]; ++c) {
          const NodeId ch = child_[c];
          if (!suspect_[static_cast<std::size_t>(ch)]) {
            suspect_[static_cast<std::size_t>(ch)] = 1;
            suspects.push_back(ch);
          }
        }
      }
    };
    for (const EdgeId a : changed_arcs_) {
      const auto ai = static_cast<std::size_t>(a);
      if (w[ai] <= tr.w_snap[ai]) {
        continue;  // decrease: existing labels stay valid upper bounds
      }
      const NodeId v = g.head(a);
      if (tr.pred[static_cast<std::size_t>(v)] == a) mark_subtree(v);
    }
    for (const NodeId v : suspects) {
      tr.dist[static_cast<std::size_t>(v)] = kInf;
      tr.pred[static_cast<std::size_t>(v)] = kInvalidEdge;
    }
  }

  // Seeds: (1) the invalidation boundary — every arc from an intact label
  // into a suspect; (2) every changed arc, so decreases propagate and
  // increased non-tree arcs on new optimal paths are re-examined.
  auto relax_seed = [&](EdgeId a) {
    const auto u = static_cast<std::size_t>(g.tail(a));
    if (suspect_[u] || tr.dist[u] == kInf) return;
    const auto v = static_cast<std::size_t>(g.head(a));
    const double dv = tr.dist[u] + w[static_cast<std::size_t>(a)];
    if (dv < tr.dist[v]) {
      tr.dist[v] = dv;
      tr.pred[v] = a;
      heap_->push_or_decrease(v, dv);
    }
  };
  for (const NodeId v : suspects) {
    for (const EdgeId a : g.in_edges(v)) relax_seed(a);
  }
  for (const EdgeId a : changed_arcs_) relax_seed(a);

  stats_.repaired_nodes += drain_dijkstra(g, w, *heap_, tr.dist, tr.pred);

  for (const NodeId v : suspects) suspect_[static_cast<std::size_t>(v)] = 0;
  // Re-sync the snapshot at exactly the arcs found changed (duplicates are
  // harmless); with hints this replaces the O(m) full copy.
  for (const EdgeId a : changed_arcs_) {
    tr.w_snap[static_cast<std::size_t>(a)] = w[static_cast<std::size_t>(a)];
  }
  return true;
}

void SuurballeEngine::round_two(const Digraph& g, std::span<const double> w,
                                NodeId s, NodeId t, const Tree& tr,
                                DisjointPair* out) {
  // p1: the canonical round-1 shortest path. From t, repeatedly take the
  // minimum arc id with exact fp tightness dist[tail] ⊕ w == dist[v] — a
  // pure function of (structure, w, dist), so cold builds and warm repairs
  // that agree on dist (they do, see the header) extract the same path.
  p1_edges_.clear();
  for (NodeId v = t; v != s;) {
    const double dv = tr.dist[static_cast<std::size_t>(v)];
    EdgeId best = kInvalidEdge;
    for (EdgeId e : g.in_edges(v)) {
      const auto u = static_cast<std::size_t>(g.tail(e));
      if (tr.dist[u] == kInf) continue;
      if (tr.dist[u] + w[static_cast<std::size_t>(e)] != dv) continue;
      if (best == kInvalidEdge || e < best) best = e;
    }
    WDM_CHECK_MSG(best != kInvalidEdge, "round-1 labels lost tightness");
    p1_edges_.push_back(best);
    WDM_CHECK_MSG(p1_edges_.size() <= static_cast<std::size_t>(m_),
                  "canonical p1 walk cycled (zero-weight cycle?)");
    v = g.tail(best);
  }
  std::reverse(p1_edges_.begin(), p1_edges_.end());
  for (EdgeId e : p1_edges_) on_p1_[static_cast<std::size_t>(e)] = 1;

  // Mirrors graph::suurballe round 2: Dijkstra over reduced costs with p1
  // reversed at cost 0, then interlacing cancellation and 2-flow
  // decomposition. Identical inputs (graph, weights, round-1 labels and
  // canonical p1) make this deterministic, so warm == cold extends through
  // the full pair. The r2_* arrays are clean outside r2_touched_ (bind()
  // establishes that, the epilogue below restores it), so nothing here is
  // O(n) or O(m) in the quiescent graph.
  r2_touched_.clear();
  auto r2_label = [&](std::size_t v, double dv, EdgeId pe, std::uint8_t rev) {
    if (r2_dist_[v] == kInf) r2_touched_.push_back(static_cast<NodeId>(v));
    r2_dist_[v] = dv;
    r2_pred_[v] = pe;
    r2_pred_rev_[v] = rev;
  };
  r2_label(static_cast<std::size_t>(s), 0.0, kInvalidEdge, 0);
  heap_->push(static_cast<std::size_t>(s), 0.0);
  auto reduced = [&](EdgeId e) {
    const double r = w[static_cast<std::size_t>(e)] +
                     tr.dist[static_cast<std::size_t>(g.tail(e))] -
                     tr.dist[static_cast<std::size_t>(g.head(e))];
    return r < 0.0 ? 0.0 : r;
  };
  while (!heap_->empty()) {
    const auto [uid, du] = heap_->pop_min();
    const auto u = static_cast<NodeId>(uid);
    if (u == t) break;
    for (EdgeId e : g.out_edges(u)) {
      if (on_p1_[static_cast<std::size_t>(e)]) continue;
      if (tr.dist[static_cast<std::size_t>(g.head(e))] == kInf) continue;
      const auto v = static_cast<std::size_t>(g.head(e));
      const double dv = du + reduced(e);
      if (dv < r2_dist_[v]) {
        r2_label(v, dv, e, 0);
        heap_->push_or_decrease(v, dv);
      }
    }
    for (EdgeId e : g.in_edges(u)) {
      if (!on_p1_[static_cast<std::size_t>(e)]) continue;
      const auto v = static_cast<std::size_t>(g.tail(e));
      const double dv = du;
      if (dv < r2_dist_[v]) {
        r2_label(v, dv, e, 1);
        heap_->push_or_decrease(v, dv);
      }
    }
  }
  // Reset the heap for the next solve (entries past the early exit).
  while (!heap_->empty()) heap_->pop_min();

  if (r2_dist_[static_cast<std::size_t>(t)] != kInf) {  // else: no pair
    // The 2-flow is p1 plus the r2 path with reversed p1 arcs cancelled;
    // only arcs on p1 or on the r2 walk can carry flow, so those are the
    // only in_flow_ entries ever written (and cleared below).
    flow_cand_.assign(p1_edges_.begin(), p1_edges_.end());
    for (EdgeId e : p1_edges_) in_flow_[static_cast<std::size_t>(e)] = 1;
    for (NodeId v = t; v != s;) {
      const EdgeId e = r2_pred_[static_cast<std::size_t>(v)];
      WDM_CHECK(e != kInvalidEdge);
      if (r2_pred_rev_[static_cast<std::size_t>(v)]) {
        in_flow_[static_cast<std::size_t>(e)] = 0;  // already a candidate
        v = g.head(e);
      } else {
        in_flow_[static_cast<std::size_t>(e)] = 1;
        flow_cand_.push_back(e);
        v = g.tail(e);
      }
    }

    // Ascending unique arc ids, exactly what the old full scan produced.
    std::sort(flow_cand_.begin(), flow_cand_.end());
    flow_cand_.erase(std::unique(flow_cand_.begin(), flow_cand_.end()),
                     flow_cand_.end());
    flow_edges_.clear();
    for (const EdgeId e : flow_cand_) {
      if (in_flow_[static_cast<std::size_t>(e)]) flow_edges_.push_back(e);
    }

    // Decompose the 2-flow exactly like graph::suurballe's helper: per-node
    // out-choices filled in ascending edge order, consumed from the back.
    // A node carries at most 2 units of outgoing flow, so two slots suffice.
    for (const EdgeId e : flow_edges_) {
      const auto v = static_cast<std::size_t>(g.tail(e));
      WDM_CHECK_MSG(decomp_cnt_[v] < 2, "flow decomposition: out-degree > 2");
      decomp_slot_[2 * v + decomp_cnt_[v]++] = e;
    }
    Path* paths[2] = {&out->first, &out->second};
    for (Path* p : paths) {
      NodeId v = s;
      while (v != t) {
        const auto vi = static_cast<std::size_t>(v);
        WDM_CHECK_MSG(decomp_cnt_[vi] > 0,
                      "flow decomposition stuck — not a 2-flow");
        const EdgeId e = decomp_slot_[2 * vi + --decomp_cnt_[vi]];
        p->edges.push_back(e);
        v = g.head(e);
        WDM_CHECK_MSG(p->edges.size() <= flow_edges_.size(),
                      "flow decomposition cycled");
      }
      p->found = true;
      p->cost = path_weight(*p, w);
    }
    out->found = true;
    if (out->second.cost < out->first.cost) {
      std::swap(out->first, out->second);
    }

    // Touched-only cleanup: the decomposition consumed every counter it
    // incremented (guard against zero-cost leftovers anyway), and in_flow_
    // was only written at candidates.
    for (const EdgeId e : flow_edges_) {
      decomp_cnt_[static_cast<std::size_t>(g.tail(e))] = 0;
    }
    for (const EdgeId e : flow_cand_) in_flow_[static_cast<std::size_t>(e)] = 0;
  }

  for (EdgeId e : p1_edges_) on_p1_[static_cast<std::size_t>(e)] = 0;
  for (const NodeId v : r2_touched_) {
    const auto vi = static_cast<std::size_t>(v);
    r2_dist_[vi] = kInf;
    r2_pred_[vi] = kInvalidEdge;
    r2_pred_rev_[vi] = 0;
  }
}

void SuurballeEngine::solve_into(const Digraph& g, std::span<const double> w,
                                 NodeId s, NodeId t, std::uint64_t tree_key,
                                 DisjointPair* out,
                                 const WeightPatchFeed* feed) {
  WDM_CHECK(g.valid_node(s) && g.valid_node(t));
  WDM_CHECK_MSG(s != t, "suurballe requires distinct endpoints");
  WDM_CHECK(w.size() == static_cast<std::size_t>(g.num_edges()));
  ++stats_.solves;
  bind(g);

  out->found = false;
  out->first.edges.clear();
  out->first.cost = 0.0;
  out->first.found = false;
  out->second.edges.clear();
  out->second.cost = 0.0;
  out->second.found = false;

  Tree& tr = acquire_tree(tree_key, s);
  if (!tr.valid) {
    build_tree(g, w, tr);
  } else {
    repair_tree(g, w, tr, feed);
  }
  // The snapshot now equals w; remember where the caller's patch log stood
  // so the next solve can scope its diff to what gets appended after this.
  if (feed != nullptr) {
    tr.feed_epoch = feed->epoch;
    tr.feed_offset = feed->spans.size();
    tr.feed_synced = true;
  } else {
    tr.feed_synced = false;
  }

  // Live cache-health gauges: LRU occupancy and the hinted share of diff
  // scopings so far. Engines are per-thread objects, so with several engines
  // the published value is last-writer-wins — a sample of *an* engine's
  // health, which is what a live monitor needs (exact totals stay in Stats).
  if (support::telemetry::enabled()) {
    int live = 0;
    for (const Tree& tcur : trees_) live += tcur.valid ? 1 : 0;
    WDM_TEL_GAUGE_SET("rwa.suurballe.warm_trees", live);
    const long long diffs = stats_.hinted_diffs + stats_.full_diffs;
    if (diffs > 0) {
      WDM_TEL_GAUGE_SET("rwa.suurballe.hinted_diff_rate",
                        static_cast<double>(stats_.hinted_diffs) /
                            static_cast<double>(diffs));
    }
  }

  if (tr.dist[static_cast<std::size_t>(t)] == kInf) return;
  round_two(g, w, s, t, tr, out);
}

}  // namespace wdm::graph
