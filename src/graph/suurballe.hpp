// Suurballe's algorithm [Suurballe, Networks 1974]: a min-total-cost pair of
// edge-disjoint s->t paths, computed with two Dijkstra passes over reduced
// costs. This is the `Find_Two_Paths` procedure of the paper (§3.3.2), run
// there on the auxiliary graph G'.
//
// Round 1 grows a full shortest-path tree; round 2 runs Dijkstra on the
// reduced-cost graph in which the round-1 path is reversed with cost 0
// (the paper's E_reserve), after which interlacing edges cancel
// (E_intersect) and the union decomposes into the two paths.
#pragma once

#include <span>

#include "graph/digraph.hpp"
#include "graph/path.hpp"

namespace wdm::graph {

struct DisjointPair {
  Path first;   // valid iff found
  Path second;  // valid iff found
  bool found = false;

  double total_cost() const { return first.cost + second.cost; }
};

/// Minimum-total-weight pair of edge-disjoint paths s -> t, or found == false
/// when no such pair exists. Weights must be nonnegative. The optional mask
/// restricts the computation to a subgraph. Requires s != t.
DisjointPair suurballe(const Digraph& g, std::span<const double> w, NodeId s,
                       NodeId t, std::span<const std::uint8_t> edge_enabled = {});

/// Node-disjoint variant via the standard node-splitting transform: returns a
/// min-total-weight pair of internally node-disjoint paths. (Extension beyond
/// the paper — protects against single *node* failures.)
DisjointPair suurballe_node_disjoint(
    const Digraph& g, std::span<const double> w, NodeId s, NodeId t,
    std::span<const std::uint8_t> edge_enabled = {});

/// Baseline for E10: greedily take the shortest path, delete its edges, take
/// the next shortest path. Cheaper per query but fails on "trap" topologies
/// where the first path uses edges both disjoint paths need.
DisjointPair naive_two_step(const Digraph& g, std::span<const double> w,
                            NodeId s, NodeId t,
                            std::span<const std::uint8_t> edge_enabled = {});

}  // namespace wdm::graph
