#include "graph/path.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/check.hpp"

namespace wdm::graph {

std::vector<NodeId> Path::nodes(const Digraph& g) const {
  WDM_CHECK(found);
  std::vector<NodeId> ns;
  ns.reserve(edges.size() + 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i == 0) ns.push_back(g.tail(edges[i]));
    ns.push_back(g.head(edges[i]));
  }
  return ns;
}

bool Path::contiguous_in(const Digraph& g) const {
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    if (g.head(edges[i]) != g.tail(edges[i + 1])) return false;
  }
  return true;
}

bool Path::contains_edge(EdgeId e) const {
  return std::find(edges.begin(), edges.end(), e) != edges.end();
}

bool edge_disjoint(const Path& a, const Path& b) {
  std::unordered_set<EdgeId> ea(a.edges.begin(), a.edges.end());
  return std::none_of(b.edges.begin(), b.edges.end(),
                      [&](EdgeId e) { return ea.count(e) > 0; });
}

bool internally_node_disjoint(const Path& a, const Path& b, const Digraph& g) {
  if (a.edges.empty() || b.edges.empty()) return true;
  std::unordered_set<NodeId> inner;
  const auto an = a.nodes(g);
  for (std::size_t i = 1; i + 1 < an.size(); ++i) inner.insert(an[i]);
  const auto bn = b.nodes(g);
  for (std::size_t i = 1; i + 1 < bn.size(); ++i) {
    if (inner.count(bn[i])) return false;
  }
  return true;
}

Path extract_path(const Digraph& g, const ShortestPathTree& tree,
                  NodeId target) {
  WDM_CHECK(g.valid_node(target));
  Path p;
  if (!tree.reached(target)) return p;
  p.found = true;
  p.cost = tree.distance(target);
  NodeId v = target;
  while (true) {
    const EdgeId e = tree.pred_edge[static_cast<std::size_t>(v)];
    if (e == kInvalidEdge) break;
    p.edges.push_back(e);
    v = g.tail(e);
    WDM_CHECK_MSG(p.edges.size() <= static_cast<std::size_t>(g.num_edges()),
                  "predecessor cycle while extracting path");
  }
  std::reverse(p.edges.begin(), p.edges.end());
  return p;
}

double path_weight(const Path& p, std::span<const double> w) {
  double s = 0.0;
  for (EdgeId e : p.edges) s += w[static_cast<std::size_t>(e)];
  return s;
}

}  // namespace wdm::graph
