#include "graph/dot.hpp"

#include <sstream>

namespace wdm::graph {

std::string to_dot(const Digraph& g, const DotOptions& opt) {
  std::ostringstream out;
  out << "digraph " << opt.graph_name << " {\n";
  out << "  rankdir=LR;\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v;
    if (opt.node_label) out << " [label=\"" << opt.node_label(v) << "\"]";
    out << ";\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out << "  n" << g.tail(e) << " -> n" << g.head(e);
    const bool hl = opt.edge_highlight && opt.edge_highlight(e);
    if (opt.edge_label || hl) {
      out << " [";
      if (opt.edge_label) out << "label=\"" << opt.edge_label(e) << "\"";
      if (opt.edge_label && hl) out << ", ";
      if (hl) out << "color=red, penwidth=2.0";
      out << "]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace wdm::graph
