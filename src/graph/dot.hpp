// Graphviz DOT export — used by the Fig. 1 reproduction (E1) and examples.
#pragma once

#include <functional>
#include <string>

#include "graph/digraph.hpp"

namespace wdm::graph {

struct DotOptions {
  std::string graph_name = "G";
  /// Optional labelers; defaults print bare ids.
  std::function<std::string(NodeId)> node_label;
  std::function<std::string(EdgeId)> edge_label;
  /// Subset of nodes/edges to highlight (rendered bold/red).
  std::function<bool(EdgeId)> edge_highlight;
};

std::string to_dot(const Digraph& g, const DotOptions& opt = {});

}  // namespace wdm::graph
