// Warm-startable Suurballe engine (ROADMAP item 4, continental-scale hot
// path).
//
// The classic graph::suurballe() pays a full round-1 Dijkstra per query. At
// 250–1000 nodes that dominates routing, yet between two consecutive
// requests the weight vector of the stable-arena auxiliary graph barely
// moves: a handful of arcs change when wavelengths are reserved/released,
// plus the O(deg) s'/t'' query wiring. This engine keeps the round-1
// shortest-path tree per caller-chosen key (one per physical source in
// router use) together with a snapshot of the weight vector it was computed
// under. A solve diffs the current weights against the snapshot,
// conservatively invalidates exactly the subtrees hanging below tree arcs
// whose weight increased, re-seeds a Dijkstra from the invalidation
// boundary plus every changed arc, and runs it to quiescence.
//
// Dirty hints. Diffing w against the snapshot over all arcs is itself O(m)
// — linear in topology size, which defeats the point at continental scale.
// Callers that know which arcs they touched (the stable-arena
// AuxGraphBuilder logs every weight it patches) pass a WeightPatchFeed:
// an epoch plus the append-only log of patched arc spans. Each tree
// remembers the (epoch, offset) it was last synced at, and a repair scans
// only the spans appended since — O(recent churn), not O(m). The hints
// must be a superset of the actually-changed arcs; the epoch changes
// whenever that cannot be guaranteed (full repatch, log overflow), and the
// engine falls back to the full scan. Solving without a feed also falls
// back (and marks the tree unsynced, so a later hinted solve cannot trust
// a stale offset).
//
// Bit-for-bit determinism. Warm repair produces the *identical* double for
// every distance as a cold run: with nonnegative weights, both cold
// Dijkstra and the repair converge to the unique least fixpoint of
//   d(v) = min over in-arcs a=(u,v) of  d(u) ⊕ w(a)
// where ⊕ is IEEE double addition — the min over paths of their
// left-to-right floating-point cost, a value independent of relaxation
// order. The round-1 path handed to round 2 is then extracted by a local
// canonical rule — from t, repeatedly take the minimum arc id achieving
// exact fp equality d(tail) ⊕ w == d(v) — a pure function of (structure,
// w, d), so the whole pair is reproducible bit-for-bit no matter how the
// labels were obtained. The internal predecessor forest (whatever arcs the
// relaxations happened to leave behind) only guides subtree invalidation
// and never leaks into results. The fuzz differential suite asserts
// warm == cold on edges and costs bitwise.
//
// The canonical walk requires that the tight subgraph has no zero-weight
// cycle (true for the builder's auxiliary graphs, whose link arcs carry
// positive costs); a cycle would make the walk non-terminating and trips a
// WDM_CHECK instead.
//
// The engine never allocates in steady state: tree slots (at most
// kMaxTrees, LRU-recycled), the repair heap, and every round-2 array are
// retained across solves, and round 2 cleans up via touched-lists rather
// than O(n + m) refills, following the clear_keep_capacity idiom.
//
// Not thread-safe; rwa::RouteScratch owns one per leased scratch.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/heaps.hpp"
#include "graph/path.hpp"
#include "graph/suurballe.hpp"

namespace wdm::graph {

/// A contiguous run of arc ids whose weights may have been rewritten.
struct WeightPatchSpan {
  EdgeId begin = 0;
  EdgeId count = 0;
};

/// Append-only log of weight patches since `epoch` began. Spans may overlap
/// and repeat; they must cover every arc whose weight changed within the
/// epoch. Bump the epoch whenever that coverage cannot be guaranteed.
struct WeightPatchFeed {
  std::uint64_t epoch = 0;
  std::span<const WeightPatchSpan> spans;
};

class SuurballeEngine {
 public:
  /// Trees kept per engine; least-recently-used slots are recycled in place.
  static constexpr int kMaxTrees = 8;

  SuurballeEngine() = default;
  SuurballeEngine(const SuurballeEngine&) = delete;
  SuurballeEngine& operator=(const SuurballeEngine&) = delete;

  /// Min-total-weight pair of edge-disjoint s -> t paths over nonnegative
  /// weights, or found == false. `tree_key` names the warm round-1 tree to
  /// reuse (router callers pass the physical source node): solves sharing a
  /// key must also share the source `s`, and the graph *structure* (arc
  /// table) must be unchanged since the key's last solve — only weights may
  /// move. A structural change (different node/arc counts) drops every
  /// tree; call invalidate() to force that when reusing the engine against
  /// a rebuilt graph with coincidentally equal counts.
  ///
  /// `feed`, when non-null, scopes the snapshot diff to the arcs the caller
  /// patched since this tree's last solve (see WeightPatchFeed above);
  /// null means a full O(m) diff.
  ///
  /// Output vectors inside `*out` are recycled (clear, keep capacity).
  void solve_into(const Digraph& g, std::span<const double> w, NodeId s,
                  NodeId t, std::uint64_t tree_key, DisjointPair* out,
                  const WeightPatchFeed* feed = nullptr);

  /// Convenience wrapper for tests; allocates the result.
  DisjointPair solve(const Digraph& g, std::span<const double> w, NodeId s,
                     NodeId t, std::uint64_t tree_key,
                     const WeightPatchFeed* feed = nullptr) {
    DisjointPair out;
    solve_into(g, w, s, t, tree_key, &out, feed);
    return out;
  }

  /// Drops every cached tree (keeps capacity).
  void invalidate();

  struct Stats {
    std::uint64_t solves = 0;
    std::uint64_t tree_builds = 0;    // cold round-1 tree constructions
    std::uint64_t tree_repairs = 0;   // warm repairs (some arcs moved)
    std::uint64_t tree_hits = 0;      // snapshot identical — tree reused as-is
    std::uint64_t repaired_nodes = 0; // nodes relabeled across all repairs
    std::uint64_t hinted_diffs = 0;   // snapshot diffs scoped by a patch feed
    std::uint64_t full_diffs = 0;     // snapshot diffs over every arc
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Tree {
    std::uint64_t key = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    NodeId source = kInvalidNode;
    std::vector<double> dist;     // round-1 labels, canonical fixpoint
    std::vector<EdgeId> pred;     // support forest (repair bookkeeping only)
    std::vector<double> w_snap;   // weights the labels were computed under
    // Position in the caller's patch feed at the last w_snap sync; valid
    // only while feed_synced and the feed's epoch matches.
    std::uint64_t feed_epoch = 0;
    std::size_t feed_offset = 0;
    bool feed_synced = false;
  };

  /// Binds the scratch to the graph shape; drops trees when it changes.
  void bind(const Digraph& g);
  Tree& acquire_tree(std::uint64_t key, NodeId s);
  /// Cold build: full Dijkstra from tr.source.
  void build_tree(const Digraph& g, std::span<const double> w, Tree& tr);
  /// Warm repair: diff w against tr.w_snap (scoped by `feed` when the
  /// tree's cursor is still valid), invalidate suspect subtrees, re-run
  /// Dijkstra from the boundary + changed arcs. No-op on empty diff.
  /// Returns false when nothing changed (tree served as-is).
  bool repair_tree(const Digraph& g, std::span<const double> w, Tree& tr,
                   const WeightPatchFeed* feed);
  /// Classic round 2 over the canonical round-1 path; fills *out.
  void round_two(const Digraph& g, std::span<const double> w, NodeId s,
                 NodeId t, const Tree& tr, DisjointPair* out);

  NodeId n_ = -1;
  EdgeId m_ = -1;
  std::uint64_t use_clock_ = 0;
  std::vector<Tree> trees_;

  // Repair scratch.
  std::optional<QuadHeap> heap_;
  std::vector<std::uint8_t> suspect_;
  std::vector<NodeId> suspect_stack_;
  std::vector<EdgeId> changed_arcs_;
  // Tree children in CSR form, rebuilt per repair from pred (only when an
  // increased arc is a tree arc — pure decreases never orphan a subtree).
  std::vector<std::size_t> child_start_;
  std::vector<NodeId> child_;
  std::vector<std::uint8_t> child_cursor_;

  // Round-2 scratch. The r2_* arrays and the flag arrays hold their clean
  // values (kInf / kInvalidEdge / 0) for every index NOT named by the
  // touched-lists below; round_two restores that invariant on every exit.
  std::vector<EdgeId> p1_edges_;
  std::vector<double> r2_dist_;
  std::vector<EdgeId> r2_pred_;
  std::vector<std::uint8_t> r2_pred_rev_;
  std::vector<NodeId> r2_touched_;    // nodes with a live r2_* entry
  std::vector<std::uint8_t> on_p1_;
  std::vector<std::uint8_t> in_flow_;
  std::vector<EdgeId> flow_cand_;     // arcs with a live in_flow_ entry
  std::vector<EdgeId> flow_edges_;
  std::vector<EdgeId> decomp_slot_;   // 2 out-slots per node
  std::vector<std::uint8_t> decomp_cnt_;

  Stats stats_;
};

}  // namespace wdm::graph
