// Dinic's max-flow on integer capacities. Used as the existence oracle for
// edge-disjoint path pairs (unit capacities): Suurballe finds a pair iff the
// s-t edge connectivity is >= 2 — the property tests cross-check the two.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace wdm::graph {

class Dinic {
 public:
  explicit Dinic(int num_nodes);

  /// Adds a directed arc u -> v with the given capacity; returns its arc id.
  int add_arc(int u, int v, std::int64_t capacity);

  /// Computes the max flow s -> t. May be called once per instance.
  std::int64_t max_flow(int s, int t);

  /// Flow pushed through arc `id` (valid after max_flow).
  std::int64_t flow_on(int id) const;

 private:
  struct Arc {
    int to;
    std::int64_t cap;
    int rev;  // index of the reverse arc in adj_[to]
  };

  bool bfs(int s, int t);
  std::int64_t dfs(int v, int t, std::int64_t pushed);

  std::vector<std::vector<Arc>> adj_;
  std::vector<std::pair<int, int>> arc_pos_;  // public id -> (node, slot)
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

/// Number of pairwise edge-disjoint s->t paths in `g` (s-t edge connectivity),
/// restricted to the enabled subgraph.
int edge_disjoint_path_count(const Digraph& g, NodeId s, NodeId t,
                             std::span<const std::uint8_t> edge_enabled = {});

}  // namespace wdm::graph
