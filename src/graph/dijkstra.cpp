#include "graph/dijkstra.hpp"

namespace wdm::graph {

ShortestPathTree dijkstra(const Digraph& g, std::span<const double> w,
                          NodeId src, const DijkstraOptions& opt) {
  return dijkstra_with<QuadHeap>(g, w, src, opt);
}

Path shortest_path(const Digraph& g, std::span<const double> w, NodeId s,
                   NodeId t, std::span<const std::uint8_t> edge_enabled) {
  DijkstraOptions opt;
  opt.target = t;
  opt.edge_enabled = edge_enabled;
  const ShortestPathTree tree = dijkstra(g, w, s, opt);
  return extract_path(g, tree, t);
}

// Explicit instantiations of the heap backends exercised by tests/benches.
template ShortestPathTree dijkstra_with<BinaryHeap>(const Digraph&,
                                                    std::span<const double>,
                                                    NodeId,
                                                    const DijkstraOptions&);
template ShortestPathTree dijkstra_with<QuadHeap>(const Digraph&,
                                                  std::span<const double>,
                                                  NodeId,
                                                  const DijkstraOptions&);
template ShortestPathTree dijkstra_with<PairingHeap>(const Digraph&,
                                                     std::span<const double>,
                                                     NodeId,
                                                     const DijkstraOptions&);

}  // namespace wdm::graph
