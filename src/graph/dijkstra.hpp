// Dijkstra label-setting shortest paths, templated on the heap backend.
//
// Weights must be nonnegative; violations are caught by WDM_DCHECK in debug
// builds. An optional edge mask restricts the search to a subgraph (the
// residual-network and induced-subgraph mechanics of the paper are expressed
// as masks, so no graph copies happen on the routing hot path).
#pragma once

#include <span>

#include "graph/digraph.hpp"
#include "graph/heaps.hpp"
#include "graph/path.hpp"

namespace wdm::graph {

struct DijkstraOptions {
  /// Stop as soon as this node is settled (kInvalidNode = full tree).
  NodeId target = kInvalidNode;
  /// enabled[e] != 0 keeps edge e; empty = all edges enabled.
  std::span<const std::uint8_t> edge_enabled = {};
};

template <typename Heap>
ShortestPathTree dijkstra_with(const Digraph& g, std::span<const double> w,
                               NodeId src, const DijkstraOptions& opt = {}) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  WDM_CHECK(g.valid_node(src));
  WDM_CHECK(w.size() == static_cast<std::size_t>(g.num_edges()));
  WDM_CHECK(opt.edge_enabled.empty() ||
            opt.edge_enabled.size() == static_cast<std::size_t>(g.num_edges()));

  ShortestPathTree tree;
  tree.dist.assign(n, kInf);
  tree.pred_edge.assign(n, kInvalidEdge);
  tree.dist[static_cast<std::size_t>(src)] = 0.0;

  Heap heap(n);
  heap.push(static_cast<std::size_t>(src), 0.0);
  while (!heap.empty()) {
    const auto [uid, du] = heap.pop_min();
    const auto u = static_cast<NodeId>(uid);
    if (u == opt.target) break;
    for (EdgeId e : g.out_edges(u)) {
      if (!opt.edge_enabled.empty() &&
          !opt.edge_enabled[static_cast<std::size_t>(e)]) {
        continue;
      }
      const double we = w[static_cast<std::size_t>(e)];
      WDM_DCHECK(we >= 0.0);
      const auto v = static_cast<std::size_t>(g.head(e));
      const double dv = du + we;
      if (dv < tree.dist[v]) {
        tree.dist[v] = dv;
        tree.pred_edge[v] = e;
        heap.push_or_decrease(v, dv);
      }
    }
  }
  return tree;
}

/// Default backend (4-ary heap — fastest in the E11 micro-bench).
ShortestPathTree dijkstra(const Digraph& g, std::span<const double> w,
                          NodeId src, const DijkstraOptions& opt = {});

/// Convenience: shortest s->t path (not-found Path when unreachable).
Path shortest_path(const Digraph& g, std::span<const double> w, NodeId s,
                   NodeId t, std::span<const std::uint8_t> edge_enabled = {});

}  // namespace wdm::graph
