// The routing-policy interface shared by the paper's algorithms, the exact
// solvers, and the baselines. The dynamic-traffic simulator is parameterized
// over this interface.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "rwa/footprint.hpp"
#include "wdm/semilightpath.hpp"

namespace wdm::rwa {

struct RouteResult {
  net::ProtectedRoute route;
  bool found = false;

  /// For the load-aware routers (§4): the final threshold ϑ accepted by the
  /// doubling search and the number of G_c constructions it took.
  double theta = std::numeric_limits<double>::quiet_NaN();
  int theta_iterations = 0;

  /// Weighted total of the two auxiliary-graph paths (the quantity
  /// Suurballe minimized) — an upper bound on the delivered cost (Lemma 2).
  double aux_cost = std::numeric_limits<double>::quiet_NaN();

  /// SRLG policy only: the conflict-set search proved its answer (candidate
  /// enumeration closed) rather than hitting its candidate budget. The fuzz
  /// completeness oracle only judges blocked results carrying this flag.
  bool srlg_exhaustive = false;

  double total_cost(const net::WdmNetwork& net) const {
    return route.total_cost(net);
  }

  /// Restores the default-constructed state while keeping the capacity of
  /// every nested vector — the recycled-result side of the allocation-free
  /// route path (ApproxDisjointRouter::route_into).
  void reset_keep_capacity() {
    route.primary.hops.clear();
    route.primary.found = false;
    route.backup.hops.clear();
    route.backup.found = false;
    route.avoid.clear();
    route.found = false;
    route.policy = net::ProtectPolicy{};
    found = false;
    theta = std::numeric_limits<double>::quiet_NaN();
    theta_iterations = 0;
    aux_cost = std::numeric_limits<double>::quiet_NaN();
    srlg_exhaustive = false;
  }
};

class Router {
 public:
  virtual ~Router() = default;

  /// Computes a protected route for the request (s, t) against the network's
  /// current residual state. Must not mutate the network: reservation is the
  /// caller's (simulator's) decision.
  virtual RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                            net::NodeId t) const = 0;

  /// Footprint-recording variant for speculative callers (ParallelBatchEngine):
  /// also fills `fp` with the call's read set so the commit thread can keep
  /// the speculation alive across non-conflicting commits. The default marks
  /// the footprint opaque (epoch-exact validation), so routers that do not
  /// record footprints remain correct, just never survive a commit.
  virtual RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                            net::NodeId t, RouteFootprint* fp) const {
    if (fp != nullptr) fp->mark_opaque();
    return route(net, s, t);
  }

  virtual std::string name() const = 0;
};

using RouterPtr = std::unique_ptr<Router>;

}  // namespace wdm::rwa
