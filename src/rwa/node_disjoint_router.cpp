#include "rwa/node_disjoint_router.hpp"

#include <algorithm>

#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/layered_graph.hpp"
#include "rwa/srlg.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::rwa {

RouteResult NodeDisjointRouter::route(const net::WdmNetwork& net,
                                      net::NodeId s, net::NodeId t,
                                      RouteFootprint* fp) const {
  if (fp != nullptr) fp->mark_opaque();
  if (policy_.kind == net::ProtectKind::kPartial) {
    return route_partial(net, s, t, policy_.threshold);
  }
  WDM_TEL_COUNT("rwa.node_disjoint.attempts");
  WDM_TEL_SPAN(tel_span, "rwa.node_disjoint.route");
  support::telemetry::SplitTimer tel;
  RouteResult result;
  result.route.policy = policy_;
  const bool srlg_path =
      policy_.kind == net::ProtectKind::kSrlg && net.num_srlgs() > 0;
  if (fp != nullptr && !srlg_path) {
    // The node-protection hub weights are means over transit-pair means, so
    // the gadget is still a pure function of the G' cost channel.
    fp->begin();
    fp->cost_semantics = true;
  }
  AuxGraphOptions opt;
  opt.weighting = AuxWeighting::kCost;
  opt.protect_nodes = true;
  opt.stable_arena = true;
  auto sc = scratch_.lease(net);
  const AuxGraph& aux = sc->builder.build(net, s, t, opt);
  sc->sync_suurballe_generation();
  tel.split(WDM_TEL_HIST("rwa.node_disjoint.aux_build_ns"),
            WDM_TEL_NAME("rwa.node_disjoint.aux_build"));

  if (srlg_path) {
    SrlgPairResult sp = srlg_disjoint_pair(net, aux);
    sc->pair = std::move(sp.pair);
    result.srlg_exhaustive = sp.exhaustive;
  } else {
    const graph::WeightPatchFeed feed = sc->builder.patch_feed();
    sc->suurballe.solve_into(aux.g, aux.w, aux.s_prime, aux.t_second,
                             /*tree_key=*/static_cast<std::uint64_t>(s),
                             &sc->pair, &feed);
  }
  graph::DisjointPair& pair = sc->pair;
  tel.split(WDM_TEL_HIST("rwa.node_disjoint.suurballe_ns"),
            WDM_TEL_NAME("rwa.node_disjoint.suurballe"));
  if (!pair.found) {
    WDM_TEL_COUNT("rwa.node_disjoint.blocked");
    tel.total(WDM_TEL_HIST("rwa.node_disjoint.route_ns"));
    return result;
  }
  result.aux_cost = pair.total_cost();

  aux.induced_link_mask_into(pair.first, net.num_links(), &sc->mask1);
  aux.induced_link_mask_into(pair.second, net.num_links(), &sc->mask2);
  if (fp != nullptr && !fp->opaque) {
    fp->add_exact_mask(sc->mask1);
    fp->add_exact_mask(sc->mask2);
  }
  net::Semilightpath p1 = optimal_semilightpath(net, s, t, sc->mask1);
  net::Semilightpath p2 = optimal_semilightpath(net, s, t, sc->mask2);
  tel.split(WDM_TEL_HIST("rwa.node_disjoint.liang_shen_ns"),
            WDM_TEL_NAME("rwa.node_disjoint.liang_shen"));
  tel.total(WDM_TEL_HIST("rwa.node_disjoint.route_ns"));
  if (!p1.found || !p2.found) {
    WDM_TEL_COUNT("rwa.node_disjoint.blocked");
    return result;
  }
  WDM_DCHECK(net::edge_disjoint(p1, p2));
  WDM_TEL_COUNT("rwa.node_disjoint.found");
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  result.found = true;
  result.route.found = true;
  result.route.primary = std::move(p1);
  result.route.backup = std::move(p2);
  return result;
}

}  // namespace wdm::rwa
