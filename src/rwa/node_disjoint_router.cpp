#include "rwa/node_disjoint_router.hpp"

#include <algorithm>

#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/layered_graph.hpp"
#include "support/check.hpp"

namespace wdm::rwa {

RouteResult NodeDisjointRouter::route(const net::WdmNetwork& net,
                                      net::NodeId s, net::NodeId t) const {
  RouteResult result;
  AuxGraphOptions opt;
  opt.weighting = AuxWeighting::kCost;
  opt.protect_nodes = true;
  auto builder = builders_.lease();
  const AuxGraph& aux = builder->build(net, s, t, opt);

  const graph::DisjointPair pair =
      graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second);
  if (!pair.found) return result;
  result.aux_cost = pair.total_cost();

  const auto mask1 = aux.induced_link_mask(pair.first, net.num_links());
  const auto mask2 = aux.induced_link_mask(pair.second, net.num_links());
  net::Semilightpath p1 = optimal_semilightpath(net, s, t, mask1);
  net::Semilightpath p2 = optimal_semilightpath(net, s, t, mask2);
  if (!p1.found || !p2.found) return result;
  WDM_DCHECK(net::edge_disjoint(p1, p2));
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  result.found = true;
  result.route.found = true;
  result.route.primary = std::move(p1);
  result.route.backup = std::move(p2);
  return result;
}

}  // namespace wdm::rwa
