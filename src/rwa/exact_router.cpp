#include "rwa/exact_router.hpp"

#include <algorithm>

#include "graph/yen.hpp"
#include "rwa/layered_graph.hpp"
#include "support/check.hpp"

namespace wdm::rwa {

ExactResult exact_disjoint_pair(const net::WdmNetwork& net, net::NodeId s,
                                net::NodeId t, const ExactOptions& opt) {
  ExactResult out;
  const auto& pg = net.graph();
  WDM_CHECK(pg.valid_node(s) && pg.valid_node(t) && s != t);

  // Admissible per-link lower bounds over the residual network.
  const auto m = static_cast<std::size_t>(pg.num_edges());
  std::vector<double> lb(m, 0.0);
  std::vector<std::uint8_t> usable(m, 0);
  for (graph::EdgeId e = 0; e < pg.num_edges(); ++e) {
    const net::WavelengthSet avail = net.available(e);
    if (avail.empty()) continue;
    usable[static_cast<std::size_t>(e)] = 1;
    double best = graph::kInf;
    avail.for_each(
        [&](net::Wavelength l) { best = std::min(best, net.weight(e, l)); });
    lb[static_cast<std::size_t>(e)] = best;
  }

  // OPT_single: no semilightpath at all => no pair either.
  const double opt_single = optimal_semilightpath_cost(net, s, t, usable);
  if (opt_single == graph::kInf) return out;

  double best_total = graph::kInf;
  net::Semilightpath best_p1, best_p2;

  graph::KShortestPathEnumerator primaries(pg, lb, s, t, usable);
  while (out.candidates_examined < opt.max_candidates) {
    const auto candidate = primaries.next();
    if (!candidate) {
      out.proven_optimal = true;  // search space exhausted
      break;
    }
    ++out.candidates_examined;
    if (candidate->cost + opt_single >= best_total) {
      out.proven_optimal = true;  // admissible bound closed the search
      break;
    }
    // Best realization of the candidate as a semilightpath.
    std::vector<std::uint8_t> mask1(m, 0);
    for (graph::EdgeId e : candidate->edges) {
      mask1[static_cast<std::size_t>(e)] = 1;
    }
    net::Semilightpath p1 = optimal_semilightpath(net, s, t, mask1);
    if (!p1.found) continue;  // wavelength/conversion constraints block it
    const double c1 = p1.cost(net);
    if (c1 + opt_single >= best_total) continue;

    // Best edge-disjoint completion.
    std::vector<std::uint8_t> mask2(usable);
    for (graph::EdgeId e : candidate->edges) {
      mask2[static_cast<std::size_t>(e)] = 0;
    }
    net::Semilightpath p2 = optimal_semilightpath(net, s, t, mask2);
    if (!p2.found) continue;
    const double total = c1 + p2.cost(net);
    if (total < best_total) {
      best_total = total;
      best_p1 = std::move(p1);
      best_p2 = std::move(p2);
    }
  }

  if (best_total < graph::kInf) {
    out.result.found = true;
    out.result.route.found = true;
    if (best_p2.cost(net) < best_p1.cost(net)) std::swap(best_p1, best_p2);
    out.result.route.primary = std::move(best_p1);
    out.result.route.backup = std::move(best_p2);
  }
  return out;
}

}  // namespace wdm::rwa
