// Pooled per-route scratch state — the allocation-free routing hot path.
//
// Every router used to lease only an AuxGraphBuilder; the remaining
// per-request allocations (Suurballe's dist/pred/heap arrays, projection
// vectors, induced-subgraph masks, the DisjointPair result) were rebuilt
// per call. RouteScratch bundles all of them, recycled via the
// clear_keep_capacity idiom, so a steady-state route() touches the heap
// zero times (verified by tests/test_route_alloc.cpp's counting hook).
//
// Pooling follows AuxGraphBuilderPool exactly: lease(net) prefers a
// scratch whose builder (and with it the warm Suurballe trees, which live
// against that builder's stable arena) is already bound to the same
// network uid. ParallelBatchEngine workers route concurrently against
// per-thread snapshot copies; the uid key hands each worker its own warm
// scratch without any engine-side threading.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/suurballe.hpp"
#include "graph/suurballe_warm.hpp"
#include "rwa/aux_graph.hpp"
#include "wdm/semilightpath.hpp"

namespace wdm::rwa {

struct RouteScratch {
  AuxGraphBuilder builder;
  graph::SuurballeEngine suurballe;
  graph::DisjointPair pair;
  std::vector<graph::EdgeId> links1;
  std::vector<graph::EdgeId> links2;
  std::vector<std::uint8_t> mask1;
  std::vector<std::uint8_t> mask2;

  /// uid() of the network the builder caches are bound to (0 = unbound).
  std::uint64_t bound_uid() const { return builder.bound_uid(); }

  /// Warm trees in `suurballe` are only meaningful while the builder's
  /// stable-arena arc ids keep their meaning. Call after every build(): drops
  /// the trees iff the structure was rebuilt since the last solve (different
  /// network leased this scratch, topology changed, protect flag flipped...).
  /// Engine-side shape checks can't catch this — two different topologies
  /// with equal node/arc counts produce identically-shaped universes.
  void sync_suurballe_generation() {
    const std::uint64_t gen = builder.stable_structure_generation();
    if (gen != suurballe_gen_) {
      suurballe.invalidate();
      suurballe_gen_ = gen;
    }
  }

 private:
  std::uint64_t suurballe_gen_ = 0;
};

/// Thread-safe LIFO pool of scratches, keyed like AuxGraphBuilderPool.
class RouteScratchPool {
 public:
  class Lease {
   public:
    Lease(RouteScratchPool* pool, std::unique_ptr<RouteScratch> scratch)
        : pool_(pool), scratch_(std::move(scratch)) {}
    Lease(Lease&& other) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease();

    RouteScratch& operator*() { return *scratch_; }
    RouteScratch* operator->() { return scratch_.get(); }
    RouteScratch* get() { return scratch_.get(); }

   private:
    RouteScratchPool* pool_;
    std::unique_ptr<RouteScratch> scratch_;
  };

  RouteScratchPool() = default;
  RouteScratchPool(const RouteScratchPool&) = delete;
  RouteScratchPool& operator=(const RouteScratchPool&) = delete;

  Lease lease();
  /// Keyed lease: exact uid match first (warm builder caches and Suurballe
  /// trees), then a never-bound scratch, then LIFO.
  Lease lease(const net::WdmNetwork& net);
  std::size_t idle_count() const;

 private:
  friend class Lease;
  void put(std::unique_ptr<RouteScratch> scratch);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<RouteScratch>> idle_;
};

}  // namespace wdm::rwa
