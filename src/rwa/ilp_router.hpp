// The paper's exact method: the 0/1 integer program of §3.1 (Eqs. 3–21),
// solved with the in-tree simplex + branch & bound (src/ilp).
//
// Encoding notes relative to the paper:
//   * x_ij^(l) / y_ij^(l) exist only for λ_l ∈ Λ_avail(<v_i,v_j>) — absent
//     wavelengths are fixed to 0 by omission.
//   * The conversion-cost equalities (17)/(18) read literally would force
//     z_ijk negative when a link pair is unused; we apply the standard
//     linearization the paper intends: z ≥ c·(x_in + x_out − 1) for every
//     allowed wavelength pair, z ≥ 0, with z minimized in Eq. (3).
//   * Wavelength pairs the node's table cannot convert get the forbidding
//     cut x_in^(l1) + x_out^(l2) ≤ 1 (the paper assumes all conversions are
//     priced; our model admits restricted tables).
//
// Solving the IP is the expensive path (§3.3's motivation); bench E9 measures
// it against the enumeration-based exact solver, which must agree.
#pragma once

#include "ilp/branch_and_bound.hpp"
#include "rwa/router.hpp"

namespace wdm::rwa {

struct IlpRouteOptions {
  long max_nodes = 100000;
};

struct IlpRouteResult {
  RouteResult result;
  ilp::IpStatus status = ilp::IpStatus::kInfeasible;
  long nodes_explored = 0;
  int num_variables = 0;
  int num_constraints = 0;
  /// IP objective (Eq. 3) — equals result cost when found.
  double objective = 0.0;
};

IlpRouteResult ilp_disjoint_pair(const net::WdmNetwork& net, net::NodeId s,
                                 net::NodeId t,
                                 const IlpRouteOptions& opt = {});

class IlpRouter final : public Router {
 public:
  explicit IlpRouter(IlpRouteOptions opt = {}) : opt_(opt) {}

  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override {
    return ilp_disjoint_pair(net, s, t, opt_).result;
  }

  std::string name() const override { return "exact-ilp(§3.1)"; }

 private:
  IlpRouteOptions opt_;
};

}  // namespace wdm::rwa
