// Exact solver for the optimal edge-disjoint semilightpath problem (§3).
//
// The problem is NP-hard (Lemma 1), and the paper's exact method is the
// integer program of §3.1. This solver is a combinatorial exact method used
// as the ratio denominator in benches E2/E9 (and cross-checked against the
// ILP encoding in rwa/ilp_router):
//
//   * enumerate candidate primary *physical* paths with Yen's algorithm
//     under the admissible per-link lower bound lb(e) = min_{λ∈Λ_avail(e)}
//     w(e,λ);
//   * for each candidate p: the best completion is
//       C1(p) = optimal semilightpath confined to p's links
//       C2(p) = optimal semilightpath in the residual minus p's links,
//     both via the layered-graph solver — their union is edge-disjoint by
//     construction;
//   * prune: once lb(p) + OPT_single ≥ best found, no later candidate can
//     win (Yen emits in nondecreasing lb, conversions are nonnegative).
//
// Like the paper's IP (constraints (5)/(6) cap per-node in/out degree at 1),
// the search space is pairs of *simple* physical paths; under the Theorem 2
// cost assumption an optimal pair is always of this form. Worst case is
// exponential — consistent with Lemma 1 — so a candidate cap guards the
// search; `proven_optimal` reports whether the bound closed before the cap.
#pragma once

#include "rwa/router.hpp"

namespace wdm::rwa {

struct ExactOptions {
  /// Safety cap on enumerated primary candidates.
  long max_candidates = 200000;
};

struct ExactResult {
  RouteResult result;
  /// True when the pruning bound closed the search (always, unless the
  /// candidate cap was hit first).
  bool proven_optimal = false;
  long candidates_examined = 0;
};

ExactResult exact_disjoint_pair(const net::WdmNetwork& net, net::NodeId s,
                                net::NodeId t, const ExactOptions& opt = {});

class ExactRouter final : public Router {
 public:
  explicit ExactRouter(ExactOptions opt = {}) : opt_(opt) {}

  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override {
    return exact_disjoint_pair(net, s, t, opt_).result;
  }

  std::string name() const override { return "exact-enum"; }

 private:
  ExactOptions opt_;
};

}  // namespace wdm::rwa
