// The §3.3 approximation algorithm for the optimal edge-disjoint
// semilightpath problem:
//
//   1. build the auxiliary graph G' over the residual network;
//   2. Find_Two_Paths: Suurballe on G' from s' to t'' minimizing the
//      weighted sum of the two edge-disjoint paths;
//   3. project each auxiliary path P_i to the induced physical subgraph G_i
//      and run the Liang–Shen optimal semilightpath algorithm inside it,
//      producing P'_i with C(P'_1) + C(P'_2) ≤ ω(P_1) + ω(P_2) (Lemma 2).
//
// Under the §3.3 assumptions — (i) full conversion with identical per-node
// cost, (ii) wavelength-independent link costs, and conversion cost bounded
// by incident link cost — the result is a 2-approximation (Theorem 2). The
// implementation accepts general networks; outside those assumptions the
// ratio guarantee (and, for restricted conversion tables, even the
// projection's feasibility) may fail, which bench E2 measures.
#pragma once

#include "rwa/aux_graph.hpp"
#include "rwa/route_scratch.hpp"
#include "rwa/router.hpp"

namespace wdm::rwa {

class ApproxDisjointRouter final : public Router {
 public:
  /// `refine` toggles the Lemma 2 step: when false, each auxiliary path is
  /// realized by first-fit wavelength assignment instead of the per-subgraph
  /// optimal semilightpath — the ablation bench_ablations measures what the
  /// refinement buys. `policy` selects the protection predicate: kFull is
  /// the paper's edge-disjoint stage (bit-for-bit the historical behavior),
  /// kSrlg swaps in the conflict-set Suurballe variant (identical again when
  /// the network declares no SRLGs), kPartial routes via route_partial.
  explicit ApproxDisjointRouter(bool refine = true,
                                net::ProtectPolicy policy =
                                    net::ProtectPolicy::full())
      : refine_(refine), policy_(policy) {}

  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override {
    return route(net, s, t, nullptr);
  }

  /// Records a cost-channel footprint (G' semantics + the induced refinement
  /// masks as exact links). SRLG-with-groups and partial-protection paths
  /// stay opaque.
  RouteResult route(const net::WdmNetwork& net, net::NodeId s, net::NodeId t,
                    RouteFootprint* fp) const override {
    RouteResult result;
    route_into(net, s, t, &result, fp);
    return result;
  }

  /// Recycled-result entry point: fills `*out` in place (capacity kept via
  /// RouteResult::reset_keep_capacity). On the default configuration —
  /// kFull policy without refinement — a warm steady-state call performs
  /// zero heap allocations end to end: stable-arena aux build, warm-tree
  /// Suurballe, pooled projection buffers, and in-place first-fit
  /// assignment (tests/test_route_alloc.cpp holds the line). Refinement,
  /// SRLG-with-groups, and partial protection delegate to their (allocating)
  /// sub-algorithms but share the same scratch where they can.
  void route_into(const net::WdmNetwork& net, net::NodeId s, net::NodeId t,
                  RouteResult* out, RouteFootprint* fp) const;

  std::string name() const override {
    return refine_ ? "approx-cost(§3.3)" : "approx-cost(no-refine)";
  }

 private:
  bool refine_;
  net::ProtectPolicy policy_;
  /// Warm per-route scratches (aux builder + Suurballe engine + buffers)
  /// reused across route() calls; a pool (rather than one scratch) keeps
  /// concurrent route() calls safe, keyed so each caller's network gets its
  /// own warm state back.
  mutable RouteScratchPool scratch_;
};

}  // namespace wdm::rwa
