// Extension beyond the paper: node-disjoint protected routing.
//
// §1 distinguishes edge-disjoint backups (single link failure) from
// node-disjoint backups (single node + single link failures) and the paper
// develops the edge-disjoint case; this router delivers the stronger class
// by running the same §3.3 pipeline over the node-gadget auxiliary graph
// (see AuxGraphOptions::protect_nodes). Costs follow the same averaged
// weighting, so the Lemma 2 refinement applies unchanged.
#pragma once

#include "rwa/aux_graph.hpp"
#include "rwa/route_scratch.hpp"
#include "rwa/router.hpp"

namespace wdm::rwa {

class NodeDisjointRouter final : public Router {
 public:
  /// kSrlg composes with node protection: the conflict-set search masks the
  /// candidate primary's gadget arcs too, so the pair stays internally
  /// node-disjoint while also avoiding shared-risk groups.
  explicit NodeDisjointRouter(net::ProtectPolicy policy =
                                  net::ProtectPolicy::full())
      : policy_(policy) {}

  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override {
    return route(net, s, t, nullptr);
  }

  /// Cost-channel footprint, as ApproxDisjointRouter (the hub gadget reads
  /// the same derived quantities).
  RouteResult route(const net::WdmNetwork& net, net::NodeId s, net::NodeId t,
                    RouteFootprint* fp) const override;

  std::string name() const override { return "node-disjoint(ext)"; }

 private:
  net::ProtectPolicy policy_;
  /// Warm per-route scratches (stable-arena builder + warm-tree Suurballe),
  /// keyed by network uid like every router's pool.
  mutable RouteScratchPool scratch_;
};

}  // namespace wdm::rwa
