// Topology-level survivability audit.
//
// A request (s, t) can be given a fiber-disjoint backup iff s and t lie in
// the same 2-edge-connected component of the *undirected* fiber plant —
// checked in O(1) per pair after one O(n + m) bridge pass. This is the
// fast-fail gate in front of the (much more expensive) routing pipeline,
// and the basis of the survivability audit example.
//
// Note on disjointness notions: the §3 routers deliver *directed*-edge-
// disjoint pairs, which may traverse the same duplex fiber in opposite
// directions; a physical fiber cut takes out both directions at once. The
// `fiber_disjoint` predicate checks the stronger property given the duplex
// pairing.
#pragma once

#include <span>

#include "graph/bridges.hpp"
#include "wdm/semilightpath.hpp"

namespace wdm::rwa {

struct ProtectabilityReport {
  long long protectable_pairs = 0;
  long long total_pairs = 0;  // ordered (s, t), s != t
  int undirected_bridges = 0;
  int two_edge_components = 0;

  double fraction() const {
    return total_pairs ? static_cast<double>(protectable_pairs) /
                             static_cast<double>(total_pairs)
                       : 0.0;
  }
};

/// Full-topology audit: which fraction of (s, t) pairs admits a
/// fiber-disjoint protected route at all (capacity aside)?
ProtectabilityReport audit_protectability(const graph::Digraph& physical);

/// O(1) per-request gate after find_bridges().
inline bool protectable(const graph::BridgeAnalysis& analysis,
                        graph::NodeId s, graph::NodeId t) {
  return analysis.two_edge_connected(s, t);
}

/// True when the two semilightpaths share no *fiber*: no common directed
/// edge and no antiparallel pair under `reverse_of` (empty = directed-edge
/// disjointness only, the paper's notion).
bool fiber_disjoint(const net::Semilightpath& a, const net::Semilightpath& b,
                    std::span<const graph::EdgeId> reverse_of);

}  // namespace wdm::rwa
