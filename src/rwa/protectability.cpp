#include "rwa/protectability.hpp"

#include <unordered_set>
#include <vector>

#include "support/check.hpp"

namespace wdm::rwa {

ProtectabilityReport audit_protectability(const graph::Digraph& physical) {
  const graph::BridgeAnalysis analysis = graph::find_bridges(physical);
  ProtectabilityReport report;
  report.undirected_bridges = analysis.num_bridges;
  report.two_edge_components = analysis.num_components;

  // Pairs are protectable iff they share a 2-edge-connected component;
  // count via component sizes.
  std::vector<long long> size(static_cast<std::size_t>(analysis.num_components),
                              0);
  for (graph::NodeId v = 0; v < physical.num_nodes(); ++v) {
    ++size[static_cast<std::size_t>(
        analysis.component[static_cast<std::size_t>(v)])];
  }
  const auto n = static_cast<long long>(physical.num_nodes());
  report.total_pairs = n * (n - 1);
  for (long long s : size) report.protectable_pairs += s * (s - 1);
  return report;
}

bool fiber_disjoint(const net::Semilightpath& a, const net::Semilightpath& b,
                    std::span<const graph::EdgeId> reverse_of) {
  std::unordered_set<graph::EdgeId> fibers;
  auto canonical = [&](graph::EdgeId e) {
    if (reverse_of.empty()) return e;
    const graph::EdgeId r = reverse_of[static_cast<std::size_t>(e)];
    return std::min(e, r);
  };
  for (const net::Hop& h : a.hops) fibers.insert(canonical(h.edge));
  for (const net::Hop& h : b.hops) {
    if (fibers.count(canonical(h.edge))) return false;
  }
  return true;
}

}  // namespace wdm::rwa
