// Classic wavelength-assignment policies along a fixed physical route —
// the decoupled "route first, assign second" scheme the paper argues
// against (§1), implemented as the baseline family:
//
//   first-fit   lowest-index available wavelength (the canonical default)
//   last-fit    highest-index
//   random      uniform over the available set
//   most-used   the wavelength busiest across the whole network (packs
//               wavelengths, preserving continuous corridors)
//   least-used  the emptiest wavelength (spreads load)
//
// All policies prefer wavelength *continuity*: the current wavelength is
// kept while it remains available; conversion (where the node's table
// allows it) is a fallback, chosen by the same policy among convertible
// targets. Returns a not-found path when the walk is blocked.
#pragma once

#include <vector>

#include "support/rng.hpp"
#include "wdm/semilightpath.hpp"

namespace wdm::rwa {

enum class WaPolicy {
  kFirstFit,
  kLastFit,
  kRandom,
  kMostUsed,
  kLeastUsed,
};

const char* wa_policy_name(WaPolicy policy);

/// Assigns wavelengths along `links` (a contiguous physical path). `rng` is
/// required for kRandom and ignored otherwise.
net::Semilightpath assign_wavelengths(const net::WdmNetwork& net,
                                      const std::vector<graph::EdgeId>& links,
                                      WaPolicy policy,
                                      support::Rng* rng = nullptr);

/// Allocation-free variant: `out->hops` is cleared (keeping capacity) and
/// refilled; `out->found` mirrors the return value. kFirstFit / kLastFit /
/// kRandom touch the heap only while hop capacity is still growing;
/// most/least-used still build their network-wide usage census per call.
bool assign_wavelengths_into(const net::WdmNetwork& net,
                             const std::vector<graph::EdgeId>& links,
                             WaPolicy policy, support::Rng* rng,
                             net::Semilightpath* out);

}  // namespace wdm::rwa
