#include "rwa/baselines.hpp"

#include <algorithm>

#include "graph/suurballe.hpp"
#include "rwa/layered_graph.hpp"
#include "support/check.hpp"

namespace wdm::rwa {

RouteResult UnprotectedRouter::route(const net::WdmNetwork& net, net::NodeId s,
                                     net::NodeId t) const {
  RouteResult result;
  net::Semilightpath p = optimal_semilightpath(net, s, t);
  if (!p.found) return result;
  result.found = true;
  result.route.found = true;
  result.route.primary = std::move(p);
  // No backup: route.backup stays not-found, which ProtectedRoute::feasible
  // rejects — the simulator treats unprotected routes specially.
  result.route.backup = net::Semilightpath::not_found();
  return result;
}

net::Semilightpath first_fit_assign(const net::WdmNetwork& net,
                                    const std::vector<graph::EdgeId>& links) {
  return assign_wavelengths(net, links, WaPolicy::kFirstFit);
}

RouteResult PhysicalFirstFitRouter::route(const net::WdmNetwork& net,
                                          net::NodeId s, net::NodeId t) const {
  RouteResult result;
  const auto& pg = net.graph();
  const auto m = static_cast<std::size_t>(pg.num_edges());
  std::vector<double> w(m, 0.0);
  std::vector<std::uint8_t> usable(m, 0);
  for (graph::EdgeId e = 0; e < pg.num_edges(); ++e) {
    if (net.available(e).empty()) continue;
    usable[static_cast<std::size_t>(e)] = 1;
    w[static_cast<std::size_t>(e)] = net.min_weight(e);
  }
  const graph::DisjointPair pair = graph::suurballe(pg, w, s, t, usable);
  if (!pair.found) return result;
  result.aux_cost = pair.total_cost();

  // The RNG (random policy only) is re-seeded per call to keep route()
  // const and deterministic for a given residual state.
  support::Rng rng(seed_ ^ (static_cast<std::uint64_t>(s) << 32) ^
                   static_cast<std::uint64_t>(t));
  net::Semilightpath p1 = assign_wavelengths(net, pair.first.edges, policy_, &rng);
  net::Semilightpath p2 =
      assign_wavelengths(net, pair.second.edges, policy_, &rng);
  if (!p1.found || !p2.found) return result;  // wavelength-blocked
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  result.found = true;
  result.route.found = true;
  result.route.primary = std::move(p1);
  result.route.backup = std::move(p2);
  return result;
}

RouteResult TwoStepRouter::route(const net::WdmNetwork& net, net::NodeId s,
                                 net::NodeId t) const {
  RouteResult result;
  net::Semilightpath p1 = optimal_semilightpath(net, s, t);
  if (!p1.found) return result;
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(net.num_links()), 1);
  for (const net::Hop& h : p1.hops) mask[static_cast<std::size_t>(h.edge)] = 0;
  net::Semilightpath p2 = optimal_semilightpath(net, s, t, mask);
  if (!p2.found) return result;
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  result.found = true;
  result.route.found = true;
  result.route.primary = std::move(p1);
  result.route.backup = std::move(p2);
  return result;
}

}  // namespace wdm::rwa
