#include "rwa/batch.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace wdm::rwa {

const char* batch_order_name(BatchOrder order) {
  switch (order) {
    case BatchOrder::kArrival: return "arrival";
    case BatchOrder::kShortestFirst: return "shortest-first";
    case BatchOrder::kLongestFirst: return "longest-first";
    case BatchOrder::kRandom: return "random";
  }
  return "?";
}

namespace {

/// All-targets BFS hop distances from `s`. Unreachable nodes get
/// kUnreachableHops, so under the stable hop sort they land after every
/// reachable request in kShortestFirst and before them in kLongestFirst.
std::vector<int> bfs_hops(const graph::Digraph& g, net::NodeId s) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()),
                        kUnreachableHops);
  std::queue<net::NodeId> q;
  dist[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const net::NodeId v = q.front();
    q.pop();
    for (graph::EdgeId e : g.out_edges(v)) {
      const net::NodeId w = g.head(e);
      if (dist[static_cast<std::size_t>(w)] == kUnreachableHops) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

/// Memoizes one all-targets BFS per distinct source across a batch — a
/// batch of k requests from r distinct sources costs r BFS passes, not k
/// (duplicate sources, the common case under hotspot traffic, are free).
class HopDistances {
 public:
  explicit HopDistances(const graph::Digraph& g) : g_(g) {}

  int operator()(net::NodeId s, net::NodeId t) {
    auto [it, inserted] = memo_.try_emplace(s);
    if (inserted) it->second = bfs_hops(g_, s);
    return it->second[static_cast<std::size_t>(t)];
  }

 private:
  const graph::Digraph& g_;
  std::unordered_map<net::NodeId, std::vector<int>> memo_;
};

}  // namespace

std::vector<std::size_t> batch_order_permutation(
    const net::WdmNetwork& net, const std::vector<BatchRequest>& batch,
    BatchOrder order, support::Rng* rng) {
  std::vector<std::size_t> perm(batch.size());
  std::iota(perm.begin(), perm.end(), 0);
  switch (order) {
    case BatchOrder::kArrival:
      break;
    case BatchOrder::kShortestFirst:
    case BatchOrder::kLongestFirst: {
      HopDistances hop_distance(net.graph());
      std::vector<int> hops(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        hops[i] = hop_distance(batch[i].s, batch[i].t);
      }
      std::stable_sort(perm.begin(), perm.end(),
                       [&](std::size_t a, std::size_t b) {
                         return order == BatchOrder::kShortestFirst
                                    ? hops[a] < hops[b]
                                    : hops[a] > hops[b];
                       });
      break;
    }
    case BatchOrder::kRandom:
      WDM_CHECK_MSG(rng != nullptr, "random ordering needs an RNG");
      rng->shuffle(std::span<std::size_t>(perm));
      break;
  }
  return perm;
}

namespace detail {

bool commit_route(net::WdmNetwork& net, const RouteResult& r, std::size_t i,
                  BatchOutcome& out) {
  if (r.found && r.route.feasible(net)) {
    r.route.reserve_in(net);
    out.routes[i] = r.route;
    ++out.accepted;
    out.total_cost += r.route.total_cost(net);
    return true;
  }
  ++out.dropped;
  return false;
}

}  // namespace detail

BatchOutcome provision_batch(net::WdmNetwork& net, const Router& router,
                             const std::vector<BatchRequest>& batch,
                             BatchOrder order, support::Rng* rng) {
  BatchOutcome out;
  out.routes.resize(batch.size());
  for (std::size_t i : batch_order_permutation(net, batch, order, rng)) {
    const BatchRequest& req = batch[i];
    detail::commit_route(net, router.route(net, req.s, req.t), i, out);
  }
  out.final_network_load = net.network_load();
  return out;
}

void release_batch(net::WdmNetwork& net, const BatchOutcome& outcome) {
  for (const auto& route : outcome.routes) {
    if (route.has_value()) route->release_in(net);
  }
}

}  // namespace wdm::rwa
