#include "rwa/srlg.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/yen.hpp"
#include "rwa/layered_graph.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::rwa {

namespace {

/// Physical links traversed by `p`, deduplicated.
std::vector<graph::EdgeId> projected_links(const AuxGraph& aux,
                                           const graph::Path& p) {
  std::vector<graph::EdgeId> links = aux.project(p);
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

/// Marks every physical link that conflicts with `links` under SRLG
/// semantics: the links themselves plus any link sharing a group with one.
std::vector<std::uint8_t> conflict_links(const net::WdmNetwork& net,
                                         std::span<const graph::EdgeId> links) {
  std::vector<std::uint8_t> blocked(
      static_cast<std::size_t>(net.num_links()), 0);
  std::vector<std::uint8_t> group_hit(
      static_cast<std::size_t>(net.num_srlgs()), 0);
  for (graph::EdgeId e : links) {
    blocked[static_cast<std::size_t>(e)] = 1;
    for (int g : net.srlgs_of_link(e)) {
      group_hit[static_cast<std::size_t>(g)] = 1;
    }
  }
  for (graph::EdgeId f = 0; f < net.num_links(); ++f) {
    if (blocked[static_cast<std::size_t>(f)]) continue;
    for (int g : net.srlgs_of_link(f)) {
      if (group_hit[static_cast<std::size_t>(g)]) {
        blocked[static_cast<std::size_t>(f)] = 1;
        break;
      }
    }
  }
  return blocked;
}

bool aux_paths_srlg_disjoint(const net::WdmNetwork& net, const AuxGraph& aux,
                             const graph::Path& a, const graph::Path& b) {
  const std::vector<graph::EdgeId> la = projected_links(aux, a);
  const std::vector<std::uint8_t> blocked = conflict_links(net, la);
  for (graph::EdgeId e : aux.project(b)) {
    if (blocked[static_cast<std::size_t>(e)]) return false;
  }
  return true;
}

}  // namespace

SrlgPairResult srlg_disjoint_pair(const net::WdmNetwork& net,
                                  const AuxGraph& aux,
                                  const SrlgPairOptions& opt) {
  SrlgPairResult out;
  const graph::DisjointPair base =
      graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second);
  if (!base.found) {
    // No edge-disjoint pair ⇒ a fortiori no SRLG-disjoint pair.
    out.exhaustive = true;
    return out;
  }
  if (net.num_srlgs() == 0 ||
      aux_paths_srlg_disjoint(net, aux, base.first, base.second)) {
    // The minimum over edge-disjoint pairs is a lower bound on the minimum
    // over SRLG-disjoint pairs; being itself SRLG-disjoint, it is optimal.
    out.pair = base;
    out.exhaustive = true;
    return out;
  }
  WDM_TEL_COUNT("rwa.srlg.conflict_searches");

  // Conflict-set search: for each candidate primary (Yen, nondecreasing
  // cost), mask its own arcs plus every link arc in SRLG conflict with it,
  // and take the cheapest surviving backup.
  graph::KShortestPathEnumerator yen(aux.g, aux.w, aux.s_prime, aux.t_second);
  std::vector<std::uint8_t> arc_enabled;
  double best = graph::kInf;
  for (int k = 0; k < opt.max_primary_candidates; ++k) {
    const std::optional<graph::Path> primary = yen.next();
    if (!primary) {
      out.exhaustive = true;  // every simple auxiliary primary was tried
      break;
    }
    if (primary->cost >= best) {
      // Candidates arrive in nondecreasing cost: no later primary can
      // improve on the best total, so the search is closed.
      out.exhaustive = true;
      break;
    }
    const std::vector<graph::EdgeId> plinks = projected_links(aux, *primary);
    const std::vector<std::uint8_t> blocked = conflict_links(net, plinks);
    arc_enabled.assign(static_cast<std::size_t>(aux.g.num_edges()), 1);
    for (graph::EdgeId a = 0; a < aux.g.num_edges(); ++a) {
      const graph::EdgeId pe = aux.phys_edge_of_arc[static_cast<std::size_t>(a)];
      if (pe != graph::kInvalidEdge && blocked[static_cast<std::size_t>(pe)]) {
        arc_enabled[static_cast<std::size_t>(a)] = 0;
      }
    }
    // Masking the primary's own arcs (transit and hub arcs included) keeps
    // the pair arc-disjoint, which under the node-protection gadget also
    // preserves internal node-disjointness.
    for (graph::EdgeId a : primary->edges) {
      arc_enabled[static_cast<std::size_t>(a)] = 0;
    }
    const graph::Path backup = graph::shortest_path(
        aux.g, aux.w, aux.s_prime, aux.t_second, arc_enabled);
    if (backup.found && primary->cost + backup.cost < best) {
      best = primary->cost + backup.cost;
      out.pair.first = *primary;
      out.pair.second = backup;
      out.pair.found = true;
    }
  }
  WDM_TEL_COUNT_N("rwa.srlg.candidates", static_cast<long long>(yen.emitted()));
  return out;
}

RouteResult route_partial(const net::WdmNetwork& net, net::NodeId s,
                          net::NodeId t, double threshold) {
  WDM_TEL_COUNT("rwa.partial.attempts");
  RouteResult result;
  result.route.policy = net::ProtectPolicy::partial(threshold);

  net::Semilightpath primary = optimal_semilightpath(net, s, t);
  if (!primary.found) {
    WDM_TEL_COUNT("rwa.partial.blocked");
    return result;
  }

  std::vector<graph::EdgeId> risky;
  for (const net::Hop& h : primary.hops) {
    if (net.link_failure_probability(h.edge) > threshold) {
      risky.push_back(h.edge);
    }
  }
  if (risky.empty()) {
    // Nothing on the primary is failure-prone enough: accept unprotected.
    WDM_TEL_COUNT("rwa.partial.unprotected");
    result.found = true;
    result.route.found = true;
    result.route.primary = std::move(primary);
    result.route.backup = net::Semilightpath::not_found();
    return result;
  }

  // The backup must survive the failure of any risky group: forbid the
  // risky links and everything sharing an SRLG with them.
  const std::vector<std::uint8_t> blocked = conflict_links(net, risky);
  std::vector<std::uint8_t> enabled(blocked.size());
  std::vector<graph::EdgeId> avoid;
  for (std::size_t e = 0; e < blocked.size(); ++e) {
    enabled[e] = blocked[e] ? 0 : 1;
    if (blocked[e]) avoid.push_back(static_cast<graph::EdgeId>(e));
  }

  // Safe links may be shared with the primary, but never the same (e, λ)
  // channel — search against a scratch copy with the primary provisioned.
  net::WdmNetwork scratch = net;
  primary.reserve_in(scratch);
  net::Semilightpath backup = optimal_semilightpath(scratch, s, t, enabled);
  if (!backup.found) {
    // A risky segment that cannot be covered blocks the request, exactly
    // like an unprotectable request under full protection.
    WDM_TEL_COUNT("rwa.partial.blocked");
    return result;
  }
  WDM_TEL_COUNT("rwa.partial.protected");
  result.found = true;
  result.route.found = true;
  result.route.primary = std::move(primary);
  result.route.backup = std::move(backup);
  result.route.avoid = std::move(avoid);
  WDM_DCHECK(result.route.feasible(net));
  return result;
}

}  // namespace wdm::rwa
