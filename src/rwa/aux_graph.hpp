// The paper's auxiliary graphs: G' (§3.3.1), G_c (§4.1) and G_rc (§4.2).
//
// All three share one topology recipe over the residual network:
//   * every usable physical link e = <u,v> contributes two *edge-nodes*,
//     u_out^e and v_in^e, joined by a "link arc" u_out^e -> v_in^e;
//   * at every node v, a "transit arc" v_in^e -> v_out^e' exists iff some
//     λ ∈ Λ_avail(e) can be converted at v into some λ' ∈ Λ_avail(e');
//   * hub nodes s' and t'' attach to s's outgoing / t's incoming edge-nodes
//     with zero-weight arcs.
// They differ in which links qualify and how arcs are weighted:
//   G'   — all links with Λ_avail ≠ ∅; link arc = mean traversal cost over
//          Λ_avail(e); transit arc = mean allowed conversion cost.
//   G_c  — only links with load U(e)/N(e) < ϑ; link arc = a^((U+1)/N) −
//          a^(U/N) (exponential load penalty); transit arcs weight 0.
//   G_rc — same ϑ filter as G_c; link arc = Σ_{λ∈Λ_avail} w(e,λ) / N(e)
//          (the paper's formula — note it divides by N(e), not |Λ_avail(e)|;
//          we implement it as written and flag the discrepancy here);
//          transit arc = mean allowed conversion cost, as in G'.
//
// Because each physical link owns exactly one link arc, edge-disjoint paths
// in the auxiliary graph project to edge-disjoint link sets in G — the fact
// Lemma 2 rests on.
#pragma once

#include <span>

#include "graph/digraph.hpp"
#include "graph/path.hpp"
#include "wdm/network.hpp"

namespace wdm::rwa {

enum class AuxWeighting {
  kCost,              // G'  (§3.3.1)
  kLoadExponential,   // G_c (§4.1)
  kCostLoadFiltered,  // G_rc (§4.2)
};

struct AuxGraphOptions {
  AuxWeighting weighting = AuxWeighting::kCost;
  /// Load threshold ϑ for G_c / G_rc: links with U(e)/N(e) >= ϑ are dropped.
  /// Ignored by G'.
  double theta = 1.0;
  /// Make the ϑ filter inclusive (keep links with load == ϑ). The paper's
  /// filter is strict; the inclusive variant lets the exact-threshold oracle
  /// probe "links of load <= L" without floating-point epsilon games.
  bool include_at_threshold = false;
  /// The exponent base a > 1 of the G_c load penalty.
  double load_base = 2.0;
  /// Optional physical-subgraph restriction composed with the other filters.
  std::span<const std::uint8_t> link_enabled = {};

  /// Ablation knob for G_rc: the paper's link weight divides the summed
  /// available-wavelength costs by N(e); `true` divides by |Λ_avail(e)|
  /// instead (a true mean, removing the discount partially-loaded links get
  /// under the paper's formula). See bench_ablations.
  bool grc_mean_over_available = false;

  /// Node-protection gadget (extension beyond the paper): route all transit
  /// at an intermediate physical node through a single hub arc, so
  /// edge-disjoint auxiliary paths are additionally *internally
  /// node-disjoint* in G — protecting single node failures as well (§1's
  /// stronger survivability class). The hub arc carries the node-level mean
  /// conversion cost (exact under the §3.3 full-conversion assumption;
  /// with restricted tables it relaxes per-pair convertibility to per-node).
  bool protect_nodes = false;
};

struct AuxGraph {
  graph::Digraph g;
  std::vector<double> w;
  graph::NodeId s_prime = graph::kInvalidNode;
  graph::NodeId t_second = graph::kInvalidNode;

  /// Physical link that each aux *arc* traverses (kInvalidEdge for transit
  /// and hub arcs).
  std::vector<graph::EdgeId> phys_edge_of_arc;
  /// Physical link each aux *node* is an edge-node of (kInvalidEdge for the
  /// two hubs); `is_in_node` distinguishes v_in^e from u_out^e.
  std::vector<graph::EdgeId> phys_edge_of_node;
  std::vector<std::uint8_t> is_in_node;

  int num_edge_nodes = 0;
  int num_link_arcs = 0;
  int num_transit_arcs = 0;

  /// Physical links traversed by an aux path, in order.
  std::vector<graph::EdgeId> project(const graph::Path& p) const;

  /// Enabled-mask over physical links containing exactly the projection of
  /// `p` — the induced subgraph G_i of §3.3.2.
  std::vector<std::uint8_t> induced_link_mask(const graph::Path& p,
                                              graph::EdgeId num_links) const;
};

/// Builds the auxiliary graph for a query s -> t over the current residual
/// network.
AuxGraph build_aux_graph(const net::WdmNetwork& net, net::NodeId s,
                         net::NodeId t, const AuxGraphOptions& opt = {});

/// Mean allowed conversion cost at v between Λ_avail(e) and Λ_avail(e'):
/// Σ c_v(λa, λb) / K_v over allowed pairs, K_v = number of allowed pairs.
/// Returns false when no pair is convertible (no transit arc).
bool mean_conversion_cost(const net::WdmNetwork& net, net::NodeId v,
                          graph::EdgeId in_link, graph::EdgeId out_link,
                          double* mean_out);

}  // namespace wdm::rwa
