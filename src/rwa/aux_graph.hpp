// The paper's auxiliary graphs: G' (§3.3.1), G_c (§4.1) and G_rc (§4.2).
//
// All three share one topology recipe over the residual network:
//   * every usable physical link e = <u,v> contributes two *edge-nodes*,
//     u_out^e and v_in^e, joined by a "link arc" u_out^e -> v_in^e;
//   * at every node v, a "transit arc" v_in^e -> v_out^e' exists iff some
//     λ ∈ Λ_avail(e) can be converted at v into some λ' ∈ Λ_avail(e');
//   * hub nodes s' and t'' attach to s's outgoing / t's incoming edge-nodes
//     with zero-weight arcs.
// They differ in which links qualify and how arcs are weighted:
//   G'   — all links with Λ_avail ≠ ∅; link arc = mean traversal cost over
//          Λ_avail(e); transit arc = mean allowed conversion cost.
//   G_c  — only links with load U(e)/N(e) < ϑ; link arc = a^((U+1)/N) −
//          a^(U/N) (exponential load penalty); transit arcs weight 0.
//   G_rc — same ϑ filter as G_c; link arc = Σ_{λ∈Λ_avail} w(e,λ) / N(e)
//          (the paper's formula — note it divides by N(e), not |Λ_avail(e)|;
//          we implement it as written and flag the discrepancy here);
//          transit arc = mean allowed conversion cost, as in G'.
//
// Because each physical link owns exactly one link arc, edge-disjoint paths
// in the auxiliary graph project to edge-disjoint link sets in G — the fact
// Lemma 2 rests on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/path.hpp"
#include "graph/suurballe_warm.hpp"
#include "wdm/network.hpp"

namespace wdm::rwa {

enum class AuxWeighting {
  kCost,              // G'  (§3.3.1)
  kLoadExponential,   // G_c (§4.1)
  kCostLoadFiltered,  // G_rc (§4.2)
};

struct AuxGraphOptions {
  AuxWeighting weighting = AuxWeighting::kCost;
  /// Load threshold ϑ for G_c / G_rc: links with U(e)/N(e) >= ϑ are dropped.
  /// Ignored by G'.
  double theta = 1.0;
  /// Make the ϑ filter inclusive (keep links with load == ϑ). The paper's
  /// filter is strict; the inclusive variant lets the exact-threshold oracle
  /// probe "links of load <= L" without floating-point epsilon games.
  bool include_at_threshold = false;
  /// The exponent base a > 1 of the G_c load penalty.
  double load_base = 2.0;
  /// Optional physical-subgraph restriction composed with the other filters.
  std::span<const std::uint8_t> link_enabled = {};

  /// Ablation knob for G_rc: the paper's link weight divides the summed
  /// available-wavelength costs by N(e); `true` divides by |Λ_avail(e)|
  /// instead (a true mean, removing the discount partially-loaded links get
  /// under the paper's formula). See bench_ablations.
  bool grc_mean_over_available = false;

  /// Stable-arena ("universe") layout — the continental-scale hot path
  /// (ROADMAP item 4). Instead of compacting the graph to currently-usable
  /// links, the builder materializes every structural arc the topology can
  /// ever need — node ids computed from the link id (u_out^e = 2e,
  /// v_in^e = 2e+1), one link arc per physical link, one transit arc per
  /// (in-link, out-link) pair — finalizes the adjacency into CSR once, and
  /// thereafter every rebuild only *re-weights* arcs: disabled arcs carry
  /// +inf, and only arcs whose link_revision / conversion_revision moved
  /// (plus the O(deg) s'/t'' wiring on a query change) are touched. Weights
  /// of enabled arcs are bit-identical to the compacted layout, +inf arcs
  /// are unreachable under Dijkstra's strict-improvement relaxation, so
  /// shortest paths, Suurballe pairs, and projections agree with the
  /// compacted graph; node/arc *ids* differ, which is why this is opt-in
  /// rather than the default (structure-pinning tests use the compact form).
  bool stable_arena = false;

  /// Node-protection gadget (extension beyond the paper): route all transit
  /// at an intermediate physical node through a single hub arc, so
  /// edge-disjoint auxiliary paths are additionally *internally
  /// node-disjoint* in G — protecting single node failures as well (§1's
  /// stronger survivability class). The hub arc carries the node-level mean
  /// conversion cost (exact under the §3.3 full-conversion assumption;
  /// with restricted tables it relaxes per-pair convertibility to per-node).
  bool protect_nodes = false;
};

struct AuxGraph {
  graph::Digraph g;
  std::vector<double> w;
  graph::NodeId s_prime = graph::kInvalidNode;
  graph::NodeId t_second = graph::kInvalidNode;

  /// Physical link that each aux *arc* traverses (kInvalidEdge for transit
  /// and hub arcs).
  std::vector<graph::EdgeId> phys_edge_of_arc;
  /// Physical link each aux *node* is an edge-node of (kInvalidEdge for the
  /// two hubs); `is_in_node` distinguishes v_in^e from u_out^e.
  std::vector<graph::EdgeId> phys_edge_of_node;
  std::vector<std::uint8_t> is_in_node;

  int num_edge_nodes = 0;
  int num_link_arcs = 0;
  int num_transit_arcs = 0;

  /// Physical links traversed by an aux path, in order.
  std::vector<graph::EdgeId> project(const graph::Path& p) const;
  /// Allocation-free variant: clears `*out` (keeping capacity) and appends.
  void project_into(const graph::Path& p,
                    std::vector<graph::EdgeId>* out) const;

  /// Enabled-mask over physical links containing exactly the projection of
  /// `p` — the induced subgraph G_i of §3.3.2.
  std::vector<std::uint8_t> induced_link_mask(const graph::Path& p,
                                              graph::EdgeId num_links) const;
  /// Allocation-free variant: resizes `*out` to num_links and rewrites it.
  void induced_link_mask_into(const graph::Path& p, graph::EdgeId num_links,
                              std::vector<std::uint8_t>* out) const;
};

/// Builds the auxiliary graph for a query s -> t over the current residual
/// network. One-shot convenience wrapper over AuxGraphBuilder (cold arena,
/// cold caches) — the reference construction the differential tests compare
/// the reusable builder against.
AuxGraph build_aux_graph(const net::WdmNetwork& net, net::NodeId s,
                         net::NodeId t, const AuxGraphOptions& opt = {});

/// Mean allowed conversion cost at v between Λ_avail(e) and Λ_avail(e'):
/// Σ c_v(λa, λb) / K_v over allowed pairs, K_v = number of allowed pairs.
/// Returns false when no pair is convertible (no transit arc).
bool mean_conversion_cost(const net::WdmNetwork& net, net::NodeId v,
                          graph::EdgeId in_link, graph::EdgeId out_link,
                          double* mean_out);

/// Reusable auxiliary-graph builder — the fast path for every per-request
/// construction of G' / G_c / G_rc (§3.3.1, §4.1, §4.2).
///
/// A cold build_aux_graph call pays twice on every request: it reallocates
/// the whole graph (nodes, arcs, weights, adjacency), and it redoes the
/// O(|Λ|²) wavelength-pair scan of mean_conversion_cost for every
/// (in-link, out-link) pair at every node. The builder keeps both across
/// calls:
///
///   * arena reuse — the AuxGraph (and its Digraph adjacency buffers),
///     edge-node maps, and weight vectors are cleared in place, so a
///     steady-state rebuild allocates nothing;
///   * conversion-mean caching — mean_conversion_cost results are memoized
///     per (node, in-link, out-link), validated against the network's
///     link_revision / conversion_revision counters (see WdmNetwork's
///     cache-invalidation contract): reserve/release/fail on a link only
///     invalidates the entries that touch it;
///   * per-link available-cost sums (the G' / G_rc link-arc weights) are
///     memoized the same way.
///
/// The produced graph is arc-for-arc identical — topology, node ids, arc
/// order, and bit-exact weights — to a cold build_aux_graph of the same
/// query, which tests/fuzz/test_fuzz_aux_builder.cpp enforces under
/// randomized churn.
///
/// Not thread-safe; route() implementations that may run concurrently lease
/// one from an AuxGraphBuilderPool instead of sharing an instance.
class AuxGraphBuilder {
 public:
  AuxGraphBuilder() = default;

  /// Builds the graph for (s, t) into the internal arena and returns it.
  /// The reference is invalidated by the next build/build_batch/take_last
  /// call. Binding follows the network's uid(): the first build against a
  /// different WdmNetwork object drops every cache automatically.
  const AuxGraph& build(const net::WdmNetwork& net, net::NodeId s,
                        net::NodeId t, const AuxGraphOptions& opt = {});

  /// Batch entry point: builds the graph for each (s, t) query in order and
  /// invokes `fn(i, aux)` after each. Arenas and conversion-mean caches stay
  /// warm across the whole batch even when `fn` reserves or releases
  /// wavelengths between queries — the provision_batch / simulator pattern.
  void build_batch(const net::WdmNetwork& net,
                   std::span<const std::pair<net::NodeId, net::NodeId>> queries,
                   const AuxGraphOptions& opt,
                   const std::function<void(std::size_t, const AuxGraph&)>& fn);

  /// Moves the last-built graph out of the arena (donating its buffers);
  /// the next build starts from empty vectors but keeps the caches.
  AuxGraph take_last();

  /// Drops every cache and the network binding; arena capacity is kept.
  void invalidate();

  /// uid() of the network the caches are currently bound to (0 = unbound).
  /// AuxGraphBuilderPool keys leases on this so a caller gets back a builder
  /// whose caches are warm for *its* network, not whichever network leased
  /// last — the difference between a warm rebuild and a full rebind when
  /// snapshot copies and the live network interleave (ParallelBatchEngine).
  std::uint64_t bound_uid() const { return net_uid_; }

  /// Monotone counter bumped every time the stable-arena *structure* (node
  /// and arc tables) is materialized. While it holds still, arc ids in the
  /// universe graph keep their meaning across builds — the invariant that
  /// lets a graph::SuurballeEngine keep warm trees against the arena. A
  /// caller pairing this builder with such an engine must invalidate() the
  /// engine whenever this value moves (RouteScratch does).
  std::uint64_t stable_structure_generation() const { return uni_gen_; }

  /// Dirty hints for a paired graph::SuurballeEngine: every weight the
  /// stable-arena path has patched since the current epoch began, as arc
  /// spans in append order. The epoch moves whenever span coverage lapses
  /// (structure rebuild, full repatch, log overflow) — consumers holding a
  /// cursor from an older epoch must fall back to a full diff. Capture the
  /// feed *after* build(); it then covers exactly the patches between the
  /// previous build and this one.
  graph::WeightPatchFeed patch_feed() const {
    return {patch_epoch_, std::span<const graph::WeightPatchSpan>(patch_log_)};
  }

  struct CacheStats {
    std::uint64_t builds = 0;
    std::uint64_t rebinds = 0;      // network changed -> full cache drop
    std::uint64_t conv_hits = 0;    // transit-arc mean served from cache
    std::uint64_t conv_misses = 0;  // recomputed via mean_conversion_cost
    std::uint64_t link_hits = 0;    // link-arc cost sum served from cache
    std::uint64_t link_misses = 0;
  };
  const CacheStats& stats() const { return stats_; }

 private:
  void bind(const net::WdmNetwork& net);
  /// Cached mean_conversion_cost for the transit pair at CSR slot `idx`.
  bool transit_mean(const net::WdmNetwork& net, net::NodeId v,
                    std::size_t idx, graph::EdgeId in_link,
                    graph::EdgeId out_link, double* mean_out);
  /// Cached Σ_{λ∈Λ_avail(e)} w(e, λ) and |Λ_avail(e)|.
  void link_costs(const net::WdmNetwork& net, graph::EdgeId e, double* sum,
                  int* count);

  // --- Stable-arena (universe) path; see AuxGraphOptions::stable_arena ----
  void build_stable(const net::WdmNetwork& net, net::NodeId s, net::NodeId t,
                    const AuxGraphOptions& opt);
  /// Materializes the full structural arc table and finalizes it into CSR.
  void stable_structure(const net::WdmNetwork& net, bool protect);
  bool stable_usable(const net::WdmNetwork& net, graph::EdgeId e,
                     const AuxGraphOptions& opt) const;
  /// Re-weights link arc e plus its s'/t'' wiring; maintains counters.
  void stable_patch_link(const net::WdmNetwork& net, graph::EdgeId e,
                         net::NodeId s, net::NodeId t,
                         const AuxGraphOptions& opt);
  /// Re-weights every transit structure at v (pair arcs; hub + fan arcs in
  /// protect mode); maintains the transit-arc counter.
  void stable_patch_node(const net::WdmNetwork& net, net::NodeId v,
                         net::NodeId s, net::NodeId t,
                         const AuxGraphOptions& opt);

  static constexpr std::uint64_t kNoRevision = ~std::uint64_t{0};

  // Network binding: caches are valid only for this exact object.
  std::uint64_t net_uid_ = 0;
  graph::NodeId bound_nodes_ = -1;
  graph::EdgeId bound_links_ = -1;

  // Transit-pair cache, CSR-indexed: the pair (i-th in-edge, j-th out-edge)
  // of node v lives at pair_base_[v] + i * out_degree(v) + j.
  std::vector<std::size_t> pair_base_;
  std::vector<std::uint64_t> pair_in_rev_;
  std::vector<std::uint64_t> pair_out_rev_;
  std::vector<std::uint64_t> pair_conv_rev_;
  std::vector<std::uint8_t> pair_has_;
  std::vector<double> pair_mean_;

  // Per-link available-cost cache.
  std::vector<std::uint64_t> link_rev_seen_;
  std::vector<double> link_sum_;
  std::vector<int> link_cnt_;

  // Arena.
  AuxGraph aux_;
  std::vector<graph::NodeId> out_node_;
  std::vector<graph::NodeId> in_node_;

  // Stable-arena state. Structure (node/arc ids) is a pure function of the
  // bound topology and the protect flag; weights are patched per build.
  bool uni_ready_ = false;
  bool uni_protect_ = false;
  std::uint64_t uni_gen_ = 0;       // bumped on every structure rebuild
  // Weight-patch log for engine dirty hints (see patch_feed()). Bounded by
  // patch_log_cap_: appends past it set the overflow flag and build_stable
  // ends the epoch, so the reserve in stable_structure is never exceeded.
  void log_patch(graph::EdgeId begin, graph::EdgeId count);
  std::vector<graph::WeightPatchSpan> patch_log_;
  std::uint64_t patch_epoch_ = 0;
  std::size_t patch_log_cap_ = 0;
  bool patch_overflow_ = false;
  bool uni_weights_valid_ = false;  // false until the first weight patch
  bool uni_had_mask_ = false;       // last build used a link_enabled mask
  AuxGraphOptions uni_opt_;         // options of the last weight patch
  net::NodeId uni_s_ = graph::kInvalidNode;
  net::NodeId uni_t_ = graph::kInvalidNode;
  std::uint64_t uni_net_rev_ = 0;   // revision() at last patch (fast skip)
  std::vector<std::uint64_t> uni_link_rev_;  // per-link revision last seen
  std::vector<std::uint64_t> uni_conv_rev_;  // per-node conversion revision
  std::vector<std::uint8_t> uni_usable_;     // usable(e) at last patch
  std::vector<int> uni_node_transit_;   // finite transit arcs contributed by v
  std::vector<graph::EdgeId> uni_fan_in_arc_;   // protect: arc v_in^e -> hub
  std::vector<graph::EdgeId> uni_fan_out_arc_;  // protect: arc hub -> u_out^e
  graph::EdgeId uni_hub_arc_base_ = 0;  // protect: hub arc of v = base + v
  graph::EdgeId uni_sprime_arc_base_ = 0;  // s' arc of link e = base + e
  graph::EdgeId uni_tsec_arc_base_ = 0;    // t'' arc of link e = base + e
  std::vector<std::uint8_t> uni_node_mark_;   // scratch: dedup changed nodes
  std::vector<net::NodeId> uni_changed_nodes_;  // scratch

  CacheStats stats_;
};

/// Thread-safe LIFO pool of builders. Router::route() is const but may run
/// concurrently (sim::replicate's parallel Monte Carlo); each call leases a
/// builder for its duration. A single-threaded caller therefore always gets
/// the same warm builder back, while concurrent callers each get their own.
class AuxGraphBuilderPool {
 public:
  class Lease {
   public:
    Lease(AuxGraphBuilderPool* pool, std::unique_ptr<AuxGraphBuilder> builder)
        : pool_(pool), builder_(std::move(builder)) {}
    Lease(Lease&& other) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease();

    AuxGraphBuilder& operator*() { return *builder_; }
    AuxGraphBuilder* operator->() { return builder_.get(); }
    AuxGraphBuilder* get() { return builder_.get(); }

   private:
    AuxGraphBuilderPool* pool_;
    std::unique_ptr<AuxGraphBuilder> builder_;
  };

  AuxGraphBuilderPool() = default;
  AuxGraphBuilderPool(const AuxGraphBuilderPool&) = delete;
  AuxGraphBuilderPool& operator=(const AuxGraphBuilderPool&) = delete;

  Lease lease();
  /// Keyed lease: prefers an idle builder already bound to `net` (warm
  /// caches), then an unbound one, then LIFO; allocates only when the pool
  /// is empty. Concurrent callers over distinct networks (speculation
  /// snapshots vs the live network) each keep their own warm builder instead
  /// of thrashing each other's caches through rebinds.
  Lease lease(const net::WdmNetwork& net);
  /// Builders currently parked in the pool (observability for tests).
  std::size_t idle_count() const;

 private:
  friend class Lease;
  void put(std::unique_ptr<AuxGraphBuilder> builder);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<AuxGraphBuilder>> idle_;
};

}  // namespace wdm::rwa
