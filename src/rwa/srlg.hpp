// SRLG-aware protected routing: the Suurballe stage strengthened from
// edge-disjoint to shared-risk-group-disjoint backups, plus the
// partial-protection mode (only failure-prone primary segments get backup
// coverage — the LP-relaxation-for-partial-path-protection viewpoint).
//
// SRLG-disjointness is strictly stronger than edge-disjointness, so the
// strengthened stage works on *conflict sets over the auxiliary-graph arcs*:
// for a candidate primary, every arc whose physical link is on the primary
// or shares an SRLG with a primary link is masked out before the backup
// search. Candidate primaries come from Yen's enumerator in nondecreasing
// cost; when the minimum edge-disjoint pair (plain Suurballe) happens to be
// SRLG-disjoint it is returned directly — which is also the optimality- and
// bit-for-bit-compatibility fast path: on a network with no SRLGs declared
// that branch always fires and the result is exactly plain Suurballe's.
#pragma once

#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/router.hpp"

namespace wdm::rwa {

struct SrlgPairOptions {
  /// Upper bound on Yen candidate primaries tried before giving up. The
  /// result is exact whenever the enumeration closes (see `exhaustive`).
  int max_primary_candidates = 32;
};

struct SrlgPairResult {
  /// The chosen pair of SRLG-disjoint auxiliary paths (found == false when
  /// none was identified within the candidate budget).
  graph::DisjointPair pair;
  /// True when the search *proved* its answer: either the candidate
  /// enumeration exhausted every simple auxiliary path, cost-monotonicity
  /// closed the search early, or no edge-disjoint pair exists at all (a
  /// fortiori no SRLG-disjoint one). The fuzz completeness oracle only
  /// judges blocked results that carry this flag.
  bool exhaustive = false;
};

/// Find_Two_Paths with SRLG conflict sets over `aux`'s arcs. Falls back to
/// (and is bit-for-bit identical with) plain Suurballe when the network
/// declares no SRLGs. Masks *every* arc of the candidate primary, so under
/// the node-protection gadget the returned pair stays internally
/// node-disjoint as well.
SrlgPairResult srlg_disjoint_pair(const net::WdmNetwork& net,
                                  const AuxGraph& aux,
                                  const SrlgPairOptions& opt = {});

/// Partial protection: route the primary by pure cost (Liang–Shen over the
/// full residual), then protect it only if some primary link has
/// link_failure_probability > threshold. The backup must avoid every risky
/// link and every link sharing an SRLG with one, and shares no (link, λ)
/// channel with the primary (safe links may be reused at other wavelengths).
/// A primary with no risky link is accepted unprotected; a risky primary
/// whose backup search fails is blocked. Shared by all four routers — in
/// this mode their objectives coincide on the primary by design.
RouteResult route_partial(const net::WdmNetwork& net, net::NodeId s,
                          net::NodeId t, double threshold);

}  // namespace wdm::rwa
