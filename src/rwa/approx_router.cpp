#include "rwa/approx_router.hpp"

#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/baselines.hpp"
#include "rwa/layered_graph.hpp"
#include "rwa/srlg.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::rwa {

void ApproxDisjointRouter::route_into(const net::WdmNetwork& net, net::NodeId s,
                                      net::NodeId t, RouteResult* out,
                                      RouteFootprint* fp) const {
  if (fp != nullptr) fp->mark_opaque();
  out->reset_keep_capacity();
  if (policy_.kind == net::ProtectKind::kPartial) {
    *out = route_partial(net, s, t, policy_.threshold);
    return;
  }
  WDM_TEL_COUNT("rwa.approx.attempts");
  WDM_TEL_SPAN(tel_span, "rwa.approx.route");
  support::telemetry::SplitTimer tel;
  out->route.policy = policy_;
  const bool srlg_path =
      policy_.kind == net::ProtectKind::kSrlg && net.num_srlgs() > 0;
  if (fp != nullptr && !srlg_path) {
    // G' is a pure function of the cost channel; everything downstream of
    // the pair reads only the induced masks, added below.
    fp->begin();
    fp->cost_semantics = true;
  }
  AuxGraphOptions opt;
  opt.weighting = AuxWeighting::kCost;
  opt.stable_arena = true;
  auto sc = scratch_.lease(net);
  const AuxGraph& aux = sc->builder.build(net, s, t, opt);
  sc->sync_suurballe_generation();
  tel.split(WDM_TEL_HIST("rwa.approx.aux_build_ns"),
            WDM_TEL_NAME("rwa.approx.aux_build"));

  if (srlg_path) {
    SrlgPairResult sp = srlg_disjoint_pair(net, aux);
    sc->pair = std::move(sp.pair);
    out->srlg_exhaustive = sp.exhaustive;
  } else {
    const auto& ws = sc->suurballe.stats();
    const auto builds0 = ws.tree_builds;
    const auto repairs0 = ws.tree_repairs;
    const auto hits0 = ws.tree_hits;
    const graph::WeightPatchFeed feed = sc->builder.patch_feed();
    sc->suurballe.solve_into(aux.g, aux.w, aux.s_prime, aux.t_second,
                             /*tree_key=*/static_cast<std::uint64_t>(s),
                             &sc->pair, &feed);
    WDM_TEL_COUNT_N("rwa.approx.warm_builds", ws.tree_builds - builds0);
    WDM_TEL_COUNT_N("rwa.approx.warm_repairs", ws.tree_repairs - repairs0);
    WDM_TEL_COUNT_N("rwa.approx.warm_hits", ws.tree_hits - hits0);
  }
  graph::DisjointPair& pair = sc->pair;
  tel.split(WDM_TEL_HIST("rwa.approx.suurballe_ns"),
            WDM_TEL_NAME("rwa.approx.suurballe"));
  if (!pair.found) {
    WDM_TEL_COUNT("rwa.approx.blocked");
    tel.total(WDM_TEL_HIST("rwa.approx.route_ns"));
    return;  // no two edge-disjoint routes exist in G'
  }
  out->aux_cost = pair.total_cost();

  // Projection + realization. With refinement (Lemma 2): per-subgraph
  // optimal semilightpath. Without: first-fit wavelength assignment along
  // the projected link sequence, written straight into the recycled result.
  net::Semilightpath& p1 = out->route.primary;
  net::Semilightpath& p2 = out->route.backup;
  if (refine_) {
    aux.induced_link_mask_into(pair.first, net.num_links(), &sc->mask1);
    aux.induced_link_mask_into(pair.second, net.num_links(), &sc->mask2);
    if (fp != nullptr && !fp->opaque) {
      fp->add_exact_mask(sc->mask1);
      fp->add_exact_mask(sc->mask2);
    }
    p1 = optimal_semilightpath(net, s, t, sc->mask1);
    p2 = optimal_semilightpath(net, s, t, sc->mask2);
  } else {
    aux.project_into(pair.first, &sc->links1);
    aux.project_into(pair.second, &sc->links2);
    if (fp != nullptr && !fp->opaque) {
      for (graph::EdgeId e : sc->links1) fp->add_exact_link(e);
      for (graph::EdgeId e : sc->links2) fp->add_exact_link(e);
    }
    assign_wavelengths_into(net, sc->links1, WaPolicy::kFirstFit, nullptr, &p1);
    assign_wavelengths_into(net, sc->links2, WaPolicy::kFirstFit, nullptr, &p2);
  }
  tel.split(WDM_TEL_HIST("rwa.approx.liang_shen_ns"),
            WDM_TEL_NAME("rwa.approx.liang_shen"));
  tel.total(WDM_TEL_HIST("rwa.approx.route_ns"));
  if (!p1.found || !p2.found) {
    // Outside assumption (i) a transit arc only certifies per-adjacent-pair
    // convertibility, not a consistent end-to-end wavelength assignment, so
    // the induced subgraph can be infeasible. Treat as blocked.
    WDM_TEL_COUNT("rwa.approx.blocked");
    return;
  }
  WDM_DCHECK(net::edge_disjoint(p1, p2));
  WDM_TEL_COUNT("rwa.approx.found");
  out->found = true;
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  out->route.found = true;
}

}  // namespace wdm::rwa
