#include "rwa/approx_router.hpp"

#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/baselines.hpp"
#include "rwa/layered_graph.hpp"
#include "rwa/srlg.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::rwa {

RouteResult ApproxDisjointRouter::route(const net::WdmNetwork& net,
                                        net::NodeId s, net::NodeId t,
                                        RouteFootprint* fp) const {
  if (fp != nullptr) fp->mark_opaque();
  if (policy_.kind == net::ProtectKind::kPartial) {
    return route_partial(net, s, t, policy_.threshold);
  }
  WDM_TEL_COUNT("rwa.approx.attempts");
  WDM_TEL_SPAN(tel_span, "rwa.approx.route");
  support::telemetry::SplitTimer tel;
  RouteResult result;
  result.route.policy = policy_;
  const bool srlg_path =
      policy_.kind == net::ProtectKind::kSrlg && net.num_srlgs() > 0;
  if (fp != nullptr && !srlg_path) {
    // G' is a pure function of the cost channel; everything downstream of
    // the pair reads only the induced masks, added below.
    fp->begin();
    fp->cost_semantics = true;
  }
  AuxGraphOptions opt;
  opt.weighting = AuxWeighting::kCost;
  auto builder = builders_.lease(net);
  const AuxGraph& aux = builder->build(net, s, t, opt);
  tel.split(WDM_TEL_HIST("rwa.approx.aux_build_ns"),
            WDM_TEL_NAME("rwa.approx.aux_build"));

  graph::DisjointPair pair;
  if (policy_.kind == net::ProtectKind::kSrlg && net.num_srlgs() > 0) {
    SrlgPairResult sp = srlg_disjoint_pair(net, aux);
    pair = std::move(sp.pair);
    result.srlg_exhaustive = sp.exhaustive;
  } else {
    pair = graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second);
  }
  tel.split(WDM_TEL_HIST("rwa.approx.suurballe_ns"),
            WDM_TEL_NAME("rwa.approx.suurballe"));
  if (!pair.found) {
    WDM_TEL_COUNT("rwa.approx.blocked");
    tel.total(WDM_TEL_HIST("rwa.approx.route_ns"));
    return result;  // no two edge-disjoint routes exist in G'
  }
  result.aux_cost = pair.total_cost();

  // Projection + realization. With refinement (Lemma 2): per-subgraph
  // optimal semilightpath. Without: first-fit wavelength assignment along
  // the projected link sequence.
  net::Semilightpath p1, p2;
  if (refine_) {
    const auto mask1 = aux.induced_link_mask(pair.first, net.num_links());
    const auto mask2 = aux.induced_link_mask(pair.second, net.num_links());
    if (fp != nullptr && !fp->opaque) {
      fp->add_exact_mask(mask1);
      fp->add_exact_mask(mask2);
    }
    p1 = optimal_semilightpath(net, s, t, mask1);
    p2 = optimal_semilightpath(net, s, t, mask2);
  } else {
    const auto links1 = aux.project(pair.first);
    const auto links2 = aux.project(pair.second);
    if (fp != nullptr && !fp->opaque) {
      for (graph::EdgeId e : links1) fp->add_exact_link(e);
      for (graph::EdgeId e : links2) fp->add_exact_link(e);
    }
    p1 = first_fit_assign(net, links1);
    p2 = first_fit_assign(net, links2);
  }
  tel.split(WDM_TEL_HIST("rwa.approx.liang_shen_ns"),
            WDM_TEL_NAME("rwa.approx.liang_shen"));
  tel.total(WDM_TEL_HIST("rwa.approx.route_ns"));
  if (!p1.found || !p2.found) {
    // Outside assumption (i) a transit arc only certifies per-adjacent-pair
    // convertibility, not a consistent end-to-end wavelength assignment, so
    // the induced subgraph can be infeasible. Treat as blocked.
    WDM_TEL_COUNT("rwa.approx.blocked");
    return result;
  }
  WDM_DCHECK(net::edge_disjoint(p1, p2));
  WDM_TEL_COUNT("rwa.approx.found");
  result.found = true;
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  result.route.primary = std::move(p1);
  result.route.backup = std::move(p2);
  result.route.found = true;
  return result;
}

}  // namespace wdm::rwa
