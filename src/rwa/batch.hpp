// Batch provisioning — §2's operating model verbatim: "the network accepts
// user connection requests periodically. At a given time interval, suppose
// a set of requests is given. The algorithm processes these requests one by
// one. Once a request is processed and there is a solution for it, the
// algorithm establishes the routes for it immediately. Otherwise, the
// request is dropped."
//
// The processing *order* within a batch is unspecified by the paper and
// materially changes acceptance under contention; the ordering policies
// here are the standard candidates, compared in bench_policies.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "rwa/router.hpp"
#include "support/rng.hpp"

namespace wdm::rwa {

struct BatchRequest {
  net::NodeId s = 0;
  net::NodeId t = 0;
  long id = 0;
  /// Telemetry trace id (0 = untraced). The simulator assigns the
  /// offered-request ordinal so batch spans join the request's trace tree.
  std::uint64_t trace = 0;
};

/// Hop value assigned to requests whose destination is unreachable from the
/// source. The stable hop sort therefore places them *after* every reachable
/// request under kShortestFirst and *before* them under kLongestFirst (where
/// they waste one route() attempt each but cannot reserve anything).
inline constexpr int kUnreachableHops = std::numeric_limits<int>::max();

enum class BatchOrder {
  kArrival,        // as given
  kShortestFirst,  // fewest physical hops (BFS distance) first
  kLongestFirst,   // farthest pairs first (they have the fewest options)
  kRandom,         // uniformly shuffled
};

const char* batch_order_name(BatchOrder order);

struct BatchOutcome {
  /// Indexed like the *input* batch (original order); nullopt = dropped.
  std::vector<std::optional<net::ProtectedRoute>> routes;
  int accepted = 0;
  int dropped = 0;
  double total_cost = 0.0;
  double final_network_load = 0.0;
};

/// Routes and reserves the batch against `net` (mutated: accepted routes
/// stay reserved). `rng` is required for kRandom ordering.
BatchOutcome provision_batch(net::WdmNetwork& net, const Router& router,
                             const std::vector<BatchRequest>& batch,
                             BatchOrder order = BatchOrder::kArrival,
                             support::Rng* rng = nullptr);

/// The processing permutation `provision_batch` uses for `order` — input
/// indices in the order requests are routed. kRandom consumes exactly one
/// shuffle from `rng` (required then, ignored otherwise), so serial and
/// parallel callers seeding identical RNGs draw identical permutations.
std::vector<std::size_t> batch_order_permutation(
    const net::WdmNetwork& net, const std::vector<BatchRequest>& batch,
    BatchOrder order, support::Rng* rng = nullptr);

namespace detail {

/// The single accept/drop decision of §2, shared verbatim by the serial loop
/// and the parallel engine's commit thread: a route is accepted iff found and
/// feasible against `net`'s *current* residual state; accepted routes are
/// reserved immediately and recorded at input index `i`. Returns acceptance.
bool commit_route(net::WdmNetwork& net, const RouteResult& r, std::size_t i,
                  BatchOutcome& out);

}  // namespace detail

/// Releases every route a batch reserved (undo helper for sweeps).
void release_batch(net::WdmNetwork& net, const BatchOutcome& outcome);

}  // namespace wdm::rwa
