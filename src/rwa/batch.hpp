// Batch provisioning — §2's operating model verbatim: "the network accepts
// user connection requests periodically. At a given time interval, suppose
// a set of requests is given. The algorithm processes these requests one by
// one. Once a request is processed and there is a solution for it, the
// algorithm establishes the routes for it immediately. Otherwise, the
// request is dropped."
//
// The processing *order* within a batch is unspecified by the paper and
// materially changes acceptance under contention; the ordering policies
// here are the standard candidates, compared in bench_policies.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "rwa/router.hpp"
#include "support/rng.hpp"

namespace wdm::rwa {

struct BatchRequest {
  net::NodeId s = 0;
  net::NodeId t = 0;
  long id = 0;
};

/// Hop value assigned to requests whose destination is unreachable from the
/// source. The stable hop sort therefore places them *after* every reachable
/// request under kShortestFirst and *before* them under kLongestFirst (where
/// they waste one route() attempt each but cannot reserve anything).
inline constexpr int kUnreachableHops = std::numeric_limits<int>::max();

enum class BatchOrder {
  kArrival,        // as given
  kShortestFirst,  // fewest physical hops (BFS distance) first
  kLongestFirst,   // farthest pairs first (they have the fewest options)
  kRandom,         // uniformly shuffled
};

const char* batch_order_name(BatchOrder order);

struct BatchOutcome {
  /// Indexed like the *input* batch (original order); nullopt = dropped.
  std::vector<std::optional<net::ProtectedRoute>> routes;
  int accepted = 0;
  int dropped = 0;
  double total_cost = 0.0;
  double final_network_load = 0.0;
};

/// Routes and reserves the batch against `net` (mutated: accepted routes
/// stay reserved). `rng` is required for kRandom ordering.
BatchOutcome provision_batch(net::WdmNetwork& net, const Router& router,
                             const std::vector<BatchRequest>& batch,
                             BatchOrder order = BatchOrder::kArrival,
                             support::Rng* rng = nullptr);

/// Releases every route a batch reserved (undo helper for sweeps).
void release_batch(net::WdmNetwork& net, const BatchOutcome& outcome);

}  // namespace wdm::rwa
