// Baseline routing policies the benches compare the paper's algorithms
// against. These represent what the paper's related-work section describes:
// protection-free routing, physical-topology routing with first-fit
// wavelength assignment bolted on afterwards ([11]-style, wavelength-blind),
// and the greedy two-step heuristic Suurballe exists to beat.
#pragma once

#include "rwa/router.hpp"
#include "rwa/wavelength_assignment.hpp"

namespace wdm::rwa {

/// No protection: just the optimal primary semilightpath, no backup.
/// (Used by the restoration bench's "passive" arm, which computes a backup
/// only after a failure hits.)
class UnprotectedRouter final : public Router {
 public:
  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override;

  std::string name() const override { return "unprotected"; }
};

/// Wavelength-blind baseline: Suurballe on the *physical* graph weighted by
/// the cheapest available wavelength per link, then policy-driven
/// wavelength assignment along each path (wavelength_assignment.hpp; the
/// default is the classic first-fit). This is the decoupled
/// route-then-assign scheme the paper argues against: it ignores conversion
/// costs when routing and may be blocked by wavelength conflicts the
/// layered search would avoid.
class PhysicalFirstFitRouter final : public Router {
 public:
  explicit PhysicalFirstFitRouter(WaPolicy policy = WaPolicy::kFirstFit,
                                  std::uint64_t rng_seed = 1)
      : policy_(policy), seed_(rng_seed) {}

  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override;

  std::string name() const override {
    return std::string("phys-suurballe+") + wa_policy_name(policy_);
  }

 private:
  WaPolicy policy_;
  std::uint64_t seed_;
};

/// Greedy two-step on semilightpaths: take the optimal semilightpath as the
/// primary, delete its links, take the optimal semilightpath of the rest as
/// the backup. Trap topologies defeat it (bench E10).
class TwoStepRouter final : public Router {
 public:
  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override;

  std::string name() const override { return "greedy-two-step"; }
};

/// First-fit wavelength assignment along a fixed physical path. Exposed for
/// tests and the restoration bench. Returns a not-found path when assignment
/// is blocked.
net::Semilightpath first_fit_assign(const net::WdmNetwork& net,
                                    const std::vector<graph::EdgeId>& links);

}  // namespace wdm::rwa
