// Optimistic parallel batch provisioning with conflict-checked commits.
//
// §2 fixes the operating model: a batch of connection requests per interval,
// processed one by one against the evolving residual network. provision_batch
// reproduces that serially; ParallelBatchEngine produces the *same answer* —
// bit-for-bit identical accept/drop decisions, routes, reservations, and
// costs for every BatchOrder policy — while routing speculatively on a
// worker pool.
//
// Protocol (snapshot / speculate / validate / commit):
//
//   1. SNAPSHOT. The engine publishes an immutable copy of the live network
//      (`spec snapshot`). Snapshots come from a small pool and are refreshed
//      in place via WdmNetwork::sync_residual_from, which touches only the
//      links that changed and bumps only their link_revision counters — so
//      the AuxGraphBuilders warm inside each router's pool keep their
//      revision-validated caches across epochs.
//   2. SPECULATE. Workers claim requests in policy order (work-stealing
//      cursor, bounded `window` past the commit frontier) and route them
//      against the current snapshot. Router::route is const and
//      thread-compatible; every in-tree router leases per-thread builders.
//   3. VALIDATE + COMMIT. A single commit thread (the caller) finalizes
//      requests strictly in policy order. A speculative result is valid iff
//      its epoch matches the current one — i.e. *nothing* was reserved since
//      its snapshot was published, which makes the snapshot's residual state
//      bit-identical to the live network's, which in turn makes the
//      deterministic router's output identical to what the serial loop would
//      have computed. Dropped requests do not mutate the network, so a whole
//      run of consecutive drops (the common case under contention, exactly
//      where batching matters) validates against one snapshot and commits at
//      the cost of its slowest member instead of the sum.
//   4. CONFLICT. Each accepted commit bumps the epoch, republishes the
//      snapshot, and invalidates outstanding speculation (counted as
//      conflicts); conflicted requests are re-speculated against the new
//      snapshot (counted as retries, bounded by max_speculation_retries),
//      after which — or whenever no fresh speculation is in flight for the
//      head request — the commit thread routes the request itself against
//      the live network (serial fallback).
//
// Why this is exact rather than approximate: acceptance itself is always
// decided by rwa::detail::commit_route against the *live* network, the same
// helper the serial loop runs; speculation only decides which route gets
// proposed, and a proposal is used only when its base state provably equals
// the live state. Resource-level validation (route links disjoint from the
// dirty set) is deliberately NOT sufficient here: load-aware routers (G_c's
// exponential load weights, the ϑ filter) and conversion-mean transit
// weights read state on links a route never touches, so only revision-exact
// snapshots guarantee serial equality for arbitrary Router implementations.
#pragma once

#include <memory>
#include <vector>

#include "rwa/batch.hpp"
#include "rwa/router.hpp"
#include "support/rng.hpp"

namespace wdm::rwa {

struct ParallelBatchOptions {
  /// Worker threads routing speculatively. <= 0 picks
  /// support::hardware_threads(); 1 runs the serial path (still through the
  /// shared commit helper, so the outcome is identical by construction).
  int threads = 0;
  /// Max requests speculated past the commit frontier. <= 0 picks
  /// 4 * threads. Larger windows salvage longer drop runs per snapshot;
  /// smaller ones waste less work when accepts are dense.
  int window = 0;
  /// A request whose speculation went stale this many times is left to the
  /// commit thread (serial fallback) instead of being re-speculated.
  int max_speculation_retries = 3;
};

struct ParallelBatchStats {
  long long requests = 0;
  long long speculations = 0;      // worker route() calls
  long long spec_commits = 0;      // finalized from a fresh speculative result
  long long conflicts = 0;         // speculations invalidated by a commit
  long long retries = 0;           // re-speculations after a conflict
  long long commit_reroutes = 0;   // routed on the commit thread instead
  long long serial_fallbacks = 0;  // retry budget exhausted
  long long epochs = 0;            // accepted commits = snapshot republishes
  long long snapshot_syncs = 0;    // snapshots refreshed in place (cheap)
  long long snapshot_copies = 0;   // snapshots deep-copied (pool growth)

  /// Fraction of speculative route computations wasted on stale state.
  double conflict_rate() const {
    return speculations > 0
               ? static_cast<double>(conflicts) /
                     static_cast<double>(speculations)
               : 0.0;
  }
  /// Fraction of requests finalized straight from a speculative result.
  double spec_hit_rate() const {
    return requests > 0 ? static_cast<double>(spec_commits) /
                              static_cast<double>(requests)
                        : 0.0;
  }
};

/// Reusable engine: keeps its snapshot pool (and thus stable snapshot uids,
/// which keep router-side AuxGraphBuilder caches warm) across run() calls on
/// the same base network — the simulator's per-interval pattern. Not itself
/// thread-safe: one engine per provisioning stream.
class ParallelBatchEngine {
 public:
  explicit ParallelBatchEngine(ParallelBatchOptions opt = {});
  ~ParallelBatchEngine();

  ParallelBatchEngine(const ParallelBatchEngine&) = delete;
  ParallelBatchEngine& operator=(const ParallelBatchEngine&) = delete;

  /// Provisions the batch against `net` (mutated exactly as provision_batch
  /// would mutate it). `rng` is required for BatchOrder::kRandom and is
  /// consumed identically to the serial path. The caller must not touch
  /// `net` until run() returns.
  BatchOutcome run(net::WdmNetwork& net, const Router& router,
                   const std::vector<BatchRequest>& batch,
                   BatchOrder order = BatchOrder::kArrival,
                   support::Rng* rng = nullptr);

  /// Counters for the run() calls since construction (cumulative).
  const ParallelBatchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// The thread count run() will actually use (resolved from options).
  int resolved_threads() const;

 private:
  struct SnapshotPool;

  ParallelBatchOptions opt_;
  ParallelBatchStats stats_;
  std::unique_ptr<SnapshotPool> pool_;
};

}  // namespace wdm::rwa
